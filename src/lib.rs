//! # kernel-fds — an `O(N log N)` parallel fast direct solver for kernel
//! matrices
//!
//! A from-scratch Rust reproduction of *“An N log N Parallel Fast Direct
//! Solver for Kernel Matrices”* (Chenhan D. Yu, William B. March, George
//! Biros — IPDPS 2017, arXiv:1701.02324), including every substrate the
//! paper builds on: ASKIT-style skeletonization, interpolative
//! decompositions over a rank-revealing pivoted QR, ball trees and exact
//! kNN, a GSKS-style fused matrix-free kernel summation, GMRES, and a
//! simulated message-passing runtime for the distributed algorithms.
//!
//! ## Quickstart
//!
//! ```
//! use kernel_fds::prelude::*;
//!
//! // 1. Points with low intrinsic dimension (the compressible regime).
//! let points = datasets::normal_embedded(1024, 3, 8, 0.05, 42);
//!
//! // 2. Hierarchical representation: ball tree + skeletonization.
//! let kernel = Gaussian::new(1.0);
//! let tree = BallTree::build(&points, 64);
//! let st = skeletonize(tree, &kernel, SkelConfig::default().with_tol(1e-5));
//!
//! // 3. O(N log N) factorization of λI + K̃ and a direct solve.
//! let ft = factorize(&st, &kernel, SolverConfig::default().with_lambda(1.0)).unwrap();
//! let b = vec![1.0; 1024];
//! let x = ft.solve(&b).unwrap();
//!
//! // 4. Verify: the factorization inverts the compressed operator.
//! let xp = st.tree().permute_vec(&x);
//! let bp = st.tree().permute_vec(&b);
//! let applied = hier_matvec(&st, &kernel, 1.0, &xp);
//! let err: f64 = applied.iter().zip(&bp).map(|(a, b)| (a - b).powi(2)).sum::<f64>().sqrt()
//!     / bp.iter().map(|v| v * v).sum::<f64>().sqrt();
//! assert!(err < 1e-8);
//! ```
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`la`] | dense linear algebra: GEMM, LU, QR, RRQR, interpolative decomposition |
//! | [`tree`] | point sets, ball tree, kNN, synthetic datasets |
//! | [`kernels`] | kernel functions + stored/two-pass/fused (GSKS) summation |
//! | [`askit`] | skeletonization (Algorithm II.1) and the treecode matvec |
//! | [`krylov`] | GMRES (MGS + re-orthogonalization) and CG |
//! | [`rt`] | simulated MPI (thread ranks, communicators, collectives) |
//! | [`solver`] | factorization (II.2), solve (II.3), hybrid (II.6–8), distributed (II.4–5), ridge regression |
//! | [`serve`] | batched solve service: factorization cache + adaptive multi-RHS coalescing |

#![forbid(unsafe_code)]

pub use kfds_askit as askit;
pub use kfds_core as solver;
pub use kfds_kernels as kernels;
pub use kfds_krylov as krylov;
pub use kfds_la as la;
pub use kfds_rt as rt;
pub use kfds_serve as serve;
pub use kfds_tree as tree;

/// Everything a typical user needs, re-exported flat.
pub mod prelude {
    pub use kfds_askit::{
        approx_error_estimate, exact_matvec, hier_matvec, skeletonize, SkelConfig, SkeletonTree,
        TreecodeEvaluator,
    };
    pub use kfds_core::{
        dist_factorize, estimate_condition, estimate_sigma1, factorize, factorize_baseline,
        DistSolver, FactorStats, FactorTree, HybridOutcome, HybridSolver, KernelRidge,
        LeafFactorization, LevelRestrictedDirect, SolverConfig, SolverError, StorageMode, WStorage,
    };
    pub use kfds_kernels::{Gaussian, Kernel, Laplacian, Matern32, Polynomial};
    pub use kfds_krylov::{cg, gmres, CgOptions, GmresOptions, LinOp};
    pub use kfds_tree::datasets;
    pub use kfds_tree::{BallTree, PointSet};
}
