//! Collection strategies: `collection::vec(element, len)` where `len` is a
//! fixed `usize` or a `Range<usize>` of lengths.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Length specification for [`vec`]: a fixed size or a range of sizes.
pub trait SizeRange {
    fn pick(&self, rng: &mut StdRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut StdRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn pick(&self, rng: &mut StdRng) -> usize {
        assert!(self.start < self.end, "empty length range");
        rng.gen_range(self.clone())
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn pick(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(*self.start()..*self.end() + 1)
    }
}

/// Strategy for `Vec<S::Value>` with lengths drawn from `L`.
pub struct VecStrategy<S, L> {
    element: S,
    len: L,
}

impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = self.len.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Mirrors `proptest::collection::vec`.
pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
    VecStrategy { element, len }
}
