//! Value-generation strategies (no shrinking).

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A source of random values of one type. `generate` draws one value.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy producing a fixed (cloned) value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Result of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.gen_range(self.start..self.end)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                if hi < <$t>::MAX {
                    rng.gen_range(lo..hi + 1)
                } else if lo > <$t>::MIN {
                    rng.gen_range(lo - 1..hi) + 1
                } else {
                    // Full domain: compose from the raw generator.
                    rng.gen::<u64>() as $t
                }
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, i64, i32);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        rng.gen_range(self.start..self.end)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        // Hitting the exact endpoint has measure zero; treat as half-open.
        rng.gen_range(*self.start()..*self.end())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
