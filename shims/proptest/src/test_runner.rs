//! Test-runner plumbing: configuration, case outcomes, and deterministic
//! per-test seeding.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Subset of upstream `ProptestConfig`: only `cases` is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Outcome of a single generated case.
#[derive(Debug)]
pub enum TestCaseError {
    /// Inputs violated a `prop_assume!`; draw a fresh case.
    Reject,
    /// A `prop_assert*!` failed with this message.
    Fail(String),
}

/// Deterministic seed for a test, from its name (FNV-1a) unless
/// `PROPTEST_SEED` overrides it globally.
pub fn seed_for(test_name: &str) -> u64 {
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(seed) = s.trim().parse::<u64>() {
            return seed;
        }
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

pub fn new_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}
