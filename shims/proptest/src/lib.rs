//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's property tests use: range and
//! tuple strategies, `collection::vec`, `prop_map` / `prop_flat_map`, the
//! `proptest!` macro with `#![proptest_config(...)]`, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros. No
//! shrinking: a failing case reports its case index and the deterministic
//! per-test seed, which is enough to reproduce (runs are fully
//! deterministic for a given test name unless `PROPTEST_SEED` is set).
//!
//! Syntax note: test argument lists inside `proptest!` accept an optional
//! trailing comma, exactly like upstream.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Entry point macro: mirrors `proptest! { #![proptest_config(expr)] ... }`
/// with one or more `#[test] fn name(args...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($items:tt)*) => {
        $crate::__proptest_items! { @cfg($cfg) $($items)* }
    };
    ($($items:tt)*) => {
        $crate::__proptest_items! { @cfg($crate::test_runner::ProptestConfig::default()) $($items)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($args:tt)*) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_run! { @cfg($cfg) @name($name) @body($body) $($args)* }
        }
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_run {
    (@cfg($cfg:expr) @name($name:ident) @body($body:block)
     $($arg:ident in $strat:expr),+ $(,)?) => {{
        let cfg: $crate::test_runner::ProptestConfig = $cfg;
        let seed = $crate::test_runner::seed_for(stringify!($name));
        let mut rng = $crate::test_runner::new_rng(seed);
        let mut rejected: u32 = 0;
        let mut case: u32 = 0;
        while case < cfg.cases {
            $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
            let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                (move || {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
            match result {
                Ok(()) => case += 1,
                Err($crate::test_runner::TestCaseError::Reject) => {
                    rejected += 1;
                    if rejected > cfg.cases * 16 {
                        panic!(
                            "proptest {}: too many rejected cases ({rejected})",
                            stringify!($name)
                        );
                    }
                }
                Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest {} failed at case {case} (seed {seed:#x}): {msg}",
                        stringify!($name)
                    );
                }
            }
        }
    }};
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args...)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert_eq!(a, b)` with an optional trailing format message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (va, vb) = (&$a, &$b);
        if !(va == vb) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("assertion failed: {:?} == {:?}", va, vb),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (va, vb) = (&$a, &$b);
        if !(va == vb) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    }};
}

/// `prop_assert_ne!(a, b)`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (va, vb) = (&$a, &$b);
        if va == vb {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("assertion failed: {:?} != {:?}", va, vb),
            ));
        }
    }};
}

/// Rejects the current case (regenerates with fresh inputs).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..17, y in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn flat_map_and_vec(v in (1usize..=8).prop_flat_map(|n| {
            crate::collection::vec(0.0f64..1.0, n).prop_map(move |data| (n, data))
        })) {
            prop_assert_eq!(v.0, v.1.len());
        }

        #[test]
        fn assume_rejects(n in 0usize..10,) {
            prop_assume!(n >= 5);
            prop_assert!(n >= 5);
        }
    }

    #[test]
    fn failing_case_panics() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(4))]
                #[allow(unused)]
                fn always_fails(x in 0usize..4) {
                    prop_assert!(x > 100, "x was {x}");
                }
            }
            always_fails();
        });
        assert!(result.is_err());
    }
}
