//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface this workspace's benches use — `Criterion`,
//! `benchmark_group` / `sample_size` / `bench_function` / `bench_with_input`
//! / `finish`, `Bencher::iter`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros — with a simple wall-clock measurement loop and
//! plain-text reporting (no HTML reports, no statistical regression
//! analysis). Each benchmark warms up briefly, auto-calibrates an iteration
//! count so one sample takes a few milliseconds, then reports the median,
//! minimum, and mean per-iteration time over `sample_size` samples.
//!
//! Honors `--bench` noise in argv (ignored) and a single optional filter
//! substring argument, like upstream's CLI subset that `cargo bench` uses.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export location parity: upstream exposes `criterion::black_box`.
pub use std::hint::black_box;

const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(20);
const WARMUP_TIME: Duration = Duration::from_millis(50);

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Parses the argv subset that `cargo bench` forwards: flags are
    /// ignored; the first bare argument becomes a name filter.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            if a == "--bench" || a == "--test" {
                continue;
            }
            if a.starts_with("--") {
                // Flag with a possible value (e.g. --save-baseline foo).
                if !a.contains('=') {
                    let _ = args.next();
                }
                continue;
            }
            self.filter = Some(a);
            break;
        }
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 100 }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let full = name.to_string();
        run_benchmark(self, &full, 100, f);
    }
}

/// Named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, name: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_benchmark(self.criterion, &full, self.sample_size, f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        run_benchmark(self.criterion, &full, self.sample_size, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Function + parameter identifier, rendered as `function/parameter`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Measurement handle passed to the bench closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the calibrated iteration count.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F>(criterion: &Criterion, name: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if let Some(filter) = &criterion.filter {
        if !name.contains(filter.as_str()) {
            return;
        }
    }

    // Warmup + calibration: grow the iteration count until one sample
    // takes long enough to time reliably.
    let mut iters: u64 = 1;
    let warmup_start = Instant::now();
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= TARGET_SAMPLE_TIME || warmup_start.elapsed() >= WARMUP_TIME {
            if b.elapsed < TARGET_SAMPLE_TIME && b.elapsed > Duration::ZERO {
                let scale = TARGET_SAMPLE_TIME.as_secs_f64() / b.elapsed.as_secs_f64();
                iters = ((iters as f64 * scale).ceil() as u64).max(1);
            }
            break;
        }
        iters = iters.saturating_mul(2);
    }

    let mut per_iter: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN timing"));
    let median = per_iter[per_iter.len() / 2];
    let min = per_iter[0];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;

    println!(
        "{name:<48} median {:>12}  min {:>12}  mean {:>12}  ({} samples x {} iters)",
        fmt_time(median),
        fmt_time(min),
        fmt_time(mean),
        per_iter.len(),
        iters
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Mirrors upstream: defines a function that runs each bench fn with a
/// shared `Criterion` instance.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Mirrors upstream: defines `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut ran = false;
        group.bench_function("noop", |b| {
            ran = true;
            b.iter(|| black_box(1 + 1));
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("factor", 512);
        assert_eq!(id.0, "factor/512");
    }
}
