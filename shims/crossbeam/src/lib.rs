//! Offline stand-in for the `crossbeam` crate: only `channel::unbounded`
//! (what `kfds-rt` uses), delegating to `std::sync::mpsc`. Modern std
//! `Sender` is `Sync`, which covers crossbeam's multi-producer use here;
//! the receiving side in `kfds-rt` is already serialized behind a mutex.

pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// Sending half of an unbounded channel.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// Receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }
    }

    /// Creates an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;

    #[test]
    fn multi_producer_roundtrip() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        std::thread::scope(|s| {
            s.spawn(move || tx.send(1).unwrap());
            s.spawn(move || tx2.send(2).unwrap());
            let a = rx.recv().unwrap();
            let b = rx.recv().unwrap();
            assert_eq!(a + b, 3);
        });
    }
}
