//! Offline stand-in for the `rand` crate.
//!
//! Implements [`rngs::StdRng`] as xoshiro256++ seeded through SplitMix64,
//! with the [`Rng`]/[`SeedableRng`] surface the workspace uses
//! (`gen::<f64>()`, `gen::<bool>()`, `gen_range(a..b)`, `gen_bool`). The
//! streams differ from upstream `rand`'s `StdRng` (ChaCha12), which is fine:
//! every consumer seeds explicitly and only relies on determinism, not on a
//! specific stream.

/// Seedable random generators.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling from a half-open range, for [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    fn sample(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    fn from_rng(rng: &mut dyn RngCore) -> Self;
}

/// Core entropy source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// The user-facing generator trait.
pub trait Rng: RngCore {
    /// Uniform sample of a [`Standard`] type (`f64` in `[0, 1)`, fair
    /// `bool`, full-range integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Uniform sample from `range` (half-open).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform + PartialOrd>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "gen_range: empty range");
        T::sample(self, range.start, range.end)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                // Multiply-shift rejection-free mapping; bias is < 2^-64,
                // irrelevant for test workloads.
                let r = rng.next_u64() as u128;
                let v = (r * span) >> 64;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(usize, u64, u32, i64, i32);

impl SampleUniform for f64 {
    fn sample(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
        lo + (hi - lo) * f64::from_rng_core(rng)
    }
}

trait F64Ext {
    fn from_rng_core(rng: &mut dyn RngCore) -> f64;
}

impl F64Ext for f64 {
    #[inline]
    fn from_rng_core(rng: &mut dyn RngCore) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f64 {
    fn from_rng(rng: &mut dyn RngCore) -> f64 {
        f64::from_rng_core(rng)
    }
}

impl Standard for bool {
    fn from_rng(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn from_rng(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng(rng: &mut dyn RngCore) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn from_rng(rng: &mut dyn RngCore) -> usize {
        rng.next_u64() as usize
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator (Blackman & Vigna), SplitMix64-seeded.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the recommended seeding procedure.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let v = rng.gen_range(-2.5f64..1.5);
            assert!((-2.5..1.5).contains(&v));
        }
    }
}
