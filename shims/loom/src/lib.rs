//! Offline stand-in for the `loom` permutation-testing crate.
//!
//! The build environment has no crates.io access, so this shim implements
//! the subset of loom's API the workspace's concurrency model tests use —
//! [`model`], [`thread`], [`sync`], [`hint`] — with **bounded stress-based
//! exploration** instead of loom's exhaustive DPOR search:
//!
//! * [`model`] runs the test body many times (`LOOM_ITERS`, default 64)
//!   rather than once per distinct interleaving;
//! * [`thread::spawn`] staggers thread startup with a deterministic,
//!   iteration-seeded number of yields, so successive iterations bias the
//!   scheduler toward different interleavings;
//! * the [`sync`] types are the `std::sync` primitives re-exported (loom's
//!   versions are instrumented; std's are the real thing, which is what a
//!   stress run wants).
//!
//! The result is strictly weaker than real loom — it samples the
//! interleaving space instead of enumerating it — but the tests written
//! against this shim use only loom-portable API, so pointing the `loom`
//! workspace dependency at the real crate upgrades them to exhaustive
//! model checking without edits. Until then they serve as fast,
//! deterministic-input stress tests that run in every `cargo test`
//! invocation (and under the TSan lane, where the schedule sampling gives
//! the race detector real concurrency to observe).

use std::sync::atomic::{AtomicU64, Ordering};

/// Seed of the current model iteration; consumed by [`thread::spawn`] to
/// vary thread-startup staggering between iterations.
static SCHEDULE_SEED: AtomicU64 = AtomicU64::new(0);

/// Per-spawn counter within an iteration, folded into the stagger so
/// sibling threads do not all yield identically.
static SPAWN_SALT: AtomicU64 = AtomicU64::new(0);

/// SplitMix64 — a tiny, high-quality deterministic mixer; no external RNG.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// How many iterations a [`model`] call runs. Overridable with
/// `LOOM_ITERS` (the real loom uses `LOOM_*` variables the same way).
fn iterations() -> u64 {
    std::env::var("LOOM_ITERS").ok().and_then(|v| v.parse().ok()).unwrap_or(64)
}

/// Runs `f` under bounded interleaving exploration: `LOOM_ITERS`
/// repetitions, each with a distinct deterministic schedule seed that
/// [`thread::spawn`] uses to stagger thread startup.
///
/// Mirrors `loom::model`'s signature so tests compile unchanged against
/// the real crate. The closure must set up all shared state itself (it is
/// re-run from scratch each iteration).
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    for i in 0..iterations() {
        SCHEDULE_SEED.store(splitmix(i), Ordering::Relaxed);
        SPAWN_SALT.store(0, Ordering::Relaxed);
        f();
    }
}

pub mod thread {
    //! Thread spawning with iteration-seeded startup staggering.

    use super::{splitmix, Ordering, SCHEDULE_SEED, SPAWN_SALT};

    pub use std::thread::{yield_now, JoinHandle};

    /// Spawns a real OS thread whose body first yields a
    /// seed-and-spawn-index dependent number of times, so different model
    /// iterations release sibling threads in different orders.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let salt = SPAWN_SALT.fetch_add(1, Ordering::Relaxed);
        let seed = SCHEDULE_SEED.load(Ordering::Relaxed);
        let stagger = splitmix(seed ^ (salt.wrapping_mul(0xa076_1d64_78bd_642f))) % 8;
        std::thread::spawn(move || {
            for _ in 0..stagger {
                std::thread::yield_now();
            }
            f()
        })
    }
}

pub mod sync {
    //! `std::sync` primitives under loom's module paths.

    pub use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};

    pub mod atomic {
        pub use std::sync::atomic::*;
    }
}

pub mod hint {
    /// Scheduling hint; a real yield here maximizes interleaving variety.
    pub fn spin_loop() {
        std::thread::yield_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn model_runs_body_iterations_times() {
        let count = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&count);
        model(move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst) as u64, super::iterations());
    }

    #[test]
    fn spawned_threads_run_and_join() {
        model(|| {
            let v = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let v = Arc::clone(&v);
                    thread::spawn(move || v.fetch_add(1, Ordering::SeqCst))
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(v.load(Ordering::SeqCst), 4);
        });
    }
}
