//! Offline stand-in for `parking_lot`: [`Mutex`] and [`RwLock`] with the
//! non-poisoning API, implemented over `std::sync`. Poisoned std locks are
//! recovered transparently (parking_lot has no poisoning at all).

use std::sync::{self, PoisonError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutex.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
