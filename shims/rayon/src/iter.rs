//! The parallel-iterator subset used by this workspace.
//!
//! Unlike rayon's lazy splitting, sources are materialized into a `Vec` of
//! items up front and the terminal operation (`for_each` / `collect`)
//! distributes order-preserving chunks over the pool. `map` stays lazy so
//! the mapped work itself runs in parallel. This covers every call shape in
//! the workspace:
//!
//! ```text
//! slice.par_iter().map(f).collect::<Vec<_>>()
//! vec.into_par_iter().for_each(f)
//! range.into_par_iter().map(f).collect::<Vec<_>>()
//! slice.par_chunks_mut(k).zip(other.par_chunks_mut(k)).enumerate().for_each(f)
//! ```

use crate::run_batch;
use std::sync::Mutex;

/// A materialized parallel iterator over `T` items.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// A lazily mapped parallel iterator (the map runs on the pool).
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

/// Conversion into a [`ParIter`]; implemented for `Vec<T>`, ranges, and
/// `&[T]` / `&Vec<T>`.
pub trait IntoParallelIterator {
    type Item;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter { items: self.collect() }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    fn into_par_iter(self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    fn into_par_iter(self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

/// `par_iter` on shared slices (and, via deref, `Vec`s).
pub trait ParallelSlice<T: Sync> {
    fn par_iter(&self) -> ParIter<&T>;
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter { items: self.iter().collect() }
    }

    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        assert!(chunk_size > 0);
        ParIter { items: self.chunks(chunk_size).collect() }
    }
}

/// `par_chunks_mut` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        assert!(chunk_size > 0);
        ParIter { items: self.chunks_mut(chunk_size).collect() }
    }
}

/// Marker trait mirroring rayon's `ParallelIterator`; adaptors here are
/// inherent methods on the concrete types, so this exists only so that
/// `use rayon::prelude::*` keeps importing a name of that meaning.
pub trait ParallelIterator {}

impl<T> ParallelIterator for ParIter<T> {}
impl<T, F> ParallelIterator for ParMap<T, F> {}

impl<T: Send> ParIter<T> {
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter { items: self.items.into_iter().enumerate().collect() }
    }

    /// Pairs items positionally; the result has the shorter length.
    pub fn zip<U: Send>(self, other: ParIter<U>) -> ParIter<(T, U)> {
        ParIter { items: self.items.into_iter().zip(other.items).collect() }
    }

    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        F: Fn(T) -> R + Sync,
    {
        ParMap { items: self.items, f }
    }

    /// Maps each item to a serial iterator on the pool and flattens the
    /// results in order (rayon's `flat_map_iter`).
    pub fn flat_map_iter<U, F>(self, f: F) -> ParIter<U::Item>
    where
        F: Fn(T) -> U + Sync,
        U: IntoIterator,
        U::Item: Send,
    {
        let nested: Vec<Vec<U::Item>> =
            execute_map(self.items, &|item| f(item).into_iter().collect());
        ParIter { items: nested.into_iter().flatten().collect() }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        execute_for_each(self.items, &f);
    }

    pub fn collect<C: From<Vec<T>>>(self) -> C {
        C::from(self.items)
    }
}

impl<T: Send, F> ParMap<T, F> {
    pub fn collect<R, C>(self) -> C
    where
        F: Fn(T) -> R + Sync,
        R: Send,
        C: From<Vec<R>>,
    {
        C::from(execute_map(self.items, &self.f))
    }

    pub fn for_each<R, G>(self, g: G)
    where
        F: Fn(T) -> R + Sync,
        R: Send,
        G: Fn(R) + Sync,
    {
        let f = &self.f;
        execute_for_each(self.items, &|item| g(f(item)));
    }
}

/// Order-preserving chunk count: enough chunks per thread for load
/// balancing without flooding the queue.
fn chunk_len(n: usize) -> usize {
    let threads = crate::current_num_threads().max(1);
    n.div_ceil(threads * 4).max(1)
}

fn execute_map<T: Send, R: Send>(items: Vec<T>, f: &(impl Fn(T) -> R + Sync)) -> Vec<R> {
    let n = items.len();
    if n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = chunk_len(n);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(n.div_ceil(chunk));
    let mut items = items.into_iter();
    loop {
        let c: Vec<T> = items.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    let slots: Vec<Mutex<Option<Vec<R>>>> = chunks.iter().map(|_| Mutex::new(None)).collect();
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = chunks
        .into_iter()
        .zip(&slots)
        .map(|(c, slot)| {
            let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                let out: Vec<R> = c.into_iter().map(f).collect();
                *slot.lock().unwrap() = Some(out);
            });
            task
        })
        .collect();
    run_batch(tasks);
    let mut out = Vec::with_capacity(n);
    for s in slots {
        out.extend(s.into_inner().unwrap().expect("parallel map chunk missing"));
    }
    out
}

fn execute_for_each<T: Send>(items: Vec<T>, f: &(impl Fn(T) + Sync)) {
    let n = items.len();
    if n <= 1 {
        items.into_iter().for_each(f);
        return;
    }
    let chunk = chunk_len(n);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(n.div_ceil(chunk));
    let mut items = items.into_iter();
    loop {
        let c: Vec<T> = items.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = chunks
        .into_iter()
        .map(|c| {
            let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                c.into_iter().for_each(f);
            });
            task
        })
        .collect();
    run_batch(tasks);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn chunks_mut_zip_enumerate() {
        let mut a = vec![0usize; 12];
        let mut b = [0usize; 12];
        a.par_chunks_mut(3).zip(b.par_chunks_mut(3)).enumerate().for_each(|(i, (ca, cb))| {
            for v in ca.iter_mut() {
                *v = i;
            }
            for v in cb.iter_mut() {
                *v = i * 10;
            }
        });
        assert_eq!(a, vec![0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3]);
        assert_eq!(b[11], 30);
    }

    #[test]
    fn into_par_iter_for_each_runs_all() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let count = AtomicUsize::new(0);
        let items: Vec<usize> = (0..257).collect();
        items.into_par_iter().for_each(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 257);
    }
}
