//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no network access to crates.io, so this shim
//! implements the (small) subset of rayon's API that the workspace uses on
//! top of a shared fixed-size thread pool:
//!
//! - [`join`] — fork/join over two closures;
//! - [`prelude`] — `par_iter` / `into_par_iter` / `par_chunks_mut` with the
//!   `map` / `zip` / `enumerate` / `for_each` / `collect` adaptors;
//! - [`ThreadPoolBuilder`] / [`ThreadPool::install`] — thread-count scoping;
//! - [`current_num_threads`] / [`current_thread_index`].
//!
//! Scheduling model: one global FIFO queue of jobs served by
//! `RAYON_NUM_THREADS` (default: `available_parallelism`) worker threads.
//! Parallel operations *started on a pool worker* (or while a thread is
//! executing a stolen job) run serially in place — nested parallelism never
//! oversubscribes, which is exactly the policy the solver's hot paths rely
//! on (see `kfds-la::gemm`). [`current_thread_index`] returns `Some(_)`
//! precisely in that nested context, so callers can implement the same
//! guard explicitly.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

pub mod iter;
pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, ParallelIterator, ParallelSlice, ParallelSliceMut,
    };
}

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Registry {
    queue: Mutex<VecDeque<Job>>,
    cv: Condvar,
    nthreads: usize,
}

static REGISTRY: OnceLock<Arc<Registry>> = OnceLock::new();

thread_local! {
    /// `Some(index)` while this thread is executing pool work (worker
    /// threads permanently; helper threads only while running a stolen job).
    static POOL_INDEX: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
    /// Thread-count override installed by [`ThreadPool::install`].
    static NUM_THREADS_OVERRIDE: std::cell::Cell<Option<usize>> =
        const { std::cell::Cell::new(None) };
}

fn default_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

fn registry() -> &'static Arc<Registry> {
    REGISTRY.get_or_init(|| {
        let n = default_threads();
        let reg = Arc::new(Registry {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            nthreads: n,
        });
        for i in 0..n {
            let r = Arc::clone(&reg);
            std::thread::Builder::new()
                .name(format!("rayon-shim-{i}"))
                .spawn(move || worker_loop(&r, i))
                .expect("spawn pool worker");
        }
        reg
    })
}

fn worker_loop(reg: &Registry, index: usize) {
    POOL_INDEX.with(|p| p.set(Some(index)));
    loop {
        let job = {
            let mut q = reg.queue.lock().unwrap();
            loop {
                if let Some(j) = q.pop_front() {
                    break j;
                }
                q = reg.cv.wait(q).unwrap();
            }
        };
        job();
    }
}

fn push_job(job: Job) {
    let reg = registry();
    reg.queue.lock().unwrap().push_back(job);
    reg.cv.notify_one();
}

fn try_pop_job() -> Option<Job> {
    registry().queue.lock().unwrap().pop_front()
}

/// Runs a job on the current thread while marked as pool work, so nested
/// parallel operations inside it stay serial.
fn run_marked(job: Job) {
    let prev = POOL_INDEX.with(|p| p.replace(Some(usize::MAX)));
    job();
    POOL_INDEX.with(|p| p.set(prev));
}

/// The number of threads parallel operations may use in this context.
pub fn current_num_threads() -> usize {
    if let Some(n) = NUM_THREADS_OVERRIDE.with(|o| o.get()) {
        return n;
    }
    registry().nthreads
}

/// `Some(index)` when called from inside pool work (a worker thread, or a
/// thread currently executing a stolen job), `None` on free threads.
pub fn current_thread_index() -> Option<usize> {
    POOL_INDEX.with(|p| p.get())
}

/// `true` when a parallel operation started here should actually fan out.
fn should_parallelize() -> bool {
    current_num_threads() > 1 && current_thread_index().is_none()
}

/// Completion latch + first-panic slot shared by the jobs of one batch.
struct BatchState {
    remaining: AtomicUsize,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    lock: Mutex<()>,
    cv: Condvar,
}

impl BatchState {
    fn new(count: usize) -> Arc<Self> {
        Arc::new(BatchState {
            remaining: AtomicUsize::new(count),
            panic: Mutex::new(None),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        })
    }

    fn complete_one(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _g = self.lock.lock().unwrap();
            self.cv.notify_all();
        }
    }

    /// Blocks until every job in the batch has finished, helping drain the
    /// global queue meanwhile (which also guarantees progress when all
    /// workers are busy with unrelated work).
    fn wait(&self) {
        loop {
            if self.remaining.load(Ordering::Acquire) == 0 {
                break;
            }
            if let Some(j) = try_pop_job() {
                run_marked(j);
                continue;
            }
            let g = self.lock.lock().unwrap();
            if self.remaining.load(Ordering::Acquire) == 0 {
                break;
            }
            let _ = self.cv.wait_timeout(g, Duration::from_millis(1)).unwrap();
        }
    }

    fn resume_panic(&self) {
        if let Some(p) = self.panic.lock().unwrap().take() {
            resume_unwind(p);
        }
    }
}

/// Executes `tasks` to completion, in parallel when this context allows it.
///
/// Soundness of the lifetime erasure: the closures may borrow data from the
/// caller's stack, and this function does not return (not even by panic)
/// until `remaining == 0`, i.e. until every erased closure has finished
/// running.
pub(crate) fn run_batch<'a>(tasks: Vec<Box<dyn FnOnce() + Send + 'a>>) {
    if tasks.is_empty() {
        return;
    }
    if tasks.len() == 1 || !should_parallelize() {
        for t in tasks {
            t();
        }
        return;
    }
    let state = BatchState::new(tasks.len());
    for t in tasks {
        let st = Arc::clone(&state);
        let job: Box<dyn FnOnce() + Send + 'a> = Box::new(move || {
            let r = catch_unwind(AssertUnwindSafe(t));
            if let Err(p) = r {
                st.panic.lock().unwrap().get_or_insert(p);
            }
            st.complete_one();
        });
        // SAFETY: `wait()` below does not return until this closure has run.
        let job: Job = unsafe { std::mem::transmute(job) };
        push_job(job);
    }
    state.wait();
    state.resume_panic();
}

/// Runs `oper_a` and `oper_b`, potentially in parallel, returning both
/// results. Panics are propagated (with `oper_a`'s taking precedence).
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if !should_parallelize() {
        let ra = oper_a();
        let rb = oper_b();
        return (ra, rb);
    }
    let state = BatchState::new(1);
    let slot_a: Mutex<Option<RA>> = Mutex::new(None);
    {
        let st = Arc::clone(&state);
        let slot_ref = &slot_a;
        let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
            let r = catch_unwind(AssertUnwindSafe(oper_a));
            match r {
                Ok(v) => *slot_ref.lock().unwrap() = Some(v),
                Err(p) => {
                    st.panic.lock().unwrap().get_or_insert(p);
                }
            }
            st.complete_one();
        });
        // SAFETY: `state.wait()` below runs before this frame is left, even
        // when `oper_b` panics (its panic is caught and re-raised after).
        let job: Job = unsafe { std::mem::transmute(job) };
        push_job(job);
    }
    let rb = catch_unwind(AssertUnwindSafe(oper_b));
    state.wait();
    state.resume_panic(); // oper_a's panic wins, like rayon
    let rb = match rb {
        Ok(v) => v,
        Err(p) => resume_unwind(p),
    };
    let ra = slot_a.into_inner().unwrap().expect("join: missing result");
    (ra, rb)
}

/// Builder for a [`ThreadPool`] handle.
///
/// The shim keeps one global pool; a built `ThreadPool` only scopes the
/// *advertised* thread count (what [`current_num_threads`] reports and what
/// gates fan-out) for the duration of [`ThreadPool::install`].
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type for [`ThreadPoolBuilder::build`] (infallible here).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// `0` means the default thread count, matching rayon.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 { default_threads() } else { self.num_threads };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A scoped view of the global pool with a fixed advertised thread count.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Runs `f` with [`current_num_threads`] reporting this pool's size; a
    /// size of 1 forces every parallel operation inside `f` to run serially.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = NUM_THREADS_OVERRIDE.with(|o| o.replace(Some(self.num_threads)));
        struct Reset(Option<usize>);
        impl Drop for Reset {
            fn drop(&mut self) {
                let v = self.0;
                NUM_THREADS_OVERRIDE.with(|o| o.set(v));
            }
        }
        let _reset = Reset(prev);
        f()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "x".to_string());
        assert_eq!(a, 2);
        assert_eq!(b, "x");
    }

    #[test]
    fn join_propagates_panic() {
        let r = catch_unwind(AssertUnwindSafe(|| {
            join(|| panic!("boom"), || 0);
        }));
        assert!(r.is_err());
    }

    #[test]
    fn nested_ops_are_serial() {
        // Inside pool work, current_thread_index() is Some and further
        // parallel operations must not fan out.
        let results: Vec<bool> =
            (0..8usize).into_par_iter().map(|_| current_thread_index().is_some()).collect();
        if current_num_threads() > 1 {
            assert!(results.iter().all(|&b| b));
        }
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        pool.install(|| assert_eq!(current_num_threads(), 1));
    }

    #[test]
    fn deep_recursive_join() {
        fn sum(lo: u64, hi: u64) -> u64 {
            if hi - lo <= 64 {
                (lo..hi).sum()
            } else {
                let mid = lo + (hi - lo) / 2;
                let (a, b) = join(|| sum(lo, mid), || sum(mid, hi));
                a + b
            }
        }
        assert_eq!(sum(0, 10_000), 10_000 * 9_999 / 2);
    }
}
