#!/usr/bin/env bash
# Local CI gate: build, test, lint, format.
#
#   ./ci.sh            # everything
#   ./ci.sh --fast     # skip the release build
#
# Mirrors what a hosted pipeline would run; keep it green before pushing.
set -euo pipefail
cd "$(dirname "$0")"

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (all targets, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

if [[ $fast -eq 0 ]]; then
  echo "== cargo build --release =="
  cargo build --release
fi

echo "== cargo test (workspace, SIMD default) =="
cargo test -q --workspace

echo "== cargo test (workspace, KFDS_SIMD=off — scalar reference paths) =="
KFDS_SIMD=off cargo test -q --workspace

echo "== cargo test (workspace, KFDS_CPQR=unblocked + KFDS_EVAL_GEMM=off — BLAS-2 setup paths) =="
# The legacy one-reflector CPQR and the scalar kernel-block assembly are the
# bitwise reference for the blocked setup pipeline; keep them green.
KFDS_CPQR=unblocked KFDS_EVAL_GEMM=off cargo test -q --workspace

echo "== dispatch checks (simd, cpqr, gemm eval) =="
# Fails if this host supports AVX2+FMA but the vector kernels silently
# fell back to scalar, or if the blocked CPQR / GEMM eval paths silently
# deactivated (dispatch or build regression).
if [[ $fast -eq 0 ]]; then
  cargo run -q --release -p kfds-bench --bin perf_trajectory -- --check
else
  cargo run -q -p kfds-bench --bin perf_trajectory -- --check
fi

echo "== kfds-serve smoke =="
# Stands up the batched solve service under closed-loop load and asserts a
# clean run: zero errors, every request answered, cache hit rate > 0.
if [[ $fast -eq 0 ]]; then
  cargo run -q --release -p kfds-serve --bin kfds-serve -- --smoke --n 1024 --keys 2 --clients 8 --requests 64
else
  cargo run -q -p kfds-serve --bin kfds-serve -- --smoke --n 512 --keys 2 --clients 4 --requests 32
fi

echo "CI OK"
