#!/usr/bin/env bash
# Local CI gate: build, test, lint, format.
#
#   ./ci.sh            # everything
#   ./ci.sh --fast     # skip the release build
#
# Mirrors what a hosted pipeline would run; keep it green before pushing.
set -euo pipefail
cd "$(dirname "$0")"

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (all targets, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

if [[ $fast -eq 0 ]]; then
  echo "== cargo build --release =="
  cargo build --release
fi

echo "== cargo test (workspace) =="
cargo test -q --workspace

echo "CI OK"
