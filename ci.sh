#!/usr/bin/env bash
# Local CI gate: build, test, lint, format.
#
#   ./ci.sh            # everything
#   ./ci.sh --fast     # skip the release build
#   ./ci.sh --miri     # additionally run the Miri lane (needs nightly + miri)
#   ./ci.sh --tsan     # additionally run the ThreadSanitizer lane
#                      # (needs nightly + rust-src; see DESIGN.md §7)
#
# Mirrors what a hosted pipeline would run; keep it green before pushing.
set -euo pipefail
cd "$(dirname "$0")"

fast=0
miri=0
tsan=0
for arg in "$@"; do
  case "$arg" in
    --fast) fast=1 ;;
    --miri) miri=1 ;;
    --tsan) tsan=1 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

# Does the nightly toolchain have a given component (miri, rust-src)?
nightly_has() {
  rustup component list --toolchain nightly --installed 2>/dev/null | grep -q "^$1"
}

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (all targets, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== kfds-lint (SAFETY comments, switch registry, hot-path allocs, unsafe preconditions, =="
echo "==            lock discipline, panic-free data plane, forbid-unsafe, switch coverage)  =="
# The machine-checked safety invariants — see DESIGN.md §7. Always on:
# the lint is pure source analysis and takes well under a second. The
# per-rule count line is asserted below so a rule family that silently
# stopped running (refactor regression in xtask) cannot read as green.
lint_out="$(cargo run -q -p xtask -- lint)"
echo "$lint_out"
for rule in unsafe-safety env-registry hot-path-alloc unsafe-preconditions \
            lock-discipline panic-path forbid-unsafe switch-coverage switch-table; do
  if ! grep -q " ${rule}=" <<<"$lint_out"; then
    echo "kfds-lint did not report the ${rule} rule — lint harness regression" >&2
    exit 1
  fi
done

if [[ $fast -eq 0 ]]; then
  echo "== cargo build --release =="
  cargo build --release
fi

echo "== cargo test (workspace, SIMD default) =="
cargo test -q --workspace

echo "== cargo test (workspace, KFDS_SIMD=off — scalar reference paths) =="
KFDS_SIMD=off cargo test -q --workspace

echo "== cargo test (workspace, KFDS_CPQR=unblocked + KFDS_EVAL_GEMM=off — BLAS-2 setup paths) =="
# The legacy one-reflector CPQR and the scalar kernel-block assembly are the
# bitwise reference for the blocked setup pipeline; keep them green.
KFDS_CPQR=unblocked KFDS_EVAL_GEMM=off cargo test -q --workspace

echo "== cargo test (kfds-la, KFDS_WS_POOL=off — global-allocator workspace path) =="
# The pool kill-switch must leave every factorization/solve result
# untouched (the pool only changes where scratch memory comes from).
KFDS_WS_POOL=off cargo test -q -p kfds-la

echo "== cargo test (kfds-tree, KFDS_KNN=scalar — scalar-distance kNN reference) =="
# The GEMM-tile neighbor search must agree with the scalar reference
# under both search modes; this lane runs the tree suite on that path.
KFDS_KNN=scalar cargo test -q -p kfds-tree

if [[ $miri -eq 1 ]]; then
  echo "== miri lane (kfds-la deterministic suite under the interpreter) =="
  # Checks the raw-pointer/`set_len` unsafe core for UB. SIMD dispatch is
  # hard-wired scalar under Miri (`cpu_supported()` returns false), and the
  # proptest suite is compiled out (`#![cfg(not(miri))]` in props.rs).
  if nightly_has miri; then
    cargo +nightly miri test -p kfds-la --test miri
  else
    echo "WARNING: skipping Miri lane — 'miri' component not installed on the"
    echo "         nightly toolchain (rustup component add --toolchain nightly miri)."
  fi
fi

if [[ $tsan -eq 1 ]]; then
  echo "== tsan lane (kfds-rt + kfds-shard + kfds-serve under ThreadSanitizer) =="
  # Race-checks the channel runtime, the shard router's scatter/gather
  # data plane, and the serve queue/cache/shutdown paths; the loom stress
  # tests give the detector real interleavings to observe. Needs
  # -Zbuild-std, hence nightly + the rust-src component.
  if nightly_has rust-src; then
    RUSTFLAGS="-Zsanitizer=thread" \
      cargo +nightly test -Zbuild-std --target x86_64-unknown-linux-gnu \
      -p kfds-rt -p kfds-shard -p kfds-serve
  else
    echo "WARNING: skipping TSan lane — 'rust-src' component not installed on the"
    echo "         nightly toolchain (rustup component add --toolchain nightly rust-src)."
  fi
fi

echo "== dispatch checks (simd, cpqr, gemm eval, knn, refactor, batch, scaling) =="
# Fails if this host supports AVX2+FMA but the vector kernels silently
# fell back to scalar, or if the blocked CPQR / GEMM eval / GEMM-tile kNN
# paths silently deactivated (dispatch or build regression). The knn,
# refactor, and batch gates run separately so a neighbor-search, λ-sweep
# refactorization, or level-batched engine regression is named in the
# output; the refactor and batch gates also verify their KFDS_* opt-outs
# reproduce the legacy paths (KFDS_BATCH=off must route back to the
# per-node engine; the default must be bitwise vs per-node). The scaling
# gate arms only on hosts with >= 2 physical cores (it reports not-armed
# and passes elsewhere) and then requires multi-thread setup+factorize to
# beat single-thread wall-clock.
if [[ $fast -eq 0 ]]; then
  cargo run -q --release -p kfds-bench --bin perf_trajectory -- --check
  cargo run -q --release -p kfds-bench --bin perf_trajectory -- --check knn
  cargo run -q --release -p kfds-bench --bin perf_trajectory -- --check refactor
  KFDS_REFACTOR=off cargo run -q --release -p kfds-bench --bin perf_trajectory -- --check refactor
  cargo run -q --release -p kfds-bench --bin perf_trajectory -- --check batch
  KFDS_BATCH=off cargo run -q --release -p kfds-bench --bin perf_trajectory -- --check batch
  cargo run -q --release -p kfds-bench --bin perf_trajectory -- --check scaling
else
  cargo run -q -p kfds-bench --bin perf_trajectory -- --check
  cargo run -q -p kfds-bench --bin perf_trajectory -- --check knn
  cargo run -q -p kfds-bench --bin perf_trajectory -- --check refactor
  KFDS_REFACTOR=off cargo run -q -p kfds-bench --bin perf_trajectory -- --check refactor
  cargo run -q -p kfds-bench --bin perf_trajectory -- --check batch
  KFDS_BATCH=off cargo run -q -p kfds-bench --bin perf_trajectory -- --check batch
  cargo run -q -p kfds-bench --bin perf_trajectory -- --check scaling
fi

echo "== kfds-serve smoke (single-node, then sharded) =="
# Stands up the batched solve service under closed-loop load and asserts a
# clean run: zero errors, every request answered, cache hit rate > 0, and
# exactly one λ-free setup build across the λ-only key spread (the
# two-level cache contract). The --shards 2 lane routes every batch
# through the shard tier and additionally asserts the routed answer is
# bitwise-identical to the unsharded blocked solve plus per-shard cache
# counters (one local partition fill per shard per key, zero errors, zero
# fallbacks).
if [[ $fast -eq 0 ]]; then
  cargo run -q --release -p kfds-serve --bin kfds-serve -- --smoke --n 1024 --keys 2 --clients 8 --requests 64
  cargo run -q --release -p kfds-serve --bin kfds-serve -- --smoke --shards 2 --n 1024 --keys 2 --clients 8 --requests 64
  # Kill-switch lanes: KFDS_SERVE_BATCH=off must still answer every
  # request (batches of one), and KFDS_SHARD=off must turn a --shards
  # request back into the bitwise-identical single-node service.
  KFDS_SERVE_BATCH=off cargo run -q --release -p kfds-serve --bin kfds-serve -- --smoke --n 1024 --keys 2 --clients 8 --requests 64
  KFDS_SHARD=off cargo run -q --release -p kfds-serve --bin kfds-serve -- --smoke --shards 2 --n 1024 --keys 2 --clients 8 --requests 64
else
  cargo run -q -p kfds-serve --bin kfds-serve -- --smoke --n 512 --keys 2 --clients 4 --requests 32
  cargo run -q -p kfds-serve --bin kfds-serve -- --smoke --shards 2 --n 512 --keys 2 --clients 4 --requests 32
  KFDS_SERVE_BATCH=off cargo run -q -p kfds-serve --bin kfds-serve -- --smoke --n 512 --keys 2 --clients 4 --requests 32
  KFDS_SHARD=off cargo run -q -p kfds-serve --bin kfds-serve -- --smoke --shards 2 --n 512 --keys 2 --clients 4 --requests 32
fi

echo "CI OK"
