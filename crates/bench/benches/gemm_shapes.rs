//! Tall-skinny GEMM split-policy micro-benchmark.
//!
//! The factorization's dominant GEMMs are tall and skinny (`P̂` panels:
//! many rows, `s ≤ 128` columns). The original `gemm_parallel` only split
//! over columns (`n > NC_PAR`), leaving those shapes serial; the row-split
//! path bisects over MC-aligned row panels whenever `m ≥ MC_PAR`. This
//! bench compares:
//!
//! * `serial`  — 1-thread pool: the policy keeps every shape sequential.
//! * `row_split` — 4-thread pool on `n ≤ 128` shapes: the new path.
//! * `col_split` — 4-thread pool on `n = 1024` shapes: the pre-existing
//!   column split, as a reference.
//!
//! On a multi-core host `row_split` should approach the core count for
//! `m ≥ 2048`; on a single-CPU container it measures the split overhead
//! instead (expected within a few percent of serial).
//!
//! ```sh
//! cargo bench -p kfds-bench --bench gemm_shapes
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kfds_la::{gemm, Mat, Trans};
use std::hint::black_box;

fn rand_mat(m: usize, n: usize, seed: u64) -> Mat {
    let mut state = seed | 1;
    Mat::from_fn(m, n, |_, _| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    })
}

fn run_gemm(a: &Mat, b: &Mat, out: &mut Mat) -> f64 {
    gemm(1.0, a.rb(), Trans::No, b.rb(), Trans::No, 0.0, out.rb_mut());
    out.as_slice()[0]
}

fn bench_tall_skinny(c: &mut Criterion) {
    let k = 256usize;
    let serial = rayon::ThreadPoolBuilder::new().num_threads(1).build().expect("pool");
    let par = rayon::ThreadPoolBuilder::new().num_threads(4).build().expect("pool");

    let mut group = c.benchmark_group("gemm_tall_skinny");
    group.sample_size(10);
    for m in [512usize, 2048, 8192, 16384] {
        for n in [32usize, 64, 128] {
            let a = rand_mat(m, k, 1);
            let b = rand_mat(k, n, 2);
            let mut out = Mat::zeros(m, n);
            group.bench_with_input(BenchmarkId::new("serial", format!("{m}x{n}")), &m, |bch, _| {
                bch.iter(|| serial.install(|| black_box(run_gemm(&a, &b, &mut out))))
            });
            group.bench_with_input(
                BenchmarkId::new("row_split", format!("{m}x{n}")),
                &m,
                |bch, _| bch.iter(|| par.install(|| black_box(run_gemm(&a, &b, &mut out)))),
            );
        }
    }
    group.finish();

    // Reference: the pre-existing column split on genuinely wide shapes.
    let mut group = c.benchmark_group("gemm_wide");
    group.sample_size(10);
    for m in [2048usize, 8192] {
        let n = 1024usize;
        let a = rand_mat(m, k, 3);
        let b = rand_mat(k, n, 4);
        let mut out = Mat::zeros(m, n);
        group.bench_with_input(BenchmarkId::new("col_split", format!("{m}x{n}")), &m, |bch, _| {
            bch.iter(|| par.install(|| black_box(run_gemm(&a, &b, &mut out))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tall_skinny);
criterion_main!(benches);
