//! Criterion micro-benchmarks for the geometric substrate.

use criterion::{criterion_group, criterion_main, Criterion};
use kfds_tree::datasets::normal_embedded;
use kfds_tree::{knn_all, BallTree};
use std::hint::black_box;

fn bench_tree(c: &mut Criterion) {
    let pts = normal_embedded(8192, 4, 16, 0.05, 9);
    let mut group = c.benchmark_group("tree");
    group.sample_size(10);
    group.bench_function("build_8K", |b| b.iter(|| black_box(BallTree::build(&pts, 128).depth())));
    let tree = BallTree::build(&pts, 128);
    group.bench_function("knn16_8K", |b| b.iter(|| black_box(knn_all(&tree, 16).k())));
    group.finish();
}

criterion_group!(benches, bench_tree);
criterion_main!(benches);
