//! Criterion micro-benchmarks for the dense linear algebra substrate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kfds_la::{gemm, ColPivQr, Lu, Mat, Trans};
use std::hint::black_box;

fn rand_mat(m: usize, n: usize, seed: u64) -> Mat {
    let mut state = seed | 1;
    Mat::from_fn(m, n, |_, _| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    })
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    group.sample_size(10);
    for n in [128usize, 256] {
        let a = rand_mat(n, n, 1);
        let b = rand_mat(n, n, 2);
        let mut out = Mat::zeros(n, n);
        group.bench_with_input(BenchmarkId::new("nxn", n), &n, |bch, _| {
            bch.iter(|| {
                gemm(1.0, a.rb(), Trans::No, b.rb(), Trans::No, 0.0, out.rb_mut());
                black_box(out.as_slice()[0])
            })
        });
    }
    group.finish();
}

fn bench_lu(c: &mut Criterion) {
    let mut group = c.benchmark_group("lu");
    group.sample_size(10);
    for n in [128usize, 256] {
        let mut a = rand_mat(n, n, 3);
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        group.bench_with_input(BenchmarkId::new("factor", n), &n, |bch, _| {
            bch.iter(|| black_box(Lu::factor(a.clone()).expect("LU").min_pivot_ratio()))
        });
    }
    group.finish();
}

fn bench_cpqr(c: &mut Criterion) {
    let mut group = c.benchmark_group("cpqr");
    group.sample_size(10);
    // Tall skinny blocks, the skeletonization workload shape.
    let a = rand_mat(256, 128, 5);
    group.bench_function("truncated_256x128", |bch| {
        bch.iter(|| black_box(ColPivQr::factor_truncated(a.clone(), 1e-6, 64).rank()))
    });
    group.finish();
}

criterion_group!(benches, bench_gemm, bench_lu, bench_cpqr);
criterion_main!(benches);
