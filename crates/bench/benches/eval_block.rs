//! GEMM-backed vs scalar kernel block assembly.
//!
//! `eval_block` builds K[rows, cols] for skeletonization and factorization.
//! The scalar path (`KFDS_EVAL_GEMM=off`) computes each squared distance
//! point-pair by point-pair; the GEMM path gathers the coordinate panels,
//! forms the Gram block `Xr^T Xc` through the BLAS-3 microkernels, and
//! finishes with the vectorized `eval_parts_many` epilogue. Shapes mirror
//! the sampled blocks skeletonization actually assembles.
//!
//! ```sh
//! cargo bench -p kfds-bench --bench eval_block
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kfds_kernels::{eval_block, set_gemm_eval_enabled, Gaussian};
use kfds_tree::PointSet;
use std::hint::black_box;

fn rand_points(n: usize, d: usize, seed: u64) -> PointSet {
    let mut state = seed | 1;
    let data: Vec<f64> = (0..n * d)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
        .collect();
    PointSet::from_col_major(d, data)
}

fn bench_eval_block(c: &mut Criterion) {
    let mut group = c.benchmark_group("eval_block");
    group.sample_size(10);
    let kernel = Gaussian::new(1.0);
    // (m, n, d): sampled-block shapes at low and moderate dimension.
    for &(m, n, d) in &[(256usize, 128usize, 4usize), (256, 128, 64), (512, 256, 4), (512, 256, 64)]
    {
        let pts = rand_points(m + n, d, (m * n * d) as u64);
        let rows: Vec<usize> = (0..m).collect();
        let cols: Vec<usize> = (m..m + n).collect();
        group.bench_with_input(
            BenchmarkId::new("scalar", format!("{m}x{n}_d{d}")),
            &m,
            |bch, _| {
                set_gemm_eval_enabled(false);
                bch.iter(|| black_box(eval_block(&kernel, &pts, &rows, &cols)));
                set_gemm_eval_enabled(true);
            },
        );
        group.bench_with_input(BenchmarkId::new("gemm", format!("{m}x{n}_d{d}")), &m, |bch, _| {
            set_gemm_eval_enabled(true);
            bch.iter(|| black_box(eval_block(&kernel, &pts, &rows, &cols)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_eval_block);
criterion_main!(benches);
