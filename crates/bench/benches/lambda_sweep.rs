//! Criterion benchmarks: the λ-sweep refactorization split. One fresh
//! StoredGemv factorization is the per-λ cost the legacy sweep pays; the
//! refactor path pays the assembly once and then only linear algebra per
//! λ. An 8-λ sweep is measured end-to-end both ways.

use criterion::{criterion_group, criterion_main, Criterion};
use kfds_askit::{skeletonize, SkelConfig};
use kfds_core::{assemble_blocks, factorize, factorize_with_blocks, SolverConfig, StorageMode};
use kfds_kernels::Gaussian;
use kfds_tree::datasets::normal_embedded;
use kfds_tree::BallTree;
use std::hint::black_box;
use std::sync::Arc;

const LAMBDAS: [f64; 8] = [1e-3, 1e-2, 0.1, 0.25, 0.5, 1.0, 2.0, 10.0];

fn bench_lambda_sweep(c: &mut Criterion) {
    let n = 2048;
    let points = normal_embedded(n, 3, 8, 0.05, 5);
    let kernel = Gaussian::new(1.5);
    let tree = BallTree::build(&points, 64);
    let st = skeletonize(
        tree,
        &kernel,
        SkelConfig::default().with_tol(0.0).with_max_rank(48).with_neighbors(8),
    );
    let base = SolverConfig::default().with_storage(StorageMode::StoredGemv);

    let mut group = c.benchmark_group("lambda_sweep_2K");
    group.sample_size(10);
    // Per-λ costs: fresh factorization vs refactorization over blocks
    // assembled outside the timer (the steady-state sweep iteration).
    group.bench_function("fresh_factorize_per_lambda", |b| {
        let cfg = base.with_lambda(0.5);
        b.iter(|| black_box(factorize(&st, &kernel, cfg).expect("factorize").stats().flops))
    });
    group.bench_function("refactor_per_lambda", |b| {
        let blocks = Arc::new(assemble_blocks(&st, &kernel));
        let cfg = base.with_lambda(0.5);
        b.iter(|| {
            black_box(
                factorize_with_blocks(&st, &kernel, Arc::clone(&blocks), cfg)
                    .expect("refactor")
                    .stats()
                    .flops,
            )
        })
    });
    // End-to-end 8-λ sweeps, assembly included where the path pays it.
    group.bench_function("sweep8_legacy", |b| {
        b.iter(|| {
            for &lambda in &LAMBDAS {
                black_box(
                    factorize(&st, &kernel, base.with_lambda(lambda))
                        .expect("factorize")
                        .stats()
                        .flops,
                );
            }
        })
    });
    group.bench_function("sweep8_refactor", |b| {
        b.iter(|| {
            let blocks = Arc::new(assemble_blocks(&st, &kernel));
            for &lambda in &LAMBDAS {
                black_box(
                    factorize_with_blocks(
                        &st,
                        &kernel,
                        Arc::clone(&blocks),
                        base.with_lambda(lambda),
                    )
                    .expect("refactor")
                    .stats()
                    .flops,
                );
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_lambda_sweep);
criterion_main!(benches);
