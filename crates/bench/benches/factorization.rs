//! Criterion benchmarks: the O(N log N) factorization vs the O(N log² N)
//! baseline (Table III's measurement core at micro scale).

use criterion::{criterion_group, criterion_main, Criterion};
use kfds_askit::{skeletonize, SkelConfig};
use kfds_core::{factorize, factorize_baseline, SolverConfig};
use kfds_kernels::Gaussian;
use kfds_tree::datasets::normal_embedded;
use kfds_tree::BallTree;
use std::hint::black_box;

fn bench_factorization(c: &mut Criterion) {
    let n = 2048;
    let points = normal_embedded(n, 3, 8, 0.05, 5);
    let kernel = Gaussian::new(1.5);
    let tree = BallTree::build(&points, 64);
    let st = skeletonize(
        tree,
        &kernel,
        SkelConfig::default().with_tol(0.0).with_max_rank(48).with_neighbors(8),
    );
    let cfg = SolverConfig::default().with_lambda(1.0);

    let mut group = c.benchmark_group("factorization_2K");
    group.sample_size(10);
    group.bench_function("telescoped_nlogn", |b| {
        b.iter(|| black_box(factorize(&st, &kernel, cfg).expect("factorize").stats().flops))
    });
    group.bench_function("baseline_nlog2n", |b| {
        b.iter(|| black_box(factorize_baseline(&st, &kernel, cfg).expect("baseline").stats().flops))
    });
    group.finish();
}

criterion_group!(benches, bench_factorization);
criterion_main!(benches);
