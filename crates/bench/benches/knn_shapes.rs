//! Criterion micro-benchmarks for the blocked vs scalar kNN paths.
//!
//! Covers both search modes across the shapes the solver harness actually
//! uses: exact dual-tree search at moderate ambient dimension (the Table
//! III COVTYPE route) and randomized-projection approximate search at
//! d = 64 (the route `harness_skel_config` picks for dim >= 64). Each
//! shape runs under both `KFDS_KNN` states via the runtime override, so
//! one binary reports the A/B pair.

use criterion::{criterion_group, criterion_main, Criterion};
use kfds_tree::datasets::normal_embedded;
use kfds_tree::{knn_all, knn_approximate, set_knn_blocked, BallTree};
use std::hint::black_box;

fn bench_knn_shapes(c: &mut Criterion) {
    let mut group = c.benchmark_group("knn_shapes");
    group.sample_size(10);

    // Exact dual-tree vs per-query descent.
    for &(n, intrinsic, d) in &[(4096usize, 4usize, 16usize), (4096, 8, 54)] {
        let pts = normal_embedded(n, intrinsic, d, 0.1, 17);
        let tree = BallTree::build(&pts, 128);
        for &blocked in &[true, false] {
            set_knn_blocked(blocked);
            let tag = if blocked { "blocked" } else { "scalar" };
            group.bench_function(format!("exact16_n{n}_d{d}_{tag}"), |b| {
                b.iter(|| black_box(knn_all(&tree, 16).k()))
            });
        }
    }

    // Approximate projection-tree path at d = 64 (8 trees, like the
    // harness), batched projections + identity scoring vs the scalar path.
    let pts = normal_embedded(8192, 6, 64, 0.1, 17);
    let tree = BallTree::build(&pts, 128);
    for &blocked in &[true, false] {
        set_knn_blocked(blocked);
        let tag = if blocked { "blocked" } else { "scalar" };
        group.bench_function(format!("approx16_t8_n8192_d64_{tag}"), |b| {
            b.iter(|| black_box(knn_approximate(&tree, 16, 8, 42).k()))
        });
    }

    set_knn_blocked(true);
    group.finish();
}

criterion_group!(benches, bench_knn_shapes);
criterion_main!(benches);
