//! SIMD microkernel A/B micro-benchmarks.
//!
//! Each shape family runs twice — `scalar` (vector kernels disabled via
//! [`kfds_la::simd::set_simd_enabled`]) and `simd` — so the microkernel
//! win is visible per shape rather than only end-to-end:
//!
//! * `gemm` — square blocks (the skeletonization CPQR/ID working sets),
//!   the tall-skinny panel products dominating the factorization, and the
//!   small `P̂`-apply shapes.
//! * `gemv` — the solve's dominant primitive.
//! * `gsks` — the fused summation at small source dimensions `d`, where
//!   the rank-`d` register tile and the vectorized `exp` epilogue carry
//!   the cost.
//!
//! ```sh
//! cargo bench -p kfds-bench --bench microkernel
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kfds_kernels::{sum_fused, Gaussian};
use kfds_la::{gemm, simd, Mat, Trans};
use kfds_tree::PointSet;
use std::hint::black_box;

fn rand_mat(m: usize, n: usize, seed: u64) -> Mat {
    let mut state = seed | 1;
    Mat::from_fn(m, n, |_, _| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    })
}

fn rand_points(n: usize, d: usize, seed: u64) -> PointSet {
    let m = rand_mat(d, n, seed);
    PointSet::from_col_major(d, m.into_vec())
}

const MODES: [(&str, bool); 2] = [("scalar", false), ("simd", true)];

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("microkernel_gemm");
    group.sample_size(10);
    for &(m, k, n, tag) in &[
        (256usize, 256usize, 256usize, "square_256"),
        (512, 512, 512, "square_512"),
        (4096, 256, 64, "tall_skinny_4096x64"),
        (8192, 16, 8, "panel_apply_8192x8"),
    ] {
        let a = rand_mat(m, k, 1);
        let b = rand_mat(k, n, 2);
        let mut out = Mat::zeros(m, n);
        for (name, on) in MODES {
            group.bench_with_input(BenchmarkId::new(name, tag), &m, |bch, _| {
                simd::set_simd_enabled(on);
                bch.iter(|| {
                    gemm(1.0, a.rb(), Trans::No, b.rb(), Trans::No, 0.0, out.rb_mut());
                    black_box(out.as_slice()[0])
                })
            });
        }
    }
    simd::set_simd_enabled(true);
    group.finish();
}

fn bench_gemv(c: &mut Criterion) {
    let mut group = c.benchmark_group("microkernel_gemv");
    group.sample_size(10);
    for &(m, n) in &[(1024usize, 1024usize), (8192, 128)] {
        let a = rand_mat(m, n, 3);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.13).sin()).collect();
        let mut y = vec![0.0; m];
        for (name, on) in MODES {
            group.bench_with_input(BenchmarkId::new(name, format!("{m}x{n}")), &m, |bch, _| {
                simd::set_simd_enabled(on);
                bch.iter(|| {
                    kfds_la::blas2::gemv(1.0, a.rb(), &x, 0.0, &mut y);
                    black_box(y[0])
                })
            });
        }
    }
    simd::set_simd_enabled(true);
    group.finish();
}

fn bench_gsks_tiles(c: &mut Criterion) {
    let mut group = c.benchmark_group("microkernel_gsks");
    group.sample_size(10);
    let n = 2048usize;
    let k = Gaussian::new(1.0);
    for &d in &[3usize, 8, 16] {
        let pts = rand_points(n, d, 5);
        let rows: Vec<usize> = (0..n / 2).collect();
        let cols: Vec<usize> = (n / 2..n).collect();
        let u: Vec<f64> = (0..cols.len()).map(|i| (i as f64 * 0.7).sin()).collect();
        let mut w = vec![0.0; rows.len()];
        for (name, on) in MODES {
            group.bench_with_input(BenchmarkId::new(name, format!("d{d}")), &d, |bch, _| {
                simd::set_simd_enabled(on);
                bch.iter(|| {
                    sum_fused(&k, &pts, &rows, &cols, &u, &mut w);
                    black_box(w[0])
                })
            });
        }
    }
    simd::set_simd_enabled(true);
    group.finish();
}

criterion_group!(benches, bench_gemm, bench_gemv, bench_gsks_tiles);
criterion_main!(benches);
