//! Criterion micro-benchmarks for the kernel-summation engines (Table I's
//! measurement core at a statistically robust micro scale).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kfds_kernels::{sum_fused, sum_reference, Gaussian};
use kfds_tree::datasets::uniform_cube;
use std::hint::black_box;

fn bench_summation(c: &mut Criterion) {
    let n = 1024;
    let kernel = Gaussian::new(1.0);
    let mut group = c.benchmark_group("kernel_summation_1K");
    group.sample_size(10);
    for d in [4usize, 36, 132] {
        let pts = uniform_cube(2 * n, d, d as u64);
        let rows: Vec<usize> = (0..n).collect();
        let cols: Vec<usize> = (n..2 * n).collect();
        let u: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        let mut w = vec![0.0; n];
        group.bench_with_input(BenchmarkId::new("reference_two_pass", d), &d, |b, _| {
            b.iter(|| {
                sum_reference(&kernel, &pts, &rows, &cols, black_box(&u), &mut w);
                black_box(w[0])
            })
        });
        group.bench_with_input(BenchmarkId::new("gsks_fused", d), &d, |b, _| {
            b.iter(|| {
                sum_fused(&kernel, &pts, &rows, &cols, black_box(&u), &mut w);
                black_box(w[0])
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_summation);
criterion_main!(benches);
