//! Criterion benchmarks: the level-batched execution engine
//! (`KFDS_BATCH`) against the per-node reference. Both engines produce
//! bitwise-identical output (that contract is property-tested in
//! `kfds-core/tests/batch_equiv.rs`); this bench measures what the
//! batching actually buys — one planned launch per shape group per level
//! instead of one dense-op cascade per node — over the three setup
//! stages it rewires: skeletonization, kernel block assembly, and the
//! factorization sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use kfds_askit::{compute_neighbors, skeletonize_with_neighbors, SkelConfig};
use kfds_core::{assemble_blocks, factorize, SolverConfig};
use kfds_kernels::Gaussian;
use kfds_tree::datasets::normal_embedded;
use kfds_tree::BallTree;
use std::hint::black_box;

fn bench_level_batch(c: &mut Criterion) {
    let n = 2048;
    let points = normal_embedded(n, 3, 8, 0.05, 5);
    let kernel = Gaussian::new(1.5);
    let skel_cfg = SkelConfig::default().with_tol(0.0).with_max_rank(48).with_neighbors(8);
    let tree = BallTree::build(&points, 64);
    let nn = compute_neighbors(&tree, &skel_cfg);
    let st = skeletonize_with_neighbors(tree.clone(), &kernel, skel_cfg.clone(), &nn);
    let cfg = SolverConfig::default().with_lambda(0.5);

    let mut group = c.benchmark_group("level_batch_2K");
    group.sample_size(10);
    let prev = kfds_la::batch_active();
    for (name, batched) in [("pernode", false), ("batched", true)] {
        group.bench_function(format!("skeletonize_{name}"), |b| {
            kfds_la::set_batch_enabled(batched);
            b.iter(|| {
                black_box(skeletonize_with_neighbors(tree.clone(), &kernel, skel_cfg.clone(), &nn))
            })
        });
        group.bench_function(format!("assemble_{name}"), |b| {
            kfds_la::set_batch_enabled(batched);
            b.iter(|| black_box(assemble_blocks(&st, &kernel).stats().bytes))
        });
        group.bench_function(format!("factorize_{name}"), |b| {
            kfds_la::set_batch_enabled(batched);
            b.iter(|| black_box(factorize(&st, &kernel, cfg).expect("factorize").stats().flops))
        });
    }
    kfds_la::set_batch_enabled(prev);
    group.finish();
}

criterion_group!(benches, bench_level_batch);
criterion_main!(benches);
