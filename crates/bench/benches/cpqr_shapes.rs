//! Blocked vs unblocked column-pivoted QR on skeletonization shapes.
//!
//! The ID inside `skeletonize_node` factors sampled blocks whose rows are
//! `cols + oversample` and whose columns are a node's points (leaves) or
//! the children's combined skeletons (internal nodes) — tall-ish blocks of
//! a few hundred rows and 64–256 columns, truncated at `max_rank`. This
//! bench compares the BLAS-2 one-reflector path (`KFDS_CPQR=unblocked`)
//! against the blocked `DLAQPS`-style panel path on those shapes:
//!
//! * `unblocked` — one Householder application to the whole trailing
//!   matrix per pivot step (memory-bound, BLAS-2).
//! * `blocked`   — panels of `NB` pivots, one rank-`NB` GEMM write-back
//!   per panel through the SIMD microkernels (BLAS-3).
//!
//! ```sh
//! cargo bench -p kfds-bench --bench cpqr_shapes
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kfds_la::{ColPivQr, Mat};
use std::hint::black_box;

fn rand_mat(m: usize, n: usize, seed: u64) -> Mat {
    let mut state = seed | 1;
    Mat::from_fn(m, n, |_, _| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    })
}

/// Matrix with geometrically decaying column norms, so truncation at a
/// tolerance exercises the early-exit paths like a real kernel block does.
fn decaying_mat(m: usize, n: usize, base: f64, seed: u64) -> Mat {
    let mut a = rand_mat(m, n, seed);
    for j in 0..n {
        let s = base.powi(j as i32 / 4);
        for v in a.col_mut(j) {
            *v *= s;
        }
    }
    a
}

fn bench_cpqr(c: &mut Criterion) {
    let mut group = c.benchmark_group("cpqr_shapes");
    group.sample_size(10);
    // (m, n, max_rank): leaf blocks, internal skeleton-union blocks, and a
    // full-rank square reference.
    for &(m, n, max_rank) in
        &[(192usize, 128usize, 128usize), (384, 128, 128), (384, 256, 128), (512, 512, 256)]
    {
        let a = decaying_mat(m, n, 0.9, (m * n) as u64);
        group.bench_with_input(
            BenchmarkId::new("unblocked", format!("{m}x{n}_r{max_rank}")),
            &m,
            |bch, _| {
                bch.iter(|| {
                    black_box(
                        ColPivQr::factor_truncated_unblocked(a.clone(), 1e-10, max_rank).rank(),
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("blocked", format!("{m}x{n}_r{max_rank}")),
            &m,
            |bch, _| {
                bch.iter(|| {
                    black_box(ColPivQr::factor_truncated_blocked(a.clone(), 1e-10, max_rank).rank())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_cpqr);
criterion_main!(benches);
