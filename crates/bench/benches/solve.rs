//! Criterion benchmarks: the solve phase under the three storage modes
//! (Table IV's measurement core at micro scale).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kfds_askit::{skeletonize, SkelConfig};
use kfds_core::{factorize, SolverConfig, StorageMode};
use kfds_kernels::Gaussian;
use kfds_tree::datasets::normal_embedded;
use kfds_tree::BallTree;
use std::hint::black_box;

fn bench_solve(c: &mut Criterion) {
    let n = 2048;
    let points = normal_embedded(n, 3, 16, 0.05, 7);
    let kernel = Gaussian::new(2.0);
    let tree = BallTree::build(&points, 64);
    let st = skeletonize(
        tree,
        &kernel,
        SkelConfig::default().with_tol(0.0).with_max_rank(48).with_neighbors(8),
    );
    let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).cos()).collect();

    let mut group = c.benchmark_group("solve_2K");
    group.sample_size(20);
    for (mode, label) in [
        (StorageMode::StoredGemv, "stored_gemv"),
        (StorageMode::RecomputeGemm, "recompute_gemm"),
        (StorageMode::Gsks, "gsks_fused"),
    ] {
        let cfg = SolverConfig::default().with_lambda(1.0).with_storage(mode);
        let ft = factorize(&st, &kernel, cfg).expect("factorize");
        group.bench_with_input(BenchmarkId::new("solve", label), &mode, |bch, _| {
            bch.iter(|| {
                let mut x = b.clone();
                ft.solve_in_place(&mut x).expect("solve");
                black_box(x[0])
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solve);
criterion_main!(benches);
