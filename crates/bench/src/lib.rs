//! Shared infrastructure for the table/figure reproduction harnesses.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation (§V); `EXPERIMENTS.md` maps experiment ids to
//! binaries and records paper-vs-measured comparisons. Sizes are scaled to
//! a single machine (`--scale` multiplies the default problem sizes).

#![forbid(unsafe_code)]

use kfds_askit::{skeletonize, SkelConfig, SkeletonTree};
use kfds_kernels::Gaussian;
use kfds_tree::datasets::{self, DatasetSpec};
use kfds_tree::{BallTree, PointSet};
use std::time::Instant;

/// Times a closure, returning `(result, seconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

/// Relative Euclidean error `‖a − b‖ / ‖b‖`.
pub fn rel_err(a: &[f64], b: &[f64]) -> f64 {
    let num: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    let den: f64 = b.iter().map(|v| v * v).sum();
    (num / den.max(1e-300)).sqrt()
}

/// Deterministic test vector.
pub fn test_vec(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
        .collect()
}

/// Parses `--scale <f>` style flags from `std::env::args`, with default.
pub fn arg_f64(name: &str, default: f64) -> f64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// `true` if the flag is present.
pub fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// A labeled dataset stand-in instance for the Table II–V experiments.
pub struct Standin {
    /// Paper dataset name.
    pub name: &'static str,
    /// Points (normalized, as in the paper).
    pub points: PointSet,
    /// Gaussian bandwidth from Table II.
    pub h: f64,
    /// Regularizer from Table II.
    pub lambda: f64,
}

/// Builds the stand-in for a named Table-II dataset at size `n`.
pub fn standin(name: &str, n: usize, seed: u64) -> Standin {
    let spec: &DatasetSpec = datasets::spec_by_name(name).expect("unknown dataset name");
    Standin {
        name: spec.name,
        points: datasets::table2_standin(spec, n, seed),
        h: spec.h,
        lambda: spec.lambda,
    }
}

/// A bandwidth usable for our synthetic stand-ins: the paper's `h` values
/// are tuned to the real datasets; for the normalized synthetic stand-ins
/// a bandwidth proportional to the ambient dimension's typical distance
/// (`√(2d)`) keeps the kernel in the "neither sparse nor low-rank" regime
/// the paper targets.
pub fn scaled_bandwidth(d: usize, factor: f64) -> f64 {
    factor * (2.0 * d as f64).sqrt()
}

/// The skeletonization config the harnesses share: tolerance/rank caps
/// plus the kNN mode. High ambient dimension defeats exact ball-tree kNN
/// pruning (O(N²d)), so those workloads switch to ASKIT's
/// randomized-projection-tree mode.
pub fn harness_skel_config(dim: usize, tol: f64, max_rank: usize, max_level: usize) -> SkelConfig {
    let mut cfg = SkelConfig::default()
        .with_tol(tol)
        .with_max_rank(max_rank)
        .with_neighbors(16)
        .with_max_level(max_level);
    if dim >= 64 {
        cfg = cfg.with_approx_knn(8);
    }
    cfg
}

/// Builds tree + skeletons with common parameters, timed.
pub fn build_skeleton_tree(
    points: &PointSet,
    h: f64,
    m: usize,
    tol: f64,
    max_rank: usize,
    max_level: usize,
) -> (SkeletonTree, Gaussian, f64) {
    let kernel = Gaussian::new(h);
    let cfg = harness_skel_config(points.dim(), tol, max_rank, max_level);
    let (st, secs) = timed(|| {
        let tree = BallTree::build(points, m);
        skeletonize(tree, &kernel, cfg)
    });
    (st, kernel, secs)
}

/// Prints a markdown-style table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Prints a markdown-style header + separator.
pub fn header(cols: &[&str]) {
    println!("| {} |", cols.join(" | "));
    println!("|{}|", cols.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers() {
        let (v, secs) = timed(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
        assert!(rel_err(&[1.0, 0.0], &[1.0, 0.0]) < 1e-15);
        let s = standin("SUSY", 64, 3);
        assert_eq!(s.points.dim(), 8);
        assert!(scaled_bandwidth(8, 0.5) > 1.0);
    }
}
