//! **Figure 5** — convergence of the relative residual over time for
//! solving `λI + K̃`: (a) unpreconditioned GMRES on the treecode operator
//! (blue curves) vs (b) the hybrid solver (orange curves), across
//! condition numbers `κ ∈ {1e2, 1e3, 1e5}` set by `λ = c·σ₁(K̃)`,
//! `c ∈ {1e-2, 1e-3, 1e-5}` — a cross-validation-style λ sweep.
//!
//! Output: one residual-vs-time series per (dataset, λ, method), printed
//! as CSV-style rows (plot-ready), plus a summary table.
//!
//! ```sh
//! cargo run --release -p kfds-bench --bin fig5_convergence [-- --scale 2]
//! ```

use kfds_bench::{
    arg_f64, build_skeleton_tree, header, rel_err, row, scaled_bandwidth, standin, test_vec, timed,
};
use kfds_core::{estimate_sigma1, factorize, HybridSolver, SolverConfig};
use kfds_krylov::{gmres, FnOp, GmresOptions};

fn main() {
    let scale = arg_f64("--scale", 1.0);
    let n = (4096.0 * scale) as usize;
    let restriction = 4;
    let cs = [1e-2f64, 1e-3, 1e-5];
    println!("# Figure 5 — GMRES (a) vs hybrid (b) convergence, L = {restriction}, N = {n}");

    let mut summary: Vec<Vec<String>> = Vec::new();
    let mut id = 28; // paper numbering starts at #28
    for name in ["COVTYPE", "SUSY", "MNIST2M"] {
        let s = standin(name, n, 0xf165 + name.len() as u64);
        let h = scaled_bandwidth(s.points.dim(), 0.35);
        let (st, kernel, t_setup) = build_skeleton_tree(&s.points, h, 64, 1e-5, 96, restriction);
        let sigma1 = estimate_sigma1(&st, &kernel, 30);
        let b = test_vec(n, 11);

        for &c in &cs {
            let lambda = c * sigma1;
            let kappa = 1.0 / c; // target condition number
            let cfg = SolverConfig::default().with_lambda(lambda);

            // (a) Unpreconditioned GMRES on the full operator.
            let op = FnOp::new(n, |x: &[f64], y: &mut [f64]| {
                y.copy_from_slice(&kfds_askit::hier_matvec(&st, &kernel, lambda, x));
            });
            let opts = GmresOptions { tol: 1e-8, max_iters: 80, ..Default::default() };
            let (plain, t_plain) = timed(|| gmres(&op, &b, None, &opts));

            // (b) Hybrid: partial factorization + reduced GMRES.
            let (ft_res, t_factor) = timed(|| factorize(&st, &kernel, cfg));
            let (hy_x, hy_iters, hy_res, t_hybrid, unstable) = match &ft_res {
                Ok(ft) => {
                    let hy = HybridSolver::new(ft).expect("hybrid");
                    let (out, th) = timed(|| hy.solve(&b, &opts).expect("solve"));
                    let r = rel_err(&kfds_askit::hier_matvec(&st, &kernel, lambda, &out.x), &b);
                    (Some(out.x), out.gmres.iters, r, th, ft.stats().is_unstable())
                }
                Err(_) => (None, 0, f64::NAN, 0.0, true),
            };
            let _ = hy_x;

            println!("\n## #{id} {name}: lambda = {lambda:.3e} (kappa ~ {kappa:.0e}), setup offset (a) = {t_setup:.2}s, (b) = {:.2}s", t_setup + t_factor);
            println!("method,iter,seconds,relative_residual");
            for e in plain.trace.iter().step_by(10.max(plain.trace.len() / 12)) {
                println!("gmres,{},{:.3},{:.3e}", e.iter, t_setup + e.seconds, e.residual);
            }
            let r_plain = rel_err(&kfds_askit::hier_matvec(&st, &kernel, lambda, &plain.x), &b);
            println!("gmres,{},{:.3},{:.3e}  # final", plain.iters, t_setup + t_plain, r_plain);
            println!(
                "hybrid,{hy_iters},{:.3},{hy_res:.3e}  # final{}",
                t_setup + t_factor + t_hybrid,
                if unstable { " (instability detected — paper run #30 analogue)" } else { "" }
            );

            summary.push(vec![
                format!("#{id}"),
                name.to_string(),
                format!("{:.0e}", kappa),
                format!("{}/{r_plain:.0e}", plain.iters),
                format!("{hy_iters}/{hy_res:.0e}"),
                format!("{:.1}s vs {:.1}s", t_setup + t_plain, t_setup + t_factor + t_hybrid),
                if unstable { "detected".into() } else { "-".into() },
            ]);
            id += 1;
        }
    }

    println!("\n# summary (iters/residual per method; time includes setup offsets)");
    header(&[
        "exp",
        "dataset",
        "kappa",
        "GMRES (a)",
        "hybrid (b)",
        "total time a vs b",
        "instability",
    ]);
    for r in summary {
        row(&r);
    }
    println!("\n# paper shape: plain GMRES flattens as kappa grows (flat blue lines at");
    println!("# 1e5) while the hybrid keeps descending; hybrid solve-phase is 10-1000x");
    println!("# faster per digit once the factorization is amortized.");
}
