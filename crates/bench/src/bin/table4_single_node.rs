//! **Table IV** — single-node performance with level restriction `L = 3`
//! and fixed ranks (`m = s`): factorization time/GFLOP-rate plus solve
//! time under the three kernel-summation schemes (stored GEMV /
//! re-evaluated GEMM / fused GSKS), and the multi-rank (`p`) columns via
//! the simulated message-passing runtime.
//!
//! Paper: COVTYPE100K, `m = s = 2048`, `L = 3`, Haswell/KNL, `p ∈ {1,4}`.
//! Here: COVTYPE stand-in scaled to 16K points, `m = s = 256`.
//!
//! ```sh
//! cargo run --release -p kfds-bench --bin table4_single_node [-- --scale 2]
//! ```

use kfds_bench::{
    arg_f64, build_skeleton_tree, header, rel_err, row, scaled_bandwidth, standin, test_vec, timed,
};
use kfds_core::{dist_factorize, factorize, LevelRestrictedDirect, SolverConfig, StorageMode};

fn main() {
    let scale = arg_f64("--scale", 1.0);
    let n = (16384.0 * scale) as usize;
    let m = 256;
    let restriction = 3;
    let s = standin("COVTYPE", n, 0xc0417);
    let h = scaled_bandwidth(s.points.dim(), 0.35);
    println!("# Table IV — single-node performance, COVTYPE stand-in");
    println!("# N = {n}, d = {}, m = s = {m} (fixed rank), L = {restriction}\n", s.points.dim());

    // Fixed-rank skeletonization (tol = 0 disables adaptive truncation).
    let (st, kernel, t_setup) = build_skeleton_tree(&s.points, h, m, 0.0, m, restriction);
    println!("# setup (tree + kNN + skeletonization): {t_setup:.2}s");
    let b = test_vec(n, 5);

    header(&["config", "T_f (s)", "GF_f", "scheme", "T_s (s)", "residual"]);
    let mut reference: Option<Vec<f64>> = None;
    for (mode, label) in [
        (StorageMode::StoredGemv, "MatVec V with GEMV (stored)"),
        (StorageMode::RecomputeGemm, "re-evaluate V with GEMM"),
        (StorageMode::Gsks, "MatVec V with GSKS (fused)"),
    ] {
        // Level-restricted *direct* factorization, as in the paper's
        // Table IV: D factored per frontier subtree plus a dense LU of
        // the coalesced 2^L s reduced system.
        let cfg = SolverConfig::default().with_lambda(s.lambda).with_storage(mode);
        let ft = factorize(&st, &kernel, cfg).expect("partial factorization");
        let (direct, t_assemble) = timed(|| LevelRestrictedDirect::new(&ft).expect("direct"));
        let t_f = ft.stats().seconds + t_assemble;
        // One warm-up solve, then the timed measurement (3 solves).
        let _ = direct.solve(&b);
        let (x, t_s3) = timed(|| {
            let mut last = Vec::new();
            for _ in 0..3 {
                last = direct.solve(&b);
            }
            last
        });
        let t_s = t_s3 / 3.0;
        let applied = kfds_askit::hier_matvec(&st, &kernel, s.lambda, &x);
        let res = rel_err(&applied, &b);
        if let Some(r) = &reference {
            assert!(rel_err(&x, r) < 1e-8, "schemes disagree");
        } else {
            reference = Some(x.clone());
        }
        row(&[
            "p=1".into(),
            format!("{t_f:.2}"),
            format!("{:.2}", ft.stats().gflops()),
            label.into(),
            format!("{t_s:.2}"),
            format!("{res:.1e}"),
        ]);
    }

    // Multi-rank columns (the paper's p > 1 MPI runs): full factorization
    // (L = 1 — the distributed algorithm covers the whole tree) on the
    // simulated runtime.
    println!("\n# distributed ranks (full factorization, no level restriction):");
    let (st1, kernel1, _) = build_skeleton_tree(&s.points, h, m, 0.0, m, 1);
    header(&["p", "T_f (s)", "T_s (s)", "vs p=1"]);
    let cfg = SolverConfig::default().with_lambda(s.lambda);
    let mut ref_x: Option<Vec<f64>> = None;
    for p in [1usize, 2, 4] {
        if st1.tree().nodes_at_level(p.trailing_zeros() as usize).len() != p {
            continue;
        }
        let ds = dist_factorize(&st1, &kernel1, cfg, p).expect("dist");
        let (x, t_s) = timed(|| ds.solve(&b));
        let cmp = match &ref_x {
            Some(r) => format!("{:.1e}", rel_err(&x, r)),
            None => {
                ref_x = Some(x.clone());
                "-".into()
            }
        };
        row(&[p.to_string(), format!("{:.2}", ds.factor_seconds()), format!("{t_s:.2}"), cmp]);
    }
    println!("\n# paper shape: stored GEMV is the fastest solve (matches); the paper's GSKS");
    println!("# beats re-evaluated GEMM 4-7x thanks to vectorized exp in the fused AVX512");
    println!("# tile — on this scalar-exp machine the two matrix-free schemes tie at");
    println!("# d = 54 (cf. Table I: the GSKS advantage here concentrates at small d).");
}
