//! Ablation benches for the design choices called out in `DESIGN.md`,
//! beyond the paper's own tables:
//!
//! 1. telescoping (eq. 10) vs subtree traversal at fixed N — isolates the
//!    single algorithmic change behind Table III;
//! 2. adaptive vs fixed skeleton ranks — the load-balance trade-off the
//!    paper's future-work section discusses;
//! 3. level-restriction sweep `L = 1..4` — factorization time vs reduced
//!    system size vs hybrid iterations (the memory/time trade-off of
//!    §II-C);
//! 4. storage-mode crossover in `d` — when does the fused summation beat
//!    the stored blocks?
//!
//! ```sh
//! cargo run --release -p kfds-bench --bin ablations [-- --scale 2]
//! ```

use kfds_bench::{
    arg_f64, build_skeleton_tree, header, row, scaled_bandwidth, standin, test_vec, timed,
};
use kfds_core::{factorize, factorize_baseline, HybridSolver, SolverConfig, StorageMode};
use kfds_krylov::GmresOptions;
use kfds_tree::datasets::normal_embedded;

fn main() {
    let scale = arg_f64("--scale", 1.0);
    telescoping(scale);
    adaptive_vs_fixed(scale);
    level_sweep(scale);
    storage_crossover(scale);
    split_rule(scale);
    scheduler(scale);
    w_storage(scale);
}

/// Ablation 5 — the partitioner's split rule drives off-diagonal ranks.
fn split_rule(scale: f64) {
    use kfds_tree::{BallTree, SplitRule};
    let n = (8192.0 * scale) as usize;
    println!("# Ablation 5 — split rule (N = {n}, anisotropic 3-in-16-D data)\n");
    header(&["rule", "total skeleton", "approx err", "T_f (s)"]);
    let points = normal_embedded(n, 3, 16, 0.05, 51);
    let kernel = kfds_kernels::Gaussian::new(2.0);
    for (rule, label) in [
        (SplitRule::FarthestPair, "farthest-pair (ball)"),
        (SplitRule::MaxSpreadAxis, "max-spread axis (KD)"),
    ] {
        let tree = BallTree::build_with_rule(&points, 128, rule);
        let st = kfds_askit::skeletonize(
            tree,
            &kernel,
            kfds_askit::SkelConfig::default().with_tol(1e-4).with_max_rank(96).with_neighbors(16),
        );
        let err = kfds_askit::approx_error_estimate(&st, &kernel, 1);
        let (_, t_f) = timed(|| factorize(&st, &kernel, SolverConfig::default()).expect("f"));
        row(&[
            label.into(),
            st.total_skeleton_size().to_string(),
            format!("{err:.1e}"),
            format!("{t_f:.2}"),
        ]);
    }
    println!();
}

/// Ablation 6 — level-synchronous vs task-parallel scheduling (§VI).
fn scheduler(scale: f64) {
    let n = (8192.0 * scale) as usize;
    println!("# Ablation 6 — factorization scheduler (N = {n}, adaptive ranks)\n");
    header(&["scheduler", "T_f (s)", "flops (G)"]);
    let points = normal_embedded(n, 4, 16, 0.05, 53);
    // Adaptive ranks create the load imbalance task scheduling targets.
    let (st, kernel, _) = build_skeleton_tree(&points, 2.0, 128, 1e-5, 128, 1);
    let cfg = SolverConfig::default();
    let (f1, t1) = timed(|| factorize(&st, &kernel, cfg).expect("level"));
    let (f2, t2) = timed(|| kfds_core::factorize_taskparallel(&st, &kernel, cfg).expect("task"));
    row(&[
        "level-synchronous".into(),
        format!("{t1:.2}"),
        format!("{:.2}", f1.stats().flops / 1e9),
    ]);
    row(&[
        "task-parallel (dataflow)".into(),
        format!("{t2:.2}"),
        format!("{:.2}", f2.stats().flops / 1e9),
    ]);
    println!("# (single-core container: differences reflect scheduling overhead only)\n");
}

/// Ablation 7 — the §III W-storage trade-off.
fn w_storage(scale: f64) {
    let n = (8192.0 * scale) as usize;
    println!("# Ablation 7 — W (P-hat) storage scheme (N = {n})\n");
    header(&["scheme", "retained MiB", "T_f (s)", "T_s (s)"]);
    let points = normal_embedded(n, 4, 16, 0.05, 57);
    let (st, kernel, _) = build_skeleton_tree(&points, 2.0, 128, 0.0, 96, 1);
    let b = test_vec(n, 5);
    for (w, label) in [
        (kfds_core::WStorage::Stored, "stored (O(sN log N))"),
        (kfds_core::WStorage::Recompute, "recompute via eq. 10 (O(sN))"),
    ] {
        let cfg = SolverConfig::default().with_w_storage(w);
        let (ft, t_f) = timed(|| factorize(&st, &kernel, cfg).expect("f"));
        let (_, t_s) = timed(|| {
            for _ in 0..3 {
                let mut x = b.clone();
                ft.solve_in_place(&mut x).expect("solve");
            }
        });
        row(&[
            label.into(),
            format!("{:.1}", ft.stats().stored_bytes as f64 / (1024.0 * 1024.0)),
            format!("{t_f:.2}"),
            format!("{:.2}", t_s / 3.0),
        ]);
    }
    println!();
}

fn telescoping(scale: f64) {
    let n = (8192.0 * scale) as usize;
    println!("# Ablation 1 — telescoping vs subtree traversal (N = {n}, fixed s)\n");
    header(&["s", "traversal (s)", "telescoped (s)", "speedup", "flops ratio"]);
    let points = normal_embedded(n, 4, 16, 0.05, 31);
    for s in [32usize, 64, 128] {
        let (st, kernel, _) = build_skeleton_tree(&points, 2.0, 128, 0.0, s, 1);
        let cfg = SolverConfig::default().with_lambda(1.0);
        let (slow, t_slow) = timed(|| factorize_baseline(&st, &kernel, cfg).expect("baseline"));
        let (fast, t_fast) = timed(|| factorize(&st, &kernel, cfg).expect("telescoped"));
        row(&[
            s.to_string(),
            format!("{t_slow:.2}"),
            format!("{t_fast:.2}"),
            format!("{:.2}x", t_slow / t_fast),
            format!("{:.2}x", slow.stats().flops / fast.stats().flops),
        ]);
    }
    println!();
}

fn adaptive_vs_fixed(scale: f64) {
    let n = (8192.0 * scale) as usize;
    println!("# Ablation 2 — adaptive ranks (tau) vs fixed ranks (N = {n})\n");
    header(&["rank policy", "total skeleton", "T_f (s)", "memory (MiB)", "approx err"]);
    let points = normal_embedded(n, 4, 16, 0.05, 37);
    for (label, tol, smax) in
        [("fixed s=96", 0.0, 96usize), ("adaptive 1e-3", 1e-3, 96), ("adaptive 1e-6", 1e-6, 96)]
    {
        let (st, kernel, _) = build_skeleton_tree(&points, 2.0, 128, tol, smax, 1);
        let cfg = SolverConfig::default().with_lambda(1.0);
        let (ft, t_f) = timed(|| factorize(&st, &kernel, cfg).expect("factorize"));
        let err = kfds_askit::approx_error_estimate(&st, &kernel, 1);
        row(&[
            label.into(),
            st.total_skeleton_size().to_string(),
            format!("{t_f:.2}"),
            format!("{:.1}", ft.stats().stored_bytes as f64 / (1024.0 * 1024.0)),
            format!("{err:.1e}"),
        ]);
    }
    println!();
}

fn level_sweep(scale: f64) {
    let n = (8192.0 * scale) as usize;
    let s = standin("SUSY", n, 0xab1a7e);
    let h = scaled_bandwidth(s.points.dim(), 0.35);
    println!("# Ablation 3 — level-restriction sweep (SUSY stand-in, N = {n})\n");
    header(&["L", "frontier", "reduced dim", "T_f (s)", "T_s (s)", "KSP iters", "factor MiB"]);
    for restriction in [1usize, 2, 3, 4] {
        let (st, kernel, _) = build_skeleton_tree(&s.points, h, 64, 1e-5, 96, restriction);
        let cfg = SolverConfig::default().with_lambda(s.lambda);
        let (ft, t_f) = timed(|| factorize(&st, &kernel, cfg).expect("factorize"));
        let hy = HybridSolver::new(&ft).expect("hybrid");
        let b = test_vec(n, 3);
        let opts = GmresOptions { tol: 1e-9, max_iters: 300, ..Default::default() };
        let (out, t_s) = timed(|| hy.solve(&b, &opts).expect("solve"));
        row(&[
            restriction.to_string(),
            hy.frontier().len().to_string(),
            hy.reduced_dim().to_string(),
            format!("{t_f:.2}"),
            format!("{t_s:.2}"),
            out.gmres.iters.to_string(),
            format!("{:.1}", ft.stats().stored_bytes as f64 / (1024.0 * 1024.0)),
        ]);
    }
    println!();
}

fn storage_crossover(scale: f64) {
    let n = (4096.0 * scale) as usize;
    println!("# Ablation 4 — storage-mode solve time vs dimension (N = {n})\n");
    header(&["d", "stored GEMV (s)", "recompute GEMM (s)", "GSKS (s)", "stored MiB"]);
    for d in [4usize, 16, 64, 128] {
        let points = normal_embedded(n, 4.min(d), d, 0.05, 41);
        let (st, kernel, _) = build_skeleton_tree(&points, (d as f64).sqrt(), 128, 0.0, 64, 1);
        let b = test_vec(n, 7);
        let mut cells = vec![d.to_string()];
        let mut stored_mib = 0.0;
        for mode in [StorageMode::StoredGemv, StorageMode::RecomputeGemm, StorageMode::Gsks] {
            let cfg = SolverConfig::default().with_lambda(1.0).with_storage(mode);
            let ft = factorize(&st, &kernel, cfg).expect("factorize");
            if mode == StorageMode::StoredGemv {
                stored_mib = ft.stats().stored_bytes as f64 / (1024.0 * 1024.0);
            }
            // Time several solves for a stable measurement.
            let (_, t_s) = timed(|| {
                for _ in 0..5 {
                    let mut x = b.clone();
                    ft.solve_in_place(&mut x).expect("solve");
                }
            });
            cells.push(format!("{:.3}", t_s / 5.0));
        }
        cells.push(format!("{stored_mib:.1}"));
        row(&cells);
    }
    println!("\n# shape: stored GEMV is fastest but pays O(sN log N) memory; GSKS tracks it");
    println!("# within a small factor at small d and is matrix-free; recompute-GEMM pays");
    println!("# the O(mn) block materialization every solve.");
}
