//! **Figure 4** — complexity verification and strong scaling.
//!
//! Left (#17): factorization time vs `N` on the NORMAL64D set with fixed
//! rank `s` and `L = 1`; measured times must track the ideal `N log N`
//! curve and stay below `N log² N`.
//!
//! Right (#18): strong scaling — fixed `N`, growing worker count. The
//! paper scales to 3,072 Haswell / 4,352 KNL cores (62–70% efficiency);
//! this container exposes a single core, so thread-count sweeps exercise
//! the parallel code paths and measure their overhead rather than
//! speedup (recorded as such in `EXPERIMENTS.md`).
//!
//! ```sh
//! cargo run --release -p kfds-bench --bin fig4_scaling [-- --scale 2] [--large]
//! ```

use kfds_bench::{arg_f64, arg_flag, build_skeleton_tree, header, row, timed};
use kfds_core::{dist_factorize, factorize, SolverConfig};
use kfds_tree::datasets::normal_embedded;

fn main() {
    complexity_sweep();
    strong_scaling();
}

/// Fig. 4 left: N sweep against ideal N log N / N log^2 N curves.
fn complexity_sweep() {
    let scale = arg_f64("--scale", 1.0);
    let mut sizes: Vec<usize> =
        [4096, 8192, 16384, 32768].iter().map(|&n| (n as f64 * scale) as usize).collect();
    if arg_flag("--large") {
        sizes.push((65536.0 * scale) as usize);
    }
    let m = 128;
    let s_fixed = 64;
    println!("# Figure 4 (left) — O(N log N) verification, NORMAL64D stand-in");
    println!("# fixed rank s = {s_fixed}, m = {m}, L = 1\n");
    header(&["N", "T_f (s)", "ideal NlogN", "ideal Nlog2N", "T_f/NlogN (ns)"]);

    let mut first: Option<(usize, f64)> = None;
    for &n in &sizes {
        let points = normal_embedded(n, 6, 64, 0.1, 17);
        let (st, kernel, _) = build_skeleton_tree(&points, 4.0, m, 0.0, s_fixed, 1);
        let cfg = SolverConfig::default().with_lambda(1.0);
        let (_ft, t_f) = timed(|| factorize(&st, &kernel, cfg).expect("factorize"));
        let nlogn = n as f64 * (n as f64 / m as f64).log2().max(1.0);
        let nlog2n = n as f64 * (n as f64 / m as f64).log2().powi(2).max(1.0);
        let (n0, t0) = *first.get_or_insert((n, t_f));
        let n0logn0 = n0 as f64 * (n0 as f64 / m as f64).log2().max(1.0);
        let n0log2n0 = n0 as f64 * (n0 as f64 / m as f64).log2().powi(2).max(1.0);
        row(&[
            n.to_string(),
            format!("{t_f:.2}"),
            format!("{:.2}", t0 * nlogn / n0logn0),
            format!("{:.2}", t0 * nlog2n / n0log2n0),
            format!("{:.1}", t_f / nlogn * 1e9),
        ]);
    }
    println!("\n# shape check: the T_f/NlogN column should stay ~constant (paper Fig. 4,");
    println!("# blue curve tracking the yellow N log N ideal, below the purple N log^2 N).\n");
}

/// Fig. 4 right: strong scaling over rayon threads and simulated ranks.
fn strong_scaling() {
    let scale = arg_f64("--scale", 1.0);
    let n = (16384.0 * scale) as usize;
    let m = 128;
    println!("# Figure 4 (right) — strong scaling, NORMAL stand-in, N = {n}");
    println!(
        "# note: this container exposes {} core(s)\n",
        std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1)
    );
    let points = normal_embedded(n, 6, 64, 0.1, 19);
    let (st, kernel, _) = build_skeleton_tree(&points, 4.0, m, 0.0, 64, 1);
    let cfg = SolverConfig::default().with_lambda(1.0);

    header(&["rayon threads", "T_f (s)", "speedup", "efficiency"]);
    let mut t1 = 0.0;
    for threads in [1usize, 2, 4] {
        let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("pool");
        let (_f, t_f) = pool.install(|| timed(|| factorize(&st, &kernel, cfg).expect("f")));
        if threads == 1 {
            t1 = t_f;
        }
        row(&[
            threads.to_string(),
            format!("{t_f:.2}"),
            format!("{:.2}x", t1 / t_f),
            format!("{:.0}%", 100.0 * t1 / t_f / threads as f64),
        ]);
    }

    println!();
    header(&["simulated ranks p", "T_f (s)", "speedup"]);
    let mut tp1 = 0.0;
    for p in [1usize, 2, 4, 8] {
        if st.tree().nodes_at_level(p.trailing_zeros() as usize).len() != p {
            continue;
        }
        let ds = dist_factorize(&st, &kernel, cfg, p).expect("dist");
        if p == 1 {
            tp1 = ds.factor_seconds();
        }
        row(&[
            p.to_string(),
            format!("{:.2}", ds.factor_seconds()),
            format!("{:.2}x", tp1 / ds.factor_seconds()),
        ]);
    }
    println!("\n# paper shape: near-linear scaling to ~100 workers, 62-70% efficiency at");
    println!("# thousands of cores; on one physical core these sweeps verify correctness");
    println!("# and bound the parallelization overhead instead.");
}
