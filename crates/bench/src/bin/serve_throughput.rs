//! **Serve throughput** — closed-loop load against [`kfds_serve`]'s
//! batching solve service, sweeping the maximum batch size. Committed at
//! the repo root as `BENCH_solve.json` alongside `BENCH_factor.json`.
//!
//! The factorization is built once up front and the service's builder
//! hands out clones, so the sweep isolates pure serving behavior: how
//! much throughput the adaptive coalescing buys by turning 16 queued
//! single-RHS requests into one blocked 16-column solve. The paper's
//! solve is `O(sN log N)` per RHS either way — the win measured here is
//! constant-factor (one factor traversal amortized, GEMV → GEMM), which
//! is exactly what a latency/throughput service trades in.
//!
//! ```sh
//! cargo run --release -p kfds-bench --bin serve_throughput [-- --scale 2]
//! # writes BENCH_solve.json in the current directory (run from repo root)
//! ```

use kfds_bench::{arg_f64, build_skeleton_tree, timed};
use kfds_core::{SharedFactor, SolverConfig, StorageMode};
use kfds_serve::{FactorKey, ServeConfig, ServeStats, SolveService};
use kfds_tree::datasets::normal_embedded;
use std::sync::Arc;
use std::time::Duration;

const BATCH_SWEEP: [usize; 4] = [1, 4, 16, 64];
const CLIENTS: usize = 64;
const REQUESTS: usize = 512;

struct SweepRun {
    max_batch: usize,
    elapsed_s: f64,
    rps: f64,
    stats: ServeStats,
}

fn main() {
    let scale = arg_f64("--scale", 1.0);
    let n = (4096.0 * scale) as usize;
    let points = normal_embedded(n, 6, 64, 0.1, 17);
    let h = 4.0;
    let (st, kernel, _) = build_skeleton_tree(&points, h, 128, 0.0, 64, 1);
    let cfg = SolverConfig::default().with_lambda(1.0).with_storage(StorageMode::StoredGemv);
    eprintln!("== factorizing once (N = {n}, StoredGemv) ==");
    let factor = SharedFactor::factorize(Arc::new(st), Arc::new(kernel), cfg).expect("factorize");
    let key = FactorKey::new("normal64d", n, h, 1.0, 17);

    let mut runs = Vec::new();
    for &max_batch in &BATCH_SWEEP {
        let f = factor.clone();
        let svc = Arc::new(SolveService::start(
            ServeConfig::default()
                .with_workers(1)
                .with_max_batch(max_batch)
                .with_high_water(4 * CLIENTS)
                .with_default_timeout(Duration::from_secs(120)),
            move |_key: &FactorKey| Ok(f.clone()),
        ));
        // Warm-up: prime the cache and the workspace pools.
        for r in 0..8 {
            let t = svc.submit(key.clone(), rhs(n, r)).expect("warmup submit");
            t.wait().expect("warmup solve");
        }

        let per_client = REQUESTS.div_ceil(CLIENTS);
        let svc_run = Arc::clone(&svc);
        let key_run = key.clone();
        let (served, elapsed_s) = timed(move || {
            let handles: Vec<_> = (0..CLIENTS)
                .map(|c| {
                    let svc = Arc::clone(&svc_run);
                    let key = key_run.clone();
                    std::thread::spawn(move || {
                        // Closed loop: one outstanding request per client.
                        for r in 0..per_client {
                            let t = svc.submit(key.clone(), rhs(n, c * 31 + r)).expect("submit");
                            t.wait().expect("solve");
                        }
                        per_client
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("client")).sum::<usize>()
        });
        let stats = svc.stats();
        let rps = served as f64 / elapsed_s;
        eprintln!(
            "  max_batch={max_batch}: {served} requests in {elapsed_s:.2}s = {rps:.1} rps \
             (mean batch {:.2}, p50 {:.0}us, p99 {:.0}us)",
            stats.mean_batch, stats.total.p50_us, stats.total.p99_us
        );
        runs.push(SweepRun { max_batch, elapsed_s, rps, stats });
    }

    let json = render_json(&runs, n, scale);
    std::fs::write("BENCH_solve.json", &json).expect("write BENCH_solve.json");
    eprintln!("wrote BENCH_solve.json ({} sweep points)", runs.len());
}

fn rhs(n: usize, seed: usize) -> Vec<f64> {
    (0..n).map(|i| 0.5 + ((i * 13 + seed * 7) % 17) as f64 / 17.0).collect()
}

fn render_json(runs: &[SweepRun], n: usize, scale: f64) -> String {
    let cpus = std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1);
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"kfds-serve-throughput-v1\",\n");
    s.push_str(
        "  \"generated_by\": \"cargo run --release -p kfds-bench --bin serve_throughput\",\n",
    );
    s.push_str(&format!("  \"scale\": {scale},\n"));
    s.push_str(&format!("  \"n\": {n},\n"));
    s.push_str(&format!("  \"clients\": {CLIENTS},\n"));
    s.push_str(&format!("  \"requests\": {REQUESTS},\n"));
    s.push_str(&format!("  \"host_cpus\": {cpus},\n"));
    s.push_str("  \"note\": \"Closed-loop load (one outstanding request per client), 1 solve worker, factorization prebuilt and cached — the sweep isolates the multi-RHS coalescing win. Latencies are end-to-end (submit to response) in microseconds from log2-bucketed histograms; batch_hist is (batch_size, count).\",\n");
    s.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let hist: Vec<String> =
            r.stats.batch_hist.iter().map(|(sz, c)| format!("[{sz}, {c}]")).collect();
        s.push_str(&format!(
            "    {{\"max_batch\": {}, \"requests\": {}, \"elapsed_s\": {:.4}, \"rps\": {:.1}, \"mean_batch\": {:.3}, \"batches\": {}, \"p50_us\": {:.1}, \"p90_us\": {:.1}, \"p99_us\": {:.1}, \"max_us\": {}, \"solve_p50_us\": {:.1}, \"queue_p50_us\": {:.1}, \"cache_hit_rate\": {:.4}, \"batch_hist\": [{}]}}{}\n",
            r.max_batch,
            r.stats.completed,
            r.elapsed_s,
            r.rps,
            r.stats.mean_batch,
            r.stats.batches,
            r.stats.total.p50_us,
            r.stats.total.p90_us,
            r.stats.total.p99_us,
            r.stats.total.max_us,
            r.stats.solve.p50_us,
            r.stats.queue.p50_us,
            r.stats.cache_hit_rate(),
            hist.join(", "),
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"summary\": {\n");
    let rps_at = |b: usize| runs.iter().find(|r| r.max_batch == b).map(|r| r.rps);
    let mut lines = Vec::new();
    if let (Some(r1), Some(r16)) = (rps_at(1), rps_at(16)) {
        lines.push(format!("    \"speedup_batch16_vs_batch1\": {:.4}", r16 / r1));
    }
    if let (Some(r1), Some(r64)) = (rps_at(1), rps_at(64)) {
        lines.push(format!("    \"speedup_batch64_vs_batch1\": {:.4}", r64 / r1));
    }
    if let Some(best) = runs.iter().max_by(|a, b| a.rps.total_cmp(&b.rps)) {
        lines.push(format!("    \"best_rps\": {:.1}", best.rps));
        lines.push(format!("    \"best_rps_max_batch\": {}", best.max_batch));
    }
    s.push_str(&lines.join(",\n"));
    s.push_str("\n  }\n}\n");
    s
}
