//! **Table II** — datasets and kernel-ridge-regression accuracy.
//!
//! Paper: real datasets (COVTYPE, SUSY, MNIST2M, HIGGS, MRI, NORMAL) with
//! tuned `(h, λ)` and held-out binary classification accuracy. Here each
//! dataset is a seeded synthetic stand-in matching the `(d, intrinsic
//! dimension)` regime (see `DESIGN.md`); labels come from a smooth
//! nonlinear decision function so a kernel model is required. We report
//! accuracy both at the paper's `(h, λ)` (which were tuned to the *real*
//! data) and at a bandwidth scaled to the stand-in's geometry.
//!
//! ```sh
//! cargo run --release -p kfds-bench --bin table2_datasets [-- --scale 2]
//! ```

use kfds_askit::SkelConfig;
use kfds_bench::{arg_f64, header, row, scaled_bandwidth, standin};
use kfds_core::{KernelRidge, SolverConfig};
use kfds_kernels::Gaussian;
use kfds_tree::PointSet;

/// Smooth nonlinear labels on normalized coordinates.
fn label(points: &PointSet) -> Vec<f64> {
    (0..points.len())
        .map(|i| {
            let x = points.point(i);
            let a = (2.0 * x[0]).sin() + x[1 % x.len()] * x[2 % x.len()];
            if a >= 0.0 {
                1.0
            } else {
                -1.0
            }
        })
        .collect()
}

fn main() {
    let scale = arg_f64("--scale", 1.0);
    let n = (4000.0 * scale) as usize;
    println!("# Table II — dataset stand-ins and ridge-regression accuracy");
    println!("# N scaled to {n} (paper: 0.1M – 10.5M); labels: smooth nonlinear function\n");
    header(&[
        "dataset",
        "N",
        "d",
        "h(paper)",
        "lambda",
        "Acc(paper h)",
        "h(scaled)",
        "Acc(scaled h)",
    ]);

    for name in ["COVTYPE", "SUSY", "MNIST2M", "HIGGS", "MRI", "NORMAL"] {
        let s = standin(name, n, 0xda7a + name.len() as u64);
        let labels = label(&s.points);
        let n_train = n * 9 / 10;
        let train = s.points.select(&(0..n_train).collect::<Vec<_>>());
        let test = s.points.select(&(n_train..n).collect::<Vec<_>>());
        let y_train = &labels[..n_train];
        let y_test = &labels[n_train..];

        let mut accs = Vec::new();
        let h_scaled = scaled_bandwidth(s.points.dim(), 0.3);
        for h in [s.h, h_scaled] {
            let kernel = Gaussian::new(h);
            let skel = SkelConfig::default().with_tol(1e-5).with_max_rank(128).with_neighbors(16);
            let solver = SolverConfig::default().with_lambda(s.lambda);
            match KernelRidge::train(&train, y_train, kernel, 128, skel, solver) {
                Ok((model, _)) => {
                    accs.push(format!("{:.0}%", 100.0 * model.accuracy(&test, y_test)))
                }
                Err(e) => accs.push(format!("fail({e})")),
            }
        }
        row(&[
            s.name.to_string(),
            n.to_string(),
            s.points.dim().to_string(),
            format!("{}", s.h),
            format!("{}", s.lambda),
            accs[0].clone(),
            format!("{h_scaled:.2}"),
            accs[1].clone(),
        ]);
    }
    println!("\n# paper accuracies (real data): COVTYPE 96%, SUSY 78%, MNIST2M 100%, HIGGS 73%.");
    println!("# stand-ins share geometry, not content; the scaled-h column shows the");
    println!("# solver achieving high accuracy when the bandwidth matches the data.");
}
