//! **Table V** — hybrid vs direct solvers under level restriction `L = 3`
//! with adaptive ranks (`τ = 1e-5`).
//!
//! Paper: SUSY / MRI / MNIST2M; the direct variant LU-factorizes the
//! coalesced `2^L s` reduced system (≈2× the hybrid's factorization time),
//! solves in ~1–2 s at machine-precision residual; the hybrid factorizes
//! only to the frontier, pays GMRES iterations at solve time (~20×
//! slower solves, residual at the Krylov tolerance) but wins on total
//! time and memory — increasingly so as `L` grows.
//!
//! ```sh
//! cargo run --release -p kfds-bench --bin table5_hybrid [-- --scale 2]
//! ```

use kfds_bench::{
    arg_f64, build_skeleton_tree, header, rel_err, row, scaled_bandwidth, standin, test_vec, timed,
};
use kfds_core::{factorize, HybridSolver, LevelRestrictedDirect, SolverConfig};
use kfds_krylov::GmresOptions;

fn main() {
    let scale = arg_f64("--scale", 1.0);
    let n = (8192.0 * scale) as usize;
    let restriction = 3;
    println!("# Table V — hybrid vs direct with level restriction L = {restriction}");
    println!("# N = {n}, adaptive ranks tau = 1e-5, smax = 128\n");
    header(&[
        "#",
        "dataset",
        "method",
        "ASKIT (s)",
        "T_f (s)",
        "T_s (s)",
        "residual r",
        "KSP iters",
        "reduced mem",
    ]);

    let mut id = 19; // paper numbering starts at #19 for this table
    for name in ["SUSY", "MRI", "MNIST2M"] {
        let s = standin(name, n, 0x7ab1e5 + name.len() as u64);
        let h = scaled_bandwidth(s.points.dim(), 0.35);
        let (st, kernel, t_askit) = build_skeleton_tree(&s.points, h, 128, 1e-5, 128, restriction);
        let b = test_vec(n, 9);
        let cfg = SolverConfig::default().with_lambda(s.lambda);

        // Partial factorization shared by both methods.
        let (ft, t_partial) = timed(|| factorize(&st, &kernel, cfg).expect("partial"));

        // Direct: assemble + LU the 2^L s reduced system.
        let (direct, t_assemble) = timed(|| LevelRestrictedDirect::new(&ft).expect("direct"));
        let (x_direct, ts_direct) = timed(|| direct.solve(&b));
        let r_direct = residual(&st, &kernel, cfg.lambda, &x_direct, &b);
        row(&[
            id.to_string(),
            s.name.into(),
            "direct".into(),
            format!("{t_askit:.2}"),
            format!("{:.2}", t_partial + t_assemble),
            format!("{ts_direct:.3}"),
            format!("{r_direct:.0e}"),
            "-".into(),
            format!("{:.1} MiB", direct.reduced_bytes as f64 / (1024.0 * 1024.0)),
        ]);
        id += 1;

        // Hybrid: matrix-free GMRES on the same reduced system.
        let hy = HybridSolver::new(&ft).expect("hybrid");
        // The paper's hybrid residuals in Table V are ~1e-3/1e-4: the
        // Krylov tolerance is deliberately loose (that is the point of the
        // trade-off). Match that regime.
        let opts = GmresOptions { tol: 1e-6, max_iters: 150, ..Default::default() };
        let (out, ts_hybrid) = timed(|| hy.solve(&b, &opts).expect("hybrid solve"));
        let r_hybrid = residual(&st, &kernel, cfg.lambda, &out.x, &b);
        // Both solvers target the same operator: their solutions agree up
        // to the (loose) Krylov tolerance amplified by the conditioning.
        let agreement = rel_err(&out.x, &x_direct);
        assert!(
            r_hybrid < 1e-4 || out.gmres.iters >= 150,
            "hybrid residual {r_hybrid} with {} iterations",
            out.gmres.iters
        );
        let _ = agreement;
        row(&[
            id.to_string(),
            s.name.into(),
            "hybrid".into(),
            format!("{t_askit:.2}"),
            format!("{t_partial:.2}"),
            format!("{ts_hybrid:.3}"),
            format!("{r_hybrid:.0e}"),
            out.gmres.iters.to_string(),
            "O(1)".into(),
        ]);
        id += 1;
    }
    println!("\n# paper shape: direct pays ~2x at factorization time and wins the per-solve");
    println!("# time; hybrid avoids the 2^L s dense system entirely (memory O(1) extra)");
    println!("# at the price of Krylov iterations per solve.");
}

fn residual(
    st: &kfds_askit::SkeletonTree,
    kernel: &kfds_kernels::Gaussian,
    lambda: f64,
    x: &[f64],
    b: &[f64],
) -> f64 {
    let applied = kfds_askit::hier_matvec(st, kernel, lambda, x);
    rel_err(&applied, b)
}
