//! **Table III** — factorization-time comparison: the `O(N log² N)`
//! INV-ASKIT baseline \[36\] vs this paper's `O(N log N)` telescoped
//! factorization, across datasets and tolerances `τ`.
//!
//! Paper: 128 Lonestar5 nodes, N up to 32M, speedups 2–4× growing with N
//! (the removed `log N` factor). Here: one core, N scaled, same parameter
//! grid; both algorithms build *identical* factors (asserted).
//!
//! ```sh
//! cargo run --release -p kfds-bench --bin table3_factorization [-- --scale 2]
//! ```

use kfds_bench::{
    arg_f64, build_skeleton_tree, header, rel_err, row, scaled_bandwidth, standin, test_vec, timed,
};
use kfds_core::{factorize, factorize_baseline, SolverConfig};

fn main() {
    let scale = arg_f64("--scale", 1.0);
    let n = (8192.0 * scale) as usize;
    let taus = [1e-1, 1e-3, 1e-5];
    println!("# Table III — factorization time (s): [36] O(N log^2 N) vs ours O(N log N)");
    println!("# N = {n}, m = 128, smax = 128, adaptive ranks by tau\n");
    header(&["#", "dataset", "tau", "log2 (s)", "log (s)", "speedup", "same factors"]);

    let mut id = 1;
    for name in ["COVTYPE", "SUSY", "MNIST2M", "HIGGS", "NORMAL"] {
        let s = standin(name, n, 0x7ab1e3 + name.len() as u64);
        let h = scaled_bandwidth(s.points.dim(), 0.35);
        for &tau in &taus {
            let (st, kernel, _) = build_skeleton_tree(&s.points, h, 128, tau, 128, 1);
            let cfg = SolverConfig::default().with_lambda(s.lambda);
            let (slow, t_slow) = timed(|| factorize_baseline(&st, &kernel, cfg).expect("baseline"));
            let (fast, t_fast) = timed(|| factorize(&st, &kernel, cfg).expect("telescoped"));
            // Verify: identical factorizations up to roundoff.
            let b = test_vec(n, 3);
            let mut x1 = b.clone();
            let mut x2 = b.clone();
            fast.solve_in_place(&mut x1).expect("solve");
            slow.solve_in_place(&mut x2).expect("solve");
            let same = rel_err(&x1, &x2);
            row(&[
                id.to_string(),
                s.name.to_string(),
                format!("{tau:.0e}"),
                format!("{t_slow:.2}"),
                format!("{t_fast:.2}"),
                format!("{:.2}x", t_slow / t_fast),
                format!("{same:.1e}"),
            ]);
            id += 1;
        }
    }
    println!("\n# paper shape: speedup 2–4x, growing with N (log N removed); runtime grows");
    println!("# with rank s (tighter tau => larger s => longer runtimes in both columns).");
}
