//! **Perf trajectory** — fixed factorize+solve workload matrix whose
//! results are committed at the repo root (`BENCH_factor.json`) so that
//! successive optimization PRs leave a comparable timing trail.
//!
//! Workloads are the Fig. 4-left complexity-sweep configs and the
//! Table III dataset configs, scaled to this container. Each workload runs
//! with the [`kfds_la::workspace`] pool disabled ("before": every scratch
//! take allocates, exactly the pre-pool behavior) and enabled ("after"),
//! at 1 and 4 rayon threads, recording wall-clock, GFLOP/s from the
//! solver's explicit flop counters, peak RSS, and pool hit rates.
//!
//! ```sh
//! cargo run --release -p kfds-bench --bin perf_trajectory [-- --scale 2]
//! # writes BENCH_factor.json in the current directory (run from repo root)
//! ```

use kfds_bench::{arg_f64, build_skeleton_tree, scaled_bandwidth, standin, test_vec, timed};
use kfds_core::{factorize, SolverConfig};
use kfds_la::workspace;
use kfds_tree::datasets::normal_embedded;
use kfds_tree::PointSet;

struct Workload {
    label: String,
    points: PointSet,
    h: f64,
    lambda: f64,
    tau: f64,
    max_rank: usize,
    m: usize,
}

struct Run {
    label: String,
    n: usize,
    threads: usize,
    pool: bool,
    t_factor_s: f64,
    t_solve_s: f64,
    flops: f64,
    gflops: f64,
    pool_hits: u64,
    pool_misses: u64,
    peak_rss_kb: u64,
}

fn main() {
    let scale = arg_f64("--scale", 1.0);
    let workloads = build_workloads(scale);
    let threads_list = [1usize, 4];
    let mut runs: Vec<Run> = Vec::new();

    for wl in &workloads {
        let n = wl.points.len();
        eprintln!("== workload {} (N = {n}) ==", wl.label);
        let (st, kernel, _) = build_skeleton_tree(&wl.points, wl.h, wl.m, wl.tau, wl.max_rank, 1);
        let cfg = SolverConfig::default().with_lambda(wl.lambda);
        for &threads in &threads_list {
            for &pool in &[false, true] {
                workspace::set_pool_enabled(pool);
                let pool_handle =
                    rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("pool");
                // Warm-up pass: fault in pages / fill the workspace pool so
                // the measured pass reflects steady state.
                let _ = pool_handle.install(|| factorize(&st, &kernel, cfg).expect("warmup"));
                let (h0, m0) = workspace::stats();
                let (ft, t_factor) =
                    pool_handle.install(|| timed(|| factorize(&st, &kernel, cfg).expect("f")));
                let mut x = test_vec(n, 42);
                let (_, t_solve) =
                    pool_handle.install(|| timed(|| ft.solve_in_place(&mut x).expect("solve")));
                let (h1, m1) = workspace::stats();
                let stats = ft.stats();
                runs.push(Run {
                    label: wl.label.clone(),
                    n,
                    threads,
                    pool,
                    t_factor_s: t_factor,
                    t_solve_s: t_solve,
                    flops: stats.flops,
                    gflops: stats.flops / t_factor / 1e9,
                    pool_hits: h1 - h0,
                    pool_misses: m1 - m0,
                    peak_rss_kb: peak_rss_kb(),
                });
                let r = runs.last().expect("just pushed");
                eprintln!(
                    "  threads={threads} pool={pool}: factor {:.3}s ({:.2} GFLOP/s), solve {:.4}s, hits/misses {}/{}",
                    r.t_factor_s, r.gflops, r.t_solve_s, r.pool_hits, r.pool_misses
                );
            }
        }
    }
    workspace::set_pool_enabled(true);

    let json = render_json(&runs, scale);
    std::fs::write("BENCH_factor.json", &json).expect("write BENCH_factor.json");
    eprintln!("wrote BENCH_factor.json ({} runs)", runs.len());
}

fn build_workloads(scale: f64) -> Vec<Workload> {
    let mut out = Vec::new();
    // Fig. 4-left: NORMAL64D complexity sweep, fixed rank, L = 1.
    for &base in &[4096usize, 8192] {
        let n = (base as f64 * scale) as usize;
        out.push(Workload {
            label: format!("fig4_left_normal64d_n{n}"),
            points: normal_embedded(n, 6, 64, 0.1, 17),
            h: 4.0,
            lambda: 1.0,
            tau: 0.0,
            max_rank: 64,
            m: 128,
        });
    }
    // Table III: dataset stand-ins at tau = 1e-3 (the middle column).
    for name in ["COVTYPE", "NORMAL"] {
        let n = (8192.0 * scale) as usize;
        let s = standin(name, n, 0x7ab1e3 + name.len() as u64);
        let h = scaled_bandwidth(s.points.dim(), 0.35);
        out.push(Workload {
            label: format!("table3_{}_n{n}", s.name.to_lowercase()),
            points: s.points,
            h,
            lambda: s.lambda,
            tau: 1e-3,
            max_rank: 128,
            m: 128,
        });
    }
    out
}

/// Peak resident set size in KiB from `/proc/self/status` (0 if absent).
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn render_json(runs: &[Run], scale: f64) -> String {
    let cpus = std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1);
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"kfds-perf-trajectory-v1\",\n");
    s.push_str(
        "  \"generated_by\": \"cargo run --release -p kfds-bench --bin perf_trajectory\",\n",
    );
    s.push_str(&format!("  \"scale\": {scale},\n"));
    s.push_str(&format!("  \"host_cpus\": {cpus},\n"));
    s.push_str("  \"note\": \"pool=false disables the kfds-la workspace pool at runtime, reproducing pre-pool allocation behavior; this is the before/after comparison. The container exposes a single physical CPU, so multi-thread rows exercise the parallel code paths (row-split tall-skinny GEMM, per-level node parallelism) under time-slicing and cannot show wall-clock speedup; the >=1.3x multi-thread factorization target requires >=4 physical cores to manifest.\",\n");
    s.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"label\": \"{}\", \"n\": {}, \"threads\": {}, \"pool\": {}, \"t_factor_s\": {:.6}, \"t_solve_s\": {:.6}, \"flops\": {:.3e}, \"factor_gflops\": {:.4}, \"pool_hits\": {}, \"pool_misses\": {}, \"peak_rss_kb\": {}}}{}\n",
            r.label,
            r.n,
            r.threads,
            r.pool,
            r.t_factor_s,
            r.t_solve_s,
            r.flops,
            r.gflops,
            r.pool_hits,
            r.pool_misses,
            r.peak_rss_kb,
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"summary\": {\n");
    let mut lines = Vec::new();
    for r in runs.iter().filter(|r| r.pool) {
        if let Some(before) =
            runs.iter().find(|b| !b.pool && b.label == r.label && b.threads == r.threads)
        {
            lines.push(format!(
                "    \"{}_t{}_pool_speedup\": {:.4}",
                r.label,
                r.threads,
                before.t_factor_s / r.t_factor_s
            ));
        }
    }
    // Steady-state allocation behavior: with the pool on, hit rate of the
    // measured (post-warm-up) pass.
    let (hits, misses) = runs
        .iter()
        .filter(|r| r.pool)
        .fold((0u64, 0u64), |(h, m), r| (h + r.pool_hits, m + r.pool_misses));
    lines.push(format!(
        "    \"steady_state_pool_hit_rate\": {:.4}",
        hits as f64 / (hits + misses).max(1) as f64
    ));
    s.push_str(&lines.join(",\n"));
    s.push_str("\n  }\n}\n");
    s
}
