//! **Perf trajectory** — fixed factorize+solve workload matrix whose
//! results are committed at the repo root (`BENCH_factor.json`) so that
//! successive optimization PRs leave a comparable timing trail.
//!
//! Workloads are the Fig. 4-left complexity-sweep configs and the
//! Table III dataset configs, scaled to this container. Each workload runs
//! over the (pool, simd) A/B grid — the [`kfds_la::workspace`] pool
//! kill-switch and the [`kfds_la::simd`] microkernel kill-switch — at 1
//! and 4 rayon threads, recording best-of-3 wall-clock, GFLOP/s from the
//! solver's explicit flop counters, peak RSS, and pool hit rates. The
//! `(pool on, simd off)` rows reproduce the pre-SIMD scalar numerics, so
//! `simd_speedup` in the summary is the before/after of this PR's
//! vector microkernels.
//!
//! ```sh
//! cargo run --release -p kfds-bench --bin perf_trajectory [-- --scale 2]
//! # writes BENCH_factor.json in the current directory (run from repo root)
//! cargo run --release -p kfds-bench --bin perf_trajectory -- --check
//! # dispatch sanity only: exits 1 if this host supports AVX2+FMA but the
//! # vector kernels are inactive without KFDS_SIMD=off being set.
//! ```

use kfds_bench::{arg_f64, build_skeleton_tree, scaled_bandwidth, standin, test_vec, timed};
use kfds_core::{factorize, SolverConfig};
use kfds_la::{simd, workspace, Mat};
use kfds_tree::datasets::normal_embedded;
use kfds_tree::PointSet;

struct Workload {
    label: String,
    points: PointSet,
    h: f64,
    lambda: f64,
    tau: f64,
    max_rank: usize,
    m: usize,
}

struct Run {
    label: String,
    n: usize,
    threads: usize,
    pool: bool,
    simd: bool,
    t_factor_s: f64,
    t_solve_s: f64,
    t_solve16_s: f64,
    solve16_rhs_per_s: f64,
    flops: f64,
    gflops: f64,
    pool_hits: u64,
    pool_misses: u64,
    peak_rss_kb: u64,
}

/// Measured repetitions per configuration; the committed numbers are the
/// minimum (best-of-3 suppresses time-slicing noise on shared hosts).
const REPS: usize = 3;

fn main() {
    if std::env::args().any(|a| a == "--check") {
        std::process::exit(dispatch_check());
    }
    let scale = arg_f64("--scale", 1.0);
    let workloads = build_workloads(scale);
    let threads_list = [1usize, 4];
    // (pool, simd): pool-off baseline, scalar reference, and full fast path.
    let configs = [(false, true), (true, false), (true, true)];
    let mut runs: Vec<Run> = Vec::new();

    for wl in &workloads {
        let n = wl.points.len();
        eprintln!("== workload {} (N = {n}) ==", wl.label);
        let (st, kernel, _) = build_skeleton_tree(&wl.points, wl.h, wl.m, wl.tau, wl.max_rank, 1);
        let cfg = SolverConfig::default().with_lambda(wl.lambda);
        for &threads in &threads_list {
            for &(pool, simd_on) in &configs {
                workspace::set_pool_enabled(pool);
                simd::set_simd_enabled(simd_on);
                let pool_handle =
                    rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("pool");
                // Warm-up pass: fault in pages / fill the workspace pool so
                // the measured passes reflect steady state.
                let _ = pool_handle.install(|| factorize(&st, &kernel, cfg).expect("warmup"));
                let (h0, m0) = workspace::stats();
                let mut t_factor = f64::INFINITY;
                let mut t_solve = f64::INFINITY;
                let mut t_solve16 = f64::INFINITY;
                let mut flops = 0.0;
                for _ in 0..REPS {
                    let (ft, tf) =
                        pool_handle.install(|| timed(|| factorize(&st, &kernel, cfg).expect("f")));
                    let mut x = test_vec(n, 42);
                    let (_, ts) =
                        pool_handle.install(|| timed(|| ft.solve_in_place(&mut x).expect("solve")));
                    // Blocked multi-RHS solve: the serving-path amortization
                    // (one factor traversal, 16 columns, GEMM-shaped work).
                    let mut xm = Mat::zeros(n, 16);
                    for j in 0..16 {
                        xm.col_mut(j).copy_from_slice(&test_vec(n, 42 + j as u64));
                    }
                    let (_, ts16) = pool_handle
                        .install(|| timed(|| ft.solve_mat_in_place(&mut xm).expect("solve16")));
                    t_factor = t_factor.min(tf);
                    t_solve = t_solve.min(ts);
                    t_solve16 = t_solve16.min(ts16);
                    flops = ft.stats().flops;
                }
                let (h1, m1) = workspace::stats();
                runs.push(Run {
                    label: wl.label.clone(),
                    n,
                    threads,
                    pool,
                    simd: simd_on,
                    t_factor_s: t_factor,
                    t_solve_s: t_solve,
                    t_solve16_s: t_solve16,
                    solve16_rhs_per_s: 16.0 / t_solve16,
                    flops,
                    gflops: flops / t_factor / 1e9,
                    pool_hits: (h1 - h0) / REPS as u64,
                    pool_misses: (m1 - m0) / REPS as u64,
                    peak_rss_kb: peak_rss_kb(),
                });
                let r = runs.last().expect("just pushed");
                eprintln!(
                    "  threads={threads} pool={pool} simd={simd_on}: factor {:.3}s ({:.2} GFLOP/s), solve {:.4}s, solve16 {:.4}s ({:.0} rhs/s), hits/misses {}/{}",
                    r.t_factor_s, r.gflops, r.t_solve_s, r.t_solve16_s, r.solve16_rhs_per_s, r.pool_hits, r.pool_misses
                );
            }
        }
    }
    workspace::set_pool_enabled(true);
    simd::set_simd_enabled(true);

    let json = render_json(&runs, scale);
    std::fs::write("BENCH_factor.json", &json).expect("write BENCH_factor.json");
    eprintln!("wrote BENCH_factor.json ({} runs)", runs.len());
}

/// `--check`: verifies the SIMD dispatch state is consistent with the host
/// and the environment. Returns the process exit code.
///
/// * AVX2+FMA host, kernels active — OK.
/// * `KFDS_SIMD=off`/`0` set — scalar mode was requested, OK.
/// * non-x86 / pre-AVX2 host — scalar fallback is the implementation, OK.
/// * AVX2+FMA host but kernels inactive with no opt-out — **failure**: the
///   scalar fallback silently engaged (a dispatch or build regression).
fn dispatch_check() -> i32 {
    let feats = simd::detected_features();
    let env_off = std::env::var_os("KFDS_SIMD").is_some_and(|v| v == "off" || v == "0");
    if env_off {
        eprintln!("simd check: KFDS_SIMD=off requested, scalar paths active ({feats})");
        return 0;
    }
    if simd::cpu_supported() && !simd::active() {
        eprintln!(
            "simd check FAILED: host supports the vector kernels ({feats}) but they are \
             inactive and KFDS_SIMD was not set — scalar fallback silently engaged"
        );
        return 1;
    }
    eprintln!("simd check: features {feats}, vector kernels active = {}", simd::active());
    0
}

fn build_workloads(scale: f64) -> Vec<Workload> {
    let mut out = Vec::new();
    // Fig. 4-left: NORMAL64D complexity sweep, fixed rank, L = 1.
    for &base in &[4096usize, 8192] {
        let n = (base as f64 * scale) as usize;
        out.push(Workload {
            label: format!("fig4_left_normal64d_n{n}"),
            points: normal_embedded(n, 6, 64, 0.1, 17),
            h: 4.0,
            lambda: 1.0,
            tau: 0.0,
            max_rank: 64,
            m: 128,
        });
    }
    // Table III: dataset stand-ins at tau = 1e-3 (the middle column).
    for name in ["COVTYPE", "NORMAL"] {
        let n = (8192.0 * scale) as usize;
        let s = standin(name, n, 0x7ab1e3 + name.len() as u64);
        let h = scaled_bandwidth(s.points.dim(), 0.35);
        out.push(Workload {
            label: format!("table3_{}_n{n}", s.name.to_lowercase()),
            points: s.points,
            h,
            lambda: s.lambda,
            tau: 1e-3,
            max_rank: 128,
            m: 128,
        });
    }
    out
}

/// Peak resident set size in KiB from `/proc/self/status` (0 if absent).
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn render_json(runs: &[Run], scale: f64) -> String {
    let cpus = std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1);
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"kfds-perf-trajectory-v3\",\n");
    s.push_str(
        "  \"generated_by\": \"cargo run --release -p kfds-bench --bin perf_trajectory\",\n",
    );
    s.push_str(&format!("  \"scale\": {scale},\n"));
    s.push_str(&format!("  \"host_cpus\": {cpus},\n"));
    s.push_str(&format!("  \"host_simd\": \"{}\",\n", simd::detected_features()));
    s.push_str(&format!("  \"reps_best_of\": {REPS},\n"));
    s.push_str("  \"note\": \"pool=false disables the kfds-la workspace pool at runtime; simd=false forces the scalar reference kernels (the pre-SIMD numerics, bitwise). simd_speedup compares (pool on, simd off) vs (pool on, simd on); pool_speedup compares pool off vs on at simd on. Timings are best-of-3. The container exposes a single physical CPU, so multi-thread rows exercise the parallel code paths (row-split tall-skinny GEMM, per-level node parallelism) under time-slicing and cannot show wall-clock speedup; the >=1.3x multi-thread factorization target requires >=4 physical cores to manifest. v3 adds the blocked 16-RHS solve (t_solve16_s, solve16_rhs_per_s); batch16_solve_amortization in the summary is (16 * t_solve_s) / t_solve16_s — the per-RHS win of one blocked traversal over 16 single solves.\",\n");
    s.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"label\": \"{}\", \"n\": {}, \"threads\": {}, \"pool\": {}, \"simd\": {}, \"t_factor_s\": {:.6}, \"t_solve_s\": {:.6}, \"t_solve16_s\": {:.6}, \"solve16_rhs_per_s\": {:.1}, \"flops\": {:.3e}, \"factor_gflops\": {:.4}, \"pool_hits\": {}, \"pool_misses\": {}, \"peak_rss_kb\": {}}}{}\n",
            r.label,
            r.n,
            r.threads,
            r.pool,
            r.simd,
            r.t_factor_s,
            r.t_solve_s,
            r.t_solve16_s,
            r.solve16_rhs_per_s,
            r.flops,
            r.gflops,
            r.pool_hits,
            r.pool_misses,
            r.peak_rss_kb,
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"summary\": {\n");
    let mut lines = Vec::new();
    for r in runs.iter().filter(|r| r.pool && r.simd) {
        if let Some(before) =
            runs.iter().find(|b| !b.pool && b.simd && b.label == r.label && b.threads == r.threads)
        {
            lines.push(format!(
                "    \"{}_t{}_pool_speedup\": {:.4}",
                r.label,
                r.threads,
                before.t_factor_s / r.t_factor_s
            ));
        }
        if let Some(scalar) =
            runs.iter().find(|b| b.pool && !b.simd && b.label == r.label && b.threads == r.threads)
        {
            lines.push(format!(
                "    \"{}_t{}_simd_speedup\": {:.4}",
                r.label,
                r.threads,
                scalar.t_factor_s / r.t_factor_s
            ));
        }
        lines.push(format!(
            "    \"{}_t{}_batch16_solve_amortization\": {:.4}",
            r.label,
            r.threads,
            (16.0 * r.t_solve_s) / r.t_solve16_s
        ));
    }
    // Steady-state allocation behavior: with the pool on, hit rate of the
    // measured (post-warm-up) passes.
    let (hits, misses) = runs
        .iter()
        .filter(|r| r.pool)
        .fold((0u64, 0u64), |(h, m), r| (h + r.pool_hits, m + r.pool_misses));
    lines.push(format!(
        "    \"steady_state_pool_hit_rate\": {:.4}",
        hits as f64 / (hits + misses).max(1) as f64
    ));
    s.push_str(&lines.join(",\n"));
    s.push_str("\n  }\n}\n");
    s
}
