//! **Perf trajectory** — fixed setup+factorize+solve workload matrix whose
//! results are committed at the repo root (`BENCH_factor.json`) so that
//! successive optimization PRs leave a comparable timing trail.
//!
//! Workloads are the Fig. 4-left complexity-sweep configs and the
//! Table III dataset configs, scaled to this container. Each workload runs
//! over the (pool, simd, cpqr) A/B grid — the [`kfds_la::workspace`] pool
//! kill-switch, the [`kfds_la::simd`] microkernel kill-switch, and the
//! blocked-setup kill-switches ([`kfds_la::cpqr`] blocked RRQR +
//! [`kfds_kernels`] GEMM block assembly, toggled together) — at 1 and 4
//! rayon threads, recording best-of-3 wall-clock for every pipeline phase
//! (`t_tree_s`, `t_knn_s`, `t_skel_s`, `t_factor_s`, `t_solve_s`,
//! `t_solve16_s`), GFLOP/s from the solver's explicit flop counters, peak
//! RSS, and pool hit rates. The `cpqr=false` rows reproduce the pre-BLAS-3
//! setup numerics (unblocked one-reflector CPQR + per-entry scalar kernel
//! evaluation), so `skel_speedup` in the summary is the before/after of
//! this PR's setup rebuild. The kNN stage is measured under both `KFDS_KNN`
//! states per thread count (`t_knn_s` = blocked GEMM-tile search,
//! `t_knn_scalar_s` = legacy scalar search), giving the `knn_speedup`
//! summary lines. Thread counts above the host's *physical* core count
//! are **skipped** (and listed in the JSON's `skipped_rows`): timing them
//! would only measure time-slicing, so the committed trail carries no row
//! whose wall-clock is not a real parallel measurement.
//!
//! ```sh
//! cargo run --release -p kfds-bench --bin perf_trajectory [-- --scale 2]
//! # writes BENCH_factor.json in the current directory (run from repo root)
//! cargo run --release -p kfds-bench --bin perf_trajectory -- --check [gate]
//! # dispatch sanity only: exits 1 if this host supports AVX2+FMA but the
//! # vector kernels are inactive, or if the blocked CPQR / GEMM assembly /
//! # GEMM-tile kNN paths silently fell back, without the matching KFDS_*
//! # opt-out. An optional gate name (simd | cpqr | eval | knn | refactor |
//! # batch | scaling) runs one gate alone. The `scaling` gate arms only on
//! # hosts with >= 2 physical cores and then requires a multi-thread
//! # setup+factorize to beat single-thread wall-clock. The `batch` gate
//! # requires the level-batched engine to be active (absent KFDS_BATCH=off)
//! # and to reproduce the per-node engine bitwise end to end.
//! ```

use kfds_askit::{compute_neighbors, skeletonize_with_neighbors};
use kfds_bench::{arg_f64, harness_skel_config, scaled_bandwidth, standin, test_vec, timed};
use kfds_core::{
    assemble_blocks, factorize, factorize_with_blocks, refactor_enabled, LevelStats, SolverConfig,
    StorageMode,
};
use kfds_kernels::Gaussian;
use kfds_la::{cpqr, simd, workspace, ColPivQr, Mat};
use kfds_tree::datasets::normal_embedded;
use kfds_tree::{BallTree, PointSet};
use std::sync::Arc;

struct Workload {
    label: String,
    points: PointSet,
    h: f64,
    lambda: f64,
    tau: f64,
    max_rank: usize,
    m: usize,
}

struct Run {
    label: String,
    n: usize,
    threads: usize,
    pool: bool,
    simd: bool,
    cpqr: bool,
    t_tree_s: f64,
    t_knn_s: f64,
    t_knn_scalar_s: f64,
    t_skel_s: f64,
    t_factor_s: f64,
    /// λ-independent kernel block assembly (full-fast rows only; 0.0
    /// elsewhere).
    t_assemble_s: f64,
    /// Fresh StoredGemv factorization — the fair baseline for
    /// `t_refactor_s` (full-fast rows only; 0.0 elsewhere).
    t_factor_stored_s: f64,
    /// λ-only refactorization over pre-assembled blocks (full-fast rows
    /// only; 0.0 elsewhere).
    t_refactor_s: f64,
    /// Skeletonization under the per-node engine (`KFDS_BATCH` A/B;
    /// full-fast rows only, 0.0 elsewhere or when batching is off).
    t_skel_pernode_s: f64,
    /// Factorization under the per-node engine (`KFDS_BATCH` A/B;
    /// full-fast rows only, 0.0 elsewhere or when batching is off).
    t_factor_pernode_s: f64,
    /// Per-level breakdown of the batched factorization sweep (root-last,
    /// bottom-up); empty when the per-node engine ran.
    factor_levels: Vec<LevelStats>,
    t_solve_s: f64,
    t_solve16_s: f64,
    solve16_rhs_per_s: f64,
    flops: f64,
    gflops: f64,
    pool_hits: u64,
    pool_misses: u64,
    peak_rss_kb: u64,
}

/// Measured repetitions per configuration; the committed numbers are the
/// minimum (best-of-3 suppresses time-slicing noise on shared hosts).
const REPS: usize = 3;

/// Applies one point of the (pool, simd, cpqr) grid. The `cpqr` axis
/// toggles both BLAS-3 setup paths together — the blocked panel CPQR and
/// the GEMM-backed kernel block assembly — because `cpqr=false` is meant to
/// reproduce the full pre-BLAS-3 setup pipeline.
fn apply_grid(pool: bool, simd_on: bool, cpqr_on: bool) {
    workspace::set_pool_enabled(pool);
    simd::set_simd_enabled(simd_on);
    cpqr::set_cpqr_blocked(cpqr_on);
    kfds_kernels::set_gemm_eval_enabled(cpqr_on);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--check") {
        let gate = args.get(i + 1).filter(|a| !a.starts_with("--")).map(|s| s.as_str());
        std::process::exit(dispatch_check(gate));
    }
    let scale = arg_f64("--scale", 1.0);
    let workloads = build_workloads(scale);
    let threads_list = [1usize, 4];
    let phys_cores = physical_cores();
    // Oversubscribed thread counts are skipped, not timed: a row whose
    // threads exceed the physical cores would only measure time-slicing.
    let run_threads: Vec<usize> =
        threads_list.iter().copied().filter(|&t| t <= phys_cores).collect();
    let skipped_threads: Vec<usize> =
        threads_list.iter().copied().filter(|&t| t > phys_cores).collect();
    // (pool, simd, cpqr): pool-off baseline, scalar reference, pre-BLAS-3
    // setup baseline, and the full fast path.
    let configs =
        [(false, true, true), (true, false, true), (true, true, false), (true, true, true)];
    let mut runs: Vec<Run> = Vec::new();
    let mut skipped: Vec<(String, usize)> = Vec::new();

    for wl in &workloads {
        let n = wl.points.len();
        eprintln!("== workload {} (N = {n}) ==", wl.label);
        for &t in &skipped_threads {
            eprintln!(
                "  threads={t}: SKIPPED (host has {phys_cores} physical core(s); \
                 timing would measure time-slicing, not parallel speedup)"
            );
            skipped.push((wl.label.clone(), t));
        }
        let skel_cfg = harness_skel_config(wl.points.dim(), wl.tau, wl.max_rank, 1);
        let cfg = SolverConfig::default().with_lambda(wl.lambda);
        for &threads in &run_threads {
            let pool_handle =
                rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("pool");
            // Tree build is invariant under the grid switches; kNN is the
            // `KFDS_KNN` A/B pair — time both paths once per thread count
            // and share the numbers across the grid rows. The blocked
            // lists are the ones handed to skeletonization (both paths
            // return bitwise-identical lists whenever the selected sets
            // agree, so recall/exactness is unchanged either way).
            let mut t_tree = f64::INFINITY;
            let mut t_knn = f64::INFINITY;
            let mut t_knn_scalar = f64::INFINITY;
            let mut shared_nn = None;
            for _ in 0..REPS {
                let (tree, tt) =
                    pool_handle.install(|| timed(|| BallTree::build(&wl.points, wl.m)));
                kfds_tree::set_knn_blocked(true);
                let (nn, tk) =
                    pool_handle.install(|| timed(|| compute_neighbors(&tree, &skel_cfg)));
                kfds_tree::set_knn_blocked(false);
                let (_, tks) =
                    pool_handle.install(|| timed(|| compute_neighbors(&tree, &skel_cfg)));
                kfds_tree::set_knn_blocked(true);
                t_tree = t_tree.min(tt);
                t_knn = t_knn.min(tk);
                t_knn_scalar = t_knn_scalar.min(tks);
                shared_nn = Some(nn);
            }
            let nn = shared_nn.expect("REPS > 0");
            for &(pool, simd_on, cpqr_on) in &configs {
                apply_grid(pool, simd_on, cpqr_on);
                let kernel = Gaussian::new(wl.h);
                // Warm-up pass: fault in pages / fill the workspace pool so
                // the measured passes reflect steady state.
                let st = pool_handle.install(|| {
                    let tree = BallTree::build(&wl.points, wl.m);
                    skeletonize_with_neighbors(tree, &kernel, skel_cfg.clone(), &nn)
                });
                let _ = pool_handle.install(|| factorize(&st, &kernel, cfg).expect("warmup"));
                drop(st);
                let (h0, m0) = workspace::stats();
                let mut t_skel = f64::INFINITY;
                let mut t_factor = f64::INFINITY;
                let mut t_assemble = f64::INFINITY;
                let mut t_factor_stored = f64::INFINITY;
                let mut t_refactor = f64::INFINITY;
                let mut t_skel_pernode = f64::INFINITY;
                let mut t_factor_pernode = f64::INFINITY;
                let mut t_solve = f64::INFINITY;
                let mut t_solve16 = f64::INFINITY;
                let mut flops = 0.0;
                let mut factor_levels = Vec::new();
                // The λ-sweep refactorization triplet (assemble once,
                // fresh StoredGemv factorize, λ-only refactor) is measured
                // on the full-fast configuration only, as is the
                // `KFDS_BATCH` A/B (per-node engine setup timings).
                let measure_refactor = pool && simd_on && cpqr_on;
                let measure_batch = measure_refactor && kfds_la::batch_active();
                for _ in 0..REPS {
                    let tree = pool_handle.install(|| BallTree::build(&wl.points, wl.m));
                    let (st, tsk) = pool_handle.install(|| {
                        timed(|| skeletonize_with_neighbors(tree, &kernel, skel_cfg.clone(), &nn))
                    });
                    let (ft, tf) =
                        pool_handle.install(|| timed(|| factorize(&st, &kernel, cfg).expect("f")));
                    let mut x = test_vec(n, 42);
                    let (_, ts) =
                        pool_handle.install(|| timed(|| ft.solve_in_place(&mut x).expect("solve")));
                    // Blocked multi-RHS solve: the serving-path amortization
                    // (one factor traversal, 16 columns, GEMM-shaped work).
                    let mut xm = Mat::zeros(n, 16);
                    for j in 0..16 {
                        xm.col_mut(j).copy_from_slice(&test_vec(n, 42 + j as u64));
                    }
                    let (_, ts16) = pool_handle
                        .install(|| timed(|| ft.solve_mat_in_place(&mut xm).expect("solve16")));
                    if measure_refactor {
                        let stored = cfg.with_storage(StorageMode::StoredGemv);
                        let (blocks, ta) = pool_handle
                            .install(|| timed(|| Arc::new(assemble_blocks(&st, &kernel))));
                        let (_, tfs) = pool_handle.install(|| {
                            timed(|| factorize(&st, &kernel, stored).expect("stored factorize"))
                        });
                        // λ-only refactorization at a shifted λ: the
                        // steady-state per-λ cost of a sweep.
                        let recfg = stored.with_lambda(wl.lambda * 2.0);
                        let (_, tr) = pool_handle.install(|| {
                            timed(|| {
                                factorize_with_blocks(&st, &kernel, Arc::clone(&blocks), recfg)
                                    .expect("refactor")
                            })
                        });
                        t_assemble = t_assemble.min(ta);
                        t_factor_stored = t_factor_stored.min(tfs);
                        t_refactor = t_refactor.min(tr);
                    }
                    if measure_batch {
                        // Same workload under the per-node engine: the
                        // before/after of the level-batched planner.
                        kfds_la::set_batch_enabled(false);
                        let tree_pn = pool_handle.install(|| BallTree::build(&wl.points, wl.m));
                        let (st_pn, tskp) = pool_handle.install(|| {
                            timed(|| {
                                skeletonize_with_neighbors(tree_pn, &kernel, skel_cfg.clone(), &nn)
                            })
                        });
                        let (_, tfp) = pool_handle.install(|| {
                            timed(|| factorize(&st_pn, &kernel, cfg).expect("per-node factorize"))
                        });
                        kfds_la::set_batch_enabled(true);
                        t_skel_pernode = t_skel_pernode.min(tskp);
                        t_factor_pernode = t_factor_pernode.min(tfp);
                    }
                    t_skel = t_skel.min(tsk);
                    t_factor = t_factor.min(tf);
                    t_solve = t_solve.min(ts);
                    t_solve16 = t_solve16.min(ts16);
                    flops = ft.stats().flops;
                    factor_levels = ft.stats().levels.clone();
                }
                if !measure_refactor {
                    t_assemble = 0.0;
                    t_factor_stored = 0.0;
                    t_refactor = 0.0;
                }
                if !measure_batch {
                    t_skel_pernode = 0.0;
                    t_factor_pernode = 0.0;
                }
                let (h1, m1) = workspace::stats();
                runs.push(Run {
                    label: wl.label.clone(),
                    n,
                    threads,
                    pool,
                    simd: simd_on,
                    cpqr: cpqr_on,
                    t_tree_s: t_tree,
                    t_knn_s: t_knn,
                    t_knn_scalar_s: t_knn_scalar,
                    t_skel_s: t_skel,
                    t_factor_s: t_factor,
                    t_assemble_s: t_assemble,
                    t_factor_stored_s: t_factor_stored,
                    t_refactor_s: t_refactor,
                    t_skel_pernode_s: t_skel_pernode,
                    t_factor_pernode_s: t_factor_pernode,
                    factor_levels: std::mem::take(&mut factor_levels),
                    t_solve_s: t_solve,
                    t_solve16_s: t_solve16,
                    solve16_rhs_per_s: 16.0 / t_solve16,
                    flops,
                    gflops: flops / t_factor / 1e9,
                    pool_hits: (h1 - h0) / REPS as u64,
                    pool_misses: (m1 - m0) / REPS as u64,
                    peak_rss_kb: peak_rss_kb(),
                });
                let r = runs.last().expect("just pushed");
                eprintln!(
                    "  threads={threads} pool={pool} simd={simd_on} cpqr={cpqr_on}: skel {:.3}s, factor {:.3}s ({:.2} GFLOP/s), solve {:.4}s, solve16 {:.4}s ({:.0} rhs/s), hits/misses {}/{}",
                    r.t_skel_s, r.t_factor_s, r.gflops, r.t_solve_s, r.t_solve16_s, r.solve16_rhs_per_s, r.pool_hits, r.pool_misses
                );
                if measure_refactor {
                    eprintln!(
                        "    assemble {:.3}s, stored factor {:.3}s, refactor {:.3}s ({:.2}x)",
                        r.t_assemble_s,
                        r.t_factor_stored_s,
                        r.t_refactor_s,
                        r.t_factor_stored_s / r.t_refactor_s
                    );
                }
                if measure_batch {
                    eprintln!(
                        "    per-node skel {:.3}s, factor {:.3}s (batched setup {:.2}x)",
                        r.t_skel_pernode_s,
                        r.t_factor_pernode_s,
                        (r.t_skel_pernode_s + r.t_factor_pernode_s) / (r.t_skel_s + r.t_factor_s)
                    );
                }
            }
        }
    }
    apply_grid(true, true, true);

    let json = render_json(&runs, &skipped, scale);
    std::fs::write("BENCH_factor.json", &json).expect("write BENCH_factor.json");
    eprintln!("wrote BENCH_factor.json ({} runs, {} rows skipped)", runs.len(), skipped.len());
}

/// `--check [gate]`: verifies that every runtime-dispatched fast path is
/// in the state the host and environment imply. Returns the process exit
/// code. With a gate name (`simd` | `cpqr` | `eval` | `knn` | `refactor`
/// | `batch` | `scaling`) only that gate runs.
///
/// * AVX2+FMA host, vector kernels active — OK.
/// * `KFDS_SIMD=off`/`0` set — scalar mode was requested, OK.
/// * non-x86 / pre-AVX2 host — scalar fallback is the implementation, OK.
/// * AVX2+FMA host but kernels inactive with no opt-out — **failure**: the
///   scalar fallback silently engaged (a dispatch or build regression).
/// * Blocked CPQR / GEMM assembly inactive (or not actually taken by a
///   large factorization) without `KFDS_CPQR`/`KFDS_EVAL_GEMM` being set —
///   **failure**: the BLAS-3 setup path silently fell back.
/// * `KFDS_KNN` unset but an exact + approximate search computes no GEMM
///   distance tiles — **failure**: kNN silently fell back to scalar.
fn dispatch_check(gate: Option<&str>) -> i32 {
    if let Some(g) = gate {
        if !["simd", "cpqr", "eval", "knn", "refactor", "batch", "scaling"].contains(&g) {
            eprintln!(
                "unknown dispatch gate {g:?} (expected simd | cpqr | eval | knn | refactor | \
                 batch | scaling)"
            );
            return 2;
        }
    }
    let want = |g: &str| gate.is_none() || gate == Some(g);

    if want("simd") {
        let feats = simd::detected_features();
        let env_off = kfds_switches::KFDS_SIMD.is_off();
        if env_off {
            eprintln!("simd check: KFDS_SIMD=off requested, scalar paths active ({feats})");
        } else if simd::cpu_supported() && !simd::active() {
            eprintln!(
                "simd check FAILED: host supports the vector kernels ({feats}) but they are \
                 inactive and KFDS_SIMD was not set — scalar fallback silently engaged"
            );
            return 1;
        } else {
            eprintln!("simd check: features {feats}, vector kernels active = {}", simd::active());
        }
    }

    // Blocked-setup gate: with no opt-out in the environment, the blocked
    // CPQR must (a) report active and (b) actually take the panel path for
    // a factorization above the dispatch threshold.
    if want("cpqr") {
        let cpqr_env_off = kfds_switches::KFDS_CPQR.is_off();
        if cpqr_env_off {
            eprintln!("cpqr check: KFDS_CPQR=unblocked requested, BLAS-2 path active");
        } else {
            let before = cpqr::blocked_factor_count();
            let a = Mat::from_fn(96, 96, |i, j| ((i * 7 + j * 13) as f64 * 0.19).sin());
            let _ = ColPivQr::factor_truncated(a, 0.0, usize::MAX);
            if !cpqr::blocked_active() || cpqr::blocked_factor_count() == before {
                eprintln!(
                    "cpqr check FAILED: KFDS_CPQR not set but a 96x96 factorization did not take \
                     the blocked panel path — BLAS-2 fallback silently engaged"
                );
                return 1;
            }
            eprintln!("cpqr check: blocked panel path active");
        }
    }

    if want("eval") {
        let eval_env_off = kfds_switches::KFDS_EVAL_GEMM.is_off();
        if eval_env_off {
            eprintln!("eval check: KFDS_EVAL_GEMM=off requested, scalar block assembly active");
        } else if !kfds_kernels::gemm_eval_active() {
            eprintln!(
                "eval check FAILED: KFDS_EVAL_GEMM not set but the GEMM block-assembly path is \
                 inactive — scalar fallback silently engaged"
            );
            return 1;
        } else {
            eprintln!("eval check: GEMM block assembly active");
        }
    }

    // kNN gate: with no opt-out, an exact + approximate search over a
    // small set must route through the blocked pipeline and compute at
    // least one GEMM distance tile.
    if want("knn") {
        let knn_env_off = kfds_switches::KFDS_KNN.is_off();
        if knn_env_off {
            eprintln!("knn check: KFDS_KNN=scalar requested, scalar neighbor search active");
        } else {
            let before = kfds_tree::blocked_tile_count();
            let pts = normal_embedded(256, 4, 8, 0.1, 3);
            let tree = BallTree::build(&pts, 32);
            let _ = kfds_tree::knn_all(&tree, 8);
            let _ = kfds_tree::knn_approximate(&tree, 8, 2, 7);
            if !kfds_tree::knn_blocked_active() || kfds_tree::blocked_tile_count() == before {
                eprintln!(
                    "knn check FAILED: KFDS_KNN not set but a 256-point exact + approximate \
                     search computed no GEMM distance tiles — scalar fallback silently engaged"
                );
                return 1;
            }
            eprintln!("knn check: blocked GEMM-tile neighbor search active");
        }
    }

    // Strong-scaling gate (ROADMAP item 6): explicitly named only — it is
    // a timing measurement, not a dispatch probe, so the bare `--check`
    // stays fast. It arms only on hosts with >= 2 physical cores; on
    // narrower hosts (where the trajectory run skips multi-thread rows)
    // it reports not-armed and passes. When armed, a multi-thread
    // setup+factorize must beat single-thread wall-clock.
    if gate == Some("scaling") {
        let phys = physical_cores();
        if phys < 2 {
            eprintln!(
                "scaling check: not armed — host exposes {phys} physical core(s); strong-scaling \
                 wall-clock is only meaningful on >= 2 (multi-thread trajectory rows are skipped \
                 on this host for the same reason)"
            );
        } else {
            let threads = phys.min(4);
            let pts = normal_embedded(8192, 6, 64, 0.1, 17);
            let kernel = Gaussian::new(4.0);
            let skel_cfg = harness_skel_config(pts.dim(), 0.0, 64, 1);
            let cfg = SolverConfig::default().with_lambda(1.0);
            let time_at = |nthreads: usize| -> f64 {
                let pool =
                    rayon::ThreadPoolBuilder::new().num_threads(nthreads).build().expect("pool");
                let nn = pool.install(|| {
                    let tree = BallTree::build(&pts, 128);
                    compute_neighbors(&tree, &skel_cfg)
                });
                let mut best = f64::INFINITY;
                for _ in 0..REPS {
                    let (_, t) = pool.install(|| {
                        timed(|| {
                            let tree = BallTree::build(&pts, 128);
                            let st =
                                skeletonize_with_neighbors(tree, &kernel, skel_cfg.clone(), &nn);
                            factorize(&st, &kernel, cfg).expect("factorize");
                        })
                    });
                    best = best.min(t);
                }
                best
            };
            let t1 = time_at(1);
            let tp = time_at(threads);
            let speedup = t1 / tp;
            if speedup < 1.2 {
                eprintln!(
                    "scaling check FAILED: {threads}-thread setup+factorize is only \
                     {speedup:.2}x single-thread ({tp:.3}s vs {t1:.3}s) on a {phys}-core host — \
                     the parallel paths are not delivering wall-clock speedup"
                );
                return 1;
            }
            eprintln!(
                "scaling check: {threads}-thread setup+factorize {speedup:.2}x over \
                 single-thread ({t1:.3}s -> {tp:.3}s) on {phys} physical cores"
            );
        }
    }

    // Refactorization gate: with no opt-out, the λ-sweep refactor path
    // must be enabled AND reproduce a fresh StoredGemv factorization
    // bitwise across a λ grid (the contract `KFDS_REFACTOR=off` falls
    // back from).
    if want("refactor") {
        let refactor_env_off = kfds_switches::KFDS_REFACTOR.is_off();
        if refactor_env_off {
            if refactor_enabled() {
                eprintln!(
                    "refactor check FAILED: KFDS_REFACTOR=off is set but the refactorization \
                     path reports enabled — the kill-switch is not being honored"
                );
                return 1;
            }
            eprintln!("refactor check: KFDS_REFACTOR=off requested, legacy per-λ path active");
        } else {
            if !refactor_enabled() {
                eprintln!(
                    "refactor check FAILED: KFDS_REFACTOR not set but the refactorization path \
                     is inactive — λ sweeps silently fell back to full per-λ factorizations"
                );
                return 1;
            }
            let pts = normal_embedded(512, 3, 8, 0.05, 29);
            let kernel = Gaussian::new(1.0);
            let tree = BallTree::build(&pts, 64);
            let skel_cfg = harness_skel_config(pts.dim(), 1e-5, 48, 1);
            let st = skeletonize_with_neighbors(
                tree.clone(),
                &kernel,
                skel_cfg.clone(),
                &compute_neighbors(&tree, &skel_cfg),
            );
            let blocks = Arc::new(assemble_blocks(&st, &kernel));
            let base = SolverConfig::default().with_storage(StorageMode::StoredGemv);
            let mut seed_ft: Option<kfds_core::FactorTree<'_, Gaussian>> = None;
            for &lambda in &[1e-3, 0.1, 1.0, 10.0] {
                let cfg = base.with_lambda(lambda);
                // First λ exercises factorize_with_blocks, the rest the
                // FactorTree::refactor chain (block reuse without
                // reassembly).
                let ft = match &seed_ft {
                    None => factorize_with_blocks(&st, &kernel, Arc::clone(&blocks), cfg)
                        .expect("blocked factorize"),
                    Some(prev) => prev.refactor(lambda).expect("refactor"),
                };
                let fresh = factorize(&st, &kernel, cfg).expect("fresh factorize");
                let mut a = test_vec(512, 7);
                let mut b = a.clone();
                ft.solve_in_place(&mut a).expect("blocked solve");
                fresh.solve_in_place(&mut b).expect("fresh solve");
                if a != b {
                    eprintln!(
                        "refactor check FAILED: λ = {lambda} refactorized solve differs from a \
                         fresh StoredGemv factorization — the bitwise reuse contract is broken"
                    );
                    return 1;
                }
                seed_ft = Some(ft);
            }
            eprintln!("refactor check: λ-sweep refactorization active and bitwise across λ grid");
        }
    }

    // Level-batched engine gate: with no opt-out, the batched planner
    // must be active AND reproduce the per-node engine bitwise end to
    // end (skeletonize → factorize → solve, plus the flop accounting),
    // and it must actually record a per-level breakdown. With
    // `KFDS_BATCH=off`, the per-node engine must be the one running.
    if want("batch") {
        let batch_env_off = kfds_switches::KFDS_BATCH.is_off();
        if batch_env_off {
            if kfds_la::batch_active() {
                eprintln!(
                    "batch check FAILED: KFDS_BATCH=off is set but the level-batched engine \
                     reports active — the kill-switch is not being honored"
                );
                return 1;
            }
            eprintln!("batch check: KFDS_BATCH=off requested, per-node engine active");
        } else {
            if !kfds_la::batch_active() {
                eprintln!(
                    "batch check FAILED: KFDS_BATCH not set but the level-batched engine is \
                     inactive — setup silently fell back to per-node dense calls"
                );
                return 1;
            }
            let pts = normal_embedded(512, 3, 8, 0.05, 37);
            let kernel = Gaussian::new(1.0);
            let skel_cfg = harness_skel_config(pts.dim(), 1e-5, 48, 1);
            let cfg = SolverConfig::default().with_lambda(0.7);
            let run = |batched: bool| {
                kfds_la::set_batch_enabled(batched);
                let tree = BallTree::build(&pts, 64);
                let nn = compute_neighbors(&tree, &skel_cfg);
                let st = skeletonize_with_neighbors(tree, &kernel, skel_cfg.clone(), &nn);
                let ft = factorize(&st, &kernel, cfg).expect("factorize");
                let mut x = test_vec(512, 9);
                ft.solve_in_place(&mut x).expect("solve");
                let stats = ft.stats();
                (x, stats.flops, stats.levels.len())
            };
            let (xb, fb, levels) = run(true);
            let (xp, fp, _) = run(false);
            kfds_la::set_batch_enabled(true);
            if xb != xp || fb.to_bits() != fp.to_bits() {
                eprintln!(
                    "batch check FAILED: the level-batched engine does not reproduce the \
                     per-node engine bitwise (solve outputs or flop accounting differ) — \
                     batching changed arithmetic, not just scheduling"
                );
                return 1;
            }
            if levels == 0 {
                eprintln!(
                    "batch check FAILED: the batched factorization recorded no per-level \
                     breakdown — the level sweep did not route through the batched planner"
                );
                return 1;
            }
            eprintln!(
                "batch check: level-batched engine active, bitwise vs per-node, \
                 {levels} level(s) recorded"
            );
        }
    }
    0
}

fn build_workloads(scale: f64) -> Vec<Workload> {
    let mut out = Vec::new();
    // Fig. 4-left: NORMAL64D complexity sweep, fixed rank, L = 1.
    for &base in &[4096usize, 8192] {
        let n = (base as f64 * scale) as usize;
        out.push(Workload {
            label: format!("fig4_left_normal64d_n{n}"),
            points: normal_embedded(n, 6, 64, 0.1, 17),
            h: 4.0,
            lambda: 1.0,
            tau: 0.0,
            max_rank: 64,
            m: 128,
        });
    }
    // Table III: dataset stand-ins at tau = 1e-3 (the middle column).
    for name in ["COVTYPE", "NORMAL"] {
        let n = (8192.0 * scale) as usize;
        let s = standin(name, n, 0x7ab1e3 + name.len() as u64);
        let h = scaled_bandwidth(s.points.dim(), 0.35);
        out.push(Workload {
            label: format!("table3_{}_n{n}", s.name.to_lowercase()),
            points: s.points,
            h,
            lambda: s.lambda,
            tau: 1e-3,
            max_rank: 128,
            m: 128,
        });
    }
    out
}

/// Physical core count: unique `(physical id, core id)` pairs from
/// `/proc/cpuinfo`, falling back to `available_parallelism` where the
/// topology is not exposed. SMT siblings and time-sliced container vCPUs
/// collapse onto their core, which is the honest capacity bound for
/// wall-clock parallel speedup claims.
fn physical_cores() -> usize {
    let fallback = std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1);
    let Ok(info) = std::fs::read_to_string("/proc/cpuinfo") else {
        return fallback;
    };
    let mut phys = 0u64;
    let mut cores = std::collections::BTreeSet::new();
    for line in info.lines() {
        let Some((key, val)) = line.split_once(':') else {
            continue;
        };
        match key.trim() {
            "physical id" => phys = val.trim().parse().unwrap_or(0),
            "core id" => {
                let core: u64 = val.trim().parse().unwrap_or(0);
                cores.insert((phys, core));
            }
            _ => {}
        }
    }
    if cores.is_empty() {
        fallback
    } else {
        cores.len()
    }
}

/// Peak resident set size in KiB from `/proc/self/status` (0 if absent).
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn render_json(runs: &[Run], skipped: &[(String, usize)], scale: f64) -> String {
    let cpus = std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1);
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"kfds-perf-trajectory-v8\",\n");
    s.push_str(
        "  \"generated_by\": \"cargo run --release -p kfds-bench --bin perf_trajectory\",\n",
    );
    s.push_str(&format!("  \"scale\": {scale},\n"));
    s.push_str(&format!("  \"host_cpus\": {cpus},\n"));
    s.push_str(&format!("  \"host_physical_cores\": {},\n", physical_cores()));
    s.push_str(&format!("  \"host_simd\": \"{}\",\n", simd::detected_features()));
    s.push_str(&format!("  \"reps_best_of\": {REPS},\n"));
    s.push_str("  \"note\": \"pool=false disables the kfds-la workspace pool at runtime; simd=false forces the scalar reference kernels (the pre-SIMD numerics, bitwise); cpqr=false forces the pre-BLAS-3 setup pipeline (unblocked one-reflector CPQR + per-entry scalar kernel block assembly, bitwise). simd_speedup compares (pool on, simd off) vs the full fast path at factor time; pool_speedup compares pool off vs on; skel_speedup compares cpqr off vs on at skeletonization time — the setup win of the blocked RRQR + GEMM assembly. Timings are best-of-3. t_tree_s is invariant under the grid switches and is measured once per thread count (shared across that thread count's rows); kNN is measured A/B per thread count — t_knn_s is the blocked GEMM-tile search (KFDS_KNN default) and t_knn_scalar_s the legacy scalar search, so knn_speedup = t_knn_scalar_s / t_knn_s. Thread counts above host_physical_cores are skipped entirely and listed in skipped_rows: timing them would measure time-slicing, not parallel speedup (run `--check scaling` on a multi-core host for the armed strong-scaling gate). batch16_solve_amortization is (16 * t_solve_s) / t_solve16_s — the per-RHS win of one blocked traversal over 16 single solves. The λ-sweep refactorization triplet is measured on the full-fast rows only (0.0 elsewhere): t_assemble_s is the one-time λ-independent kernel block assembly, t_factor_stored_s a fresh StoredGemv factorization (the fair per-λ baseline), and t_refactor_s the λ-only refactorization over the pre-assembled blocks. refactor_speedup = t_factor_stored_s / t_refactor_s is the steady-state per-λ win; lambda_sweep_amortization = (8 * t_factor_stored_s) / (t_assemble_s + 8 * t_refactor_s) is the end-to-end win of an 8-λ cross-validation sweep including the assembly it amortizes. The KFDS_BATCH A/B is measured on the full-fast rows only (0.0 elsewhere): t_skel_pernode_s / t_factor_pernode_s rerun the same skeletonize/factorize under the per-node engine, so batch_setup_speedup = (t_skel_pernode_s + t_factor_pernode_s) / (t_skel_s + t_factor_s) is the win of the level-batched planner (bitwise-identical output, scheduling only). factor_levels is the batched factorization's per-level breakdown: nodes per level, shape-bucketed op groups launched, and wall-clock seconds, recorded root-last (bottom-up).\",\n");
    s.push_str("  \"skipped_rows\": [\n");
    for (i, (label, threads)) in skipped.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"label\": \"{label}\", \"threads\": {threads}, \"reason\": \
             \"host_physical_cores < threads (would time-slice)\"}}{}\n",
            if i + 1 < skipped.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let levels_json: String = r
            .factor_levels
            .iter()
            .map(|l| {
                format!(
                    "{{\"level\": {}, \"nodes\": {}, \"op_groups\": {}, \"seconds\": {:.6}}}",
                    l.level, l.nodes, l.op_groups, l.seconds
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        s.push_str(&format!(
            "    {{\"label\": \"{}\", \"n\": {}, \"threads\": {}, \"pool\": {}, \"simd\": {}, \"cpqr\": {}, \"t_tree_s\": {:.6}, \"t_knn_s\": {:.6}, \"t_knn_scalar_s\": {:.6}, \"t_skel_s\": {:.6}, \"t_factor_s\": {:.6}, \"t_assemble_s\": {:.6}, \"t_factor_stored_s\": {:.6}, \"t_refactor_s\": {:.6}, \"t_skel_pernode_s\": {:.6}, \"t_factor_pernode_s\": {:.6}, \"t_solve_s\": {:.6}, \"t_solve16_s\": {:.6}, \"solve16_rhs_per_s\": {:.1}, \"flops\": {:.3e}, \"factor_gflops\": {:.4}, \"pool_hits\": {}, \"pool_misses\": {}, \"peak_rss_kb\": {}, \"factor_levels\": [{}]}}{}\n",
            r.label,
            r.n,
            r.threads,
            r.pool,
            r.simd,
            r.cpqr,
            r.t_tree_s,
            r.t_knn_s,
            r.t_knn_scalar_s,
            r.t_skel_s,
            r.t_factor_s,
            r.t_assemble_s,
            r.t_factor_stored_s,
            r.t_refactor_s,
            r.t_skel_pernode_s,
            r.t_factor_pernode_s,
            r.t_solve_s,
            r.t_solve16_s,
            r.solve16_rhs_per_s,
            r.flops,
            r.gflops,
            r.pool_hits,
            r.pool_misses,
            r.peak_rss_kb,
            levels_json,
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"summary\": {\n");
    let mut lines = Vec::new();
    for r in runs.iter().filter(|r| r.pool && r.simd && r.cpqr) {
        if let Some(before) = runs
            .iter()
            .find(|b| !b.pool && b.simd && b.cpqr && b.label == r.label && b.threads == r.threads)
        {
            lines.push(format!(
                "    \"{}_t{}_pool_speedup\": {:.4}",
                r.label,
                r.threads,
                before.t_factor_s / r.t_factor_s
            ));
        }
        if let Some(scalar) = runs
            .iter()
            .find(|b| b.pool && !b.simd && b.cpqr && b.label == r.label && b.threads == r.threads)
        {
            lines.push(format!(
                "    \"{}_t{}_simd_speedup\": {:.4}",
                r.label,
                r.threads,
                scalar.t_factor_s / r.t_factor_s
            ));
        }
        if let Some(blas2) = runs
            .iter()
            .find(|b| b.pool && b.simd && !b.cpqr && b.label == r.label && b.threads == r.threads)
        {
            lines.push(format!(
                "    \"{}_t{}_skel_speedup\": {:.4}",
                r.label,
                r.threads,
                blas2.t_skel_s / r.t_skel_s
            ));
            lines.push(format!(
                "    \"{}_t{}_setup_speedup\": {:.4}",
                r.label,
                r.threads,
                (blas2.t_tree_s + blas2.t_knn_s + blas2.t_skel_s)
                    / (r.t_tree_s + r.t_knn_s + r.t_skel_s)
            ));
        }
        lines.push(format!(
            "    \"{}_t{}_knn_speedup\": {:.4}",
            r.label,
            r.threads,
            r.t_knn_scalar_s / r.t_knn_s
        ));
        lines.push(format!(
            "    \"{}_t{}_batch16_solve_amortization\": {:.4}",
            r.label,
            r.threads,
            (16.0 * r.t_solve_s) / r.t_solve16_s
        ));
        if r.t_refactor_s > 0.0 {
            lines.push(format!(
                "    \"{}_t{}_refactor_speedup\": {:.4}",
                r.label,
                r.threads,
                r.t_factor_stored_s / r.t_refactor_s
            ));
            lines.push(format!(
                "    \"{}_t{}_lambda_sweep_amortization\": {:.4}",
                r.label,
                r.threads,
                (8.0 * r.t_factor_stored_s) / (r.t_assemble_s + 8.0 * r.t_refactor_s)
            ));
        }
        if r.t_factor_pernode_s > 0.0 {
            lines.push(format!(
                "    \"{}_t{}_batch_setup_speedup\": {:.4}",
                r.label,
                r.threads,
                (r.t_skel_pernode_s + r.t_factor_pernode_s) / (r.t_skel_s + r.t_factor_s)
            ));
        }
    }
    // Steady-state allocation behavior: with the pool on, hit rate of the
    // measured (post-warm-up) passes.
    let (hits, misses) = runs
        .iter()
        .filter(|r| r.pool)
        .fold((0u64, 0u64), |(h, m), r| (h + r.pool_hits, m + r.pool_misses));
    lines.push(format!(
        "    \"steady_state_pool_hit_rate\": {:.4}",
        hits as f64 / (hits + misses).max(1) as f64
    ));
    s.push_str(&lines.join(",\n"));
    s.push_str("\n  }\n}\n");
    s
}
