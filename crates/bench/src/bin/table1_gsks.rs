//! **Table I** — Gaussian kernel-summation efficiency (GFLOP/s):
//! GSKS (fused, matrix-free) vs the best-known two-pass reference
//! (`GEMM → exp → GEMV`, the paper's "MKL+VML" row).
//!
//! Paper: `m = n ∈ {4K, 8K, 16K}`, `d ∈ {4, 20, 36, 68, 132, 260}` on
//! Haswell/KNL nodes; GSKS wins by 3–30× on KNL at small `d` because it
//! removes the `O(mn)` block traffic. Here: single x86 core, scaled
//! default sizes `{2K, 4K}` (`--large` adds 8K).
//!
//! ```sh
//! cargo run --release -p kfds-bench --bin table1_gsks [-- --large]
//! ```

use kfds_bench::{arg_flag, header, row, test_vec, timed};
use kfds_kernels::flops::summation_flops;
use kfds_kernels::{sum_fused, sum_reference, Gaussian, Kernel};
use kfds_tree::datasets::uniform_cube;

fn main() {
    let mut sizes = vec![2048usize, 4096];
    if arg_flag("--large") {
        sizes.push(8192);
    }
    let dims = [4usize, 20, 36, 68, 132, 260];
    let kernel = Gaussian::new(1.0);

    println!("# Table I — Gaussian kernel summation efficiency (GFLOP/s)");
    println!("# engines: reference = GEMM + exp + GEMV (two-pass, O(mn) storage)");
    println!("#          GSKS      = fused semi-ring rank-d update (O(1) storage)\n");
    header(&["size", "engine", "d=4", "d=20", "d=36", "d=68", "d=132", "d=260"]);

    for &n in &sizes {
        let mut ref_cells = vec![format!("{}K", n / 1024), "reference".to_string()];
        let mut gsks_cells = vec![format!("{}K", n / 1024), "GSKS".to_string()];
        for &d in &dims {
            let pts = uniform_cube(2 * n, d, (n + d) as u64);
            let rows_idx: Vec<usize> = (0..n).collect();
            let cols_idx: Vec<usize> = (n..2 * n).collect();
            let u = test_vec(n, 7);
            let mut w = vec![0.0; n];
            let fl = summation_flops(n, n, d, kernel.flops_per_eval());

            let (_, t_ref) =
                timed(|| sum_reference(&kernel, &pts, &rows_idx, &cols_idx, &u, &mut w));
            let w_ref = w.clone();
            let (_, t_gsks) = timed(|| sum_fused(&kernel, &pts, &rows_idx, &cols_idx, &u, &mut w));
            // Guard: both engines must agree.
            let err = kfds_bench::rel_err(&w, &w_ref);
            assert!(err < 1e-10, "engine mismatch {err}");

            ref_cells.push(format!("{:.1}", fl / t_ref / 1e9));
            gsks_cells.push(format!("{:.1}", fl / t_gsks / 1e9));
        }
        row(&ref_cells);
        row(&gsks_cells);
    }
    println!(
        "\n# shape check vs paper: GSKS wins at small-to-moderate d where the two-pass\n\
         # engine is bound by the O(mn) block traffic; as d grows both engines become\n\
         # kernel-evaluation bound and the gap closes (Haswell column of Table I)."
    );
}
