//! Property-based tests for the kernel functions and summation engines.

use kfds_kernels::{
    eval_block, kernel_block_gemm, sum_fused, sum_reference, Gaussian, Kernel, Laplacian,
    Matern32,
};
use kfds_tree::PointSet;
use proptest::prelude::*;

fn points_strategy(max_n: usize, max_d: usize) -> impl Strategy<Value = PointSet> {
    (2..=max_n, 1..=max_d).prop_flat_map(|(n, d)| {
        proptest::collection::vec(-3.0f64..3.0, n * d)
            .prop_map(move |data| PointSet::from_col_major(d, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn kernels_bounded_and_symmetric(pts in points_strategy(12, 5), h in 0.2f64..4.0) {
        let kernels: [&dyn Kernel; 3] =
            [&Gaussian::new(h), &Laplacian::new(h), &Matern32::new(h)];
        for k in kernels {
            for i in 0..pts.len() {
                for j in 0..pts.len() {
                    let v = k.eval(pts.point(i), pts.point(j));
                    prop_assert!((0.0..=1.0 + 1e-12).contains(&v), "{} out of range", k.name());
                    let w = k.eval(pts.point(j), pts.point(i));
                    prop_assert!((v - w).abs() < 1e-12, "{} asymmetric", k.name());
                }
                prop_assert!((k.eval(pts.point(i), pts.point(i)) - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn gaussian_monotone_in_distance(h in 0.3f64..3.0, a in 0.0f64..2.0, b in 0.0f64..2.0) {
        let k = Gaussian::new(h);
        let (near, far) = if a <= b { (a, b) } else { (b, a) };
        let v_near = k.eval(&[0.0], &[near]);
        let v_far = k.eval(&[0.0], &[far]);
        prop_assert!(v_near >= v_far - 1e-15);
    }

    #[test]
    fn engines_agree(pts in points_strategy(24, 6), h in 0.3f64..3.0) {
        let n = pts.len();
        let split = n / 2;
        prop_assume!(split >= 1 && n - split >= 1);
        let rows: Vec<usize> = (0..split).collect();
        let cols: Vec<usize> = (split..n).collect();
        let u: Vec<f64> = (0..cols.len()).map(|i| (i as f64 * 0.7).sin()).collect();
        let k = Gaussian::new(h);
        let mut w1 = vec![0.0; rows.len()];
        let mut w2 = vec![0.0; rows.len()];
        sum_reference(&k, &pts, &rows, &cols, &u, &mut w1);
        sum_fused(&k, &pts, &rows, &cols, &u, &mut w2);
        for (a, b) in w1.iter().zip(&w2) {
            prop_assert!((a - b).abs() < 1e-10 * (1.0 + a.abs()));
        }
        // The GEMM-built block matches direct evaluation too.
        let blk1 = kernel_block_gemm(&k, &pts, &rows, &cols);
        let blk2 = eval_block(&k, &pts, &rows, &cols);
        for j in 0..cols.len() {
            for i in 0..rows.len() {
                prop_assert!((blk1[(i, j)] - blk2[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn summation_linear_in_weights(pts in points_strategy(16, 4), alpha in -3.0f64..3.0) {
        let n = pts.len();
        let split = n / 2;
        prop_assume!(split >= 1 && n - split >= 1);
        let rows: Vec<usize> = (0..split).collect();
        let cols: Vec<usize> = (split..n).collect();
        let k = Laplacian::new(1.0);
        let u: Vec<f64> = (0..cols.len()).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let ua: Vec<f64> = u.iter().map(|v| alpha * v).collect();
        let mut w = vec![0.0; rows.len()];
        let mut wa = vec![0.0; rows.len()];
        sum_fused(&k, &pts, &rows, &cols, &u, &mut w);
        sum_fused(&k, &pts, &rows, &cols, &ua, &mut wa);
        for (a, b) in wa.iter().zip(&w) {
            prop_assert!((a - alpha * b).abs() < 1e-10 * (1.0 + b.abs()));
        }
    }
}
