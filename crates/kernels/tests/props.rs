//! Property-based tests for the kernel functions and summation engines.

use kfds_kernels::{
    eval_block, kernel_block_gemm, sum_fused, sum_fused_multi, sum_reference, Gaussian, Kernel,
    Laplacian, Matern32,
};
use kfds_la::workspace;
use kfds_tree::PointSet;
use proptest::prelude::*;
use std::sync::Mutex;

/// Serializes tests that flip the global workspace-pool switch.
static POOL_TOGGLE: Mutex<()> = Mutex::new(());

/// NaN-poisons a spread of pool size classes so stale-data reads surface.
fn poison_pool() {
    for log2 in [5usize, 8, 10, 12, 14] {
        let mut w = workspace::take(1 << log2);
        w.fill(f64::NAN);
    }
}

fn det_points(n: usize, d: usize, seed: u64) -> PointSet {
    let data: Vec<f64> = (0..n * d)
        .map(|i| {
            (((i as u64).wrapping_mul(2654435761).wrapping_add(seed) % 1000) as f64) / 250.0 - 2.0
        })
        .collect();
    PointSet::from_col_major(d, data)
}

/// GSKS summation with the pool off, then on (poisoned), must be bitwise
/// identical — the packed-pad zeroing has to mask every stale element.
fn assert_gsks_pool_invariant(n: usize, d: usize, split: usize, nrhs: usize, seed: u64) {
    let pts = det_points(n, d, seed);
    let k = Gaussian::new(1.1);
    let rows: Vec<usize> = (0..split).collect();
    let cols: Vec<usize> = (split..n).collect();
    let u: Vec<f64> = (0..cols.len()).map(|i| (i as f64 * 0.37 + seed as f64).sin()).collect();
    let umat = kfds_la::Mat::from_fn(cols.len(), nrhs, |i, j| ((i * 3 + j) as f64 * 0.29).cos());

    let _guard = POOL_TOGGLE.lock().unwrap();
    workspace::set_pool_enabled(false);
    let mut w_ref = vec![0.0; rows.len()];
    sum_fused(&k, &pts, &rows, &cols, &u, &mut w_ref);
    let mut wm_ref = kfds_la::Mat::zeros(rows.len(), nrhs);
    sum_fused_multi(&k, &pts, &rows, &cols, umat.rb(), wm_ref.rb_mut());

    workspace::set_pool_enabled(true);
    poison_pool();
    let mut w_pool = vec![0.0; rows.len()];
    sum_fused(&k, &pts, &rows, &cols, &u, &mut w_pool);
    let mut wm_pool = kfds_la::Mat::zeros(rows.len(), nrhs);
    sum_fused_multi(&k, &pts, &rows, &cols, umat.rb(), wm_pool.rb_mut());

    for (i, (a, b)) in w_ref.iter().zip(&w_pool).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "single-RHS row {i}: pooled {b} vs unpooled {a}");
    }
    for j in 0..nrhs {
        for i in 0..rows.len() {
            assert_eq!(
                wm_ref[(i, j)].to_bits(),
                wm_pool[(i, j)].to_bits(),
                "multi-RHS ({i},{j}): pooled {} vs unpooled {}",
                wm_pool[(i, j)],
                wm_ref[(i, j)]
            );
        }
    }
}

#[test]
fn pooled_gsks_bitwise_identical_fixed_shapes() {
    // Shapes straddling the GSKS MR/NR = 4 tile edges, including a
    // single-target row and a single-source column.
    for &(n, d, split, nrhs) in
        &[(9usize, 3usize, 1usize, 1usize), (10, 2, 9, 2), (33, 5, 13, 3), (64, 4, 32, 1)]
    {
        assert_gsks_pool_invariant(n, d, split, nrhs, 0xfeed + n as u64);
    }
}

#[test]
fn pooled_gsks_successive_shapes_do_not_alias() {
    // Back-to-back different shapes reuse pooled pads; the zeroed padding
    // tails must isolate each call (checked against the reference engine).
    let _guard = POOL_TOGGLE.lock().unwrap();
    workspace::set_pool_enabled(true);
    poison_pool();
    for &(n, d, split) in &[(40usize, 6usize, 7usize), (12, 2, 5), (29, 8, 20)] {
        let pts = det_points(n, d, 77);
        let k = Laplacian::new(0.8);
        let rows: Vec<usize> = (0..split).collect();
        let cols: Vec<usize> = (split..n).collect();
        let u: Vec<f64> = (0..cols.len()).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let mut w_fused = vec![0.0; rows.len()];
        let mut w_ref = vec![0.0; rows.len()];
        sum_fused(&k, &pts, &rows, &cols, &u, &mut w_fused);
        sum_reference(&k, &pts, &rows, &cols, &u, &mut w_ref);
        for (i, (a, b)) in w_ref.iter().zip(&w_fused).enumerate() {
            assert!(
                (a - b).abs() < 1e-10 * (1.0 + a.abs()),
                "shape ({n},{d},{split}) row {i}: {b} vs {a}"
            );
        }
    }
}

/// RAII guard mirroring the one in `kfds-la`'s props: scalar mode while
/// held, prior mode restored on drop. Use only under [`POOL_TOGGLE`].
struct SimdOff {
    was_active: bool,
}

impl SimdOff {
    fn new() -> Self {
        let was_active = kfds_la::simd::active();
        kfds_la::simd::set_simd_enabled(false);
        SimdOff { was_active }
    }
}

impl Drop for SimdOff {
    fn drop(&mut self) {
        kfds_la::simd::set_simd_enabled(self.was_active);
    }
}

/// Fused summation with the SIMD tile kernel vs the scalar fallback path
/// (which also takes the point-major packing layout) within the relative
/// tolerance of `d`-term reassociation plus the vectorized exponential.
fn assert_gsks_simd_vs_scalar(n: usize, d: usize, split: usize, nrhs: usize, seed: u64) {
    fn check<K: Kernel>(k: &K, n: usize, d: usize, split: usize, nrhs: usize, seed: u64) {
        let pts = det_points(n, d, seed);
        let rows: Vec<usize> = (0..split).collect();
        let cols: Vec<usize> = (split..n).collect();
        let u: Vec<f64> = (0..cols.len()).map(|i| (i as f64 * 0.53 + 0.1).sin()).collect();
        let umat =
            kfds_la::Mat::from_fn(cols.len(), nrhs, |i, j| ((i * 5 + j) as f64 * 0.41).cos());
        let mut w_simd = vec![0.0; rows.len()];
        sum_fused(k, &pts, &rows, &cols, &u, &mut w_simd);
        let mut wm_simd = kfds_la::Mat::zeros(rows.len(), nrhs);
        sum_fused_multi(k, &pts, &rows, &cols, umat.rb(), wm_simd.rb_mut());
        let (w_scalar, wm_scalar) = {
            let _off = SimdOff::new();
            let mut w = vec![0.0; rows.len()];
            sum_fused(k, &pts, &rows, &cols, &u, &mut w);
            let mut wm = kfds_la::Mat::zeros(rows.len(), nrhs);
            sum_fused_multi(k, &pts, &rows, &cols, umat.rb(), wm.rb_mut());
            (w, wm)
        };
        let tol = 1e-12 * (d + cols.len()) as f64;
        for i in 0..rows.len() {
            assert!(
                (w_simd[i] - w_scalar[i]).abs() <= tol * (1.0 + w_scalar[i].abs()),
                "{} ({n},{d},{split}) row {i}: simd {} vs scalar {}",
                k.name(),
                w_simd[i],
                w_scalar[i]
            );
        }
        for j in 0..nrhs {
            for i in 0..rows.len() {
                assert!(
                    (wm_simd[(i, j)] - wm_scalar[(i, j)]).abs()
                        <= tol * (1.0 + wm_scalar[(i, j)].abs()),
                    "{} multi ({i},{j})",
                    k.name()
                );
            }
        }
    }
    check(&Gaussian::new(0.9), n, d, split, nrhs, seed);
    check(&Laplacian::new(1.2), n, d, split, nrhs, seed);
    check(&Matern32::new(0.7), n, d, split, nrhs, seed);
}

#[test]
fn simd_gsks_matches_scalar_edge_tiles() {
    let _guard = POOL_TOGGLE.lock().unwrap();
    // Shapes straddling the 8x4 GSKS tile: partial row tiles (rows < MR),
    // partial column tiles (cols % NR != 0), d from 1 to past a 4-wide
    // register, and nrhs around the contraction kernel's 4-wide RHS step
    // (exact multiple, scalar tail, and below one vector).
    for &(n, d, split, nrhs) in &[
        (3usize, 1usize, 1usize, 1usize),
        (9, 2, 5, 2),
        (12, 3, 8, 1),
        (20, 4, 8, 3),
        (37, 5, 16, 2),
        (40, 4, 24, 4),
        (44, 6, 32, 7),
        (30, 3, 16, 12),
        (48, 8, 24, 1),
        (50, 11, 17, 2),
    ] {
        assert_gsks_simd_vs_scalar(n, d, split, nrhs, 0xbeef + n as u64);
    }
}

#[test]
fn gsks_coincident_points_no_nan() {
    // Duplicated points make ||x-y||^2 cancel to (possibly slightly
    // negative) zero; the clamp plus the SIMD exp must keep every kernel
    // value finite and the all-coincident sums exactly sum(u) * K(x,x).
    let _guard = POOL_TOGGLE.lock().unwrap();
    let d = 3;
    let n = 13;
    let mut data = Vec::with_capacity(n * d);
    for i in 0..n {
        // Three distinct locations, each repeated several times.
        let base = (i % 3) as f64 * 0.77 - 0.5;
        data.extend_from_slice(&[base, base * 1.3 + 0.1, -base]);
    }
    let pts = PointSet::from_col_major(d, data);
    let rows: Vec<usize> = (0..6).collect();
    let cols: Vec<usize> = (6..n).collect();
    let u: Vec<f64> = (0..cols.len()).map(|i| 0.3 + i as f64 * 0.2).collect();
    fn check<K: Kernel>(k: &K, pts: &PointSet, rows: &[usize], cols: &[usize], u: &[f64]) {
        let mut w = vec![f64::NAN; rows.len()];
        sum_fused(k, pts, rows, cols, u, &mut w);
        let mut w_ref = vec![f64::NAN; rows.len()];
        sum_reference(k, pts, rows, cols, u, &mut w_ref);
        for (i, (a, b)) in w_ref.iter().zip(&w).enumerate() {
            assert!(b.is_finite(), "{} row {i} not finite: {b}", k.name());
            assert!(
                (a - b).abs() < 1e-10 * (1.0 + a.abs()),
                "{} row {i}: fused {b} vs reference {a}",
                k.name()
            );
        }
    }
    check(&Gaussian::new(0.8), &pts, &rows, &cols, &u);
    check(&Laplacian::new(1.1), &pts, &rows, &cols, &u);
    check(&Matern32::new(0.9), &pts, &rows, &cols, &u);
    // Fully degenerate set: every point identical. K = 1 everywhere, so
    // each output row is exactly the weight sum (up to summation order).
    let one = vec![0.25; 4 * d];
    let pts1 = PointSet::from_col_major(d, one);
    fn check_degenerate<K: Kernel>(k: &K, pts1: &PointSet) {
        let mut w = vec![f64::NAN; 2];
        sum_fused(k, pts1, &[0, 1], &[2, 3], &[2.0, -0.5], &mut w);
        for (i, v) in w.iter().enumerate() {
            assert!((v - 1.5).abs() < 1e-12, "{} degenerate row {i}: {v}", k.name());
        }
    }
    check_degenerate(&Gaussian::new(0.8), &pts1);
    check_degenerate(&Laplacian::new(1.1), &pts1);
    check_degenerate(&Matern32::new(0.9), &pts1);
}

fn points_strategy(max_n: usize, max_d: usize) -> impl Strategy<Value = PointSet> {
    (2..=max_n, 1..=max_d).prop_flat_map(|(n, d)| {
        proptest::collection::vec(-3.0f64..3.0, n * d)
            .prop_map(move |data| PointSet::from_col_major(d, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn kernels_bounded_and_symmetric(pts in points_strategy(12, 5), h in 0.2f64..4.0) {
        let kernels: [&dyn Kernel; 3] =
            [&Gaussian::new(h), &Laplacian::new(h), &Matern32::new(h)];
        for k in kernels {
            for i in 0..pts.len() {
                for j in 0..pts.len() {
                    let v = k.eval(pts.point(i), pts.point(j));
                    prop_assert!((0.0..=1.0 + 1e-12).contains(&v), "{} out of range", k.name());
                    let w = k.eval(pts.point(j), pts.point(i));
                    prop_assert!((v - w).abs() < 1e-12, "{} asymmetric", k.name());
                }
                prop_assert!((k.eval(pts.point(i), pts.point(i)) - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn gaussian_monotone_in_distance(h in 0.3f64..3.0, a in 0.0f64..2.0, b in 0.0f64..2.0) {
        let k = Gaussian::new(h);
        let (near, far) = if a <= b { (a, b) } else { (b, a) };
        let v_near = k.eval(&[0.0], &[near]);
        let v_far = k.eval(&[0.0], &[far]);
        prop_assert!(v_near >= v_far - 1e-15);
    }

    #[test]
    fn engines_agree(pts in points_strategy(24, 6), h in 0.3f64..3.0) {
        let n = pts.len();
        let split = n / 2;
        prop_assume!(split >= 1 && n - split >= 1);
        let rows: Vec<usize> = (0..split).collect();
        let cols: Vec<usize> = (split..n).collect();
        let u: Vec<f64> = (0..cols.len()).map(|i| (i as f64 * 0.7).sin()).collect();
        let k = Gaussian::new(h);
        let mut w1 = vec![0.0; rows.len()];
        let mut w2 = vec![0.0; rows.len()];
        sum_reference(&k, &pts, &rows, &cols, &u, &mut w1);
        sum_fused(&k, &pts, &rows, &cols, &u, &mut w2);
        for (a, b) in w1.iter().zip(&w2) {
            prop_assert!((a - b).abs() < 1e-10 * (1.0 + a.abs()));
        }
        // The GEMM-built block matches direct evaluation too.
        let blk1 = kernel_block_gemm(&k, &pts, &rows, &cols);
        let blk2 = eval_block(&k, &pts, &rows, &cols);
        for j in 0..cols.len() {
            for i in 0..rows.len() {
                prop_assert!((blk1[(i, j)] - blk2[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn pooled_gsks_bitwise_identical_random(n in 4usize..40, d in 1usize..6, nrhs in 1usize..4, seed in 0u64..500) {
        let split = (n / 2).max(1);
        assert_gsks_pool_invariant(n, d, split, nrhs, seed);
    }

    #[test]
    fn simd_gsks_matches_scalar_random(n in 4usize..40, d in 1usize..8, nrhs in 1usize..10, seed in 0u64..500) {
        let _guard = POOL_TOGGLE.lock().unwrap();
        let split = (n / 2).max(1);
        assert_gsks_simd_vs_scalar(n, d, split, nrhs, seed);
    }

    #[test]
    fn summation_linear_in_weights(pts in points_strategy(16, 4), alpha in -3.0f64..3.0) {
        let n = pts.len();
        let split = n / 2;
        prop_assume!(split >= 1 && n - split >= 1);
        let rows: Vec<usize> = (0..split).collect();
        let cols: Vec<usize> = (split..n).collect();
        let k = Laplacian::new(1.0);
        let u: Vec<f64> = (0..cols.len()).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let ua: Vec<f64> = u.iter().map(|v| alpha * v).collect();
        let mut w = vec![0.0; rows.len()];
        let mut wa = vec![0.0; rows.len()];
        sum_fused(&k, &pts, &rows, &cols, &u, &mut w);
        sum_fused(&k, &pts, &rows, &cols, &ua, &mut wa);
        for (a, b) in wa.iter().zip(&w) {
            prop_assert!((a - alpha * b).abs() < 1e-10 * (1.0 + b.abs()));
        }
    }
}
