//! The "best-known" two-pass kernel summation (paper eq. 11):
//! `K u = GEMV( K(GEMM(Xr^T, Xc)), u )`.
//!
//! This is the reference implementation the paper compares GSKS against
//! (labelled "MKL+VML" in Table I): a rank-`d` GEMM produces the Gram
//! block, the kernel function is applied elementwise (the VML `VEXP`
//! analogue), and a GEMV/GEMM reduces against the weights. It materializes
//! the `m x n` block — `O(mn)` extra memory traffic, which is what the
//! fused engine removes.

use crate::function::Kernel;
use kfds_la::{gemm, workspace, Mat, MatMut, MatRef, Trans};
use kfds_tree::PointSet;

/// Gathers `idx`-selected points as the columns of a `d x idx.len()` matrix.
///
/// The returned matrix is backed by a pooled buffer; callers on hot paths
/// should hand it back with [`workspace::recycle_mat`] when done.
pub fn gather_coords(pts: &PointSet, idx: &[usize]) -> Mat {
    let d = pts.dim();
    // Pooled: every column is fully overwritten below.
    let mut out = workspace::take_mat_detached(d, idx.len());
    for (j, &i) in idx.iter().enumerate() {
        out.col_mut(j).copy_from_slice(pts.point(i));
    }
    out
}

/// Materializes `K[rows, cols]` via the GEMM + elementwise-kernel pipeline.
pub fn kernel_block_gemm<K: Kernel>(k: &K, pts: &PointSet, rows: &[usize], cols: &[usize]) -> Mat {
    let xr = gather_coords(pts, rows);
    let xc = gather_coords(pts, cols);
    let m = rows.len();
    let n = cols.len();
    // Gram block G = Xr^T Xc (rank-d update). Pooled: beta = 0 overwrites.
    let mut g = workspace::take_mat_detached(m, n);
    gemm(1.0, xr.rb(), Trans::Yes, xc.rb(), Trans::No, 0.0, g.rb_mut());
    let mut row_norms = workspace::take(m);
    let mut col_norms = workspace::take(n);
    for i in 0..m {
        row_norms[i] = sq_norm(xr.col(i));
    }
    for j in 0..n {
        col_norms[j] = sq_norm(xc.col(j));
    }
    // Elementwise kernel transform (the VEXP pass) — batched per column
    // through eval_parts_many, which vectorizes the exponential for the
    // Gaussian/Laplacian kernels (the actual VML-VEXP analogue now).
    for j in 0..n {
        k.eval_parts_many(g.col_mut(j), &row_norms[..m], &col_norms[j..j + 1]);
    }
    workspace::recycle_mat(xr);
    workspace::recycle_mat(xc);
    g
}

/// Two-pass kernel summation: `w = K[rows, cols] * u` (overwrites `w`).
///
/// # Panics
/// Panics on length mismatches.
pub fn sum_reference<K: Kernel>(
    k: &K,
    pts: &PointSet,
    rows: &[usize],
    cols: &[usize],
    u: &[f64],
    w: &mut [f64],
) {
    assert_eq!(u.len(), cols.len(), "sum_reference: weight length mismatch");
    assert_eq!(w.len(), rows.len(), "sum_reference: output length mismatch");
    let kb = kernel_block_gemm(k, pts, rows, cols);
    kfds_la::blas2::gemv(1.0, kb.rb(), u, 0.0, w);
    workspace::recycle_mat(kb);
}

/// Two-pass multi-RHS summation: `W = K[rows, cols] * U` (overwrites `W`).
///
/// # Panics
/// Panics on dimension mismatches.
pub fn sum_reference_multi<K: Kernel>(
    k: &K,
    pts: &PointSet,
    rows: &[usize],
    cols: &[usize],
    u: MatRef<'_>,
    w: MatMut<'_>,
) {
    assert_eq!(u.nrows(), cols.len(), "sum_reference_multi: U rows mismatch");
    assert_eq!(w.nrows(), rows.len(), "sum_reference_multi: W rows mismatch");
    assert_eq!(u.ncols(), w.ncols(), "sum_reference_multi: RHS count mismatch");
    let kb = kernel_block_gemm(k, pts, rows, cols);
    gemm(1.0, kb.rb(), Trans::No, u, Trans::No, 0.0, w);
    workspace::recycle_mat(kb);
}

#[inline]
fn sq_norm(x: &[f64]) -> f64 {
    kfds_la::blas1::dot(x, x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_block;
    use crate::function::Gaussian;

    fn pts(n: usize, d: usize) -> PointSet {
        let data: Vec<f64> =
            (0..n * d).map(|i| ((i * 2654435761) % 1000) as f64 / 500.0 - 1.0).collect();
        PointSet::from_col_major(d, data)
    }

    #[test]
    fn gemm_block_matches_direct_eval() {
        let p = pts(30, 5);
        let k = Gaussian::new(0.9);
        let rows: Vec<usize> = (0..7).map(|i| i * 4).collect();
        let cols: Vec<usize> = (3..19).collect();
        let a = kernel_block_gemm(&k, &p, &rows, &cols);
        let b = eval_block(&k, &p, &rows, &cols);
        for j in 0..cols.len() {
            for i in 0..rows.len() {
                assert!((a[(i, j)] - b[(i, j)]).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn summation_matches_explicit() {
        let p = pts(25, 3);
        let k = Gaussian::new(0.6);
        let rows: Vec<usize> = (0..10).collect();
        let cols: Vec<usize> = (10..25).collect();
        let u: Vec<f64> = (0..15).map(|i| (i as f64 * 0.3).cos()).collect();
        let mut w = vec![f64::NAN; 10];
        sum_reference(&k, &p, &rows, &cols, &u, &mut w);
        let kb = eval_block(&k, &p, &rows, &cols);
        let mut want = vec![0.0; 10];
        kfds_la::blas2::gemv(1.0, kb.rb(), &u, 0.0, &mut want);
        for (a, b) in w.iter().zip(&want) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn multi_rhs_matches_column_by_column() {
        let p = pts(20, 4);
        let k = Gaussian::new(1.2);
        let rows: Vec<usize> = (0..8).collect();
        let cols: Vec<usize> = (8..20).collect();
        let u = Mat::from_fn(12, 3, |i, j| ((i + 3 * j) as f64 * 0.17).sin());
        let mut w = Mat::zeros(8, 3);
        sum_reference_multi(&k, &p, &rows, &cols, u.rb(), w.rb_mut());
        for t in 0..3 {
            let mut wt = vec![0.0; 8];
            sum_reference(&k, &p, &rows, &cols, u.col(t), &mut wt);
            for i in 0..8 {
                assert!((w[(i, t)] - wt[i]).abs() < 1e-12);
            }
        }
    }
}
