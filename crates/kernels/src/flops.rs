//! Flop and memory-operation accounting for the summation engines.
//!
//! The paper reports GFLOP/s for `m x n x d` kernel summations (Table I).
//! We count the same way: a rank-`d` Gram update is `2mnd` flops; the
//! elementwise kernel transform and the reduction add `O(mn)`.

/// Flops of one `m x n x d` kernel summation (Gram + kernel + reduction).
pub fn summation_flops(m: usize, n: usize, d: usize, kernel_flops: f64) -> f64 {
    let mn = (m as f64) * (n as f64);
    2.0 * mn * d as f64 + mn * kernel_flops + 2.0 * mn
}

/// Flops of a dense `m x n x k` GEMM.
pub fn gemm_flops(m: usize, n: usize, k: usize) -> f64 {
    2.0 * m as f64 * n as f64 * k as f64
}

/// Flops of an `n x n` LU factorization (`2/3 n^3`).
pub fn lu_flops(n: usize) -> f64 {
    2.0 / 3.0 * (n as f64).powi(3)
}

/// Flops of one LU solve with `nrhs` right-hand sides (`2 n^2` each).
pub fn lu_solve_flops(n: usize, nrhs: usize) -> f64 {
    2.0 * (n as f64).powi(2) * nrhs as f64
}

/// Memory operations (reads + writes, in f64 words) of the two-pass
/// reference summation: it streams the `m x n` block twice plus operands.
pub fn reference_mops(m: usize, n: usize, d: usize) -> f64 {
    let (m, n, d) = (m as f64, n as f64, d as f64);
    m * d + n * d + 3.0 * m * n + n + m
}

/// Memory operations of the fused summation: operands only.
pub fn fused_mops(m: usize, n: usize, d: usize) -> f64 {
    let (m, n, d) = (m as f64, n as f64, d as f64);
    m * d + n * d + n + m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flop_counts_scale() {
        assert_eq!(gemm_flops(10, 10, 10), 2000.0);
        assert!(summation_flops(100, 100, 8, 5.0) > gemm_flops(100, 100, 8));
        assert_eq!(lu_flops(3), 18.0);
        assert_eq!(lu_solve_flops(4, 2), 64.0);
    }

    #[test]
    fn fused_saves_mops() {
        // The whole point of GSKS: O(mn) fewer memory operations.
        let r = reference_mops(1000, 1000, 8);
        let f = fused_mops(1000, 1000, 8);
        assert!(r / f > 100.0);
    }
}
