//! Blocked evaluation of kernel sub-matrices `K[rows, cols]`.
//!
//! These routines materialize kernel blocks (the "stored" mode of §II-D);
//! the matrix-free engines live in [`crate::reference`] (two-pass) and
//! [`crate::gsks`] (fused).
//!
//! By default the inner-product pass is one packed rank-`d` GEMM over
//! gathered coordinate panels (`G = Xr^T Xc`, through the SIMD microkernel
//! path) followed by the batched [`Kernel::eval_parts_many`] epilogue —
//! the same pipeline as [`crate::reference::kernel_block_gemm`].
//! `KFDS_EVAL_GEMM=off` (or `0`) falls back to the original per-entry
//! scalar `dot` loop, which reproduces the historical numerics bitwise
//! (same kill-switch convention as `KFDS_SIMD`/`KFDS_WS_POOL`).

use crate::function::Kernel;
use kfds_la::blas1::dot;
use kfds_la::{gemm, workspace, Mat, MatRef, Trans};
use kfds_tree::PointSet;
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Once;

static GEMM_EVAL: AtomicBool = AtomicBool::new(true);
static ENV_INIT: Once = Once::new();

/// Whether block assembly routes through the packed GEMM pipeline
/// (env `KFDS_EVAL_GEMM` + runtime override).
#[inline]
pub fn gemm_eval_active() -> bool {
    ENV_INIT.call_once(|| {
        if kfds_switches::KFDS_EVAL_GEMM.is_off() {
            GEMM_EVAL.store(false, Ordering::Relaxed);
        }
    });
    GEMM_EVAL.load(Ordering::Relaxed)
}

/// Enables or disables the GEMM assembly path at runtime (overrides
/// `KFDS_EVAL_GEMM`), so the perf harness can A/B both paths in one
/// process.
pub fn set_gemm_eval_enabled(on: bool) {
    let _ = gemm_eval_active(); // apply the env default first
    GEMM_EVAL.store(on, Ordering::Relaxed);
}

/// Evaluates the kernel block `K[rows, cols]` between index lists into the
/// same point set.
///
/// The result is backed by pooled storage; hot-path callers that drop the
/// block should hand it back with [`workspace::recycle_mat`].
pub fn eval_block(kernel: &dyn Kernel, pts: &PointSet, rows: &[usize], cols: &[usize]) -> Mat {
    if !gemm_eval_active() {
        return eval_block_scalar(kernel, pts, rows, cols);
    }
    if rows.is_empty() || cols.is_empty() {
        return Mat::zeros(rows.len(), cols.len());
    }
    let xc = crate::reference::gather_coords(pts, cols);
    let out = eval_block_gemm(kernel, pts, rows, xc.rb());
    workspace::recycle_mat(xc);
    out
}

/// Evaluates `K[rows, range]` where the columns are a contiguous range of
/// (permuted) positions — the common case for tree-node blocks. The
/// column panel is a zero-copy view of the point set (points are stored
/// column-major), so no index list or coordinate gather is materialized.
pub fn eval_block_range(
    kernel: &dyn Kernel,
    pts: &PointSet,
    rows: &[usize],
    range: std::ops::Range<usize>,
) -> Mat {
    let n = range.len();
    if !gemm_eval_active() {
        // Scalar fallback: stream the range directly (bitwise identical to
        // the historical collect-then-eval_block path).
        let m = rows.len();
        let mut out = Mat::zeros(m, n);
        if m == 0 || n == 0 {
            return out;
        }
        let row_norms: Vec<f64> = rows.iter().map(|&i| sq_norm(pts.point(i))).collect();
        let start = range.start;
        let data = out.as_mut_slice();
        data.par_chunks_mut(m).enumerate().for_each(|(j, col)| {
            let y = pts.point(start + j);
            let ny = sq_norm(y);
            for (i, out_ij) in col.iter_mut().enumerate() {
                *out_ij = dot(pts.point(rows[i]), y);
            }
            kernel.eval_parts_many(col, &row_norms, &[ny]);
        });
        return out;
    }
    if rows.is_empty() || n == 0 {
        return Mat::zeros(rows.len(), n);
    }
    let d = pts.dim();
    let xc = MatRef::from_parts(&pts.as_slice()[range.start * d..range.end * d], d, n, d);
    eval_block_gemm(kernel, pts, rows, xc)
}

/// GEMM assembly pipeline shared by [`eval_block`]/[`eval_block_range`]:
/// `G = Xr^T Xc` through the packed SIMD GEMM, then the batched kernel
/// transform per column (one `vexp` per column for Gaussian/Laplacian).
fn eval_block_gemm(kernel: &dyn Kernel, pts: &PointSet, rows: &[usize], xc: MatRef<'_>) -> Mat {
    let m = rows.len();
    let n = xc.ncols();
    let xr = crate::reference::gather_coords(pts, rows);
    let mut out = workspace::take_mat_detached(m, n);
    gemm(1.0, xr.rb(), Trans::Yes, xc, Trans::No, 0.0, out.rb_mut());
    let mut row_norms = workspace::take(m);
    let mut col_norms = workspace::take(n);
    for i in 0..m {
        row_norms[i] = sq_norm(xr.col(i));
    }
    for j in 0..n {
        col_norms[j] = sq_norm(xc.col(j));
    }
    let rn: &[f64] = &row_norms;
    let cn: &[f64] = &col_norms;
    out.as_mut_slice().par_chunks_mut(m).enumerate().for_each(|(j, col)| {
        kernel.eval_parts_many(col, rn, &cn[j..j + 1]);
    });
    workspace::recycle_mat(xr);
    out
}

/// One requested kernel block in a batched assembly launch
/// ([`eval_blocks`]).
#[derive(Clone, Debug)]
pub enum BlockSpec<'a> {
    /// Full symmetric diagonal block `K[range, range]` (leaf blocks) —
    /// evaluated exactly like [`eval_symmetric`].
    Symmetric {
        /// Contiguous (permuted) point range.
        range: std::ops::Range<usize>,
    },
    /// `K[rows, range]` against a contiguous column range — evaluated
    /// exactly like [`eval_block_range`].
    RowsByRange {
        /// Row index list.
        rows: &'a [usize],
        /// Contiguous (permuted) column range.
        range: std::ops::Range<usize>,
    },
    /// `K[rows, cols]` between explicit index lists — evaluated exactly
    /// like [`eval_block`].
    RowsByCols {
        /// Row index list.
        rows: &'a [usize],
        /// Column index list.
        cols: &'a [usize],
    },
}

impl BlockSpec<'_> {
    /// Shape-bucketing key: block kind plus output dimensions. Blocks
    /// sharing a key run the identical gather/GEMM/epilogue schedule.
    fn shape_key(&self) -> (u8, usize, usize) {
        match self {
            BlockSpec::Symmetric { range } => (0, range.len(), range.len()),
            BlockSpec::RowsByRange { rows, range } => (1, rows.len(), range.len()),
            BlockSpec::RowsByCols { rows, cols } => (2, rows.len(), cols.len()),
        }
    }
}

/// Batched block assembly: evaluates every requested block, bucketed into
/// same-shape groups (first-occurrence order) with **one** parallel launch
/// per group. Returns the blocks in request order plus the group count.
///
/// Each block is built by the same gather + Gram GEMM + per-column
/// [`Kernel::eval_parts_many`] pipeline as the per-node entry points, so
/// every returned matrix is **bitwise identical** to calling
/// [`eval_block`]/[`eval_block_range`]/[`eval_symmetric`] on its spec: the
/// GEMM never splits the accumulation dimension, and the epilogue is
/// applied per independent column either way. The only scheduling change
/// is that parallelism moves from *inside* each block (the per-column
/// `par_chunks_mut` epilogue dispatch) to *across* the blocks of a group —
/// one rayon launch per shape group instead of one per block column.
///
/// Storage matches the per-node entry points too: `Symmetric` blocks are
/// plainly allocated (consumed into long-lived factors), the rectangular
/// kinds are pooled (`workspace::recycle_mat` to return them).
pub fn eval_blocks(
    kernel: &dyn Kernel,
    pts: &PointSet,
    specs: &[BlockSpec<'_>],
) -> (Vec<Mat>, usize) {
    let groups = kfds_la::batch::group_by_shape(specs, BlockSpec::shape_key);
    let n_groups = groups.len();
    let mut out: Vec<Option<Mat>> = Vec::with_capacity(specs.len());
    out.resize_with(specs.len(), || None);
    for (_, idxs) in &groups {
        if idxs.len() == 1 {
            // Singleton group: run inline, letting the block's own column
            // epilogue parallelize (identical to the per-node call).
            let i = idxs[0];
            out[i] = Some(eval_spec_inline(kernel, pts, &specs[i]));
        } else {
            let built: Vec<(usize, Mat)> =
                idxs.par_iter().map(|&i| (i, eval_spec_grouped(kernel, pts, &specs[i]))).collect();
            for (i, m) in built {
                out[i] = Some(m);
            }
        }
    }
    (out.into_iter().map(|m| m.expect("every spec evaluated")).collect(), n_groups)
}

/// Per-node evaluation of one spec (singleton groups): delegates to the
/// existing entry points verbatim.
fn eval_spec_inline(kernel: &dyn Kernel, pts: &PointSet, spec: &BlockSpec<'_>) -> Mat {
    match spec {
        BlockSpec::Symmetric { range } => eval_symmetric(kernel, pts, range.clone()),
        BlockSpec::RowsByRange { rows, range } => {
            eval_block_range(kernel, pts, rows, range.clone())
        }
        BlockSpec::RowsByCols { rows, cols } => eval_block(kernel, pts, rows, cols),
    }
}

/// Evaluation of one spec inside a multi-block group launch: the same
/// pipeline with a *serial* per-column epilogue (bitwise identical —
/// columns are independent), since the group launch already occupies the
/// thread pool.
fn eval_spec_grouped(kernel: &dyn Kernel, pts: &PointSet, spec: &BlockSpec<'_>) -> Mat {
    if !gemm_eval_active() {
        // Scalar reference path: reuse the per-node functions unchanged
        // (their inner parallelism nests harmlessly under rayon).
        return eval_spec_inline(kernel, pts, spec);
    }
    match spec {
        BlockSpec::Symmetric { range } => eval_symmetric(kernel, pts, range.clone()),
        BlockSpec::RowsByRange { rows, range } => {
            let n = range.len();
            if rows.is_empty() || n == 0 {
                return Mat::zeros(rows.len(), n);
            }
            let d = pts.dim();
            let xc = MatRef::from_parts(&pts.as_slice()[range.start * d..range.end * d], d, n, d);
            eval_block_gemm_serial(kernel, pts, rows, xc)
        }
        BlockSpec::RowsByCols { rows, cols } => {
            if rows.is_empty() || cols.is_empty() {
                return Mat::zeros(rows.len(), cols.len());
            }
            let xc = crate::reference::gather_coords(pts, cols);
            let out = eval_block_gemm_serial(kernel, pts, rows, xc.rb());
            workspace::recycle_mat(xc);
            out
        }
    }
}

/// [`eval_block_gemm`] with the per-column kernel epilogue applied
/// serially instead of through `par_chunks_mut` — bitwise identical
/// (each column's transform reads only that column), used inside group
/// launches where the blocks themselves are the parallel units.
fn eval_block_gemm_serial(
    kernel: &dyn Kernel,
    pts: &PointSet,
    rows: &[usize],
    xc: MatRef<'_>,
) -> Mat {
    let m = rows.len();
    let n = xc.ncols();
    let xr = crate::reference::gather_coords(pts, rows);
    let mut out = workspace::take_mat_detached(m, n);
    gemm(1.0, xr.rb(), Trans::Yes, xc, Trans::No, 0.0, out.rb_mut());
    let mut row_norms = workspace::take(m);
    let mut col_norms = workspace::take(n);
    for i in 0..m {
        row_norms[i] = sq_norm(xr.col(i));
    }
    for j in 0..n {
        col_norms[j] = sq_norm(xc.col(j));
    }
    let rn: &[f64] = &row_norms;
    let cn: &[f64] = &col_norms;
    for (j, col) in out.as_mut_slice().chunks_mut(m).enumerate() {
        kernel.eval_parts_many(col, rn, &cn[j..j + 1]);
    }
    workspace::recycle_mat(xr);
    out
}

/// Original per-entry assembly, kept verbatim for `KFDS_EVAL_GEMM=off`.
fn eval_block_scalar(kernel: &dyn Kernel, pts: &PointSet, rows: &[usize], cols: &[usize]) -> Mat {
    let m = rows.len();
    let n = cols.len();
    let mut out = Mat::zeros(m, n);
    if m == 0 || n == 0 {
        return out;
    }
    let row_norms: Vec<f64> = rows.iter().map(|&i| sq_norm(pts.point(i))).collect();
    let data = out.as_mut_slice();
    data.par_chunks_mut(m).enumerate().for_each(|(j, col)| {
        let y = pts.point(cols[j]);
        let ny = sq_norm(y);
        for (i, out_ij) in col.iter_mut().enumerate() {
            *out_ij = dot(pts.point(rows[i]), y);
        }
        // Column = an m x 1 row-major tile; batches the kernel transform
        // (one vexp per column for Gaussian/Laplacian).
        kernel.eval_parts_many(col, &row_norms, &[ny]);
    });
    out
}

/// Evaluates the full symmetric kernel matrix `K[range, range]` (used for
/// leaf diagonal blocks and dense cross-checks).
///
/// The GEMM path forms the Gram block from a zero-copy coordinate panel,
/// overwrites the diagonal with the exact `x·x` dots before the kernel
/// transform (so `K(x, x)` is evaluated from bitwise-equal arguments and
/// the unit diagonal of distance kernels is exact), and mirrors the upper
/// triangle so the result is exactly symmetric.
pub fn eval_symmetric(kernel: &dyn Kernel, pts: &PointSet, range: std::ops::Range<usize>) -> Mat {
    let n = range.len();
    if !gemm_eval_active() {
        let idx: Vec<usize> = range.collect();
        let norms: Vec<f64> = idx.iter().map(|&i| sq_norm(pts.point(i))).collect();
        let mut out = Mat::zeros(n, n);
        for j in 0..n {
            let y = pts.point(idx[j]);
            for i in 0..=j {
                let v = kernel.eval_parts(dot(pts.point(idx[i]), y), norms[i], norms[j]);
                out[(i, j)] = v;
                out[(j, i)] = v;
            }
        }
        return out;
    }
    // Output is plainly allocated (not pooled): leaf diagonal blocks are
    // consumed into long-lived factors, so pooling them would only drain
    // the pool.
    let mut out = Mat::zeros(n, n);
    if n == 0 {
        return out;
    }
    let d = pts.dim();
    let xc = MatRef::from_parts(&pts.as_slice()[range.start * d..range.end * d], d, n, d);
    gemm(1.0, xc, Trans::Yes, xc, Trans::No, 0.0, out.rb_mut());
    let mut norms = workspace::take(n);
    for j in 0..n {
        norms[j] = sq_norm(xc.col(j));
    }
    for j in 0..n {
        out[(j, j)] = norms[j];
    }
    for j in 0..n {
        kernel.eval_parts_many(&mut out.col_mut(j)[..], &norms, &norms[j..j + 1]);
    }
    for j in 0..n {
        for i in j + 1..n {
            out[(i, j)] = out[(j, i)];
        }
    }
    out
}

#[inline]
fn sq_norm(x: &[f64]) -> f64 {
    dot(x, x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::{Gaussian, Laplacian, Matern32, Polynomial};

    fn pts() -> PointSet {
        let data: Vec<f64> = (0..20).map(|i| (i as f64 * 0.37).sin()).collect();
        PointSet::from_col_major(2, data)
    }

    #[test]
    fn block_matches_pointwise() {
        let p = pts();
        let k = Gaussian::new(0.8);
        let rows = [0, 3, 7];
        let cols = [1, 2, 9, 4];
        let b = eval_block(&k, &p, &rows, &cols);
        for (i, &ri) in rows.iter().enumerate() {
            for (j, &cj) in cols.iter().enumerate() {
                let want = k.eval(p.point(ri), p.point(cj));
                assert!((b[(i, j)] - want).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn range_block_matches_list_block() {
        let p = pts();
        let k = Gaussian::new(0.5);
        let rows = [2, 5];
        let a = eval_block_range(&k, &p, &rows, 3..8);
        let b = eval_block(&k, &p, &rows, &[3, 4, 5, 6, 7]);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn symmetric_block_is_symmetric_with_unit_diagonal() {
        let p = pts();
        let k = Gaussian::new(1.1);
        let s = eval_symmetric(&k, &p, 2..9);
        for i in 0..7 {
            assert_eq!(s[(i, i)], 1.0);
            for j in 0..7 {
                assert_eq!(s[(i, j)], s[(j, i)]);
            }
        }
    }

    #[test]
    fn gemm_path_matches_scalar_path() {
        // Larger panel in a higher dimension so the GEMM actually tiles.
        let d = 6;
        let n = 40;
        let data: Vec<f64> = (0..d * n).map(|i| (i as f64 * 0.13).cos()).collect();
        let p = PointSet::from_col_major(d, data);
        let rows: Vec<usize> = (0..n).step_by(3).collect();
        let cols: Vec<usize> = (1..n).step_by(2).collect();
        // Kernels smooth in the *squared* distance see only the raw
        // cancellation residual of the expanded form (~eps·‖x‖²); kernels
        // that take a square root (Laplacian, Matérn) amplify that
        // residual to ~√eps near coincident points.
        let kernels: Vec<(Box<dyn Kernel>, f64)> = vec![
            (Box::new(Gaussian::new(0.9)), 1e-13),
            (Box::new(Laplacian::new(0.7)), 5e-8),
            (Box::new(Matern32::new(1.2)), 5e-8),
            (Box::new(Polynomial::new(0.5, 1.0, 2)), 1e-13),
        ];
        for (k, tol) in &kernels {
            let a = eval_block(k.as_ref(), &p, &rows, &cols);
            let b = eval_block_scalar(k.as_ref(), &p, &rows, &cols);
            for j in 0..cols.len() {
                for i in 0..rows.len() {
                    assert!(
                        (a[(i, j)] - b[(i, j)]).abs() <= *tol,
                        "({i},{j}): {} vs {}",
                        a[(i, j)],
                        b[(i, j)]
                    );
                }
            }
            let sg = eval_symmetric(k.as_ref(), &p, 4..n - 3);
            for j in 0..sg.ncols() {
                for i in 0..sg.nrows() {
                    assert_eq!(sg[(i, j)], sg[(j, i)], "asymmetric at ({i},{j})");
                }
            }
        }
    }

    /// Serializes tests that read or flip the process-wide GEMM-eval
    /// toggle so a concurrent flip cannot change the mode mid-comparison.
    static MODE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn batched_blocks_match_per_node_bitwise() {
        let _guard = MODE_LOCK.lock().unwrap();
        let d = 4;
        let n = 36;
        let data: Vec<f64> = (0..d * n).map(|i| (i as f64 * 0.29).sin()).collect();
        let p = PointSet::from_col_major(d, data);
        let k = Gaussian::new(0.8);
        let rows_a: Vec<usize> = (0..12).collect();
        let rows_b: Vec<usize> = (12..24).collect();
        let cols: Vec<usize> = (5..17).collect();
        // Two symmetric 8x8 blocks, two 12x12 range blocks, one 12x12
        // list block sharing the range blocks' dimensions but not their
        // kind, and one odd singleton: 4 shape groups.
        let specs = vec![
            BlockSpec::Symmetric { range: 0..8 },
            BlockSpec::Symmetric { range: 8..16 },
            BlockSpec::RowsByRange { rows: &rows_a, range: 20..32 },
            BlockSpec::RowsByRange { rows: &rows_b, range: 4..16 },
            BlockSpec::RowsByCols { rows: &rows_a, cols: &cols },
            BlockSpec::RowsByRange { rows: &rows_a[..5], range: 0..7 },
        ];
        let (got, groups) = eval_blocks(&k, &p, &specs);
        assert_eq!(groups, 4);
        assert_eq!(got.len(), specs.len());
        let want = [
            eval_symmetric(&k, &p, 0..8),
            eval_symmetric(&k, &p, 8..16),
            eval_block_range(&k, &p, &rows_a, 20..32),
            eval_block_range(&k, &p, &rows_b, 4..16),
            eval_block(&k, &p, &rows_a, &cols),
            eval_block_range(&k, &p, &rows_a[..5], 0..7),
        ];
        for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
            assert_eq!((g.nrows(), g.ncols()), (w.nrows(), w.ncols()), "block {i}");
            assert_eq!(g.as_slice(), w.as_slice(), "block {i} not bitwise equal");
        }
    }

    #[test]
    fn batched_blocks_match_scalar_mode() {
        let _guard = MODE_LOCK.lock().unwrap();
        let p = pts();
        let k = Laplacian::new(0.9);
        let rows = [0usize, 2, 5, 7];
        let prev = gemm_eval_active();
        set_gemm_eval_enabled(false);
        let specs = vec![
            BlockSpec::RowsByRange { rows: &rows, range: 1..6 },
            BlockSpec::RowsByRange { rows: &rows, range: 3..8 },
            BlockSpec::Symmetric { range: 2..9 },
        ];
        let (got, _) = eval_blocks(&k, &p, &specs);
        let want = [
            eval_block_range(&k, &p, &rows, 1..6),
            eval_block_range(&k, &p, &rows, 3..8),
            eval_symmetric(&k, &p, 2..9),
        ];
        set_gemm_eval_enabled(prev);
        for (g, w) in got.iter().zip(want.iter()) {
            assert_eq!(g.as_slice(), w.as_slice());
        }
    }

    #[test]
    fn empty_blocks() {
        let p = pts();
        let k = Gaussian::new(1.0);
        assert_eq!(eval_block(&k, &p, &[], &[1, 2]).nrows(), 0);
        assert_eq!(eval_block(&k, &p, &[1], &[]).ncols(), 0);
        assert_eq!(eval_block_range(&k, &p, &[1], 3..3).ncols(), 0);
        assert_eq!(eval_symmetric(&k, &p, 5..5).nrows(), 0);
    }
}
