//! Blocked evaluation of kernel sub-matrices `K[rows, cols]`.
//!
//! These routines materialize kernel blocks (the "stored" mode of §II-D);
//! the matrix-free engines live in [`crate::reference`] (two-pass) and
//! [`crate::gsks`] (fused).

use crate::function::Kernel;
use kfds_la::blas1::dot;
use kfds_la::Mat;
use kfds_tree::PointSet;
use rayon::prelude::*;

/// Evaluates the kernel block `K[rows, cols]` between index lists into the
/// same point set, in parallel over columns.
pub fn eval_block(kernel: &dyn Kernel, pts: &PointSet, rows: &[usize], cols: &[usize]) -> Mat {
    let m = rows.len();
    let n = cols.len();
    let mut out = Mat::zeros(m, n);
    if m == 0 || n == 0 {
        return out;
    }
    let row_norms: Vec<f64> = rows.iter().map(|&i| sq_norm(pts.point(i))).collect();
    let data = out.as_mut_slice();
    data.par_chunks_mut(m).enumerate().for_each(|(j, col)| {
        let y = pts.point(cols[j]);
        let ny = sq_norm(y);
        for (i, out_ij) in col.iter_mut().enumerate() {
            *out_ij = dot(pts.point(rows[i]), y);
        }
        // Column = an m x 1 row-major tile; batches the kernel transform
        // (one vexp per column for Gaussian/Laplacian).
        kernel.eval_parts_many(col, &row_norms, &[ny]);
    });
    out
}

/// Evaluates `K[rows, range]` where the columns are a contiguous range of
/// (permuted) positions — the common case for tree-node blocks.
pub fn eval_block_range(
    kernel: &dyn Kernel,
    pts: &PointSet,
    rows: &[usize],
    range: std::ops::Range<usize>,
) -> Mat {
    let cols: Vec<usize> = range.collect();
    eval_block(kernel, pts, rows, &cols)
}

/// Evaluates the full symmetric kernel matrix `K[range, range]` (used for
/// leaf diagonal blocks and dense cross-checks).
pub fn eval_symmetric(kernel: &dyn Kernel, pts: &PointSet, range: std::ops::Range<usize>) -> Mat {
    let idx: Vec<usize> = range.collect();
    let n = idx.len();
    let norms: Vec<f64> = idx.iter().map(|&i| sq_norm(pts.point(i))).collect();
    let mut out = Mat::zeros(n, n);
    for j in 0..n {
        let y = pts.point(idx[j]);
        for i in 0..=j {
            let v = kernel.eval_parts(dot(pts.point(idx[i]), y), norms[i], norms[j]);
            out[(i, j)] = v;
            out[(j, i)] = v;
        }
    }
    out
}

#[inline]
fn sq_norm(x: &[f64]) -> f64 {
    dot(x, x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::Gaussian;

    fn pts() -> PointSet {
        let data: Vec<f64> = (0..20).map(|i| (i as f64 * 0.37).sin()).collect();
        PointSet::from_col_major(2, data)
    }

    #[test]
    fn block_matches_pointwise() {
        let p = pts();
        let k = Gaussian::new(0.8);
        let rows = [0, 3, 7];
        let cols = [1, 2, 9, 4];
        let b = eval_block(&k, &p, &rows, &cols);
        for (i, &ri) in rows.iter().enumerate() {
            for (j, &cj) in cols.iter().enumerate() {
                let want = k.eval(p.point(ri), p.point(cj));
                assert!((b[(i, j)] - want).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn range_block_matches_list_block() {
        let p = pts();
        let k = Gaussian::new(0.5);
        let rows = [2, 5];
        let a = eval_block_range(&k, &p, &rows, 3..8);
        let b = eval_block(&k, &p, &rows, &[3, 4, 5, 6, 7]);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn symmetric_block_is_symmetric_with_unit_diagonal() {
        let p = pts();
        let k = Gaussian::new(1.1);
        let s = eval_symmetric(&k, &p, 2..9);
        for i in 0..7 {
            assert_eq!(s[(i, i)], 1.0);
            for j in 0..7 {
                assert_eq!(s[(i, j)], s[(j, i)]);
            }
        }
    }
}
