//! Kernel functions `K(x, y)`.
//!
//! Every kernel is evaluated from the triple `(x·y, ‖x‖², ‖y‖²)` so that
//! blocked evaluation and the fused summation can obtain all pairwise
//! quantities from a single rank-`d` update (`‖x−y‖² = ‖x‖²+‖y‖²−2x·y`).
//! ASKIT has been applied to polynomial, Matérn, Laplacian and Gaussian
//! kernels (paper §I); all four are provided.

/// A positive-definite kernel function evaluable in `O(d)` per entry.
pub trait Kernel: Sync + Send {
    /// Evaluates the kernel from the inner product and squared norms of the
    /// two arguments.
    fn eval_parts(&self, dot: f64, sq_norm_x: f64, sq_norm_y: f64) -> f64;

    /// Evaluates the kernel on explicit coordinates.
    fn eval(&self, x: &[f64], y: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), y.len());
        let mut dot = 0.0;
        let mut nx = 0.0;
        let mut ny = 0.0;
        for (&a, &b) in x.iter().zip(y) {
            dot += a * b;
            nx += a * a;
            ny += b * b;
        }
        self.eval_parts(dot, nx, ny)
    }

    /// Evaluates the kernel elementwise over a row-major
    /// `nx.len() x ny.len()` tile of inner products, **in place**:
    /// on entry `tile[r * ny.len() + c]` holds `x_r . y_c`; on exit it
    /// holds `K(x_r, y_c)`.
    ///
    /// This is the batched form the fused GSKS epilogue and the blocked
    /// evaluators call. The default walks the tile with
    /// [`Kernel::eval_parts`]; kernels whose transform ends in an
    /// exponential (Gaussian, Laplacian) override it to batch the `exp`
    /// through `kfds_la::simd::vexp`. Overrides must agree with
    /// `eval_parts` within the SIMD tolerance documented in
    /// `kfds_la::simd`, and must match it **bitwise** when
    /// `kfds_la::simd::active()` is false (`KFDS_SIMD=off`).
    fn eval_parts_many(&self, tile: &mut [f64], nx: &[f64], ny: &[f64]) {
        debug_assert_eq!(tile.len(), nx.len() * ny.len());
        let n = ny.len();
        for (r, &nxr) in nx.iter().enumerate() {
            for (t, &nyc) in tile[r * n..(r + 1) * n].iter_mut().zip(ny) {
                *t = self.eval_parts(*t, nxr, nyc);
            }
        }
    }

    /// Approximate flop count of one `eval_parts` call (used for the
    /// GFLOP/s accounting of Table I; the `2d` flops of the inner product
    /// are counted separately).
    fn flops_per_eval(&self) -> f64 {
        5.0
    }

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// The Gaussian (RBF) kernel `exp(-‖x−y‖² / (2h²))` — eq. (1) of the paper.
#[derive(Clone, Copy, Debug)]
pub struct Gaussian {
    inv_two_h2: f64,
    /// Bandwidth `h`.
    pub h: f64,
}

impl Gaussian {
    /// Creates a Gaussian kernel with bandwidth `h > 0`.
    pub fn new(h: f64) -> Self {
        assert!(h > 0.0, "bandwidth must be positive");
        Gaussian { inv_two_h2: 1.0 / (2.0 * h * h), h }
    }
}

impl Kernel for Gaussian {
    #[inline]
    fn eval_parts(&self, dot: f64, nx: f64, ny: f64) -> f64 {
        let d2 = (nx + ny - 2.0 * dot).max(0.0);
        (-d2 * self.inv_two_h2).exp()
    }

    /// Batched override: the scaled negative squared distances are written
    /// elementwise (same expression as `eval_parts`, so identical per-entry
    /// values), then the whole tile goes through one `vexp` call. With SIMD
    /// off `vexp` is `f64::exp` per element in order — bitwise the scalar
    /// path; with SIMD on the 4-wide `exp` is within a few ulp of libm.
    fn eval_parts_many(&self, tile: &mut [f64], nx: &[f64], ny: &[f64]) {
        debug_assert_eq!(tile.len(), nx.len() * ny.len());
        let n = ny.len();
        for (r, &nxr) in nx.iter().enumerate() {
            for (t, &nyc) in tile[r * n..(r + 1) * n].iter_mut().zip(ny) {
                let d2 = (nxr + nyc - 2.0 * *t).max(0.0);
                *t = -d2 * self.inv_two_h2;
            }
        }
        kfds_la::simd::vexp(tile);
    }

    fn name(&self) -> &'static str {
        "gaussian"
    }
}

/// The Laplacian kernel `exp(-‖x−y‖ / h)`.
#[derive(Clone, Copy, Debug)]
pub struct Laplacian {
    inv_h: f64,
    /// Bandwidth `h`.
    pub h: f64,
}

impl Laplacian {
    /// Creates a Laplacian kernel with bandwidth `h > 0`.
    pub fn new(h: f64) -> Self {
        assert!(h > 0.0, "bandwidth must be positive");
        Laplacian { inv_h: 1.0 / h, h }
    }
}

impl Kernel for Laplacian {
    #[inline]
    fn eval_parts(&self, dot: f64, nx: f64, ny: f64) -> f64 {
        let d2 = (nx + ny - 2.0 * dot).max(0.0);
        (-d2.sqrt() * self.inv_h).exp()
    }

    /// Batched override mirroring [`Gaussian::eval_parts_many`]: scalar
    /// distance transform (bitwise the `eval_parts` argument), one `vexp`
    /// over the tile.
    fn eval_parts_many(&self, tile: &mut [f64], nx: &[f64], ny: &[f64]) {
        debug_assert_eq!(tile.len(), nx.len() * ny.len());
        let n = ny.len();
        for (r, &nxr) in nx.iter().enumerate() {
            for (t, &nyc) in tile[r * n..(r + 1) * n].iter_mut().zip(ny) {
                let d2 = (nxr + nyc - 2.0 * *t).max(0.0);
                *t = -d2.sqrt() * self.inv_h;
            }
        }
        kfds_la::simd::vexp(tile);
    }

    fn name(&self) -> &'static str {
        "laplacian"
    }
}

/// The Matérn-3/2 kernel `(1 + √3 r/h) exp(-√3 r/h)`, `r = ‖x−y‖`.
#[derive(Clone, Copy, Debug)]
pub struct Matern32 {
    sqrt3_inv_h: f64,
    /// Bandwidth `h`.
    pub h: f64,
}

impl Matern32 {
    /// Creates a Matérn-3/2 kernel with bandwidth `h > 0`.
    pub fn new(h: f64) -> Self {
        assert!(h > 0.0, "bandwidth must be positive");
        Matern32 { sqrt3_inv_h: 3f64.sqrt() / h, h }
    }
}

impl Kernel for Matern32 {
    #[inline]
    fn eval_parts(&self, dot: f64, nx: f64, ny: f64) -> f64 {
        let d2 = (nx + ny - 2.0 * dot).max(0.0);
        let t = d2.sqrt() * self.sqrt3_inv_h;
        (1.0 + t) * (-t).exp()
    }

    fn name(&self) -> &'static str {
        "matern32"
    }
}

/// The polynomial kernel `(scale · x·y + shift)^degree`.
#[derive(Clone, Copy, Debug)]
pub struct Polynomial {
    /// Multiplicative scale on the inner product.
    pub scale: f64,
    /// Additive shift.
    pub shift: f64,
    /// Degree (positive integer).
    pub degree: u32,
}

impl Polynomial {
    /// Creates a polynomial kernel.
    pub fn new(scale: f64, shift: f64, degree: u32) -> Self {
        assert!(degree >= 1);
        Polynomial { scale, shift, degree }
    }
}

impl Kernel for Polynomial {
    #[inline]
    fn eval_parts(&self, dot: f64, _nx: f64, _ny: f64) -> f64 {
        (self.scale * dot + self.shift).powi(self.degree as i32)
    }

    fn name(&self) -> &'static str {
        "polynomial"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_limits() {
        let k = Gaussian::new(1.0);
        assert_eq!(k.eval(&[1.0, 2.0], &[1.0, 2.0]), 1.0);
        // d2 = 2, K = exp(-1).
        let v = k.eval(&[0.0, 0.0], &[1.0, 1.0]);
        assert!((v - (-1.0f64).exp()).abs() < 1e-15);
        // Small bandwidth: far points give ~0.
        let ks = Gaussian::new(0.01);
        assert!(ks.eval(&[0.0], &[1.0]) < 1e-300);
    }

    #[test]
    fn eval_parts_matches_eval() {
        let kernels: Vec<Box<dyn Kernel>> = vec![
            Box::new(Gaussian::new(0.7)),
            Box::new(Laplacian::new(1.3)),
            Box::new(Matern32::new(0.5)),
            Box::new(Polynomial::new(0.5, 1.0, 3)),
        ];
        let x = [0.3, -1.2, 0.8];
        let y = [1.0, 0.1, -0.4];
        let dot: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        let nx: f64 = x.iter().map(|v| v * v).sum();
        let ny: f64 = y.iter().map(|v| v * v).sum();
        for k in &kernels {
            assert!((k.eval(&x, &y) - k.eval_parts(dot, nx, ny)).abs() < 1e-14, "{}", k.name());
        }
    }

    #[test]
    fn kernels_symmetric() {
        let x = [0.5, 0.25];
        let y = [-1.0, 2.0];
        let g = Gaussian::new(0.9);
        assert_eq!(g.eval(&x, &y), g.eval(&y, &x));
        let m = Matern32::new(0.9);
        assert!((m.eval(&x, &y) - m.eval(&y, &x)).abs() < 1e-15);
    }

    #[test]
    fn matern_at_zero_distance() {
        let m = Matern32::new(2.0);
        assert_eq!(m.eval(&[1.0], &[1.0]), 1.0);
    }

    #[test]
    fn polynomial_uses_dot_only() {
        let p = Polynomial::new(1.0, 0.0, 2);
        assert_eq!(p.eval(&[2.0, 0.0], &[3.0, 5.0]), 36.0);
    }

    #[test]
    fn eval_parts_many_matches_eval_parts() {
        let kernels: Vec<Box<dyn Kernel>> = vec![
            Box::new(Gaussian::new(0.7)),
            Box::new(Laplacian::new(1.3)),
            Box::new(Matern32::new(0.5)),
            Box::new(Polynomial::new(0.5, 1.0, 3)),
        ];
        let nx: Vec<f64> = (0..5).map(|i| 0.3 + i as f64 * 0.7).collect();
        let ny: Vec<f64> = (0..3).map(|j| 0.1 + j as f64 * 1.1).collect();
        let dots: Vec<f64> = (0..15).map(|t| ((t * 7 % 11) as f64 * 0.17 - 0.5).min(1.0)).collect();
        for k in &kernels {
            let mut tile = dots.clone();
            k.eval_parts_many(&mut tile, &nx, &ny);
            for (r, &nxr) in nx.iter().enumerate() {
                for (c, &nyc) in ny.iter().enumerate() {
                    let want = k.eval_parts(dots[r * 3 + c], nxr, nyc);
                    let got = tile[r * 3 + c];
                    assert!(
                        (got - want).abs() <= 1e-13 * (1.0 + want.abs()),
                        "{} ({r},{c}): {got} vs {want}",
                        k.name()
                    );
                }
            }
        }
    }

    #[test]
    fn cancellation_clamped() {
        // nx + ny - 2 dot can go slightly negative in floating point for
        // identical points; the clamp keeps kernels at exactly 1.
        let g = Gaussian::new(1e-3);
        let v = g.eval_parts(1.0 + 1e-16, 1.0, 1.0);
        assert_eq!(v, 1.0);
    }
}
