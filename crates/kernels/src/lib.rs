//! # kfds-kernels — kernel functions and fast kernel summation
//!
//! The paper's algorithms reduce to multiplying kernel sub-matrices with
//! vectors ("kernel summation", §II-D). This crate provides:
//!
//! * [`function`] — Gaussian, Laplacian, Matérn-3/2 and polynomial kernels
//!   behind the [`Kernel`] trait, all evaluable from `(x·y, ‖x‖², ‖y‖²)`;
//! * [`eval`] — materialized kernel blocks (the "stored GEMV" mode);
//! * [`mod@reference`] — the two-pass `GEMM → kernel → GEMV` pipeline (the
//!   paper's "MKL+VML" baseline, Table I);
//! * [`gsks`] — the fused, matrix-free summation (GSKS, \[24\]): the kernel
//!   transform and the reduction happen inside the GEMM register tile, so
//!   the `m x n` block is never stored;
//! * [`flops`] — flop/memory-operation accounting used by the benchmark
//!   harnesses to report GFLOP/s the way the paper does.

#![forbid(unsafe_code)]

pub mod eval;
pub mod flops;
pub mod function;
pub mod gsks;
pub mod reference;

pub use eval::{
    eval_block, eval_block_range, eval_blocks, eval_symmetric, gemm_eval_active,
    set_gemm_eval_enabled, BlockSpec,
};
pub use function::{Gaussian, Kernel, Laplacian, Matern32, Polynomial};
pub use gsks::{sum_fused, sum_fused_multi};
pub use reference::{gather_coords, kernel_block_gemm, sum_reference, sum_reference_multi};
