//! GSKS — fused, matrix-free kernel summation (paper §II-D, \[24\]).
//!
//! The two-pass reference streams an `m x n` kernel block through memory
//! twice. GSKS fuses the three stages — rank-`d` Gram update, elementwise
//! kernel evaluation, and the GEMV reduction — inside one register tile:
//! an `MR x NR` block of `K` is produced in registers by the semi-ring
//! rank-`d` update, transformed by the kernel function, contracted against
//! the weights, and discarded. Only `O(md + nd)` memory moves remain and
//! the `m x n` block never exists (`O(1)` extra storage), which is the
//! paper's 3–30x win over the reference for small `d`.
//!
//! The paper implements the microkernel in AVX2/AVX512 assembly; here the
//! tile goes through `kfds_la::simd::gsks_tile_8x4` — an explicit AVX2+FMA
//! register kernel when the host supports it and `KFDS_SIMD` is not off,
//! with the pre-existing scalar tile as the reference path (bitwise the
//! old numerics when SIMD is disabled). In SIMD mode the source panel is
//! packed **dimension-major** per NR tile so the kernel loads each
//! dimension's four source values with one vector load, and the kernel
//! transform of the whole tile is batched through
//! [`Kernel::eval_parts_many`] (one `vexp` per tile for Gaussian /
//! Laplacian instead of `MR x NR` scalar `exp` calls).

use crate::function::Kernel;
use kfds_la::workspace;
use kfds_la::{MatMut, MatRef};
use kfds_tree::PointSet;
use rayon::prelude::*;

/// Register tile height (rows = targets), matching the SIMD kernel.
const MR: usize = kfds_la::simd::GSKS_MR;
/// Register tile width (columns = sources), matching the SIMD kernel.
const NR: usize = kfds_la::simd::GSKS_NR;

/// Packed, zero-padded coordinates + norms for one side of a summation.
/// Storage comes from the workspace pool and returns to it on drop.
struct Packed {
    /// `padded x d`. Point-major (point `i` = `coords[i*d .. (i+1)*d]`)
    /// for target panels and scalar-mode source panels; dimension-major
    /// per NR tile for SIMD-mode source panels (see
    /// [`pack_cols_transposed`]).
    coords: workspace::WsVec,
    /// Squared norms, zero-padded.
    norms: workspace::WsVec,
}

fn pack(pts: &PointSet, idx: &[usize], pad_to: usize) -> Packed {
    let d = pts.dim();
    let padded = idx.len().next_multiple_of(pad_to);
    // Pooled buffers arrive with stale contents; the loop overwrites the
    // live region and only the padding tail needs explicit zeroing (padded
    // tile entries must evaluate the kernel at the origin, not at garbage
    // coordinates, so their weighted contribution of zero stays finite).
    let mut coords = workspace::take(padded * d);
    let mut norms = workspace::take(padded);
    for (i, &p) in idx.iter().enumerate() {
        coords[i * d..(i + 1) * d].copy_from_slice(pts.point(p));
    }
    coords[idx.len() * d..].fill(0.0);
    // Norms in one pass over the packed panel (cache-hot, just copied)
    // instead of re-walking each source point inside the copy loop.
    for (i, nv) in norms.iter_mut().enumerate().take(idx.len()) {
        *nv = kfds_la::blas1::nrm2_sq(&coords[i * d..(i + 1) * d]);
    }
    norms[idx.len()..].fill(0.0);
    Packed { coords, norms }
}

/// SIMD-mode source packing: within each NR-point tile the coordinates are
/// stored dimension-major (`coords[tile*NR*d + kk*NR + c] = y_c[kk]`), so
/// the vector kernel loads the tile's four values of dimension `kk` with a
/// single unaligned load instead of a strided gather. Norms come from one
/// NR-wide vectorizable accumulation pass over the packed panel.
fn pack_cols_transposed(pts: &PointSet, idx: &[usize]) -> Packed {
    let d = pts.dim();
    let padded = idx.len().next_multiple_of(NR);
    let mut coords = workspace::take(padded * d);
    let mut norms = workspace::take(padded);
    // Pad slots of a partial last tile interleave with live ones, so zero
    // that whole tile up front before scattering the live points in.
    if !idx.len().is_multiple_of(NR) {
        let last_tile = (padded / NR - 1) * NR * d;
        coords[last_tile..].fill(0.0);
    }
    for (i, &p) in idx.iter().enumerate() {
        let base = (i / NR) * NR * d + i % NR;
        for (kk, &v) in pts.point(p).iter().enumerate() {
            coords[base + kk * NR] = v;
        }
    }
    norms.fill(0.0);
    for t in 0..padded / NR {
        let base = t * NR * d;
        let (nrow, crow) = (&mut norms[t * NR..(t + 1) * NR], &coords[base..base + NR * d]);
        for kk in 0..d {
            for (nv, &v) in nrow.iter_mut().zip(&crow[kk * NR..kk * NR + NR]) {
                *nv += v * v;
            }
        }
    }
    Packed { coords, norms }
}

/// Fused kernel summation: `w = K[rows, cols] * u` (overwrites `w`),
/// matrix-free with `O((m + n) d)` workspace.
///
/// # Panics
/// Panics on length mismatches.
pub fn sum_fused<K: Kernel>(
    k: &K,
    pts: &PointSet,
    rows: &[usize],
    cols: &[usize],
    u: &[f64],
    w: &mut [f64],
) {
    assert_eq!(u.len(), cols.len(), "sum_fused: weight length mismatch");
    assert_eq!(w.len(), rows.len(), "sum_fused: output length mismatch");
    if rows.is_empty() {
        return;
    }
    if cols.is_empty() {
        w.fill(0.0);
        return;
    }
    let d = pts.dim();
    // Dispatch captured once: the packed source layout and the tile kernel
    // must agree for the whole call.
    let use_simd = kfds_la::simd::active();
    let rp = pack(pts, rows, MR);
    let cp = if use_simd { pack_cols_transposed(pts, cols) } else { pack(pts, cols, NR) };
    // Zero-padded weights so padded source columns contribute nothing.
    let mut upad = workspace::take(cp.norms.len());
    upad[..u.len()].copy_from_slice(u);
    upad[u.len()..].fill(0.0);

    let n_tiles_c = cp.norms.len() / NR;
    // Parallel over disjoint MR-row chunks of the output.
    w.par_chunks_mut(MR).enumerate().for_each(|(rt, wchunk)| {
        let r0 = rt * MR;
        let rows_here = wchunk.len();
        let mut acc = [0.0f64; MR];
        for ct in 0..n_tiles_c {
            let c0 = ct * NR;
            let mut tile = [0.0f64; MR * NR];
            if use_simd {
                kfds_la::simd::gsks_tile_8x4(
                    &rp.coords[r0 * d..(r0 + MR) * d],
                    &cp.coords[c0 * d..(c0 + NR) * d],
                    d,
                    &mut tile,
                );
            } else {
                tile_dots(
                    &rp.coords[r0 * d..(r0 + rows_here) * d],
                    &cp.coords[c0 * d..(c0 + NR) * d],
                    d,
                    &mut tile,
                );
            }
            // Fused epilogue: batched kernel transform of the live tile
            // rows, then the weight reduction.
            k.eval_parts_many(
                &mut tile[..rows_here * NR],
                &rp.norms[r0..r0 + rows_here],
                &cp.norms[c0..c0 + NR],
            );
            for (r, accr) in acc.iter_mut().enumerate().take(rows_here) {
                let mut s = 0.0;
                for (kv, uv) in tile[r * NR..r * NR + NR].iter().zip(&upad[c0..c0 + NR]) {
                    s += kv * uv;
                }
                *accr += s;
            }
        }
        wchunk.copy_from_slice(&acc[..rows_here]);
    });
}

/// Fused multi-RHS summation: `W = K[rows, cols] * U` (overwrites `W`),
/// matrix-free. `U` is `cols.len() x nrhs`, `W` is `rows.len() x nrhs`.
///
/// # Panics
/// Panics on dimension mismatches.
pub fn sum_fused_multi<K: Kernel>(
    k: &K,
    pts: &PointSet,
    rows: &[usize],
    cols: &[usize],
    u: MatRef<'_>,
    mut w: MatMut<'_>,
) {
    assert_eq!(u.nrows(), cols.len(), "sum_fused_multi: U rows mismatch");
    assert_eq!(w.nrows(), rows.len(), "sum_fused_multi: W rows mismatch");
    assert_eq!(u.ncols(), w.ncols(), "sum_fused_multi: RHS count mismatch");
    let d = pts.dim();
    let nrhs = u.ncols();
    let m = rows.len();
    if m == 0 || nrhs == 0 {
        return;
    }
    if cols.is_empty() {
        w.fill(0.0);
        return;
    }
    let use_simd = kfds_la::simd::active();
    let rp = pack(pts, rows, MR);
    let cp = if use_simd { pack_cols_transposed(pts, cols) } else { pack(pts, cols, NR) };
    let n_tiles_c = cp.norms.len() / NR;

    // SIMD mode: transpose U once into source-major layout (`ut[c * nrhs
    // + t] = U[c, t]`) so the contraction kernel sweeps each source's
    // weights with contiguous vector loads. The zero padding rows make the
    // padded tile columns — whose kernel values are finite but meaningless
    // — contribute nothing, so the kernel never needs a `cols_here` guard.
    let ut = use_simd.then(|| {
        let mut ut = workspace::take(cp.norms.len() * nrhs);
        for t in 0..nrhs {
            for (c, &v) in u.col(t).iter().enumerate() {
                ut[c * nrhs + t] = v;
            }
        }
        ut[cols.len() * nrhs..].fill(0.0);
        ut
    });
    let ut_ref = ut.as_deref();

    // Row-major accumulation buffer (m x nrhs) so row tiles are chunkable;
    // zeroed because the tile loop accumulates into it.
    let mut wbuf = workspace::take_zeroed(m * nrhs);
    wbuf.par_chunks_mut(MR * nrhs).enumerate().for_each(|(rt, wchunk)| {
        let r0 = rt * MR;
        let rows_here = MR.min(m - r0);
        for ct in 0..n_tiles_c {
            let c0 = ct * NR;
            let cols_here = NR.min(cols.len().saturating_sub(c0));
            let mut tile = [0.0f64; MR * NR];
            if use_simd {
                kfds_la::simd::gsks_tile_8x4(
                    &rp.coords[r0 * d..(r0 + MR) * d],
                    &cp.coords[c0 * d..(c0 + NR) * d],
                    d,
                    &mut tile,
                );
            } else {
                tile_dots(
                    &rp.coords[r0 * d..(r0 + rows_here) * d],
                    &cp.coords[c0 * d..(c0 + NR) * d],
                    d,
                    &mut tile,
                );
            }
            // Batched kernel transform of the live rows (padded columns
            // are evaluated too but never read), then contract against U.
            k.eval_parts_many(
                &mut tile[..rows_here * NR],
                &rp.norms[r0..r0 + rows_here],
                &cp.norms[c0..c0 + NR],
            );
            match ut_ref {
                // Vectorized contraction of a full row tile against every
                // RHS at once — this multi-RHS epilogue dominates the
                // factorization's P̂ panel applies (nrhs = skeleton size).
                Some(ut) if rows_here == MR => {
                    kfds_la::simd::gsks_contract_8x4(
                        &tile,
                        &ut[c0 * nrhs..(c0 + NR) * nrhs],
                        nrhs,
                        wchunk,
                    );
                }
                _ => {
                    for r in 0..rows_here {
                        let krow = &tile[r * NR..r * NR + NR];
                        let wrow = &mut wchunk[r * nrhs..(r + 1) * nrhs];
                        for (t, wt) in wrow.iter_mut().enumerate() {
                            let ucol = u.col(t);
                            let mut s = 0.0;
                            for c in 0..cols_here {
                                s += krow[c] * ucol[c0 + c];
                            }
                            *wt += s;
                        }
                    }
                }
            }
        }
    });
    // Transpose the row-major buffer into the column-major output view.
    for t in 0..nrhs {
        let col = w.col_mut(t);
        for (i, c) in col.iter_mut().enumerate() {
            *c = wbuf[i * nrhs + t];
        }
    }
}

/// Computes the `MR x NR` tile of inner products between `xr` (up to MR
/// packed points) and `yc` (NR **point-major** packed points), the
/// semi-ring rank-`d` update at the heart of GSKS — the scalar reference
/// path, written row-major into `out` (`out[r*NR + c] = x_r . y_c`).
#[inline]
fn tile_dots(xr: &[f64], yc: &[f64], d: usize, out: &mut [f64; MR * NR]) {
    let rows = xr.len().checked_div(d).unwrap_or(0);
    for kk in 0..d {
        let mut yv = [0.0f64; NR];
        for (c, yvc) in yv.iter_mut().enumerate() {
            *yvc = yc[c * d + kk];
        }
        for r in 0..rows {
            let xv = xr[r * d + kk];
            for (acc, &y) in out[r * NR..r * NR + NR].iter_mut().zip(&yv) {
                *acc += xv * y;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::{Gaussian, Laplacian};
    use crate::reference::{sum_reference, sum_reference_multi};
    use kfds_la::Mat;

    fn pts(n: usize, d: usize, seed: u64) -> PointSet {
        let mut state = seed | 1;
        let data: Vec<f64> = (0..n * d)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            })
            .collect();
        PointSet::from_col_major(d, data)
    }

    #[test]
    fn fused_matches_reference_various_shapes() {
        for &(m, n, d) in &[(1, 1, 1), (4, 4, 2), (7, 13, 3), (33, 29, 8), (16, 64, 20)] {
            let p = pts(m + n, d, (m * 7 + n * 3 + d) as u64);
            let rows: Vec<usize> = (0..m).collect();
            let cols: Vec<usize> = (m..m + n).collect();
            let u: Vec<f64> = (0..n).map(|i| (i as f64 * 0.41).sin()).collect();
            let k = Gaussian::new(0.7);
            let mut w1 = vec![0.0; m];
            let mut w2 = vec![0.0; m];
            sum_reference(&k, &p, &rows, &cols, &u, &mut w1);
            sum_fused(&k, &p, &rows, &cols, &u, &mut w2);
            for i in 0..m {
                assert!(
                    (w1[i] - w2[i]).abs() < 1e-11 * (1.0 + w1[i].abs()),
                    "shape ({m},{n},{d}) row {i}: {} vs {}",
                    w1[i],
                    w2[i]
                );
            }
        }
    }

    #[test]
    fn fused_multi_matches_reference_multi() {
        let (m, n, d, nrhs) = (19, 23, 5, 6);
        let p = pts(m + n, d, 77);
        let rows: Vec<usize> = (0..m).collect();
        let cols: Vec<usize> = (m..m + n).collect();
        let u = Mat::from_fn(n, nrhs, |i, j| ((i * 5 + j) as f64 * 0.23).cos());
        let k = Laplacian::new(1.1);
        let mut w1 = Mat::zeros(m, nrhs);
        let mut w2 = Mat::zeros(m, nrhs);
        sum_reference_multi(&k, &p, &rows, &cols, u.rb(), w1.rb_mut());
        sum_fused_multi(&k, &p, &rows, &cols, u.rb(), w2.rb_mut());
        for t in 0..nrhs {
            for i in 0..m {
                assert!((w1[(i, t)] - w2[(i, t)]).abs() < 1e-11);
            }
        }
    }

    #[test]
    fn fused_with_noncontiguous_indices() {
        let p = pts(40, 3, 9);
        let rows = [0, 5, 11, 7, 39];
        let cols = [2, 3, 17, 30, 4, 8, 25];
        let u: Vec<f64> = (0..7).map(|i| i as f64 - 3.0).collect();
        let k = Gaussian::new(0.5);
        let mut w1 = vec![0.0; 5];
        let mut w2 = vec![0.0; 5];
        sum_reference(&k, &p, &rows, &cols, &u, &mut w1);
        sum_fused(&k, &p, &rows, &cols, &u, &mut w2);
        for i in 0..5 {
            assert!((w1[i] - w2[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_rows_cols_and_rhs() {
        let p = pts(6, 2, 1);
        let k = Gaussian::new(1.0);
        // Empty columns: output must be zeroed, not stale.
        let mut w = [f64::NAN; 2];
        sum_fused(&k, &p, &[0, 1], &[], &[], &mut w);
        assert_eq!(w, [0.0, 0.0]);
        // Empty rows: nothing to write.
        let mut w0: [f64; 0] = [];
        sum_fused(&k, &p, &[], &[2, 3], &[1.0, 1.0], &mut w0);
        // Zero RHS columns in the multi variant (rank-0 skeleton case).
        let u = Mat::zeros(3, 0);
        let mut wm = Mat::zeros(2, 0);
        sum_fused_multi(&k, &p, &[0, 1], &[2, 3, 4], u.rb(), wm.rb_mut());
        // Empty cols in the multi variant.
        let u2 = Mat::zeros(0, 2);
        let mut wm2 = Mat::from_fn(2, 2, |_, _| f64::NAN);
        sum_fused_multi(&k, &p, &[0, 1], &[], u2.rb(), wm2.rb_mut());
        assert_eq!(wm2.as_slice(), &[0.0; 4]);
    }

    #[test]
    fn fused_overwrites_output() {
        let p = pts(10, 2, 4);
        let rows = [0, 1];
        let cols = [2, 3];
        let u = [0.0, 0.0];
        let mut w = [f64::NAN, f64::NAN];
        sum_fused(&Gaussian::new(1.0), &p, &rows, &cols, &u, &mut w);
        assert_eq!(w, [0.0, 0.0]);
    }
}
