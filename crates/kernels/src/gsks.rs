//! GSKS — fused, matrix-free kernel summation (paper §II-D, \[24\]).
//!
//! The two-pass reference streams an `m x n` kernel block through memory
//! twice. GSKS fuses the three stages — rank-`d` Gram update, elementwise
//! kernel evaluation, and the GEMV reduction — inside one register tile:
//! an `MR x NR` block of `K` is produced in registers by the semi-ring
//! rank-`d` update, transformed by the kernel function, contracted against
//! the weights, and discarded. Only `O(md + nd)` memory moves remain and
//! the `m x n` block never exists (`O(1)` extra storage), which is the
//! paper's 3–30x win over the reference for small `d`.
//!
//! The paper implements the microkernel in AVX2/AVX512 assembly; here the
//! tile is a fixed-size array kernel that LLVM auto-vectorizes — the
//! algorithmic structure (fusion, packing, tiling) is identical.

use crate::function::Kernel;
use kfds_la::workspace;
use kfds_la::{MatMut, MatRef};
use kfds_tree::PointSet;
use rayon::prelude::*;

/// Register tile height (rows = targets).
const MR: usize = 4;
/// Register tile width (columns = sources).
const NR: usize = 4;

/// Packed, zero-padded coordinates + norms for one side of a summation.
/// Storage comes from the workspace pool and returns to it on drop.
struct Packed {
    /// `padded x d`, point-major (point `i` = `coords[i*d .. (i+1)*d]`).
    coords: workspace::WsVec,
    /// Squared norms, zero-padded.
    norms: workspace::WsVec,
    len: usize,
}

fn pack(pts: &PointSet, idx: &[usize], pad_to: usize) -> Packed {
    let d = pts.dim();
    let padded = idx.len().next_multiple_of(pad_to);
    // Pooled buffers arrive with stale contents; the loop overwrites the
    // live region and only the padding tail needs explicit zeroing (padded
    // tile entries must evaluate the kernel at the origin, not at garbage
    // coordinates, so their weighted contribution of zero stays finite).
    let mut coords = workspace::take(padded * d);
    let mut norms = workspace::take(padded);
    for (i, &p) in idx.iter().enumerate() {
        let src = pts.point(p);
        coords[i * d..(i + 1) * d].copy_from_slice(src);
        norms[i] = kfds_la::blas1::dot(src, src);
    }
    coords[idx.len() * d..].fill(0.0);
    norms[idx.len()..].fill(0.0);
    Packed { coords, norms, len: idx.len() }
}

/// Fused kernel summation: `w = K[rows, cols] * u` (overwrites `w`),
/// matrix-free with `O((m + n) d)` workspace.
///
/// # Panics
/// Panics on length mismatches.
pub fn sum_fused<K: Kernel>(
    k: &K,
    pts: &PointSet,
    rows: &[usize],
    cols: &[usize],
    u: &[f64],
    w: &mut [f64],
) {
    assert_eq!(u.len(), cols.len(), "sum_fused: weight length mismatch");
    assert_eq!(w.len(), rows.len(), "sum_fused: output length mismatch");
    if rows.is_empty() {
        return;
    }
    if cols.is_empty() {
        w.fill(0.0);
        return;
    }
    let d = pts.dim();
    let rp = pack(pts, rows, MR);
    let cp = pack(pts, cols, NR);
    // Zero-padded weights so padded source columns contribute nothing.
    let mut upad = workspace::take(cp.norms.len());
    upad[..u.len()].copy_from_slice(u);
    upad[u.len()..].fill(0.0);

    let n_tiles_c = cp.norms.len() / NR;
    // Parallel over disjoint MR-row chunks of the output.
    w.par_chunks_mut(MR).enumerate().for_each(|(rt, wchunk)| {
        let r0 = rt * MR;
        let xr = &rp.coords[r0 * d..(r0 + MR.min(rp.len - r0)) * d];
        let mut acc = [0.0f64; MR];
        for ct in 0..n_tiles_c {
            let c0 = ct * NR;
            let tile = tile_dots(xr, &cp.coords[c0 * d..(c0 + NR) * d], d);
            // Fused epilogue: kernel transform + reduction, in registers.
            for (r, accr) in acc.iter_mut().enumerate().take(wchunk.len()) {
                let nx = rp.norms[r0 + r];
                let mut s = 0.0;
                for c in 0..NR {
                    let kv = k.eval_parts(tile[r][c], nx, cp.norms[c0 + c]);
                    s += kv * upad[c0 + c];
                }
                *accr += s;
            }
        }
        wchunk.copy_from_slice(&acc[..wchunk.len()]);
    });
}

/// Fused multi-RHS summation: `W = K[rows, cols] * U` (overwrites `W`),
/// matrix-free. `U` is `cols.len() x nrhs`, `W` is `rows.len() x nrhs`.
///
/// # Panics
/// Panics on dimension mismatches.
pub fn sum_fused_multi<K: Kernel>(
    k: &K,
    pts: &PointSet,
    rows: &[usize],
    cols: &[usize],
    u: MatRef<'_>,
    mut w: MatMut<'_>,
) {
    assert_eq!(u.nrows(), cols.len(), "sum_fused_multi: U rows mismatch");
    assert_eq!(w.nrows(), rows.len(), "sum_fused_multi: W rows mismatch");
    assert_eq!(u.ncols(), w.ncols(), "sum_fused_multi: RHS count mismatch");
    let d = pts.dim();
    let nrhs = u.ncols();
    let m = rows.len();
    if m == 0 || nrhs == 0 {
        return;
    }
    if cols.is_empty() {
        w.fill(0.0);
        return;
    }
    let rp = pack(pts, rows, MR);
    let cp = pack(pts, cols, NR);
    let n_tiles_c = cp.norms.len() / NR;

    // Row-major accumulation buffer (m x nrhs) so row tiles are chunkable;
    // zeroed because the tile loop accumulates into it.
    let mut wbuf = workspace::take_zeroed(m * nrhs);
    wbuf.par_chunks_mut(MR * nrhs).enumerate().for_each(|(rt, wchunk)| {
        let r0 = rt * MR;
        let rows_here = MR.min(m - r0);
        let xr = &rp.coords[r0 * d..(r0 + rows_here) * d];
        for ct in 0..n_tiles_c {
            let c0 = ct * NR;
            let cols_here = NR.min(cols.len().saturating_sub(c0));
            let tile = tile_dots(xr, &cp.coords[c0 * d..(c0 + NR) * d], d);
            // Kernel transform of the tile, then contract against U rows.
            for r in 0..rows_here {
                let nx = rp.norms[r0 + r];
                let mut kv = [0.0f64; NR];
                for c in 0..cols_here {
                    kv[c] = k.eval_parts(tile[r][c], nx, cp.norms[c0 + c]);
                }
                let wrow = &mut wchunk[r * nrhs..(r + 1) * nrhs];
                for (t, wt) in wrow.iter_mut().enumerate() {
                    let ucol = u.col(t);
                    let mut s = 0.0;
                    for c in 0..cols_here {
                        s += kv[c] * ucol[c0 + c];
                    }
                    *wt += s;
                }
            }
        }
    });
    // Transpose the row-major buffer into the column-major output view.
    for t in 0..nrhs {
        let col = w.col_mut(t);
        for (i, c) in col.iter_mut().enumerate() {
            *c = wbuf[i * nrhs + t];
        }
    }
}

/// Computes the `MR x NR` tile of inner products between `xr` (up to MR
/// packed points) and `yc` (NR packed points), the semi-ring rank-`d`
/// update at the heart of GSKS.
#[inline]
fn tile_dots(xr: &[f64], yc: &[f64], d: usize) -> [[f64; NR]; MR] {
    let mut acc = [[0.0f64; NR]; MR];
    let rows = xr.len() / d;
    for kk in 0..d {
        let mut yv = [0.0f64; NR];
        for (c, yvc) in yv.iter_mut().enumerate() {
            *yvc = yc[c * d + kk];
        }
        for r in 0..rows {
            let xv = xr[r * d + kk];
            for c in 0..NR {
                acc[r][c] += xv * yv[c];
            }
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::{Gaussian, Laplacian};
    use crate::reference::{sum_reference, sum_reference_multi};
    use kfds_la::Mat;

    fn pts(n: usize, d: usize, seed: u64) -> PointSet {
        let mut state = seed | 1;
        let data: Vec<f64> = (0..n * d)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            })
            .collect();
        PointSet::from_col_major(d, data)
    }

    #[test]
    fn fused_matches_reference_various_shapes() {
        for &(m, n, d) in &[(1, 1, 1), (4, 4, 2), (7, 13, 3), (33, 29, 8), (16, 64, 20)] {
            let p = pts(m + n, d, (m * 7 + n * 3 + d) as u64);
            let rows: Vec<usize> = (0..m).collect();
            let cols: Vec<usize> = (m..m + n).collect();
            let u: Vec<f64> = (0..n).map(|i| (i as f64 * 0.41).sin()).collect();
            let k = Gaussian::new(0.7);
            let mut w1 = vec![0.0; m];
            let mut w2 = vec![0.0; m];
            sum_reference(&k, &p, &rows, &cols, &u, &mut w1);
            sum_fused(&k, &p, &rows, &cols, &u, &mut w2);
            for i in 0..m {
                assert!(
                    (w1[i] - w2[i]).abs() < 1e-11 * (1.0 + w1[i].abs()),
                    "shape ({m},{n},{d}) row {i}: {} vs {}",
                    w1[i],
                    w2[i]
                );
            }
        }
    }

    #[test]
    fn fused_multi_matches_reference_multi() {
        let (m, n, d, nrhs) = (19, 23, 5, 6);
        let p = pts(m + n, d, 77);
        let rows: Vec<usize> = (0..m).collect();
        let cols: Vec<usize> = (m..m + n).collect();
        let u = Mat::from_fn(n, nrhs, |i, j| ((i * 5 + j) as f64 * 0.23).cos());
        let k = Laplacian::new(1.1);
        let mut w1 = Mat::zeros(m, nrhs);
        let mut w2 = Mat::zeros(m, nrhs);
        sum_reference_multi(&k, &p, &rows, &cols, u.rb(), w1.rb_mut());
        sum_fused_multi(&k, &p, &rows, &cols, u.rb(), w2.rb_mut());
        for t in 0..nrhs {
            for i in 0..m {
                assert!((w1[(i, t)] - w2[(i, t)]).abs() < 1e-11);
            }
        }
    }

    #[test]
    fn fused_with_noncontiguous_indices() {
        let p = pts(40, 3, 9);
        let rows = [0, 5, 11, 7, 39];
        let cols = [2, 3, 17, 30, 4, 8, 25];
        let u: Vec<f64> = (0..7).map(|i| i as f64 - 3.0).collect();
        let k = Gaussian::new(0.5);
        let mut w1 = vec![0.0; 5];
        let mut w2 = vec![0.0; 5];
        sum_reference(&k, &p, &rows, &cols, &u, &mut w1);
        sum_fused(&k, &p, &rows, &cols, &u, &mut w2);
        for i in 0..5 {
            assert!((w1[i] - w2[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_rows_cols_and_rhs() {
        let p = pts(6, 2, 1);
        let k = Gaussian::new(1.0);
        // Empty columns: output must be zeroed, not stale.
        let mut w = [f64::NAN; 2];
        sum_fused(&k, &p, &[0, 1], &[], &[], &mut w);
        assert_eq!(w, [0.0, 0.0]);
        // Empty rows: nothing to write.
        let mut w0: [f64; 0] = [];
        sum_fused(&k, &p, &[], &[2, 3], &[1.0, 1.0], &mut w0);
        // Zero RHS columns in the multi variant (rank-0 skeleton case).
        let u = Mat::zeros(3, 0);
        let mut wm = Mat::zeros(2, 0);
        sum_fused_multi(&k, &p, &[0, 1], &[2, 3, 4], u.rb(), wm.rb_mut());
        // Empty cols in the multi variant.
        let u2 = Mat::zeros(0, 2);
        let mut wm2 = Mat::from_fn(2, 2, |_, _| f64::NAN);
        sum_fused_multi(&k, &p, &[0, 1], &[], u2.rb(), wm2.rb_mut());
        assert_eq!(wm2.as_slice(), &[0.0; 4]);
    }

    #[test]
    fn fused_overwrites_output() {
        let p = pts(10, 2, 4);
        let rows = [0, 1];
        let cols = [2, 3];
        let u = [0.0, 0.0];
        let mut w = [f64::NAN, f64::NAN];
        sum_fused(&Gaussian::new(1.0), &p, &rows, &cols, &u, &mut w);
        assert_eq!(w, [0.0, 0.0]);
    }
}
