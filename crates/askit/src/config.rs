//! Skeletonization parameters.

/// Parameters of the ASKIT-style skeletonization (paper §II-A, §V).
#[derive(Clone, Debug)]
pub struct SkelConfig {
    /// Relative tolerance `τ`: the rank `s` is the smallest with
    /// `σ_{s+1}/σ_1 < τ` (estimated by the RRQR diagonal).
    pub tol: f64,
    /// Maximum skeleton size `s_max`.
    pub max_rank: usize,
    /// Number of nearest neighbors `κ` used for row sampling.
    pub neighbors: usize,
    /// Additional uniform row samples beyond the ID column count.
    pub oversample: usize,
    /// Level restriction `L`: nodes at depth `< L` are never skeletonized,
    /// so the skeletonization frontier sits at depth `L` (paper §II-A
    /// "Level restriction"). `L = 1` skeletonizes everything below the
    /// root, which is what the full direct factorization needs.
    pub max_level: usize,
    /// Adaptive frontier: additionally stop skeletonizing a node (and its
    /// ancestors) when the ID achieves no compression (`α̃ = l̃ ∪ r̃`).
    pub adaptive_frontier: bool,
    /// Seed for the row-sampling RNG (deterministic per node).
    pub seed: u64,
    /// Use approximate kNN with this many randomized projection trees for
    /// the row sampling (ASKIT's high-dimensional mode); `None` = exact
    /// ball-tree search. In high ambient dimensions exact search is
    /// `O(N²d)` while the sampled rows only need *good* (not perfect)
    /// neighbor lists.
    pub approx_knn_trees: Option<usize>,
}

impl Default for SkelConfig {
    fn default() -> Self {
        SkelConfig {
            tol: 1e-5,
            max_rank: 256,
            neighbors: 32,
            oversample: 32,
            max_level: 1,
            adaptive_frontier: false,
            seed: 0x5eed,
            approx_knn_trees: None,
        }
    }
}

impl SkelConfig {
    /// Builder-style setter for the tolerance `τ`.
    pub fn with_tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Builder-style setter for `s_max`.
    pub fn with_max_rank(mut self, s: usize) -> Self {
        self.max_rank = s;
        self
    }

    /// Builder-style setter for the neighbor count `κ`.
    pub fn with_neighbors(mut self, k: usize) -> Self {
        self.neighbors = k;
        self
    }

    /// Builder-style setter for the level restriction `L`.
    pub fn with_max_level(mut self, l: usize) -> Self {
        self.max_level = l;
        self
    }

    /// Builder-style setter for the adaptive-frontier flag.
    pub fn with_adaptive_frontier(mut self, on: bool) -> Self {
        self.adaptive_frontier = on;
        self
    }

    /// Builder-style setter for the sampling seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style setter for approximate-kNN sampling (`n_trees`
    /// randomized projection trees).
    pub fn with_approx_knn(mut self, n_trees: usize) -> Self {
        self.approx_knn_trees = Some(n_trees);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let c = SkelConfig::default()
            .with_tol(1e-3)
            .with_max_rank(64)
            .with_neighbors(8)
            .with_max_level(3)
            .with_adaptive_frontier(true)
            .with_seed(7);
        assert_eq!(c.tol, 1e-3);
        assert_eq!(c.max_rank, 64);
        assert_eq!(c.neighbors, 8);
        assert_eq!(c.max_level, 3);
        assert!(c.adaptive_frontier);
        assert_eq!(c.seed, 7);
    }
}
