//! Hierarchical (treecode) matvec with the skeletonized kernel matrix.
//!
//! Applies `w = (λI + K̃) u` where `K̃` is *exactly* the approximation the
//! direct solver factorizes — the symmetric form of eq. (6):
//!
//! ```text
//! K̃_αα = [ K̃_ll              P_{l l̃} K_{l̃ r} ]
//!         [ P_{r r̃} K_{r̃ l}   K̃_rr            ]
//! ```
//!
//! recursively, with exact dense blocks at the leaves. Above the
//! skeletonization frontier the off-diagonal coupling is expressed through
//! the frontier skeletons (`P_{φ φ̃} K_{φ̃ β}` for each maximal
//! skeletonized node `φ`), matching the hybrid solver's `W V` coalescing.
//!
//! This operator serves three roles: residual verification for the direct
//! solver (it must invert `λI + K̃` to machine precision), the system
//! operator for the unpreconditioned GMRES runs of Figure 5, and the σ₁
//! estimation used to pick `λ` from target condition numbers.

use crate::skeleton::SkeletonTree;
use kfds_kernels::{sum_fused, Kernel};
use kfds_la::blas1::axpy;

/// Computes `w = (λI + K̃) u` on the tree's permuted ordering.
///
/// # Panics
/// Panics if `u.len()` differs from the number of points.
pub fn hier_matvec<K: Kernel>(st: &SkeletonTree, kernel: &K, lambda: f64, u: &[f64]) -> Vec<f64> {
    let n = st.tree().points().len();
    assert_eq!(u.len(), n, "hier_matvec: vector length mismatch");
    let mut w = apply_node(st, kernel, st.tree().root(), u);
    axpy(lambda, u, &mut w);
    w
}

/// Recursive application of `K̃_αα u_α`.
fn apply_node<K: Kernel>(st: &SkeletonTree, kernel: &K, node: usize, u: &[f64]) -> Vec<f64> {
    let tree = st.tree();
    let nd = tree.node(node);
    let pts = tree.points();
    match nd.children {
        None => {
            // Exact dense leaf block, evaluated matrix-free.
            let rows: Vec<usize> = nd.range().collect();
            let mut w = vec![0.0; rows.len()];
            sum_fused(kernel, pts, &rows, &rows, u, &mut w);
            w
        }
        Some((l, r)) => {
            let nl = tree.node(l).len();
            let (ul, ur) = u.split_at(nl);
            let (mut wl, mut wr) =
                rayon::join(|| apply_node(st, kernel, l, ul), || apply_node(st, kernel, r, ur));
            // Off-diagonal coupling through the maximal skeletonized nodes.
            apply_offdiag(st, kernel, l, tree.node(r).range(), ur, &mut wl);
            apply_offdiag(st, kernel, r, tree.node(l).range(), ul, &mut wr);
            wl.extend(wr);
            wl
        }
    }
}

/// Adds `K̃[target, src_range] u_src` into `w` (length `|target|`), where
/// the block is compressed through `target`'s skeleton when available,
/// recursed to maximal skeletonized descendants otherwise, and exact for
/// unskeletonized leaves.
fn apply_offdiag<K: Kernel>(
    st: &SkeletonTree,
    kernel: &K,
    target: usize,
    src_range: std::ops::Range<usize>,
    u_src: &[f64],
    w: &mut [f64],
) {
    let tree = st.tree();
    let pts = tree.points();
    if let Some(sk) = st.skeleton(target) {
        if sk.rank() == 0 {
            return; // numerically zero off-diagonal block
        }
        // v = K_{t̃, src} u_src, then w += P_{t t̃} v (telescoped).
        let cols: Vec<usize> = src_range.collect();
        let mut v = vec![0.0; sk.rank()];
        sum_fused(kernel, pts, &sk.skeleton, &cols, u_src, &mut v);
        let contribution = st.apply_p(target, &v);
        axpy(1.0, &contribution, w);
        return;
    }
    let nd = tree.node(target);
    match nd.children {
        Some((l, r)) => {
            let nl = tree.node(l).len();
            let (wl, wr) = w.split_at_mut(nl);
            apply_offdiag(st, kernel, l, src_range.clone(), u_src, wl);
            apply_offdiag(st, kernel, r, src_range, u_src, wr);
        }
        None => {
            // Unskeletonized leaf (level restriction above the leaf level):
            // exact interaction.
            let rows: Vec<usize> = nd.range().collect();
            let cols: Vec<usize> = src_range.collect();
            let mut v = vec![0.0; rows.len()];
            sum_fused(kernel, pts, &rows, &cols, u_src, &mut v);
            axpy(1.0, &v, w);
        }
    }
}

/// Computes `w = (λI + K) u` with the *exact* kernel matrix (O(N²d),
/// matrix-free) — the reference for approximation-error measurements.
pub fn exact_matvec<K: Kernel>(st: &SkeletonTree, kernel: &K, lambda: f64, u: &[f64]) -> Vec<f64> {
    let pts = st.tree().points();
    let n = pts.len();
    assert_eq!(u.len(), n);
    let all: Vec<usize> = (0..n).collect();
    let mut w = vec![0.0; n];
    sum_fused(kernel, pts, &all, &all, u, &mut w);
    axpy(lambda, u, &mut w);
    w
}

/// Estimates the relative approximation error `‖(K̃ - K) u‖ / ‖K u‖` on
/// `nsamples` random-ish unit test vectors (deterministic, seeded).
pub fn approx_error_estimate<K: Kernel>(st: &SkeletonTree, kernel: &K, nsamples: usize) -> f64 {
    let n = st.tree().points().len();
    let mut worst = 0.0f64;
    for s in 0..nsamples {
        let mut state = 0x1234_5678_9abc_def0u64 ^ (s as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let u: Vec<f64> = (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            })
            .collect();
        let approx = hier_matvec(st, kernel, 0.0, &u);
        let exact = exact_matvec(st, kernel, 0.0, &u);
        let mut diff = 0.0;
        let mut norm = 0.0;
        for (a, e) in approx.iter().zip(&exact) {
            diff += (a - e) * (a - e);
            norm += e * e;
        }
        if norm > 0.0 {
            worst = worst.max((diff / norm).sqrt());
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SkelConfig;
    use crate::skeletonize::skeletonize;
    use kfds_kernels::{eval_symmetric, Gaussian};
    use kfds_tree::datasets::{normal_embedded, uniform_cube};
    use kfds_tree::BallTree;

    fn test_vec(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn exact_matvec_matches_dense() {
        let p = uniform_cube(60, 3, 5);
        let tree = BallTree::build(&p, 8);
        let k = Gaussian::new(0.8);
        let st = skeletonize(tree, &k, SkelConfig::default().with_neighbors(4));
        let u = test_vec(60, 3);
        let w = exact_matvec(&st, &k, 0.5, &u);
        let km = eval_symmetric(&k, st.tree().points(), 0..60);
        let mut want = vec![0.0; 60];
        kfds_la::blas2::gemv(1.0, km.rb(), &u, 0.0, &mut want);
        for i in 0..60 {
            want[i] += 0.5 * u[i];
            assert!((w[i] - want[i]).abs() < 1e-11);
        }
    }

    #[test]
    fn tight_tolerance_matches_exact_kernel() {
        // With a generous bandwidth and tight tolerance, K̃ ≈ K closely.
        let p = normal_embedded(256, 2, 6, 0.05, 11);
        let tree = BallTree::build(&p, 32);
        let k = Gaussian::new(2.0);
        let cfg = SkelConfig::default().with_tol(1e-10).with_max_rank(200).with_neighbors(16);
        let st = skeletonize(tree, &k, cfg);
        let err = approx_error_estimate(&st, &k, 2);
        assert!(err < 1e-6, "approximation error {err}");
    }

    #[test]
    fn loose_tolerance_still_bounded() {
        let p = normal_embedded(256, 2, 6, 0.05, 13);
        let tree = BallTree::build(&p, 32);
        let k = Gaussian::new(2.0);
        let cfg = SkelConfig::default().with_tol(1e-2).with_max_rank(64).with_neighbors(8);
        let st = skeletonize(tree, &k, cfg);
        let err = approx_error_estimate(&st, &k, 2);
        assert!(err < 0.3, "approximation error {err}");
    }

    #[test]
    fn level_restricted_matvec_consistent() {
        // With level restriction, off-diagonal blocks above the frontier
        // go through frontier skeletons. The operator must still be close
        // to the exact kernel for a tight tolerance.
        let p = normal_embedded(256, 2, 5, 0.05, 17);
        let tree = BallTree::build(&p, 16);
        let k = Gaussian::new(2.5);
        let cfg = SkelConfig::default()
            .with_tol(1e-9)
            .with_max_rank(200)
            .with_neighbors(16)
            .with_max_level(3);
        let st = skeletonize(tree, &k, cfg);
        assert!(!st.is_fully_skeletonized());
        let err = approx_error_estimate(&st, &k, 2);
        assert!(err < 1e-5, "approximation error {err}");
    }

    #[test]
    fn lambda_shifts_diagonal() {
        let p = uniform_cube(64, 2, 9);
        let tree = BallTree::build(&p, 8);
        let k = Gaussian::new(1.0);
        let st = skeletonize(tree, &k, SkelConfig::default().with_neighbors(4));
        let u = test_vec(64, 5);
        let w0 = hier_matvec(&st, &k, 0.0, &u);
        let w2 = hier_matvec(&st, &k, 2.0, &u);
        for i in 0..64 {
            assert!((w2[i] - w0[i] - 2.0 * u[i]).abs() < 1e-12);
        }
    }
}
