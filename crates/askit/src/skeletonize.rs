//! Bottom-up skeletonization — Algorithm II.1 of the paper.
//!
//! Leaves are skeletonized by an ID of the sampled off-node block
//! `K_{S' α}`; an internal node is skeletonized by an ID of
//! `K_{S' [l̃ r̃]}` over its children's skeletons, so its skeleton is a
//! subset of `l̃ ∪ r̃` (the nested property). Traversal is level-by-level
//! from the deepest level up, parallel across the nodes of each level —
//! exactly the parallelization scheme of the paper's shared-memory layer.

use crate::config::SkelConfig;
use crate::sampling::sample_rows;
use crate::skeleton::{NodeSkeleton, SkeletonTree};
use kfds_kernels::{eval_block, eval_blocks, BlockSpec, Kernel};
use kfds_la::workspace::WsIdx;
use kfds_la::{group_by_shape, interp_decomp, workspace, Mat};
use kfds_tree::{knn_all, knn_approximate, BallTree, NeighborLists};
use rayon::prelude::*;

/// Builds the hierarchical (skeletonized) representation of the kernel
/// matrix over `tree` — the "ASKIT construction" phase.
///
/// Nodes at depth `< config.max_level` are left unskeletonized (level
/// restriction); with `config.adaptive_frontier` a node that achieves no
/// compression also terminates skeletonization along its ancestor path.
pub fn skeletonize<K: Kernel>(tree: BallTree, kernel: &K, config: SkelConfig) -> SkeletonTree {
    let nn = compute_neighbors(&tree, &config);
    skeletonize_with_neighbors(tree, kernel, config, &nn)
}

/// The kNN phase of the construction, exposed separately so harnesses can
/// time tree build / neighbor search / skeletonization individually (the
/// perf-trajectory setup breakdown).
pub fn compute_neighbors(tree: &BallTree, config: &SkelConfig) -> NeighborLists {
    let n = tree.points().len();
    let kappa = config.neighbors.min(n.saturating_sub(1)).max(1);
    match config.approx_knn_trees {
        Some(t) if n > kappa + 1 => knn_approximate(tree, kappa, t, config.seed),
        _ => knn_all(tree, kappa),
    }
}

/// [`skeletonize`] with precomputed neighbor lists (`nn` must come from
/// [`compute_neighbors`] on the same tree and config).
pub fn skeletonize_with_neighbors<K: Kernel>(
    tree: BallTree,
    kernel: &K,
    config: SkelConfig,
    nn: &NeighborLists,
) -> SkeletonTree {
    let n_nodes = tree.nodes().len();
    let mut skeletons: Vec<Option<NodeSkeleton>> = (0..n_nodes).map(|_| None).collect();

    // Deepest level first; each level only reads skeletons of deeper levels.
    for level in (config.max_level..=tree.depth()).rev() {
        let level_nodes: Vec<usize> = tree.nodes_at_level(level).to_vec();
        let results: Vec<(usize, Option<NodeSkeleton>)> = if kfds_la::batch_active() {
            skeletonize_level_batched(&tree, kernel, nn, &skeletons, &level_nodes, &config)
        } else {
            level_nodes
                .par_iter()
                .map(|&i| (i, skeletonize_node(&tree, kernel, nn, &skeletons, i, &config)))
                .collect()
        };
        for (i, sk) in results {
            skeletons[i] = sk;
        }
    }
    SkeletonTree::new(tree, skeletons, config)
}

/// One planned level of the batched construction (`KFDS_BATCH`): per-node
/// row/column sampling first (deterministic per `(seed, node)` regardless
/// of scheduling), then per block-shape group one batched evaluation of
/// the sampled kernel blocks `K_{S' α}` followed immediately by that
/// group's IDs (blocks stay cache-hot between eval and decomposition).
/// Bitwise identical to the per-node path: the same blocks feed the same
/// rank-revealing QR in the same per-node arithmetic order — only the
/// launch structure differs.
fn skeletonize_level_batched<K: Kernel>(
    tree: &BallTree,
    kernel: &K,
    nn: &NeighborLists,
    skeletons: &[Option<NodeSkeleton>],
    level_nodes: &[usize],
    config: &SkelConfig,
) -> Vec<(usize, Option<NodeSkeleton>)> {
    let mut out: Vec<(usize, Option<NodeSkeleton>)> =
        level_nodes.iter().map(|&i| (i, None)).collect();

    // Stage 1 — sampling. `cols` lists stay checked out of the index pool
    // until the IDs resolve skeleton indices through them.
    struct Sampled {
        pos: usize,
        rows: Vec<usize>,
        cols: WsIdx,
        internal: bool,
    }
    let sampled: Vec<Option<Sampled>> = level_nodes
        .par_iter()
        .enumerate()
        .map(|(pos, &node)| -> Option<Sampled> {
            let nd = tree.node(node);
            let mut cols = workspace::take_idx(nd.len());
            match nd.children {
                None => cols.extend(nd.range()),
                Some((l, r)) => {
                    let (ls, rs) = (skeletons[l].as_ref()?, skeletons[r].as_ref()?);
                    cols.extend(ls.skeleton.iter().chain(rs.skeleton.iter()).copied());
                }
            }
            if cols.is_empty() {
                return None;
            }
            let rows = sample_rows(tree, nn, &cols, nd.begin, nd.end, node, config);
            if rows.is_empty() {
                return None;
            }
            Some(Sampled { pos, rows, cols, internal: nd.children.is_some() })
        })
        .collect();
    let sampled: Vec<Sampled> = sampled.into_iter().flatten().collect();
    if sampled.is_empty() {
        return out;
    }

    // Stages 2+3 — per shape group: evaluate the group's blocks in one
    // batched call, then run its IDs immediately while the blocks are
    // still cache-hot. (Materializing the *whole* level before any ID
    // starts costs more in locality than the launch grouping saves —
    // each block is evaluated and decomposed identically either way, so
    // the pipelining is invisible to the bits.)
    let shapes: Vec<(usize, usize)> =
        sampled.iter().map(|s| (s.rows.len(), s.cols.len())).collect();
    for (_, idxs) in group_by_shape(&shapes, |&sh| sh) {
        let specs: Vec<BlockSpec<'_>> = idxs
            .iter()
            .map(|&k| BlockSpec::RowsByCols { rows: &sampled[k].rows, cols: &sampled[k].cols })
            .collect();
        let (mats, _groups) = eval_blocks(kernel, tree.points(), &specs);
        let items: Vec<(usize, Mat)> = idxs.iter().copied().zip(mats).collect();
        let done: Vec<(usize, Option<NodeSkeleton>)> = items
            .into_par_iter()
            .map(|(k, block)| {
                let s = &sampled[k];
                let id = interp_decomp(block, config.tol, config.max_rank);
                let sk = if id.rank() == 0 {
                    // Off-node interactions numerically zero: empty
                    // skeleton is valid — U V vanish for this node.
                    Some(NodeSkeleton {
                        skeleton: Vec::new(),
                        proj: Mat::zeros(0, s.cols.len()),
                        sigma_est: Vec::new(),
                    })
                } else if config.adaptive_frontier && s.internal && id.is_full_rank() {
                    // α̃ = l̃ ∪ r̃: no compression; stop the recursion here
                    // (paper §II-A "Level restriction").
                    None
                } else {
                    let skeleton: Vec<usize> = id.skeleton.iter().map(|&c| s.cols[c]).collect();
                    Some(NodeSkeleton { skeleton, proj: id.proj, sigma_est: id.sigma_est })
                };
                (s.pos, sk)
            })
            .collect();
        for (pos, sk) in done {
            out[pos].1 = sk;
        }
    }
    out
}

/// Skeletonizes one node, or returns `None` when the node cannot (children
/// unskeletonized, nothing outside to sample) or should not (adaptive
/// frontier, no compression) be skeletonized.
fn skeletonize_node<K: Kernel>(
    tree: &BallTree,
    kernel: &K,
    nn: &NeighborLists,
    skeletons: &[Option<NodeSkeleton>],
    node: usize,
    config: &SkelConfig,
) -> Option<NodeSkeleton> {
    let nd = tree.node(node);
    // The ID columns: the node's own points (leaf) or the children's
    // skeleton points (internal, nested basis). Pooled — this per-node
    // union list is rebuilt for every node of every level.
    let mut cols = workspace::take_idx(nd.len());
    match nd.children {
        None => cols.extend(nd.range()),
        Some((l, r)) => {
            let (ls, rs) = (skeletons[l].as_ref()?, skeletons[r].as_ref()?);
            cols.extend(ls.skeleton.iter().chain(rs.skeleton.iter()).copied());
        }
    };
    if cols.is_empty() {
        return None;
    }
    let rows = sample_rows(tree, nn, &cols, nd.begin, nd.end, node, config);
    if rows.is_empty() {
        return None; // nothing outside the node: cannot compress
    }
    // The sampled block is pooled storage (eval_block) and is consumed by
    // the ID, which recycles it along with its own scratch.
    let block = eval_block(kernel, tree.points(), &rows, &cols);
    let id = interp_decomp(block, config.tol, config.max_rank);
    if id.rank() == 0 {
        // Off-node interactions are numerically zero (tiny bandwidth):
        // an empty skeleton is valid — U V vanish for this node.
        return Some(NodeSkeleton {
            skeleton: Vec::new(),
            proj: kfds_la::Mat::zeros(0, cols.len()),
            sigma_est: Vec::new(),
        });
    }
    if config.adaptive_frontier && nd.children.is_some() && id.is_full_rank() {
        // α̃ = l̃ ∪ r̃: no compression happened; stop the recursion here
        // (paper §II-A "Level restriction").
        return None;
    }
    let skeleton: Vec<usize> = id.skeleton.iter().map(|&c| cols[c]).collect();
    Some(NodeSkeleton { skeleton, proj: id.proj, sigma_est: id.sigma_est })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kfds_kernels::Gaussian;
    use kfds_tree::datasets::{normal_embedded, uniform_cube};

    fn build(n: usize, m: usize, tol: f64, max_level: usize) -> SkeletonTree {
        let p = uniform_cube(n, 3, 7);
        let tree = BallTree::build(&p, m);
        let cfg = SkelConfig::default()
            .with_tol(tol)
            .with_max_rank(64)
            .with_neighbors(8)
            .with_max_level(max_level);
        skeletonize(tree, &Gaussian::new(1.0), cfg)
    }

    #[test]
    fn all_nonroot_nodes_skeletonized_without_restriction() {
        let st = build(256, 32, 1e-7, 1);
        assert!(st.is_fully_skeletonized());
        assert!(!st.is_skeletonized(st.tree().root()));
        // Frontier = children of the root.
        let (l, r) = st.tree().node(0).children.expect("root has children");
        let mut f = st.frontier().to_vec();
        f.sort_unstable();
        let mut want = vec![l, r];
        want.sort_unstable();
        assert_eq!(f, want);
    }

    #[test]
    fn level_restriction_respected() {
        let st = build(512, 32, 1e-5, 2);
        for (i, nd) in st.tree().nodes().iter().enumerate() {
            if nd.level < 2 {
                assert!(!st.is_skeletonized(i), "node {i} at level {} skeletonized", nd.level);
            } else {
                assert!(st.is_skeletonized(i));
            }
        }
        for &f in st.frontier() {
            assert_eq!(st.tree().node(f).level, 2);
        }
    }

    #[test]
    fn skeleton_points_belong_to_node() {
        let st = build(256, 32, 1e-5, 1);
        for (i, nd) in st.tree().nodes().iter().enumerate() {
            if let Some(sk) = st.skeleton(i) {
                for &s in &sk.skeleton {
                    assert!(nd.range().contains(&s), "skeleton point {s} outside node {i}");
                }
            }
        }
    }

    #[test]
    fn nested_property() {
        // An internal skeleton is a subset of the children's skeletons.
        let st = build(512, 32, 1e-4, 1);
        for (i, nd) in st.tree().nodes().iter().enumerate() {
            if let (Some(sk), Some((l, r))) = (st.skeleton(i), nd.children) {
                let union: std::collections::HashSet<usize> = st
                    .skeleton(l)
                    .into_iter()
                    .chain(st.skeleton(r))
                    .flat_map(|s| s.skeleton.iter().copied())
                    .collect();
                for &s in &sk.skeleton {
                    assert!(union.contains(&s), "node {i}: skeleton {s} not nested");
                }
            }
        }
    }

    #[test]
    fn low_intrinsic_dim_compresses() {
        // Points on a 2-D manifold in 8-D: ranks should saturate well below
        // the node sizes near the top.
        let p = normal_embedded(512, 2, 8, 0.01, 3);
        let tree = BallTree::build(&p, 32);
        let cfg = SkelConfig::default().with_tol(1e-4).with_max_rank(64).with_neighbors(8);
        let st = skeletonize(tree, &Gaussian::new(2.0), cfg);
        let stats = st.rank_stats();
        // Level-1 nodes hold 256 points but must be represented by <= 64
        // skeletons (and typically far fewer for a smooth kernel).
        let (_, _, max1) = stats[1];
        assert!(max1 <= 64);
        assert!(st.is_fully_skeletonized());
    }

    #[test]
    fn apply_p_roundtrip_shapes() {
        let st = build(128, 16, 1e-6, 1);
        let (l, _) = st.tree().node(0).children.expect("children");
        let sk = st.skeleton(l).expect("skeletonized");
        let z: Vec<f64> = (0..sk.rank()).map(|i| i as f64 * 0.1 + 1.0).collect();
        let x = st.apply_p(l, &z);
        assert_eq!(x.len(), st.tree().node(l).len());
        let y = st.apply_p_t(l, &x);
        assert_eq!(y.len(), sk.rank());
    }

    /// Serializes tests that flip the global CPQR / eval-path switches
    /// (same convention as the `POOL_TOGGLE` mutex in the la/kernels
    /// property tests).
    static SETUP_TOGGLE: std::sync::Mutex<()> = std::sync::Mutex::new(());

    /// RAII guard: forces the pre-BLAS-3 setup pipeline (unblocked CPQR +
    /// scalar block assembly) or the blocked one, restoring the prior
    /// state on drop (including on panic).
    struct SetupMode {
        prev_cpqr: bool,
        prev_eval: bool,
    }

    impl SetupMode {
        fn force(blocked: bool) -> Self {
            let prev_cpqr = kfds_la::cpqr::blocked_active();
            let prev_eval = kfds_kernels::gemm_eval_active();
            kfds_la::cpqr::set_cpqr_blocked(blocked);
            kfds_kernels::set_gemm_eval_enabled(blocked);
            SetupMode { prev_cpqr, prev_eval }
        }
    }

    impl Drop for SetupMode {
        fn drop(&mut self) {
            kfds_la::cpqr::set_cpqr_blocked(self.prev_cpqr);
            kfds_kernels::set_gemm_eval_enabled(self.prev_eval);
        }
    }

    #[test]
    fn blocked_path_preserves_invariants() {
        // The blocked RRQR + GEMM assembly must preserve the structural
        // guarantees of the construction: every non-root node skeletonized,
        // nested skeletons, skeleton points inside their node.
        let _guard = SETUP_TOGGLE.lock().unwrap();
        let _mode = SetupMode::force(true);
        let p = normal_embedded(512, 2, 8, 0.01, 5);
        let tree = BallTree::build(&p, 32);
        let cfg = SkelConfig::default()
            .with_tol(1e-5)
            .with_max_rank(96)
            .with_neighbors(8)
            .with_max_level(1);
        let st = skeletonize(tree, &Gaussian::new(1.5), cfg);
        assert!(st.is_fully_skeletonized());
        for (i, nd) in st.tree().nodes().iter().enumerate() {
            if let Some(sk) = st.skeleton(i) {
                for &s in &sk.skeleton {
                    assert!(nd.range().contains(&s), "skeleton point {s} outside node {i}");
                }
            }
            if let (Some(sk), Some((l, r))) = (st.skeleton(i), nd.children) {
                let union: std::collections::HashSet<usize> = st
                    .skeleton(l)
                    .into_iter()
                    .chain(st.skeleton(r))
                    .flat_map(|s| s.skeleton.iter().copied())
                    .collect();
                for &s in &sk.skeleton {
                    assert!(union.contains(&s), "node {i}: skeleton {s} not nested");
                }
            }
        }
    }

    #[test]
    fn blocked_and_unblocked_setup_agree() {
        // On a well-conditioned workload the blocked panel CPQR picks the
        // same pivots as the unblocked reference, and the GEMM-assembled
        // kernel blocks agree with the scalar ones to rounding — so the two
        // full pipelines must select identical skeletons and ranks.
        let _guard = SETUP_TOGGLE.lock().unwrap();
        let p = normal_embedded(512, 2, 8, 0.01, 9);
        let cfg = SkelConfig::default()
            .with_tol(1e-4)
            .with_max_rank(64)
            .with_neighbors(8)
            .with_max_level(1);
        let kernel = Gaussian::new(2.0);
        let st_blocked = {
            let _mode = SetupMode::force(true);
            skeletonize(BallTree::build(&p, 32), &kernel, cfg.clone())
        };
        let st_ref = {
            let _mode = SetupMode::force(false);
            skeletonize(BallTree::build(&p, 32), &kernel, cfg)
        };
        assert_eq!(st_blocked.is_fully_skeletonized(), st_ref.is_fully_skeletonized());
        for i in 0..st_ref.tree().nodes().len() {
            match (st_blocked.skeleton(i), st_ref.skeleton(i)) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert_eq!(a.rank(), b.rank(), "node {i}: rank mismatch");
                    assert_eq!(a.skeleton, b.skeleton, "node {i}: skeleton mismatch");
                }
                _ => panic!("node {i}: skeletonized under one path only"),
            }
        }
    }

    #[test]
    fn apply_p_matches_dense_composition() {
        // Explicitly build P_{α α̃} for a level-1 node by composing the
        // stored projections and compare with apply_p on basis vectors.
        let st = build(128, 16, 0.0, 1); // tol 0: full-rank IDs, exact
        let tree = st.tree();
        let (l, _) = tree.node(0).children.expect("children");
        let sk = st.skeleton(l).expect("skeletonized");
        let s = sk.rank();
        let nl = tree.node(l).len();
        // Column k of P_{α α̃} via apply_p(e_k).
        let mut dense = kfds_la::Mat::zeros(nl, s);
        for k in 0..s {
            let mut e = vec![0.0; s];
            e[k] = 1.0;
            let col = st.apply_p(l, &e);
            dense.col_mut(k).copy_from_slice(&col);
        }
        // P has identity rows at the skeleton positions: P_{α α̃} restricted
        // to skeleton rows is the identity.
        let begin = tree.node(l).begin;
        for (k, &gs) in sk.skeleton.iter().enumerate() {
            for kk in 0..s {
                let want = if kk == k { 1.0 } else { 0.0 };
                let got = dense[(gs - begin, kk)];
                assert!((got - want).abs() < 1e-8, "({k},{kk}): {got}");
            }
        }
    }
}
