//! Row sampling for the skeletonization IDs.
//!
//! Skeletonizing node `α` requires an ID of `K_{S α}` with `S` everything
//! outside `α` — `O(N)` rows. ASKIT samples a small `S'` instead (§II-A):
//! the `κ` nearest neighbors of the ID's column points that fall outside
//! `α` (they dominate the near-field interactions, the hardest part to
//! compress), topped up with uniform samples for the far field.

use crate::config::SkelConfig;
use kfds_tree::{BallTree, NeighborLists};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Samples rows `S'` for the skeletonization of the node owning
/// `begin..end`, given the ID column points `cols` (permuted positions).
///
/// Returns a deduplicated list of permuted positions outside `[begin, end)`
/// of size at most `cols.len() + config.oversample` (fewer if the
/// complement is smaller).
pub fn sample_rows(
    tree: &BallTree,
    nn: &NeighborLists,
    cols: &[usize],
    begin: usize,
    end: usize,
    node_index: usize,
    config: &SkelConfig,
) -> Vec<usize> {
    let n = tree.points().len();
    let outside = n - (end - begin);
    let target = (cols.len() + config.oversample).min(outside);
    let mut seen = vec![false; n];
    let mut rows = Vec::with_capacity(target);

    // Near-field rows: neighbors of the column points that land outside α.
    'outer: for &c in cols {
        for &j in nn.neighbors(c).iter().take(config.neighbors) {
            let j = j as usize;
            if (j < begin || j >= end) && !seen[j] {
                seen[j] = true;
                rows.push(j);
                if rows.len() >= target {
                    break 'outer;
                }
            }
        }
    }

    // Far-field rows: uniform over the complement, deterministic per node.
    let mut rng =
        StdRng::seed_from_u64(config.seed ^ (node_index as u64).wrapping_mul(0x9e3779b97f4a7c15));
    let mut attempts = 0usize;
    while rows.len() < target && attempts < 64 * target + 64 {
        attempts += 1;
        let j = rng.gen_range(0..n);
        if (j < begin || j >= end) && !seen[j] {
            seen[j] = true;
            rows.push(j);
        }
    }
    // Rejection sampling can stall when the complement is almost exhausted;
    // finish with a linear sweep.
    if rows.len() < target {
        for j in (0..begin).chain(end..n) {
            if !seen[j] {
                seen[j] = true;
                rows.push(j);
                if rows.len() >= target {
                    break;
                }
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use kfds_tree::datasets::uniform_cube;
    use kfds_tree::knn_all;

    fn setup(n: usize) -> (BallTree, NeighborLists) {
        let p = uniform_cube(n, 3, 42);
        let t = BallTree::build(&p, 8);
        let nn = knn_all(&t, 4);
        (t, nn)
    }

    #[test]
    fn rows_outside_node_and_unique() {
        let (t, nn) = setup(128);
        let cfg = SkelConfig::default().with_neighbors(4);
        let cols: Vec<usize> = (16..32).collect();
        let rows = sample_rows(&t, &nn, &cols, 16, 32, 3, &cfg);
        let mut seen = std::collections::HashSet::new();
        for &r in &rows {
            assert!(!(16..32).contains(&r), "row {r} inside the node");
            assert!(seen.insert(r), "duplicate row {r}");
        }
        assert_eq!(rows.len(), (cols.len() + cfg.oversample).min(112));
    }

    #[test]
    fn small_complement_returns_everything() {
        let (t, nn) = setup(64);
        let cfg = SkelConfig::default();
        let cols: Vec<usize> = (0..60).collect();
        let rows = sample_rows(&t, &nn, &cols, 0, 60, 1, &cfg);
        assert_eq!(rows.len(), 4);
        let mut sorted = rows.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![60, 61, 62, 63]);
    }

    #[test]
    fn deterministic_given_seed_and_node() {
        let (t, nn) = setup(128);
        let cfg = SkelConfig::default();
        let cols: Vec<usize> = (0..16).collect();
        let a = sample_rows(&t, &nn, &cols, 0, 16, 5, &cfg);
        let b = sample_rows(&t, &nn, &cols, 0, 16, 5, &cfg);
        assert_eq!(a, b);
        let c = sample_rows(&t, &nn, &cols, 0, 16, 6, &cfg);
        assert_ne!(a, c); // different node index reseeds the far field
    }

    #[test]
    fn includes_near_neighbors() {
        let (t, nn) = setup(256);
        let cfg = SkelConfig::default().with_neighbors(4).with_seed(1);
        let cols: Vec<usize> = (0..8).collect();
        let rows = sample_rows(&t, &nn, &cols, 0, 8, 0, &cfg);
        // Every outside-neighbor of a column point must be sampled (target
        // is large enough here).
        for &c in &cols {
            for &j in nn.neighbors(c).iter().take(4) {
                let j = j as usize;
                if j >= 8 {
                    assert!(rows.contains(&j), "neighbor {j} of {c} missing");
                }
            }
        }
    }
}
