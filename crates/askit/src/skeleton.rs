//! Skeleton storage and the nested projection operators.
//!
//! A skeletonized node `α` stores its skeleton points `α̃` (a subset of the
//! node's points, `s` of them) and the ID projection `P_{α̃ α}` — for a
//! leaf against the node's own points, for an internal node against the
//! concatenated children skeletons `[l̃ r̃]` (the *nested* basis that makes
//! the whole scheme `O(N log N)`). The full `|α| x s` projection
//! `P_{α α̃}` is never materialized; [`SkeletonTree::apply_p`] telescopes
//! it through the subtree on the fly.

use crate::config::SkelConfig;
use kfds_la::blas2::{gemv, gemv_t};
use kfds_la::Mat;
use kfds_tree::BallTree;

/// Skeleton data of one tree node.
#[derive(Clone, Debug)]
pub struct NodeSkeleton {
    /// Skeleton points `α̃` as permuted positions (size `s`).
    pub skeleton: Vec<usize>,
    /// Projection `P_{α̃ α}` (`s x |α|` for leaves) or `P_{α̃ [l̃r̃]}`
    /// (`s x (s_l + s_r)` for internal nodes).
    pub proj: Mat,
    /// RRQR diagonal estimates of the leading singular values.
    pub sigma_est: Vec<f64>,
}

impl NodeSkeleton {
    /// The skeleton size `s`.
    pub fn rank(&self) -> usize {
        self.skeleton.len()
    }
}

/// A ball tree with per-node skeletons — the hierarchical representation of
/// the kernel matrix that both the treecode matvec and the direct solver
/// consume.
#[derive(Clone, Debug)]
pub struct SkeletonTree {
    tree: BallTree,
    skeletons: Vec<Option<NodeSkeleton>>,
    /// Skeletonization frontier `A`: skeletonized nodes whose parent is not.
    frontier: Vec<usize>,
    config: SkelConfig,
}

impl SkeletonTree {
    /// Assembles a skeleton tree from parts (used by the builder in
    /// [`crate::skeletonize`]).
    pub(crate) fn new(
        tree: BallTree,
        skeletons: Vec<Option<NodeSkeleton>>,
        config: SkelConfig,
    ) -> Self {
        assert_eq!(tree.nodes().len(), skeletons.len());
        let mut frontier = Vec::new();
        for (i, sk) in skeletons.iter().enumerate() {
            if sk.is_some() {
                let parent_skel =
                    tree.node(i).parent.map(|p| skeletons[p].is_some()).unwrap_or(false);
                if !parent_skel {
                    frontier.push(i);
                }
            }
        }
        SkeletonTree { tree, skeletons, frontier, config }
    }

    /// The underlying ball tree.
    #[inline]
    pub fn tree(&self) -> &BallTree {
        &self.tree
    }

    /// The skeletonization configuration used to build this tree.
    #[inline]
    pub fn config(&self) -> &SkelConfig {
        &self.config
    }

    /// Skeleton of node `i`, if it was skeletonized.
    #[inline]
    pub fn skeleton(&self, i: usize) -> Option<&NodeSkeleton> {
        self.skeletons[i].as_ref()
    }

    /// `true` if node `i` carries a skeleton.
    #[inline]
    pub fn is_skeletonized(&self, i: usize) -> bool {
        self.skeletons[i].is_some()
    }

    /// The skeletonization frontier `A` (paper Fig. 2): skeletonized nodes
    /// whose parent is not skeletonized.
    #[inline]
    pub fn frontier(&self) -> &[usize] {
        &self.frontier
    }

    /// `true` when every node except the root is skeletonized — the
    /// precondition for the full direct factorization (no level
    /// restriction in effect).
    pub fn is_fully_skeletonized(&self) -> bool {
        (1..self.tree.nodes().len()).all(|i| self.is_skeletonized(i))
    }

    /// The maximal skeletonized nodes under `node` (inclusive): `node`
    /// itself if skeletonized, otherwise the union over children. Leaves
    /// that are not skeletonized are returned in the second list (their
    /// interactions must stay exact).
    pub fn coverage(&self, node: usize) -> (Vec<usize>, Vec<usize>) {
        let mut skel = Vec::new();
        let mut exact = Vec::new();
        self.coverage_rec(node, &mut skel, &mut exact);
        (skel, exact)
    }

    fn coverage_rec(&self, node: usize, skel: &mut Vec<usize>, exact: &mut Vec<usize>) {
        if self.is_skeletonized(node) {
            skel.push(node);
        } else if let Some((l, r)) = self.tree.node(node).children {
            self.coverage_rec(l, skel, exact);
            self.coverage_rec(r, skel, exact);
        } else {
            exact.push(node);
        }
    }

    /// Applies the telescoped projection `P_{α α̃}` (`|α| x s`) to `z`
    /// (`len s`), recursing through the nested children bases.
    ///
    /// # Panics
    /// Panics if `node` is not skeletonized or `z.len() != s`.
    pub fn apply_p(&self, node: usize, z: &[f64]) -> Vec<f64> {
        let sk = self.skeleton(node).expect("apply_p on unskeletonized node");
        assert_eq!(z.len(), sk.rank(), "apply_p: skeleton weight length mismatch");
        // y = P_{α̃ col-basis}^T z.
        let mut y = vec![0.0; sk.proj.ncols()];
        gemv_t(1.0, sk.proj.rb(), z, 0.0, &mut y);
        match self.tree.node(node).children {
            None => y, // leaf: the column basis is the node's own points
            Some((l, r)) => {
                let sl = self.skeleton(l).expect("child skeleton missing").rank();
                let mut out = self.apply_p(l, &y[..sl]);
                out.extend(self.apply_p(r, &y[sl..]));
                out
            }
        }
    }

    /// Applies the transposed telescoped projection `P_{α̃ α}` (`s x |α|`)
    /// to `x` (`len |α|`).
    ///
    /// # Panics
    /// Panics if `node` is not skeletonized or `x.len() != |α|`.
    pub fn apply_p_t(&self, node: usize, x: &[f64]) -> Vec<f64> {
        let sk = self.skeleton(node).expect("apply_p_t on unskeletonized node");
        let nd = self.tree.node(node);
        assert_eq!(x.len(), nd.len(), "apply_p_t: point vector length mismatch");
        let y: Vec<f64> = match nd.children {
            None => x.to_vec(),
            Some((l, r)) => {
                let nl = self.tree.node(l).len();
                let mut y = self.apply_p_t(l, &x[..nl]);
                y.extend(self.apply_p_t(r, &x[nl..]));
                y
            }
        };
        let mut out = vec![0.0; sk.rank()];
        gemv(1.0, sk.proj.rb(), &y, 0.0, &mut out);
        out
    }

    /// Total number of stored skeleton points across all nodes.
    pub fn total_skeleton_size(&self) -> usize {
        self.skeletons.iter().flatten().map(|s| s.rank()).sum()
    }

    /// Per-level `(min, mean, max)` skeleton ranks, for reports.
    pub fn rank_stats(&self) -> Vec<(usize, f64, usize)> {
        let depth = self.tree.depth();
        let mut out = Vec::with_capacity(depth + 1);
        for l in 0..=depth {
            let ranks: Vec<usize> = self
                .tree
                .nodes_at_level(l)
                .iter()
                .filter_map(|&i| self.skeleton(i).map(|s| s.rank()))
                .collect();
            if ranks.is_empty() {
                out.push((0, 0.0, 0));
            } else {
                let mn = *ranks.iter().min().expect("non-empty");
                let mx = *ranks.iter().max().expect("non-empty");
                let mean = ranks.iter().sum::<usize>() as f64 / ranks.len() as f64;
                out.push((mn, mean, mx));
            }
        }
        out
    }
}
