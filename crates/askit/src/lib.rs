//! # kfds-askit — ASKIT-style hierarchical skeletonization
//!
//! Re-implementation of the construction phase the fast direct solver
//! builds on (March, Xiao & Biros \[21\]–\[23\], as summarized in §II-A of the
//! paper): a ball tree orders the kernel matrix; each node is compressed by
//! an interpolative decomposition of a *sampled* off-node block (nearest
//! neighbors for the near field + uniform samples for the far field); the
//! internal-node IDs act on the children's skeletons, giving the nested
//! basis that makes factorization and matvec `O(N log N)`.
//!
//! The crate also provides the treecode matvec `u ↦ (λI + K̃)u` in the
//! same symmetric form (eq. 6) the factorization uses — the factorization
//! must invert exactly this operator, which the tests verify.

#![forbid(unsafe_code)]

pub mod config;
pub mod evaluate;
pub mod matvec;
pub mod sampling;
pub mod skeleton;
pub mod skeletonize;

pub use config::SkelConfig;
pub use evaluate::TreecodeEvaluator;
pub use matvec::{approx_error_estimate, exact_matvec, hier_matvec};
pub use skeleton::{NodeSkeleton, SkeletonTree};
pub use skeletonize::{compute_neighbors, skeletonize, skeletonize_with_neighbors};
