//! Treecode evaluation at out-of-sample points.
//!
//! Given trained weights `w`, predictions need `K(x, X) w` for new points
//! `x` — `O(Nd)` each if done directly. ASKIT's skeletons give a treecode:
//! precompute nested *skeleton weights* `w̃_α = P_{α̃α} w_α` bottom-up,
//! then evaluate by descending the ball tree and summing
//! `Σ_j K(x, x_{α̃_j}) w̃_j` for nodes far enough from `x` (the
//! multipole-acceptance criterion), recursing otherwise. This is the
//! prediction path of the paper's learning setup:
//! `sign(K(x, X) w)` (§IV).

use crate::skeleton::SkeletonTree;
use kfds_kernels::Kernel;
use kfds_la::blas2::gemv;
use kfds_tree::points::sq_dist;
use rayon::prelude::*;

/// A treecode evaluator for `x ↦ K(x, X) w`.
pub struct TreecodeEvaluator<'a, K: Kernel> {
    st: &'a SkeletonTree,
    kernel: &'a K,
    /// Weights in permuted order.
    w: Vec<f64>,
    /// Skeleton weights `w̃_α` per node (None where unskeletonized).
    skel_weights: Vec<Option<Vec<f64>>>,
    /// Multipole acceptance: a node is evaluated through its skeleton when
    /// `radius <= theta * dist(x, center)`. `theta = 0` forces exact
    /// evaluation everywhere.
    theta: f64,
}

impl<'a, K: Kernel> TreecodeEvaluator<'a, K> {
    /// Builds the evaluator: computes nested skeleton weights bottom-up
    /// (`O(s²)` per internal node, `O(s m)` per leaf).
    ///
    /// `w` is in the tree's *permuted* order; `theta ∈ [0, 1)` trades
    /// speed for accuracy.
    ///
    /// # Panics
    /// Panics if `w.len()` differs from the point count.
    pub fn new(st: &'a SkeletonTree, kernel: &'a K, w: Vec<f64>, theta: f64) -> Self {
        let tree = st.tree();
        assert_eq!(w.len(), tree.points().len(), "weight length mismatch");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0, 1)");
        let n_nodes = tree.nodes().len();
        let mut skel_weights: Vec<Option<Vec<f64>>> = (0..n_nodes).map(|_| None).collect();
        for level in (0..=tree.depth()).rev() {
            for &i in tree.nodes_at_level(level) {
                let Some(sk) = st.skeleton(i) else { continue };
                let nd = tree.node(i);
                let input: Vec<f64> = match nd.children {
                    None => w[nd.range()].to_vec(),
                    Some((l, r)) => {
                        let (Some(wl), Some(wr)) = (&skel_weights[l], &skel_weights[r]) else {
                            continue; // child unskeletonized: no nested basis
                        };
                        wl.iter().chain(wr.iter()).copied().collect()
                    }
                };
                if input.len() != sk.proj.ncols() {
                    continue;
                }
                let mut out = vec![0.0; sk.rank()];
                gemv(1.0, sk.proj.rb(), &input, 0.0, &mut out);
                skel_weights[i] = Some(out);
            }
        }
        TreecodeEvaluator { st, kernel, w, skel_weights, theta }
    }

    /// Evaluates `K(x, X) w` for one query point.
    pub fn evaluate(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.st.tree().points().dim(), "query dimension mismatch");
        self.eval_node(self.st.tree().root(), x)
    }

    /// Evaluates a batch of query points in parallel.
    pub fn evaluate_batch(&self, queries: &kfds_tree::PointSet) -> Vec<f64> {
        (0..queries.len()).into_par_iter().map(|i| self.evaluate(queries.point(i))).collect()
    }

    fn eval_node(&self, node: usize, x: &[f64]) -> f64 {
        let tree = self.st.tree();
        let nd = tree.node(node);
        let pts = tree.points();
        // Multipole acceptance criterion: far-away nodes go through the
        // skeleton approximation.
        if self.theta > 0.0 {
            if let (Some(sk), Some(sw)) = (self.st.skeleton(node), &self.skel_weights[node]) {
                let dist = sq_dist(x, &nd.center).sqrt();
                if nd.radius <= self.theta * dist {
                    let mut s = 0.0;
                    for (j, &p) in sk.skeleton.iter().enumerate() {
                        s += self.kernel.eval(x, pts.point(p)) * sw[j];
                    }
                    return s;
                }
            }
        }
        match nd.children {
            None => {
                // Near leaf: exact.
                let mut s = 0.0;
                for i in nd.range() {
                    s += self.kernel.eval(x, pts.point(i)) * self.w[i];
                }
                s
            }
            Some((l, r)) => self.eval_node(l, x) + self.eval_node(r, x),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SkelConfig;
    use crate::skeletonize::skeletonize;
    use kfds_kernels::Gaussian;
    use kfds_tree::datasets::normal_embedded;
    use kfds_tree::BallTree;

    fn setup() -> (SkeletonTree, Gaussian, Vec<f64>) {
        let pts = normal_embedded(512, 2, 6, 0.05, 23);
        let tree = BallTree::build(&pts, 32);
        let kernel = Gaussian::new(2.0);
        let st = skeletonize(
            tree,
            &kernel,
            SkelConfig::default().with_tol(1e-8).with_max_rank(128).with_neighbors(12),
        );
        let w: Vec<f64> = (0..512).map(|i| ((i as f64) * 0.13).sin()).collect();
        (st, kernel, w)
    }

    fn exact_eval(st: &SkeletonTree, kernel: &Gaussian, w: &[f64], x: &[f64]) -> f64 {
        let pts = st.tree().points();
        (0..pts.len()).map(|i| kernel.eval(x, pts.point(i)) * w[i]).sum()
    }

    #[test]
    fn theta_zero_is_exact() {
        let (st, kernel, w) = setup();
        let ev = TreecodeEvaluator::new(&st, &kernel, w.clone(), 0.0);
        let x = [0.3, -0.5, 0.1, 0.0, 0.7, -0.2];
        let got = ev.evaluate(&x);
        let want = exact_eval(&st, &kernel, &w, &x);
        assert!((got - want).abs() < 1e-12 * want.abs().max(1.0));
    }

    #[test]
    fn small_theta_accurate() {
        let (st, kernel, w) = setup();
        let ev = TreecodeEvaluator::new(&st, &kernel, w.clone(), 0.5);
        let queries = normal_embedded(20, 2, 6, 0.05, 99);
        let mut max_rel = 0.0f64;
        for i in 0..queries.len() {
            let x = queries.point(i);
            let got = ev.evaluate(x);
            let want = exact_eval(&st, &kernel, &w, x);
            max_rel = max_rel.max((got - want).abs() / want.abs().max(1e-6));
        }
        assert!(max_rel < 1e-3, "treecode error {max_rel}");
    }

    #[test]
    fn batch_matches_single() {
        let (st, kernel, w) = setup();
        let ev = TreecodeEvaluator::new(&st, &kernel, w, 0.4);
        let queries = normal_embedded(10, 2, 6, 0.05, 7);
        let batch = ev.evaluate_batch(&queries);
        for (i, b) in batch.iter().enumerate() {
            assert_eq!(*b, ev.evaluate(queries.point(i)));
        }
    }

    #[test]
    fn accuracy_improves_as_theta_shrinks() {
        let (st, kernel, w) = setup();
        let x = [0.2, 0.4, -0.3, 0.6, -0.1, 0.5];
        let want = exact_eval(&st, &kernel, &w, &x);
        let mut prev_err = f64::INFINITY;
        for theta in [0.9, 0.5, 0.2] {
            let ev = TreecodeEvaluator::new(&st, &kernel, w.clone(), theta);
            let err = (ev.evaluate(&x) - want).abs();
            assert!(err <= prev_err * 10.0 + 1e-12, "theta {theta}: {err} vs {prev_err}");
            prev_err = prev_err.min(err);
        }
        assert!(prev_err < 1e-4 * want.abs().max(1.0));
    }
}
