//! Lock-rank discipline: ranked wrappers over the std sync primitives.
//!
//! Every lock in the concurrent tier (`kfds-serve`, `kfds-shard`,
//! `kfds-rt`) carries a [`LockRank`] drawn from one global, totally
//! ordered registry — the concurrency analogue of the PR 8 tag-namespace
//! registry in [`crate::tags`]. The discipline is the classic
//! lock-hierarchy rule: a thread may only acquire a lock whose rank is
//! **strictly greater** than every rank it already holds. Any program
//! that obeys the rule on every thread cannot deadlock on these locks
//! (a wait-for cycle would need some edge to go from a higher rank to a
//! lower-or-equal one).
//!
//! The rule is enforced twice:
//! * **statically** — `cargo run -p xtask -- lint` (`rule_lock_discipline`)
//!   bans raw `Mutex`/`RwLock`/`Condvar` in the three crates and flags
//!   textually nested `.lock()` acquisitions whose ranks (looked up from
//!   [`FIELD_RANKS`]) are non-increasing;
//! * **dynamically** — in debug builds every acquisition is checked
//!   against a thread-local stack of held ranks and panics with
//!   `"lock-rank inversion"` on violation (exercised by the loom and
//!   TSan lanes). Release builds compile the checker out entirely.
//!
//! The wrappers are poison-recovering (like the `parking_lot` shim they
//! replace): a panic while holding a guard does not poison the data for
//! every later user — the serve tier's `catch_unwind` + quarantine
//! containment owns panic recovery at a higher level.

use std::sync::{self, PoisonError, WaitTimeoutResult};
use std::time::Duration;

/// The global lock ordering. Acquisitions on one thread must be strictly
/// increasing in this order; the variant order *is* the lock hierarchy,
/// so insert new locks where they belong and never reorder existing
/// variants without auditing every nesting site.
///
/// The real nesting edges this order encodes (holder → acquiree):
/// * serve shutdown fulfills response cells while draining the queue
///   (`ServeQueue` → `ServeSlot`);
/// * a factor-cache build runs the setup cache single-flight
///   (`FactorCache` → `SetupCache` — both locks are only held for map
///   bookkeeping, builders run unlocked);
/// * the shard router serializes its data plane across the owner-cache
///   lookup and the scatter/gather over rank mailboxes
///   (`RouterDataPlane` → `ShardPartitionCache`, `RouterDataPlane` →
///   `RtMailbox`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum LockRank {
    /// Serve-tier request queue (`Shared.queue` in `kfds-serve`).
    ServeQueue = 0,
    /// Per-request response slot (`ResponseCell.slot`).
    ServeSlot = 1,
    /// Serve-tier metrics (`ServeMetrics.factor_levels`).
    ServeMetrics = 2,
    /// Factorization single-flight cache state.
    FactorCache = 3,
    /// λ-free setup single-flight cache state.
    SetupCache = 4,
    /// Shard router control plane (worker join handles).
    RouterControl = 5,
    /// Shard router data plane (endpoint + in-flight serialization).
    RouterDataPlane = 6,
    /// Per-shard partitioned-factor caches (owner and worker-local).
    ShardPartitionCache = 7,
    /// Per-request shard outcome (error slots).
    ShardOutcome = 8,
    /// Runtime per-rank mailbox (`WorldState.mailboxes` in `kfds-rt`).
    RtMailbox = 9,
}

impl LockRank {
    /// Every rank, in hierarchy order (lowest first).
    pub const ALL: &'static [LockRank] = &[
        LockRank::ServeQueue,
        LockRank::ServeSlot,
        LockRank::ServeMetrics,
        LockRank::FactorCache,
        LockRank::SetupCache,
        LockRank::RouterControl,
        LockRank::RouterDataPlane,
        LockRank::ShardPartitionCache,
        LockRank::ShardOutcome,
        LockRank::RtMailbox,
    ];

    /// Stable name for docs and diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            LockRank::ServeQueue => "ServeQueue",
            LockRank::ServeSlot => "ServeSlot",
            LockRank::ServeMetrics => "ServeMetrics",
            LockRank::FactorCache => "FactorCache",
            LockRank::SetupCache => "SetupCache",
            LockRank::RouterControl => "RouterControl",
            LockRank::RouterDataPlane => "RouterDataPlane",
            LockRank::ShardPartitionCache => "ShardPartitionCache",
            LockRank::ShardOutcome => "ShardOutcome",
            LockRank::RtMailbox => "RtMailbox",
        }
    }
}

/// Receiver-field-name → rank table for the static analyzer.
///
/// `rule_lock_discipline` resolves the rank of a textual `.lock()` call
/// from the field identifier it is invoked on (`self.plane.lock()` →
/// `plane` → `RouterDataPlane`); this table is the single source of
/// truth it consults, so a field rename or re-ranking is a one-line
/// change here and the lint follows. Fields whose rank is per-instance
/// (the generic single-flight cache's `state`) are deliberately absent —
/// the runtime checker covers them.
pub const FIELD_RANKS: &[(&str, LockRank)] = &[
    ("queue", LockRank::ServeQueue),
    ("slot", LockRank::ServeSlot),
    ("factor_levels", LockRank::ServeMetrics),
    ("workers", LockRank::RouterControl),
    ("plane", LockRank::RouterDataPlane),
    ("errs", LockRank::ShardOutcome),
    ("mailboxes", LockRank::RtMailbox),
];

/// Debug-build thread-local stack of held ranks. Release builds compile
/// the bodies out; the functions stay so call sites need no cfg.
mod held {
    #[cfg(debug_assertions)]
    use std::cell::RefCell;

    use super::LockRank;

    #[cfg(debug_assertions)]
    thread_local! {
        static STACK: RefCell<Vec<LockRank>> = const { RefCell::new(Vec::new()) };
    }

    /// Checks `rank` against every held rank and records the acquisition.
    /// Runs *before* blocking on the underlying primitive so an inversion
    /// panics loudly instead of deadlocking quietly.
    pub(super) fn acquire(rank: LockRank) {
        #[cfg(debug_assertions)]
        {
            // try_with: guards dropped during thread teardown must not
            // re-panic after the TLS slot is gone.
            let _ = STACK.try_with(|s| {
                let mut s = s.borrow_mut();
                if let Some(&worst) = s.iter().max() {
                    assert!(
                        worst < rank,
                        "lock-rank inversion: acquiring {} (rank {}) while holding {} (rank {}); \
                         acquisitions must be strictly increasing in kfds_rt::sync::LockRank order",
                        rank.name(),
                        rank as u8,
                        worst.name(),
                        worst as u8,
                    );
                }
                s.push(rank);
            });
        }
        #[cfg(not(debug_assertions))]
        let _ = rank;
    }

    /// Removes one held entry of `rank` (guards may drop out of order).
    pub(super) fn release(rank: LockRank) {
        #[cfg(debug_assertions)]
        {
            let _ = STACK.try_with(|s| {
                let mut s = s.borrow_mut();
                if let Some(i) = s.iter().rposition(|&r| r == rank) {
                    s.remove(i);
                }
            });
        }
        #[cfg(not(debug_assertions))]
        let _ = rank;
    }

    /// Snapshot of this thread's held ranks (debug builds; empty in
    /// release). Exposed for the discipline's own tests.
    #[cfg(debug_assertions)]
    pub(super) fn snapshot() -> Vec<LockRank> {
        STACK.try_with(|s| s.borrow().clone()).unwrap_or_default()
    }
}

/// This thread's currently held ranks, innermost last (always empty in
/// release builds, where the checker is compiled out).
pub fn held_ranks() -> Vec<LockRank> {
    #[cfg(debug_assertions)]
    {
        held::snapshot()
    }
    #[cfg(not(debug_assertions))]
    {
        Vec::new()
    }
}

/// A mutex that participates in the lock-rank discipline.
///
/// Non-poisoning: a panic while the guard is held leaves the data
/// accessible (panic containment lives in the serve tier's
/// `catch_unwind` + quarantine, not in lock poisoning).
pub struct RankedMutex<T: ?Sized> {
    rank: LockRank,
    inner: sync::Mutex<T>,
}

impl<T> RankedMutex<T> {
    /// Creates a mutex holding `value` at `rank`.
    pub const fn new(rank: LockRank, value: T) -> Self {
        Self { rank, inner: sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RankedMutex<T> {
    /// Acquires the lock, checking the rank discipline first (debug
    /// builds panic on inversion before blocking).
    pub fn lock(&self) -> RankedMutexGuard<'_, T> {
        held::acquire(self.rank);
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        RankedMutexGuard { rank: self.rank, inner: Some(inner) }
    }

    /// The rank this mutex was constructed with.
    pub fn rank(&self) -> LockRank {
        self.rank
    }
}

impl<T: ?Sized> std::fmt::Debug for RankedMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RankedMutex").field("rank", &self.rank).finish_non_exhaustive()
    }
}

/// Guard for [`RankedMutex`]; pops the rank from the held stack on drop.
pub struct RankedMutexGuard<'a, T: ?Sized> {
    rank: LockRank,
    // Option so the condvar wait path can hand the inner guard to
    // `Condvar::wait` without running this type's release-on-drop.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for RankedMutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // PANIC-OK: `inner` is only None transiently inside wait()/drop(),
        // where no borrow of the guard can exist.
        self.inner.as_deref().expect("guard accessed after release")
    }
}

impl<T: ?Sized> std::ops::DerefMut for RankedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // PANIC-OK: same transient-None invariant as Deref.
        self.inner.as_deref_mut().expect("guard accessed after release")
    }
}

impl<T: ?Sized> Drop for RankedMutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            drop(inner); // unlock first, then un-record the rank
            held::release(self.rank);
        }
    }
}

/// A condition variable paired with [`RankedMutex`] guards.
///
/// `wait`/`wait_timeout` un-record the guard's rank while the thread is
/// parked (the mutex really is released) and re-record it at wakeup,
/// re-checking the discipline against whatever the thread still holds.
pub struct RankedCondvar {
    inner: sync::Condvar,
}

impl RankedCondvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self { inner: sync::Condvar::new() }
    }

    /// Blocks until notified, releasing and reacquiring the guard.
    pub fn wait<'a, T>(&self, mut guard: RankedMutexGuard<'a, T>) -> RankedMutexGuard<'a, T> {
        let rank = guard.rank;
        // PANIC-OK: a live guard always has its inner Some; only this
        // module can take it.
        let inner = guard.inner.take().expect("waiting on a released guard");
        held::release(rank);
        let inner = self.inner.wait(inner).unwrap_or_else(PoisonError::into_inner);
        held::acquire(rank);
        RankedMutexGuard { rank, inner: Some(inner) }
    }

    /// Blocks until notified or `dur` elapses.
    pub fn wait_timeout<'a, T>(
        &self,
        mut guard: RankedMutexGuard<'a, T>,
        dur: Duration,
    ) -> (RankedMutexGuard<'a, T>, WaitTimeoutResult) {
        let rank = guard.rank;
        // PANIC-OK: same live-guard invariant as wait().
        let inner = guard.inner.take().expect("waiting on a released guard");
        held::release(rank);
        let (inner, timed_out) =
            self.inner.wait_timeout(inner, dur).unwrap_or_else(PoisonError::into_inner);
        held::acquire(rank);
        (RankedMutexGuard { rank, inner: Some(inner) }, timed_out)
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for RankedCondvar {
    fn default() -> Self {
        Self::new()
    }
}

/// A reader-writer lock that participates in the lock-rank discipline.
/// Both read and write acquisitions record the same rank — two reads of
/// the same rank on one thread are an inversion under the strict order,
/// which is deliberate (same-thread read reentrancy can still deadlock
/// against a queued writer).
pub struct RankedRwLock<T: ?Sized> {
    rank: LockRank,
    inner: sync::RwLock<T>,
}

impl<T> RankedRwLock<T> {
    /// Creates a lock holding `value` at `rank`.
    pub const fn new(rank: LockRank, value: T) -> Self {
        Self { rank, inner: sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RankedRwLock<T> {
    /// Acquires shared read access under the rank discipline.
    pub fn read(&self) -> RankedReadGuard<'_, T> {
        held::acquire(self.rank);
        let inner = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        RankedReadGuard { rank: self.rank, inner: Some(inner) }
    }

    /// Acquires exclusive write access under the rank discipline.
    pub fn write(&self) -> RankedWriteGuard<'_, T> {
        held::acquire(self.rank);
        let inner = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        RankedWriteGuard { rank: self.rank, inner: Some(inner) }
    }

    /// The rank this lock was constructed with.
    pub fn rank(&self) -> LockRank {
        self.rank
    }
}

impl<T: ?Sized> std::fmt::Debug for RankedRwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RankedRwLock").field("rank", &self.rank).finish_non_exhaustive()
    }
}

/// Shared guard for [`RankedRwLock`].
pub struct RankedReadGuard<'a, T: ?Sized> {
    rank: LockRank,
    inner: Option<sync::RwLockReadGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for RankedReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // PANIC-OK: `inner` is only None transiently inside drop().
        self.inner.as_deref().expect("guard accessed after release")
    }
}

impl<T: ?Sized> Drop for RankedReadGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            drop(inner);
            held::release(self.rank);
        }
    }
}

/// Exclusive guard for [`RankedRwLock`].
pub struct RankedWriteGuard<'a, T: ?Sized> {
    rank: LockRank,
    inner: Option<sync::RwLockWriteGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for RankedWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // PANIC-OK: `inner` is only None transiently inside drop().
        self.inner.as_deref().expect("guard accessed after release")
    }
}

impl<T: ?Sized> std::ops::DerefMut for RankedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // PANIC-OK: same transient-None invariant as Deref.
        self.inner.as_deref_mut().expect("guard accessed after release")
    }
}

impl<T: ?Sized> Drop for RankedWriteGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            drop(inner);
            held::release(self.rank);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn registry_is_strictly_ordered_and_named() {
        for w in LockRank::ALL.windows(2) {
            assert!(w[0] < w[1], "{} must rank below {}", w[0].name(), w[1].name());
        }
        for (field, rank) in FIELD_RANKS {
            assert!(!field.is_empty());
            assert!(LockRank::ALL.contains(rank));
        }
    }

    #[test]
    fn increasing_acquisitions_are_allowed() {
        let a = RankedMutex::new(LockRank::ServeQueue, 1u32);
        let b = RankedMutex::new(LockRank::FactorCache, 2u32);
        let c = RankedMutex::new(LockRank::RtMailbox, 3u32);
        let ga = a.lock();
        let gb = b.lock();
        let gc = c.lock();
        assert_eq!(*ga + *gb + *gc, 6);
        #[cfg(debug_assertions)]
        assert_eq!(
            held_ranks(),
            vec![LockRank::ServeQueue, LockRank::FactorCache, LockRank::RtMailbox]
        );
    }

    #[test]
    fn sequential_reacquisition_is_allowed() {
        let m = RankedMutex::new(LockRank::RouterDataPlane, 0u32);
        for i in 0..3 {
            let mut g = m.lock();
            *g = i;
        }
        assert_eq!(m.into_inner(), 2);
        assert!(held_ranks().is_empty());
    }

    #[test]
    fn out_of_order_guard_drops_unwind_the_stack() {
        let a = RankedMutex::new(LockRank::ServeSlot, ());
        let b = RankedMutex::new(LockRank::SetupCache, ());
        let ga = a.lock();
        let gb = b.lock();
        drop(ga); // release the *lower* rank first
        #[cfg(debug_assertions)]
        assert_eq!(held_ranks(), vec![LockRank::SetupCache]);
        drop(gb);
        assert!(held_ranks().is_empty());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "lock-rank inversion")]
    fn rank_inversion_panics_in_debug() {
        let outer = RankedMutex::new(LockRank::ShardPartitionCache, ());
        let inner = RankedMutex::new(LockRank::RouterDataPlane, ());
        let _g = outer.lock();
        let _g2 = inner.lock(); // 7 held, acquiring 6: inversion
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "lock-rank inversion")]
    fn same_rank_nesting_panics_in_debug() {
        let a = RankedMutex::new(LockRank::ShardOutcome, ());
        let b = RankedMutex::new(LockRank::ShardOutcome, ());
        let _ga = a.lock();
        let _gb = b.lock(); // equal ranks are non-increasing: inversion
    }

    #[test]
    fn condvar_wait_releases_and_reacquires_the_rank() {
        let pair = Arc::new((RankedMutex::new(LockRank::ServeQueue, false), RankedCondvar::new()));
        let waker = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*waker;
            *m.lock() = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            g = cv.wait(g);
        }
        #[cfg(debug_assertions)]
        assert_eq!(held_ranks(), vec![LockRank::ServeQueue]);
        drop(g);
        h.join().expect("waker thread");
    }

    #[test]
    fn condvar_wait_timeout_times_out() {
        let m = RankedMutex::new(LockRank::ServeSlot, ());
        let cv = RankedCondvar::new();
        let g = m.lock();
        let (g, res) = cv.wait_timeout(g, Duration::from_millis(1));
        assert!(res.timed_out());
        drop(g);
        assert!(held_ranks().is_empty());
    }

    #[test]
    fn rwlock_participates_in_the_discipline() {
        let lk = RankedRwLock::new(LockRank::ServeMetrics, 5u32);
        {
            let r = lk.read();
            assert_eq!(*r, 5);
            #[cfg(debug_assertions)]
            assert_eq!(held_ranks(), vec![LockRank::ServeMetrics]);
        }
        {
            let mut w = lk.write();
            *w = 6;
        }
        assert_eq!(lk.into_inner(), 6);
        assert!(held_ranks().is_empty());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "lock-rank inversion")]
    fn rwlock_inversion_panics_in_debug() {
        let hi = RankedRwLock::new(LockRank::RtMailbox, ());
        let lo = RankedMutex::new(LockRank::ServeQueue, ());
        let _r = hi.read();
        let _g = lo.lock();
    }

    #[test]
    fn non_poisoning_after_a_panicked_holder() {
        let m = Arc::new(RankedMutex::new(LockRank::FactorCache, 7u32));
        let m2 = Arc::clone(&m);
        let res = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("holder dies");
        })
        .join();
        assert!(res.is_err());
        assert_eq!(*m.lock(), 7); // still usable, no poison propagation
    }
}
