//! Communicators, point-to-point messaging and collectives.

use crate::sync::{LockRank, RankedMutex};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Typed message payload.
#[derive(Clone, Debug)]
enum Payload {
    F64(Vec<f64>),
    Usize(Vec<usize>),
}

#[derive(Debug)]
struct Packet {
    src_world: usize,
    comm_id: u64,
    tag: u32,
    payload: Payload,
}

/// Per-rank incoming mailbox: a channel plus a buffer of packets received
/// out of matching order.
struct Mailbox {
    rx: Receiver<Packet>,
    pending: Vec<Packet>,
}

struct WorldState {
    senders: Vec<Sender<Packet>>,
    mailboxes: Vec<RankedMutex<Mailbox>>,
    next_comm_id: AtomicU64,
}

/// The collection of simulated ranks.
pub struct World;

impl World {
    /// Spawns `p` rank-threads, each running `f` with its world
    /// communicator, and returns the per-rank results in rank order.
    ///
    /// # Panics
    /// Panics if `p == 0`, or propagates a panic from any rank.
    pub fn run<T, F>(p: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Comm) -> T + Sync,
    {
        let comms = Self::endpoints(p);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for comm in comms {
                let fref = &f;
                handles.push(scope.spawn(move || fref(comm)));
            }
            // PANIC-OK: World::run's contract is to propagate a rank's
            // panic to the caller (documented above); callers that need
            // containment wrap the whole collective in catch_unwind.
            handles.into_iter().map(|h| h.join().expect("rank panicked")).collect()
        })
    }

    /// Builds a fresh `p`-rank world and returns its `p` connected
    /// communicator endpoints (endpoint `i` is rank `i`), without
    /// spawning any threads.
    ///
    /// [`World::run`] owns its ranks' lifetimes; `endpoints` is for
    /// long-lived services (e.g. the sharded serve tier) that park each
    /// endpoint on a worker thread of their own and keep the world alive
    /// across many requests. Endpoints are plain `Clone + Send` values
    /// wired to the same in-process channel fabric `run` uses.
    ///
    /// # Panics
    /// Panics if `p == 0`.
    pub fn endpoints(p: usize) -> Vec<Comm> {
        assert!(p > 0, "need at least one rank");
        let mut senders = Vec::with_capacity(p);
        let mut mailboxes = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = unbounded();
            senders.push(tx);
            mailboxes
                .push(RankedMutex::new(LockRank::RtMailbox, Mailbox { rx, pending: Vec::new() }));
        }
        let state = Arc::new(WorldState { senders, mailboxes, next_comm_id: AtomicU64::new(1) });
        let members: Arc<Vec<usize>> = Arc::new((0..p).collect());
        (0..p)
            .map(|rank| Comm {
                comm_id: 0,
                rank,
                members: Arc::clone(&members),
                world: Arc::clone(&state),
            })
            .collect()
    }
}

/// Minimal point-to-point block transport: what the sharded serve tier's
/// data plane needs from a communication fabric, and nothing more.
///
/// [`Comm`] implements it over the in-process channel world; a wire
/// backend (sockets, real MPI) only has to provide these four methods to
/// slot in under `PartitionedFactor`'s scatter/gather.
pub trait Transport: Send + Sync {
    /// This endpoint's rank.
    fn rank(&self) -> usize;
    /// Number of ranks in the fabric.
    fn size(&self) -> usize;
    /// Sends a block of `f64`s to `dst` under `tag`.
    fn send_block(&self, dst: usize, tag: u32, data: &[f64]);
    /// Receives the block sent by `src` under `tag`.
    fn recv_block(&self, src: usize, tag: u32) -> Vec<f64>;
}

impl Transport for Comm {
    fn rank(&self) -> usize {
        Comm::rank(self)
    }

    fn size(&self) -> usize {
        Comm::size(self)
    }

    fn send_block(&self, dst: usize, tag: u32, data: &[f64]) {
        self.send_f64(dst, tag, data);
    }

    fn recv_block(&self, src: usize, tag: u32) -> Vec<f64> {
        self.recv_f64(src, tag)
    }
}

/// A communicator: an ordered group of ranks with isolated traffic.
///
/// Local rank `i` maps to world rank `members[i]`. All methods take and
/// return *local* ranks, mirroring MPI communicator semantics.
#[derive(Clone)]
pub struct Comm {
    comm_id: u64,
    /// World rank of this process.
    rank: usize,
    members: Arc<Vec<usize>>,
    world: Arc<WorldState>,
}

/// Reserved tag space for collectives (user tags must stay below this).
const COLLECTIVE_TAG: u32 = u32::MAX - 16;

impl Comm {
    /// This process's rank within the communicator.
    pub fn rank(&self) -> usize {
        // PANIC-OK: a Comm is only constructed (endpoints/split_half)
        // with its own world rank in `members`; absence is a torn
        // communicator, unrecoverable at this layer.
        self.members.iter().position(|&w| w == self.rank).expect("rank not in communicator")
    }

    /// Number of ranks in the communicator.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    fn world_rank_of(&self, local: usize) -> usize {
        self.members[local]
    }

    fn send_payload(&self, dst_local: usize, tag: u32, payload: Payload) {
        let dst = self.world_rank_of(dst_local);
        let pkt = Packet { src_world: self.rank, comm_id: self.comm_id, tag, payload };
        // PANIC-OK: the receiving rank's mailbox outlives every endpoint
        // (WorldState is Arc-shared by all Comms); a hung-up channel means
        // the world itself is torn down mid-protocol — unrecoverable here,
        // contained by the serve tier's catch_unwind + quarantine.
        self.world.senders[dst].send(pkt).expect("receiver hung up");
    }

    fn recv_payload(&self, src_local: usize, tag: u32) -> Payload {
        let src_world = self.world_rank_of(src_local);
        let mut mb = self.world.mailboxes[self.rank].lock();
        // First check the out-of-order buffer.
        if let Some(pos) = mb
            .pending
            .iter()
            .position(|p| p.src_world == src_world && p.comm_id == self.comm_id && p.tag == tag)
        {
            return mb.pending.remove(pos).payload;
        }
        loop {
            // PANIC-OK: every sender handle lives in the shared WorldState,
            // so disconnection means the world was dropped while a rank is
            // still blocked in a protocol — a torn world, not a data error.
            let pkt = mb.rx.recv().expect("sender hung up");
            if pkt.src_world == src_world && pkt.comm_id == self.comm_id && pkt.tag == tag {
                return pkt.payload;
            }
            mb.pending.push(pkt);
        }
    }

    /// Sends a vector of `f64` to `dst` (local rank) with `tag`.
    ///
    /// # Panics
    /// Panics if `tag` is in the reserved collective range.
    pub fn send_f64(&self, dst: usize, tag: u32, data: &[f64]) {
        assert!(tag < COLLECTIVE_TAG, "tag in reserved range");
        if cfg!(debug_assertions) {
            crate::tags::assert_registered(tag);
        }
        self.send_payload(dst, tag, Payload::F64(data.to_vec()));
    }

    /// Receives a vector of `f64` from `src` (local rank) with `tag`.
    pub fn recv_f64(&self, src: usize, tag: u32) -> Vec<f64> {
        if cfg!(debug_assertions) {
            crate::tags::assert_registered(tag);
        }
        match self.recv_payload(src, tag) {
            Payload::F64(v) => v,
            // PANIC-OK: a payload-type mismatch under a matched (comm,
            // tag) is a protocol bug (tags are namespace-registered and
            // non-overtaking), not a runtime condition to degrade from.
            other => panic!("type mismatch for tag {tag}: expected f64, got {other:?}"),
        }
    }

    /// Sends a vector of `usize` to `dst` (local rank) with `tag`.
    pub fn send_usize(&self, dst: usize, tag: u32, data: &[usize]) {
        assert!(tag < COLLECTIVE_TAG, "tag in reserved range");
        if cfg!(debug_assertions) {
            crate::tags::assert_registered(tag);
        }
        self.send_payload(dst, tag, Payload::Usize(data.to_vec()));
    }

    /// Receives a vector of `usize` from `src` (local rank) with `tag`.
    pub fn recv_usize(&self, src: usize, tag: u32) -> Vec<usize> {
        if cfg!(debug_assertions) {
            crate::tags::assert_registered(tag);
        }
        match self.recv_payload(src, tag) {
            Payload::Usize(v) => v,
            // PANIC-OK: same protocol-bug reasoning as recv_f64.
            other => panic!("type mismatch for tag {tag}: expected usize, got {other:?}"),
        }
    }

    /// Broadcasts `data` from local rank `root` to every rank (in place).
    ///
    /// In debug builds, a receiver that arrives with a **non-empty**
    /// buffer asserts that its length matches the root's payload — a
    /// mismatch means the ranks disagree about the collective's shape
    /// (the classic silent MPI bug where a straggler's stale buffer
    /// masks a protocol error). An empty buffer means "size unknown,
    /// accept whatever the root sends" — required when the payload
    /// length is itself the information being broadcast (e.g. skeleton
    /// index sets in the distributed factorization).
    pub fn bcast_f64(&self, root: usize, data: &mut Vec<f64>) {
        let me = self.rank();
        if me == root {
            for dst in 0..self.size() {
                if dst != root {
                    self.send_payload(dst, COLLECTIVE_TAG, Payload::F64(data.clone()));
                }
            }
        } else {
            match self.recv_payload(root, COLLECTIVE_TAG) {
                Payload::F64(v) => {
                    debug_assert!(
                        data.is_empty() || data.len() == v.len(),
                        "bcast_f64 length mismatch: rank {me} pre-sized {}, root {root} sent {}",
                        data.len(),
                        v.len()
                    );
                    *data = v;
                }
                // PANIC-OK: collective payloads use a reserved tag range;
                // a mismatch is a protocol bug.
                other => panic!("bcast type mismatch: {other:?}"),
            }
        }
    }

    /// Broadcasts a `usize` vector from `root` (in place). Same debug
    /// shape check as [`Comm::bcast_f64`].
    pub fn bcast_usize(&self, root: usize, data: &mut Vec<usize>) {
        let me = self.rank();
        if me == root {
            for dst in 0..self.size() {
                if dst != root {
                    self.send_payload(dst, COLLECTIVE_TAG + 1, Payload::Usize(data.clone()));
                }
            }
        } else {
            match self.recv_payload(root, COLLECTIVE_TAG + 1) {
                Payload::Usize(v) => {
                    debug_assert!(
                        data.is_empty() || data.len() == v.len(),
                        "bcast_usize length mismatch: rank {me} pre-sized {}, root {root} sent {}",
                        data.len(),
                        v.len()
                    );
                    *data = v;
                }
                // PANIC-OK: same reserved-tag protocol-bug reasoning as
                // bcast_f64.
                other => panic!("bcast type mismatch: {other:?}"),
            }
        }
    }

    /// Element-wise sum reduction to local rank `root`; `Some(total)` at
    /// the root, `None` elsewhere.
    pub fn reduce_sum(&self, root: usize, data: &[f64]) -> Option<Vec<f64>> {
        let me = self.rank();
        if me == root {
            let mut acc = data.to_vec();
            for src in 0..self.size() {
                if src != root {
                    match self.recv_payload(src, COLLECTIVE_TAG + 2) {
                        Payload::F64(v) => {
                            assert_eq!(v.len(), acc.len(), "reduce length mismatch");
                            for (a, b) in acc.iter_mut().zip(v) {
                                *a += b;
                            }
                        }
                        // PANIC-OK: same reserved-tag protocol-bug
                        // reasoning as bcast_f64.
                        other => panic!("reduce type mismatch: {other:?}"),
                    }
                }
            }
            Some(acc)
        } else {
            self.send_payload(root, COLLECTIVE_TAG + 2, Payload::F64(data.to_vec()));
            None
        }
    }

    /// Element-wise sum reduction delivered to every rank.
    pub fn allreduce_sum(&self, data: &[f64]) -> Vec<f64> {
        // Non-root ranks pre-size their receive buffer so the bcast shape
        // check can verify all ranks agree on the reduction length.
        let mut out = self.reduce_sum(0, data).unwrap_or_else(|| vec![0.0; data.len()]);
        self.bcast_f64(0, &mut out);
        out
    }

    /// Blocks until every rank of the communicator has entered.
    pub fn barrier(&self) {
        let _ = self.allreduce_sum(&[0.0]);
    }

    /// Splits the communicator into halves: local ranks `< size/2` form the
    /// lower half, the rest the upper half (the paper's distributed-tree
    /// split, Fig. 1). Both halves get fresh communicator ids agreed upon
    /// collectively, so their traffic cannot collide.
    ///
    /// # Panics
    /// Panics if the communicator has fewer than 2 ranks.
    pub fn split_half(&self) -> Comm {
        let p = self.size();
        assert!(p >= 2, "cannot split a communicator of size {p}");
        let half = p / 2;
        let me = self.rank();
        // Rank 0 draws two fresh ids and broadcasts them; this keeps ids
        // globally unique without a central allocator call per rank.
        let mut ids: Vec<usize> = if me == 0 {
            let base = self.world.next_comm_id.fetch_add(2, Ordering::Relaxed);
            vec![base as usize, base as usize + 1]
        } else {
            vec![0, 0] // pre-sized receive buffer (two fresh ids from rank 0)
        };
        self.bcast_usize(0, &mut ids);
        let lower = me < half;
        let members: Vec<usize> = if lower {
            (0..half).map(|i| self.world_rank_of(i)).collect()
        } else {
            (half..p).map(|i| self.world_rank_of(i)).collect()
        };
        Comm {
            comm_id: ids[if lower { 0 } else { 1 }] as u64,
            rank: self.rank,
            members: Arc::new(members),
            world: Arc::clone(&self.world),
        }
    }
}
