//! Registered point-to-point tag namespaces.
//!
//! `Comm::send_*`/`recv_*` tags are raw `u32`s shared by every pipeline
//! stage of the process. Two stages reusing the same tag on the same
//! communicator silently cross their streams — the received payload is
//! well-typed and plausibly shaped, so the bug surfaces as wrong numbers,
//! not a crash. This module carves the tag space into named, disjoint
//! [`TagSpace`]s; in debug builds every point-to-point send/recv asserts
//! its tag belongs to a registered space, so an unregistered (and
//! therefore collision-prone) tag fails loudly in tests.
//!
//! Stages must not share a space: each long-lived protocol registers its
//! own `TagSpace` here, and the `spaces_are_disjoint` self-test keeps the
//! registry collision-free by construction. [`TEST`] is the one shared
//! space — reserved for tests, examples and throwaway experiments, where
//! isolation comes from each test's private `World`.

/// A named, half-open range `[base, base + len)` of point-to-point tags.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TagSpace {
    /// Owning stage, for diagnostics.
    pub name: &'static str,
    /// First tag of the space.
    pub base: u32,
    /// Number of tags in the space.
    pub len: u32,
}

impl TagSpace {
    /// Returns the `off`-th tag of this space.
    ///
    /// # Panics
    /// Panics (at compile time in const contexts) if `off >= len`.
    pub const fn tag(self, off: u32) -> u32 {
        assert!(off < self.len, "tag offset out of the registered space");
        self.base + off
    }

    /// Whether `tag` falls inside this space.
    pub const fn contains(self, tag: u32) -> bool {
        tag >= self.base && tag - self.base < self.len
    }
}

/// Shared scratch space for tests, examples and experiments. Production
/// pipeline stages must register their own space below instead.
pub const TEST: TagSpace = TagSpace { name: "test", base: 0, len: 256 };

/// Distributed factorization (Algorithm II.4): skeleton index exchange
/// and the `B`/`M` coupling-block sends between sibling rank groups.
pub const DIST_FACTOR: TagSpace = TagSpace { name: "dist-factor", base: 256, len: 4 };

/// Distributed solve (Algorithm II.5): `y_top`/`z_bot` partial-solution
/// exchange between sibling rank groups.
pub const DIST_SOLVE: TagSpace = TagSpace { name: "dist-solve", base: 260, len: 4 };

/// Sharded serve tier: RHS-block scatter from the router to shard
/// workers and solution-block gather back.
pub const SHARD_DATA: TagSpace = TagSpace { name: "shard-data", base: 264, len: 4 };

/// Every registered space. Keep sorted by `base`; the registry self-tests
/// enforce disjointness and the collective-range ceiling.
pub const ALL: &[TagSpace] = &[TEST, DIST_FACTOR, DIST_SOLVE, SHARD_DATA];

/// Returns the registered space containing `tag`, if any.
pub fn space_of(tag: u32) -> Option<&'static TagSpace> {
    ALL.iter().find(|s| s.contains(tag))
}

/// Asserts that `tag` belongs to a registered [`TagSpace`].
///
/// Called by `Comm`'s point-to-point send/recv in debug builds only, so
/// release-mode messaging pays nothing.
///
/// # Panics
/// Panics if `tag` is unregistered.
#[track_caller]
pub fn assert_registered(tag: u32) {
    assert!(
        space_of(tag).is_some(),
        "point-to-point tag {tag} is not in any registered TagSpace; \
         register a space in kfds_rt::tags (or use tags::TEST in tests) \
         so cross-stage collisions stay impossible"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spaces_are_disjoint_and_below_collective_range() {
        for (i, a) in ALL.iter().enumerate() {
            assert!(a.len > 0, "{} is empty", a.name);
            // Stay clear of the reserved collective tags at the top of u32.
            assert!(a.base.checked_add(a.len).expect("space overflows u32") < u32::MAX - 16);
            for b in &ALL[i + 1..] {
                let overlap = a.base < b.base + b.len && b.base < a.base + a.len;
                assert!(!overlap, "spaces {} and {} overlap", a.name, b.name);
                assert_ne!(a.name, b.name, "duplicate space name");
            }
        }
    }

    #[test]
    fn tag_and_contains_agree() {
        assert_eq!(DIST_FACTOR.tag(0), 256);
        assert_eq!(SHARD_DATA.tag(1), 265);
        assert!(TEST.contains(0) && TEST.contains(255) && !TEST.contains(256));
        assert_eq!(space_of(261).map(|s| s.name), Some("dist-solve"));
        assert_eq!(space_of(1 << 20), None);
    }

    #[test]
    #[should_panic(expected = "not in any registered TagSpace")]
    fn unregistered_tag_is_rejected() {
        assert_registered(1 << 20);
    }
}
