//! # kfds-rt — simulated message-passing runtime
//!
//! The paper's distributed algorithms (II.4/II.5) are written against MPI:
//! point-to-point `Send`/`Recv`, `Bcast`, `Reduce`, and communicators that
//! split at every distributed tree level. This crate provides the same
//! abstractions with ranks backed by OS threads and crossbeam channels, so
//! the distributed factorization/solve run with their exact communication
//! structure on a single machine (see `DESIGN.md`, substitution table).
//!
//! Semantics follow MPI where it matters:
//! * messages between a (sender, receiver) pair are non-overtaking for a
//!   given `(communicator, tag)`;
//! * `split` creates independent sub-communicators whose traffic cannot
//!   collide with the parent's (fresh communicator ids);
//! * collectives are blocking and must be entered by every rank of the
//!   communicator.

#![forbid(unsafe_code)]

mod comm;
pub mod sync;
pub mod tags;

pub use comm::{Comm, Transport, World};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_runs_ranks_and_collects_results() {
        let out = World::run(4, |c: Comm| c.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30]);
    }

    #[test]
    fn send_recv_roundtrip() {
        World::run(2, |c: Comm| {
            if c.rank() == 0 {
                c.send_f64(1, 7, &[1.0, 2.0, 3.0]);
                let back = c.recv_f64(1, 8);
                assert_eq!(back, vec![6.0]);
            } else {
                let v = c.recv_f64(0, 7);
                assert_eq!(v, vec![1.0, 2.0, 3.0]);
                c.send_f64(0, 8, &[v.iter().sum()]);
            }
        });
    }

    #[test]
    fn messages_non_overtaking_same_tag() {
        World::run(2, |c: Comm| {
            if c.rank() == 0 {
                for i in 0..10 {
                    c.send_f64(1, 1, &[i as f64]);
                }
            } else {
                for i in 0..10 {
                    assert_eq!(c.recv_f64(0, 1), vec![i as f64]);
                }
            }
        });
    }

    #[test]
    fn out_of_order_tags_are_matched() {
        World::run(2, |c: Comm| {
            if c.rank() == 0 {
                c.send_f64(1, 5, &[5.0]);
                c.send_f64(1, 6, &[6.0]);
            } else {
                // Receive in the opposite order of sending.
                assert_eq!(c.recv_f64(0, 6), vec![6.0]);
                assert_eq!(c.recv_f64(0, 5), vec![5.0]);
            }
        });
    }

    #[test]
    fn bcast_from_root_and_nonzero_root() {
        World::run(4, |c: Comm| {
            let mut v = if c.rank() == 2 { vec![3.0, 4.0] } else { vec![] };
            c.bcast_f64(2, &mut v);
            assert_eq!(v, vec![3.0, 4.0]);
            let mut u = if c.rank() == 0 { vec![9usize, 8] } else { vec![] };
            c.bcast_usize(0, &mut u);
            assert_eq!(u, vec![9, 8]);
        });
    }

    #[test]
    fn reduce_and_allreduce_sum() {
        World::run(4, |c: Comm| {
            let mine = vec![c.rank() as f64, 1.0];
            let r = c.reduce_sum(0, &mine);
            if c.rank() == 0 {
                assert_eq!(r.expect("root gets the reduction"), vec![6.0, 4.0]);
            } else {
                assert!(r.is_none());
            }
            let a = c.allreduce_sum(&mine);
            assert_eq!(a, vec![6.0, 4.0]);
        });
    }

    #[test]
    fn split_halves_isolated() {
        World::run(4, |c: Comm| {
            let half = c.split_half();
            assert_eq!(half.size(), 2);
            // Local ranks renumbered from 0 within each half.
            let expected_local = c.rank() % 2;
            assert_eq!(half.rank(), expected_local);
            // A bcast inside a half must not leak into the other half.
            let mut v = if half.rank() == 0 { vec![c.rank() as f64] } else { vec![] };
            half.bcast_f64(0, &mut v);
            let root_world_rank = if c.rank() < 2 { 0.0 } else { 2.0 };
            assert_eq!(v, vec![root_world_rank]);
        });
    }

    #[test]
    fn nested_splits() {
        World::run(8, |c: Comm| {
            let mut comm = c;
            while comm.size() > 1 {
                comm = comm.split_half();
            }
            assert_eq!(comm.size(), 1);
            assert_eq!(comm.rank(), 0);
        });
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static COUNT: AtomicUsize = AtomicUsize::new(0);
        COUNT.store(0, Ordering::SeqCst);
        World::run(4, |c: Comm| {
            COUNT.fetch_add(1, Ordering::SeqCst);
            c.barrier();
            // After the barrier every rank must observe all increments.
            assert_eq!(COUNT.load(Ordering::SeqCst), 4);
        });
    }

    #[test]
    fn endpoints_wire_the_same_fabric_as_run() {
        let eps = World::endpoints(3);
        assert_eq!(eps.len(), 3);
        let handles: Vec<_> = eps
            .into_iter()
            .map(|c| {
                std::thread::spawn(move || {
                    // Ring pass through the Transport trait surface.
                    let (me, p) = (Transport::rank(&c), Transport::size(&c));
                    if me == 0 {
                        c.send_block(1, tags::TEST.tag(9), &[1.0]);
                        let v = c.recv_block(p - 1, tags::TEST.tag(9));
                        assert_eq!(v, vec![p as f64]);
                    } else {
                        let v = c.recv_block(me - 1, tags::TEST.tag(9));
                        c.send_block((me + 1) % p, tags::TEST.tag(9), &[v[0] + 1.0]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("endpoint thread");
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "not in any registered TagSpace")]
    fn unregistered_point_to_point_tag_fails_loudly() {
        let eps = World::endpoints(1);
        eps[0].send_f64(0, 4096, &[1.0]);
    }

    #[test]
    fn single_rank_world() {
        World::run(1, |c: Comm| {
            let mut v = vec![1.0];
            c.bcast_f64(0, &mut v);
            assert_eq!(c.allreduce_sum(&[2.0]), vec![2.0]);
            c.barrier();
            assert_eq!(c.size(), 1);
        });
    }
}
