//! Debug-build shape checks on the collectives: a broadcast receiver
//! that pre-sized its buffer asserts the length matches the root's
//! payload, so a rank that disagrees about a collective's shape fails
//! loudly instead of silently adopting the root's length. An empty
//! receive buffer opts out ("size unknown") — that is how the
//! distributed factorization broadcasts skeleton sets whose length is
//! itself the message.

use kfds_rt::{Comm, World};

#[test]
fn bcast_with_agreeing_shapes_passes_the_check() {
    let out = World::run(4, |c: Comm| {
        let mut buf = vec![0.0f64; 5];
        if c.rank() == 0 {
            buf = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        }
        c.bcast_f64(0, &mut buf);
        buf
    });
    for ranks in out {
        assert_eq!(ranks, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
    }
}

#[test]
#[cfg_attr(not(debug_assertions), ignore = "shape check is debug-only")]
#[should_panic(expected = "rank panicked")]
fn bcast_length_disagreement_fails_in_debug() {
    World::run(2, |c: Comm| {
        // Rank 1 believes the collective carries 3 elements; rank 0 sends 5.
        let mut buf = if c.rank() == 0 { vec![1.0; 5] } else { vec![0.0; 3] };
        c.bcast_f64(0, &mut buf);
        buf
    });
}

#[test]
fn bcast_into_empty_buffers_adopts_the_roots_length() {
    // Receivers that cannot know the payload length ahead of time pass an
    // empty buffer; the shape check must not fire for them.
    let out = World::run(3, |c: Comm| {
        let mut buf = if c.rank() == 0 { vec![7.0; 4] } else { Vec::new() };
        c.bcast_f64(0, &mut buf);
        buf.len()
    });
    assert_eq!(out, vec![4, 4, 4]);
}

#[test]
fn allreduce_receivers_are_presized() {
    // Non-root ranks must pre-size their bcast buffer to the reduction
    // length, otherwise the shape check itself would fire.
    let p = 3;
    let out = World::run(p, |c: Comm| c.allreduce_sum(&[c.rank() as f64, 1.0]));
    for ranks in out {
        assert_eq!(ranks, vec![3.0, p as f64]);
    }
}

#[test]
fn split_half_agrees_on_ids_with_presized_buffers() {
    let out = World::run(4, |c: Comm| {
        let sub = c.split_half();
        (sub.rank(), sub.size(), sub.allreduce_sum(&[1.0])[0] as usize)
    });
    for (i, (rank, size, total)) in out.into_iter().enumerate() {
        assert_eq!(size, 2);
        assert_eq!(total, 2);
        assert_eq!(rank, i % 2);
    }
}
