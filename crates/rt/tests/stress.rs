//! Stress and property tests for the simulated message-passing runtime.

use kfds_rt::{Comm, World};
use proptest::prelude::*;

#[test]
fn many_interleaved_messages() {
    // A ring exchange repeated many times: every rank sends to its right
    // neighbor and receives from its left one, with payload checksums.
    let p = 6;
    let rounds = 200;
    World::run(p, |c: Comm| {
        let me = c.rank();
        let right = (me + 1) % p;
        let left = (me + p - 1) % p;
        for r in 0..rounds {
            let payload = vec![me as f64, r as f64, (me * r) as f64];
            c.send_f64(right, 3, &payload);
            let got = c.recv_f64(left, 3);
            assert_eq!(got, vec![left as f64, r as f64, (left * r) as f64]);
        }
    });
}

#[test]
fn reduction_tree_matches_sequential() {
    let p = 8;
    let out = World::run(p, |c: Comm| {
        let mine: Vec<f64> = (0..16).map(|i| (c.rank() * 16 + i) as f64).collect();
        c.allreduce_sum(&mine)
    });
    let expected: Vec<f64> = (0..16).map(|i| (0..p).map(|r| (r * 16 + i) as f64).sum()).collect();
    for r in out {
        assert_eq!(r, expected);
    }
}

#[test]
fn deep_split_chain_with_collectives_at_every_level() {
    // Mirrors the distributed factorization's communicator usage: split
    // to singletons, run a collective at every level on the way.
    let p = 16;
    World::run(p, |c: Comm| {
        let mut comm = c;
        let mut level = 0;
        while comm.size() > 1 {
            let total = comm.allreduce_sum(&[1.0]);
            assert_eq!(total[0] as usize, comm.size(), "level {level}");
            comm.barrier();
            comm = comm.split_half();
            level += 1;
        }
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_point_to_point_schedules(
        p in 2usize..6,
        msgs in proptest::collection::vec((0u32..4, 0usize..8), 1..24),
    ) {
        // Rank 0 sends a random tag sequence to rank 1; rank 1 receives
        // them in a *different* (sorted-by-tag) order. Matching must be
        // exact despite out-of-order receipt.
        let msgs2 = msgs.clone();
        World::run(p, move |c: Comm| {
            if c.rank() == 0 {
                for (i, (tag, len)) in msgs2.iter().enumerate() {
                    let payload: Vec<f64> = (0..*len).map(|k| (i * 10 + k) as f64).collect();
                    // Tags must be unique per (src,dst) for reordered
                    // receives to be well-defined: offset by index.
                    c.send_f64(1, tag + 10 * i as u32, &payload);
                }
            } else if c.rank() == 1 {
                let mut order: Vec<(usize, u32, usize)> = msgs2
                    .iter()
                    .enumerate()
                    .map(|(i, (tag, len))| (i, tag + 10 * i as u32, *len))
                    .collect();
                order.sort_by_key(|&(_, t, _)| std::cmp::Reverse(t));
                for (i, tag, len) in order {
                    let got = c.recv_f64(0, tag);
                    let want: Vec<f64> = (0..len).map(|k| (i * 10 + k) as f64).collect();
                    assert_eq!(got, want);
                }
            }
        });
    }

    #[test]
    fn reduce_root_choice(root in 0usize..5) {
        World::run(5, move |c: Comm| {
            let r = c.reduce_sum(root, &[c.rank() as f64 + 1.0]);
            if c.rank() == root {
                assert_eq!(r.expect("root"), vec![15.0]);
            } else {
                assert!(r.is_none());
            }
        });
    }
}
