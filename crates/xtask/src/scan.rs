//! A small comment/string-aware scanner for Rust source.
//!
//! `kfds-lint`'s rules need three views of a file that plain text search
//! cannot provide without false positives:
//!
//! 1. the **token stream** with comments and string *contents* removed
//!    (so `unsafe` inside a doc comment or a test-fixture string literal
//!    is not an `unsafe` block);
//! 2. the **comment text per line** (so a `// SAFETY:` justification can
//!    be matched to the `unsafe` it covers);
//! 3. **string literal values** with their positions (so a raw
//!    `env::var("KFDS_…")` read can be distinguished from
//!    `set_var("KFDS_…")` in a test).
//!
//! This is a lexer, not a parser: it handles line comments, nested block
//! comments, plain/raw/byte strings, char literals vs. lifetimes, and
//! nothing else. The lint rules pattern-match on the token stream, which
//! is robust for the whole-word invariants they enforce (`unsafe`, `var`,
//! `Vec :: new`, …) without needing `syn`, which the offline build
//! environment does not provide.

/// One lexical token with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub line: usize,
    pub kind: Tok,
}

/// Token kinds the lint rules care about. Numbers, operators, and other
/// punctuation are emitted as [`Tok::Punct`] characters.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// String literal *value* (escapes left verbatim — the rules only
    /// prefix-match, so `\u{…}` fidelity does not matter).
    Str(String),
    /// Any other non-whitespace character.
    Punct(char),
}

/// Scanned view of one source file (or fixture string).
#[derive(Debug)]
pub struct Source {
    /// Repo-relative display path (fixtures use a synthetic name).
    pub path: String,
    pub tokens: Vec<Token>,
    /// Concatenated comment text per line (1-based line `l` at `l - 1`);
    /// empty string when the line has no comment.
    pub comments: Vec<String>,
    /// Code text per line with comments removed and string contents
    /// blanked; used for attribute-line detection.
    pub code: Vec<String>,
}

impl Source {
    /// `true` if line `l` (1-based) has any code tokens. Line 0 (before
    /// the file) has none.
    pub fn line_has_code(&self, l: usize) -> bool {
        l >= 1 && self.code.get(l - 1).is_some_and(|c| !c.trim().is_empty())
    }

    /// `true` if line `l` is an attribute line (`#[…]` / `#![…]`), which
    /// may legitimately sit between a `// SAFETY:` comment and its item.
    pub fn is_attr_line(&self, l: usize) -> bool {
        let t = self.code.get(l - 1).map(|c| c.trim()).unwrap_or("");
        t.starts_with("#[") || t.starts_with("#![") || t == ")]" || t == "]"
    }

    /// Comment text on line `l`, or `""` (including for line 0, before
    /// the file).
    pub fn comment(&self, l: usize) -> &str {
        l.checked_sub(1).and_then(|i| self.comments.get(i)).map(String::as_str).unwrap_or("")
    }
}

/// Lexes `text` into a [`Source`].
pub fn scan_str(path: &str, text: &str) -> Source {
    let mut tokens = Vec::new();
    let n_lines = text.lines().count().max(1);
    let mut comments = vec![String::new(); n_lines];
    let mut code = vec![String::new(); n_lines];

    let bytes: Vec<char> = text.chars().collect();
    let mut i = 0;
    let mut line = 1;

    // Appends to the per-line comment/code accumulators, growing them if
    // the file ends without a trailing newline.
    fn push_to(vec: &mut Vec<String>, line: usize, s: &str) {
        while vec.len() < line {
            vec.push(String::new());
        }
        vec[line - 1].push_str(s);
    }

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == '/' => {
                // Line comment (incl. doc comments): record text, skip.
                let start = i + 2;
                let mut j = start;
                while j < bytes.len() && bytes[j] != '\n' {
                    j += 1;
                }
                let text: String = bytes[start..j].iter().collect();
                push_to(&mut comments, line, &text);
                i = j;
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == '*' => {
                // Block comment, possibly nested; text attributed per line.
                let mut depth = 1;
                let mut j = i + 2;
                let mut seg = String::new();
                while j < bytes.len() && depth > 0 {
                    if bytes[j] == '\n' {
                        push_to(&mut comments, line, &seg);
                        seg.clear();
                        line += 1;
                        j += 1;
                    } else if bytes[j] == '/' && j + 1 < bytes.len() && bytes[j + 1] == '*' {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == '*' && j + 1 < bytes.len() && bytes[j + 1] == '/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        seg.push(bytes[j]);
                        j += 1;
                    }
                }
                push_to(&mut comments, line, &seg);
                i = j;
            }
            '"' => {
                let (value, next_i, next_line) = lex_plain_string(&bytes, i, line);
                push_to(&mut code, line, "\"…\"");
                tokens.push(Token { line, kind: Tok::Str(value) });
                line = next_line;
                i = next_i;
            }
            'r' | 'b' if is_raw_string_start(&bytes, i) => {
                let (value, next_i, next_line) = lex_raw_string(&bytes, i, line);
                push_to(&mut code, line, "r\"…\"");
                tokens.push(Token { line, kind: Tok::Str(value) });
                line = next_line;
                i = next_i;
            }
            '\'' => {
                // Char literal vs lifetime. A char literal closes with a
                // `'` after one (possibly escaped) character; a lifetime
                // does not.
                if let Some(next_i) = char_literal_end(&bytes, i) {
                    push_to(&mut code, line, "'…'");
                    i = next_i;
                } else {
                    // Lifetime: consume the quote, the identifier lexes next.
                    push_to(&mut code, line, "'");
                    i += 1;
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < bytes.len() && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
                    j += 1;
                }
                let ident: String = bytes[start..j].iter().collect();
                push_to(&mut code, line, &ident);
                push_to(&mut code, line, " ");
                tokens.push(Token { line, kind: Tok::Ident(ident) });
                i = j;
            }
            c if c.is_whitespace() => {
                push_to(&mut code, line, " ");
                i += 1;
            }
            c => {
                push_to(&mut code, line, &c.to_string());
                tokens.push(Token { line, kind: Tok::Punct(c) });
                i += 1;
            }
        }
    }

    // Align accumulator lengths (files without trailing newline).
    let max = comments.len().max(code.len());
    comments.resize(max, String::new());
    code.resize(max, String::new());

    Source { path: path.to_string(), tokens, comments, code }
}

/// `r"…"`, `r#"…"#`, `br"…"`, `br#"…"#` starts.
fn is_raw_string_start(b: &[char], i: usize) -> bool {
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
    }
    if j >= b.len() || b[j] != 'r' {
        return false;
    }
    j += 1;
    while j < b.len() && b[j] == '#' {
        j += 1;
    }
    j < b.len() && b[j] == '"'
}

fn lex_plain_string(b: &[char], i: usize, mut line: usize) -> (String, usize, usize) {
    let mut j = i + 1;
    let mut value = String::new();
    while j < b.len() {
        match b[j] {
            '\\' if j + 1 < b.len() => {
                value.push(b[j]);
                value.push(b[j + 1]);
                if b[j + 1] == '\n' {
                    line += 1;
                }
                j += 2;
            }
            '"' => return (value, j + 1, line),
            '\n' => {
                value.push('\n');
                line += 1;
                j += 1;
            }
            c => {
                value.push(c);
                j += 1;
            }
        }
    }
    (value, j, line)
}

fn lex_raw_string(b: &[char], i: usize, mut line: usize) -> (String, usize, usize) {
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
    }
    j += 1; // the 'r'
    let mut hashes = 0;
    while j < b.len() && b[j] == '#' {
        hashes += 1;
        j += 1;
    }
    j += 1; // opening quote
    let mut value = String::new();
    while j < b.len() {
        if b[j] == '"' {
            // Close only when followed by `hashes` '#' characters.
            let mut k = j + 1;
            let mut seen = 0;
            while k < b.len() && seen < hashes && b[k] == '#' {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return (value, k, line);
            }
        }
        if b[j] == '\n' {
            line += 1;
        }
        value.push(b[j]);
        j += 1;
    }
    (value, j, line)
}

/// If position `i` (at a `'`) starts a char literal, returns the index
/// one past its closing quote; `None` for lifetimes.
fn char_literal_end(b: &[char], i: usize) -> Option<usize> {
    let mut j = i + 1;
    if j >= b.len() {
        return None;
    }
    if b[j] == '\\' {
        // Escaped char: skip to the closing quote.
        j += 2;
        while j < b.len() && b[j] != '\'' && b[j] != '\n' {
            j += 1;
        }
        return if j < b.len() && b[j] == '\'' { Some(j + 1) } else { None };
    }
    // Unescaped: exactly one char then a quote, else it is a lifetime
    // (`'a`) or a loop label (`'outer:`).
    if b[j] != '\'' && j + 1 < b.len() && b[j + 1] == '\'' {
        return Some(j + 2);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &Source) -> Vec<&str> {
        src.tokens
            .iter()
            .filter_map(|t| match &t.kind {
                Tok::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_do_not_produce_tokens() {
        let s = scan_str("t.rs", "// unsafe here\nlet x = 1; /* unsafe too */\n");
        assert!(!idents(&s).contains(&"unsafe"));
        assert!(s.comment(1).contains("unsafe here"));
        assert!(s.comment(2).contains("unsafe too"));
        assert!(s.line_has_code(2));
        assert!(!s.line_has_code(1));
    }

    #[test]
    fn string_contents_are_not_code() {
        let s = scan_str("t.rs", "let x = \"unsafe { }\"; let y = r#\"vec![]\"#;\n");
        assert!(!idents(&s).contains(&"unsafe"));
        assert!(!idents(&s).contains(&"vec"));
        let strs: Vec<&str> = s
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                Tok::Str(v) => Some(v.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(strs, vec!["unsafe { }", "vec![]"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let s = scan_str("t.rs", "fn f<'a>(x: &'a str) -> char { 'x' }\n");
        let ids = idents(&s);
        assert!(ids.contains(&"a"), "lifetime ident lexes");
        assert!(ids.contains(&"str"));
        // The 'x' char literal must not swallow the closing brace.
        assert!(s.tokens.iter().any(|t| t.kind == Tok::Punct('}')));
    }

    #[test]
    fn nested_block_comments_terminate() {
        let s = scan_str("t.rs", "/* a /* b */ still comment */ fn f() {}\n");
        assert_eq!(idents(&s), vec!["fn", "f"]);
    }

    #[test]
    fn multiline_block_comment_attributes_lines() {
        let s = scan_str("t.rs", "/* SAFETY: one\n   two */\nunsafe {}\n");
        assert!(s.comment(1).contains("SAFETY"));
        assert!(s.comment(2).contains("two"));
        assert_eq!(s.tokens[0].line, 3);
    }

    #[test]
    fn attr_lines_detected() {
        let s = scan_str("t.rs", "#[target_feature(enable = \"avx2\")]\nunsafe fn g() {}\n");
        assert!(s.is_attr_line(1));
        assert!(!s.is_attr_line(2));
    }
}
