//! The `kfds-lint` rules.
//!
//! Each rule consumes a scanned [`Source`] and yields [`Finding`]s. The
//! repo invariants enforced here (see `DESIGN.md` §7 "Safety &
//! invariants"):
//!
//! * **unsafe-safety** — every `unsafe` block, `unsafe fn`, and
//!   `unsafe impl` carries a `// SAFETY:` justification (items may use a
//!   `/// # Safety` doc section instead), adjacent above or on the line.
//! * **env-registry** — `KFDS_*` environment variables are read only
//!   through the `kfds-switches` registry; raw `env::var("KFDS_…")` /
//!   `var_os` / `env!` / `option_env!` reads anywhere else are rejected.
//!   (Writes — `set_var` in tests — are fine; the registry is the single
//!   source of truth for *reads*.)
//! * **hot-path-alloc** — modules on the [`HOT_PATH_MODULES`] list (the
//!   allocation-free kernels that take scratch from
//!   `kfds_la::workspace`) must not call `Vec::new`, `vec![…]`, or
//!   `.to_vec()` outside `#[cfg(test)]` modules. A deliberate cold-path
//!   exception carries a `lint:allow(hot-path-alloc)` comment on the
//!   same or previous line.
//! * **unsafe-preconditions** — every `pub … unsafe fn` in `kfds-la`
//!   declares its preconditions executably: the body must contain at
//!   least one `debug_assert!`/`assert!` family call.
//! * **lock-discipline** — the concurrency crates (`kfds-serve`,
//!   `kfds-shard`, `kfds-rt`) use the ranked wrappers from
//!   [`kfds_rt::sync`], never raw `Mutex`/`RwLock`/`Condvar`
//!   (`lint:allow(raw-lock)` waives a deliberate exception), and every
//!   statically visible nested acquisition of ranked fields takes locks
//!   in strictly increasing [`LockRank`] order — the static half of the
//!   runtime rank checker.
//! * **panic-path** — the same crates' non-test code is panic-free:
//!   `.unwrap()`, `.expect(…)`, `panic!`, `unreachable!`, `todo!`, and
//!   `unimplemented!` must be replaced by typed-error returns or carry a
//!   `// PANIC-OK:` justification (same adjacency mechanism as SAFETY).
//! * **forbid-unsafe** — crate roots on the [`FORBID_UNSAFE_ROOTS`]
//!   list keep their `#![forbid(unsafe_code)]` attribute.
//! * **switch-coverage** — every switch in the `kfds-switches` registry
//!   has a README table row, a `ci.sh` lane, and a test referencing it
//!   (checked repo-wide from `lint_repo`).

use crate::scan::{Source, Tok, Token};
use kfds_rt::sync::{LockRank, FIELD_RANKS};

/// Modules that must stay allocation-free outside tests (the workspace
/// pool exists precisely so these never touch the global heap on the hot
/// path). Paths are repo-relative with `/` separators.
pub const HOT_PATH_MODULES: &[&str] = &[
    "crates/la/src/simd.rs",
    "crates/la/src/blas1.rs",
    "crates/la/src/blas2.rs",
    "crates/la/src/batch.rs",
    "crates/kernels/src/gsks.rs",
    "crates/tree/src/dist_tiles.rs",
];

/// Files allowed to read `KFDS_*` environment variables directly: the
/// registry itself.
pub const ENV_REGISTRY_PREFIX: &str = "crates/switches/";

/// Path prefix whose public unsafe helpers must declare executable
/// preconditions.
pub const UNSAFE_PRECONDITION_PREFIX: &str = "crates/la/src/";

/// The concurrency crates: non-test code here must use the ranked lock
/// wrappers and stay panic-free.
pub const CONCURRENCY_PREFIXES: &[&str] =
    &["crates/serve/src/", "crates/shard/src/", "crates/rt/src/"];

/// The ranked-wrapper implementation itself — the one file allowed to
/// name the raw primitives it wraps.
pub const LOCK_WRAPPER_IMPL: &str = "crates/rt/src/sync.rs";

/// Crate roots that contain no `unsafe` code and must say so with
/// `#![forbid(unsafe_code)]` (keeps the attribute from silently
/// disappearing in a refactor).
pub const FORBID_UNSAFE_ROOTS: &[&str] = &[
    "crates/askit/src/lib.rs",
    "crates/bench/src/lib.rs",
    "crates/kernels/src/lib.rs",
    "crates/krylov/src/lib.rs",
    "crates/rt/src/lib.rs",
    "crates/serve/src/lib.rs",
    "crates/shard/src/lib.rs",
    "crates/switches/src/lib.rs",
    "crates/tree/src/lib.rs",
    "crates/xtask/src/main.rs",
    "src/lib.rs",
];

/// Every rule name `check_source`/`lint_repo` can emit, in report order —
/// `run_lint` prints a per-rule count so CI can assert each family ran.
pub const RULE_NAMES: &[&str] = &[
    "unsafe-safety",
    "env-registry",
    "hot-path-alloc",
    "unsafe-preconditions",
    "lock-discipline",
    "panic-path",
    "forbid-unsafe",
    "switch-coverage",
    "switch-table",
];

/// One lint violation.
#[derive(Debug, Clone)]
pub struct Finding {
    pub path: String,
    pub line: usize,
    pub rule: &'static str,
    pub msg: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.msg)
    }
}

/// Runs every rule that applies to `src` (path-scoped rules check
/// `src.path` themselves).
pub fn check_source(src: &Source) -> Vec<Finding> {
    let mut out = rule_unsafe_safety(src);
    if !src.path.starts_with(ENV_REGISTRY_PREFIX) {
        out.extend(rule_env_registry(src));
    }
    if HOT_PATH_MODULES.contains(&src.path.as_str()) {
        out.extend(rule_hot_path_alloc(src));
    }
    if src.path.starts_with(UNSAFE_PRECONDITION_PREFIX) {
        out.extend(rule_unsafe_preconditions(src));
    }
    if CONCURRENCY_PREFIXES.iter().any(|p| src.path.starts_with(p)) {
        out.extend(rule_panic_path(src));
        if src.path != LOCK_WRAPPER_IMPL {
            out.extend(rule_lock_discipline(src));
        }
    }
    if FORBID_UNSAFE_ROOTS.contains(&src.path.as_str()) {
        out.extend(rule_forbid_unsafe(src));
    }
    out
}

fn ident_at(tokens: &[Token], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(tokens: &[Token], i: usize) -> Option<char> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(Tok::Punct(c)) => Some(*c),
        _ => None,
    }
}

/// Is the `unsafe` at `line` justified by an adjacent SAFETY comment?
/// Items (`unsafe fn` / `unsafe impl`) may instead carry a `/// # Safety`
/// doc section; attribute lines between the comment and the item are
/// skipped.
fn safety_covered(src: &Source, line: usize, is_item: bool) -> bool {
    let accepts = |c: &str| c.contains("SAFETY:") || (is_item && c.contains("# Safety"));
    if accepts(src.comment(line)) {
        return true;
    }
    let mut l = line.saturating_sub(1);
    while l >= 1 {
        if src.line_has_code(l) {
            if src.is_attr_line(l) {
                l -= 1;
                continue;
            }
            return false;
        }
        let c = src.comment(l);
        if c.is_empty() {
            return false; // blank line: the justification must be adjacent
        }
        if accepts(c) {
            return true;
        }
        l -= 1;
    }
    false
}

/// **unsafe-safety**: every `unsafe` occurrence needs a justification.
pub fn rule_unsafe_safety(src: &Source) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in src.tokens.iter().enumerate() {
        let Tok::Ident(id) = &t.kind else { continue };
        if id != "unsafe" {
            continue;
        }
        let next = ident_at(&src.tokens, i + 1);
        let (is_item, what) = match next {
            Some("fn") => (true, "unsafe fn"),
            Some("impl") => (true, "unsafe impl"),
            Some("trait") => (true, "unsafe trait"),
            _ => (false, "unsafe block"),
        };
        if !safety_covered(src, t.line, is_item) {
            out.push(Finding {
                path: src.path.clone(),
                line: t.line,
                rule: "unsafe-safety",
                msg: format!(
                    "{what} without an adjacent `// SAFETY:` comment{}",
                    if is_item { " (or `/// # Safety` doc section)" } else { "" }
                ),
            });
        }
    }
    out
}

/// **env-registry**: no raw reads of `KFDS_*` environment variables
/// outside `kfds-switches`.
pub fn rule_env_registry(src: &Source) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in src.tokens.iter().enumerate() {
        let Tok::Str(s) = &t.kind else { continue };
        if !s.starts_with("KFDS_") {
            continue;
        }
        // `var("KFDS_…")` / `var_os("KFDS_…")` function reads.
        let fn_read = punct_at(&src.tokens, i.wrapping_sub(1)) == Some('(')
            && matches!(ident_at(&src.tokens, i.wrapping_sub(2)), Some("var") | Some("var_os"));
        // `env!("KFDS_…")` / `option_env!("KFDS_…")` macro reads.
        let macro_read = punct_at(&src.tokens, i.wrapping_sub(1)) == Some('(')
            && punct_at(&src.tokens, i.wrapping_sub(2)) == Some('!')
            && matches!(ident_at(&src.tokens, i.wrapping_sub(3)), Some("env") | Some("option_env"));
        if fn_read || macro_read {
            out.push(Finding {
                path: src.path.clone(),
                line: t.line,
                rule: "env-registry",
                msg: format!(
                    "raw environment read of \"{s}\" — route it through the \
                     kfds-switches registry (the single source of truth for KFDS_* switches)"
                ),
            });
        }
    }
    out
}

/// Token index ranges (inclusive start, exclusive end) covered by
/// `#[cfg(test)] mod … { … }` blocks.
fn test_mod_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Match `# [ cfg ( test ) ]`.
        let is_cfg_test = punct_at(tokens, i) == Some('#')
            && punct_at(tokens, i + 1) == Some('[')
            && ident_at(tokens, i + 2) == Some("cfg")
            && punct_at(tokens, i + 3) == Some('(')
            && ident_at(tokens, i + 4) == Some("test")
            && punct_at(tokens, i + 5) == Some(')')
            && punct_at(tokens, i + 6) == Some(']');
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Find the `mod` this attribute decorates (skipping further
        // attributes), then its opening brace, then brace-match.
        let mut j = i + 7;
        while j < tokens.len() && ident_at(tokens, j) != Some("mod") {
            j += 1;
        }
        let mut k = j;
        while k < tokens.len() && punct_at(tokens, k) != Some('{') {
            k += 1;
        }
        let mut depth = 0;
        let mut end = k;
        while end < tokens.len() {
            match punct_at(tokens, end) {
                Some('{') => depth += 1,
                Some('}') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            end += 1;
        }
        regions.push((i, end + 1));
        i = end + 1;
    }
    regions
}

/// **hot-path-alloc**: no `Vec::new` / `vec!` / `.to_vec()` in hot-path
/// modules outside tests.
pub fn rule_hot_path_alloc(src: &Source) -> Vec<Finding> {
    let tokens = &src.tokens;
    let regions = test_mod_regions(tokens);
    let in_test = |i: usize| regions.iter().any(|&(s, e)| i >= s && i < e);
    let waived = |line: usize| {
        src.comment(line).contains("lint:allow(hot-path-alloc)")
            || src.comment(line.saturating_sub(1)).contains("lint:allow(hot-path-alloc)")
    };
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        let Tok::Ident(id) = &t.kind else { continue };
        if in_test(i) || waived(t.line) {
            continue;
        }
        let hit = match id.as_str() {
            // `Vec :: new(` and `Vec :: with_capacity(` — fresh heap
            // allocations on a pool-only path.
            "Vec" => {
                punct_at(tokens, i + 1) == Some(':')
                    && punct_at(tokens, i + 2) == Some(':')
                    && matches!(ident_at(tokens, i + 3), Some("new") | Some("with_capacity"))
            }
            // `vec![…]` macro.
            "vec" => punct_at(tokens, i + 1) == Some('!'),
            // `.to_vec()`.
            "to_vec" => punct_at(tokens, i.wrapping_sub(1)) == Some('.'),
            _ => false,
        };
        if hit {
            out.push(Finding {
                path: src.path.clone(),
                line: t.line,
                rule: "hot-path-alloc",
                msg: format!(
                    "`{id}` allocation in a hot-path module — take scratch from \
                     kfds_la::workspace, or waive with `// lint:allow(hot-path-alloc): why`"
                ),
            });
        }
    }
    out
}

/// **unsafe-preconditions**: `pub … unsafe fn` in `kfds-la` must assert
/// its preconditions (at least one `debug_assert!`/`assert!` in the body).
pub fn rule_unsafe_preconditions(src: &Source) -> Vec<Finding> {
    let tokens = &src.tokens;
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if ident_at(tokens, i) != Some("pub") {
            i += 1;
            continue;
        }
        // Skip a `pub(crate)` / `pub(super)` visibility scope.
        let mut j = i + 1;
        if punct_at(tokens, j) == Some('(') {
            while j < tokens.len() && punct_at(tokens, j) != Some(')') {
                j += 1;
            }
            j += 1;
        }
        if ident_at(tokens, j) != Some("unsafe") || ident_at(tokens, j + 1) != Some("fn") {
            i += 1;
            continue;
        }
        let name = ident_at(tokens, j + 2).unwrap_or("?").to_string();
        let sig_line = tokens[j].line;
        // Body: first `{` after the signature, brace-matched.
        let mut k = j + 2;
        while k < tokens.len() && punct_at(tokens, k) != Some('{') {
            k += 1;
        }
        let body_start = k;
        let mut depth = 0;
        while k < tokens.len() {
            match punct_at(tokens, k) {
                Some('{') => depth += 1,
                Some('}') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        let has_assert = tokens[body_start..=k.min(tokens.len().saturating_sub(1))]
            .iter()
            .any(|t| matches!(&t.kind, Tok::Ident(id) if id.starts_with("debug_assert") || id.starts_with("assert")));
        if !has_assert {
            out.push(Finding {
                path: src.path.clone(),
                line: sig_line,
                rule: "unsafe-preconditions",
                msg: format!(
                    "public unsafe fn `{name}` declares no executable preconditions — \
                     add `debug_assert!`s for its index/stride/feature contract"
                ),
            });
        }
        i = k + 1;
    }
    out
}

/// Is line `line` justified by a comment containing `needle`, on the
/// same line or adjacent above (attribute lines skipped, blank lines
/// break adjacency)? The shared waiver mechanism for `PANIC-OK:` and
/// `lint:allow(…)` comments, mirroring [`safety_covered`].
fn comment_justified(src: &Source, line: usize, needle: &str) -> bool {
    if src.comment(line).contains(needle) {
        return true;
    }
    let mut l = line.saturating_sub(1);
    while l >= 1 {
        if src.line_has_code(l) {
            if src.is_attr_line(l) {
                l -= 1;
                continue;
            }
            return false;
        }
        let c = src.comment(l);
        if c.is_empty() {
            return false; // blank line: the justification must be adjacent
        }
        if c.contains(needle) {
            return true;
        }
        l -= 1;
    }
    false
}

/// **panic-path**: the concurrency crates' non-test code must not
/// contain panicking calls — return a typed error instead, or justify
/// the invariant with an adjacent `// PANIC-OK:` comment.
pub fn rule_panic_path(src: &Source) -> Vec<Finding> {
    let tokens = &src.tokens;
    let regions = test_mod_regions(tokens);
    let in_test = |i: usize| regions.iter().any(|&(s, e)| i >= s && i < e);
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        let Tok::Ident(id) = &t.kind else { continue };
        if in_test(i) {
            continue;
        }
        let what = match id.as_str() {
            // `.unwrap()` / `.expect(` method calls — `unwrap_or_else`
            // and friends are distinct idents and stay legal.
            "unwrap" | "expect"
                if punct_at(tokens, i.wrapping_sub(1)) == Some('.')
                    && punct_at(tokens, i + 1) == Some('(') =>
            {
                format!(".{id}(…)")
            }
            "panic" | "unreachable" | "todo" | "unimplemented"
                if punct_at(tokens, i + 1) == Some('!') =>
            {
                format!("{id}!(…)")
            }
            _ => continue,
        };
        if comment_justified(src, t.line, "PANIC-OK:") {
            continue;
        }
        out.push(Finding {
            path: src.path.clone(),
            line: t.line,
            rule: "panic-path",
            msg: format!(
                "{what} on the data plane — return a typed error (ServeError/ShardError), \
                 or justify the invariant with an adjacent `// PANIC-OK: why`"
            ),
        });
    }
    out
}

/// A statically tracked held lock: the guard's binding name (None for a
/// temporary that dies at the statement's `;`), the field it locked, its
/// rank, and the brace depth it was acquired at.
struct HeldLock {
    name: Option<String>,
    field: &'static str,
    rank: LockRank,
    depth: usize,
}

/// Receiver field of the `.lock()`/`.read()`/`.write()` whose `.` sits at
/// token index `dot`: the identifier before the dot, walking back over
/// one trailing `[…]`/`(…)` group (`self.mailboxes[dst].lock()`).
fn receiver_ident(tokens: &[Token], dot: usize) -> Option<&str> {
    let mut j = dot.checked_sub(1)?;
    if let Some(close @ (']' | ')')) = punct_at(tokens, j) {
        let open = if close == ']' { '[' } else { '(' };
        let mut depth = 0i32;
        loop {
            match punct_at(tokens, j) {
                Some(c) if c == close => depth += 1,
                Some(c) if c == open => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j = j.checked_sub(1)?;
        }
        j = j.checked_sub(1)?;
    }
    ident_at(tokens, j)
}

/// If the statement containing token `i` is a `let` binding, the bound
/// identifier (`let mut g = …` → `g`). Scans back to the nearest
/// statement boundary (`;`, `{`, `}`).
fn let_binding_name(tokens: &[Token], i: usize) -> Option<String> {
    let mut j = i;
    while j > 0 {
        if matches!(punct_at(tokens, j - 1), Some(';') | Some('{') | Some('}')) {
            break;
        }
        j -= 1;
    }
    if ident_at(tokens, j) != Some("let") {
        return None;
    }
    let mut k = j + 1;
    if ident_at(tokens, k) == Some("mut") {
        k += 1;
    }
    ident_at(tokens, k).map(String::from)
}

/// **lock-discipline**: the concurrency crates must not name the raw
/// `std::sync` primitives (use the ranked wrappers; waive a deliberate
/// exception with `lint:allow(raw-lock)`), and statically visible nested
/// acquisitions of the ranked fields in [`FIELD_RANKS`] must take locks
/// in strictly increasing rank order — the same invariant the
/// debug-build thread-local checker enforces at runtime, caught at lint
/// time instead. `lint:allow(lock-order)` waives a nesting the analysis
/// cannot see through (e.g. a guard moved across a closure boundary).
pub fn rule_lock_discipline(src: &Source) -> Vec<Finding> {
    let tokens = &src.tokens;
    let regions = test_mod_regions(tokens);
    let in_test = |i: usize| regions.iter().any(|&(s, e)| i >= s && i < e);
    let mut out = Vec::new();

    // Part 1: raw primitives are banned outright.
    for (i, t) in tokens.iter().enumerate() {
        let Tok::Ident(id) = &t.kind else { continue };
        if !matches!(id.as_str(), "Mutex" | "RwLock" | "Condvar") || in_test(i) {
            continue;
        }
        if comment_justified(src, t.line, "lint:allow(raw-lock)") {
            continue;
        }
        out.push(Finding {
            path: src.path.clone(),
            line: t.line,
            rule: "lock-discipline",
            msg: format!(
                "raw `{id}` in a concurrency crate — use the ranked wrapper from \
                 `kfds_rt::sync` (Ranked{id}), or waive with `// lint:allow(raw-lock): why`"
            ),
        });
    }

    // Part 2: rank order across statically visible nested acquisitions.
    let mut held: Vec<HeldLock> = Vec::new();
    let mut depth = 0usize;
    for i in 0..tokens.len() {
        match punct_at(tokens, i) {
            Some('{') => {
                depth += 1;
                continue;
            }
            Some('}') => {
                depth = depth.saturating_sub(1);
                // Let-bound guards die with their scope.
                held.retain(|h| h.depth <= depth);
                continue;
            }
            Some(';') => {
                // Temporaries die at the end of their statement.
                held.retain(|h| h.name.is_some() || h.depth < depth);
                continue;
            }
            _ => {}
        }
        // `drop(g)` releases the named guard early.
        if ident_at(tokens, i) == Some("drop") && punct_at(tokens, i + 1) == Some('(') {
            if let (Some(name), Some(')')) = (ident_at(tokens, i + 2), punct_at(tokens, i + 3)) {
                held.retain(|h| h.name.as_deref() != Some(name));
            }
        }
        // A ranked acquisition: `<field>.lock()` / `.read()` / `.write()`
        // with no arguments, receiver field found in FIELD_RANKS.
        if !matches!(ident_at(tokens, i), Some("lock") | Some("read") | Some("write"))
            || punct_at(tokens, i.wrapping_sub(1)) != Some('.')
            || punct_at(tokens, i + 1) != Some('(')
            || punct_at(tokens, i + 2) != Some(')')
        {
            continue;
        }
        let Some(field) = receiver_ident(tokens, i - 1) else { continue };
        let Some(&(field, rank)) = FIELD_RANKS.iter().find(|(f, _)| *f == field) else {
            continue;
        };
        let line = tokens[i].line;
        if !in_test(i) && !comment_justified(src, line, "lint:allow(lock-order)") {
            for h in &held {
                if h.rank >= rank {
                    out.push(Finding {
                        path: src.path.clone(),
                        line,
                        rule: "lock-discipline",
                        msg: format!(
                            "acquiring `{field}` ({:?}, rank {}) while `{}` ({:?}, rank {}) is \
                             held — lock ranks must strictly increase (see the LockRank registry \
                             in kfds_rt::sync)",
                            rank, rank as u8, h.field, h.rank, h.rank as u8
                        ),
                    });
                }
            }
        }
        held.push(HeldLock { name: let_binding_name(tokens, i), field, rank, depth });
    }
    out
}

/// **forbid-unsafe**: listed crate roots keep `#![forbid(unsafe_code)]`.
pub fn rule_forbid_unsafe(src: &Source) -> Vec<Finding> {
    let t = &src.tokens;
    let present = (0..t.len()).any(|i| {
        punct_at(t, i) == Some('#')
            && punct_at(t, i + 1) == Some('!')
            && punct_at(t, i + 2) == Some('[')
            && ident_at(t, i + 3) == Some("forbid")
            && punct_at(t, i + 4) == Some('(')
            && ident_at(t, i + 5) == Some("unsafe_code")
            && punct_at(t, i + 6) == Some(')')
            && punct_at(t, i + 7) == Some(']')
    });
    if present {
        return Vec::new();
    }
    vec![Finding {
        path: src.path.clone(),
        line: 1,
        rule: "forbid-unsafe",
        msg: "crate root must keep its `#![forbid(unsafe_code)]` attribute (this crate is \
              unsafe-free by policy; remove it from FORBID_UNSAFE_ROOTS only with a SAFETY \
              story for the new unsafe code)"
            .into(),
    }]
}

/// Registry switch names referenced from test code in `src`: the whole
/// file when it lives under a `tests/` directory, otherwise only tokens
/// inside `#[cfg(test)]` modules. Both identifiers (`KFDS_SIMD.is_off()`)
/// and string literals (`set_var("KFDS_SIMD", …)`) count. xtask itself is
/// excluded — its lint fixtures mention switch names without testing them.
pub fn test_switch_refs(src: &Source) -> Vec<&'static str> {
    if src.path.starts_with("crates/xtask/") {
        return Vec::new();
    }
    let whole_file = src.path.contains("/tests/");
    let regions = if whole_file { Vec::new() } else { test_mod_regions(&src.tokens) };
    let in_test = |i: usize| whole_file || regions.iter().any(|&(s, e)| i >= s && i < e);
    let mut out = Vec::new();
    for (i, t) in src.tokens.iter().enumerate() {
        if !in_test(i) {
            continue;
        }
        let text = match &t.kind {
            Tok::Ident(s) => s.as_str(),
            Tok::Str(s) => s.as_str(),
            Tok::Punct(_) => continue,
        };
        for sw in kfds_switches::ALL {
            if text.contains(sw.name) && !out.contains(&sw.name) {
                out.push(sw.name);
            }
        }
    }
    out
}

/// **switch-coverage**: every switch in the `kfds-switches` registry must
/// be (1) documented in the README switch table, (2) exercised by a
/// `ci.sh` lane or `--check` gate, and (3) referenced by at least one
/// test. Called from `lint_repo`, which supplies the README/ci.sh texts
/// and the union of [`test_switch_refs`] over every scanned file.
pub fn rule_switch_coverage(readme: &str, ci: &str, tested: &[&str]) -> Vec<Finding> {
    let mut out = Vec::new();
    for sw in kfds_switches::ALL {
        let name = sw.name;
        if !readme.contains(&format!("`{name}`")) {
            out.push(Finding {
                path: "README.md".into(),
                line: 0,
                rule: "switch-coverage",
                msg: format!("`{name}` has no row in the runtime-switch table"),
            });
        }
        if !ci.contains(name) {
            out.push(Finding {
                path: "ci.sh".into(),
                line: 0,
                rule: "switch-coverage",
                msg: format!("`{name}` is not exercised by any ci.sh lane or --check gate"),
            });
        }
        if !tested.contains(&name) {
            out.push(Finding {
                path: "crates/switches/src/lib.rs".into(),
                line: 0,
                rule: "switch-coverage",
                msg: format!(
                    "`{name}` is not referenced by any test (neither a tests/ file nor a \
                     #[cfg(test)] module mentions it)"
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan_str;

    fn lint(path: &str, text: &str) -> Vec<Finding> {
        check_source(&scan_str(path, text))
    }

    // --- unsafe-safety -------------------------------------------------

    #[test]
    fn unsafe_block_without_safety_comment_fails() {
        let f = lint("crates/x/src/a.rs", "fn f(p: *const u8) -> u8 { unsafe { *p } }\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "unsafe-safety");
    }

    #[test]
    fn deleting_a_safety_comment_is_what_fails() {
        // The acceptance criterion, as a pair: with the comment the file is
        // clean; with the comment deleted (only change) it is not.
        let with = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid.\n    unsafe { *p }\n}\n";
        let without = "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        assert!(lint("crates/x/src/a.rs", with).is_empty());
        assert_eq!(lint("crates/x/src/a.rs", without).len(), 1);
    }

    #[test]
    fn safety_comment_on_same_line_counts() {
        let f =
            lint("crates/x/src/a.rs", "let v = unsafe { g() }; // SAFETY: g is infallible here.\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unsafe_fn_accepts_doc_safety_section_through_attributes() {
        let src = "/// Does things.\n///\n/// # Safety\n/// Caller must uphold X.\n#[inline]\npub unsafe fn g(n: usize) { debug_assert!(n > 0); }\n";
        let f = lint("crates/x/src/a.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unsafe_impl_needs_its_own_comment() {
        let src =
            "// SAFETY: T is plain data.\nunsafe impl Send for A {}\nunsafe impl Sync for A {}\n";
        let f = lint("crates/x/src/a.rs", src);
        assert_eq!(f.len(), 1, "the second impl is uncovered: {f:?}");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn unsafe_in_comment_or_string_is_ignored() {
        let src = "// this mentions unsafe code\nlet s = \"unsafe { }\";\n";
        assert!(lint("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn blank_line_breaks_safety_adjacency() {
        let src = "// SAFETY: stale justification far above.\n\nlet v = unsafe { g() };\n";
        assert_eq!(lint("crates/x/src/a.rs", src).len(), 1);
    }

    // --- env-registry --------------------------------------------------

    #[test]
    fn raw_kfds_env_read_fails() {
        // The acceptance criterion: adding a raw env::var("KFDS_X") to any
        // non-registry file is a finding.
        let src = "fn f() -> bool { std::env::var(\"KFDS_X\").is_ok() }\n";
        let f = lint("crates/x/src/a.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "env-registry");
    }

    #[test]
    fn var_os_and_option_env_reads_fail() {
        let src = "fn f() { let _ = std::env::var_os(\"KFDS_SIMD\"); let _ = option_env!(\"KFDS_Y\"); }\n";
        let f = lint("crates/x/src/a.rs", src);
        assert_eq!(f.len(), 2, "{f:?}");
    }

    #[test]
    fn registry_file_and_test_set_var_are_allowed() {
        let read = "pub fn raw(&self) -> Option<OsString> { std::env::var_os(self.name) }\n";
        // (filtering forbid-unsafe: the fixture is a snippet, not the
        // whole crate root, so the attribute is legitimately absent)
        let f = lint("crates/switches/src/lib.rs", read);
        assert!(!f.iter().any(|f| f.rule == "env-registry"), "{f:?}");
        let set = "fn t() { std::env::set_var(\"KFDS_SIMD\", \"off\"); std::env::remove_var(\"KFDS_SIMD\"); }\n";
        assert!(lint("crates/x/tests/t.rs", set).is_empty());
    }

    #[test]
    fn kfds_literal_not_passed_to_env_is_allowed() {
        let src = "const NAME: &str = \"KFDS_SIMD\"; // doc tables etc.\n";
        assert!(lint("crates/x/src/a.rs", src).is_empty());
    }

    // --- hot-path-alloc ------------------------------------------------

    #[test]
    fn alloc_in_hot_module_fails_but_test_mod_is_exempt() {
        let src = "fn hot() { let v = vec![0.0; 8]; let w = Vec::new(); let u = x.to_vec(); }\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { let v = vec![1]; let w = Vec::new(); }\n}\n";
        let f = lint("crates/la/src/simd.rs", src);
        assert_eq!(f.len(), 3, "{f:?}");
        assert!(f.iter().all(|f| f.rule == "hot-path-alloc"));
    }

    #[test]
    fn alloc_waiver_comment_is_honored() {
        let src = "fn cold() {\n    // lint:allow(hot-path-alloc): one-time table build at init.\n    let v = vec![0.0; 8];\n}\n";
        assert!(lint("crates/la/src/blas1.rs", src).is_empty());
    }

    #[test]
    fn alloc_in_unlisted_module_is_fine() {
        let src = "fn f() { let v = vec![0.0; 8]; }\n";
        assert!(lint("crates/core/src/factor.rs", src).is_empty());
    }

    // --- unsafe-preconditions ------------------------------------------

    #[test]
    fn pub_unsafe_fn_without_assert_fails_in_la() {
        let src = "/// # Safety\n/// p valid.\npub unsafe fn f(p: *const f64) -> f64 { *p }\n";
        let f = lint("crates/la/src/simd.rs", src);
        assert!(f.iter().any(|f| f.rule == "unsafe-preconditions"), "{f:?}");
    }

    #[test]
    fn pub_crate_unsafe_fn_with_debug_assert_passes() {
        let src = "/// # Safety\n/// p valid for n elements.\npub(crate) unsafe fn f(p: *const f64, n: usize) -> f64 {\n    debug_assert!(!p.is_null() && n > 0);\n    *p.add(n - 1)\n}\n";
        let f = lint("crates/la/src/simd.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn precondition_rule_scoped_to_la() {
        let src = "/// # Safety\n/// fine.\npub unsafe fn f(p: *const f64) -> f64 { *p }\n";
        assert!(lint("crates/core/src/share.rs", src).is_empty());
    }

    // --- lock-discipline ------------------------------------------------

    #[test]
    fn raw_mutex_in_serve_fails() {
        // The acceptance criterion: reintroducing a raw std primitive in
        // a concurrency crate is a finding.
        let src = "use std::sync::Mutex;\nstruct S { m: Mutex<i32> }\n";
        let f = lint("crates/serve/src/service.rs", src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|f| f.rule == "lock-discipline"));
    }

    #[test]
    fn raw_lock_waiver_and_test_mod_are_honored() {
        let waived =
            "// lint:allow(raw-lock): FFI handoff needs the std type.\nuse std::sync::Condvar;\n";
        assert!(lint("crates/shard/src/router.rs", waived).is_empty());
        let in_test = "#[cfg(test)]\nmod tests {\n    use std::sync::Mutex;\n}\n";
        assert!(lint("crates/rt/src/comm.rs", in_test).is_empty());
    }

    #[test]
    fn ranked_wrapper_impl_and_other_crates_are_exempt() {
        let src = "use std::sync::{Mutex, Condvar};\n";
        assert!(
            lint("crates/rt/src/sync.rs", src).is_empty(),
            "the wrapper impl names what it wraps"
        );
        assert!(
            lint("crates/core/src/factor.rs", src).is_empty(),
            "rule is scoped to concurrency crates"
        );
    }

    #[test]
    fn rank_inverted_nested_lock_fails() {
        // `workers` (RouterControl) under `plane`
        // (RouterDataPlane) is exactly the inversion the runtime checker
        // panics on — the lint catches it statically.
        let src = "fn shutdown(&self) {\n    let p = self.plane.lock();\n    let w = self.workers.lock();\n}\n";
        let f = lint("crates/shard/src/router.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "lock-discipline");
        assert_eq!(f[0].line, 3);
        assert!(f[0].msg.contains("strictly increase"), "{}", f[0].msg);
    }

    #[test]
    fn increasing_rank_nesting_passes() {
        let src = "fn f(&self) {\n    let q = self.queue.lock();\n    let s = self.slot.lock();\n    let e = self.errs.lock();\n}\n";
        assert!(lint("crates/serve/src/service.rs", src).is_empty());
    }

    #[test]
    fn same_rank_nesting_fails() {
        let src =
            "fn f(&self) {\n    let a = self.plane.lock();\n    let b = self.plane.lock();\n}\n";
        let f = lint("crates/shard/src/router.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn drop_and_scope_exit_release_held_ranks() {
        // Explicit drop() releases; so does leaving the binding's block.
        let dropped = "fn f(&self) {\n    let p = self.plane.lock();\n    drop(p);\n    let w = self.workers.lock();\n}\n";
        assert!(lint("crates/shard/src/router.rs", dropped).is_empty());
        let scoped = "fn f(&self) {\n    { let p = self.plane.lock(); }\n    let w = self.workers.lock();\n}\n";
        assert!(lint("crates/shard/src/router.rs", scoped).is_empty());
        let temp =
            "fn f(&self) {\n    self.plane.lock().route();\n    let w = self.workers.lock();\n}\n";
        assert!(lint("crates/shard/src/router.rs", temp).is_empty(), "temporary guard dies at `;`");
    }

    #[test]
    fn indexed_receiver_resolves_to_its_field() {
        // `self.mailboxes[dst].lock()` must resolve to `mailboxes`
        // (RtMailbox, the top rank) — nesting anything under it fails.
        let src = "fn f(&self) {\n    let mb = self.mailboxes[dst].lock();\n    let e = self.errs.lock();\n}\n";
        let f = lint("crates/rt/src/comm.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].msg.contains("mailboxes"), "{}", f[0].msg);
    }

    #[test]
    fn unranked_receivers_are_ignored() {
        // `state` is deliberately absent from FIELD_RANKS (per-instance
        // rank); the static analysis must not guess.
        let src =
            "fn f(&self) {\n    let st = self.state.lock();\n    let q = self.queue.lock();\n}\n";
        assert!(lint("crates/shard/src/cache.rs", src).is_empty());
    }

    #[test]
    fn lock_order_waiver_is_honored() {
        let src = "fn f(&self) {\n    let p = self.plane.lock();\n    // lint:allow(lock-order): guard provably dropped on the other thread.\n    let w = self.workers.lock();\n}\n";
        assert!(lint("crates/shard/src/router.rs", src).is_empty());
    }

    // --- panic-path ------------------------------------------------------

    #[test]
    fn unwaivered_unwrap_on_data_plane_fails() {
        // The acceptance criterion: a bare .unwrap() in serve/shard/rt
        // non-test code is a finding.
        let src = "fn f(v: Option<u32>) -> u32 { v.unwrap() }\n";
        let f = lint("crates/serve/src/service.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "panic-path");
    }

    #[test]
    fn panic_macros_fail_and_panic_ok_waives() {
        let bare = "fn f(x: u8) {\n    match x {\n        0 => panic!(\"zero\"),\n        1 => unreachable!(),\n        _ => todo!(),\n    }\n}\n";
        let f = lint("crates/shard/src/router.rs", bare);
        assert_eq!(f.len(), 3, "{f:?}");
        let waived = "fn f(h: std::thread::JoinHandle<()>) {\n    // PANIC-OK: worker panics are contained by catch_unwind upstream.\n    h.join().expect(\"worker panicked\");\n}\n";
        assert!(lint("crates/rt/src/comm.rs", waived).is_empty());
    }

    #[test]
    fn panic_rule_spares_tests_adapters_and_other_crates() {
        let in_test = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); panic!(\"boom\"); }\n}\n";
        assert!(lint("crates/serve/src/cache.rs", in_test).is_empty());
        let adapters =
            "fn f(v: Option<u32>) -> u32 { v.unwrap_or_default().max(v.unwrap_or(0)) }\n";
        assert!(
            lint("crates/serve/src/stats.rs", adapters).is_empty(),
            "unwrap_or_* are not unwrap"
        );
        let elsewhere = "fn f(v: Option<u32>) -> u32 { v.unwrap() }\n";
        assert!(lint("crates/core/src/factor.rs", elsewhere).is_empty());
    }

    // --- forbid-unsafe ---------------------------------------------------

    #[test]
    fn missing_forbid_attribute_fails_on_listed_roots() {
        let f = lint("crates/switches/src/lib.rs", "pub struct Switch;\n");
        assert!(f.iter().any(|f| f.rule == "forbid-unsafe"), "{f:?}");
        let with = "#![forbid(unsafe_code)]\npub struct Switch;\n";
        assert!(lint("crates/switches/src/lib.rs", with).is_empty());
        assert!(
            lint("crates/la/src/lib.rs", "pub mod simd;\n").is_empty(),
            "unlisted root is fine"
        );
    }

    // --- switch-coverage -------------------------------------------------

    #[test]
    fn switch_coverage_requires_all_three_legs() {
        // Full coverage: every registry switch appears everywhere.
        let readme: String =
            kfds_switches::ALL.iter().map(|s| format!("| `{}` | row |\n", s.name)).collect();
        let ci: String =
            kfds_switches::ALL.iter().map(|s| format!("{}=off lane\n", s.name)).collect();
        let tested: Vec<&str> = kfds_switches::ALL.iter().map(|s| s.name).collect();
        assert!(rule_switch_coverage(&readme, &ci, &tested).is_empty());

        // Drop one switch from each leg: exactly three findings, one per
        // missing leg, all for that switch.
        let victim = kfds_switches::ALL[0].name;
        let readme2: String =
            kfds_switches::ALL[1..].iter().map(|s| format!("| `{}` | row |\n", s.name)).collect();
        let ci2: String =
            kfds_switches::ALL[1..].iter().map(|s| format!("{}=off lane\n", s.name)).collect();
        let tested2: Vec<&str> = kfds_switches::ALL[1..].iter().map(|s| s.name).collect();
        let f = rule_switch_coverage(&readme2, &ci2, &tested2);
        assert_eq!(f.len(), 3, "{f:?}");
        assert!(f.iter().all(|f| f.rule == "switch-coverage" && f.msg.contains(victim)), "{f:?}");
    }

    #[test]
    fn test_switch_refs_sees_tests_and_skips_xtask_fixtures() {
        let t = scan_str(
            "crates/la/tests/simd_equiv.rs",
            "fn t() { std::env::set_var(\"KFDS_SIMD\", \"off\"); }\n",
        );
        assert_eq!(test_switch_refs(&t), vec!["KFDS_SIMD"]);
        // Non-test code referencing a switch does not count…
        let s =
            scan_str("crates/la/src/simd.rs", "fn f() { kfds_switches::KFDS_SIMD.is_off(); }\n");
        assert!(test_switch_refs(&s).is_empty());
        // …but a #[cfg(test)] module in src does.
        let m = scan_str(
            "crates/la/src/simd.rs",
            "#[cfg(test)]\nmod tests {\n    fn t() { kfds_switches::KFDS_SIMD.is_off(); }\n}\n",
        );
        assert_eq!(test_switch_refs(&m), vec!["KFDS_SIMD"]);
        // xtask's own fixtures never count as test coverage.
        let x = scan_str(
            "crates/xtask/src/rules.rs",
            "#[cfg(test)]\nmod tests {\n    fn t() { let _ = \"KFDS_SIMD\"; }\n}\n",
        );
        assert!(test_switch_refs(&x).is_empty());
    }
}
