//! The `kfds-lint` rules.
//!
//! Each rule consumes a scanned [`Source`] and yields [`Finding`]s. The
//! repo invariants enforced here (see `DESIGN.md` §7 "Safety &
//! invariants"):
//!
//! * **unsafe-safety** — every `unsafe` block, `unsafe fn`, and
//!   `unsafe impl` carries a `// SAFETY:` justification (items may use a
//!   `/// # Safety` doc section instead), adjacent above or on the line.
//! * **env-registry** — `KFDS_*` environment variables are read only
//!   through the `kfds-switches` registry; raw `env::var("KFDS_…")` /
//!   `var_os` / `env!` / `option_env!` reads anywhere else are rejected.
//!   (Writes — `set_var` in tests — are fine; the registry is the single
//!   source of truth for *reads*.)
//! * **hot-path-alloc** — modules on the [`HOT_PATH_MODULES`] list (the
//!   allocation-free kernels that take scratch from
//!   `kfds_la::workspace`) must not call `Vec::new`, `vec![…]`, or
//!   `.to_vec()` outside `#[cfg(test)]` modules. A deliberate cold-path
//!   exception carries a `lint:allow(hot-path-alloc)` comment on the
//!   same or previous line.
//! * **unsafe-preconditions** — every `pub … unsafe fn` in `kfds-la`
//!   declares its preconditions executably: the body must contain at
//!   least one `debug_assert!`/`assert!` family call.

use crate::scan::{Source, Tok, Token};

/// Modules that must stay allocation-free outside tests (the workspace
/// pool exists precisely so these never touch the global heap on the hot
/// path). Paths are repo-relative with `/` separators.
pub const HOT_PATH_MODULES: &[&str] = &[
    "crates/la/src/simd.rs",
    "crates/la/src/blas1.rs",
    "crates/la/src/blas2.rs",
    "crates/la/src/batch.rs",
    "crates/kernels/src/gsks.rs",
    "crates/tree/src/dist_tiles.rs",
];

/// Files allowed to read `KFDS_*` environment variables directly: the
/// registry itself.
pub const ENV_REGISTRY_PREFIX: &str = "crates/switches/";

/// Path prefix whose public unsafe helpers must declare executable
/// preconditions.
pub const UNSAFE_PRECONDITION_PREFIX: &str = "crates/la/src/";

/// One lint violation.
#[derive(Debug, Clone)]
pub struct Finding {
    pub path: String,
    pub line: usize,
    pub rule: &'static str,
    pub msg: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.msg)
    }
}

/// Runs every rule that applies to `src` (path-scoped rules check
/// `src.path` themselves).
pub fn check_source(src: &Source) -> Vec<Finding> {
    let mut out = rule_unsafe_safety(src);
    if !src.path.starts_with(ENV_REGISTRY_PREFIX) {
        out.extend(rule_env_registry(src));
    }
    if HOT_PATH_MODULES.contains(&src.path.as_str()) {
        out.extend(rule_hot_path_alloc(src));
    }
    if src.path.starts_with(UNSAFE_PRECONDITION_PREFIX) {
        out.extend(rule_unsafe_preconditions(src));
    }
    out
}

fn ident_at(tokens: &[Token], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(tokens: &[Token], i: usize) -> Option<char> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(Tok::Punct(c)) => Some(*c),
        _ => None,
    }
}

/// Is the `unsafe` at `line` justified by an adjacent SAFETY comment?
/// Items (`unsafe fn` / `unsafe impl`) may instead carry a `/// # Safety`
/// doc section; attribute lines between the comment and the item are
/// skipped.
fn safety_covered(src: &Source, line: usize, is_item: bool) -> bool {
    let accepts = |c: &str| c.contains("SAFETY:") || (is_item && c.contains("# Safety"));
    if accepts(src.comment(line)) {
        return true;
    }
    let mut l = line.saturating_sub(1);
    while l >= 1 {
        if src.line_has_code(l) {
            if src.is_attr_line(l) {
                l -= 1;
                continue;
            }
            return false;
        }
        let c = src.comment(l);
        if c.is_empty() {
            return false; // blank line: the justification must be adjacent
        }
        if accepts(c) {
            return true;
        }
        l -= 1;
    }
    false
}

/// **unsafe-safety**: every `unsafe` occurrence needs a justification.
pub fn rule_unsafe_safety(src: &Source) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in src.tokens.iter().enumerate() {
        let Tok::Ident(id) = &t.kind else { continue };
        if id != "unsafe" {
            continue;
        }
        let next = ident_at(&src.tokens, i + 1);
        let (is_item, what) = match next {
            Some("fn") => (true, "unsafe fn"),
            Some("impl") => (true, "unsafe impl"),
            Some("trait") => (true, "unsafe trait"),
            _ => (false, "unsafe block"),
        };
        if !safety_covered(src, t.line, is_item) {
            out.push(Finding {
                path: src.path.clone(),
                line: t.line,
                rule: "unsafe-safety",
                msg: format!(
                    "{what} without an adjacent `// SAFETY:` comment{}",
                    if is_item { " (or `/// # Safety` doc section)" } else { "" }
                ),
            });
        }
    }
    out
}

/// **env-registry**: no raw reads of `KFDS_*` environment variables
/// outside `kfds-switches`.
pub fn rule_env_registry(src: &Source) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in src.tokens.iter().enumerate() {
        let Tok::Str(s) = &t.kind else { continue };
        if !s.starts_with("KFDS_") {
            continue;
        }
        // `var("KFDS_…")` / `var_os("KFDS_…")` function reads.
        let fn_read = punct_at(&src.tokens, i.wrapping_sub(1)) == Some('(')
            && matches!(ident_at(&src.tokens, i.wrapping_sub(2)), Some("var") | Some("var_os"));
        // `env!("KFDS_…")` / `option_env!("KFDS_…")` macro reads.
        let macro_read = punct_at(&src.tokens, i.wrapping_sub(1)) == Some('(')
            && punct_at(&src.tokens, i.wrapping_sub(2)) == Some('!')
            && matches!(ident_at(&src.tokens, i.wrapping_sub(3)), Some("env") | Some("option_env"));
        if fn_read || macro_read {
            out.push(Finding {
                path: src.path.clone(),
                line: t.line,
                rule: "env-registry",
                msg: format!(
                    "raw environment read of \"{s}\" — route it through the \
                     kfds-switches registry (the single source of truth for KFDS_* switches)"
                ),
            });
        }
    }
    out
}

/// Token index ranges (inclusive start, exclusive end) covered by
/// `#[cfg(test)] mod … { … }` blocks.
fn test_mod_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Match `# [ cfg ( test ) ]`.
        let is_cfg_test = punct_at(tokens, i) == Some('#')
            && punct_at(tokens, i + 1) == Some('[')
            && ident_at(tokens, i + 2) == Some("cfg")
            && punct_at(tokens, i + 3) == Some('(')
            && ident_at(tokens, i + 4) == Some("test")
            && punct_at(tokens, i + 5) == Some(')')
            && punct_at(tokens, i + 6) == Some(']');
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Find the `mod` this attribute decorates (skipping further
        // attributes), then its opening brace, then brace-match.
        let mut j = i + 7;
        while j < tokens.len() && ident_at(tokens, j) != Some("mod") {
            j += 1;
        }
        let mut k = j;
        while k < tokens.len() && punct_at(tokens, k) != Some('{') {
            k += 1;
        }
        let mut depth = 0;
        let mut end = k;
        while end < tokens.len() {
            match punct_at(tokens, end) {
                Some('{') => depth += 1,
                Some('}') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            end += 1;
        }
        regions.push((i, end + 1));
        i = end + 1;
    }
    regions
}

/// **hot-path-alloc**: no `Vec::new` / `vec!` / `.to_vec()` in hot-path
/// modules outside tests.
pub fn rule_hot_path_alloc(src: &Source) -> Vec<Finding> {
    let tokens = &src.tokens;
    let regions = test_mod_regions(tokens);
    let in_test = |i: usize| regions.iter().any(|&(s, e)| i >= s && i < e);
    let waived = |line: usize| {
        src.comment(line).contains("lint:allow(hot-path-alloc)")
            || src.comment(line.saturating_sub(1)).contains("lint:allow(hot-path-alloc)")
    };
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        let Tok::Ident(id) = &t.kind else { continue };
        if in_test(i) || waived(t.line) {
            continue;
        }
        let hit = match id.as_str() {
            // `Vec :: new(` and `Vec :: with_capacity(` — fresh heap
            // allocations on a pool-only path.
            "Vec" => {
                punct_at(tokens, i + 1) == Some(':')
                    && punct_at(tokens, i + 2) == Some(':')
                    && matches!(ident_at(tokens, i + 3), Some("new") | Some("with_capacity"))
            }
            // `vec![…]` macro.
            "vec" => punct_at(tokens, i + 1) == Some('!'),
            // `.to_vec()`.
            "to_vec" => punct_at(tokens, i.wrapping_sub(1)) == Some('.'),
            _ => false,
        };
        if hit {
            out.push(Finding {
                path: src.path.clone(),
                line: t.line,
                rule: "hot-path-alloc",
                msg: format!(
                    "`{id}` allocation in a hot-path module — take scratch from \
                     kfds_la::workspace, or waive with `// lint:allow(hot-path-alloc): why`"
                ),
            });
        }
    }
    out
}

/// **unsafe-preconditions**: `pub … unsafe fn` in `kfds-la` must assert
/// its preconditions (at least one `debug_assert!`/`assert!` in the body).
pub fn rule_unsafe_preconditions(src: &Source) -> Vec<Finding> {
    let tokens = &src.tokens;
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if ident_at(tokens, i) != Some("pub") {
            i += 1;
            continue;
        }
        // Skip a `pub(crate)` / `pub(super)` visibility scope.
        let mut j = i + 1;
        if punct_at(tokens, j) == Some('(') {
            while j < tokens.len() && punct_at(tokens, j) != Some(')') {
                j += 1;
            }
            j += 1;
        }
        if ident_at(tokens, j) != Some("unsafe") || ident_at(tokens, j + 1) != Some("fn") {
            i += 1;
            continue;
        }
        let name = ident_at(tokens, j + 2).unwrap_or("?").to_string();
        let sig_line = tokens[j].line;
        // Body: first `{` after the signature, brace-matched.
        let mut k = j + 2;
        while k < tokens.len() && punct_at(tokens, k) != Some('{') {
            k += 1;
        }
        let body_start = k;
        let mut depth = 0;
        while k < tokens.len() {
            match punct_at(tokens, k) {
                Some('{') => depth += 1,
                Some('}') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        let has_assert = tokens[body_start..=k.min(tokens.len().saturating_sub(1))]
            .iter()
            .any(|t| matches!(&t.kind, Tok::Ident(id) if id.starts_with("debug_assert") || id.starts_with("assert")));
        if !has_assert {
            out.push(Finding {
                path: src.path.clone(),
                line: sig_line,
                rule: "unsafe-preconditions",
                msg: format!(
                    "public unsafe fn `{name}` declares no executable preconditions — \
                     add `debug_assert!`s for its index/stride/feature contract"
                ),
            });
        }
        i = k + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan_str;

    fn lint(path: &str, text: &str) -> Vec<Finding> {
        check_source(&scan_str(path, text))
    }

    // --- unsafe-safety -------------------------------------------------

    #[test]
    fn unsafe_block_without_safety_comment_fails() {
        let f = lint("crates/x/src/a.rs", "fn f(p: *const u8) -> u8 { unsafe { *p } }\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "unsafe-safety");
    }

    #[test]
    fn deleting_a_safety_comment_is_what_fails() {
        // The acceptance criterion, as a pair: with the comment the file is
        // clean; with the comment deleted (only change) it is not.
        let with = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid.\n    unsafe { *p }\n}\n";
        let without = "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        assert!(lint("crates/x/src/a.rs", with).is_empty());
        assert_eq!(lint("crates/x/src/a.rs", without).len(), 1);
    }

    #[test]
    fn safety_comment_on_same_line_counts() {
        let f =
            lint("crates/x/src/a.rs", "let v = unsafe { g() }; // SAFETY: g is infallible here.\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unsafe_fn_accepts_doc_safety_section_through_attributes() {
        let src = "/// Does things.\n///\n/// # Safety\n/// Caller must uphold X.\n#[inline]\npub unsafe fn g(n: usize) { debug_assert!(n > 0); }\n";
        let f = lint("crates/x/src/a.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unsafe_impl_needs_its_own_comment() {
        let src =
            "// SAFETY: T is plain data.\nunsafe impl Send for A {}\nunsafe impl Sync for A {}\n";
        let f = lint("crates/x/src/a.rs", src);
        assert_eq!(f.len(), 1, "the second impl is uncovered: {f:?}");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn unsafe_in_comment_or_string_is_ignored() {
        let src = "// this mentions unsafe code\nlet s = \"unsafe { }\";\n";
        assert!(lint("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn blank_line_breaks_safety_adjacency() {
        let src = "// SAFETY: stale justification far above.\n\nlet v = unsafe { g() };\n";
        assert_eq!(lint("crates/x/src/a.rs", src).len(), 1);
    }

    // --- env-registry --------------------------------------------------

    #[test]
    fn raw_kfds_env_read_fails() {
        // The acceptance criterion: adding a raw env::var("KFDS_X") to any
        // non-registry file is a finding.
        let src = "fn f() -> bool { std::env::var(\"KFDS_X\").is_ok() }\n";
        let f = lint("crates/x/src/a.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "env-registry");
    }

    #[test]
    fn var_os_and_option_env_reads_fail() {
        let src = "fn f() { let _ = std::env::var_os(\"KFDS_SIMD\"); let _ = option_env!(\"KFDS_Y\"); }\n";
        let f = lint("crates/x/src/a.rs", src);
        assert_eq!(f.len(), 2, "{f:?}");
    }

    #[test]
    fn registry_file_and_test_set_var_are_allowed() {
        let read = "pub fn raw(&self) -> Option<OsString> { std::env::var_os(self.name) }\n";
        assert!(lint("crates/switches/src/lib.rs", read).is_empty());
        let set = "fn t() { std::env::set_var(\"KFDS_SIMD\", \"off\"); std::env::remove_var(\"KFDS_SIMD\"); }\n";
        assert!(lint("crates/x/tests/t.rs", set).is_empty());
    }

    #[test]
    fn kfds_literal_not_passed_to_env_is_allowed() {
        let src = "const NAME: &str = \"KFDS_SIMD\"; // doc tables etc.\n";
        assert!(lint("crates/x/src/a.rs", src).is_empty());
    }

    // --- hot-path-alloc ------------------------------------------------

    #[test]
    fn alloc_in_hot_module_fails_but_test_mod_is_exempt() {
        let src = "fn hot() { let v = vec![0.0; 8]; let w = Vec::new(); let u = x.to_vec(); }\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { let v = vec![1]; let w = Vec::new(); }\n}\n";
        let f = lint("crates/la/src/simd.rs", src);
        assert_eq!(f.len(), 3, "{f:?}");
        assert!(f.iter().all(|f| f.rule == "hot-path-alloc"));
    }

    #[test]
    fn alloc_waiver_comment_is_honored() {
        let src = "fn cold() {\n    // lint:allow(hot-path-alloc): one-time table build at init.\n    let v = vec![0.0; 8];\n}\n";
        assert!(lint("crates/la/src/blas1.rs", src).is_empty());
    }

    #[test]
    fn alloc_in_unlisted_module_is_fine() {
        let src = "fn f() { let v = vec![0.0; 8]; }\n";
        assert!(lint("crates/core/src/factor.rs", src).is_empty());
    }

    // --- unsafe-preconditions ------------------------------------------

    #[test]
    fn pub_unsafe_fn_without_assert_fails_in_la() {
        let src = "/// # Safety\n/// p valid.\npub unsafe fn f(p: *const f64) -> f64 { *p }\n";
        let f = lint("crates/la/src/simd.rs", src);
        assert!(f.iter().any(|f| f.rule == "unsafe-preconditions"), "{f:?}");
    }

    #[test]
    fn pub_crate_unsafe_fn_with_debug_assert_passes() {
        let src = "/// # Safety\n/// p valid for n elements.\npub(crate) unsafe fn f(p: *const f64, n: usize) -> f64 {\n    debug_assert!(!p.is_null() && n > 0);\n    *p.add(n - 1)\n}\n";
        let f = lint("crates/la/src/simd.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn precondition_rule_scoped_to_la() {
        let src = "/// # Safety\n/// fine.\npub unsafe fn f(p: *const f64) -> f64 { *p }\n";
        assert!(lint("crates/core/src/share.rs", src).is_empty());
    }
}
