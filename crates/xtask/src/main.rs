//! `xtask` — repo automation, run as `cargo run -p xtask -- <command>`.
//!
//! * `lint` — **kfds-lint**: machine-checks the safety invariants
//!   documented in `DESIGN.md` §7 over every `.rs` file in the repo
//!   (SAFETY comments on `unsafe`, `KFDS_*` reads only through the
//!   `kfds-switches` registry, allocation-free hot-path modules,
//!   `debug_assert!` preconditions on public unsafe helpers, ranked
//!   locks and panic-free non-test code in the concurrency crates,
//!   pinned `#![forbid(unsafe_code)]` attributes), plus the repo-level
//!   checks: README switch-table drift and registry switch coverage
//!   (README row + ci.sh lane + test reference per switch). Exits
//!   non-zero on any finding and prints a per-rule finding count that
//!   `ci.sh` asserts on.
//! * `switch-table [--check|--write]` — prints the runtime-switch table
//!   generated from the `kfds-switches` registry; `--write` splices it
//!   into `README.md` between the `<!-- switch-table:begin/end -->`
//!   markers, `--check` verifies it is already there verbatim.

#![forbid(unsafe_code)]

mod rules;
mod scan;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use rules::Finding;

const BEGIN_MARKER: &str = "<!-- switch-table:begin -->";
const END_MARKER: &str = "<!-- switch-table:end -->";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let root = repo_root();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(&root),
        Some("switch-table") => match args.get(1).map(String::as_str) {
            None => {
                print!("{}", kfds_switches::markdown_table());
                ExitCode::SUCCESS
            }
            Some("--check") => match readme_table_findings(&root) {
                findings if findings.is_empty() => {
                    println!("README.md switch table matches the kfds-switches registry.");
                    ExitCode::SUCCESS
                }
                findings => {
                    for f in findings {
                        eprintln!("{f}");
                    }
                    ExitCode::FAILURE
                }
            },
            Some("--write") => write_readme_table(&root),
            Some(other) => usage(&format!("unknown switch-table flag `{other}`")),
        },
        Some(other) => usage(&format!("unknown command `{other}`")),
        None => usage("missing command"),
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!(
        "error: {err}\n\nusage: cargo run -p xtask -- <command>\n\
         \n\
         commands:\n\
         \x20 lint                    run kfds-lint over the whole repo\n\
         \x20 switch-table            print the generated runtime-switch table\n\
         \x20 switch-table --check    verify the README.md table matches the registry\n\
         \x20 switch-table --write    regenerate the README.md table in place"
    );
    ExitCode::FAILURE
}

/// Repo root, resolved from this crate's manifest directory
/// (`crates/xtask` → two levels up), so the commands work from any CWD.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("repo root exists")
}

fn run_lint(root: &Path) -> ExitCode {
    let findings = lint_repo(root);
    // Per-rule counts, printed always, so `ci.sh` can assert that each
    // rule family actually ran (a silently skipped rule reads as green).
    let counts: String = rules::RULE_NAMES
        .iter()
        .map(|r| format!(" {r}={}", findings.iter().filter(|f| f.rule == *r).count()))
        .collect();
    println!("kfds-lint rules:{counts}");
    if findings.is_empty() {
        println!("kfds-lint: 0 findings.");
        return ExitCode::SUCCESS;
    }
    for f in &findings {
        eprintln!("{f}");
    }
    eprintln!("kfds-lint: {} finding(s).", findings.len());
    ExitCode::FAILURE
}

/// All findings over every tracked `.rs` file, plus the repo-level
/// checks: README switch-table drift and registry switch coverage
/// (README row + ci.sh lane + test reference for every switch).
fn lint_repo(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut tested_switches: Vec<&'static str> = Vec::new();
    for path in rust_files(root) {
        let rel = path
            .strip_prefix(root)
            .expect("walked paths live under root")
            .to_string_lossy()
            .replace('\\', "/");
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                findings.push(Finding {
                    path: rel,
                    line: 0,
                    rule: "io",
                    msg: format!("unreadable: {e}"),
                });
                continue;
            }
        };
        let src = scan::scan_str(&rel, &text);
        findings.extend(rules::check_source(&src));
        for name in rules::test_switch_refs(&src) {
            if !tested_switches.contains(&name) {
                tested_switches.push(name);
            }
        }
    }
    findings.extend(readme_table_findings(root));
    let readme = std::fs::read_to_string(root.join("README.md")).unwrap_or_default();
    let ci = std::fs::read_to_string(root.join("ci.sh")).unwrap_or_default();
    findings.extend(rules::rule_switch_coverage(&readme, &ci, &tested_switches));
    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    findings
}

/// Every `.rs` file under `root`, skipping build output and VCS metadata.
fn rust_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = match std::fs::read_dir(&dir) {
            Ok(e) => e,
            Err(_) => continue,
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// Drift check: the table between the README markers must be exactly what
/// the registry generates.
fn readme_table_findings(root: &Path) -> Vec<Finding> {
    let finding = |line: usize, msg: String| Finding {
        path: "README.md".into(),
        line,
        rule: "switch-table",
        msg,
    };
    let readme = match std::fs::read_to_string(root.join("README.md")) {
        Ok(t) => t,
        Err(e) => return vec![finding(0, format!("unreadable: {e}"))],
    };
    let Some((begin_line, current)) = extract_marked_region(&readme) else {
        return vec![finding(
            0,
            format!(
                "missing `{BEGIN_MARKER}` / `{END_MARKER}` markers around the runtime-switch table"
            ),
        )];
    };
    if current.trim() != kfds_switches::markdown_table().trim() {
        return vec![finding(
            begin_line,
            "runtime-switch table is out of date with the kfds-switches registry — \
             run `cargo run -p xtask -- switch-table --write`"
                .into(),
        )];
    }
    Vec::new()
}

/// Returns the begin-marker line (1-based) and the text strictly between
/// the markers, or `None` if either marker is absent/misordered.
fn extract_marked_region(readme: &str) -> Option<(usize, &str)> {
    let begin = readme.find(BEGIN_MARKER)?;
    let after_begin = begin + BEGIN_MARKER.len();
    let end = readme[after_begin..].find(END_MARKER)? + after_begin;
    let line = readme[..begin].lines().count() + 1;
    Some((line, &readme[after_begin..end]))
}

fn write_readme_table(root: &Path) -> ExitCode {
    let path = root.join("README.md");
    let readme = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read README.md: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(begin) = readme.find(BEGIN_MARKER) else {
        eprintln!("error: README.md is missing the `{BEGIN_MARKER}` marker");
        return ExitCode::FAILURE;
    };
    let after_begin = begin + BEGIN_MARKER.len();
    let Some(end_rel) = readme[after_begin..].find(END_MARKER) else {
        eprintln!("error: README.md is missing the `{END_MARKER}` marker");
        return ExitCode::FAILURE;
    };
    let end = after_begin + end_rel;
    let updated = format!(
        "{}\n\n{}\n{}",
        &readme[..after_begin],
        kfds_switches::markdown_table(),
        &readme[end..]
    );
    if updated == readme {
        println!("README.md switch table already up to date.");
        return ExitCode::SUCCESS;
    }
    if let Err(e) = std::fs::write(&path, updated) {
        eprintln!("error: cannot write README.md: {e}");
        return ExitCode::FAILURE;
    }
    println!("README.md switch table regenerated from the kfds-switches registry.");
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The repo's own tree must lint clean — this is the self-test that
    /// keeps `cargo test` and `cargo run -p xtask -- lint` in agreement,
    /// and (together with the fixture tests in `rules`) the guarantee
    /// that reintroducing an uncommented `unsafe` or a raw
    /// `env::var("KFDS_…")` read fails CI.
    #[test]
    fn repo_tree_lints_clean() {
        let findings = lint_repo(&repo_root());
        assert!(
            findings.is_empty(),
            "kfds-lint findings in the committed tree:\n{}",
            findings.iter().map(|f| format!("  {f}\n")).collect::<String>()
        );
    }

    #[test]
    fn walker_finds_this_file_and_skips_target() {
        let files = rust_files(&repo_root());
        assert!(files.iter().any(|p| p.ends_with("crates/xtask/src/main.rs")));
        assert!(files.iter().all(|p| !p.components().any(|c| c.as_os_str() == "target")));
    }

    #[test]
    fn marked_region_extraction() {
        let text = "intro\n<!-- switch-table:begin -->\nOLD\n<!-- switch-table:end -->\ntail\n";
        let (line, region) = extract_marked_region(text).unwrap();
        assert_eq!(line, 2);
        assert_eq!(region.trim(), "OLD");
        assert!(extract_marked_region("no markers here").is_none());
    }
}
