//! Conjugate gradients for symmetric positive definite systems.
//!
//! `λI + K` with a positive-definite kernel is SPD, so CG is a natural
//! alternative operator-level baseline to GMRES; we provide it for the
//! ablation benches (the paper uses GMRES throughout).

use crate::gmres::{SolveResult, TraceEntry};
use crate::operator::LinOp;
use kfds_la::blas1::{axpy, dot, nrm2};
use std::time::Instant;

/// CG options.
#[derive(Clone, Debug)]
pub struct CgOptions {
    /// Relative residual tolerance.
    pub tol: f64,
    /// Maximum iterations.
    pub max_iters: usize,
}

impl Default for CgOptions {
    fn default() -> Self {
        CgOptions { tol: 1e-10, max_iters: 1000 }
    }
}

/// Solves `A x = b` (A SPD) with conjugate gradients.
///
/// # Panics
/// Panics if `b.len() != op.dim()`.
pub fn cg(op: &dyn LinOp, b: &[f64], opts: &CgOptions) -> SolveResult {
    let n = op.dim();
    assert_eq!(b.len(), n, "cg: rhs length mismatch");
    let start = Instant::now();
    let bnorm = nrm2(b);
    if bnorm == 0.0 {
        return SolveResult {
            x: vec![0.0; n],
            converged: true,
            iters: 0,
            residual: 0.0,
            trace: vec![],
        };
    }
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut p = r.clone();
    let mut rr = dot(&r, &r);
    let mut trace = vec![TraceEntry { iter: 0, residual: 1.0, seconds: 0.0 }];
    let mut ap = vec![0.0; n];
    for it in 1..=opts.max_iters {
        op.apply(&p, &mut ap);
        let pap = dot(&p, &ap);
        if pap <= 0.0 {
            // Not SPD (or breakdown): stop with what we have.
            return SolveResult {
                x,
                converged: false,
                iters: it - 1,
                residual: rr.sqrt() / bnorm,
                trace,
            };
        }
        let alpha = rr / pap;
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &ap, &mut r);
        let rr_new = dot(&r, &r);
        let rel = rr_new.sqrt() / bnorm;
        trace.push(TraceEntry { iter: it, residual: rel, seconds: start.elapsed().as_secs_f64() });
        if rel <= opts.tol {
            return SolveResult { x, converged: true, iters: it, residual: rel, trace };
        }
        let beta = rr_new / rr;
        rr = rr_new;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
    }
    let rel = rr.sqrt() / bnorm;
    SolveResult { x, converged: rel <= opts.tol, iters: opts.max_iters, residual: rel, trace }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::DenseOp;
    use kfds_la::Mat;

    #[test]
    fn cg_solves_spd() {
        let n = 30;
        let mut state = 5u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let b0 = Mat::from_fn(n, n, |_, _| rnd());
        let mut a = kfds_la::matmul_op(&b0, kfds_la::Trans::Yes, &b0, kfds_la::Trans::No);
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let mut b = vec![0.0; n];
        kfds_la::blas2::gemv(1.0, a.rb(), &x_true, 0.0, &mut b);
        let res = cg(&DenseOp::new(a), &b, &CgOptions::default());
        assert!(res.converged);
        for (u, v) in res.x.iter().zip(&x_true) {
            assert!((u - v).abs() < 1e-7);
        }
    }

    #[test]
    fn cg_zero_rhs() {
        let a = Mat::identity(4);
        let res = cg(&DenseOp::new(a), &[0.0; 4], &CgOptions::default());
        assert!(res.converged);
        assert_eq!(res.iters, 0);
    }

    #[test]
    fn cg_detects_indefinite() {
        let mut a = Mat::identity(3);
        a[(2, 2)] = -1.0;
        let res = cg(&DenseOp::new(a), &[0.0, 0.0, 1.0], &CgOptions::default());
        assert!(!res.converged);
    }
}
