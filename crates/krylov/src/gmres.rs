//! Restarted GMRES with modified Gram–Schmidt and optional
//! re-orthogonalization — the PETSc-configuration stand-in of the paper
//! ("modified Gram-Schmidt for re-orthogonalization and GMRES CGS
//! refinement", §IV).

use crate::operator::LinOp;
use kfds_la::blas1::{axpy, dot, nrm2, scal};
use std::time::Instant;

/// GMRES options.
#[derive(Clone, Debug)]
pub struct GmresOptions {
    /// Relative residual tolerance (`‖b − Ax‖ / ‖b‖`).
    pub tol: f64,
    /// Maximum total iterations across restarts.
    pub max_iters: usize,
    /// Restart length (Krylov subspace dimension per cycle).
    pub restart: usize,
    /// Run a second orthogonalization pass per Arnoldi step (the CGS
    /// refinement of the paper's PETSc setup).
    pub reorthogonalize: bool,
}

impl Default for GmresOptions {
    fn default() -> Self {
        GmresOptions { tol: 1e-10, max_iters: 500, restart: 60, reorthogonalize: true }
    }
}

/// One point of the convergence trace (for Figure 5's residual-vs-time
/// curves).
#[derive(Clone, Copy, Debug)]
pub struct TraceEntry {
    /// Global iteration count.
    pub iter: usize,
    /// Relative residual estimate.
    pub residual: f64,
    /// Wall-clock seconds since the solve started.
    pub seconds: f64,
}

/// Result of an iterative solve.
#[derive(Clone, Debug)]
pub struct SolveResult {
    /// The (approximate) solution.
    pub x: Vec<f64>,
    /// Whether the tolerance was reached.
    pub converged: bool,
    /// Iterations used.
    pub iters: usize,
    /// Final relative residual (recurrence estimate).
    pub residual: f64,
    /// Per-iteration convergence trace.
    pub trace: Vec<TraceEntry>,
}

/// Solves `A x = b` with restarted GMRES.
///
/// # Panics
/// Panics if `b.len() != op.dim()` (or `x0` mismatched).
pub fn gmres(op: &dyn LinOp, b: &[f64], x0: Option<&[f64]>, opts: &GmresOptions) -> SolveResult {
    let n = op.dim();
    assert_eq!(b.len(), n, "gmres: rhs length mismatch");
    let start = Instant::now();
    let bnorm = nrm2(b);
    let mut x = match x0 {
        Some(x0) => {
            assert_eq!(x0.len(), n, "gmres: x0 length mismatch");
            x0.to_vec()
        }
        None => vec![0.0; n],
    };
    if bnorm == 0.0 {
        return SolveResult {
            x: vec![0.0; n],
            converged: true,
            iters: 0,
            residual: 0.0,
            trace: vec![],
        };
    }
    let restart = opts.restart.max(1).min(n.max(1));
    let mut trace = Vec::new();
    let mut total_iters = 0usize;
    let mut rel;

    'outer: loop {
        // r = b - A x.
        let mut r = vec![0.0; n];
        op.apply(&x, &mut r);
        for i in 0..n {
            r[i] = b[i] - r[i];
        }
        let beta = nrm2(&r);
        rel = beta / bnorm;
        if total_iters == 0 {
            trace.push(TraceEntry {
                iter: 0,
                residual: rel,
                seconds: start.elapsed().as_secs_f64(),
            });
        }
        if rel <= opts.tol || total_iters >= opts.max_iters {
            break;
        }

        // Arnoldi basis and Hessenberg (column-major, restart+1 rows).
        let mut v: Vec<Vec<f64>> = Vec::with_capacity(restart + 1);
        scal(1.0 / beta, &mut r);
        v.push(r);
        let mut h = vec![0.0f64; (restart + 1) * restart];
        let mut cs = vec![0.0f64; restart];
        let mut sn = vec![0.0f64; restart];
        let mut g = vec![0.0f64; restart + 1];
        g[0] = beta;
        let mut k_used = 0;

        for k in 0..restart {
            // w = A v_k, orthogonalized against the basis (MGS).
            let mut w = vec![0.0; n];
            op.apply(&v[k], &mut w);
            let hcol = &mut h[k * (restart + 1)..(k + 1) * (restart + 1)];
            for (j, vj) in v.iter().enumerate() {
                let hjk = dot(vj, &w);
                hcol[j] = hjk;
                axpy(-hjk, vj, &mut w);
            }
            if opts.reorthogonalize {
                // Second pass: recover orthogonality lost to cancellation.
                for (j, vj) in v.iter().enumerate() {
                    let c = dot(vj, &w);
                    hcol[j] += c;
                    axpy(-c, vj, &mut w);
                }
            }
            let hkk1 = nrm2(&w);
            hcol[k + 1] = hkk1;

            // Apply accumulated Givens rotations to the new column.
            for j in 0..k {
                let t = cs[j] * hcol[j] + sn[j] * hcol[j + 1];
                hcol[j + 1] = -sn[j] * hcol[j] + cs[j] * hcol[j + 1];
                hcol[j] = t;
            }
            // New rotation annihilating h[k+1, k].
            let denom = (hcol[k] * hcol[k] + hcol[k + 1] * hcol[k + 1]).sqrt();
            if denom == 0.0 {
                cs[k] = 1.0;
                sn[k] = 0.0;
            } else {
                cs[k] = hcol[k] / denom;
                sn[k] = hcol[k + 1] / denom;
            }
            hcol[k] = cs[k] * hcol[k] + sn[k] * hcol[k + 1];
            hcol[k + 1] = 0.0;
            g[k + 1] = -sn[k] * g[k];
            g[k] *= cs[k];

            total_iters += 1;
            k_used = k + 1;
            rel = g[k + 1].abs() / bnorm;
            trace.push(TraceEntry {
                iter: total_iters,
                residual: rel,
                seconds: start.elapsed().as_secs_f64(),
            });

            let breakdown = hkk1 == 0.0;
            if rel <= opts.tol || total_iters >= opts.max_iters || breakdown {
                update_solution(&mut x, &v, &h, &g, k_used, restart);
                if rel <= opts.tol || breakdown {
                    break 'outer;
                }
                continue 'outer; // max_iters: recompute true residual, exit
            }
            scal(1.0 / hkk1, &mut w);
            v.push(w);
        }
        update_solution(&mut x, &v, &h, &g, k_used, restart);
    }

    SolveResult { x, converged: rel <= opts.tol, iters: total_iters, residual: rel, trace }
}

/// Back-substitutes the triangularized Hessenberg system and accumulates
/// the correction into `x`.
fn update_solution(x: &mut [f64], v: &[Vec<f64>], h: &[f64], g: &[f64], k: usize, restart: usize) {
    if k == 0 {
        return;
    }
    let mut y = g[..k].to_vec();
    for i in (0..k).rev() {
        for j in i + 1..k {
            y[i] -= h[j * (restart + 1) + i] * y[j];
        }
        y[i] /= h[i * (restart + 1) + i];
    }
    for (j, yj) in y.iter().enumerate() {
        axpy(*yj, &v[j], x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{DenseOp, FnOp};
    use kfds_la::Mat;

    fn spd_system(n: usize, seed: u64) -> (DenseOp, Vec<f64>, Vec<f64>) {
        let mut state = seed | 1;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let b0 = Mat::from_fn(n, n, |_, _| rnd());
        // A = B^T B + n I: SPD, well-conditioned.
        let mut a = kfds_la::matmul_op(&b0, kfds_la::Trans::Yes, &b0, kfds_la::Trans::No);
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut b = vec![0.0; n];
        kfds_la::blas2::gemv(1.0, a.rb(), &x_true, 0.0, &mut b);
        (DenseOp::new(a), b, x_true)
    }

    #[test]
    fn solves_spd_system() {
        let (op, b, x_true) = spd_system(40, 3);
        let res = gmres(&op, &b, None, &GmresOptions::default());
        assert!(res.converged, "residual {}", res.residual);
        for (u, v) in res.x.iter().zip(&x_true) {
            assert!((u - v).abs() < 1e-7);
        }
    }

    #[test]
    fn identity_converges_in_one_iteration() {
        let op = FnOp::new(10, |x: &[f64], y: &mut [f64]| y.copy_from_slice(x));
        let b: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let res = gmres(&op, &b, None, &GmresOptions::default());
        assert!(res.converged);
        assert!(res.iters <= 1);
        for (u, v) in res.x.iter().zip(&b) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn restart_still_converges() {
        let (op, b, x_true) = spd_system(50, 7);
        let opts = GmresOptions { restart: 5, max_iters: 2000, ..Default::default() };
        let res = gmres(&op, &b, None, &opts);
        assert!(res.converged, "residual {}", res.residual);
        for (u, v) in res.x.iter().zip(&x_true) {
            assert!((u - v).abs() < 1e-6);
        }
    }

    #[test]
    fn respects_max_iters_and_reports_nonconvergence() {
        let (op, b, _) = spd_system(60, 9);
        let opts = GmresOptions { tol: 1e-30, max_iters: 3, ..Default::default() };
        let res = gmres(&op, &b, None, &opts);
        assert!(!res.converged);
        assert_eq!(res.iters, 3);
    }

    #[test]
    fn trace_is_monotone_in_iter_and_time() {
        let (op, b, _) = spd_system(30, 11);
        let res = gmres(&op, &b, None, &GmresOptions::default());
        assert!(!res.trace.is_empty());
        for w in res.trace.windows(2) {
            assert!(w[1].iter > w[0].iter);
            assert!(w[1].seconds >= w[0].seconds);
        }
        // GMRES residuals are non-increasing within a cycle.
        let last = res.trace.last().expect("non-empty trace");
        assert!(last.residual <= res.trace[0].residual);
    }

    #[test]
    fn zero_rhs_returns_zero() {
        let (op, _, _) = spd_system(8, 13);
        let res = gmres(&op, &[0.0; 8], None, &GmresOptions::default());
        assert!(res.converged);
        assert!(res.x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn warm_start_reduces_iterations() {
        let (op, b, x_true) = spd_system(40, 17);
        let cold = gmres(&op, &b, None, &GmresOptions::default());
        let warm = gmres(&op, &b, Some(&x_true), &GmresOptions::default());
        assert!(warm.iters <= cold.iters);
        assert!(warm.converged);
    }

    #[test]
    fn nonsymmetric_system() {
        // Shifted upper-shift matrix: A = I + 0.5 S (nonsymmetric).
        let n = 20;
        let op = FnOp::new(n, move |x: &[f64], y: &mut [f64]| {
            for i in 0..n {
                y[i] = x[i] + if i + 1 < n { 0.5 * x[i + 1] } else { 0.0 };
            }
        });
        let x_true: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();
        let mut b = vec![0.0; n];
        op.apply(&x_true, &mut b);
        let res = gmres(&op, &b, None, &GmresOptions::default());
        assert!(res.converged);
        for (u, v) in res.x.iter().zip(&x_true) {
            assert!((u - v).abs() < 1e-8);
        }
    }
}
