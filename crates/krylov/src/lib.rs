//! # kfds-krylov — Krylov iterative solvers
//!
//! Restarted GMRES with modified Gram–Schmidt and CGS-style refinement
//! (the PETSc configuration used in the paper's experiments, §IV) plus CG,
//! both recording residual-vs-wall-clock convergence traces — the raw data
//! behind Figure 5.

#![forbid(unsafe_code)]

pub mod cg;
pub mod gmres;
pub mod operator;
pub mod precond;

pub use cg::{cg, CgOptions};
pub use gmres::{gmres, GmresOptions, SolveResult, TraceEntry};
pub use operator::{DenseOp, FnOp, LinOp};
pub use precond::{gmres_right_preconditioned, FnPrecond, Preconditioner};
