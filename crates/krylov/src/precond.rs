//! Right-preconditioned GMRES.
//!
//! The paper notes (§I, "Limitations") that when the hierarchical
//! decomposition has structure the direct solver cannot exploit, the
//! factorization "can be used as a preconditioner, as discussed in
//! \[36\]": solve `A M^{-1} y = b`, then `x = M^{-1} y`, with `M` the
//! (approximately factorized) `λI + K̃`. Right preconditioning keeps the
//! true residual observable in the recurrence.

use crate::gmres::{gmres, GmresOptions, SolveResult};
use crate::operator::{FnOp, LinOp};

/// A preconditioner: an (approximate) solve `y = M^{-1} x`.
pub trait Preconditioner: Sync {
    /// Applies `M^{-1}` in place.
    fn apply_inv(&self, x: &mut [f64]);
}

/// Wraps a closure as a [`Preconditioner`].
pub struct FnPrecond<F: Fn(&mut [f64]) + Sync> {
    f: F,
}

impl<F: Fn(&mut [f64]) + Sync> FnPrecond<F> {
    /// Creates a preconditioner from a closure applying `M^{-1}` in place.
    pub fn new(f: F) -> Self {
        FnPrecond { f }
    }
}

impl<F: Fn(&mut [f64]) + Sync> Preconditioner for FnPrecond<F> {
    fn apply_inv(&self, x: &mut [f64]) {
        (self.f)(x)
    }
}

/// Solves `A x = b` with right-preconditioned GMRES: runs GMRES on
/// `A M^{-1}` and maps the result back through `M^{-1}`.
pub fn gmres_right_preconditioned(
    op: &dyn LinOp,
    prec: &dyn Preconditioner,
    b: &[f64],
    opts: &GmresOptions,
) -> SolveResult {
    let n = op.dim();
    let wrapped = FnOp::new(n, |x: &[f64], y: &mut [f64]| {
        let mut t = x.to_vec();
        prec.apply_inv(&mut t);
        op.apply(&t, y);
    });
    let mut res = gmres(&wrapped, b, None, opts);
    prec.apply_inv(&mut res.x);
    res
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::DenseOp;
    use kfds_la::{Lu, Mat};

    fn ill_conditioned(n: usize) -> Mat {
        // Diagonal with huge spread plus a small random perturbation.
        let mut state = 17u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        Mat::from_fn(n, n, |i, j| {
            let base = if i == j { 10f64.powf(4.0 * i as f64 / n as f64) } else { 0.0 };
            base + 0.01 * rnd()
        })
    }

    #[test]
    fn preconditioning_cuts_iterations() {
        let n = 60;
        let a = ill_conditioned(n);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.21).sin()).collect();
        let mut b = vec![0.0; n];
        kfds_la::blas2::gemv(1.0, a.rb(), &x_true, 0.0, &mut b);
        let op = DenseOp::new(a.clone());
        let opts = GmresOptions { tol: 1e-10, max_iters: 400, restart: 40, ..Default::default() };
        let plain = gmres(&op, &b, None, &opts);

        // Preconditioner: exact LU of a nearby matrix (the diagonal).
        let m = Mat::from_fn(n, n, |i, j| if i == j { a[(i, j)] } else { 0.0 });
        let m_lu = Lu::factor(m).expect("diag LU");
        let prec = FnPrecond::new(move |x: &mut [f64]| m_lu.solve_inplace(x));
        let pre = gmres_right_preconditioned(&op, &prec, &b, &opts);

        assert!(pre.converged, "preconditioned residual {}", pre.residual);
        assert!(
            pre.iters < plain.iters || !plain.converged,
            "preconditioning should help: {} vs {}",
            pre.iters,
            plain.iters
        );
        for (u, v) in pre.x.iter().zip(&x_true) {
            assert!((u - v).abs() < 1e-6);
        }
    }

    #[test]
    fn exact_preconditioner_converges_immediately() {
        let n = 30;
        let a = ill_conditioned(n);
        let lu = Lu::factor(a.clone()).expect("LU");
        let op = DenseOp::new(a);
        let prec = FnPrecond::new(move |x: &mut [f64]| lu.solve_inplace(x));
        let b: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
        let res = gmres_right_preconditioned(&op, &prec, &b, &GmresOptions::default());
        assert!(res.converged);
        assert!(res.iters <= 2, "iters = {}", res.iters);
    }
}
