//! Abstract linear operators for the iterative solvers.

/// A linear operator `y = A x` on `R^n`.
pub trait LinOp: Sync {
    /// Dimension `n` of the (square) operator.
    fn dim(&self) -> usize;

    /// Writes `A x` into `y` (both of length [`dim`](LinOp::dim)).
    fn apply(&self, x: &[f64], y: &mut [f64]);
}

/// Wraps a closure as a [`LinOp`].
pub struct FnOp<F: Fn(&[f64], &mut [f64]) + Sync> {
    dim: usize,
    f: F,
}

impl<F: Fn(&[f64], &mut [f64]) + Sync> FnOp<F> {
    /// Creates an operator of dimension `dim` from `f(x, y)` writing `Ax`
    /// into `y`.
    pub fn new(dim: usize, f: F) -> Self {
        FnOp { dim, f }
    }
}

impl<F: Fn(&[f64], &mut [f64]) + Sync> LinOp for FnOp<F> {
    fn dim(&self) -> usize {
        self.dim
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        (self.f)(x, y)
    }
}

/// A dense matrix as a [`LinOp`] (for tests and small reduced systems).
pub struct DenseOp {
    mat: kfds_la::Mat,
}

impl DenseOp {
    /// Wraps a square matrix.
    ///
    /// # Panics
    /// Panics if `mat` is not square.
    pub fn new(mat: kfds_la::Mat) -> Self {
        assert_eq!(mat.nrows(), mat.ncols(), "DenseOp requires a square matrix");
        DenseOp { mat }
    }
}

impl LinOp for DenseOp {
    fn dim(&self) -> usize {
        self.mat.nrows()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        kfds_la::blas2::gemv(1.0, self.mat.rb(), x, 0.0, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_op_applies_closure() {
        let op = FnOp::new(3, |x: &[f64], y: &mut [f64]| {
            for i in 0..3 {
                y[i] = 2.0 * x[i];
            }
        });
        let mut y = vec![0.0; 3];
        op.apply(&[1.0, 2.0, 3.0], &mut y);
        assert_eq!(y, vec![2.0, 4.0, 6.0]);
        assert_eq!(op.dim(), 3);
    }

    #[test]
    fn dense_op_matches_gemv() {
        let m = kfds_la::Mat::from_fn(2, 2, |i, j| (i + 2 * j) as f64);
        let op = DenseOp::new(m);
        let mut y = vec![0.0; 2];
        op.apply(&[1.0, 1.0], &mut y);
        assert_eq!(y, vec![2.0, 4.0]);
    }
}
