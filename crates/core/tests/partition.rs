//! The partitioned (sharded) solve must be bitwise-identical to the
//! single-node blocked solve.
//!
//! [`PartitionedFactor`] only reorganizes memory movement — each shard's
//! local solve is the exact subtree recursion, and the top sweep replays
//! the identical per-node SMW correction arithmetic — so for every shard
//! count, storage mode, λ and RHS width, the answers must agree bit for
//! bit, not just to tolerance.

use kfds_askit::{skeletonize, SkelConfig};
use kfds_core::{PartitionedFactor, SharedFactor, SolverConfig, SolverError, StorageMode};
use kfds_kernels::Gaussian;
use kfds_la::Mat;
use kfds_tree::datasets::normal_embedded;
use kfds_tree::BallTree;
use proptest::prelude::*;
use std::sync::Arc;

fn shared_factor(
    n: usize,
    leaf: usize,
    max_level: usize,
    lambda: f64,
    storage: StorageMode,
) -> SharedFactor<Gaussian> {
    let pts = normal_embedded(n, 3, 6, 0.05, 29);
    let kernel = Gaussian::new(1.0);
    let tree = BallTree::build(&pts, leaf);
    let st = skeletonize(
        tree,
        &kernel,
        SkelConfig::default()
            .with_tol(1e-5)
            .with_max_rank(48)
            .with_neighbors(8)
            .with_max_level(max_level),
    );
    SharedFactor::factorize(
        Arc::new(st),
        Arc::new(kernel),
        SolverConfig::default().with_lambda(lambda).with_storage(storage),
    )
    .expect("fixture factorization")
}

fn rhs_matrix(n: usize, nrhs: usize, salt: usize) -> Mat {
    let mut b = Mat::zeros(n, nrhs);
    for j in 0..nrhs {
        for (i, v) in b.col_mut(j).iter_mut().enumerate() {
            *v = ((i * (j + 3) + 11 * salt + 7) % 37) as f64 / 37.0 - 0.5;
        }
    }
    b
}

fn assert_bitwise(pf: &PartitionedFactor<Gaussian>, sf: &SharedFactor<Gaussian>, nrhs: usize) {
    let n = sf.n();
    let mut sharded = rhs_matrix(n, nrhs, pf.shards());
    let mut single = sharded.clone();
    pf.solve_mat_in_place(&mut sharded);
    sf.factor_tree().solve_mat_in_place(&mut single).expect("single-node solve");
    for j in 0..nrhs {
        assert_eq!(
            sharded.col(j),
            single.col(j),
            "sharded (p={}) and single-node answers diverge in column {j}",
            pf.shards()
        );
    }
}

#[test]
fn sharded_solve_is_bitwise_identical_for_p_1_2_4() {
    for &storage in &[StorageMode::Gsks, StorageMode::StoredGemv] {
        let sf = shared_factor(512, 64, 1, 0.5, storage);
        for p in [1usize, 2, 4] {
            let pf = PartitionedFactor::partition(sf.clone(), p).expect("partition");
            assert_eq!(pf.shards(), p);
            assert_eq!(pf.cut_level(), p.trailing_zeros() as usize);
            // Shard ranges tile 0..n contiguously.
            let mut cursor = 0;
            for s in 0..p {
                let range = pf.shard_range(s);
                assert_eq!(range.start, cursor);
                cursor = range.end;
            }
            assert_eq!(cursor, sf.n());
            assert_bitwise(&pf, &sf, 4);
        }
    }
}

#[test]
fn partition_rejects_bad_shapes() {
    let sf = shared_factor(512, 64, 1, 0.5, StorageMode::Gsks);
    for bad in [0usize, 3, 1 << 12] {
        assert!(
            matches!(
                PartitionedFactor::partition(sf.clone(), bad),
                Err(SolverError::Partition { .. })
            ),
            "p={bad} must be rejected"
        );
    }
    // Level restriction leaves the top tree unfactored: unpartitionable.
    let shallow = shared_factor(512, 64, 2, 0.5, StorageMode::Gsks);
    assert!(!shallow.is_complete());
    assert!(matches!(PartitionedFactor::partition(shallow, 2), Err(SolverError::Partition { .. })));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // Bitwise equality holds across λ, RHS width and shard count — the
    // acceptance property for the sharded serve tier.
    #[test]
    fn sharded_solve_bitwise_property(
        lambda_ix in 0usize..4,
        nrhs in 1usize..6,
        p_log in 0usize..3,
    ) {
        let lambda = [0.25, 0.5, 1.0, 4.0][lambda_ix];
        let sf = shared_factor(512, 64, 1, lambda, StorageMode::StoredGemv);
        let pf = PartitionedFactor::partition(sf.clone(), 1 << p_log).expect("partition");
        assert_bitwise(&pf, &sf, nrhs);
    }
}
