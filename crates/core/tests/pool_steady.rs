//! Steady-state allocation behavior of factorize + solve.
//!
//! The workspace pool exists so the second and later factorize/solve of a
//! same-shaped workload recycle warm buffers instead of allocating. This
//! test asserts that property end to end through the real solver stack:
//! after a warm-up pass, a full factorize + solve must be overwhelmingly
//! pool hits.

use kfds_askit::{compute_neighbors, skeletonize, skeletonize_with_neighbors, SkelConfig};
use kfds_core::{factorize, SolverConfig};
use kfds_kernels::Gaussian;
use kfds_la::workspace;
use kfds_tree::datasets::normal_embedded;
use kfds_tree::BallTree;

fn rand_vec(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
        .collect()
}

#[test]
fn steady_state_factor_solve_is_mostly_pool_hits() {
    let n = 1024;
    let pts = normal_embedded(n, 3, 8, 0.05, 11);
    let tree = BallTree::build(&pts, 64);
    let kernel = Gaussian::new(1.0);
    let st = skeletonize(
        tree,
        &kernel,
        SkelConfig::default().with_tol(1e-5).with_max_rank(64).with_neighbors(8).with_max_level(1),
    );
    let cfg = SolverConfig::default().with_lambda(0.5);

    // Warm-up: first pass fills the per-thread free lists.
    let ft = factorize(&st, &kernel, cfg).expect("warm-up factorize");
    let mut x = rand_vec(n, 3);
    ft.solve_in_place(&mut x).expect("warm-up solve");
    drop(ft);

    let (h0, m0) = workspace::stats();
    let ft = factorize(&st, &kernel, cfg).expect("steady-state factorize");
    let mut x = rand_vec(n, 5);
    ft.solve_in_place(&mut x).expect("steady-state solve");
    let (h1, m1) = workspace::stats();

    let (hits, misses) = (h1 - h0, m1 - m0);
    assert!(hits > 0, "pool saw no traffic — hot paths are not pooled");
    let hit_rate = hits as f64 / (hits + misses) as f64;
    // Not every buffer recycles perfectly (factors that outlive the pass,
    // buffers dropped on a different worker thread), but the steady state
    // must be dominated by reuse.
    assert!(
        hit_rate >= 0.80,
        "steady-state pool hit rate {hit_rate:.3} ({hits} hits / {misses} misses) below 0.80"
    );
}

#[test]
fn steady_state_solve_path_is_mostly_pool_hits() {
    let n = 1024;
    let pts = normal_embedded(n, 3, 8, 0.05, 13);
    let tree = BallTree::build(&pts, 64);
    let kernel = Gaussian::new(1.0);
    let st = skeletonize(
        tree,
        &kernel,
        SkelConfig::default().with_tol(1e-5).with_max_rank(64).with_neighbors(8).with_max_level(1),
    );
    let cfg = SolverConfig::default().with_lambda(0.5);
    let ft = factorize(&st, &kernel, cfg).expect("factorize");

    // Warm-up solves fill the free lists with solve-shaped buffers.
    for seed in 0..4u64 {
        let mut x = rand_vec(n, 17 + seed);
        ft.solve_in_place(&mut x).expect("warm-up solve");
    }

    // A serving workload is repeated solves against fixed factors: after
    // warm-up, that loop must be allocation-free in the pooled classes.
    let (h0, m0) = workspace::stats();
    for seed in 0..8u64 {
        let mut x = rand_vec(n, 29 + seed);
        ft.solve_in_place(&mut x).expect("steady-state solve");
    }
    let (h1, m1) = workspace::stats();

    let (hits, misses) = (h1 - h0, m1 - m0);
    assert!(hits > 0, "solve path saw no pool traffic — hot paths are not pooled");
    let hit_rate = hits as f64 / (hits + misses) as f64;
    assert!(
        hit_rate >= 0.90,
        "steady-state solve pool hit rate {hit_rate:.3} ({hits} hits / {misses} misses) below 0.90"
    );
}

#[test]
fn steady_state_setup_rebuild_is_mostly_pool_hits() {
    // A rebuild-heavy workload (cross-validation sweeps, serving cache
    // misses) re-runs the whole setup phase — tree, skeletonization —
    // against the same point set. After a warm-up rebuild, the
    // skeletonization temporaries (column-union lists, sampled blocks,
    // gathered coordinate panels, ID scratch) must recycle from the pool.
    let n = 1024;
    let pts = normal_embedded(n, 3, 8, 0.05, 17);
    let kernel = Gaussian::new(1.0);
    let cfg =
        SkelConfig::default().with_tol(1e-5).with_max_rank(64).with_neighbors(8).with_max_level(1);
    let tree = BallTree::build(&pts, 64);
    let nn = compute_neighbors(&tree, &cfg);
    drop(tree);

    // Warm-up rebuilds fill the free lists with setup-shaped buffers.
    for _ in 0..2 {
        let tree = BallTree::build(&pts, 64);
        let st = skeletonize_with_neighbors(tree, &kernel, cfg.clone(), &nn);
        assert!(st.is_fully_skeletonized());
    }

    let (h0, m0) = workspace::stats();
    for _ in 0..4 {
        let tree = BallTree::build(&pts, 64);
        let st = skeletonize_with_neighbors(tree, &kernel, cfg.clone(), &nn);
        assert!(st.is_fully_skeletonized());
    }
    let (h1, m1) = workspace::stats();

    let (hits, misses) = (h1 - h0, m1 - m0);
    assert!(hits > 0, "setup rebuild saw no pool traffic — skeletonization is not pooled");
    let hit_rate = hits as f64 / (hits + misses) as f64;
    assert!(
        hit_rate >= 0.80,
        "steady-state setup pool hit rate {hit_rate:.3} ({hits} hits / {misses} misses) below 0.80"
    );
}
