//! Bitwise-equivalence gates for the level-batched execution engine
//! (`KFDS_BATCH`).
//!
//! The batched engine's contract is that batching changes *scheduling*,
//! never arithmetic: every construction and factorization under the
//! batched planner must be bit-for-bit identical to the per-node
//! reference path — same skeletons and projections, same factors, same
//! pivot orders, same flop accounting. These tests force the switch both
//! ways over the same inputs and compare exactly (`==` on `f64` slices,
//! no tolerances).

use kfds_askit::{skeletonize, SkelConfig, SkeletonTree};
use kfds_core::{
    assemble_blocks, factorize, factorize_with_blocks, FactorTree, LeafFactorization, SolverConfig,
    StorageMode, WStorage,
};
use kfds_kernels::Gaussian;
use kfds_la::Mat;
use kfds_tree::datasets::normal_embedded;
use kfds_tree::BallTree;
use std::sync::{Arc, Mutex};

/// Serializes tests that flip the process-wide batch switch (same
/// convention as the setup-mode toggles elsewhere in the workspace).
static BATCH_TOGGLE: Mutex<()> = Mutex::new(());

/// RAII guard forcing the batched or per-node engine, restoring the
/// prior state on drop (including on panic).
struct BatchMode {
    prev: bool,
}

impl BatchMode {
    fn force(on: bool) -> Self {
        let prev = kfds_la::batch_active();
        kfds_la::set_batch_enabled(on);
        BatchMode { prev }
    }
}

impl Drop for BatchMode {
    fn drop(&mut self) {
        kfds_la::set_batch_enabled(self.prev);
    }
}

fn build_skeleton(seed: u64, max_level: usize) -> SkeletonTree {
    let pts = normal_embedded(512, 3, 8, 0.05, seed);
    let tree = BallTree::build(&pts, 48);
    skeletonize(
        tree,
        &Gaussian::new(1.0),
        SkelConfig::default()
            .with_tol(1e-5)
            .with_max_rank(64)
            .with_neighbors(8)
            .with_max_level(max_level),
    )
}

fn assert_mat_eq(a: Option<&Mat>, b: Option<&Mat>, what: &str, node: usize) {
    match (a, b) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            assert_eq!(a.nrows(), b.nrows(), "{what} rows differ at node {node}");
            assert_eq!(a.ncols(), b.ncols(), "{what} cols differ at node {node}");
            assert_eq!(a.as_slice(), b.as_slice(), "{what} not bitwise equal at node {node}");
        }
        _ => panic!("{what} present under one engine only at node {node}"),
    }
}

/// Full bitwise comparison of two factor trees: per-node dense factors
/// and the aggregate stats.
fn assert_factors_bitwise<K: kfds_kernels::Kernel>(
    batched: &FactorTree<'_, K>,
    reference: &FactorTree<'_, K>,
) {
    let (fa, fb) = (batched.factors(), reference.factors());
    assert_eq!(fa.len(), fb.len());
    for (i, (a, b)) in fa.iter().zip(fb).enumerate() {
        assert_eq!(a.leaf_lu.is_some(), b.leaf_lu.is_some(), "leaf factor presence, node {i}");
        assert_eq!(a.z_lu.is_some(), b.z_lu.is_some(), "Z factor presence, node {i}");
        assert_mat_eq(a.p_hat.as_ref(), b.p_hat.as_ref(), "P-hat", i);
        assert_mat_eq(a.v_lr.as_ref(), b.v_lr.as_ref(), "V_lr", i);
        assert_mat_eq(a.v_rl.as_ref(), b.v_rl.as_ref(), "V_rl", i);
        assert_mat_eq(a.b_l.as_ref(), b.b_l.as_ref(), "B_l", i);
        assert_mat_eq(a.b_r.as_ref(), b.b_r.as_ref(), "B_r", i);
    }
    let (sa, sb) = (batched.stats(), reference.stats());
    assert_eq!(sa.flops.to_bits(), sb.flops.to_bits(), "flop accounting diverged");
    assert_eq!(sa.min_pivot_ratio.to_bits(), sb.min_pivot_ratio.to_bits(), "pivot diagnostics");
    assert_eq!(sa.unstable_factorizations, sb.unstable_factorizations);
    assert_eq!(sa.stored_bytes, sb.stored_bytes, "byte accounting diverged");
    assert_eq!(sa.max_rank, sb.max_rank);

    // The factored operators act identically: solves agree bitwise (this
    // also covers the LU/Cholesky factors themselves, which have no
    // public accessors).
    if batched.is_complete() {
        let n = batched.skeleton_tree().tree().points().len();
        let rhs: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.37).sin() + 0.1).collect();
        let mut xa = rhs.clone();
        let mut xb = rhs;
        batched.solve_in_place(&mut xa).expect("batched solve");
        reference.solve_in_place(&mut xb).expect("reference solve");
        for (j, (a, b)) in xa.iter().zip(&xb).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "solve output differs at row {j}");
        }
    }
}

#[test]
fn skeletonize_batched_matches_per_node_bitwise() {
    let _guard = BATCH_TOGGLE.lock().unwrap();
    for seed in [7, 19] {
        let st_batched = {
            let _mode = BatchMode::force(true);
            build_skeleton(seed, 1)
        };
        let st_ref = {
            let _mode = BatchMode::force(false);
            build_skeleton(seed, 1)
        };
        let n_nodes = st_ref.tree().nodes().len();
        for i in 0..n_nodes {
            match (st_batched.skeleton(i), st_ref.skeleton(i)) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert_eq!(a.skeleton, b.skeleton, "seed {seed}: skeleton differs, node {i}");
                    assert_eq!(a.proj.nrows(), b.proj.nrows(), "node {i}");
                    assert_eq!(
                        a.proj.as_slice(),
                        b.proj.as_slice(),
                        "seed {seed}: projection not bitwise equal, node {i}"
                    );
                    assert_eq!(a.sigma_est, b.sigma_est, "seed {seed}: sigma estimates, node {i}");
                }
                _ => panic!("seed {seed}: node {i} skeletonized under one engine only"),
            }
        }
    }
}

#[test]
fn factorize_batched_matches_per_node_bitwise_all_modes() {
    let _guard = BATCH_TOGGLE.lock().unwrap();
    let st = {
        let _mode = BatchMode::force(true);
        build_skeleton(11, 1)
    };
    let kernel = Gaussian::new(1.0);
    for storage in [StorageMode::StoredGemv, StorageMode::RecomputeGemm, StorageMode::Gsks] {
        for w_storage in [WStorage::Stored, WStorage::Recompute] {
            let cfg = SolverConfig::default()
                .with_lambda(0.8)
                .with_storage(storage)
                .with_w_storage(w_storage);
            let batched = {
                let _mode = BatchMode::force(true);
                factorize(&st, &kernel, cfg).expect("batched factorize")
            };
            let reference = {
                let _mode = BatchMode::force(false);
                factorize(&st, &kernel, cfg).expect("reference factorize")
            };
            assert_factors_bitwise(&batched, &reference);
        }
    }
}

#[test]
fn factorize_batched_matches_per_node_cholesky_leaves() {
    let _guard = BATCH_TOGGLE.lock().unwrap();
    let st = {
        let _mode = BatchMode::force(true);
        build_skeleton(23, 1)
    };
    let kernel = Gaussian::new(1.0);
    let cfg = SolverConfig::default().with_lambda(1.3).with_leaf(LeafFactorization::Cholesky);
    let batched = {
        let _mode = BatchMode::force(true);
        factorize(&st, &kernel, cfg).expect("batched factorize")
    };
    let reference = {
        let _mode = BatchMode::force(false);
        factorize(&st, &kernel, cfg).expect("reference factorize")
    };
    assert_factors_bitwise(&batched, &reference);
}

#[test]
fn partial_factorization_batched_matches_per_node() {
    // Level restriction leaves whole levels with no factorable nodes;
    // the batched sweep must keep the Recompute-W drop sweep running
    // over them and still match bitwise.
    let _guard = BATCH_TOGGLE.lock().unwrap();
    let st = {
        let _mode = BatchMode::force(true);
        build_skeleton(31, 2)
    };
    let kernel = Gaussian::new(1.0);
    let cfg = SolverConfig::default().with_lambda(0.6).with_w_storage(WStorage::Recompute);
    let batched = {
        let _mode = BatchMode::force(true);
        factorize(&st, &kernel, cfg).expect("batched factorize")
    };
    let reference = {
        let _mode = BatchMode::force(false);
        factorize(&st, &kernel, cfg).expect("reference factorize")
    };
    assert!(!batched.is_complete());
    assert_factors_bitwise(&batched, &reference);
}

#[test]
fn refactor_lambda_grid_batched_matches_per_node_bitwise() {
    let _guard = BATCH_TOGGLE.lock().unwrap();
    let st = {
        let _mode = BatchMode::force(true);
        build_skeleton(43, 1)
    };
    let kernel = Gaussian::new(1.0);
    let cfg = SolverConfig::default();
    for lambda in [0.3, 0.9, 2.7] {
        let batched = {
            let _mode = BatchMode::force(true);
            let blocks = Arc::new(assemble_blocks(&st, &kernel));
            factorize_with_blocks(&st, &kernel, blocks, cfg.with_lambda(lambda))
                .expect("batched refactor")
        };
        let reference = {
            let _mode = BatchMode::force(false);
            let blocks = Arc::new(assemble_blocks(&st, &kernel));
            factorize_with_blocks(&st, &kernel, blocks, cfg.with_lambda(lambda))
                .expect("reference refactor")
        };
        // Cached-block assembly itself must agree bitwise too.
        let (ba, bb) = (
            batched.assembled_blocks().expect("blocks").stats(),
            reference.assembled_blocks().expect("blocks").stats(),
        );
        assert_eq!(ba.kernel_flops.to_bits(), bb.kernel_flops.to_bits());
        assert_eq!(ba.bytes, bb.bytes);
        assert_factors_bitwise(&batched, &reference);
    }
}

#[test]
fn batched_factorization_reports_level_breakdown() {
    let _guard = BATCH_TOGGLE.lock().unwrap();
    let _mode = BatchMode::force(true);
    let st = build_skeleton(3, 1);
    let kernel = Gaussian::new(1.0);
    let ft = factorize(&st, &kernel, SolverConfig::default()).expect("factorize");
    let levels = &ft.stats().levels;
    assert!(!levels.is_empty(), "batched sweep must record per-level stats");
    // Bottom-up: recorded root-last, nodes per level shrink going up.
    for w in levels.windows(2) {
        assert!(w[0].level > w[1].level, "levels must be recorded bottom-up");
    }
    let total_nodes: usize = levels.iter().map(|l| l.nodes).sum();
    assert!(total_nodes >= st.frontier().len());
    for l in levels {
        assert!(l.op_groups > 0, "level {}: no op groups recorded", l.level);
        // Shape grouping must actually batch: never more groups than a
        // couple launches per node (kernel eval + factor + plans).
        assert!(
            l.op_groups <= 6 * l.nodes + 6,
            "level {}: {} groups for {} nodes",
            l.level,
            l.op_groups,
            l.nodes
        );
    }
}
