//! Blocked multi-RHS solves must agree with column-at-a-time solves.
//!
//! The blocked paths ([`FactorTree::solve_mat_in_place`] and
//! [`HybridSolver::solve_mat_in_place`]) reorganize the same arithmetic
//! into GEMM-shaped sweeps, so each column must match the single-RHS
//! result to tight tolerance; and because every path is deterministic,
//! repeating the identical blocked solve must reproduce itself bitwise.

use kfds_askit::{skeletonize, SkelConfig, SkeletonTree};
use kfds_core::{factorize, HybridSolver, SharedFactor, SolverConfig};
use kfds_kernels::Gaussian;
use kfds_krylov::GmresOptions;
use kfds_la::Mat;
use kfds_tree::datasets::normal_embedded;
use kfds_tree::BallTree;
use std::sync::Arc;

const NRHS: usize = 8;

fn fixture(n: usize, max_level: usize) -> (SkeletonTree, Gaussian) {
    let pts = normal_embedded(n, 3, 8, 0.05, 23);
    let kernel = Gaussian::new(1.0);
    let tree = BallTree::build(&pts, 64);
    let st = skeletonize(
        tree,
        &kernel,
        SkelConfig::default()
            .with_tol(1e-5)
            .with_max_rank(64)
            .with_neighbors(8)
            .with_max_level(max_level),
    );
    (st, kernel)
}

fn rhs_matrix(n: usize) -> Mat {
    let mut b = Mat::zeros(n, NRHS);
    for j in 0..NRHS {
        for (i, v) in b.col_mut(j).iter_mut().enumerate() {
            // Deterministic, distinct, O(1)-magnitude columns.
            *v = ((i * (j + 3) + 7) % 31) as f64 / 31.0 - 0.5;
        }
    }
    b
}

fn rel_err(got: &[f64], want: &[f64]) -> f64 {
    let num: f64 = got.iter().zip(want).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
    let den: f64 = want.iter().map(|v| v * v).sum::<f64>().sqrt();
    num / den.max(1e-300)
}

#[test]
fn blocked_direct_solve_matches_columnwise() {
    let n = 1024;
    let (st, kernel) = fixture(n, 1);
    let ft = factorize(&st, &kernel, SolverConfig::default().with_lambda(0.5)).expect("factorize");
    assert!(ft.is_complete(), "fixture must exercise the complete-factorization direct path");

    let b = rhs_matrix(n);
    let mut blocked = b.clone();
    ft.solve_mat_in_place(&mut blocked).expect("blocked solve");

    for j in 0..NRHS {
        let mut single = b.col(j).to_vec();
        ft.solve_in_place(&mut single).expect("single-RHS solve");
        let err = rel_err(blocked.col(j), &single);
        assert!(err < 1e-12, "direct path column {j}: blocked vs single rel err {err:.3e}");
    }

    // Determinism: the identical blocked solve reproduces itself bitwise.
    let mut again = b.clone();
    ft.solve_mat_in_place(&mut again).expect("repeat blocked solve");
    for j in 0..NRHS {
        assert_eq!(again.col(j), blocked.col(j), "blocked solve must be deterministic (col {j})");
    }
}

#[test]
fn blocked_hybrid_solve_matches_columnwise() {
    let n = 1024;
    // max_level = 2 leaves the top levels unskeletonized: a partial
    // factorization, so solves route through the hybrid reduced system.
    let (st, kernel) = fixture(n, 2);
    let ft = factorize(&st, &kernel, SolverConfig::default().with_lambda(0.5)).expect("factorize");
    assert!(!ft.is_complete(), "fixture must exercise the hybrid path");
    let hs = HybridSolver::new(&ft).expect("hybrid solver");
    assert!(hs.reduced_dim() > 0, "reduced system must be nontrivial");
    let opts = GmresOptions::default();

    let b = rhs_matrix(n);
    let mut blocked = b.clone();
    let results = hs.solve_mat_in_place(&mut blocked, &opts).expect("blocked hybrid solve");
    assert_eq!(results.len(), NRHS);
    for (j, r) in results.iter().enumerate() {
        assert!(r.converged, "column {j}: reduced GMRES did not converge");
    }

    for j in 0..NRHS {
        let out = hs.solve(b.col(j), &opts).expect("single-RHS hybrid solve");
        assert!(out.gmres.converged);
        let err = rel_err(blocked.col(j), &out.x);
        // The blocked path runs the same GMRES on the same reduced system
        // with the same options; only blocked-vs-columnwise D⁻¹/V/W
        // application order differs.
        assert!(err < 1e-10, "hybrid path column {j}: blocked vs single rel err {err:.3e}");
    }

    let mut again = b.clone();
    hs.solve_mat_in_place(&mut again, &opts).expect("repeat blocked hybrid solve");
    for j in 0..NRHS {
        assert_eq!(again.col(j), blocked.col(j), "hybrid blocked solve must be deterministic");
    }
}

#[test]
fn shared_factor_blocked_solve_dispatches_both_paths() {
    let n = 512;
    let opts = GmresOptions::default();
    for (max_level, complete) in [(1usize, true), (2usize, false)] {
        let (st, kernel) = fixture(n, max_level);
        let cfg = SolverConfig::default().with_lambda(0.5);
        let sf = SharedFactor::factorize(Arc::new(st), Arc::new(kernel), cfg).expect("shared");
        assert_eq!(sf.is_complete(), complete);

        let b = rhs_matrix(n);
        let mut blocked = b.clone();
        sf.solve_block_in_place(&mut blocked, &opts).expect("shared blocked solve");
        for j in 0..NRHS {
            let ft = sf.factor_tree();
            let want = if complete {
                let mut x = b.col(j).to_vec();
                ft.solve_in_place(&mut x).expect("single direct");
                x
            } else {
                HybridSolver::new(ft)
                    .expect("hybrid")
                    .solve(b.col(j), &opts)
                    .expect("single hybrid")
                    .x
            };
            let err = rel_err(blocked.col(j), &want);
            assert!(
                err < 1e-10,
                "SharedFactor (complete={complete}) column {j}: rel err {err:.3e}"
            );
        }
    }
}
