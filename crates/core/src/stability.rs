//! Numerical stability diagnostics (paper §III).
//!
//! The factorization can become unstable when `λ` is small relative to
//! `σ_min` of a diagonal block: `κ(λI + D)` can grow even while
//! `κ(λI + K)` stays moderate, because the pivoting available inside the
//! hierarchical format is restricted to the skeleton rows. The pivot
//! monitors in [`crate::config::FactorStats`] detect this cheaply during
//! factorization; this module adds spectral estimates for reporting.

use crate::factor::FactorTree;
use kfds_askit::hier_matvec;
use kfds_kernels::Kernel;
use kfds_la::sigma_max;

/// Spectral condition estimate of the factorized operator.
#[derive(Clone, Copy, Debug)]
pub struct ConditionEstimate {
    /// Power-iteration estimate of `σ₁(λI + K̃)`.
    pub sigma_max: f64,
    /// Power-iteration estimate of `σ₁((λI + K̃)^{-1}) = 1/σ_min`.
    pub inv_sigma_min: f64,
}

impl ConditionEstimate {
    /// `κ₂ ≈ σ₁ · ‖(λI+K̃)^{-1}‖`.
    pub fn kappa(&self) -> f64 {
        self.sigma_max * self.inv_sigma_min
    }
}

/// Estimates `κ(λI + K̃)` with power iterations on the hierarchical
/// operator (forward) and the factorized solve (inverse).
pub fn estimate_condition<K: Kernel>(ft: &FactorTree<'_, K>, iters: usize) -> ConditionEstimate {
    let st = ft.skeleton_tree();
    let kernel = ft.kernel();
    let lambda = ft.config().lambda;
    let n = st.tree().points().len();
    let smax = sigma_max(
        n,
        |x, y| {
            let w = hier_matvec(st, kernel, lambda, x);
            y.copy_from_slice(&w);
        },
        iters,
        1e-6,
    );
    let sinv = sigma_max(
        n,
        |x, y| {
            y.copy_from_slice(x);
            ft.solve_in_place(y).expect("complete factorization required");
        },
        iters,
        1e-6,
    );
    ConditionEstimate { sigma_max: smax, inv_sigma_min: sinv }
}

/// Estimates `σ₁(K̃)` alone (no regularizer) — used to pick `λ` from a
/// target condition number as in Figure 5 (`λ = c σ₁`).
pub fn estimate_sigma1<K: Kernel>(st: &kfds_askit::SkeletonTree, kernel: &K, iters: usize) -> f64 {
    let n = st.tree().points().len();
    sigma_max(
        n,
        |x, y| {
            let w = hier_matvec(st, kernel, 0.0, x);
            y.copy_from_slice(&w);
        },
        iters,
        1e-6,
    )
}
