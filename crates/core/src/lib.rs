//! # kfds-core — an `O(N log N)` parallel fast direct solver for kernel
//! matrices
//!
//! From-scratch implementation of Yu, March & Biros (IPDPS 2017):
//! approximate factorization of the regularized kernel matrix `λI + K`
//! through the recursive Sherman–Morrison–Woodbury formula over an
//! ASKIT-style hierarchical (skeletonized) representation.
//!
//! * [`factorize`] — the paper's contribution: Algorithm II.2 with the
//!   telescoped `P̂_{αα̃}` of eq. (10), `O(s²N log N)` work;
//! * [`factorize_baseline`] — the `O(N log² N)` INV-ASKIT scheme (\[36\])
//!   producing identical factors, for the Table III comparison;
//! * [`FactorTree::solve_in_place`] — Algorithm II.3, `O(sN log N)` per
//!   right-hand side, with three `V`-block schemes (stored GEMV,
//!   recomputed GEMM, fused GSKS — Table IV);
//! * [`HybridSolver`] — Algorithms II.6–II.8: partial factorization up to
//!   the skeletonization frontier plus matrix-free GMRES on the reduced
//!   `2^L s` system (§II-C);
//! * [`dist_factorize`]/[`DistSolver`] — Algorithms II.4/II.5 over the
//!   simulated message-passing runtime;
//! * [`KernelRidge`] — kernel ridge regression, the paper's end-to-end
//!   learning task;
//! * [`stability`] — the §III conditioning diagnostics.

pub mod assemble;
pub mod baseline;
pub mod config;
pub mod crossval;
pub mod dist;
pub mod error;
pub mod factor;
pub mod gp;
pub mod hybrid;
mod levelbatch;
pub mod leveldirect;
pub mod partition;
pub mod precond;
pub mod regression;
pub mod share;
pub mod solve;
pub mod stability;
pub mod taskparallel;

pub use assemble::{
    assemble_blocks, refactor_enabled, set_refactor_enabled, AssembleStats, AssembledBlocks,
    NodeBlocks,
};
pub use baseline::factorize_baseline;
pub use config::{FactorStats, LeafFactorization, LevelStats, SolverConfig, StorageMode, WStorage};
pub use crossval::{
    grid_search_gaussian, lambda_sweep, train_best_gaussian, KernelRidgeMulti, LambdaSweepEntry,
};
pub use dist::{dist_factorize, DistSolver};
pub use error::SolverError;
pub use factor::{factorize, factorize_with_blocks, FactorTree, LeafFactor, NodeFactors};
pub use gp::{GaussianProcess, NoiseSweepEntry};
pub use hybrid::{HybridOutcome, HybridSolver};
pub use leveldirect::LevelRestrictedDirect;
pub use partition::PartitionedFactor;
pub use precond::{solve_exact_preconditioned, FactorPreconditioner};
pub use regression::{KernelRidge, TrainReport};
pub use share::{SharedFactor, SharedSetup};
pub use stability::{estimate_condition, estimate_sigma1, ConditionEstimate};
pub use taskparallel::factorize_taskparallel;

#[cfg(test)]
mod tests;
