//! Gaussian process regression on top of the fast direct solver.
//!
//! GP training is the paper's canonical workload ("kernel matrices appear
//! in ... Gaussian process regression", §I): the posterior mean needs
//! `α = (K + σ²I)^{-1} y`, the predictive variance needs more solves, and
//! the log marginal likelihood needs `log det(K + σ²I)` — which the
//! hierarchical factorization yields *for free*: by Sylvester's identity
//! `det(D(I+WV)) = det(D) det(Z)`, so
//!
//! ```text
//! log det(λI + K̃) = Σ_leaves log det(λI + K_αα) + Σ_internal log det(Z_α)
//! ```
//!
//! an `O(N log N)` determinant that normally costs `O(N³)`.

use crate::assemble::{assemble_blocks, refactor_enabled};
use crate::error::SolverError;
use crate::factor::{factorize, factorize_with_blocks, FactorTree, LeafFactor};
use kfds_askit::{SkeletonTree, TreecodeEvaluator};
use kfds_kernels::Kernel;
use kfds_la::Mat;
use kfds_tree::PointSet;
use std::sync::Arc;
use std::time::Instant;

impl<K: Kernel> FactorTree<'_, K> {
    /// `log |det(λI + K̃)|` from the factors (Sylvester's identity); the
    /// matrix is SPD in the GP setting so this is `log det`.
    ///
    /// # Errors
    /// [`SolverError::NotSkeletonized`] for partial factorizations.
    pub fn log_det(&self) -> Result<f64, SolverError> {
        if !self.is_complete() {
            return Err(SolverError::NotSkeletonized { node: self.skeleton_tree().tree().root() });
        }
        let mut acc = 0.0;
        for nf in self.factors() {
            if let Some(leaf) = &nf.leaf_lu {
                acc += match leaf {
                    LeafFactor::Lu(f) => f.log_abs_det(),
                    LeafFactor::Cholesky(f) => f.log_det(),
                };
            }
            if let Some(z) = &nf.z_lu {
                acc += z.log_abs_det();
            }
        }
        Ok(acc)
    }
}

/// One row of a GP noise-variance sweep ([`GaussianProcess::fit_best_noise`]).
#[derive(Clone, Debug)]
pub struct NoiseSweepEntry {
    /// Observation noise variance `σ²` (enters as λ).
    pub noise2: f64,
    /// Log marginal likelihood at this noise level (`NaN` when failed).
    pub log_marginal: f64,
    /// Wall-clock seconds for the factorization + fit at this grid point
    /// (for a failed point, the time spent failing).
    pub factor_seconds: f64,
    /// `true` iff factorization/fit failed outright at this grid point.
    pub failed: bool,
}

/// A fitted Gaussian process (zero prior mean).
pub struct GaussianProcess<'a, K: Kernel> {
    ft: FactorTree<'a, K>,
    /// `α = (K̃ + σ²I)^{-1} y`, permuted order.
    alpha_perm: Vec<f64>,
    /// Observation noise variance `σ²`.
    noise2: f64,
    /// Cached `log det(K̃ + σ²I)`.
    log_det: f64,
    /// Cached `yᵀ α`.
    y_dot_alpha: f64,
}

impl<'a, K: Kernel> GaussianProcess<'a, K> {
    /// Fits the GP: one factorization of `σ²I + K̃` plus one solve.
    ///
    /// `y` is in *original* point order.
    ///
    /// # Errors
    /// Propagates factorization failures.
    ///
    /// # Panics
    /// Panics if `y.len()` differs from the point count or `noise2 <= 0`.
    pub fn fit(
        st: &'a SkeletonTree,
        kernel: &'a K,
        noise2: f64,
        y: &[f64],
    ) -> Result<Self, SolverError> {
        assert!(noise2 > 0.0, "observation noise variance must be positive");
        let n = st.tree().points().len();
        assert_eq!(y.len(), n, "label length mismatch");
        let cfg = crate::SolverConfig::default().with_lambda(noise2);
        let ft = factorize(st, kernel, cfg)?;
        Self::from_factor_tree(ft, noise2, y)
    }

    /// Finishes a fit over an already-built factorization: one solve for
    /// `α`, the Sylvester log-determinant, and the cached `yᵀα`.
    fn from_factor_tree(
        ft: FactorTree<'a, K>,
        noise2: f64,
        y: &[f64],
    ) -> Result<Self, SolverError> {
        let y_perm = ft.skeleton_tree().tree().permute_vec(y);
        let mut alpha = y_perm.clone();
        ft.solve_in_place(&mut alpha)?;
        let log_det = ft.log_det()?;
        let y_dot_alpha = kfds_la::blas1::dot(&y_perm, &alpha);
        Ok(GaussianProcess { ft, alpha_perm: alpha, noise2, log_det, y_dot_alpha })
    }

    /// Fits the GP at every noise variance in `noise_grid` and returns
    /// the fit maximizing the log marginal likelihood, plus the full
    /// sweep curve — the GP model-selection loop the paper motivates.
    ///
    /// With λ-sweep refactorization active (the default;
    /// `KFDS_REFACTOR=off` disables), the kernel blocks are assembled
    /// once and every grid point pays only linear algebra; with it off,
    /// every grid point runs a full [`factorize`] (the legacy path).
    /// Grid points whose factorization fails are recorded in the curve
    /// (`failed = true`, with honest elapsed seconds) and skipped for
    /// model selection.
    ///
    /// # Errors
    /// [`SolverError`] of the *last* failure when every grid point fails.
    ///
    /// # Panics
    /// Panics on an empty grid, a non-positive noise variance, or a
    /// label-length mismatch.
    pub fn fit_best_noise(
        st: &'a SkeletonTree,
        kernel: &'a K,
        noise_grid: &[f64],
        y: &[f64],
    ) -> Result<(Self, Vec<NoiseSweepEntry>), SolverError> {
        Self::fit_best_noise_impl(st, kernel, noise_grid, y, refactor_enabled())
    }

    /// The sweep body, parameterized over the refactorization toggle so
    /// A/B tests can pin either path without racing on the global switch.
    pub(crate) fn fit_best_noise_impl(
        st: &'a SkeletonTree,
        kernel: &'a K,
        noise_grid: &[f64],
        y: &[f64],
        use_refactor: bool,
    ) -> Result<(Self, Vec<NoiseSweepEntry>), SolverError> {
        assert!(!noise_grid.is_empty(), "noise grid must be non-empty");
        assert!(noise_grid.iter().all(|&s| s > 0.0), "noise variances must be positive");
        assert_eq!(y.len(), st.tree().points().len(), "label length mismatch");
        // One assembly amortized across the whole noise grid.
        let blocks = use_refactor.then(|| Arc::new(assemble_blocks(st, kernel)));
        let mut curve = Vec::with_capacity(noise_grid.len());
        let mut best: Option<Self> = None;
        let mut last_err = None;
        for &noise2 in noise_grid {
            let cfg = crate::SolverConfig::default().with_lambda(noise2);
            let t0 = Instant::now();
            let fitted = match &blocks {
                Some(b) => factorize_with_blocks(st, kernel, Arc::clone(b), cfg),
                None => factorize(st, kernel, cfg),
            }
            .and_then(|ft| Self::from_factor_tree(ft, noise2, y));
            let factor_seconds = t0.elapsed().as_secs_f64();
            match fitted {
                Ok(gp) => {
                    let lml = gp.log_marginal_likelihood();
                    curve.push(NoiseSweepEntry {
                        noise2,
                        log_marginal: lml,
                        factor_seconds,
                        failed: false,
                    });
                    if best.as_ref().map(|b| lml > b.log_marginal_likelihood()).unwrap_or(true) {
                        best = Some(gp);
                    }
                }
                Err(e) => {
                    curve.push(NoiseSweepEntry {
                        noise2,
                        log_marginal: f64::NAN,
                        factor_seconds,
                        failed: true,
                    });
                    last_err = Some(e);
                }
            }
        }
        match best {
            Some(gp) => Ok((gp, curve)),
            None => Err(last_err.expect("non-empty grid with no fit must have an error")),
        }
    }

    /// The log marginal likelihood
    /// `−½ yᵀα − ½ log det(K+σ²I) − (n/2) log 2π` — the GP model-selection
    /// objective, computable here in `O(N log N)`.
    pub fn log_marginal_likelihood(&self) -> f64 {
        let n = self.ft.skeleton_tree().tree().points().len() as f64;
        -0.5 * self.y_dot_alpha - 0.5 * self.log_det - 0.5 * n * (2.0 * std::f64::consts::PI).ln()
    }

    /// Posterior mean at the test points (treecode evaluation with
    /// acceptance parameter `theta`; `theta = 0` is exact).
    pub fn predict_mean(&self, test: &PointSet, theta: f64) -> Vec<f64> {
        let ev = TreecodeEvaluator::new(
            self.ft.skeleton_tree(),
            self.ft.kernel(),
            self.alpha_perm.clone(),
            theta,
        );
        ev.evaluate_batch(test)
    }

    /// Posterior variance of the latent function at the test points:
    /// `k(x,x) − k*ᵀ (K+σ²I)^{-1} k*`, batched through the multi-RHS
    /// solve.
    pub fn predict_variance(&self, test: &PointSet) -> Vec<f64> {
        let st = self.ft.skeleton_tree();
        let pts = st.tree().points();
        let kernel = self.ft.kernel();
        let n = pts.len();
        let t = test.len();
        let mut out = Vec::with_capacity(t);
        // Batch test columns to bound memory (n x batch).
        const BATCH: usize = 64;
        for chunk_start in (0..t).step_by(BATCH) {
            let chunk = chunk_start..(chunk_start + BATCH).min(t);
            let width = chunk.len();
            let mut kstar = Mat::zeros(n, width);
            for (jj, j) in chunk.clone().enumerate() {
                let col = kstar.col_mut(jj);
                let x = test.point(j);
                for (i, ci) in col.iter_mut().enumerate() {
                    *ci = kernel.eval(x, pts.point(i));
                }
            }
            let kstar0 = kstar.clone();
            let mut solved = kstar;
            self.ft.solve_mat_in_place(&mut solved).expect("complete factorization");
            for (jj, j) in chunk.enumerate() {
                let x = test.point(j);
                let kxx = kernel.eval(x, x);
                let quad = kfds_la::blas1::dot(kstar0.col(jj), solved.col(jj));
                out.push((kxx - quad).max(0.0));
            }
        }
        out
    }

    /// Observation noise variance `σ²`.
    pub fn noise_variance(&self) -> f64 {
        self.noise2
    }

    /// The underlying factorization (for diagnostics).
    pub fn factor_tree(&self) -> &FactorTree<'a, K> {
        &self.ft
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kfds_askit::{skeletonize, SkelConfig};
    use kfds_kernels::{eval_symmetric, Gaussian};
    use kfds_la::Lu;
    use kfds_tree::datasets::normal_embedded;
    use kfds_tree::BallTree;

    fn fixture() -> (SkeletonTree, Gaussian, Vec<f64>) {
        let pts = normal_embedded(256, 2, 5, 0.05, 71);
        let tree = BallTree::build(&pts, 32);
        let kernel = Gaussian::new(1.5);
        let st = skeletonize(
            tree,
            &kernel,
            SkelConfig::default().with_tol(1e-10).with_max_rank(160).with_neighbors(12),
        );
        let y: Vec<f64> = (0..256).map(|i| (i as f64 * 0.05).sin()).collect();
        (st, kernel, y)
    }

    fn dense_system(st: &SkeletonTree, kernel: &Gaussian, noise2: f64) -> kfds_la::Mat {
        let n = st.tree().points().len();
        let mut km = eval_symmetric(kernel, st.tree().points(), 0..n);
        for i in 0..n {
            km[(i, i)] += noise2;
        }
        km
    }

    #[test]
    fn log_det_matches_dense() {
        let (st, kernel, _) = fixture();
        let noise2 = 0.1;
        let ft = factorize(&st, &kernel, crate::SolverConfig::default().with_lambda(noise2))
            .expect("factorize");
        let fast = ft.log_det().expect("log det");
        let km = dense_system(&st, &kernel, noise2);
        let dense = Lu::factor(km).expect("dense LU").log_abs_det();
        // The factorization's K̃ differs from K by the (tight) tolerance.
        assert!((fast - dense).abs() < 1e-3 * dense.abs().max(1.0), "fast {fast} vs dense {dense}");
    }

    #[test]
    fn log_det_scales_with_lambda() {
        let (st, kernel, _) = fixture();
        // Huge lambda: log det ~ n log lambda.
        let lam = 1e6;
        let ft = factorize(&st, &kernel, crate::SolverConfig::default().with_lambda(lam))
            .expect("factorize");
        let ld = ft.log_det().expect("log det");
        let want = 256.0 * lam.ln();
        assert!((ld - want).abs() / want < 1e-3, "{ld} vs {want}");
    }

    #[test]
    fn marginal_likelihood_matches_dense() {
        let (st, kernel, y) = fixture();
        let noise2 = 0.05;
        let gp = GaussianProcess::fit(
            &st,
            &kernel,
            noise2,
            &st.tree().unpermute_vec(
                &st.tree().permute_vec(&y), // identity round-trip keeps order explicit
            ),
        )
        .expect("fit");
        let lml = gp.log_marginal_likelihood();
        // Dense reference.
        let km = dense_system(&st, &kernel, noise2);
        let lu = Lu::factor(km).expect("LU");
        let yp = st.tree().permute_vec(&y);
        let alpha = lu.solve(&yp);
        let dense_lml = -0.5 * kfds_la::blas1::dot(&yp, &alpha)
            - 0.5 * lu.log_abs_det()
            - 128.0 * (2.0 * std::f64::consts::PI).ln();
        assert!(
            (lml - dense_lml).abs() < 1e-2 * dense_lml.abs().max(1.0),
            "fast {lml} vs dense {dense_lml}"
        );
    }

    #[test]
    fn variance_matches_dense_and_shrinks_near_data() {
        let (st, kernel, y) = fixture();
        let noise2 = 0.05;
        let gp = GaussianProcess::fit(&st, &kernel, noise2, &y).expect("fit");
        // Test points: 3 training points (variance ~ small) + 1 far point.
        let mut test = kfds_tree::PointSet::with_capacity(5, 4);
        let pts = st.tree().points();
        for i in [0usize, 10, 100] {
            test.push(pts.point(i));
        }
        test.push(&[50.0, -50.0, 50.0, -50.0, 50.0]);
        let var = gp.predict_variance(&test);
        // Dense reference.
        let km = dense_system(&st, &kernel, noise2);
        let lu = Lu::factor(km).expect("LU");
        for (j, &vj) in var.iter().enumerate() {
            let x = test.point(j);
            let kstar: Vec<f64> = (0..256).map(|i| kernel.eval(x, pts.point(i))).collect();
            let solved = lu.solve(&kstar);
            let want = (kernel.eval(x, x) - kfds_la::blas1::dot(&kstar, &solved)).max(0.0);
            assert!((vj - want).abs() < 1e-3, "point {j}: {vj} vs {want}");
        }
        // Far from data: variance approaches the prior k(x,x) = 1.
        assert!(var[3] > 0.99, "far-point variance {}", var[3]);
        // Near data: substantially reduced.
        assert!(var[0] < 0.5, "on-data variance {}", var[0]);
    }
}
