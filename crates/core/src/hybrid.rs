//! The hybrid direct/iterative solver — Algorithms II.6–II.8 (§II-C).
//!
//! With level restriction the frontier `A` holds the deepest skeletonized
//! ancestors; `λI + K̃ = D (I + W V)` where `D = blockdiag(λI + K̃_φφ)`
//! over `φ ∈ A` (factorized directly), `W = D^{-1} blockdiag(P_{φφ̃})`
//! (the frontier `P̂` factors, Algorithm II.7), and `V` stacks the
//! skeleton-row blocks `K_{φ̃, X∖φ}` (Algorithm II.8, evaluated
//! matrix-free — the storage for these blocks above the frontier is
//! exactly what the hybrid scheme avoids). The reduced system
//! `(I + V W) z = V D^{-1} u` of size `Σ_φ s_φ ≈ 2^L s` is solved by
//! GMRES; then `x = D^{-1}u − W z`.

use crate::error::SolverError;
use crate::factor::FactorTree;
use kfds_kernels::{sum_fused, Kernel};
use kfds_krylov::{gmres, FnOp, GmresOptions, SolveResult};
use rayon::prelude::*;

/// A level-restricted hybrid solver built on a partial factorization.
pub struct HybridSolver<'a, 'f, K: Kernel> {
    ft: &'f FactorTree<'a, K>,
    /// Frontier nodes sorted by their point range.
    frontier: Vec<usize>,
    /// Prefix offsets of each frontier node's skeleton block in the
    /// reduced (skeleton) vector space.
    offsets: Vec<usize>,
    /// Total reduced dimension `Σ_φ s_φ`.
    reduced_dim: usize,
}

/// Outcome of a hybrid solve.
#[derive(Clone, Debug)]
pub struct HybridOutcome {
    /// Solution in the tree's permuted ordering.
    pub x: Vec<f64>,
    /// GMRES result for the reduced system (iterations, trace).
    pub gmres: SolveResult,
}

impl<'a, 'f, K: Kernel> HybridSolver<'a, 'f, K> {
    /// Builds the hybrid solver from a (typically partial) factorization.
    ///
    /// # Errors
    /// [`SolverError::FrontierIncomplete`] if some leaf lies outside the
    /// skeletonization frontier (then `D` would not cover the matrix).
    pub fn new(ft: &'f FactorTree<'a, K>) -> Result<Self, SolverError> {
        let st = ft.skeleton_tree();
        let tree = st.tree();
        for leaf in tree.leaves() {
            if !st.is_skeletonized(leaf) {
                return Err(SolverError::FrontierIncomplete);
            }
        }
        let mut frontier = st.frontier().to_vec();
        frontier.sort_by_key(|&i| tree.node(i).begin);
        // The frontier must partition the point set.
        let mut cursor = 0;
        for &f in &frontier {
            if tree.node(f).begin != cursor {
                return Err(SolverError::FrontierIncomplete);
            }
            cursor = tree.node(f).end;
        }
        if cursor != tree.points().len() {
            return Err(SolverError::FrontierIncomplete);
        }
        let mut offsets = Vec::with_capacity(frontier.len() + 1);
        let mut acc = 0;
        for &f in &frontier {
            offsets.push(acc);
            acc += st.skeleton(f).expect("frontier node skeletonized").rank();
        }
        offsets.push(acc);
        Ok(HybridSolver { ft, frontier, offsets, reduced_dim: acc })
    }

    /// Size of the iteratively solved reduced system (`≈ 2^L s`).
    pub fn reduced_dim(&self) -> usize {
        self.reduced_dim
    }

    /// The skeleton tree underlying the factorization.
    pub fn skeleton_tree(&self) -> &'a kfds_askit::SkeletonTree {
        self.ft.skeleton_tree()
    }

    /// The frontier nodes, sorted by point range.
    pub fn frontier(&self) -> &[usize] {
        &self.frontier
    }

    /// `D^{-1} u` in place: independent direct solves on the frontier
    /// subtrees (Algorithm II.5/II.3 below the frontier).
    fn apply_dinv(&self, u: &mut [f64]) {
        let tree = self.ft.skeleton_tree().tree();
        let ctx = self.ft.ctx();
        // Frontier ranges partition u; split it into per-node chunks.
        let mut chunks: Vec<(usize, &mut [f64])> = Vec::with_capacity(self.frontier.len());
        let mut rest = u;
        for &f in &self.frontier {
            let len = tree.node(f).len();
            let (head, tail) = rest.split_at_mut(len);
            chunks.push((f, head));
            rest = tail;
        }
        chunks.into_par_iter().for_each(|(f, chunk)| ctx.solve_node(f, chunk));
    }

    /// `out[φ] = P̂_φ z_φ` (Algorithm II.7: `MatVecW` fires only on the
    /// frontier since `P = I` above it).
    fn apply_w(&self, z: &[f64], out: &mut [f64]) {
        debug_assert_eq!(z.len(), self.reduced_dim);
        let tree = self.ft.skeleton_tree().tree();
        let mut chunks: Vec<(usize, usize, &mut [f64])> = Vec::with_capacity(self.frontier.len());
        let mut rest = out;
        for (k, &f) in self.frontier.iter().enumerate() {
            let len = tree.node(f).len();
            let (head, tail) = rest.split_at_mut(len);
            chunks.push((k, f, head));
            rest = tail;
        }
        let ctx = self.ft.ctx();
        chunks.into_par_iter().for_each(|(k, f, chunk)| {
            let zk = &z[self.offsets[k]..self.offsets[k + 1]];
            if let Some(p_hat) = self.ft.factors()[f].p_hat.as_ref() {
                kfds_la::blas2::gemv(1.0, p_hat.rb(), zk, 0.0, chunk);
            } else {
                // Recompute-W mode: telescope P̂ through eq. (10).
                chunk.copy_from_slice(&ctx.apply_p_hat(f, zk));
            }
        });
    }

    /// `y_φ = K_{φ̃, X∖φ} x` for every frontier node (Algorithm II.8:
    /// `MatVecV` over all nodes above and on the frontier), evaluated
    /// matrix-free as `K_{φ̃, X} x − K_{φ̃, φ} x_φ`.
    fn apply_v(&self, x: &[f64]) -> Vec<f64> {
        let st = self.ft.skeleton_tree();
        let tree = st.tree();
        let pts = tree.points();
        let kernel = self.ft.kernel();
        let n = pts.len();
        let all: Vec<usize> = (0..n).collect();
        let segments: Vec<Vec<f64>> = self
            .frontier
            .par_iter()
            .map(|&f| {
                let sk = st.skeleton(f).expect("frontier skeleton");
                if sk.rank() == 0 {
                    return Vec::new();
                }
                let mut y = vec![0.0; sk.rank()];
                sum_fused(kernel, pts, &sk.skeleton, &all, x, &mut y);
                let range: Vec<usize> = tree.node(f).range().collect();
                let mut own = vec![0.0; sk.rank()];
                sum_fused(kernel, pts, &sk.skeleton, &range, &x[tree.node(f).range()], &mut own);
                for (yi, oi) in y.iter_mut().zip(&own) {
                    *yi -= oi;
                }
                y
            })
            .collect();
        let mut out = Vec::with_capacity(self.reduced_dim);
        for seg in segments {
            out.extend(seg);
        }
        out
    }

    /// Public probe of `D^{-1}` (used by the level-restricted direct
    /// solver and the benchmark harnesses).
    pub fn apply_dinv_pub(&self, u: &mut [f64]) {
        self.apply_dinv(u)
    }

    /// Public probe of the `W` application.
    pub fn apply_w_pub(&self, z: &[f64], out: &mut [f64]) {
        self.apply_w(z, out)
    }

    /// Public probe of the `V` application.
    pub fn apply_v_pub(&self, x: &[f64]) -> Vec<f64> {
        self.apply_v(x)
    }

    /// Solves `(λI + K̃) x = b` (`b` in permuted order) — Algorithm II.6.
    pub fn solve(&self, b: &[f64], opts: &GmresOptions) -> Result<HybridOutcome, SolverError> {
        let n = self.ft.skeleton_tree().tree().points().len();
        assert_eq!(b.len(), n, "hybrid solve: rhs length mismatch");
        // v = D^{-1} u.
        let mut v = b.to_vec();
        self.apply_dinv(&mut v);
        if self.reduced_dim == 0 {
            return Ok(HybridOutcome {
                x: v,
                gmres: SolveResult {
                    x: vec![],
                    converged: true,
                    iters: 0,
                    residual: 0.0,
                    trace: vec![],
                },
            });
        }
        // Reduced right-hand side y = V v.
        let y = self.apply_v(&v);
        // (I + V W) z = y, matrix-free.
        let op = FnOp::new(self.reduced_dim, |z: &[f64], out: &mut [f64]| {
            let mut wz = vec![0.0; n];
            self.apply_w(z, &mut wz);
            let vwz = self.apply_v(&wz);
            for i in 0..z.len() {
                out[i] = z[i] + vwz[i];
            }
        });
        let gm = gmres(&op, &y, None, opts);
        // x = v − W z.
        let mut wz = vec![0.0; n];
        self.apply_w(&gm.x, &mut wz);
        let mut x = v;
        for (xi, wi) in x.iter_mut().zip(&wz) {
            *xi -= wi;
        }
        Ok(HybridOutcome { x, gmres: gm })
    }

    /// Convenience wrapper: right-hand side and solution in *original*
    /// point order.
    pub fn solve_original_order(
        &self,
        b: &[f64],
        opts: &GmresOptions,
    ) -> Result<HybridOutcome, SolverError> {
        let tree = self.ft.skeleton_tree().tree();
        let bp = tree.permute_vec(b);
        let mut out = self.solve(&bp, opts)?;
        out.x = tree.unpermute_vec(&out.x);
        Ok(out)
    }
}
