//! The hybrid direct/iterative solver — Algorithms II.6–II.8 (§II-C).
//!
//! With level restriction the frontier `A` holds the deepest skeletonized
//! ancestors; `λI + K̃ = D (I + W V)` where `D = blockdiag(λI + K̃_φφ)`
//! over `φ ∈ A` (factorized directly), `W = D^{-1} blockdiag(P_{φφ̃})`
//! (the frontier `P̂` factors, Algorithm II.7), and `V` stacks the
//! skeleton-row blocks `K_{φ̃, X∖φ}` (Algorithm II.8, evaluated
//! matrix-free — the storage for these blocks above the frontier is
//! exactly what the hybrid scheme avoids). The reduced system
//! `(I + V W) z = V D^{-1} u` of size `Σ_φ s_φ ≈ 2^L s` is solved by
//! GMRES; then `x = D^{-1}u − W z`.

use crate::error::SolverError;
use crate::factor::FactorTree;
use kfds_kernels::{sum_fused, sum_fused_multi, Kernel};
use kfds_krylov::{gmres, FnOp, GmresOptions, SolveResult};
use kfds_la::{gemm, workspace, Mat, Trans};
use rayon::prelude::*;

/// A level-restricted hybrid solver built on a partial factorization.
pub struct HybridSolver<'a, 'f, K: Kernel> {
    ft: &'f FactorTree<'a, K>,
    /// Frontier nodes sorted by their point range.
    frontier: Vec<usize>,
    /// Prefix offsets of each frontier node's skeleton block in the
    /// reduced (skeleton) vector space.
    offsets: Vec<usize>,
    /// Total reduced dimension `Σ_φ s_φ`.
    reduced_dim: usize,
}

/// Outcome of a hybrid solve.
#[derive(Clone, Debug)]
pub struct HybridOutcome {
    /// Solution in the tree's permuted ordering.
    pub x: Vec<f64>,
    /// GMRES result for the reduced system (iterations, trace).
    pub gmres: SolveResult,
}

impl<'a, 'f, K: Kernel> HybridSolver<'a, 'f, K> {
    /// Builds the hybrid solver from a (typically partial) factorization.
    ///
    /// # Errors
    /// [`SolverError::FrontierIncomplete`] if some leaf lies outside the
    /// skeletonization frontier (then `D` would not cover the matrix).
    pub fn new(ft: &'f FactorTree<'a, K>) -> Result<Self, SolverError> {
        let st = ft.skeleton_tree();
        let tree = st.tree();
        for leaf in tree.leaves() {
            if !st.is_skeletonized(leaf) {
                return Err(SolverError::FrontierIncomplete);
            }
        }
        let mut frontier = st.frontier().to_vec();
        frontier.sort_by_key(|&i| tree.node(i).begin);
        // The frontier must partition the point set.
        let mut cursor = 0;
        for &f in &frontier {
            if tree.node(f).begin != cursor {
                return Err(SolverError::FrontierIncomplete);
            }
            cursor = tree.node(f).end;
        }
        if cursor != tree.points().len() {
            return Err(SolverError::FrontierIncomplete);
        }
        let mut offsets = Vec::with_capacity(frontier.len() + 1);
        let mut acc = 0;
        for &f in &frontier {
            offsets.push(acc);
            acc += st.skeleton(f).expect("frontier node skeletonized").rank();
        }
        offsets.push(acc);
        Ok(HybridSolver { ft, frontier, offsets, reduced_dim: acc })
    }

    /// Size of the iteratively solved reduced system (`≈ 2^L s`).
    pub fn reduced_dim(&self) -> usize {
        self.reduced_dim
    }

    /// The skeleton tree underlying the factorization.
    pub fn skeleton_tree(&self) -> &'a kfds_askit::SkeletonTree {
        self.ft.skeleton_tree()
    }

    /// The frontier nodes, sorted by point range.
    pub fn frontier(&self) -> &[usize] {
        &self.frontier
    }

    /// `D^{-1} u` in place: independent direct solves on the frontier
    /// subtrees (Algorithm II.5/II.3 below the frontier).
    fn apply_dinv(&self, u: &mut [f64]) {
        let tree = self.ft.skeleton_tree().tree();
        let ctx = self.ft.ctx();
        // Frontier ranges partition u; split it into per-node chunks.
        let mut chunks: Vec<(usize, &mut [f64])> = Vec::with_capacity(self.frontier.len());
        let mut rest = u;
        for &f in &self.frontier {
            let len = tree.node(f).len();
            let (head, tail) = rest.split_at_mut(len);
            chunks.push((f, head));
            rest = tail;
        }
        chunks.into_par_iter().for_each(|(f, chunk)| ctx.solve_node(f, chunk));
    }

    /// `out[φ] = P̂_φ z_φ` (Algorithm II.7: `MatVecW` fires only on the
    /// frontier since `P = I` above it).
    fn apply_w(&self, z: &[f64], out: &mut [f64]) {
        debug_assert_eq!(z.len(), self.reduced_dim);
        let tree = self.ft.skeleton_tree().tree();
        let mut chunks: Vec<(usize, usize, &mut [f64])> = Vec::with_capacity(self.frontier.len());
        let mut rest = out;
        for (k, &f) in self.frontier.iter().enumerate() {
            let len = tree.node(f).len();
            let (head, tail) = rest.split_at_mut(len);
            chunks.push((k, f, head));
            rest = tail;
        }
        let ctx = self.ft.ctx();
        chunks.into_par_iter().for_each(|(k, f, chunk)| {
            let zk = &z[self.offsets[k]..self.offsets[k + 1]];
            if let Some(p_hat) = self.ft.factors()[f].p_hat.as_ref() {
                kfds_la::blas2::gemv(1.0, p_hat.rb(), zk, 0.0, chunk);
            } else {
                // Recompute-W mode: telescope P̂ through eq. (10).
                chunk.copy_from_slice(&ctx.apply_p_hat(f, zk));
            }
        });
    }

    /// `y_φ = K_{φ̃, X∖φ} x` for every frontier node (Algorithm II.8:
    /// `MatVecV` over all nodes above and on the frontier), evaluated
    /// matrix-free as `K_{φ̃, X} x − K_{φ̃, φ} x_φ`.
    fn apply_v(&self, x: &[f64]) -> Vec<f64> {
        let st = self.ft.skeleton_tree();
        let tree = st.tree();
        let pts = tree.points();
        let kernel = self.ft.kernel();
        let n = pts.len();
        let all: Vec<usize> = (0..n).collect();
        let segments: Vec<Vec<f64>> = self
            .frontier
            .par_iter()
            .map(|&f| {
                let sk = st.skeleton(f).expect("frontier skeleton");
                if sk.rank() == 0 {
                    return Vec::new();
                }
                let mut y = vec![0.0; sk.rank()];
                sum_fused(kernel, pts, &sk.skeleton, &all, x, &mut y);
                let range: Vec<usize> = tree.node(f).range().collect();
                let mut own = vec![0.0; sk.rank()];
                sum_fused(kernel, pts, &sk.skeleton, &range, &x[tree.node(f).range()], &mut own);
                for (yi, oi) in y.iter_mut().zip(&own) {
                    *yi -= oi;
                }
                y
            })
            .collect();
        let mut out = Vec::with_capacity(self.reduced_dim);
        for seg in segments {
            out.extend(seg);
        }
        out
    }

    /// Public probe of `D^{-1}` (used by the level-restricted direct
    /// solver and the benchmark harnesses).
    pub fn apply_dinv_pub(&self, u: &mut [f64]) {
        self.apply_dinv(u)
    }

    /// Public probe of the `W` application.
    pub fn apply_w_pub(&self, z: &[f64], out: &mut [f64]) {
        self.apply_w(z, out)
    }

    /// Public probe of the `V` application.
    pub fn apply_v_pub(&self, x: &[f64]) -> Vec<f64> {
        self.apply_v(x)
    }

    /// Solves `(λI + K̃) x = b` (`b` in permuted order) — Algorithm II.6.
    pub fn solve(&self, b: &[f64], opts: &GmresOptions) -> Result<HybridOutcome, SolverError> {
        let n = self.ft.skeleton_tree().tree().points().len();
        assert_eq!(b.len(), n, "hybrid solve: rhs length mismatch");
        // v = D^{-1} u.
        let mut v = b.to_vec();
        self.apply_dinv(&mut v);
        if self.reduced_dim == 0 {
            return Ok(HybridOutcome {
                x: v,
                gmres: SolveResult {
                    x: vec![],
                    converged: true,
                    iters: 0,
                    residual: 0.0,
                    trace: vec![],
                },
            });
        }
        // Reduced right-hand side y = V v.
        let y = self.apply_v(&v);
        // (I + V W) z = y, matrix-free.
        let op = FnOp::new(self.reduced_dim, |z: &[f64], out: &mut [f64]| {
            let mut wz = vec![0.0; n];
            self.apply_w(z, &mut wz);
            let vwz = self.apply_v(&wz);
            for i in 0..z.len() {
                out[i] = z[i] + vwz[i];
            }
        });
        let gm = gmres(&op, &y, None, opts);
        // x = v − W z.
        let mut wz = vec![0.0; n];
        self.apply_w(&gm.x, &mut wz);
        let mut x = v;
        for (xi, wi) in x.iter_mut().zip(&wz) {
            *xi -= wi;
        }
        Ok(HybridOutcome { x, gmres: gm })
    }

    /// `D^{-1} U` for a multi-column right-hand side: blocked frontier
    /// solves through [`SolveCtx::solve_node_mat`](crate::solve), so the
    /// leaf LU / reduced-system applications run as GEMMs over all
    /// columns at once.
    fn apply_dinv_mat(&self, u: &mut Mat) {
        let tree = self.ft.skeleton_tree().tree();
        let ctx = self.ft.ctx();
        let nrhs = u.ncols();
        let solved: Vec<(usize, Mat)> = self
            .frontier
            .par_iter()
            .map(|&f| {
                let nd = tree.node(f);
                let mut m = workspace::mat_from_view(u.submatrix(nd.begin..nd.end, 0..nrhs));
                ctx.solve_node_mat(f, &mut m);
                (f, m)
            })
            .collect();
        for (f, m) in solved {
            let nd = tree.node(f);
            for j in 0..nrhs {
                u.col_mut(j)[nd.begin..nd.end].copy_from_slice(m.col(j));
            }
            workspace::recycle_mat(m);
        }
    }

    /// Multi-RHS `V` application: `Y_φ = K_{φ̃, X∖φ} X` for every frontier
    /// node, as one fused multi-RHS summation per node instead of one
    /// single-vector pass per column.
    fn apply_v_mat(&self, x: &Mat) -> Mat {
        let st = self.ft.skeleton_tree();
        let tree = st.tree();
        let pts = tree.points();
        let kernel = self.ft.kernel();
        let n = pts.len();
        let nrhs = x.ncols();
        let all: Vec<usize> = (0..n).collect();
        let indexed: Vec<(usize, usize)> = self.frontier.iter().copied().enumerate().collect();
        let segments: Vec<(usize, Mat)> = indexed
            .into_par_iter()
            .map(|(k, f)| {
                let sk = st.skeleton(f).expect("frontier skeleton");
                let s = sk.rank();
                if s == 0 {
                    return (k, Mat::zeros(0, nrhs));
                }
                let mut y = workspace::take_mat_detached(s, nrhs);
                sum_fused_multi(kernel, pts, &sk.skeleton, &all, x.rb(), y.rb_mut());
                let range: Vec<usize> = tree.node(f).range().collect();
                let nd = tree.node(f);
                let mut own = workspace::take_mat_detached(s, nrhs);
                sum_fused_multi(
                    kernel,
                    pts,
                    &sk.skeleton,
                    &range,
                    x.submatrix(nd.begin..nd.end, 0..nrhs),
                    own.rb_mut(),
                );
                for j in 0..nrhs {
                    for i in 0..s {
                        y[(i, j)] -= own[(i, j)];
                    }
                }
                workspace::recycle_mat(own);
                (k, y)
            })
            .collect();
        let mut by_index: Vec<Option<Mat>> = (0..self.frontier.len()).map(|_| None).collect();
        for (k, seg) in segments {
            by_index[k] = Some(seg);
        }
        let mut out = Mat::zeros(self.reduced_dim, nrhs);
        for (k, seg) in by_index.into_iter().enumerate() {
            let seg = seg.expect("every frontier segment computed");
            let off = self.offsets[k];
            for j in 0..nrhs {
                out.col_mut(j)[off..off + seg.nrows()].copy_from_slice(seg.col(j));
            }
            workspace::recycle_mat(seg);
        }
        out
    }

    /// Multi-RHS `W` application: `out[φ] = P̂_φ Z_φ` per frontier node as
    /// a GEMM over all columns.
    fn apply_w_mat(&self, z: &Mat, out: &mut Mat) {
        debug_assert_eq!(z.nrows(), self.reduced_dim);
        let tree = self.ft.skeleton_tree().tree();
        let nrhs = z.ncols();
        let ctx = self.ft.ctx();
        let indexed: Vec<(usize, usize)> = self.frontier.iter().copied().enumerate().collect();
        let chunks: Vec<(usize, Mat)> = indexed
            .into_par_iter()
            .map(|(k, f)| {
                let zk = workspace::mat_from_view(
                    z.submatrix(self.offsets[k]..self.offsets[k + 1], 0..nrhs),
                );
                let chunk = if let Some(p_hat) = self.ft.factors()[f].p_hat.as_ref() {
                    let mut c = workspace::take_mat_detached(tree.node(f).len(), nrhs);
                    gemm(1.0, p_hat.rb(), Trans::No, zk.rb(), Trans::No, 0.0, c.rb_mut());
                    c
                } else {
                    // Recompute-W mode: telescope P̂ through eq. (10).
                    ctx.apply_p_hat_mat(f, &zk)
                };
                workspace::recycle_mat(zk);
                (f, chunk)
            })
            .collect();
        for (f, chunk) in chunks {
            let nd = tree.node(f);
            for j in 0..nrhs {
                out.col_mut(j)[nd.begin..nd.end].copy_from_slice(chunk.col(j));
            }
            workspace::recycle_mat(chunk);
        }
    }

    /// Solves `(λI + K̃) X = B` in place for a multi-column right-hand
    /// side (`B` in permuted order) — the blocked form of Algorithm II.6.
    ///
    /// The frontier direct solves (`D^{-1}`), the reduced right-hand side
    /// (`V`), and the final correction (`W`) run blocked over all columns
    /// (GEMM-shaped); the reduced `(I + VW) z = y` systems are solved by
    /// GMRES per column (the reduced dimension is `≈ 2^L s`, so this is
    /// the cheap part). Returns one [`SolveResult`] per column.
    ///
    /// # Errors
    /// Currently infallible after construction, but kept fallible to match
    /// [`HybridSolver::solve`].
    pub fn solve_mat_in_place(
        &self,
        b: &mut Mat,
        opts: &GmresOptions,
    ) -> Result<Vec<SolveResult>, SolverError> {
        let n = self.ft.skeleton_tree().tree().points().len();
        assert_eq!(b.nrows(), n, "hybrid solve: rhs rows mismatch");
        let nrhs = b.ncols();
        // V_mat = D^{-1} B, blocked over the frontier.
        self.apply_dinv_mat(b);
        if self.reduced_dim == 0 || nrhs == 0 {
            let done =
                SolveResult { x: vec![], converged: true, iters: 0, residual: 0.0, trace: vec![] };
            return Ok((0..nrhs).map(|_| done.clone()).collect());
        }
        // Reduced right-hand sides Y = V D^{-1} B, one fused pass.
        let y = self.apply_v_mat(b);
        // (I + V W) z_j = y_j per column, matrix-free.
        let op = FnOp::new(self.reduced_dim, |z: &[f64], out: &mut [f64]| {
            let mut wz = vec![0.0; n];
            self.apply_w(z, &mut wz);
            let vwz = self.apply_v(&wz);
            for i in 0..z.len() {
                out[i] = z[i] + vwz[i];
            }
        });
        let mut zmat = Mat::zeros(self.reduced_dim, nrhs);
        let mut results = Vec::with_capacity(nrhs);
        for j in 0..nrhs {
            let gm = gmres(&op, y.col(j), None, opts);
            zmat.col_mut(j).copy_from_slice(&gm.x);
            results.push(gm);
        }
        // X = D^{-1} B − W Z, blocked.
        let mut wz = Mat::zeros(n, nrhs);
        self.apply_w_mat(&zmat, &mut wz);
        for j in 0..nrhs {
            let col = b.col_mut(j);
            for (xi, wi) in col.iter_mut().zip(wz.col(j)) {
                *xi -= wi;
            }
        }
        Ok(results)
    }

    /// Convenience wrapper: right-hand side and solution in *original*
    /// point order.
    pub fn solve_original_order(
        &self,
        b: &[f64],
        opts: &GmresOptions,
    ) -> Result<HybridOutcome, SolverError> {
        let tree = self.ft.skeleton_tree().tree();
        let bp = tree.permute_vec(b);
        let mut out = self.solve(&bp, opts)?;
        out.x = tree.unpermute_vec(&out.x);
        Ok(out)
    }
}
