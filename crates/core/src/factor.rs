//! The `O(N log N)` direct factorization — Algorithm II.2 with the
//! telescoping of eq. (10).
//!
//! Bottom-up over the tree: leaves LU-factorize `λI + K_αα` and solve for
//! `P̂_{αα̃} = (λI+K_αα)^{-1} P_{αα̃}`; an internal node `α` forms and
//! LU-factorizes the reduced system (eq. 8)
//!
//! ```text
//! Z_α = [ I                  K_{l̃r} P̂_{rr̃} ]
//!       [ K_{r̃l} P̂_{ll̃}   I               ]
//! ```
//!
//! and *telescopes* `P̂_{αα̃}` from the children's `P̂` factors alone
//! (eq. 10) — no subtree traversal, which is precisely the improvement
//! over the `O(N log² N)` scheme of \[36\] (implemented in
//! [`crate::baseline`] for the Table III comparison).

use crate::assemble::{assemble_blocks, AssembledBlocks};
use crate::config::{
    FactorStats, LeafFactorization, LevelStats, SolverConfig, StorageMode, WStorage,
};
use crate::error::SolverError;
use kfds_askit::SkeletonTree;
use kfds_kernels::flops;
use kfds_kernels::{
    eval_block_range, eval_symmetric, sum_fused_multi, sum_reference_multi, Kernel,
};
use kfds_la::{gemm, workspace, Cholesky, Lu, Mat, Trans};
use rayon::prelude::*;
use std::sync::Arc;
use std::time::Instant;

/// Per-node outcome of a level-parallel factorization sweep.
pub(crate) type NodeResult = (usize, Result<(NodeFactors, NodeCost), SolverError>);

/// A factorized leaf diagonal block `λI + K_αα`.
#[derive(Debug)]
pub enum LeafFactor {
    /// Partial-pivoted LU.
    Lu(Lu),
    /// Cholesky (`λI + K` is SPD for PSD kernels).
    Cholesky(Cholesky),
}

impl LeafFactor {
    /// Solves the leaf block in place.
    pub fn solve_inplace(&self, b: &mut [f64]) {
        match self {
            LeafFactor::Lu(f) => f.solve_inplace(b),
            LeafFactor::Cholesky(f) => f.solve_inplace(b),
        }
    }

    /// Multi-RHS solve in place.
    pub fn solve_mat_inplace(&self, b: &mut Mat) {
        match self {
            LeafFactor::Lu(f) => f.solve_mat_inplace(b),
            LeafFactor::Cholesky(f) => f.solve_mat_inplace(b),
        }
    }

    /// Conditioning proxy (see the individual factorizations).
    pub fn min_pivot_ratio(&self) -> f64 {
        match self {
            LeafFactor::Lu(f) => f.min_pivot_ratio(),
            LeafFactor::Cholesky(f) => f.min_pivot_ratio(),
        }
    }
}

/// Factors stored at one tree node.
#[derive(Debug, Default)]
pub struct NodeFactors {
    /// Factorization of `λI + K_αα` (leaves only).
    pub leaf_lu: Option<LeafFactor>,
    /// LU of the reduced system `Z_α` (internal nodes in the factored
    /// region).
    pub z_lu: Option<Lu>,
    /// `P̂_{αα̃} = (λI + K̃_αα)^{-1} P_{αα̃}` (`|α| x s`), for
    /// skeletonized nodes.
    pub p_hat: Option<Mat>,
    /// Stored `K_{l̃ r}` (`s_l x |r|`) — [`StorageMode::StoredGemv`] only.
    pub v_lr: Option<Mat>,
    /// Stored `K_{r̃ l}` (`s_r x |l|`) — [`StorageMode::StoredGemv`] only.
    pub v_rl: Option<Mat>,
    /// Coupling blocks `B_l = K_{l̃r}P̂_{rr̃}`, `B_r = K_{r̃l}P̂_{ll̃}`
    /// (small, `s x s`) — retained in [`WStorage::Recompute`] so `P̂`
    /// applications can telescope through eq. (10) without storing `P̂`.
    pub b_l: Option<Mat>,
    /// See [`NodeFactors::b_l`].
    pub b_r: Option<Mat>,
}

/// The factorization of `λI + K̃` over a skeleton tree.
pub struct FactorTree<'a, K: Kernel> {
    pub(crate) st: &'a SkeletonTree,
    pub(crate) kernel: &'a K,
    pub(crate) config: SolverConfig,
    pub(crate) factors: Vec<NodeFactors>,
    stats: FactorStats,
    /// The λ-independent kernel blocks this tree was factorized over,
    /// when it came through the refactorization path — kept so
    /// [`FactorTree::refactor`] chains without re-assembling.
    blocks: Option<Arc<AssembledBlocks>>,
}

/// Per-node accounting folded into [`FactorStats`].
#[derive(Default, Clone, Copy)]
pub(crate) struct NodeCost {
    pub flops: f64,
    pub min_pivot: f64,
    pub unstable: usize,
    pub bytes: usize,
}

impl<'a, K: Kernel> FactorTree<'a, K> {
    /// Assembles a factor tree from parts (used by the baseline builder).
    pub(crate) fn from_parts(
        st: &'a SkeletonTree,
        kernel: &'a K,
        config: SolverConfig,
        factors: Vec<NodeFactors>,
        stats: FactorStats,
    ) -> Self {
        FactorTree { st, kernel, config, factors, stats, blocks: None }
    }

    /// The skeleton tree this factorization refers to.
    pub fn skeleton_tree(&self) -> &'a SkeletonTree {
        self.st
    }

    /// The kernel function.
    pub fn kernel(&self) -> &'a K {
        self.kernel
    }

    /// The solver configuration (λ, storage mode).
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Factorization diagnostics.
    pub fn stats(&self) -> &FactorStats {
        &self.stats
    }

    /// Per-node factors (indexed like the tree's nodes).
    pub fn factors(&self) -> &[NodeFactors] {
        &self.factors
    }

    /// `true` when the whole matrix can be solved directly (the root's
    /// reduced system exists).
    pub fn is_complete(&self) -> bool {
        let root = self.st.tree().root();
        self.factors[root].z_lu.is_some() || self.st.tree().node(root).is_leaf()
    }

    /// The λ-independent assembled blocks backing this factorization,
    /// when it was built through [`factorize_with_blocks`] /
    /// [`FactorTree::refactor`] (trees from plain [`factorize`] carry
    /// none).
    pub fn assembled_blocks(&self) -> Option<&Arc<AssembledBlocks>> {
        self.blocks.as_ref()
    }

    /// Re-factorizes at a new `λ` touching **only the linear algebra**:
    /// the diagonal shift, LU/Cholesky factorizations, `P̂` solves, and
    /// reduced systems are redone over cached kernel blocks; zero kernel
    /// evaluations happen (after a one-time assembly if this tree came
    /// from plain [`factorize`] — the returned tree carries the blocks,
    /// so further refactors chain for free).
    ///
    /// The result uses [`StorageMode::StoredGemv`] regardless of this
    /// tree's storage mode (see [`factorize_with_blocks`]) and is bitwise
    /// identical to `factorize(st, kernel, cfg.with_lambda(lambda)
    /// .with_storage(StoredGemv))`.
    ///
    /// # Errors
    /// Propagates [`SolverError`] from the factorization (e.g. a λ that
    /// makes a leaf block singular).
    pub fn refactor(&self, lambda: f64) -> Result<FactorTree<'a, K>, SolverError> {
        let blocks = match &self.blocks {
            Some(b) => Arc::clone(b),
            None => Arc::new(assemble_blocks(self.st, self.kernel)),
        };
        factorize_with_blocks(self.st, self.kernel, blocks, self.config.with_lambda(lambda))
    }
}

/// Runs the `O(N log N)` factorization of `λI + K̃`.
///
/// All nodes inside the skeletonization frontier are factorized; with a
/// fully skeletonized tree (no level restriction) this includes the root's
/// reduced system and the result is a complete direct factorization. With
/// level restriction the result is the partial factorization consumed by
/// the hybrid solver.
pub fn factorize<'a, K: Kernel>(
    st: &'a SkeletonTree,
    kernel: &'a K,
    config: SolverConfig,
) -> Result<FactorTree<'a, K>, SolverError> {
    factorize_impl(st, kernel, config, None)
}

/// Runs the λ-dependent half of the factorization over pre-assembled
/// kernel blocks (see [`crate::assemble_blocks`]): only the diagonal
/// shift, LU/Cholesky factorizations, `P̂` solves, and reduced systems
/// are computed — no kernel evaluations.
///
/// The storage mode is pinned to [`StorageMode::StoredGemv`] (the cached
/// coupling blocks *are* the stored `V` blocks; the GSKS fused path would
/// accumulate in a different order and break the bitwise contract). The
/// result is bitwise identical to
/// `factorize(st, kernel, config.with_storage(StoredGemv))`.
///
/// # Errors
/// Propagates [`SolverError`] exactly like [`factorize`].
///
/// # Panics
/// Panics if `blocks` was assembled over a different tree shape.
pub fn factorize_with_blocks<'a, K: Kernel>(
    st: &'a SkeletonTree,
    kernel: &'a K,
    blocks: Arc<AssembledBlocks>,
    config: SolverConfig,
) -> Result<FactorTree<'a, K>, SolverError> {
    blocks.check_compatible(st);
    factorize_impl(st, kernel, config.with_storage(StorageMode::StoredGemv), Some(blocks))
}

fn factorize_impl<'a, K: Kernel>(
    st: &'a SkeletonTree,
    kernel: &'a K,
    config: SolverConfig,
    blocks: Option<Arc<AssembledBlocks>>,
) -> Result<FactorTree<'a, K>, SolverError> {
    let t0 = Instant::now();
    let tree = st.tree();
    let n_nodes = tree.nodes().len();
    let mut factors: Vec<NodeFactors> = (0..n_nodes).map(|_| NodeFactors::default()).collect();
    let mut total = NodeCost { min_pivot: f64::INFINITY, ..Default::default() };
    let mut levels: Vec<LevelStats> = Vec::with_capacity(tree.depth() + 1);

    for level in (0..=tree.depth()).rev() {
        let lt0 = Instant::now();
        let level_nodes: Vec<usize> = tree
            .nodes_at_level(level)
            .iter()
            .copied()
            .filter(|&i| in_factored_region(st, i))
            .collect();
        let mut op_groups = 0;
        if !level_nodes.is_empty() {
            let (results, groups) =
                run_level(st, kernel, &config, blocks.as_deref(), &factors, &level_nodes);
            op_groups = groups;
            for (i, res) in results {
                let (nf, cost) = res?;
                total.flops += cost.flops;
                total.min_pivot = total.min_pivot.min(cost.min_pivot);
                total.unstable += cost.unstable;
                total.bytes += cost.bytes;
                factors[i] = nf;
            }
        }
        // Recompute-W mode: children's internal P̂ are only needed while
        // building this level; drop them to keep the retained memory at
        // O(sN) (leaves only) instead of O(sN log N).
        if config.w_storage == WStorage::Recompute {
            for &i in tree.nodes_at_level(level) {
                if let Some((l, r)) = tree.node(i).children {
                    for c in [l, r] {
                        if tree.node(c).children.is_some() {
                            if let Some(p) = factors[c].p_hat.take() {
                                total.bytes -= p.nrows() * p.ncols() * 8;
                            }
                        }
                    }
                }
            }
        }
        if !level_nodes.is_empty() {
            levels.push(LevelStats {
                level,
                nodes: level_nodes.len(),
                op_groups,
                seconds: lt0.elapsed().as_secs_f64(),
            });
        }
    }

    let max_rank = (0..n_nodes).filter_map(|i| st.skeleton(i)).map(|s| s.rank()).max().unwrap_or(0);
    let stats = FactorStats {
        seconds: t0.elapsed().as_secs_f64(),
        flops: total.flops,
        min_pivot_ratio: if total.min_pivot.is_finite() { total.min_pivot } else { 1.0 },
        unstable_factorizations: total.unstable,
        max_rank,
        stored_bytes: total.bytes,
        levels,
    };
    Ok(FactorTree { st, kernel, config, factors, stats, blocks })
}

/// Executes one level of the factorization sweep: the batched engine
/// plans shape-grouped launches ([`crate::levelbatch`]) when `KFDS_BATCH`
/// is active, otherwise each node runs independently inside one
/// `par_iter` (the per-node reference path). Returns the per-node results
/// in `level_nodes` order plus the number of launched op groups (the
/// per-node path counts each node as its own group).
pub(crate) fn run_level<K: Kernel>(
    st: &SkeletonTree,
    kernel: &K,
    config: &SolverConfig,
    blocks: Option<&AssembledBlocks>,
    factors: &[NodeFactors],
    level_nodes: &[usize],
) -> (Vec<NodeResult>, usize) {
    if kfds_la::batch_active() {
        return crate::levelbatch::factor_level_batched(
            st,
            kernel,
            config,
            blocks,
            factors,
            level_nodes,
        );
    }
    // Nodes of a level are independent; parallelize across them. Each
    // node only reads children factors from deeper (already final)
    // levels, so we can hand out disjoint &mut via a scatter.
    let results: Vec<NodeResult> = level_nodes
        .par_iter()
        .map(|&i| (i, factor_node(st, kernel, config, blocks, factors, i)))
        .collect();
    (results, level_nodes.len())
}

/// Factorizes only the subtree rooted at `root_node` (used by the
/// distributed factorization: each rank factorizes its own subtree with
/// Algorithm II.2 before the distributed levels take over). The returned
/// [`FactorTree`] has factors only for the subtree's nodes.
pub(crate) fn factor_subtree<'a, K: Kernel>(
    st: &'a SkeletonTree,
    kernel: &'a K,
    config: SolverConfig,
    root_node: usize,
) -> Result<FactorTree<'a, K>, SolverError> {
    let t0 = Instant::now();
    let tree = st.tree();
    let n_nodes = tree.nodes().len();
    let mut factors: Vec<NodeFactors> = (0..n_nodes).map(|_| NodeFactors::default()).collect();
    let mut total = NodeCost { min_pivot: f64::INFINITY, ..Default::default() };

    // Collect subtree nodes grouped by level.
    let mut by_level: Vec<Vec<usize>> = vec![Vec::new(); tree.depth() + 1];
    let mut stack = vec![root_node];
    while let Some(i) = stack.pop() {
        by_level[tree.node(i).level].push(i);
        if let Some((l, r)) = tree.node(i).children {
            stack.push(l);
            stack.push(r);
        }
    }

    let mut levels: Vec<LevelStats> = Vec::with_capacity(tree.depth() + 1);
    for level in (0..=tree.depth()).rev() {
        let lt0 = Instant::now();
        let level_nodes: Vec<usize> =
            by_level[level].iter().copied().filter(|&i| in_factored_region(st, i)).collect();
        if level_nodes.is_empty() {
            continue;
        }
        let (results, op_groups) = run_level(st, kernel, &config, None, &factors, &level_nodes);
        for (i, res) in results {
            let (nf, cost) = res?;
            total.flops += cost.flops;
            total.min_pivot = total.min_pivot.min(cost.min_pivot);
            total.unstable += cost.unstable;
            total.bytes += cost.bytes;
            factors[i] = nf;
        }
        levels.push(LevelStats {
            level,
            nodes: level_nodes.len(),
            op_groups,
            seconds: lt0.elapsed().as_secs_f64(),
        });
    }
    let stats = FactorStats {
        seconds: t0.elapsed().as_secs_f64(),
        flops: total.flops,
        min_pivot_ratio: if total.min_pivot.is_finite() { total.min_pivot } else { 1.0 },
        unstable_factorizations: total.unstable,
        max_rank: 0,
        stored_bytes: total.bytes,
        levels,
    };
    Ok(FactorTree { st, kernel, config, factors, stats, blocks: None })
}

/// A node is factorized iff it is skeletonized, or it is the root with both
/// children skeletonized (the root needs only its reduced system), or it is
/// a lone root-leaf (tiny trees).
pub(crate) fn in_factored_region(st: &SkeletonTree, node: usize) -> bool {
    if st.is_skeletonized(node) {
        return true;
    }
    let tree = st.tree();
    if node != tree.root() {
        return false;
    }
    match tree.node(node).children {
        Some((l, r)) => st.is_skeletonized(l) && st.is_skeletonized(r),
        None => true, // single-leaf tree: just a dense LU
    }
}

fn factor_node<K: Kernel>(
    st: &SkeletonTree,
    kernel: &K,
    config: &SolverConfig,
    blocks: Option<&AssembledBlocks>,
    factors: &[NodeFactors],
    node: usize,
) -> Result<(NodeFactors, NodeCost), SolverError> {
    let tree = st.tree();
    let nd = tree.node(node);
    match nd.children {
        None => factor_leaf(st, kernel, config, blocks, node),
        Some((l, r)) => {
            let p_hat_l = factors[l].p_hat.as_ref().expect("child P-hat missing");
            let p_hat_r = factors[r].p_hat.as_ref().expect("child P-hat missing");
            factor_internal(st, kernel, config, blocks, p_hat_l, p_hat_r, node, l, r)
        }
    }
}

/// Leaf factorization, shared with the baseline (both algorithms treat
/// leaves identically).
pub(crate) fn factor_leaf_for_baseline<K: Kernel>(
    st: &SkeletonTree,
    kernel: &K,
    config: &SolverConfig,
    node: usize,
) -> Result<(NodeFactors, NodeCost), SolverError> {
    factor_leaf(st, kernel, config, None, node)
}

/// Materializes a leaf's λ-independent `K_αα`: cached pooled copy on the
/// refactor path (zero kernel evaluations — the eval flops live in
/// `AssembleStats`), fresh evaluation otherwise. Identical bits either
/// way. Returns the block plus the kernel-eval flops.
pub(crate) fn leaf_kaa<K: Kernel>(
    st: &SkeletonTree,
    kernel: &K,
    blocks: Option<&AssembledBlocks>,
    node: usize,
) -> (Mat, f64) {
    let tree = st.tree();
    let nd = tree.node(node);
    let m = nd.len();
    let d = tree.points().dim();
    match blocks.and_then(|b| b.node(node).kaa.as_ref()) {
        Some(cached) => (workspace::mat_from_view(cached.rb()), 0.0),
        None => (
            eval_symmetric(kernel, tree.points(), nd.range()),
            flops::summation_flops(m, m, d, kernel.flops_per_eval()),
        ),
    }
}

/// Applies the λ shift to a leaf block and factorizes it, producing the
/// leaf factor and the node's initial cost (factorization + eval flops,
/// pivot diagnostics, dense-block bytes).
pub(crate) fn leaf_shift_factor(
    config: &SolverConfig,
    node: usize,
    mut kaa: Mat,
    eval_flops: f64,
) -> Result<(LeafFactor, NodeCost), SolverError> {
    let m = kaa.nrows();
    for i in 0..m {
        kaa[(i, i)] += config.lambda;
    }
    let (leaf, factor_flops) = match config.leaf {
        LeafFactorization::Lu => {
            let lu = Lu::factor(kaa).map_err(|e| SolverError::Factorization { node, source: e })?;
            (LeafFactor::Lu(lu), flops::lu_flops(m))
        }
        LeafFactorization::Cholesky => {
            let ch = Cholesky::factor(kaa)
                .map_err(|e| SolverError::Factorization { node, source: e })?;
            (LeafFactor::Cholesky(ch), flops::lu_flops(m) / 2.0)
        }
    };
    let cost = NodeCost {
        flops: factor_flops + eval_flops,
        min_pivot: leaf.min_pivot_ratio(),
        unstable: usize::from(leaf.min_pivot_ratio() < config.stability_threshold),
        bytes: m * m * 8,
    };
    Ok((leaf, cost))
}

/// Packs the transposed projection (`proj` is `s x m`) into a pooled
/// `m x s` right-hand side for the `P̂` solve. Pooled: every element is
/// written by the transpose copy.
pub(crate) fn pack_proj(proj: &Mat, m: usize, s: usize) -> Mat {
    let mut p = workspace::take_mat_detached(m, s);
    for j in 0..s {
        for i in 0..m {
            p[(i, j)] = proj[(j, i)];
        }
    }
    p
}

fn factor_leaf<K: Kernel>(
    st: &SkeletonTree,
    kernel: &K,
    config: &SolverConfig,
    blocks: Option<&AssembledBlocks>,
    node: usize,
) -> Result<(NodeFactors, NodeCost), SolverError> {
    let m = st.tree().node(node).len();
    let (kaa, eval_flops) = leaf_kaa(st, kernel, blocks, node);
    let (leaf, mut cost) = leaf_shift_factor(config, node, kaa, eval_flops)?;
    // P̂_{αα̃} = (λI + K_αα)^{-1} P_{αα̃}; for root-leaf trees there is no
    // skeleton and no P̂.
    let p_hat = match st.skeleton(node) {
        Some(sk) => {
            let s = sk.rank();
            let mut p = pack_proj(&sk.proj, m, s);
            leaf.solve_mat_inplace(&mut p);
            cost.flops += flops::lu_solve_flops(m, s);
            cost.bytes += m * s * 8;
            Some(p)
        }
        None => None,
    };
    Ok((NodeFactors { leaf_lu: Some(leaf), p_hat, ..Default::default() }, cost))
}

/// The reduced system of an internal node: off-diagonal coupling blocks
/// `B_l = K_{l̃r} P̂_{rr̃}`, `B_r = K_{r̃l} P̂_{ll̃}`, the LU of
/// `Z = I + VW`, and (stored mode only) the retained kernel blocks.
pub(crate) struct ReducedSystem {
    pub b_l: Mat,
    pub b_r: Mat,
    pub z_lu: Lu,
    pub v_lr: Option<Mat>,
    pub v_rl: Option<Mat>,
    pub cost: NodeCost,
}

/// Forms and factorizes the reduced system `Z_α` (eq. 8). Shared between
/// the `O(N log N)` factorization and the `O(N log² N)` baseline — both
/// construct *identical* reduced systems.
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_reduced_system<K: Kernel>(
    st: &SkeletonTree,
    kernel: &K,
    config: &SolverConfig,
    blocks: Option<&AssembledBlocks>,
    p_hat_l: &Mat,
    p_hat_r: &Mat,
    node: usize,
    l: usize,
    r: usize,
) -> Result<ReducedSystem, SolverError> {
    let tree = st.tree();
    let pts = tree.points();
    let d = pts.dim();
    let skl = st.skeleton(l).expect("factorable node needs skeletonized children");
    let skr = st.skeleton(r).expect("factorable node needs skeletonized children");
    let (sl, sr) = (skl.rank(), skr.rank());
    let (nl, nr) = (tree.node(l).len(), tree.node(r).len());
    let mut cost = NodeCost { min_pivot: f64::INFINITY, ..Default::default() };

    // B_l = K_{l̃ r} P̂_{rr̃} (s_l x s_r) and B_r = K_{r̃ l} P̂_{ll̃}.
    // Pooled: all three storage modes fully overwrite both blocks
    // (beta = 0 GEMM / `sum_*_multi` overwrite their output).
    let mut b_l = workspace::take_mat_detached(sl, sr);
    let mut b_r = workspace::take_mat_detached(sr, sl);
    let mut v_lr = None;
    let mut v_rl = None;
    match config.storage {
        StorageMode::StoredGemv => {
            let (klr, krl) = stored_coupling(st, kernel, blocks, node, l, r);
            gemm(1.0, klr.rb(), Trans::No, p_hat_r.rb(), Trans::No, 0.0, b_l.rb_mut());
            gemm(1.0, krl.rb(), Trans::No, p_hat_l.rb(), Trans::No, 0.0, b_r.rb_mut());
            cost.bytes += (sl * nr + sr * nl) * 8;
            cost.flops += flops::gemm_flops(sl, sr, nr) + flops::gemm_flops(sr, sl, nl);
            v_lr = Some(klr);
            v_rl = Some(krl);
        }
        storage => {
            // The matrix-free engines take explicit column lists; build
            // them in pooled index scratch (one per node per factorize).
            let mut r_cols = workspace::take_idx(nr);
            r_cols.extend(tree.node(r).range());
            let mut l_cols = workspace::take_idx(nl);
            l_cols.extend(tree.node(l).range());
            if storage == StorageMode::RecomputeGemm {
                sum_reference_multi(
                    kernel,
                    pts,
                    &skl.skeleton,
                    &r_cols,
                    p_hat_r.rb(),
                    b_l.rb_mut(),
                );
                sum_reference_multi(
                    kernel,
                    pts,
                    &skr.skeleton,
                    &l_cols,
                    p_hat_l.rb(),
                    b_r.rb_mut(),
                );
            } else {
                sum_fused_multi(kernel, pts, &skl.skeleton, &r_cols, p_hat_r.rb(), b_l.rb_mut());
                sum_fused_multi(kernel, pts, &skr.skeleton, &l_cols, p_hat_l.rb(), b_r.rb_mut());
            }
        }
    }
    if !matches!(config.storage, StorageMode::StoredGemv) {
        // One kernel-block evaluation each, plus the multi-RHS reduction.
        cost.flops += flops::summation_flops(sl, nr, d, kernel.flops_per_eval())
            + flops::summation_flops(sr, nl, d, kernel.flops_per_eval())
            + 2.0 * (sl * nr * sr + sr * nl * sl) as f64;
    }

    let z_lu = factor_z(&b_l, &b_r, sl, sr, node, config, &mut cost)?;
    Ok(ReducedSystem { b_l, b_r, z_lu, v_lr, v_rl, cost })
}

/// Materializes the stored-mode coupling blocks `K_{l̃ r}` / `K_{r̃ l}`.
/// Refactor path: the cached λ-independent coupling blocks are exactly
/// the stored V blocks — copy them out of the assembly store (pooled)
/// instead of re-evaluating the kernel. Fresh path: the sibling columns
/// are contiguous permuted ranges, streamed straight off the point set.
/// Identical bits.
pub(crate) fn stored_coupling<K: Kernel>(
    st: &SkeletonTree,
    kernel: &K,
    blocks: Option<&AssembledBlocks>,
    node: usize,
    l: usize,
    r: usize,
) -> (Mat, Mat) {
    let tree = st.tree();
    let pts = tree.points();
    let skl = st.skeleton(l).expect("factorable node needs skeletonized children");
    let skr = st.skeleton(r).expect("factorable node needs skeletonized children");
    let cached = blocks.map(|b| b.node(node));
    match cached {
        Some(nb) if nb.k_lr.is_some() && nb.k_rl.is_some() => (
            workspace::mat_from_view(nb.k_lr.as_ref().expect("checked").rb()),
            workspace::mat_from_view(nb.k_rl.as_ref().expect("checked").rb()),
        ),
        _ => (
            eval_block_range(kernel, pts, &skl.skeleton, tree.node(r).range()),
            eval_block_range(kernel, pts, &skr.skeleton, tree.node(l).range()),
        ),
    }
}

/// Packs `Z = I + VW` (eq. 8) from the coupling blocks and LU-factorizes
/// it, folding the flop/byte/pivot accounting into `cost` exactly like
/// the per-node path.
pub(crate) fn factor_z(
    b_l: &Mat,
    b_r: &Mat,
    sl: usize,
    sr: usize,
    node: usize,
    config: &SolverConfig,
    cost: &mut NodeCost,
) -> Result<Lu, SolverError> {
    let zdim = sl + sr;
    let mut z = workspace::take_mat_detached(zdim, zdim);
    z.rb_mut().fill(0.0);
    for i in 0..zdim {
        z[(i, i)] = 1.0;
    }
    for j in 0..sr {
        for i in 0..sl {
            z[(i, sl + j)] = b_l[(i, j)];
        }
    }
    for j in 0..sl {
        for i in 0..sr {
            z[(sl + i, j)] = b_r[(i, j)];
        }
    }
    let z_lu = Lu::factor(z).map_err(|e| SolverError::Factorization { node, source: e })?;
    cost.flops += flops::lu_flops(zdim);
    cost.bytes += zdim * zdim * 8;
    cost.min_pivot = cost.min_pivot.min(z_lu.min_pivot_ratio());
    cost.unstable += usize::from(z_lu.min_pivot_ratio() < config.stability_threshold);
    Ok(z_lu)
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn factor_internal<K: Kernel>(
    st: &SkeletonTree,
    kernel: &K,
    config: &SolverConfig,
    blocks: Option<&AssembledBlocks>,
    p_hat_l: &Mat,
    p_hat_r: &Mat,
    node: usize,
    l: usize,
    r: usize,
) -> Result<(NodeFactors, NodeCost), SolverError> {
    let tree = st.tree();
    let skl = st.skeleton(l).expect("factorable node needs skeletonized children");
    let skr = st.skeleton(r).expect("factorable node needs skeletonized children");
    let (sl, sr) = (skl.rank(), skr.rank());
    let (nl, nr) = (tree.node(l).len(), tree.node(r).len());
    let ReducedSystem { b_l, b_r, z_lu, v_lr, v_rl, mut cost } =
        build_reduced_system(st, kernel, config, blocks, p_hat_l, p_hat_r, node, l, r)?;
    let zdim = sl + sr;
    let keep_b = config.w_storage == WStorage::Recompute;
    if keep_b {
        cost.bytes += (sl * sr * 2) * 8;
    }

    // Telescope P̂_{αα̃} (eq. 10) from the children's P̂ — the O(N log N)
    // step that replaces [36]'s subtree traversal.
    let p_hat = match st.skeleton(node) {
        Some(sk) => {
            let s = sk.rank();
            // Row-halves of Pt = P_{[l̃r̃]α̃}, written straight from the
            // transposed projection — no (s_l + s_r) x s intermediate.
            // Pooled: every element is overwritten before use.
            let mut m_l = workspace::take_mat_detached(sl, s);
            let mut m_r = workspace::take_mat_detached(sr, s);
            for j in 0..s {
                for i in 0..sl {
                    m_l[(i, j)] = sk.proj[(j, i)];
                }
                for i in 0..sr {
                    m_r[(i, j)] = sk.proj[(j, sl + i)];
                }
            }
            // C = (Z − I) Pt, via the already-formed off-diagonal blocks.
            let mut c = workspace::take_mat_detached(zdim, s);
            gemm(
                1.0,
                b_l.rb(),
                Trans::No,
                m_r.rb(),
                Trans::No,
                0.0,
                c.rb_mut().submatrix_mut(0..sl, 0..s),
            );
            gemm(
                1.0,
                b_r.rb(),
                Trans::No,
                m_l.rb(),
                Trans::No,
                0.0,
                c.rb_mut().submatrix_mut(sl..zdim, 0..s),
            );
            // Y = Z^{-1} C.
            z_lu.solve_mat_inplace(&mut c);
            cost.flops += flops::gemm_flops(sl, s, sr)
                + flops::gemm_flops(sr, s, sl)
                + flops::lu_solve_flops(zdim, s);
            // M_c = Pt_c − Y_c; P̂_α = [P̂_l M_l ; P̂_r M_r].
            for j in 0..s {
                for i in 0..sl {
                    m_l[(i, j)] -= c[(i, j)];
                }
                for i in 0..sr {
                    m_r[(i, j)] -= c[(sl + i, j)];
                }
            }
            workspace::recycle_mat(c);
            let mut p = workspace::take_mat_detached(nl + nr, s);
            gemm(
                1.0,
                p_hat_l.rb(),
                Trans::No,
                m_l.rb(),
                Trans::No,
                0.0,
                p.rb_mut().submatrix_mut(0..nl, 0..s),
            );
            gemm(
                1.0,
                p_hat_r.rb(),
                Trans::No,
                m_r.rb(),
                Trans::No,
                0.0,
                p.rb_mut().submatrix_mut(nl..nl + nr, 0..s),
            );
            workspace::recycle_mat(m_l);
            workspace::recycle_mat(m_r);
            cost.flops += flops::gemm_flops(nl, s, sl) + flops::gemm_flops(nr, s, sr);
            cost.bytes += (nl + nr) * s * 8;
            Some(p)
        }
        None => None,
    };

    let (b_l_keep, b_r_keep) = if keep_b {
        (Some(b_l), Some(b_r))
    } else {
        workspace::recycle_mat(b_l);
        workspace::recycle_mat(b_r);
        (None, None)
    };
    Ok((
        NodeFactors {
            z_lu: Some(z_lu),
            p_hat,
            v_lr,
            v_rl,
            b_l: b_l_keep,
            b_r: b_r_keep,
            ..Default::default()
        },
        cost,
    ))
}
