//! Task-parallel factorization — the paper's §VI future-work item:
//! "we would like to introduce task parallelism in the tree traversal to
//! address the load balancing issue" (adaptive ranks make nodes of a
//! level unevenly expensive, so level-synchronous traversal stalls on the
//! slowest node of each level).
//!
//! This scheduler expresses the factorization as its natural dataflow: a
//! node becomes ready when *its own* two children finish, with
//! work-stealing (`rayon::join`) instead of per-level barriers. It
//! produces the identical [`FactorTree`] (asserted in the tests).

use crate::config::{FactorStats, SolverConfig, WStorage};
use crate::error::SolverError;
use crate::factor::{
    factor_internal, factor_leaf_for_baseline, in_factored_region, FactorTree, NodeCost,
    NodeFactors,
};
use kfds_askit::SkeletonTree;
use kfds_kernels::Kernel;
use parking_lot::Mutex;
use std::time::Instant;

/// Runs the `O(N log N)` factorization with task-parallel (dataflow)
/// scheduling instead of level-synchronous traversal.
///
/// Note: [`WStorage::Recompute`]'s transient-`P̂` dropping is tied to the
/// level-synchronous schedule and is not applied here; the factors are
/// all retained (`Stored` semantics).
pub fn factorize_taskparallel<'a, K: Kernel>(
    st: &'a SkeletonTree,
    kernel: &'a K,
    config: SolverConfig,
) -> Result<FactorTree<'a, K>, SolverError> {
    let t0 = Instant::now();
    let tree = st.tree();
    let n_nodes = tree.nodes().len();
    // Task scheduling cannot drop P-hats level-by-level; run as Stored.
    let config = config.with_w_storage(WStorage::Stored);
    let cells: Vec<Mutex<Option<NodeFactors>>> = (0..n_nodes).map(|_| Mutex::new(None)).collect();

    // Region roots: maximal nodes inside the factored region.
    let mut roots = Vec::new();
    collect_region_roots(st, tree.root(), &mut roots);

    let costs: Vec<Result<NodeCost, SolverError>> = {
        use rayon::prelude::*;
        roots.par_iter().map(|&root| factor_task(st, kernel, &config, &cells, root)).collect()
    };
    let mut total = NodeCost { min_pivot: f64::INFINITY, ..Default::default() };
    for c in costs {
        let c = c?;
        total.flops += c.flops;
        total.min_pivot = total.min_pivot.min(c.min_pivot);
        total.unstable += c.unstable;
        total.bytes += c.bytes;
    }

    let factors: Vec<NodeFactors> =
        cells.into_iter().map(|m| m.into_inner().unwrap_or_default()).collect();
    let max_rank = (0..n_nodes).filter_map(|i| st.skeleton(i)).map(|s| s.rank()).max().unwrap_or(0);
    let stats = FactorStats {
        seconds: t0.elapsed().as_secs_f64(),
        flops: total.flops,
        min_pivot_ratio: if total.min_pivot.is_finite() { total.min_pivot } else { 1.0 },
        unstable_factorizations: total.unstable,
        max_rank,
        stored_bytes: total.bytes,
    };
    Ok(FactorTree::from_parts(st, kernel, config, factors, stats))
}

fn collect_region_roots(st: &SkeletonTree, node: usize, out: &mut Vec<usize>) {
    if in_factored_region(st, node) {
        out.push(node);
    } else if let Some((l, r)) = st.tree().node(node).children {
        collect_region_roots(st, l, out);
        collect_region_roots(st, r, out);
    }
}

/// Factorizes the subtree of `node` as a fork-join task graph; each node
/// fires as soon as its own children are done.
fn factor_task<K: Kernel>(
    st: &SkeletonTree,
    kernel: &K,
    config: &SolverConfig,
    cells: &[Mutex<Option<NodeFactors>>],
    node: usize,
) -> Result<NodeCost, SolverError> {
    let tree = st.tree();
    let (nf, cost) = match tree.node(node).children {
        None => factor_leaf_for_baseline(st, kernel, config, node)?,
        Some((l, r)) => {
            let (cl, cr) = rayon::join(
                || factor_task(st, kernel, config, cells, l),
                || factor_task(st, kernel, config, cells, r),
            );
            let (cl, cr) = (cl?, cr?);
            let out = {
                // Children are complete; their cells are quiescent.
                let gl = cells[l].lock();
                let gr = cells[r].lock();
                let p_hat_l =
                    gl.as_ref().and_then(|f| f.p_hat.as_ref()).expect("child P-hat missing");
                let p_hat_r =
                    gr.as_ref().and_then(|f| f.p_hat.as_ref()).expect("child P-hat missing");
                factor_internal(st, kernel, config, None, p_hat_l, p_hat_r, node, l, r)?
            };
            let mut combined = out.1;
            combined.flops += cl.flops + cr.flops;
            combined.min_pivot = combined.min_pivot.min(cl.min_pivot).min(cr.min_pivot);
            combined.unstable += cl.unstable + cr.unstable;
            combined.bytes += cl.bytes + cr.bytes;
            (out.0, combined)
        }
    };
    *cells[node].lock() = Some(nf);
    Ok(cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factorize;
    use kfds_askit::{skeletonize, SkelConfig};
    use kfds_kernels::Gaussian;
    use kfds_tree::datasets::normal_embedded;
    use kfds_tree::BallTree;

    #[test]
    fn taskparallel_matches_level_synchronous() {
        let pts = normal_embedded(512, 3, 8, 0.05, 42);
        let tree = BallTree::build(&pts, 32);
        let kernel = Gaussian::new(1.0);
        let st = skeletonize(
            tree,
            &kernel,
            SkelConfig::default().with_tol(1e-5).with_max_rank(96).with_neighbors(8),
        );
        let cfg = SolverConfig::default().with_lambda(0.7);
        let level = factorize(&st, &kernel, cfg).expect("level");
        let task = factorize_taskparallel(&st, &kernel, cfg).expect("task");
        assert!(task.is_complete());
        let b: Vec<f64> = (0..512).map(|i| (i as f64 * 0.29).sin()).collect();
        let mut x1 = b.clone();
        let mut x2 = b.clone();
        level.solve_in_place(&mut x1).expect("solve");
        task.solve_in_place(&mut x2).expect("solve");
        let err: f64 = x1.iter().zip(&x2).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
        assert!(err < 1e-10, "task-parallel factors differ: {err}");
        // Identical flop counts: it is the same algorithm, rescheduled.
        assert!((level.stats().flops - task.stats().flops).abs() < 1e-6 * level.stats().flops);
    }

    #[test]
    fn taskparallel_partial_factorization() {
        let pts = normal_embedded(512, 3, 8, 0.05, 43);
        let tree = BallTree::build(&pts, 32);
        let kernel = Gaussian::new(1.0);
        let st = skeletonize(
            tree,
            &kernel,
            SkelConfig::default()
                .with_tol(1e-5)
                .with_max_rank(96)
                .with_neighbors(8)
                .with_max_level(2),
        );
        let cfg = SolverConfig::default().with_lambda(0.5);
        let task = factorize_taskparallel(&st, &kernel, cfg).expect("task partial");
        assert!(!task.is_complete());
        let hy = crate::HybridSolver::new(&task).expect("hybrid over task factors");
        let b: Vec<f64> = (0..512).map(|i| ((i % 7) as f64) - 3.0).collect();
        let opts = kfds_krylov::GmresOptions { tol: 1e-11, max_iters: 300, ..Default::default() };
        let out = hy.solve(&b, &opts).expect("solve");
        let applied = kfds_askit::hier_matvec(&st, &kernel, 0.5, &out.x);
        let num: f64 = applied.iter().zip(&b).map(|(a, c)| (a - c) * (a - c)).sum();
        let den: f64 = b.iter().map(|v| v * v).sum();
        assert!((num / den).sqrt() < 1e-8);
    }
}
