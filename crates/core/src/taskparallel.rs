//! Task-parallel factorization — the paper's §VI future-work item:
//! "we would like to introduce task parallelism in the tree traversal to
//! address the load balancing issue" (adaptive ranks make nodes of a
//! level unevenly expensive, so level-synchronous traversal stalls on the
//! slowest node of each level).
//!
//! Historically this module carried its own fork-join (`rayon::join`)
//! dataflow scheduler, duplicating the per-node sweep logic of
//! [`crate::factor`]. The level-batched engine ([`crate::levelbatch`],
//! `KFDS_BATCH`) subsumed it: within a level, nodes are grouped by shape
//! and launched together, so the stragglers that motivated dataflow
//! scheduling are absorbed by group-level work-stealing instead of
//! per-level barriers over single-node tasks. The entry point is kept for
//! API stability and now delegates to the shared level engine.

use crate::config::{SolverConfig, WStorage};
use crate::error::SolverError;
use crate::factor::{factorize, FactorTree};
use kfds_askit::SkeletonTree;
use kfds_kernels::Kernel;

/// Runs the `O(N log N)` factorization with task-parallel scheduling of
/// each level's work (shape-grouped launches under `KFDS_BATCH`, per-node
/// `par_iter` tasks otherwise) via the shared level engine.
///
/// Note: [`WStorage::Recompute`]'s transient-`P̂` dropping was never
/// applied by the historical dataflow scheduler; for compatibility the
/// factors are all retained (`Stored` semantics).
pub fn factorize_taskparallel<'a, K: Kernel>(
    st: &'a SkeletonTree,
    kernel: &'a K,
    config: SolverConfig,
) -> Result<FactorTree<'a, K>, SolverError> {
    factorize(st, kernel, config.with_w_storage(WStorage::Stored))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kfds_askit::{skeletonize, SkelConfig};
    use kfds_kernels::Gaussian;
    use kfds_tree::datasets::normal_embedded;
    use kfds_tree::BallTree;

    #[test]
    fn taskparallel_matches_level_synchronous() {
        let pts = normal_embedded(512, 3, 8, 0.05, 42);
        let tree = BallTree::build(&pts, 32);
        let kernel = Gaussian::new(1.0);
        let st = skeletonize(
            tree,
            &kernel,
            SkelConfig::default().with_tol(1e-5).with_max_rank(96).with_neighbors(8),
        );
        let cfg = SolverConfig::default().with_lambda(0.7);
        let level = factorize(&st, &kernel, cfg).expect("level");
        let task = factorize_taskparallel(&st, &kernel, cfg).expect("task");
        assert!(task.is_complete());
        let b: Vec<f64> = (0..512).map(|i| (i as f64 * 0.29).sin()).collect();
        let mut x1 = b.clone();
        let mut x2 = b.clone();
        level.solve_in_place(&mut x1).expect("solve");
        task.solve_in_place(&mut x2).expect("solve");
        let err: f64 = x1.iter().zip(&x2).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
        assert!(err < 1e-10, "task-parallel factors differ: {err}");
        // Identical flop counts: it is the same algorithm, rescheduled.
        assert!((level.stats().flops - task.stats().flops).abs() < 1e-6 * level.stats().flops);
    }

    #[test]
    fn taskparallel_partial_factorization() {
        let pts = normal_embedded(512, 3, 8, 0.05, 43);
        let tree = BallTree::build(&pts, 32);
        let kernel = Gaussian::new(1.0);
        let st = skeletonize(
            tree,
            &kernel,
            SkelConfig::default()
                .with_tol(1e-5)
                .with_max_rank(96)
                .with_neighbors(8)
                .with_max_level(2),
        );
        let cfg = SolverConfig::default().with_lambda(0.5);
        let task = factorize_taskparallel(&st, &kernel, cfg).expect("task partial");
        assert!(!task.is_complete());
        let hy = crate::HybridSolver::new(&task).expect("hybrid over task factors");
        let b: Vec<f64> = (0..512).map(|i| ((i % 7) as f64) - 3.0).collect();
        let opts = kfds_krylov::GmresOptions { tol: 1e-11, max_iters: 300, ..Default::default() };
        let out = hy.solve(&b, &opts).expect("solve");
        let applied = kfds_askit::hier_matvec(&st, &kernel, 0.5, &out.x);
        let num: f64 = applied.iter().zip(&b).map(|(a, c)| (a - c) * (a - c)).sum();
        let den: f64 = b.iter().map(|v| v * v).sum();
        assert!((num / den).sqrt() < 1e-8);
    }
}
