//! Kernel ridge regression — the end-to-end learning task of the paper's
//! evaluation (§IV): train `w = (λI + K̃)^{-1} y` with the fast direct
//! solver, predict `ŷ(x) = sign(K(x, X) w)`.

use crate::config::SolverConfig;
use crate::error::SolverError;
use crate::factor::{factorize, FactorTree};
use kfds_askit::{skeletonize, SkelConfig, SkeletonTree};
use kfds_kernels::Kernel;
use kfds_tree::{BallTree, PointSet};

/// A trained kernel ridge regression model.
pub struct KernelRidge<K: Kernel> {
    kernel: K,
    st: Box<SkeletonTree>,
    /// Weights in the tree's permuted ordering.
    w_perm: Vec<f64>,
    /// Relative residual of the training solve, `‖y − (λI+K̃)w‖/‖y‖`,
    /// measured with the hierarchical operator.
    pub train_residual: f64,
}

/// Training report.
pub struct TrainReport {
    /// Seconds spent building the tree + skeletons (the "ASKIT" column of
    /// Table V).
    pub setup_seconds: f64,
    /// Seconds spent factorizing.
    pub factor_seconds: f64,
    /// Seconds spent in the solve.
    pub solve_seconds: f64,
}

impl<K: Kernel + Clone> KernelRidge<K> {
    /// Trains on `(points, labels)` with leaf size `m`.
    ///
    /// # Errors
    /// Propagates factorization failures (singular diagonal blocks).
    ///
    /// # Panics
    /// Panics if `labels.len() != points.len()`.
    pub fn train(
        points: &PointSet,
        labels: &[f64],
        kernel: K,
        m: usize,
        skel: SkelConfig,
        solver: SolverConfig,
    ) -> Result<(Self, TrainReport), SolverError> {
        assert_eq!(labels.len(), points.len(), "label count mismatch");
        let t0 = std::time::Instant::now();
        let tree = BallTree::build(points, m);
        let st = Box::new(skeletonize(tree, &kernel, skel));
        let setup_seconds = t0.elapsed().as_secs_f64();

        let t1 = std::time::Instant::now();
        let ft: FactorTree<'_, K> = factorize(&st, &kernel, solver)?;
        let factor_seconds = t1.elapsed().as_secs_f64();

        let t2 = std::time::Instant::now();
        let y_perm = st.tree().permute_vec(labels);
        let mut w_perm = y_perm.clone();
        ft.solve_in_place(&mut w_perm)?;
        let solve_seconds = t2.elapsed().as_secs_f64();

        // Verification residual against the operator that was factorized.
        let applied = kfds_askit::hier_matvec(&st, &kernel, solver.lambda, &w_perm);
        let mut num = 0.0;
        let mut den = 0.0;
        for (a, y) in applied.iter().zip(&y_perm) {
            num += (a - y) * (a - y);
            den += y * y;
        }
        let train_residual = if den > 0.0 { (num / den).sqrt() } else { 0.0 };
        drop(ft);

        Ok((
            KernelRidge { kernel, st, w_perm, train_residual },
            TrainReport { setup_seconds, factor_seconds, solve_seconds },
        ))
    }

    /// Fast treecode prediction `K(x, X) w` via the trained skeletons
    /// (multipole acceptance parameter `theta ∈ [0, 1)`; `theta = 0`
    /// degenerates to the exact evaluation).
    pub fn predict_fast(&self, test: &PointSet, theta: f64) -> Vec<f64> {
        let ev =
            kfds_askit::TreecodeEvaluator::new(&self.st, &self.kernel, self.w_perm.clone(), theta);
        ev.evaluate_batch(test)
    }

    /// Fast treecode classification `sign(K(x, X) w)`.
    pub fn classify_fast(&self, test: &PointSet, theta: f64) -> Vec<f64> {
        self.predict_fast(test, theta)
            .into_iter()
            .map(|v| if v >= 0.0 { 1.0 } else { -1.0 })
            .collect()
    }

    /// Regression prediction `K(x, X) w` for each test point.
    pub fn predict(&self, test: &PointSet) -> Vec<f64> {
        let train_pts = self.st.tree().points();
        assert_eq!(test.dim(), train_pts.dim(), "dimension mismatch");
        let n = train_pts.len();
        (0..test.len())
            .map(|t| {
                let x = test.point(t);
                let mut s = 0.0;
                for i in 0..n {
                    s += self.kernel.eval(x, train_pts.point(i)) * self.w_perm[i];
                }
                s
            })
            .collect()
    }

    /// Binary classification: `sign(K(x, X) w)`.
    pub fn classify(&self, test: &PointSet) -> Vec<f64> {
        self.predict(test).into_iter().map(|v| if v >= 0.0 { 1.0 } else { -1.0 }).collect()
    }

    /// Classification accuracy against ±1 labels.
    pub fn accuracy(&self, test: &PointSet, labels: &[f64]) -> f64 {
        assert_eq!(labels.len(), test.len());
        if labels.is_empty() {
            return 1.0;
        }
        let pred = self.classify(test);
        let correct = pred.iter().zip(labels).filter(|(p, y)| (**p > 0.0) == (**y > 0.0)).count();
        correct as f64 / labels.len() as f64
    }

    /// The underlying skeleton tree (for inspection).
    pub fn skeleton_tree(&self) -> &SkeletonTree {
        &self.st
    }

    /// Trained weights in original point order.
    pub fn weights(&self) -> Vec<f64> {
        self.st.tree().unpermute_vec(&self.w_perm)
    }
}
