//! The factorization as a preconditioner (paper §I, "Limitations"):
//! a loose-tolerance (cheap) factorization of `λI + K̃` preconditions
//! Krylov iterations on the *exact* operator `λI + K`, combining the
//! direct solver's robustness with exact-operator accuracy.

use crate::error::SolverError;
use crate::factor::FactorTree;
use kfds_kernels::Kernel;
use kfds_krylov::{gmres_right_preconditioned, FnOp, GmresOptions, Preconditioner, SolveResult};

/// A [`Preconditioner`] applying the factorized `(λI + K̃)^{-1}`.
pub struct FactorPreconditioner<'a, 'f, K: Kernel> {
    ft: &'f FactorTree<'a, K>,
}

impl<K: Kernel> Preconditioner for FactorPreconditioner<'_, '_, K> {
    fn apply_inv(&self, x: &mut [f64]) {
        self.ft.solve_in_place(x).expect("complete factorization required");
    }
}

impl<'a, K: Kernel> FactorTree<'a, K> {
    /// Views this (complete) factorization as a preconditioner.
    ///
    /// # Errors
    /// [`SolverError::NotSkeletonized`] for partial factorizations.
    pub fn as_preconditioner(&self) -> Result<FactorPreconditioner<'a, '_, K>, SolverError> {
        if !self.is_complete() {
            return Err(SolverError::NotSkeletonized { node: self.skeleton_tree().tree().root() });
        }
        Ok(FactorPreconditioner { ft: self })
    }
}

/// Solves `(λI + K) x = b` — with the **exact** kernel matrix, applied
/// matrix-free — by GMRES preconditioned with this factorization of the
/// compressed operator. `b` is in the tree's permuted ordering.
///
/// # Errors
/// [`SolverError::NotSkeletonized`] for partial factorizations.
pub fn solve_exact_preconditioned<K: Kernel>(
    ft: &FactorTree<'_, K>,
    b: &[f64],
    opts: &GmresOptions,
) -> Result<SolveResult, SolverError> {
    let st = ft.skeleton_tree();
    let kernel = ft.kernel();
    let lambda = ft.config().lambda;
    let n = st.tree().points().len();
    assert_eq!(b.len(), n, "rhs length mismatch");
    let prec = ft.as_preconditioner()?;
    let op = FnOp::new(n, |x: &[f64], y: &mut [f64]| {
        y.copy_from_slice(&kfds_askit::exact_matvec(st, kernel, lambda, x));
    });
    Ok(gmres_right_preconditioned(&op, &prec, b, opts))
}
