//! Partitioning a complete factorization into rank-owned subtree shards.
//!
//! The paper's distributed algorithms (II.4/II.5) assign each rank a
//! subtree of the hierarchical factorization and keep only the top
//! `log p` levels shared. [`PartitionedFactor`] reproduces that ownership
//! shape over an already-built [`SharedFactor`]: cutting the tree at
//! level `log2(p)` yields `p` disjoint subtree roots whose solves are
//! fully independent (each is exactly the recursive Algorithm II.3 on its
//! subtree), plus a shared *top tree* of Sherman–Morrison–Woodbury
//! corrections that stitches the per-shard partial solves together.
//!
//! The split is bitwise-exact by construction: a shard solve runs the
//! same `solve_node_mat` recursion on the same rows the single-node solve
//! would have recursed into, and the top sweep replays the identical
//! per-node `smw_correct_mat` arithmetic bottom-up. Only memory movement
//! (row-block copies, scatter/gather payloads) differs, so
//! `PartitionedFactor::solve_mat_in_place` equals
//! [`FactorTree::solve_mat_in_place`](crate::FactorTree::solve_mat_in_place)
//! bit for bit — the property the sharded serve tier's A/B switch and ci
//! smoke lane assert.
//!
//! RHS movement between a router and shard owners is expressed through
//! [`kfds_rt::Transport`] (in-process channels today, wire-pluggable
//! later): [`scatter_rhs`](PartitionedFactor::scatter_rhs) sends each
//! shard its contiguous row block, [`gather_solutions`]
//! (PartitionedFactor::gather_solutions) writes the solved blocks back.

use crate::error::SolverError;
use crate::share::SharedFactor;
use kfds_kernels::Kernel;
use kfds_la::{workspace, Mat};
use kfds_rt::Transport;
use std::ops::Range;

/// A complete factorization split at a cut level into `p` rank-owned
/// subtree shards plus the shared top tree.
///
/// Cheap to clone (`O(1)` — the factor is behind a [`SharedFactor`]
/// handle), so shard workers and the router can each hold one.
pub struct PartitionedFactor<K: Kernel + 'static> {
    factor: SharedFactor<K>,
    cut_level: usize,
    /// Subtree root node of each shard, sorted by row range.
    roots: Vec<usize>,
    /// Contiguous permuted row range owned by each shard.
    ranges: Vec<Range<usize>>,
}

impl<K: Kernel + 'static> Clone for PartitionedFactor<K> {
    fn clone(&self) -> Self {
        Self {
            factor: self.factor.clone(),
            cut_level: self.cut_level,
            roots: self.roots.clone(),
            ranges: self.ranges.clone(),
        }
    }
}

fn err(reason: impl Into<String>) -> SolverError {
    SolverError::Partition { reason: reason.into() }
}

impl<K: Kernel + 'static> PartitionedFactor<K> {
    /// Splits `factor` into `p` rank-owned subtree shards at cut level
    /// `log2(p)`.
    ///
    /// # Errors
    /// Returns [`SolverError::Partition`] when the split is impossible:
    /// `p` not a power of two, the tree too shallow to expose `p`
    /// subtrees, the factorization incomplete (level restriction — the
    /// top-tree corrections would be missing), or a malformed cut.
    pub fn partition(factor: SharedFactor<K>, p: usize) -> Result<Self, SolverError> {
        if p == 0 || !p.is_power_of_two() {
            return Err(err(format!("shard count {p} is not a power of two")));
        }
        if !factor.is_complete() {
            return Err(err("incomplete factorization (level restriction); the shared top tree \
                 requires every reduced system above the cut"));
        }
        let st = factor.skeleton_tree();
        let tree = st.tree();
        let cut_level = p.trailing_zeros() as usize;
        let cut = tree.nodes_at_level(cut_level);
        if cut.len() != p {
            return Err(err(format!(
                "tree exposes {} node(s) at level {cut_level}, need {p} subtree roots \
                 (tree too shallow for {p} shards?)",
                cut.len()
            )));
        }
        let mut roots = cut.to_vec();
        roots.sort_by_key(|&nd| tree.node(nd).range().start);
        let ranges: Vec<Range<usize>> = roots.iter().map(|&nd| tree.node(nd).range()).collect();
        let n = tree.points().len();
        let mut expect_start = 0usize;
        for (s, range) in ranges.iter().enumerate() {
            if range.start != expect_start || range.is_empty() {
                return Err(err(format!(
                    "cut is not a contiguous cover: shard {s} owns {range:?}"
                )));
            }
            expect_start = range.end;
        }
        if expect_start != n {
            return Err(err(format!("cut covers {expect_start} of {n} rows")));
        }
        // Every node strictly above the cut participates in the shared
        // top sweep: it must have two skeletonized children and (unless
        // both child ranks are zero) a factored reduced system.
        let factors = factor.factor_tree().factors();
        for level in 0..cut_level {
            for &node in tree.nodes_at_level(level) {
                let Some((l, r)) = tree.node(node).children else {
                    return Err(err(format!("node {node} above the cut is a leaf")));
                };
                for c in [l, r] {
                    if !st.is_skeletonized(c) {
                        return Err(err(format!(
                            "child {c} of top-tree node {node} has no skeleton"
                        )));
                    }
                }
                let ranks =
                    st.skeleton(l).map_or(0, |s| s.rank()) + st.skeleton(r).map_or(0, |s| s.rank());
                if ranks > 0 && factors[node].z_lu.is_none() {
                    return Err(err(format!("top-tree node {node} has no reduced system")));
                }
            }
        }
        Ok(Self { factor, cut_level, roots, ranges })
    }

    /// Number of shards `p`.
    pub fn shards(&self) -> usize {
        self.roots.len()
    }

    /// The cut level `log2(p)`.
    pub fn cut_level(&self) -> usize {
        self.cut_level
    }

    /// The underlying shared factorization handle.
    pub fn factor(&self) -> &SharedFactor<K> {
        &self.factor
    }

    /// Problem size (rows of the factorized system).
    pub fn n(&self) -> usize {
        self.factor.n()
    }

    /// Permuted row range owned by `shard`.
    pub fn shard_range(&self, shard: usize) -> Range<usize> {
        self.ranges[shard].clone()
    }

    /// Subtree root node owned by `shard`.
    pub fn shard_root(&self, shard: usize) -> usize {
        self.roots[shard]
    }

    /// Runs the independent subtree solve of `shard` on its row block
    /// (`|shard rows| x nrhs`, permuted ordering) in place. This is the
    /// work a shard owner performs locally, and it is the exact recursion
    /// the single-node solve runs below the cut.
    pub fn solve_local(&self, shard: usize, block: &mut Mat) {
        assert_eq!(block.nrows(), self.ranges[shard].len(), "shard block rows mismatch");
        self.factor.factor_tree().ctx().solve_node_mat(self.roots[shard], block);
    }

    /// Applies the shared top tree to `b` (`n x nrhs`, permuted ordering,
    /// all shard blocks already locally solved): Sherman–Morrison–Woodbury
    /// corrections bottom-up from just above the cut to the root, each
    /// node running the identical arithmetic of the recursive solve.
    pub fn solve_top(&self, b: &mut Mat) {
        assert_eq!(b.nrows(), self.n(), "solve_top: rhs rows mismatch");
        let tree = self.factor.skeleton_tree().tree();
        let ctx = self.factor.factor_tree().ctx();
        let nrhs = b.ncols();
        for level in (0..self.cut_level).rev() {
            for &node in tree.nodes_at_level(level) {
                let (l, r) = tree.node(node).children.expect("validated at partition time");
                let lrange = tree.node(l).range();
                let rrange = tree.node(r).range();
                // Row-halves of a column-major matrix are strided; the
                // recursive path works on owned (pooled) copies, so the
                // top sweep does the same (bitwise-identical arithmetic,
                // memory movement only).
                let mut utop = workspace::mat_from_view(b.submatrix(lrange.clone(), 0..nrhs));
                let mut ubot = workspace::mat_from_view(b.submatrix(rrange.clone(), 0..nrhs));
                ctx.smw_correct_mat(node, l, r, &mut utop, &mut ubot);
                for j in 0..nrhs {
                    b.col_mut(j)[lrange.clone()].copy_from_slice(utop.col(j));
                    b.col_mut(j)[rrange.clone()].copy_from_slice(ubot.col(j));
                }
                workspace::recycle_mat(utop);
                workspace::recycle_mat(ubot);
            }
        }
    }

    /// Reference single-process sharded solve: every shard's local solve
    /// followed by the shared top sweep. Bitwise-identical to
    /// [`FactorTree::solve_mat_in_place`](crate::FactorTree::solve_mat_in_place)
    /// on the same `b`.
    pub fn solve_mat_in_place(&self, b: &mut Mat) {
        assert_eq!(b.nrows(), self.n(), "solve: rhs rows mismatch");
        let nrhs = b.ncols();
        for s in 0..self.shards() {
            let range = self.ranges[s].clone();
            let mut block = workspace::mat_from_view(b.submatrix(range.clone(), 0..nrhs));
            self.solve_local(s, &mut block);
            for j in 0..nrhs {
                b.col_mut(j)[range.clone()].copy_from_slice(block.col(j));
            }
            workspace::recycle_mat(block);
        }
        self.solve_top(b);
    }

    /// Flattens `shard`'s row block of `b` column-major for the wire.
    pub fn pack_shard_rhs(&self, shard: usize, b: &Mat) -> Vec<f64> {
        let range = self.ranges[shard].clone();
        let mut out = Vec::with_capacity(range.len() * b.ncols());
        for j in 0..b.ncols() {
            out.extend_from_slice(&b.col(j)[range.clone()]);
        }
        out
    }

    /// Flattens a solved shard block column-major for the wire.
    pub fn pack_block(block: &Mat) -> Vec<f64> {
        let mut out = Vec::with_capacity(block.nrows() * block.ncols());
        for j in 0..block.ncols() {
            out.extend_from_slice(block.col(j));
        }
        out
    }

    /// Rebuilds `shard`'s `rows x nrhs` block from a wire payload, or
    /// `None` when the payload shape is wrong (a failed or misrouted
    /// shard response).
    pub fn block_from_payload(&self, shard: usize, nrhs: usize, payload: &[f64]) -> Option<Mat> {
        let rows = self.ranges[shard].len();
        if nrhs == 0 || payload.len() != rows * nrhs {
            return None;
        }
        let mut m = Mat::zeros(rows, nrhs);
        for j in 0..nrhs {
            m.col_mut(j).copy_from_slice(&payload[j * rows..(j + 1) * rows]);
        }
        Some(m)
    }

    /// Scatters each shard's RHS row block to transport rank `shard`
    /// under `tag`.
    pub fn scatter_rhs<T: Transport + ?Sized>(&self, t: &T, b: &Mat, tag: u32) {
        assert_eq!(b.nrows(), self.n(), "scatter: rhs rows mismatch");
        for s in 0..self.shards() {
            t.send_block(s, tag, &self.pack_shard_rhs(s, b));
        }
    }

    /// Gathers one solved block from every shard (in shard order) under
    /// `tag`, writing well-formed blocks into `b`. Returns the shards
    /// whose payload was malformed (e.g. the empty block a failed worker
    /// sends to keep the data plane drained); `b`'s rows for those shards
    /// are left untouched and the overall solve must be reported failed.
    pub fn gather_solutions<T: Transport + ?Sized>(
        &self,
        t: &T,
        b: &mut Mat,
        tag: u32,
    ) -> Vec<usize> {
        assert_eq!(b.nrows(), self.n(), "gather: rhs rows mismatch");
        let nrhs = b.ncols();
        let mut malformed = Vec::new();
        for s in 0..self.shards() {
            let payload = t.recv_block(s, tag);
            let rows = self.ranges[s].len();
            if nrhs == 0 || payload.len() != rows * nrhs {
                malformed.push(s);
                continue;
            }
            let range = self.ranges[s].clone();
            for j in 0..nrhs {
                b.col_mut(j)[range.clone()].copy_from_slice(&payload[j * rows..(j + 1) * rows]);
            }
        }
        malformed
    }
}
