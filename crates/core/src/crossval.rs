//! Cross-validation workflows: the reason factorization speed matters.
//!
//! "The factorization has to be done for different values of λ during
//! cross-validation studies. Therefore optimizing the factorization is
//! crucial for the overall performance of a kernel method" (paper §I).
//! The skeletonization is λ-independent, so a λ sweep re-factorizes over
//! *shared* skeletons — exactly what [`lambda_sweep`] does. One-vs-all
//! multi-class training rides the multi-RHS solve.

use crate::assemble::{assemble_blocks, refactor_enabled};
use crate::config::SolverConfig;
use crate::error::SolverError;
use crate::factor::{factorize, factorize_with_blocks, FactorTree};
use crate::regression::KernelRidge;
use kfds_askit::{hier_matvec, SkeletonTree, TreecodeEvaluator};
use kfds_kernels::Kernel;
use kfds_la::Mat;
use kfds_tree::PointSet;
use std::sync::Arc;
use std::time::Instant;

/// One row of a λ sweep.
#[derive(Clone, Debug)]
pub struct LambdaSweepEntry {
    /// Regularizer value.
    pub lambda: f64,
    /// Factorization wall-clock seconds (per-λ cost of the sweep). For a
    /// failed λ this is the time spent *failing* — never a placeholder
    /// zero, so summed timing columns stay honest.
    pub factor_seconds: f64,
    /// Training-solve relative residual against `λI + K̃`.
    pub residual: f64,
    /// Held-out classification accuracy, when a validation set was given.
    pub accuracy: Option<f64>,
    /// §III instability flag for this λ (set for completed-but-marginal
    /// factorizations *and* for outright failures).
    pub unstable: bool,
    /// `true` iff the factorization at this λ failed outright (distinct
    /// from merely-unstable entries, which still produced factors).
    pub failed: bool,
}

/// Sweeps `λ` values over a *shared* skeletonization, re-factorizing per
/// value (the paper's cross-validation pattern). `y` is in the tree's
/// permuted order; an optional `(points, labels)` validation pair adds a
/// held-out accuracy column (treecode prediction with `theta = 0.5`).
///
/// With λ-sweep refactorization active (the default; `KFDS_REFACTOR=off`
/// disables), the kernel blocks are assembled **once** and every λ pays
/// only linear algebra ([`factorize_with_blocks`], which pins the stored
/// `V`-block scheme). With it off, every λ runs a full [`factorize`]
/// under `base`'s storage mode — the legacy path, reproduced bitwise.
///
/// λ values whose factorization fails outright are reported with
/// `residual = NaN`, `unstable = true`, and `failed = true` rather than
/// aborting the sweep.
pub fn lambda_sweep<K: Kernel>(
    st: &SkeletonTree,
    kernel: &K,
    base: SolverConfig,
    lambdas: &[f64],
    y: &[f64],
    validation: Option<(&PointSet, &[f64])>,
) -> Vec<LambdaSweepEntry> {
    lambda_sweep_impl(st, kernel, base, lambdas, y, validation, refactor_enabled())
}

/// The sweep body, parameterized over the refactorization toggle so the
/// A/B property tests can exercise both paths deterministically without
/// racing on the process-global switch.
pub(crate) fn lambda_sweep_impl<K: Kernel>(
    st: &SkeletonTree,
    kernel: &K,
    base: SolverConfig,
    lambdas: &[f64],
    y: &[f64],
    validation: Option<(&PointSet, &[f64])>,
    use_refactor: bool,
) -> Vec<LambdaSweepEntry> {
    let n = st.tree().points().len();
    assert_eq!(y.len(), n, "label length mismatch");
    // One assembly amortized across the whole λ grid (refactor path).
    let blocks = use_refactor.then(|| Arc::new(assemble_blocks(st, kernel)));
    let mut out = Vec::with_capacity(lambdas.len());
    for &lambda in lambdas {
        let cfg = base.with_lambda(lambda);
        let t0 = Instant::now();
        let result = match &blocks {
            Some(b) => factorize_with_blocks(st, kernel, Arc::clone(b), cfg),
            None => factorize(st, kernel, cfg),
        };
        let factor_seconds = t0.elapsed().as_secs_f64();
        match result {
            Ok(ft) => out.push(sweep_entry(st, kernel, &ft, lambda, factor_seconds, y, validation)),
            Err(_) => out.push(LambdaSweepEntry {
                lambda,
                factor_seconds,
                residual: f64::NAN,
                accuracy: None,
                unstable: true,
                failed: true,
            }),
        }
    }
    out
}

/// Solves + scores one completed factorization of the sweep.
fn sweep_entry<K: Kernel>(
    st: &SkeletonTree,
    kernel: &K,
    ft: &FactorTree<'_, K>,
    lambda: f64,
    factor_seconds: f64,
    y: &[f64],
    validation: Option<(&PointSet, &[f64])>,
) -> LambdaSweepEntry {
    let mut w = y.to_vec();
    let solve_ok = ft.solve_in_place(&mut w).is_ok();
    let residual = if solve_ok {
        let applied = hier_matvec(st, kernel, lambda, &w);
        let num: f64 = applied.iter().zip(y).map(|(a, b)| (a - b) * (a - b)).sum();
        let den: f64 = y.iter().map(|v| v * v).sum();
        (num / den.max(1e-300)).sqrt()
    } else {
        f64::NAN
    };
    let accuracy = validation.map(|(vp, vl)| {
        let ev = TreecodeEvaluator::new(st, kernel, w.clone(), 0.5);
        let pred = ev.evaluate_batch(vp);
        let correct = pred.iter().zip(vl).filter(|(p, l)| (**p >= 0.0) == (**l > 0.0)).count();
        correct as f64 / vl.len().max(1) as f64
    });
    LambdaSweepEntry {
        lambda,
        factor_seconds,
        residual,
        accuracy,
        unstable: ft.stats().is_unstable(),
        failed: false,
    }
}

/// A one-vs-all multi-class kernel ridge classifier.
///
/// Trains all `C` binary problems with a single multi-RHS solve against
/// one factorization (the `C` right-hand sides share `λI + K̃`).
pub struct KernelRidgeMulti<K: Kernel> {
    kernel: K,
    st: Box<SkeletonTree>,
    /// `N x C` weights in permuted order.
    w_perm: Mat,
}

impl<K: Kernel + Clone> KernelRidgeMulti<K> {
    /// Trains on class labels `0..n_classes`.
    ///
    /// # Errors
    /// Propagates factorization/solve failures.
    ///
    /// # Panics
    /// Panics on label/point count mismatch or out-of-range labels.
    pub fn train(
        points: &PointSet,
        labels: &[usize],
        n_classes: usize,
        kernel: K,
        m: usize,
        skel: kfds_askit::SkelConfig,
        solver: SolverConfig,
    ) -> Result<Self, SolverError> {
        assert_eq!(labels.len(), points.len(), "label count mismatch");
        assert!(labels.iter().all(|&c| c < n_classes), "label out of range");
        let tree = kfds_tree::BallTree::build(points, m);
        let st = Box::new(kfds_askit::skeletonize(tree, &kernel, skel));
        let ft = factorize(&st, &kernel, solver)?;
        let n = points.len();
        // One ±1 column per class, permuted to tree order.
        let mut y = Mat::zeros(n, n_classes);
        for (i, &c) in labels.iter().enumerate() {
            let pos = st.tree().inv_perm()[i];
            for k in 0..n_classes {
                y[(pos, k)] = if k == c { 1.0 } else { -1.0 };
            }
        }
        ft.solve_mat_in_place(&mut y)?;
        drop(ft);
        Ok(KernelRidgeMulti { kernel, st, w_perm: y })
    }

    /// Predicts class indices by one-vs-all argmax (treecode evaluation).
    pub fn classify(&self, test: &PointSet, theta: f64) -> Vec<usize> {
        let c = self.w_perm.ncols();
        let mut scores: Vec<Vec<f64>> = Vec::with_capacity(c);
        for k in 0..c {
            let ev =
                TreecodeEvaluator::new(&self.st, &self.kernel, self.w_perm.col(k).to_vec(), theta);
            scores.push(ev.evaluate_batch(test));
        }
        (0..test.len())
            .map(|i| {
                (0..c)
                    .max_by(|&a, &b| scores[a][i].partial_cmp(&scores[b][i]).expect("NaN score"))
                    .expect("at least one class")
            })
            .collect()
    }

    /// Classification accuracy against integer labels.
    pub fn accuracy(&self, test: &PointSet, labels: &[usize], theta: f64) -> f64 {
        assert_eq!(labels.len(), test.len());
        if labels.is_empty() {
            return 1.0;
        }
        let pred = self.classify(test, theta);
        pred.iter().zip(labels).filter(|(p, l)| p == l).count() as f64 / labels.len() as f64
    }
}

/// Grid search over `(h, λ)` for binary kernel ridge classification,
/// returning the best configuration by validation accuracy. Each `h`
/// needs its own skeletonization (the kernel changes), but the ball tree
/// and the kNN lists are **h-independent** (pure geometry), so they are
/// built once and shared across the whole `(h, λ)` grid; each `λ` then
/// shares its `h`'s skeletonization (and, with refactorization active,
/// its assembled kernel blocks) through [`lambda_sweep`].
#[allow(clippy::too_many_arguments)]
pub fn grid_search_gaussian(
    train: &PointSet,
    y_train: &[f64],
    valid: &PointSet,
    y_valid: &[f64],
    hs: &[f64],
    lambdas: &[f64],
    m: usize,
    skel: kfds_askit::SkelConfig,
) -> Option<(f64, f64, f64)> {
    let mut best: Option<(f64, f64, f64)> = None;
    let tree = kfds_tree::BallTree::build(train, m);
    let nn = kfds_askit::compute_neighbors(&tree, &skel);
    for &h in hs {
        let kernel = kfds_kernels::Gaussian::new(h);
        let st = kfds_askit::skeletonize_with_neighbors(tree.clone(), &kernel, skel.clone(), &nn);
        let y_perm = st.tree().permute_vec(y_train);
        let entries = lambda_sweep(
            &st,
            &kernel,
            SolverConfig::default(),
            lambdas,
            &y_perm,
            Some((valid, y_valid)),
        );
        for e in entries {
            let acc = e.accuracy.unwrap_or(0.0);
            if !e.unstable && best.map(|(_, _, a)| acc > a).unwrap_or(true) {
                best = Some((h, e.lambda, acc));
            }
        }
    }
    best
}

/// Convenience: train a binary [`KernelRidge`] at the best grid point.
#[allow(clippy::too_many_arguments)]
pub fn train_best_gaussian(
    train: &PointSet,
    y_train: &[f64],
    valid: &PointSet,
    y_valid: &[f64],
    hs: &[f64],
    lambdas: &[f64],
    m: usize,
    skel: kfds_askit::SkelConfig,
) -> Result<Option<KernelRidge<kfds_kernels::Gaussian>>, SolverError> {
    let Some((h, lambda, _)) =
        grid_search_gaussian(train, y_train, valid, y_valid, hs, lambdas, m, skel.clone())
    else {
        return Ok(None);
    };
    let kernel = kfds_kernels::Gaussian::new(h);
    let (model, _) = KernelRidge::train(
        train,
        y_train,
        kernel,
        m,
        skel,
        SolverConfig::default().with_lambda(lambda),
    )?;
    Ok(Some(model))
}
