//! Fully direct solver under level restriction — the comparison point of
//! Table V.
//!
//! Instead of iterating on the reduced system `(I + VW)` like the hybrid
//! solver, this variant *assembles and LU-factorizes* it densely: with the
//! frontier at level `L` the system has dimension `M = Σ_φ s_φ ≈ 2^L s`,
//! so the assembly costs `O(2^L s² N)` work and `O(2^{2L} s²)` memory —
//! exactly the blow-up the paper quotes ("if we further increase L, the
//! cost of the full factorization can be 1000× in runtime and 30× in
//! storage"), and the reason the hybrid scheme exists.

use crate::error::SolverError;
use crate::factor::FactorTree;
use crate::hybrid::HybridSolver;
use kfds_kernels::{sum_fused_multi, Kernel};
use kfds_la::{Lu, Mat};
use rayon::prelude::*;

/// A direct solver for the level-restricted factorization: `D` factored
/// per frontier subtree plus a dense LU of the coalesced reduced system.
pub struct LevelRestrictedDirect<'a, 'f, K: Kernel> {
    hybrid: HybridSolver<'a, 'f, K>,
    z_lu: Lu,
    /// Dimension `M` of the assembled reduced system.
    reduced_dim: usize,
    /// Stored frontier `V` row blocks `K_{φ̃, X}` (per frontier node),
    /// present in [`crate::StorageMode::StoredGemv`] — the `2^L s N`
    /// memory term of the paper's Table V discussion.
    stored_v: Option<Vec<Mat>>,
    /// Seconds spent assembling + factorizing the reduced system (on top
    /// of the partial factorization).
    pub assembly_seconds: f64,
    /// Bytes of the dense reduced system (plus stored `V` blocks if any).
    pub reduced_bytes: usize,
}

impl<'a, 'f, K: Kernel> LevelRestrictedDirect<'a, 'f, K> {
    /// Assembles `Z = I + VW` over the frontier and LU-factorizes it.
    ///
    /// # Errors
    /// Propagates frontier-coverage and singularity failures.
    pub fn new(ft: &'f FactorTree<'a, K>) -> Result<Self, SolverError> {
        let t0 = std::time::Instant::now();
        let hybrid = HybridSolver::new(ft)?;
        let st = ft.skeleton_tree();
        let tree = st.tree();
        let pts = tree.points();
        let kernel = ft.kernel();
        let frontier = hybrid.frontier().to_vec();
        let offsets: Vec<usize> = {
            let mut o = Vec::with_capacity(frontier.len() + 1);
            let mut acc = 0;
            o.push(0);
            for &f in &frontier {
                acc += st.skeleton(f).expect("frontier skeleton").rank();
                o.push(acc);
            }
            o
        };
        let m_dim = *offsets.last().expect("non-empty offsets");
        let mut z = Mat::identity(m_dim);

        // (VW)_{φψ} = K_{φ̃, ψ} P̂_ψ for ψ != φ (the own-block term is
        // excluded from V). Assemble block-column-parallel.
        // Materialize the frontier P̂ factors where the recompute-W mode
        // dropped them (the dense assembly genuinely needs the columns).
        let materialized: Vec<Mat> = frontier
            .par_iter()
            .map(|&psi| match ft.factors()[psi].p_hat.as_ref() {
                Some(p) => p.clone(),
                None => {
                    let s_psi = st.skeleton(psi).expect("frontier skeleton").rank();
                    ft.ctx().apply_p_hat_mat(psi, &Mat::identity(s_psi))
                }
            })
            .collect();
        let blocks: Vec<(usize, usize, Mat)> = frontier
            .par_iter()
            .enumerate()
            .flat_map_iter(|(jq, &psi)| {
                let p_hat = &materialized[jq];
                let psi_cols: Vec<usize> = tree.node(psi).range().collect();
                frontier
                    .iter()
                    .enumerate()
                    .filter(move |&(iq, _)| iq != jq)
                    .map(|(iq, &phi)| {
                        let skf = st.skeleton(phi).expect("frontier skeleton");
                        let mut blk = Mat::zeros(skf.rank(), p_hat.ncols());
                        if skf.rank() > 0 && p_hat.ncols() > 0 {
                            sum_fused_multi(
                                kernel,
                                pts,
                                &skf.skeleton,
                                &psi_cols,
                                p_hat.rb(),
                                blk.rb_mut(),
                            );
                        }
                        (iq, jq, blk)
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
            })
            .collect();
        for (iq, jq, blk) in blocks {
            for j in 0..blk.ncols() {
                for i in 0..blk.nrows() {
                    z[(offsets[iq] + i, offsets[jq] + j)] += blk[(i, j)];
                }
            }
        }
        let z_lu = Lu::factor(z)
            .map_err(|e| SolverError::Factorization { node: tree.root(), source: e })?;
        // Stored mode: materialize the frontier V rows K_{φ̃, X} so solves
        // use GEMV instead of fused kernel evaluation (the paper's
        // O(2^L s N) storage term).
        let n = pts.len();
        let mut reduced_bytes = m_dim * m_dim * 8;
        let stored_v = if ft.config().storage == crate::StorageMode::StoredGemv {
            let all: Vec<usize> = (0..n).collect();
            let blocks: Vec<Mat> = frontier
                .par_iter()
                .map(|&phi| {
                    let sk = st.skeleton(phi).expect("frontier skeleton");
                    kfds_kernels::eval_block(kernel, pts, &sk.skeleton, &all)
                })
                .collect();
            reduced_bytes += blocks.iter().map(|b| b.nrows() * b.ncols() * 8).sum::<usize>();
            Some(blocks)
        } else {
            None
        };
        Ok(LevelRestrictedDirect {
            hybrid,
            z_lu,
            reduced_dim: m_dim,
            stored_v,
            assembly_seconds: t0.elapsed().as_secs_f64(),
            reduced_bytes,
        })
    }

    /// `y = V x` using the stored frontier blocks when available, the
    /// matrix-free path otherwise.
    fn apply_v(&self, x: &[f64]) -> Vec<f64> {
        match &self.stored_v {
            None => self.hybrid.apply_v_pub(x),
            Some(blocks) => {
                let st = self.hybrid_skeleton_tree();
                let tree = st.tree();
                let mut out = Vec::with_capacity(self.reduced_dim);
                for (k, &phi) in self.hybrid.frontier().iter().enumerate() {
                    let blk = &blocks[k];
                    let mut y = vec![0.0; blk.nrows()];
                    kfds_la::blas2::gemv(1.0, blk.rb(), x, 0.0, &mut y);
                    // Subtract the own-node contribution (V excludes it).
                    let nd = tree.node(phi);
                    let own = blk.submatrix(0..blk.nrows(), nd.begin..nd.end);
                    kfds_la::blas2::gemv(-1.0, own, &x[nd.range()], 1.0, &mut y);
                    out.extend(y);
                }
                out
            }
        }
    }

    fn hybrid_skeleton_tree(&self) -> &'a kfds_askit::SkeletonTree {
        self.hybrid.skeleton_tree()
    }

    /// Dimension of the assembled reduced system (`≈ 2^L s`).
    pub fn reduced_dim(&self) -> usize {
        self.reduced_dim
    }

    /// Solves `(λI + K̃) x = b` (`b` in permuted order) with the dense
    /// reduced system: `x = v − W Z^{-1} V v`, `v = D^{-1} b`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut v = b.to_vec();
        self.hybrid.apply_dinv_pub(&mut v);
        if self.reduced_dim == 0 {
            return v;
        }
        let mut y = self.apply_v(&v);
        self.z_lu.solve_inplace(&mut y);
        let mut wz = vec![0.0; b.len()];
        self.hybrid.apply_w_pub(&y, &mut wz);
        for (vi, wi) in v.iter_mut().zip(&wz) {
            *vi -= wi;
        }
        v
    }
}
