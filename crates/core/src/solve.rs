//! The `O(N log N)` solve — Algorithm II.3.
//!
//! `K̃_αα^{-1} u = (I − W_α Z_α^{-1} V_α) D_α^{-1} u`: recurse into the
//! children (the `D^{-1}` application), then apply the
//! Sherman–Morrison–Woodbury correction through the reduced system. The
//! `V` matvec runs in the configured storage mode (stored GEMV /
//! recomputed GEMM / fused GSKS — Table IV).
//!
//! The recursion is exposed internally through `SolveCtx` so the
//! `O(N log² N)` baseline (which *is* this recursive solve applied to `s`
//! right-hand sides per node) can drive it over a partially built factor
//! set.

use crate::config::{SolverConfig, StorageMode};
use crate::error::SolverError;
use crate::factor::{FactorTree, NodeFactors};
use kfds_askit::SkeletonTree;
use kfds_kernels::{sum_fused, sum_fused_multi, sum_reference, sum_reference_multi, Kernel};
use kfds_la::blas1::axpy;
use kfds_la::blas2::{gemv, gemv_t};
use kfds_la::{gemm, workspace, Mat, Trans};

/// Borrowed solve context: a skeleton tree plus (possibly in-progress)
/// node factors.
pub(crate) struct SolveCtx<'b, K: Kernel> {
    pub st: &'b SkeletonTree,
    pub kernel: &'b K,
    pub config: &'b SolverConfig,
    pub factors: &'b [NodeFactors],
}

impl<K: Kernel> FactorTree<'_, K> {
    pub(crate) fn ctx(&self) -> SolveCtx<'_, K> {
        SolveCtx { st: self.st, kernel: self.kernel, config: &self.config, factors: &self.factors }
    }

    /// Solves `(λI + K̃) x = b` in place (`b` in the tree's permuted
    /// ordering), using the complete direct factorization.
    ///
    /// # Errors
    /// Returns [`SolverError::NotSkeletonized`] if the factorization is
    /// partial (level restriction) — use the hybrid solver then.
    pub fn solve_in_place(&self, b: &mut [f64]) -> Result<(), SolverError> {
        let tree = self.st.tree();
        assert_eq!(b.len(), tree.points().len(), "solve: rhs length mismatch");
        if !self.is_complete() {
            return Err(SolverError::NotSkeletonized { node: tree.root() });
        }
        self.ctx().solve_node(tree.root(), b);
        Ok(())
    }

    /// Solves `(λI + K̃) X = B` in place for a multi-column right-hand
    /// side.
    pub fn solve_mat_in_place(&self, b: &mut Mat) -> Result<(), SolverError> {
        let tree = self.st.tree();
        assert_eq!(b.nrows(), tree.points().len(), "solve: rhs rows mismatch");
        if !self.is_complete() {
            return Err(SolverError::NotSkeletonized { node: tree.root() });
        }
        let mut owned = std::mem::replace(b, Mat::zeros(0, 0));
        self.ctx().solve_node_mat(tree.root(), &mut owned);
        *b = owned;
        Ok(())
    }

    /// Convenience wrapper: solve with a right-hand side in *original*
    /// point order, returning the solution in original order.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SolverError> {
        let tree = self.st.tree();
        let mut bp = tree.permute_vec(b);
        self.solve_in_place(&mut bp)?;
        Ok(tree.unpermute_vec(&bp))
    }
}

impl<K: Kernel> SolveCtx<'_, K> {
    /// Applies `K̃_αα^{-1}` to `u` in place — the recursive Solve of
    /// Algorithm II.3 (`do_recur = true` path).
    pub(crate) fn solve_node(&self, node: usize, u: &mut [f64]) {
        let tree = self.st.tree();
        let nd = tree.node(node);
        debug_assert_eq!(u.len(), nd.len());
        let Some((l, r)) = nd.children else {
            self.factors[node]
                .leaf_lu
                .as_ref()
                .expect("leaf LU missing in factored region")
                .solve_inplace(u);
            return;
        };
        let nl = tree.node(l).len();
        // D^{-1}: independent recursive solves on the children.
        {
            let (ul, ur) = u.split_at_mut(nl);
            rayon::join(|| self.solve_node(l, ul), || self.solve_node(r, ur));
        }
        self.apply_smw_correction(node, l, r, u);
    }

    /// SMW correction `u -= W_α Z_α^{-1} V_α u` for an internal node.
    fn apply_smw_correction(&self, node: usize, l: usize, r: usize, u: &mut [f64]) {
        let tree = self.st.tree();
        let nl = tree.node(l).len();
        let skl = self.st.skeleton(l).expect("children skeletons required");
        let skr = self.st.skeleton(r).expect("children skeletons required");
        let (sl, sr) = (skl.rank(), skr.rank());
        if sl + sr == 0 {
            return; // vanishing off-diagonal coupling
        }
        let z_lu = self.factors[node].z_lu.as_ref().expect("reduced system missing");
        // y = V u = [K_{l̃ r} u_r ; K_{r̃ l} u_l]. Pooled scratch: every
        // element is overwritten below (gemv / summation with beta = 0).
        let mut y = workspace::take(sl + sr);
        {
            let pts = tree.points();
            let (ul, ur) = u.split_at(nl);
            let (ytop, ybot) = y.split_at_mut(sl);
            match self.config.storage {
                StorageMode::StoredGemv => {
                    let v_lr = self.factors[node].v_lr.as_ref().expect("stored V missing");
                    let v_rl = self.factors[node].v_rl.as_ref().expect("stored V missing");
                    gemv(1.0, v_lr.rb(), ur, 0.0, ytop);
                    gemv(1.0, v_rl.rb(), ul, 0.0, ybot);
                }
                StorageMode::RecomputeGemm => {
                    let rc: Vec<usize> = tree.node(r).range().collect();
                    let lc: Vec<usize> = tree.node(l).range().collect();
                    sum_reference(self.kernel, pts, &skl.skeleton, &rc, ur, ytop);
                    sum_reference(self.kernel, pts, &skr.skeleton, &lc, ul, ybot);
                }
                StorageMode::Gsks => {
                    let rc: Vec<usize> = tree.node(r).range().collect();
                    let lc: Vec<usize> = tree.node(l).range().collect();
                    sum_fused(self.kernel, pts, &skl.skeleton, &rc, ur, ytop);
                    sum_fused(self.kernel, pts, &skr.skeleton, &lc, ul, ybot);
                }
            }
        }
        // z = Z^{-1} y.
        z_lu.solve_inplace(&mut y);
        // u -= W z = [P̂_l z_top ; P̂_r z_bot].
        let (ul, ur) = u.split_at_mut(nl);
        self.sub_p_hat_apply(l, &y[..sl], ul);
        self.sub_p_hat_apply(r, &y[sl..], ur);
    }

    /// `out -= P̂_node z`, through the stored factor or the telescoped
    /// recurrence (eq. 10) in [`crate::config::WStorage::Recompute`] mode.
    fn sub_p_hat_apply(&self, node: usize, z: &[f64], out: &mut [f64]) {
        if let Some(p) = self.factors[node].p_hat.as_ref() {
            gemv(-1.0, p.rb(), z, 1.0, out);
        } else {
            let v = self.apply_p_hat(node, z);
            axpy(-1.0, &v, out);
            workspace::give_vec(v);
        }
    }

    /// Applies `P̂_{αα̃} z` without a stored factor, telescoping through
    /// the children (eq. 10):
    /// `P̂_α z = W_α t`, `t = y − Z_α^{-1}(Z_α − I) y`, `y = P_{[l̃r̃]α̃} z`.
    pub(crate) fn apply_p_hat(&self, node: usize, z: &[f64]) -> Vec<f64> {
        if let Some(p) = self.factors[node].p_hat.as_ref() {
            // Pooled storage, detached because the result escapes; the
            // beta = 0 gemv overwrites every element.
            let mut out = workspace::take(p.nrows()).detach();
            gemv(1.0, p.rb(), z, 0.0, &mut out);
            return out;
        }
        let tree = self.st.tree();
        let (l, r) =
            tree.node(node).children.expect("recompute-W: internal node without stored P-hat");
        let sk = self.st.skeleton(node).expect("apply_p_hat on unskeletonized node");
        let (sl, sr) = (
            self.st.skeleton(l).expect("child skeleton").rank(),
            self.st.skeleton(r).expect("child skeleton").rank(),
        );
        // y = P_{[l̃r̃]α̃} z  (proj is s x (sl+sr); we need proj^T z).
        // Pooled scratch, fully overwritten by the beta = 0 products.
        let mut y = workspace::take(sl + sr);
        gemv_t(1.0, sk.proj.rb(), z, 0.0, &mut y);
        // c = Z^{-1} (Z − I) y, with (Z−I)y = [B_l y_bot; B_r y_top].
        let b_l = self.factors[node].b_l.as_ref().expect("recompute-W needs B blocks");
        let b_r = self.factors[node].b_r.as_ref().expect("recompute-W needs B blocks");
        let z_lu = self.factors[node].z_lu.as_ref().expect("reduced system missing");
        let mut c = workspace::take(sl + sr);
        gemv(1.0, b_l.rb(), &y[sl..], 0.0, &mut c[..sl]);
        gemv(1.0, b_r.rb(), &y[..sl], 0.0, &mut c[sl..]);
        z_lu.solve_inplace(&mut c);
        for (yi, ci) in y.iter_mut().zip(c.iter()) {
            *yi -= ci;
        }
        // W t = [P̂_l t_top ; P̂_r t_bot], recursively. The concatenation
        // goes through a pooled take (an `extend_from_slice` would grow —
        // and possibly reallocate — the pooled child buffer, leaking an
        // unpooled allocation on the steady-state solve path).
        let top = self.apply_p_hat(l, &y[..sl]);
        let bot = self.apply_p_hat(r, &y[sl..]);
        let mut out = workspace::take(top.len() + bot.len()).detach();
        out[..top.len()].copy_from_slice(&top);
        out[top.len()..].copy_from_slice(&bot);
        workspace::give_vec(top);
        workspace::give_vec(bot);
        out
    }

    /// Multi-RHS variant of [`apply_p_hat`](Self::apply_p_hat): returns
    /// `P̂_{αα̃} Z` (`|α| x nrhs`). Also used to materialize `P̂` where a
    /// dense factor is required (level-restricted direct assembly).
    pub(crate) fn apply_p_hat_mat(&self, node: usize, zmat: &Mat) -> Mat {
        if let Some(p) = self.factors[node].p_hat.as_ref() {
            let mut out = workspace::take_mat_detached(p.nrows(), zmat.ncols());
            gemm(1.0, p.rb(), Trans::No, zmat.rb(), Trans::No, 0.0, out.rb_mut());
            return out;
        }
        let tree = self.st.tree();
        let (l, r) =
            tree.node(node).children.expect("recompute-W: internal node without stored P-hat");
        let sk = self.st.skeleton(node).expect("apply_p_hat on unskeletonized node");
        let (sl, sr) = (
            self.st.skeleton(l).expect("child skeleton").rank(),
            self.st.skeleton(r).expect("child skeleton").rank(),
        );
        let nrhs = zmat.ncols();
        // Pooled temporaries: y and c are fully overwritten by the beta = 0
        // products below and recycled before returning.
        let mut y = workspace::take_mat_detached(sl + sr, nrhs);
        gemm(1.0, sk.proj.rb(), Trans::Yes, zmat.rb(), Trans::No, 0.0, y.rb_mut());
        let b_l = self.factors[node].b_l.as_ref().expect("recompute-W needs B blocks");
        let b_r = self.factors[node].b_r.as_ref().expect("recompute-W needs B blocks");
        let z_lu = self.factors[node].z_lu.as_ref().expect("reduced system missing");
        let mut c = workspace::take_mat_detached(sl + sr, nrhs);
        gemm(
            1.0,
            b_l.rb(),
            Trans::No,
            y.submatrix(sl..sl + sr, 0..nrhs),
            Trans::No,
            0.0,
            c.rb_mut().submatrix_mut(0..sl, 0..nrhs),
        );
        gemm(
            1.0,
            b_r.rb(),
            Trans::No,
            y.submatrix(0..sl, 0..nrhs),
            Trans::No,
            0.0,
            c.rb_mut().submatrix_mut(sl..sl + sr, 0..nrhs),
        );
        z_lu.solve_mat_inplace(&mut c);
        for j in 0..nrhs {
            for i in 0..sl + sr {
                y[(i, j)] -= c[(i, j)];
            }
        }
        workspace::recycle_mat(c);
        let ytop = workspace::mat_from_view(y.submatrix(0..sl, 0..nrhs));
        let ybot = workspace::mat_from_view(y.submatrix(sl..sl + sr, 0..nrhs));
        workspace::recycle_mat(y);
        let top = self.apply_p_hat_mat(l, &ytop);
        let bot = self.apply_p_hat_mat(r, &ybot);
        workspace::recycle_mat(ytop);
        workspace::recycle_mat(ybot);
        // Stack the halves through a pooled take (`Mat::vcat` allocates
        // fresh storage, which would be the one unpooled allocation per
        // internal node on the steady-state multi-RHS solve path).
        let (nt, nb) = (top.nrows(), bot.nrows());
        let mut out = workspace::take_mat_detached(nt + nb, nrhs);
        for j in 0..nrhs {
            out.col_mut(j)[..nt].copy_from_slice(top.col(j));
            out.col_mut(j)[nt..].copy_from_slice(bot.col(j));
        }
        workspace::recycle_mat(top);
        workspace::recycle_mat(bot);
        out
    }

    /// Multi-RHS variant of [`solve_node`](Self::solve_node); `u` is
    /// `|α| x nrhs`. This is the workhorse of the `O(N log² N)` baseline,
    /// which calls it once per node with `s` right-hand sides.
    pub(crate) fn solve_node_mat(&self, node: usize, u: &mut Mat) {
        let tree = self.st.tree();
        let nd = tree.node(node);
        debug_assert_eq!(u.nrows(), nd.len());
        let nrhs = u.ncols();
        let Some((l, r)) = nd.children else {
            let lu = self.factors[node].leaf_lu.as_ref().expect("leaf LU missing");
            lu.solve_mat_inplace(u);
            return;
        };
        let nl = tree.node(l).len();
        let nr = tree.node(r).len();

        // D^{-1} on both halves; row-halves of a column-major matrix are
        // strided, so work on owned (pooled) copies.
        let mut utop = workspace::mat_from_view(u.submatrix(0..nl, 0..nrhs));
        let mut ubot = workspace::mat_from_view(u.submatrix(nl..nl + nr, 0..nrhs));
        rayon::join(|| self.solve_node_mat(l, &mut utop), || self.solve_node_mat(r, &mut ubot));
        self.smw_correct_mat(node, l, r, &mut utop, &mut ubot);
        for j in 0..nrhs {
            u.col_mut(j)[..nl].copy_from_slice(utop.col(j));
            u.col_mut(j)[nl..].copy_from_slice(ubot.col(j));
        }
        workspace::recycle_mat(utop);
        workspace::recycle_mat(ubot);
    }

    /// The SMW correction step of [`solve_node_mat`](Self::solve_node_mat)
    /// at internal node `node` with children `l`, `r`: given the two
    /// child-solved halves `utop = D_l^{-1} u_l`, `ubot = D_r^{-1} u_r`,
    /// subtracts the low-rank coupling correction in place.
    ///
    /// Factored out so the sharded solve's shared top tree
    /// ([`crate::partition::PartitionedFactor`]) can run the exact same
    /// per-node arithmetic over gathered shard blocks — the operation
    /// sequence is identical to the recursive path, which is what keeps
    /// the sharded answer bitwise-equal to the single-node one.
    pub(crate) fn smw_correct_mat(
        &self,
        node: usize,
        l: usize,
        r: usize,
        utop: &mut Mat,
        ubot: &mut Mat,
    ) {
        let tree = self.st.tree();
        let nrhs = utop.ncols();
        debug_assert_eq!(nrhs, ubot.ncols());
        let nl = utop.nrows();
        let nr = ubot.nrows();
        debug_assert_eq!(nl, tree.node(l).len());
        debug_assert_eq!(nr, tree.node(r).len());
        let skl = self.st.skeleton(l).expect("children skeletons required");
        let skr = self.st.skeleton(r).expect("children skeletons required");
        let (sl, sr) = (skl.rank(), skr.rank());

        if sl + sr > 0 {
            let z_lu = self.factors[node].z_lu.as_ref().expect("reduced system missing");
            let mut y = workspace::take_mat_detached(sl + sr, nrhs);
            match self.config.storage {
                StorageMode::StoredGemv => {
                    let v_lr = self.factors[node].v_lr.as_ref().expect("stored V missing");
                    let v_rl = self.factors[node].v_rl.as_ref().expect("stored V missing");
                    gemm(
                        1.0,
                        v_lr.rb(),
                        Trans::No,
                        ubot.rb(),
                        Trans::No,
                        0.0,
                        y.rb_mut().submatrix_mut(0..sl, 0..nrhs),
                    );
                    gemm(
                        1.0,
                        v_rl.rb(),
                        Trans::No,
                        utop.rb(),
                        Trans::No,
                        0.0,
                        y.rb_mut().submatrix_mut(sl..sl + sr, 0..nrhs),
                    );
                }
                StorageMode::RecomputeGemm => {
                    let rc: Vec<usize> = tree.node(r).range().collect();
                    let lc: Vec<usize> = tree.node(l).range().collect();
                    sum_reference_multi(
                        self.kernel,
                        tree.points(),
                        &skl.skeleton,
                        &rc,
                        ubot.rb(),
                        y.rb_mut().submatrix_mut(0..sl, 0..nrhs),
                    );
                    sum_reference_multi(
                        self.kernel,
                        tree.points(),
                        &skr.skeleton,
                        &lc,
                        utop.rb(),
                        y.rb_mut().submatrix_mut(sl..sl + sr, 0..nrhs),
                    );
                }
                StorageMode::Gsks => {
                    let rc: Vec<usize> = tree.node(r).range().collect();
                    let lc: Vec<usize> = tree.node(l).range().collect();
                    sum_fused_multi(
                        self.kernel,
                        tree.points(),
                        &skl.skeleton,
                        &rc,
                        ubot.rb(),
                        y.rb_mut().submatrix_mut(0..sl, 0..nrhs),
                    );
                    sum_fused_multi(
                        self.kernel,
                        tree.points(),
                        &skr.skeleton,
                        &lc,
                        utop.rb(),
                        y.rb_mut().submatrix_mut(sl..sl + sr, 0..nrhs),
                    );
                }
            }
            z_lu.solve_mat_inplace(&mut y);
            let ytop = workspace::mat_from_view(y.submatrix(0..sl, 0..nrhs));
            let ybot = workspace::mat_from_view(y.submatrix(sl..sl + sr, 0..nrhs));
            workspace::recycle_mat(y);
            let corr_top = self.apply_p_hat_mat(l, &ytop);
            let corr_bot = self.apply_p_hat_mat(r, &ybot);
            workspace::recycle_mat(ytop);
            workspace::recycle_mat(ybot);
            for j in 0..nrhs {
                for i in 0..nl {
                    utop[(i, j)] -= corr_top[(i, j)];
                }
                for i in 0..nr {
                    ubot[(i, j)] -= corr_bot[(i, j)];
                }
            }
            workspace::recycle_mat(corr_top);
            workspace::recycle_mat(corr_bot);
        }
    }
}
