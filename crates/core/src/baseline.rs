//! The `O(N log² N)` factorization of INV-ASKIT (Yu et al., IPDPS'16 —
//! reference \[36\] of the paper), for the Table III comparison.
//!
//! The difference to [`crate::factor::factorize`] is a single step: instead
//! of telescoping `P̂_{αα̃}` from the children's `P̂` (eq. 10), each node
//! materializes the full projection `P_{αα̃}` (`|α| x s`) and computes
//! `P̂_{αα̃} = K̃_αα^{-1} P_{αα̃}` with the *recursive* solver — a full
//! subtree traversal per node, which is where the extra `log N` factor
//! comes from. Both algorithms construct exactly the same factorization up
//! to roundoff (asserted in the tests), so Table III is a pure
//! complexity-constant comparison.

use crate::config::{FactorStats, SolverConfig};
use crate::error::SolverError;
use crate::factor::{build_reduced_system, in_factored_region, FactorTree, NodeCost, NodeFactors};
use crate::solve::SolveCtx;
use kfds_askit::SkeletonTree;
use kfds_kernels::{flops, Kernel};
use kfds_la::{gemm, Mat, Trans};
use rayon::prelude::*;
use std::time::Instant;

/// Runs the `O(N log² N)` baseline factorization of `λI + K̃`.
///
/// Produces a [`FactorTree`] with the same factors as
/// [`crate::factorize`] (up to roundoff), at the \[36\] complexity.
pub fn factorize_baseline<'a, K: Kernel>(
    st: &'a SkeletonTree,
    kernel: &'a K,
    config: SolverConfig,
) -> Result<FactorTree<'a, K>, SolverError> {
    let t0 = Instant::now();
    let tree = st.tree();
    let n_nodes = tree.nodes().len();
    let mut factors: Vec<NodeFactors> = (0..n_nodes).map(|_| NodeFactors::default()).collect();
    // Full projections P_{αα̃} (|α| x s), materialized as in [36].
    let mut p_full: Vec<Option<Mat>> = (0..n_nodes).map(|_| None).collect();
    let mut total = NodeCost { min_pivot: f64::INFINITY, ..Default::default() };

    for level in (0..=tree.depth()).rev() {
        let level_nodes: Vec<usize> = tree
            .nodes_at_level(level)
            .iter()
            .copied()
            .filter(|&i| in_factored_region(st, i))
            .collect();

        // Pass 1: leaves fully; internal nodes get their reduced system
        // and full projection (no P̂ yet — that needs the own Z in place).
        let pass1: Vec<(usize, Result<Pass1, SolverError>)> = level_nodes
            .par_iter()
            .map(|&i| (i, pass1_node(st, kernel, &config, &factors, &p_full, i)))
            .collect();
        let mut internal_todo = Vec::new();
        for (i, res) in pass1 {
            let out = res?;
            total.flops += out.cost.flops;
            total.min_pivot = total.min_pivot.min(out.cost.min_pivot);
            total.unstable += out.cost.unstable;
            total.bytes += out.cost.bytes;
            factors[i] = out.factors;
            if let Some(pf) = out.p_full {
                let is_internal = tree.node(i).children.is_some();
                p_full[i] = Some(pf);
                if is_internal && st.is_skeletonized(i) {
                    internal_todo.push(i);
                }
            }
        }

        // Pass 2 — the [36] step: P̂ = K̃^{-1} P via the recursive solver
        // (full subtree traversal per node).
        let pass2: Vec<(usize, Mat, f64)> = internal_todo
            .par_iter()
            .map(|&i| {
                let mut p = p_full[i].clone().expect("p_full computed in pass 1");
                let ctx = SolveCtx { st, kernel, config: &config, factors: &factors };
                ctx.solve_node_mat(i, &mut p);
                let fl = recursive_solve_flops(st, i, p.ncols());
                (i, p, fl)
            })
            .collect();
        for (i, p, fl) in pass2 {
            total.flops += fl;
            total.bytes += p.nrows() * p.ncols() * 8;
            factors[i].p_hat = Some(p);
        }
    }

    let max_rank = (0..n_nodes).filter_map(|i| st.skeleton(i)).map(|s| s.rank()).max().unwrap_or(0);
    let stats = FactorStats {
        seconds: t0.elapsed().as_secs_f64(),
        flops: total.flops,
        min_pivot_ratio: if total.min_pivot.is_finite() { total.min_pivot } else { 1.0 },
        unstable_factorizations: total.unstable,
        max_rank,
        stored_bytes: total.bytes,
        // Not level-synchronous in the batched sense (pass 2 walks whole
        // subtrees); no per-level breakdown.
        levels: Vec::new(),
    };
    Ok(FactorTree::from_parts(st, kernel, config, factors, stats))
}

struct Pass1 {
    factors: NodeFactors,
    p_full: Option<Mat>,
    cost: NodeCost,
}

fn pass1_node<K: Kernel>(
    st: &SkeletonTree,
    kernel: &K,
    config: &SolverConfig,
    factors: &[NodeFactors],
    p_full: &[Option<Mat>],
    node: usize,
) -> Result<Pass1, SolverError> {
    let tree = st.tree();
    let nd = tree.node(node);
    match nd.children {
        None => {
            // Leaves are identical in both algorithms; reuse the
            // O(N log N) code path and record P = proj^T as the full
            // projection.
            let (nf, cost) = crate::factor::factor_leaf_for_baseline(st, kernel, config, node)?;
            let pf = st.skeleton(node).map(|sk| {
                let (s, m) = (sk.rank(), nd.len());
                Mat::from_fn(m, s, |i, j| sk.proj[(j, i)])
            });
            Ok(Pass1 { factors: nf, p_full: pf, cost })
        }
        Some((l, r)) => {
            let p_hat_l = factors[l].p_hat.as_ref().expect("child P-hat missing");
            let p_hat_r = factors[r].p_hat.as_ref().expect("child P-hat missing");
            let rs = build_reduced_system(st, kernel, config, None, p_hat_l, p_hat_r, node, l, r)?;
            let mut cost = rs.cost;
            // Full projection P_{αα̃} = diag(P_l, P_r) · P_{[l̃r̃]α̃},
            // materialized bottom-up from the children's full projections.
            let pf = match st.skeleton(node) {
                Some(sk) => {
                    let s = sk.rank();
                    let pl = p_full[l].as_ref().expect("child full projection missing");
                    let pr = p_full[r].as_ref().expect("child full projection missing");
                    let (sl, sr) = (pl.ncols(), pr.ncols());
                    let (nl, nr) = (pl.nrows(), pr.nrows());
                    let pt = Mat::from_fn(sl + sr, s, |i, j| sk.proj[(j, i)]);
                    let mut p = Mat::zeros(nl + nr, s);
                    gemm(
                        1.0,
                        pl.rb(),
                        Trans::No,
                        pt.submatrix(0..sl, 0..s),
                        Trans::No,
                        0.0,
                        p.rb_mut().submatrix_mut(0..nl, 0..s),
                    );
                    gemm(
                        1.0,
                        pr.rb(),
                        Trans::No,
                        pt.submatrix(sl..sl + sr, 0..s),
                        Trans::No,
                        0.0,
                        p.rb_mut().submatrix_mut(nl..nl + nr, 0..s),
                    );
                    cost.flops += flops::gemm_flops(nl, s, sl) + flops::gemm_flops(nr, s, sr);
                    cost.bytes += (nl + nr) * s * 8;
                    Some(p)
                }
                None => None,
            };
            Ok(Pass1 {
                factors: NodeFactors {
                    z_lu: Some(rs.z_lu),
                    v_lr: rs.v_lr,
                    v_rl: rs.v_rl,
                    ..Default::default()
                },
                p_full: pf,
                cost,
            })
        }
    }
}

/// Flop estimate of one recursive multi-RHS solve (`nrhs` columns) over the
/// subtree rooted at `node` — the cost the telescoping removes.
fn recursive_solve_flops(st: &SkeletonTree, node: usize, nrhs: usize) -> f64 {
    let tree = st.tree();
    let nd = tree.node(node);
    match nd.children {
        None => flops::lu_solve_flops(nd.len(), nrhs),
        Some((l, r)) => {
            let (sl, sr) = (
                st.skeleton(l).map(|s| s.rank()).unwrap_or(0),
                st.skeleton(r).map(|s| s.rank()).unwrap_or(0),
            );
            let (nl, nr) = (tree.node(l).len(), tree.node(r).len());
            recursive_solve_flops(st, l, nrhs)
                + recursive_solve_flops(st, r, nrhs)
                + 2.0 * ((sl * nr + sr * nl) * nrhs) as f64 // V apply
                + flops::lu_solve_flops(sl + sr, nrhs) // Z solve
                + 2.0 * ((nl * sl + nr * sr) * nrhs) as f64 // W apply
        }
    }
}
