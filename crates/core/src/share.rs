//! Owned, shareable factorization handles for long-lived services.
//!
//! [`FactorTree`] borrows its [`SkeletonTree`] and kernel, which is the
//! right shape for one-shot binaries but not for a serving system that
//! caches factorizations across requests and threads: a cache entry must
//! own everything it needs. [`SharedFactor`] bundles the skeleton tree,
//! the kernel, and the factorization behind one `Arc`, so handles clone
//! in O(1) and can be handed to worker threads freely.
//!
//! Internally the factor tree is stored with a `'static` lifetime that is
//! a private fiction: the references point into `Arc` allocations owned by
//! the same struct, and the API only ever re-exposes them at the handle's
//! borrow lifetime (sound because `FactorTree` is covariant in its
//! lifetime parameter).

use crate::assemble::{assemble_blocks, refactor_enabled, AssembledBlocks};
use crate::config::SolverConfig;
use crate::error::SolverError;
use crate::factor::{factorize, factorize_with_blocks, FactorTree};
use crate::hybrid::HybridSolver;
use kfds_askit::SkeletonTree;
use kfds_kernels::Kernel;
use kfds_krylov::GmresOptions;
use kfds_la::Mat;
use std::sync::Arc;

/// The λ-independent half of a factorization, owned and shareable: the
/// skeleton tree, the kernel, and the assembled kernel blocks
/// ([`AssembledBlocks`]). A serving system caches one of these per
/// `(dataset, n, h, seed)` and derives every λ-specific [`SharedFactor`]
/// from it via [`SharedFactor::refactorize`], so a λ sweep pays for tree
/// building, skeletonization, and kernel evaluation exactly once.
pub struct SharedSetup<K: Kernel + 'static> {
    st: Arc<SkeletonTree>,
    kernel: Arc<K>,
    blocks: Arc<AssembledBlocks>,
}

impl<K: Kernel + 'static> Clone for SharedSetup<K> {
    fn clone(&self) -> Self {
        SharedSetup {
            st: Arc::clone(&self.st),
            kernel: Arc::clone(&self.kernel),
            blocks: Arc::clone(&self.blocks),
        }
    }
}

impl<K: Kernel + 'static> SharedSetup<K> {
    /// Assembles the λ-independent kernel blocks over an owned skeleton
    /// tree, producing a self-contained setup handle.
    pub fn build(st: Arc<SkeletonTree>, kernel: Arc<K>) -> Self {
        let blocks = Arc::new(assemble_blocks(&st, kernel.as_ref()));
        SharedSetup { st, kernel, blocks }
    }

    /// The skeleton tree.
    pub fn skeleton_tree(&self) -> &SkeletonTree {
        &self.st
    }

    /// The kernel.
    pub fn kernel(&self) -> &K {
        &self.kernel
    }

    /// The assembled λ-independent kernel blocks.
    pub fn blocks(&self) -> &Arc<AssembledBlocks> {
        &self.blocks
    }

    /// Problem size `N`.
    pub fn n(&self) -> usize {
        self.st.tree().points().len()
    }
}

struct SharedInner<K: Kernel + 'static> {
    /// Declared first so it drops before the `Arc`s it points into.
    ft: FactorTree<'static, K>,
    _st: Arc<SkeletonTree>,
    _kernel: Arc<K>,
}

/// An owned factorization of `λI + K̃`: skeleton tree + kernel + factors
/// behind a single `Arc`. `Clone` is a reference-count bump, so a cache
/// can hand the same factorization to many solve workers.
pub struct SharedFactor<K: Kernel + 'static> {
    inner: Arc<SharedInner<K>>,
}

impl<K: Kernel + 'static> Clone for SharedFactor<K> {
    fn clone(&self) -> Self {
        SharedFactor { inner: Arc::clone(&self.inner) }
    }
}

impl<K: Kernel + 'static> SharedFactor<K> {
    /// Runs [`factorize`] over an owned skeleton tree and kernel,
    /// producing a self-contained handle.
    ///
    /// # Errors
    /// Propagates [`SolverError`] from the factorization.
    pub fn factorize(
        st: Arc<SkeletonTree>,
        kernel: Arc<K>,
        config: SolverConfig,
    ) -> Result<Self, SolverError> {
        // SAFETY: the Arc heap allocations are stable for the life of
        // `SharedInner` (the Arcs are stored alongside the factor tree and
        // outlive it — field order), neither type has interior mutability,
        // and no method returns a reference outliving `&self`.
        let st_ref: &'static SkeletonTree = unsafe { &*Arc::as_ptr(&st) };
        // SAFETY: identical argument for the kernel Arc — stored in
        // `SharedInner._kernel`, declared after `ft`, so it outlives it.
        let k_ref: &'static K = unsafe { &*Arc::as_ptr(&kernel) };
        let ft = factorize(st_ref, k_ref, config)?;
        Ok(SharedFactor { inner: Arc::new(SharedInner { ft, _st: st, _kernel: kernel }) })
    }

    /// Factorizes at a new λ from a [`SharedSetup`], reusing its
    /// assembled kernel blocks so only linear algebra runs (the λ-sweep
    /// refactorization path; pins the stored `V`-block scheme). With
    /// `KFDS_REFACTOR=off` this falls back to a full [`factorize`] under
    /// `config`'s own storage mode — the legacy path, reproduced bitwise.
    ///
    /// # Errors
    /// Propagates [`SolverError`] from the factorization.
    pub fn refactorize(setup: &SharedSetup<K>, config: SolverConfig) -> Result<Self, SolverError> {
        let st = Arc::clone(&setup.st);
        let kernel = Arc::clone(&setup.kernel);
        // SAFETY: as in [`Self::factorize`] — the Arc heap allocations are
        // stable for the life of `SharedInner` (stored alongside the factor
        // tree, declared after it, so they outlive it), neither type has
        // interior mutability, and no method returns a reference outliving
        // `&self`.
        let st_ref: &'static SkeletonTree = unsafe { &*Arc::as_ptr(&st) };
        // SAFETY: identical argument for the kernel Arc.
        let k_ref: &'static K = unsafe { &*Arc::as_ptr(&kernel) };
        let ft = if refactor_enabled() {
            factorize_with_blocks(st_ref, k_ref, Arc::clone(&setup.blocks), config)?
        } else {
            factorize(st_ref, k_ref, config)?
        };
        Ok(SharedFactor { inner: Arc::new(SharedInner { ft, _st: st, _kernel: kernel }) })
    }

    /// The underlying factor tree, at the handle's borrow lifetime.
    pub fn factor_tree(&self) -> &FactorTree<'_, K> {
        &self.inner.ft
    }

    /// The skeleton tree.
    pub fn skeleton_tree(&self) -> &SkeletonTree {
        self.inner.ft.skeleton_tree()
    }

    /// Problem size `N`.
    pub fn n(&self) -> usize {
        self.skeleton_tree().tree().points().len()
    }

    /// `true` when the factorization is complete (direct solves apply);
    /// otherwise solves route through the hybrid path.
    pub fn is_complete(&self) -> bool {
        self.inner.ft.is_complete()
    }

    /// Number of live handles to this factorization (diagnostic).
    pub fn handle_count(&self) -> usize {
        Arc::strong_count(&self.inner)
    }

    /// Single-RHS solve in the tree's permuted ordering.
    ///
    /// # Errors
    /// See [`FactorTree::solve_in_place`].
    pub fn solve_in_place(&self, b: &mut [f64]) -> Result<(), SolverError> {
        self.inner.ft.solve_in_place(b)
    }

    /// Blocked multi-RHS solve in the tree's permuted ordering: the
    /// complete-factorization direct path when available, the blocked
    /// hybrid path (partial factorization + GMRES on the reduced system)
    /// otherwise. This is the dispatch point a batching service uses.
    ///
    /// # Errors
    /// Propagates [`SolverError`] from either path.
    pub fn solve_block_in_place(
        &self,
        b: &mut Mat,
        gmres: &GmresOptions,
    ) -> Result<(), SolverError> {
        if self.is_complete() {
            self.inner.ft.solve_mat_in_place(b)
        } else {
            let hs = HybridSolver::new(self.factor_tree())?;
            hs.solve_mat_in_place(b, gmres).map(|_| ())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kfds_askit::{skeletonize, SkelConfig};
    use kfds_kernels::Gaussian;
    use kfds_tree::datasets::normal_embedded;
    use kfds_tree::BallTree;

    #[test]
    fn shared_factor_matches_borrowed_factorize() {
        let n = 512;
        let pts = normal_embedded(n, 3, 6, 0.05, 7);
        let kernel = Gaussian::new(1.0);
        let tree = BallTree::build(&pts, 64);
        let st = skeletonize(
            tree,
            &kernel,
            SkelConfig::default().with_tol(1e-5).with_max_rank(48).with_neighbors(8),
        );
        let cfg = SolverConfig::default().with_lambda(0.7);
        let ft = factorize(&st, &kernel, cfg).expect("borrowed factorize");
        let mut want = vec![0.4; n];
        ft.solve_in_place(&mut want).expect("borrowed solve");

        let shared =
            SharedFactor::factorize(Arc::new(st), Arc::new(Gaussian::new(1.0)), cfg).expect("sf");
        let clone = shared.clone();
        assert!(clone.handle_count() >= 2);
        let mut got = vec![0.4; n];
        clone.solve_in_place(&mut got).expect("shared solve");
        assert_eq!(got, want, "shared handle must reproduce the borrowed solve bitwise");

        // Handles survive moving to another thread and outliving the original.
        drop(shared);
        let th = std::thread::spawn(move || {
            let mut x = vec![1.0; clone.n()];
            clone.solve_in_place(&mut x).expect("cross-thread solve");
            x[0]
        });
        assert!(th.join().expect("join").is_finite());
    }

    #[test]
    fn refactorize_matches_shared_factorize_bitwise() {
        use crate::config::StorageMode;
        let n = 512;
        let pts = normal_embedded(n, 3, 6, 0.05, 11);
        let kernel = Gaussian::new(0.9);
        let tree = BallTree::build(&pts, 64);
        let st = Arc::new(skeletonize(
            tree,
            &kernel,
            SkelConfig::default().with_tol(1e-5).with_max_rank(48).with_neighbors(8),
        ));
        let kernel = Arc::new(kernel);
        let setup = SharedSetup::build(Arc::clone(&st), Arc::clone(&kernel));
        assert_eq!(setup.n(), n);
        // The refactor contract pins stored V-blocks, so the reference
        // factorization must run under the same storage mode.
        let base = SolverConfig::default().with_storage(StorageMode::StoredGemv);
        for lambda in [1e-3, 0.3, 5.0] {
            let cfg = base.with_lambda(lambda);
            let fresh =
                SharedFactor::factorize(Arc::clone(&st), Arc::clone(&kernel), cfg).expect("fresh");
            let re = SharedFactor::refactorize(&setup, cfg).expect("refactorize");
            let mut want = vec![0.25; n];
            let mut got = vec![0.25; n];
            fresh.solve_in_place(&mut want).expect("fresh solve");
            re.solve_in_place(&mut got).expect("refactor solve");
            assert_eq!(got, want, "refactorize must be bitwise at λ={lambda}");
        }
    }
}
