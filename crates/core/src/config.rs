//! Solver configuration and factorization diagnostics.

/// How the `V` kernel blocks (`K_{l̃ r}`, `K_{r̃ l}`) are applied during
/// factorization and solves — the three schemes of Table IV (§II-D).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StorageMode {
    /// Precompute and store every `K_{l̃ r}` block; solves use GEMV.
    /// Fastest solve, `O(sN log N)` memory.
    StoredGemv,
    /// Re-evaluate blocks on demand with the two-pass GEMM pipeline.
    /// `O(sN)` transient memory, slow (the full block is materialized).
    RecomputeGemm,
    /// Matrix-free fused summation (GSKS): `O(1)` extra storage, within a
    /// small factor of the stored-GEMV solve time.
    Gsks,
}

/// How the `W = P̂` projection factors are kept (paper §III, Memory:
/// "Recomputing W with (10) can reduce another sN log(N/m) to sN").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WStorage {
    /// Store `P̂_{αα̃}` densely at every node — `O(sN)` per level.
    Stored,
    /// Store `P̂` only at the leaves plus the tiny per-node coupling
    /// blocks; internal `P̂` applications telescope through eq. (10) at
    /// solve time. Total `O(sN)` instead of `O(sN log N)`.
    Recompute,
}

/// How leaf diagonal blocks `λI + K_αα` are factorized.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LeafFactorization {
    /// Partial-pivoted LU (`GETRF`) — always applicable.
    Lu,
    /// Cholesky (`POTRF`) — half the flops; valid because `λI + K` is
    /// symmetric positive definite for a PSD kernel, and a failed
    /// factorization certifies numerical indefiniteness (a sharper §III
    /// instability detector than the LU pivot monitor).
    Cholesky,
}

/// Configuration of the direct factorization.
#[derive(Clone, Copy, Debug)]
pub struct SolverConfig {
    /// Regularizer `λ` in `λI + K`.
    pub lambda: f64,
    /// Kernel-block application scheme.
    pub storage: StorageMode,
    /// Leaf diagonal-block factorization.
    pub leaf: LeafFactorization,
    /// Projection-factor storage scheme.
    pub w_storage: WStorage,
    /// Pivot-ratio threshold below which a node is flagged unstable
    /// (paper §III: `λ` too small relative to `σ_min` of a diagonal
    /// block makes `λI + D` ill-conditioned).
    pub stability_threshold: f64,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            lambda: 1.0,
            storage: StorageMode::Gsks,
            leaf: LeafFactorization::Lu,
            w_storage: WStorage::Stored,
            stability_threshold: 1e-12,
        }
    }
}

impl SolverConfig {
    /// Builder-style setter for `λ`.
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Builder-style setter for the storage mode.
    pub fn with_storage(mut self, storage: StorageMode) -> Self {
        self.storage = storage;
        self
    }

    /// Builder-style setter for the leaf factorization kind.
    pub fn with_leaf(mut self, leaf: LeafFactorization) -> Self {
        self.leaf = leaf;
        self
    }

    /// Builder-style setter for the projection-storage scheme.
    pub fn with_w_storage(mut self, w: WStorage) -> Self {
        self.w_storage = w;
        self
    }
}

/// Per-level breakdown of a level-synchronous sweep (factorization or
/// block assembly): how many nodes the level held, how many grouped
/// launches executed it, and how long it took. With the batched engine
/// (`KFDS_BATCH`) `op_groups` counts shape-grouped launches — typically
/// far fewer than `nodes`; the per-node reference path counts each node
/// as its own launch.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LevelStats {
    /// Tree level (0 = root).
    pub level: usize,
    /// Nodes processed at this level.
    pub nodes: usize,
    /// Grouped launches that executed the level.
    pub op_groups: usize,
    /// Wall-clock seconds spent on the level.
    pub seconds: f64,
}

/// Diagnostics gathered during factorization.
#[derive(Clone, Debug, Default)]
pub struct FactorStats {
    /// Wall-clock seconds of the factorization.
    pub seconds: f64,
    /// Explicitly counted floating-point operations.
    pub flops: f64,
    /// Smallest relative pivot over all leaf and reduced-system LUs —
    /// the §III instability detector.
    pub min_pivot_ratio: f64,
    /// Number of LU factorizations whose pivot ratio fell below the
    /// configured threshold.
    pub unstable_factorizations: usize,
    /// Largest skeleton rank encountered.
    pub max_rank: usize,
    /// Bytes held by the factors (LUs, P̂, Z, stored V blocks).
    pub stored_bytes: usize,
    /// Per-level breakdown, root-last (the sweep runs bottom-up). Empty
    /// levels are omitted; builders that are not level-synchronous (the
    /// `O(N log² N)` baseline) leave this empty.
    pub levels: Vec<LevelStats>,
}

impl FactorStats {
    /// GFLOP/s achieved by the factorization.
    pub fn gflops(&self) -> f64 {
        if self.seconds > 0.0 {
            self.flops / self.seconds / 1e9
        } else {
            0.0
        }
    }

    /// `true` when any diagonal or reduced system hit the instability
    /// threshold — the numerically-detected failure mode of run #30.
    pub fn is_unstable(&self) -> bool {
        self.unstable_factorizations > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_gflops() {
        let c = SolverConfig::default().with_lambda(0.5).with_storage(StorageMode::StoredGemv);
        assert_eq!(c.lambda, 0.5);
        assert_eq!(c.storage, StorageMode::StoredGemv);
        let s = FactorStats { seconds: 2.0, flops: 4e9, ..Default::default() };
        assert!((s.gflops() - 2.0).abs() < 1e-12);
        assert!(!s.is_unstable());
    }
}
