//! Correctness tests for the direct, baseline, hybrid and distributed
//! solvers.

use crate::config::{SolverConfig, StorageMode};
use crate::{
    dist_factorize, estimate_condition, factorize, factorize_baseline, HybridSolver, KernelRidge,
};
use kfds_askit::{hier_matvec, skeletonize, SkelConfig, SkeletonTree};
use kfds_kernels::{eval_symmetric, Gaussian};
use kfds_krylov::GmresOptions;
use kfds_la::blas1::nrm2;
use kfds_tree::datasets::{normal_embedded, two_class_annulus};
use kfds_tree::BallTree;

fn rel_err(a: &[f64], b: &[f64]) -> f64 {
    let mut num = 0.0;
    let mut den = 0.0;
    for (x, y) in a.iter().zip(b) {
        num += (x - y) * (x - y);
        den += y * y;
    }
    (num / den.max(1e-300)).sqrt()
}

fn rand_vec(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
        .collect()
}

/// Standard fixture: 512 points with intrinsic dimension 3 in 8-D.
fn fixture(max_level: usize, tol: f64) -> (SkeletonTree, Gaussian) {
    let pts = normal_embedded(512, 3, 8, 0.05, 42);
    let tree = BallTree::build(&pts, 32);
    let kernel = Gaussian::new(1.0);
    let cfg = SkelConfig::default()
        .with_tol(tol)
        .with_max_rank(96)
        .with_neighbors(8)
        .with_max_level(max_level);
    let st = skeletonize(tree, &kernel, cfg);
    (st, kernel)
}

#[test]
fn factorization_inverts_the_approximated_operator() {
    // The key invariant: regardless of how well K̃ approximates K, the
    // factorization must invert λI + K̃ to near machine precision.
    let (st, kernel) = fixture(1, 1e-4);
    let cfg = SolverConfig::default().with_lambda(0.5);
    let ft = factorize(&st, &kernel, cfg).expect("factorize");
    assert!(ft.is_complete());
    let b = rand_vec(512, 7);
    let mut x = b.clone();
    ft.solve_in_place(&mut x).expect("solve");
    let applied = hier_matvec(&st, &kernel, 0.5, &x);
    let r = rel_err(&applied, &b);
    assert!(r < 1e-9, "exact-inverse residual {r}");
}

#[test]
fn solve_matches_dense_within_approximation_error() {
    let pts = normal_embedded(192, 2, 5, 0.05, 9);
    let tree = BallTree::build(&pts, 24);
    let kernel = Gaussian::new(1.5);
    let cfg = SkelConfig::default().with_tol(1e-9).with_max_rank(128).with_neighbors(12);
    let st = skeletonize(tree, &kernel, cfg);
    let lambda = 0.3;
    let ft =
        factorize(&st, &kernel, SolverConfig::default().with_lambda(lambda)).expect("factorize");
    let b = rand_vec(192, 3);
    let mut x = b.clone();
    ft.solve_in_place(&mut x).expect("solve");
    // Dense reference on the *exact* kernel matrix.
    let mut km = eval_symmetric(&kernel, st.tree().points(), 0..192);
    for i in 0..192 {
        km[(i, i)] += lambda;
    }
    let dense = kfds_la::Lu::factor(km).expect("dense LU").solve(&b);
    let r = rel_err(&x, &dense);
    assert!(r < 1e-4, "direct-vs-dense error {r}");
}

#[test]
fn baseline_produces_identical_factorization() {
    // Table III note: "Both methods construct exactly the same
    // factorization (up to roundoff errors)".
    let (st, kernel) = fixture(1, 1e-5);
    let cfg = SolverConfig::default().with_lambda(1.0);
    let fast = factorize(&st, &kernel, cfg).expect("telescoped");
    let slow = factorize_baseline(&st, &kernel, cfg).expect("baseline");
    let b = rand_vec(512, 21);
    let mut x1 = b.clone();
    let mut x2 = b.clone();
    fast.solve_in_place(&mut x1).expect("solve fast");
    slow.solve_in_place(&mut x2).expect("solve slow");
    let r = rel_err(&x1, &x2);
    assert!(r < 1e-9, "baseline mismatch {r}");
    // The telescoping must also save flops even at this tiny size.
    assert!(fast.stats().flops < slow.stats().flops);
}

#[test]
fn storage_modes_agree() {
    let (st, kernel) = fixture(1, 1e-5);
    let b = rand_vec(512, 33);
    let mut sols = Vec::new();
    for mode in [StorageMode::StoredGemv, StorageMode::RecomputeGemm, StorageMode::Gsks] {
        let cfg = SolverConfig::default().with_lambda(0.7).with_storage(mode);
        let ft = factorize(&st, &kernel, cfg).expect("factorize");
        let mut x = b.clone();
        ft.solve_in_place(&mut x).expect("solve");
        sols.push(x);
    }
    assert!(rel_err(&sols[0], &sols[1]) < 1e-10);
    assert!(rel_err(&sols[0], &sols[2]) < 1e-10);
}

#[test]
fn multi_rhs_solve_matches_single() {
    let (st, kernel) = fixture(1, 1e-5);
    let ft = factorize(&st, &kernel, SolverConfig::default()).expect("factorize");
    let mut b = kfds_la::Mat::zeros(512, 3);
    for j in 0..3 {
        b.col_mut(j).copy_from_slice(&rand_vec(512, 100 + j as u64));
    }
    let b0 = b.clone();
    ft.solve_mat_in_place(&mut b).expect("solve mat");
    for j in 0..3 {
        let mut x = b0.col(j).to_vec();
        ft.solve_in_place(&mut x).expect("solve single");
        assert!(rel_err(b.col(j), &x) < 1e-12, "column {j}");
    }
}

#[test]
fn solve_original_order_roundtrip() {
    let (st, kernel) = fixture(1, 1e-5);
    let lambda = 0.9;
    let ft = factorize(&st, &kernel, SolverConfig::default().with_lambda(lambda)).expect("f");
    let b_orig = rand_vec(512, 55);
    let x_orig = ft.solve(&b_orig).expect("solve");
    // Check in permuted space against the operator.
    let xp = st.tree().permute_vec(&x_orig);
    let bp = st.tree().permute_vec(&b_orig);
    let applied = hier_matvec(&st, &kernel, lambda, &xp);
    assert!(rel_err(&applied, &bp) < 1e-9);
}

#[test]
fn hybrid_matches_direct_without_restriction() {
    let (st, kernel) = fixture(1, 1e-5);
    let cfg = SolverConfig::default().with_lambda(0.5);
    let ft = factorize(&st, &kernel, cfg).expect("factorize");
    let hy = HybridSolver::new(&ft).expect("hybrid");
    let b = rand_vec(512, 11);
    let mut direct = b.clone();
    ft.solve_in_place(&mut direct).expect("direct");
    let opts = GmresOptions { tol: 1e-12, ..Default::default() };
    let out = hy.solve(&b, &opts).expect("hybrid solve");
    assert!(out.gmres.converged);
    let r = rel_err(&out.x, &direct);
    assert!(r < 1e-8, "hybrid-vs-direct {r}");
}

#[test]
fn hybrid_inverts_level_restricted_operator() {
    // L = 3: the direct factorization is impossible (root levels are not
    // skeletonized), the hybrid must still invert λI + K̃ exactly.
    let (st, kernel) = fixture(3, 1e-5);
    assert!(!st.is_fully_skeletonized());
    let lambda = 0.8;
    let cfg = SolverConfig::default().with_lambda(lambda);
    let ft = factorize(&st, &kernel, cfg).expect("partial factorize");
    assert!(!ft.is_complete());
    assert!(ft.solve_in_place(&mut rand_vec(512, 1)).is_err());
    let hy = HybridSolver::new(&ft).expect("hybrid");
    assert!(hy.reduced_dim() > 0);
    assert_eq!(hy.frontier().len(), 8); // 2^3 frontier nodes
    let b = rand_vec(512, 13);
    let opts = GmresOptions { tol: 1e-12, max_iters: 300, ..Default::default() };
    let out = hy.solve(&b, &opts).expect("hybrid solve");
    assert!(out.gmres.converged, "GMRES residual {}", out.gmres.residual);
    let applied = hier_matvec(&st, &kernel, lambda, &out.x);
    let r = rel_err(&applied, &b);
    assert!(r < 1e-8, "hybrid exact-inverse residual {r}");
}

#[test]
fn level_restricted_direct_matches_hybrid() {
    // Table V compares the hybrid (GMRES on the reduced system) against
    // the direct variant that LU-factorizes the coalesced 2^L s system.
    let (st, kernel) = fixture(3, 1e-5);
    let lambda = 0.8;
    let ft = factorize(&st, &kernel, SolverConfig::default().with_lambda(lambda)).expect("f");
    let direct = crate::LevelRestrictedDirect::new(&ft).expect("level-restricted direct");
    let hy = HybridSolver::new(&ft).expect("hybrid");
    assert_eq!(direct.reduced_dim(), hy.reduced_dim());
    let b = rand_vec(512, 29);
    let xd = direct.solve(&b);
    // Direct variant must invert the level-restricted operator exactly.
    let applied = hier_matvec(&st, &kernel, lambda, &xd);
    assert!(rel_err(&applied, &b) < 1e-9, "direct level-restricted residual");
    let opts = GmresOptions { tol: 1e-12, max_iters: 400, ..Default::default() };
    let out = hy.solve(&b, &opts).expect("hybrid");
    assert!(rel_err(&xd, &out.x) < 1e-8, "direct vs hybrid mismatch");
}

#[test]
fn distributed_matches_serial() {
    let (st, kernel) = fixture(1, 1e-5);
    let cfg = SolverConfig::default().with_lambda(0.6);
    let serial = factorize(&st, &kernel, cfg).expect("serial");
    let b = rand_vec(512, 17);
    let mut want = b.clone();
    serial.solve_in_place(&mut want).expect("serial solve");
    for p in [1, 2, 4] {
        let ds = dist_factorize(&st, &kernel, cfg, p).expect("dist factorize");
        let got = ds.solve(&b);
        let r = rel_err(&got, &want);
        assert!(r < 1e-9, "p={p}: dist-vs-serial {r}");
    }
}

#[test]
fn ridge_regression_learns_annulus() {
    let (pts, labels) = two_class_annulus(600, 3, 5);
    let test_pts = pts.select(&(500..600).collect::<Vec<_>>());
    let test_labels = &labels[500..600];
    let train_pts = pts.select(&(0..500).collect::<Vec<_>>());
    let train_labels = &labels[..500];
    let kernel = Gaussian::new(0.5);
    let skel = SkelConfig::default().with_tol(1e-6).with_max_rank(128).with_neighbors(8);
    let solver = SolverConfig::default().with_lambda(1e-2);
    let (model, report) =
        KernelRidge::train(&train_pts, train_labels, kernel, 32, skel, solver).expect("train");
    assert!(model.train_residual < 1e-6, "train residual {}", model.train_residual);
    let acc = model.accuracy(&test_pts, test_labels);
    assert!(acc > 0.9, "accuracy {acc}");
    assert!(report.factor_seconds >= 0.0 && report.setup_seconds >= 0.0);
}

#[test]
fn instability_detected_for_tiny_lambda_flat_kernel() {
    // A huge bandwidth makes K nearly rank-one, so λI + K_αα has σ_min ≈ λ;
    // with λ ≈ 1e-14 the leaf pivots collapse and the §III detector fires.
    let pts = normal_embedded(256, 2, 4, 0.05, 3);
    let tree = BallTree::build(&pts, 32);
    let kernel = Gaussian::new(50.0);
    let st = skeletonize(
        tree,
        &kernel,
        SkelConfig::default().with_tol(1e-7).with_max_rank(64).with_neighbors(8),
    );
    let ft = factorize(&st, &kernel, SolverConfig::default().with_lambda(1e-14));
    // An Err is also a valid detection: the matrix may be exactly singular.
    if let Ok(f) = ft {
        assert!(
            f.stats().is_unstable(),
            "expected instability flag, min pivot ratio {}",
            f.stats().min_pivot_ratio
        );
    }
}

#[test]
fn level_restricted_direct_storage_modes_agree() {
    let (st, kernel) = fixture(2, 1e-5);
    let b = rand_vec(512, 41);
    let mut sols = Vec::new();
    for mode in [StorageMode::Gsks, StorageMode::StoredGemv] {
        let cfg = SolverConfig::default().with_lambda(0.6).with_storage(mode);
        let ft = factorize(&st, &kernel, cfg).expect("f");
        let direct = crate::LevelRestrictedDirect::new(&ft).expect("direct");
        sols.push(direct.solve(&b));
    }
    assert!(rel_err(&sols[0], &sols[1]) < 1e-10, "stored-V direct differs from fused");
}

#[test]
fn approximate_knn_sampling_preserves_solver_quality() {
    // The row sampling only needs good (not exact) neighbor lists; the
    // factorization must still invert its compressed operator exactly and
    // the approximation error must stay comparable to exact-kNN sampling.
    let pts = normal_embedded(512, 3, 32, 0.05, 61);
    let tree = BallTree::build(&pts, 32);
    let kernel = Gaussian::new(2.5);
    let base = SkelConfig::default().with_tol(1e-6).with_max_rank(96).with_neighbors(8);
    let st_exact = skeletonize(tree.clone(), &kernel, base.clone());
    let st_approx = skeletonize(tree, &kernel, base.with_approx_knn(6));
    let e_exact = kfds_askit::approx_error_estimate(&st_exact, &kernel, 1);
    let e_approx = kfds_askit::approx_error_estimate(&st_approx, &kernel, 1);
    assert!(e_approx < 20.0 * e_exact + 1e-6, "approx {e_approx} vs exact {e_exact}");
    let ft = factorize(&st_approx, &kernel, SolverConfig::default().with_lambda(0.5)).expect("f");
    let b = rand_vec(512, 63);
    let mut x = b.clone();
    ft.solve_in_place(&mut x).expect("solve");
    let applied = hier_matvec(&st_approx, &kernel, 0.5, &x);
    assert!(rel_err(&applied, &b) < 1e-8);
}

#[test]
fn lambda_sweep_shares_skeletons() {
    let (pts, labels) = two_class_annulus(500, 3, 19);
    let train = pts.select(&(0..400).collect::<Vec<_>>());
    let valid = pts.select(&(400..500).collect::<Vec<_>>());
    let kernel = Gaussian::new(0.5);
    let tree = BallTree::build(&train, 32);
    let st = skeletonize(
        tree,
        &kernel,
        SkelConfig::default().with_tol(1e-6).with_max_rank(96).with_neighbors(8),
    );
    let y_perm = st.tree().permute_vec(&labels[..400]);
    let entries = crate::lambda_sweep(
        &st,
        &kernel,
        SolverConfig::default(),
        &[10.0, 0.1, 1e-3],
        &y_perm,
        Some((&valid, &labels[400..])),
    );
    assert_eq!(entries.len(), 3);
    for e in &entries {
        if !e.unstable {
            assert!(e.residual < 1e-6, "lambda {}: residual {}", e.lambda, e.residual);
        }
        assert!(e.accuracy.is_some());
    }
    // Small-λ models should fit the training data at least as well as
    // heavy regularization on this easy task.
    let acc_small = entries[2].accuracy.unwrap_or(0.0);
    assert!(acc_small > 0.8, "small-lambda accuracy {acc_small}");
}

#[test]
fn multiclass_one_vs_all() {
    // Three Gaussian blobs in 4-D, well separated.
    let n = 450;
    let mut data = Vec::with_capacity(n * 4);
    let mut labels = Vec::with_capacity(n);
    let mut state = 5u64;
    let mut rnd = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    };
    for i in 0..n {
        let c = i % 3;
        let center = [(c as f64) * 4.0, (c as f64) * -3.0, 0.0, (c as f64) * 2.0];
        for ck in center {
            data.push(ck + 0.5 * rnd());
        }
        labels.push(c);
    }
    let pts = kfds_tree::PointSet::from_col_major(4, data);
    let train = pts.select(&(0..360).collect::<Vec<_>>());
    let test = pts.select(&(360..n).collect::<Vec<_>>());
    let model = crate::KernelRidgeMulti::train(
        &train,
        &labels[..360],
        3,
        Gaussian::new(1.0),
        32,
        SkelConfig::default().with_tol(1e-6).with_max_rank(96).with_neighbors(8),
        SolverConfig::default().with_lambda(1e-2),
    )
    .expect("train");
    let acc = model.accuracy(&test, &labels[360..], 0.5);
    assert!(acc > 0.95, "multiclass accuracy {acc}");
}

#[test]
fn fast_prediction_matches_exact_prediction() {
    let (pts, labels) = two_class_annulus(400, 3, 33);
    let train = pts.select(&(0..320).collect::<Vec<_>>());
    let test = pts.select(&(320..400).collect::<Vec<_>>());
    let (model, _) = KernelRidge::train(
        &train,
        &labels[..320],
        Gaussian::new(0.5),
        32,
        SkelConfig::default().with_tol(1e-7).with_max_rank(128).with_neighbors(8),
        SolverConfig::default().with_lambda(1e-2),
    )
    .expect("train");
    let exact = model.predict(&test);
    let fast = model.predict_fast(&test, 0.4);
    for (e, f) in exact.iter().zip(&fast) {
        assert!((e - f).abs() < 1e-3 * (1.0 + e.abs()), "{e} vs {f}");
    }
}

#[test]
fn recompute_w_matches_stored_w() {
    // §III memory scheme: P̂ stored only at leaves, internal applications
    // telescoped through eq. (10). Must agree with the stored scheme to
    // roundoff and retain strictly less memory.
    let (st, kernel) = fixture(1, 1e-5);
    let b = rand_vec(512, 81);
    let stored_cfg = SolverConfig::default().with_lambda(0.9);
    let rec_cfg = stored_cfg.with_w_storage(crate::config::WStorage::Recompute);
    let ft_s = factorize(&st, &kernel, stored_cfg).expect("stored");
    let ft_r = factorize(&st, &kernel, rec_cfg).expect("recompute");
    let mut x1 = b.clone();
    let mut x2 = b.clone();
    ft_s.solve_in_place(&mut x1).expect("solve stored");
    ft_r.solve_in_place(&mut x2).expect("solve recompute");
    assert!(rel_err(&x1, &x2) < 1e-10, "recompute-W solution differs");
    assert!(
        ft_r.stats().stored_bytes < ft_s.stats().stored_bytes,
        "recompute-W should retain less: {} vs {}",
        ft_r.stats().stored_bytes,
        ft_s.stats().stored_bytes
    );
    // Multi-RHS path exercises apply_p_hat_mat.
    let mut bm = kfds_la::Mat::zeros(512, 2);
    bm.col_mut(0).copy_from_slice(&b);
    bm.col_mut(1).copy_from_slice(&rand_vec(512, 82));
    let bm0 = bm.clone();
    ft_r.solve_mat_in_place(&mut bm).expect("solve mat");
    let mut c0 = bm0.col(0).to_vec();
    ft_s.solve_in_place(&mut c0).expect("s");
    assert!(rel_err(bm.col(0), &c0) < 1e-10);
}

#[test]
fn recompute_w_hybrid_and_leveldirect() {
    let (st, kernel) = fixture(3, 1e-5);
    let b = rand_vec(512, 91);
    let lambda = 0.7;
    let rec_cfg = SolverConfig::default()
        .with_lambda(lambda)
        .with_w_storage(crate::config::WStorage::Recompute);
    let ft = factorize(&st, &kernel, rec_cfg).expect("recompute partial");
    let hy = HybridSolver::new(&ft).expect("hybrid");
    let opts = GmresOptions { tol: 1e-12, max_iters: 400, ..Default::default() };
    let out = hy.solve(&b, &opts).expect("hybrid solve");
    let applied = hier_matvec(&st, &kernel, lambda, &out.x);
    assert!(rel_err(&applied, &b) < 1e-8, "recompute-W hybrid residual");
    let direct = crate::LevelRestrictedDirect::new(&ft).expect("direct");
    let xd = direct.solve(&b);
    assert!(rel_err(&xd, &out.x) < 1e-8, "recompute-W leveldirect mismatch");
}

#[test]
fn factorization_preconditions_exact_operator() {
    // A *loose* factorization of K̃ preconditions GMRES on the exact
    // λI + K: the preconditioned solve must converge in far fewer
    // iterations than the unpreconditioned one and give an exact-operator
    // residual at the Krylov tolerance (better than K̃'s approximation).
    let pts = normal_embedded(384, 2, 6, 0.05, 51);
    let tree = BallTree::build(&pts, 32);
    let kernel = Gaussian::new(1.5);
    let st = skeletonize(
        tree,
        &kernel,
        SkelConfig::default().with_tol(1e-3).with_max_rank(48).with_neighbors(8),
    );
    let lambda = 0.05;
    let ft = factorize(&st, &kernel, SolverConfig::default().with_lambda(lambda)).expect("f");
    let b = rand_vec(384, 71);
    let opts = GmresOptions { tol: 1e-10, max_iters: 300, ..Default::default() };

    let pre = crate::solve_exact_preconditioned(&ft, &b, &opts).expect("preconditioned");
    assert!(pre.converged, "residual {}", pre.residual);

    // Unpreconditioned reference on the same exact operator.
    let op = kfds_krylov::FnOp::new(384, |x: &[f64], y: &mut [f64]| {
        y.copy_from_slice(&kfds_askit::exact_matvec(&st, &kernel, lambda, x));
    });
    let plain = kfds_krylov::gmres(&op, &b, None, &opts);
    assert!(
        pre.iters < plain.iters,
        "preconditioning should cut iterations: {} vs {}",
        pre.iters,
        plain.iters
    );
    // True residual against the exact operator.
    let applied = kfds_askit::exact_matvec(&st, &kernel, lambda, &pre.x);
    assert!(rel_err(&applied, &b) < 1e-8);
}

#[test]
fn cholesky_leaf_matches_lu_leaf() {
    let (st, kernel) = fixture(1, 1e-5);
    let b = rand_vec(512, 61);
    let lu_cfg = SolverConfig::default().with_lambda(0.5);
    let ch_cfg = lu_cfg.with_leaf(crate::config::LeafFactorization::Cholesky);
    let ft_lu = factorize(&st, &kernel, lu_cfg).expect("lu");
    let ft_ch = factorize(&st, &kernel, ch_cfg).expect("cholesky");
    let mut x1 = b.clone();
    let mut x2 = b.clone();
    ft_lu.solve_in_place(&mut x1).expect("solve");
    ft_ch.solve_in_place(&mut x2).expect("solve");
    assert!(rel_err(&x1, &x2) < 1e-9, "cholesky leaves disagree with LU");
    // Cholesky leaves cost half the factorization flops at the leaves.
    assert!(ft_ch.stats().flops < ft_lu.stats().flops);
}

#[test]
fn cholesky_detects_indefiniteness() {
    // Flat kernel + tiny λ: the compressed leaf blocks are numerically
    // semidefinite; Cholesky must refuse (or flag) rather than produce a
    // garbage factorization.
    let pts = normal_embedded(256, 2, 4, 0.05, 3);
    let tree = BallTree::build(&pts, 32);
    let kernel = Gaussian::new(50.0);
    let st = skeletonize(
        tree,
        &kernel,
        SkelConfig::default().with_tol(1e-7).with_max_rank(64).with_neighbors(8),
    );
    let cfg = SolverConfig::default()
        .with_lambda(1e-16)
        .with_leaf(crate::config::LeafFactorization::Cholesky);
    match factorize(&st, &kernel, cfg) {
        Err(crate::SolverError::Factorization { .. }) => {}
        Ok(f) => assert!(f.stats().is_unstable()),
        Err(other) => panic!("unexpected error {other}"),
    }
}

#[test]
fn hybrid_reports_nonconvergence_honestly() {
    let (st, kernel) = fixture(3, 1e-5);
    let ft = factorize(&st, &kernel, SolverConfig::default().with_lambda(0.5)).expect("f");
    let hy = HybridSolver::new(&ft).expect("hybrid");
    let b = rand_vec(512, 31);
    let opts = GmresOptions { tol: 1e-14, max_iters: 2, ..Default::default() };
    let out = hy.solve(&b, &opts).expect("solve returns even when unconverged");
    assert!(!out.gmres.converged);
    assert_eq!(out.gmres.iters, 2);
    assert!(out.gmres.residual > 1e-14);
}

#[test]
fn adaptive_frontier_pipeline() {
    // With adaptive frontier on a poorly compressible configuration the
    // skeletonization stops early; the hybrid solver must still invert
    // the resulting operator. Uniform points in the full ambient
    // dimension with a moderate bandwidth compress badly near the root.
    let pts = kfds_tree::datasets::uniform_cube(512, 6, 13);
    let tree = BallTree::build(&pts, 32);
    let kernel = Gaussian::new(0.8);
    let cfg = SkelConfig::default()
        .with_tol(1e-6)
        .with_max_rank(48)
        .with_neighbors(8)
        .with_adaptive_frontier(true);
    let st = skeletonize(tree, &kernel, cfg);
    let lambda = 1.0;
    let ft = factorize(&st, &kernel, SolverConfig::default().with_lambda(lambda)).expect("f");
    let b = rand_vec(512, 77);
    if st.is_fully_skeletonized() {
        // Compression happened to succeed everywhere: direct solve path.
        let mut x = b.clone();
        ft.solve_in_place(&mut x).expect("direct");
        let applied = hier_matvec(&st, &kernel, lambda, &x);
        assert!(rel_err(&applied, &b) < 1e-8);
    } else {
        let hy = HybridSolver::new(&ft).expect("hybrid");
        let opts = GmresOptions { tol: 1e-11, max_iters: 400, ..Default::default() };
        let out = hy.solve(&b, &opts).expect("hybrid");
        let applied = hier_matvec(&st, &kernel, lambda, &out.x);
        assert!(rel_err(&applied, &b) < 1e-7, "adaptive-frontier hybrid residual");
    }
}

#[test]
fn matern_and_polynomial_kernels_factorize() {
    let pts = normal_embedded(256, 2, 6, 0.05, 21);
    let tree = BallTree::build(&pts, 32);
    {
        let kernel = kfds_kernels::Matern32::new(1.5);
        let st = skeletonize(
            tree.clone(),
            &kernel,
            SkelConfig::default().with_tol(1e-6).with_max_rank(96).with_neighbors(8),
        );
        let ft = factorize(&st, &kernel, SolverConfig::default().with_lambda(0.4)).expect("f");
        let b = rand_vec(256, 9);
        let mut x = b.clone();
        ft.solve_in_place(&mut x).expect("solve");
        let applied = hier_matvec(&st, &kernel, 0.4, &x);
        assert!(rel_err(&applied, &b) < 1e-8, "matern");
    }
    {
        // Low-degree polynomial kernel: globally low rank, trivially
        // hierarchical; λ keeps the system well posed.
        let kernel = kfds_kernels::Polynomial::new(0.5, 1.0, 2);
        let st = skeletonize(
            tree,
            &kernel,
            SkelConfig::default().with_tol(1e-8).with_max_rank(96).with_neighbors(8),
        );
        let ft = factorize(&st, &kernel, SolverConfig::default().with_lambda(2.0)).expect("f");
        let b = rand_vec(256, 10);
        let mut x = b.clone();
        ft.solve_in_place(&mut x).expect("solve");
        let applied = hier_matvec(&st, &kernel, 2.0, &x);
        assert!(rel_err(&applied, &b) < 1e-7, "polynomial");
    }
}

#[test]
fn condition_estimate_sane() {
    let (st, kernel) = fixture(1, 1e-6);
    let lambda = 1.0;
    let ft = factorize(&st, &kernel, SolverConfig::default().with_lambda(lambda)).expect("f");
    let est = estimate_condition(&ft, 60);
    assert!(est.kappa() >= 1.0 - 1e-6, "kappa {}", est.kappa());
    assert!(est.kappa().is_finite());
    // λI + K with PSD-ish K and λ = 1: σ_min >= λ (approximately), so
    // 1/σ_min <= ~1/λ.
    assert!(est.inv_sigma_min < 2.0 / lambda, "inv sigma min {}", est.inv_sigma_min);
}

#[test]
fn factor_stats_populated() {
    let (st, kernel) = fixture(1, 1e-5);
    let ft = factorize(&st, &kernel, SolverConfig::default()).expect("f");
    let s = ft.stats();
    assert!(s.flops > 0.0);
    assert!(s.stored_bytes > 0);
    assert!(s.max_rank > 0);
    assert!(s.seconds > 0.0);
    assert!(s.min_pivot_ratio > 0.0 && s.min_pivot_ratio <= 1.0);
}

#[test]
fn works_with_other_kernels() {
    let pts = normal_embedded(256, 2, 6, 0.05, 77);
    let tree = BallTree::build(&pts, 32);
    let kernel = kfds_kernels::Laplacian::new(2.0);
    let st = skeletonize(
        tree,
        &kernel,
        SkelConfig::default().with_tol(1e-5).with_max_rank(96).with_neighbors(8),
    );
    let lambda = 0.5;
    let ft = factorize(&st, &kernel, SolverConfig::default().with_lambda(lambda)).expect("f");
    let b = rand_vec(256, 5);
    let mut x = b.clone();
    ft.solve_in_place(&mut x).expect("solve");
    let applied = hier_matvec(&st, &kernel, lambda, &x);
    let err = rel_err(&applied, &b);
    // The Laplacian operator at this size leaves this residual near 1e-8
    // (scalar path ~9.9e-9); the SIMD kernels' FMA/reassociation shifts it
    // by a few percent, so the bound carries a small margin over 1e-8.
    assert!(err < 3e-8, "rel err {err:.3e}");
}

#[test]
fn rhs_norm_preserved_shape() {
    // Sanity: solving then applying the operator is the identity on
    // random vectors of very different scales.
    let (st, kernel) = fixture(1, 1e-5);
    let ft = factorize(&st, &kernel, SolverConfig::default().with_lambda(2.0)).expect("f");
    for scale in [1e-8, 1.0, 1e8] {
        let mut b = rand_vec(512, 3);
        for v in &mut b {
            *v *= scale;
        }
        let mut x = b.clone();
        ft.solve_in_place(&mut x).expect("solve");
        let applied = hier_matvec(&st, &kernel, 2.0, &x);
        assert!(rel_err(&applied, &b) < 1e-9, "scale {scale}");
        assert!(nrm2(&x) > 0.0);
    }
}

mod refactor {
    //! λ-sweep refactorization: the blocked path must be bitwise
    //! identical to a fresh `factorize` under `StoredGemv`, across
    //! successes *and* failures, and the sweep consumers must agree
    //! between the refactor and legacy paths.

    use super::*;
    use crate::assemble::assemble_blocks;
    use crate::config::LeafFactorization;
    use crate::factor::{factorize_with_blocks, FactorTree};
    use crate::gp::GaussianProcess;
    use kfds_kernels::Kernel;
    use proptest::prelude::*;
    use std::sync::Arc;

    fn solve_bits<K: Kernel>(ft: &FactorTree<'_, K>, b: &[f64]) -> Vec<u64> {
        let mut x = b.to_vec();
        ft.solve_in_place(&mut x).expect("solve");
        x.iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn blocked_factorize_is_bitwise_fresh_stored_gemv() {
        let (st, kernel) = fixture(1, 1e-5);
        let blocks = Arc::new(assemble_blocks(&st, &kernel));
        assert!(blocks.stats().bytes > 0 && blocks.stats().kernel_flops > 0.0);
        let b = rand_vec(512, 23);
        let base = SolverConfig::default().with_storage(StorageMode::StoredGemv);
        for lambda in [1e-3, 0.1, 0.5, 10.0] {
            let fresh = factorize(&st, &kernel, base.with_lambda(lambda)).expect("fresh");
            let blocked =
                factorize_with_blocks(&st, &kernel, Arc::clone(&blocks), base.with_lambda(lambda))
                    .expect("blocked");
            assert_eq!(
                solve_bits(&fresh, &b),
                solve_bits(&blocked, &b),
                "lambda {lambda}: blocked solve must be bitwise fresh-StoredGemv"
            );
            assert_eq!(
                fresh.log_det().expect("ld").to_bits(),
                blocked.log_det().expect("ld").to_bits(),
                "lambda {lambda}: log det must match bitwise"
            );
        }
    }

    #[test]
    fn blocked_factorize_normalizes_storage_mode() {
        // A Gsks-base config routed through the blocked path must come out
        // StoredGemv (the cached blocks ARE the stored V blocks).
        let (st, kernel) = fixture(1, 1e-5);
        let blocks = Arc::new(assemble_blocks(&st, &kernel));
        let ft =
            factorize_with_blocks(&st, &kernel, blocks, SolverConfig::default()).expect("blocked");
        assert_eq!(ft.config().storage, StorageMode::StoredGemv);
    }

    #[test]
    fn refactor_chains_without_reassembly() {
        let (st, kernel) = fixture(1, 1e-5);
        let b = rand_vec(512, 29);
        // Start from a legacy (Gsks-storage, block-less) tree: the first
        // refactor assembles, the second reuses the same store.
        let ft = factorize(&st, &kernel, SolverConfig::default().with_lambda(0.5)).expect("f");
        assert!(ft.assembled_blocks().is_none());
        let r1 = ft.refactor(0.05).expect("refactor 1");
        let r2 = r1.refactor(2.0).expect("refactor 2");
        let b1 = r1.assembled_blocks().expect("r1 carries blocks");
        let b2 = r2.assembled_blocks().expect("r2 carries blocks");
        assert!(Arc::ptr_eq(b1, b2), "chained refactor must reuse the assembly");
        // Each refactor is bitwise a fresh StoredGemv factorize at its λ.
        for (rf, lambda) in [(&r1, 0.05), (&r2, 2.0)] {
            let fresh = factorize(
                &st,
                &kernel,
                SolverConfig::default().with_storage(StorageMode::StoredGemv).with_lambda(lambda),
            )
            .expect("fresh");
            assert_eq!(solve_bits(&fresh, &b), solve_bits(rf, &b), "lambda {lambda}");
        }
        // Zero kernel-eval flops on the refactor path: all the eval work
        // is attributed to AssembleStats, so the LA-only flop count must
        // be well below the fresh factorize's (which counts evaluation).
        let fresh_gsks =
            factorize(&st, &kernel, SolverConfig::default().with_lambda(0.05)).expect("f");
        assert!(
            r1.stats().flops < fresh_gsks.stats().flops,
            "refactor flops {} must exclude kernel evaluation (fresh {})",
            r1.stats().flops,
            fresh_gsks.stats().flops
        );
    }

    #[test]
    fn blocked_path_agrees_on_failure() {
        // λ far below -||K||: the shifted leaf blocks go negative
        // definite and Cholesky must refuse on both paths.
        let (st, kernel) = fixture(1, 1e-5);
        let blocks = Arc::new(assemble_blocks(&st, &kernel));
        let cfg = SolverConfig::default()
            .with_storage(StorageMode::StoredGemv)
            .with_leaf(LeafFactorization::Cholesky)
            .with_lambda(-1e3);
        let fresh = factorize(&st, &kernel, cfg);
        let blocked = factorize_with_blocks(&st, &kernel, blocks, cfg);
        assert!(fresh.is_err(), "fresh path must fail at this λ");
        assert!(blocked.is_err(), "blocked path must fail at this λ");
    }

    #[test]
    fn lambda_sweep_refactor_matches_legacy_bitwise() {
        let (pts, labels) = two_class_annulus(400, 3, 77);
        let train = pts.select(&(0..320).collect::<Vec<_>>());
        let valid = pts.select(&(320..400).collect::<Vec<_>>());
        let kernel = Gaussian::new(0.5);
        let tree = BallTree::build(&train, 32);
        let st = skeletonize(
            tree,
            &kernel,
            SkelConfig::default().with_tol(1e-6).with_max_rank(96).with_neighbors(8),
        );
        let y_perm = st.tree().permute_vec(&labels[..320]);
        // A StoredGemv + Cholesky base makes both paths take identical
        // code per λ, and the negative λ fails on both.
        let base = SolverConfig::default()
            .with_storage(StorageMode::StoredGemv)
            .with_leaf(LeafFactorization::Cholesky);
        let lambdas = [10.0, 0.1, -1e3, 1e-3];
        let on = crate::crossval::lambda_sweep_impl(
            &st,
            &kernel,
            base,
            &lambdas,
            &y_perm,
            Some((&valid, &labels[320..])),
            true,
        );
        let off = crate::crossval::lambda_sweep_impl(
            &st,
            &kernel,
            base,
            &lambdas,
            &y_perm,
            Some((&valid, &labels[320..])),
            false,
        );
        assert_eq!(on.len(), off.len());
        for (a, b) in on.iter().zip(&off) {
            assert_eq!(a.lambda, b.lambda);
            assert_eq!(a.failed, b.failed, "lambda {}", a.lambda);
            assert_eq!(a.unstable, b.unstable, "lambda {}", a.lambda);
            assert_eq!(
                a.residual.to_bits(),
                b.residual.to_bits(),
                "lambda {}: refactor-path residual must be bitwise legacy",
                a.lambda
            );
            assert_eq!(
                a.accuracy.map(f64::to_bits),
                b.accuracy.map(f64::to_bits),
                "lambda {}",
                a.lambda
            );
        }
        // The failed entry reports honest timing and the distinct marker.
        let failed: Vec<_> = on.iter().filter(|e| e.failed).collect();
        assert_eq!(failed.len(), 1, "exactly the negative λ fails");
        assert_eq!(failed[0].lambda, -1e3);
        assert!(failed[0].factor_seconds > 0.0, "failed λ must report elapsed time, not 0.0");
        assert!(failed[0].unstable && failed[0].residual.is_nan());
        // Completed entries are unfailed regardless of stability flags.
        assert!(on.iter().filter(|e| !e.failed).all(|e| e.factor_seconds > 0.0));
    }

    #[test]
    fn grid_search_hoisted_tree_matches_per_h_rebuild() {
        // The hoisted (one tree + one kNN for the whole grid) search must
        // pick the same (h, λ, accuracy) as the legacy shape that rebuilt
        // the tree per h — tree build and kNN are pure geometry.
        let (pts, labels) = two_class_annulus(400, 3, 5);
        let train = pts.select(&(0..320).collect::<Vec<_>>());
        let valid = pts.select(&(320..400).collect::<Vec<_>>());
        let hs = [0.3, 0.6, 1.2];
        let lambdas = [1.0, 1e-2];
        let skel = SkelConfig::default().with_tol(1e-6).with_max_rank(96).with_neighbors(8);
        let got = crate::grid_search_gaussian(
            &train,
            &labels[..320],
            &valid,
            &labels[320..],
            &hs,
            &lambdas,
            32,
            skel.clone(),
        );
        // Reference: the pre-hoist loop shape.
        let mut want: Option<(f64, f64, f64)> = None;
        for &h in &hs {
            let kernel = Gaussian::new(h);
            let tree = BallTree::build(&train, 32);
            let st = skeletonize(tree, &kernel, skel.clone());
            let y_perm = st.tree().permute_vec(&labels[..320]);
            let entries = crate::lambda_sweep(
                &st,
                &kernel,
                SolverConfig::default(),
                &lambdas,
                &y_perm,
                Some((&valid, &labels[320..])),
            );
            for e in entries {
                let acc = e.accuracy.unwrap_or(0.0);
                if !e.unstable && want.map(|(_, _, a)| acc > a).unwrap_or(true) {
                    want = Some((h, e.lambda, acc));
                }
            }
        }
        let (gh, gl, ga) = got.expect("grid search finds a best");
        let (wh, wl, wa) = want.expect("reference finds a best");
        assert_eq!((gh, gl), (wh, wl), "hoisted grid must pick the same (h, λ)");
        assert_eq!(ga.to_bits(), wa.to_bits(), "same best accuracy bitwise");
        assert!(ga > 0.8, "annulus accuracy {ga}");
    }

    #[test]
    fn gp_noise_grid_shares_one_assembly() {
        let pts = normal_embedded(256, 2, 5, 0.05, 71);
        let tree = BallTree::build(&pts, 32);
        let kernel = Gaussian::new(1.5);
        let st = skeletonize(
            tree,
            &kernel,
            SkelConfig::default().with_tol(1e-10).with_max_rank(160).with_neighbors(12),
        );
        let y: Vec<f64> = (0..256).map(|i| (i as f64 * 0.05).sin()).collect();
        let grid = [1e-3, 0.05, 0.5, 5.0];
        let (gp_on, curve_on) =
            GaussianProcess::fit_best_noise_impl(&st, &kernel, &grid, &y, true).expect("on");
        let (gp_off, curve_off) =
            GaussianProcess::fit_best_noise_impl(&st, &kernel, &grid, &y, false).expect("off");
        assert_eq!(curve_on.len(), 4);
        assert!(curve_on.iter().all(|e| !e.failed && e.factor_seconds > 0.0));
        // Both paths pick the same model; LMLs agree to storage-mode
        // reassociation tolerance (off runs the Gsks default).
        assert_eq!(gp_on.noise_variance(), gp_off.noise_variance());
        for (a, b) in curve_on.iter().zip(&curve_off) {
            let scale = b.log_marginal.abs().max(1.0);
            assert!(
                (a.log_marginal - b.log_marginal).abs() < 1e-6 * scale,
                "noise {}: {} vs {}",
                a.noise2,
                a.log_marginal,
                b.log_marginal
            );
        }
        // The selected noise maximizes the curve.
        let best = curve_on
            .iter()
            .max_by(|a, b| a.log_marginal.partial_cmp(&b.log_marginal).expect("no NaN"))
            .expect("non-empty");
        assert_eq!(best.noise2, gp_on.noise_variance());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Random geometry, leaf size, and λ grid: `refactor(λ)` must be
        /// bitwise a fresh StoredGemv factorize at every λ.
        #[test]
        fn prop_refactor_bitwise(
            seed in 0u64..1000,
            leaf in 16usize..48,
            lambdas in proptest::collection::vec(-2.0f64..4.0, 1..4),
        ) {
            let pts = normal_embedded(160, 2, 5, 0.05, seed);
            let tree = BallTree::build(&pts, leaf);
            let kernel = Gaussian::new(1.0);
            let st = skeletonize(
                tree,
                &kernel,
                SkelConfig::default().with_tol(1e-7).with_max_rank(64).with_neighbors(8),
            );
            let blocks = Arc::new(assemble_blocks(&st, &kernel));
            let b = rand_vec(160, seed | 1);
            let base = SolverConfig::default().with_storage(StorageMode::StoredGemv);
            for &raw in &lambdas {
                // 10^raw spans strongly- to weakly-regularized regimes.
                let lambda = 10f64.powf(raw);
                let cfg = base.with_lambda(lambda);
                let fresh = factorize(&st, &kernel, cfg);
                let blocked = factorize_with_blocks(&st, &kernel, Arc::clone(&blocks), cfg);
                match (fresh, blocked) {
                    (Ok(f), Ok(bl)) => {
                        prop_assert_eq!(solve_bits(&f, &b), solve_bits(&bl, &b));
                    }
                    (Err(_), Err(_)) => {}
                    (f, bl) => {
                        prop_assert!(
                            false,
                            "paths disagree at λ={}: fresh ok={} blocked ok={}",
                            lambda, f.is_ok(), bl.is_ok()
                        );
                    }
                }
            }
        }
    }
}
