//! Solver error types.

use std::fmt;

/// Failure modes of the direct solver.
#[derive(Clone, Debug)]
pub enum SolverError {
    /// A diagonal or reduced-system LU hit an exactly-singular pivot at
    /// tree node `node` — the hard form of the §III instability (λ too
    /// small for the spectrum of the block).
    Factorization {
        /// Tree node whose block failed to factorize.
        node: usize,
        /// Underlying dense-LA error.
        source: kfds_la::LaError,
    },
    /// The operation requires a fully skeletonized tree (no level
    /// restriction), but node `node` has no skeleton.
    NotSkeletonized {
        /// Offending tree node.
        node: usize,
    },
    /// The hybrid solver requires every leaf to lie inside the
    /// skeletonization frontier.
    FrontierIncomplete,
    /// The factorization cannot be partitioned into rank-owned subtree
    /// shards (wrong shard count for the tree shape, incomplete
    /// factorization, or a non-contiguous cut).
    Partition {
        /// Human-readable validation failure.
        reason: String,
    },
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::Factorization { node, source } => {
                write!(f, "factorization failed at tree node {node}: {source}")
            }
            SolverError::NotSkeletonized { node } => {
                write!(f, "tree node {node} is not skeletonized (level restriction in effect?)")
            }
            SolverError::FrontierIncomplete => {
                write!(f, "skeletonization frontier does not cover all leaves")
            }
            SolverError::Partition { reason } => {
                write!(f, "factorization cannot be partitioned: {reason}")
            }
        }
    }
}

impl std::error::Error for SolverError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SolverError::Factorization { source, .. } => Some(source),
            _ => None,
        }
    }
}
