//! Distributed-memory factorization and solve — Algorithms II.4/II.5.
//!
//! Each of `p` ranks (powers of two) owns the subtree rooted at its node
//! of level `log₂ p` and factorizes it independently; the `log₂ p` levels
//! above are *distributed*: the reduced systems `Z_α` live on the local
//! rank `{0}` of each node's communicator, skeleton ids are exchanged
//! between `{0}` and `{q/2}` and broadcast within each half, partial
//! products `K_{r̃{x}} P̂_{{x}l̃}` are computed rank-locally over owned
//! points `{x}` and reduced (paper Fig. 1), and the telescoped `P̂_{αα̃}`
//! is stored as a row slice per rank.
//!
//! Ranks here are threads of the simulated runtime ([`kfds_rt`]); the
//! communication structure (splits, send/recv pairs, reductions,
//! broadcasts) is exactly the paper's — see `DESIGN.md` for the
//! substitution rationale. Point coordinates and skeleton projections are
//! read from the shared [`SkeletonTree`]; everything derived during
//! factorization flows through messages.

use crate::config::SolverConfig;
use crate::error::SolverError;
use crate::factor::{factor_subtree, FactorTree};
use kfds_askit::SkeletonTree;
use kfds_kernels::{sum_fused, sum_fused_multi, Kernel};
use kfds_la::{gemm, Lu, Mat, Trans};
use kfds_rt::{Comm, World};
use std::time::Instant;

/// Message tags for the distributed factorization/solve.
mod tag {
    use kfds_rt::tags;
    pub const SKEL_EXCHANGE: u32 = tags::DIST_FACTOR.tag(0);
    pub const B_BLOCK: u32 = tags::DIST_FACTOR.tag(1);
    pub const M_BLOCK: u32 = tags::DIST_FACTOR.tag(2);
    pub const Y_TOP: u32 = tags::DIST_SOLVE.tag(0);
    pub const Z_BOT: u32 = tags::DIST_SOLVE.tag(1);
}

/// Per-rank state of one distributed tree level (node `α`).
struct DistLevel {
    /// `true` if this rank sits in the lower half (child `l`).
    lower: bool,
    /// Communicator of node `α` (`q` ranks).
    parent_comm: Comm,
    /// Communicator of this rank's half (`q/2` ranks).
    half_comm: Comm,
    /// Skeleton ids of the left child (received/broadcast).
    skel_l: Vec<usize>,
    /// Skeleton ids of the right child.
    skel_r: Vec<usize>,
    /// Row slice of the child's `P̂` over this rank's points
    /// (`|{x}| x s_c`) — the `W` rows used in the solve correction.
    phat_child: Mat,
    /// LU of `Z_α`; present on the parent communicator's rank 0 only.
    z_lu: Option<Lu>,
}

/// Everything one rank holds after the distributed factorization.
struct RankState<'a, K: Kernel> {
    /// Tree node (at level `log₂ p`) whose subtree this rank owns.
    subtree_root: usize,
    /// Owned point range (permuted positions).
    range: std::ops::Range<usize>,
    /// Local factorization of the owned subtree.
    local: FactorTree<'a, K>,
    /// Distributed levels, deepest first (root last).
    levels: Vec<DistLevel>,
}

/// A distributed factorization of `λI + K̃` across `p` simulated ranks.
pub struct DistSolver<'a, K: Kernel> {
    st: &'a SkeletonTree,
    p: usize,
    ranks: Vec<RankState<'a, K>>,
    factor_seconds: f64,
}

/// Runs the distributed factorization (Algorithm II.4).
///
/// Requirements: `p` is a power of two and the tree is complete down to
/// level `log₂ p` (every level-`log₂ p` node exists), with a fully
/// skeletonized tree (no level restriction).
///
/// # Panics
/// Panics if `p` is not a power of two or exceeds the nodes available at
/// its level.
pub fn dist_factorize<'a, K: Kernel>(
    st: &'a SkeletonTree,
    kernel: &'a K,
    config: SolverConfig,
    p: usize,
) -> Result<DistSolver<'a, K>, SolverError> {
    assert!(p.is_power_of_two(), "rank count must be a power of two");
    let tree = st.tree();
    let lp = p.trailing_zeros() as usize;
    let level_nodes = tree.nodes_at_level(lp);
    assert_eq!(
        level_nodes.len(),
        p,
        "tree has {} nodes at level {lp}, need exactly {p}",
        level_nodes.len()
    );
    let t0 = Instant::now();
    let results: Vec<Result<RankState<'a, K>, SolverError>> = World::run(p, |comm: Comm| {
        let my_node = tree.nodes_at_level(lp)[comm.rank()];
        dist_factor_rank(st, kernel, &config, comm, my_node, lp)
    });
    let mut ranks = Vec::with_capacity(p);
    for r in results {
        ranks.push(r?);
    }
    Ok(DistSolver { st, p, ranks, factor_seconds: t0.elapsed().as_secs_f64() })
}

fn dist_factor_rank<'a, K: Kernel>(
    st: &'a SkeletonTree,
    kernel: &'a K,
    config: &SolverConfig,
    world: Comm,
    my_node: usize,
    lp: usize,
) -> Result<RankState<'a, K>, SolverError> {
    let tree = st.tree();
    // Local phase: factorize the owned subtree (Algorithm II.2).
    let local = factor_subtree(st, kernel, *config, my_node)?;

    // Distributed phase: walk up from level lp to the root, splitting the
    // communicator at each level. We process levels bottom-up, so first
    // derive the communicator chain by splitting top-down.
    let mut comms = Vec::with_capacity(lp + 1);
    let mut c = world;
    comms.push(c.clone());
    for _ in 0..lp {
        c = c.split_half();
        comms.push(c.clone());
    }
    // comms[l] is the communicator of this rank's ancestor at level l.
    // Ancestor chain: my_node up to the root.
    let mut ancestors = Vec::with_capacity(lp + 1);
    let mut a = my_node;
    ancestors.push(a);
    while let Some(parent) = tree.node(a).parent {
        a = parent;
        ancestors.push(a);
    }
    assert_eq!(ancestors.len(), lp + 1, "tree must be complete to level log2(p)");

    // The rank's P̂ slice for its current child node, carried upward.
    // With p = 1 there are no distributed levels (and the root has no
    // skeleton/P̂): the local factorization is the whole factorization.
    let my_range = tree.node(my_node).range();
    if lp == 0 {
        return Ok(RankState { subtree_root: my_node, range: my_range, local, levels: Vec::new() });
    }
    let mut phat_child: Mat =
        local.factors()[my_node].p_hat.as_ref().expect("subtree root P-hat").clone();
    let mut levels = Vec::with_capacity(lp);

    for l in (0..lp).rev() {
        let node = ancestors[lp - l]; // ancestor at level l
        let parent_comm = comms[l].clone();
        let half_comm = comms[l + 1].clone();
        let q = parent_comm.size();
        let me = parent_comm.rank();
        let lower = me < q / 2;
        let (lc, rc) = tree.node(node).children.expect("distributed node is internal");

        // --- Skeleton exchange (Fig. 1): {0} <-> {q/2}, then Bcast. ---
        let mut skel_l: Vec<usize>;
        let mut skel_r: Vec<usize>;
        if me == 0 {
            skel_l = st.skeleton(lc).expect("child skeleton").skeleton.clone();
            parent_comm.send_usize(q / 2, tag::SKEL_EXCHANGE, &skel_l);
            skel_r = parent_comm.recv_usize(q / 2, tag::SKEL_EXCHANGE);
        } else if me == q / 2 {
            skel_r = st.skeleton(rc).expect("child skeleton").skeleton.clone();
            skel_l = parent_comm.recv_usize(0, tag::SKEL_EXCHANGE);
            parent_comm.send_usize(0, tag::SKEL_EXCHANGE, &skel_r);
        } else {
            skel_l = Vec::new();
            skel_r = Vec::new();
        }
        // Each half broadcasts the *other* child's skeleton it needs, and
        // its own child's skeleton for the solve phase.
        if lower {
            half_comm.bcast_usize(0, &mut skel_r);
            half_comm.bcast_usize(0, &mut skel_l);
        } else {
            half_comm.bcast_usize(0, &mut skel_l);
            half_comm.bcast_usize(0, &mut skel_r);
        }
        let (sl, sr) = (skel_l.len(), skel_r.len());

        // --- Partial coupling blocks over owned points {x}. ---
        // Lower: K_{r̃ {x}} P̂_{{x} l̃} (s_r x s_l); upper: K_{l̃ {x}} P̂_{{x} r̃}.
        let own_cols: Vec<usize> = my_range.clone().collect();
        let (rows, s_own, s_other) = if lower { (&skel_r, sl, sr) } else { (&skel_l, sr, sl) };
        let mut partial = Mat::zeros(s_other, s_own);
        if s_other > 0 && s_own > 0 {
            sum_fused_multi(
                kernel,
                tree.points(),
                rows,
                &own_cols,
                phat_child.rb(),
                partial.rb_mut(),
            );
        }
        // Reduce within the half; half-root holds the assembled block.
        let red = half_comm.reduce_sum(0, partial.as_slice());

        // --- Assemble and factorize Z on {0} (Algorithm II.4). ---
        let mut z_lu = None;
        let node_sk = st.skeleton(node);
        let s_node = node_sk.map(|s| s.rank()).unwrap_or(0);
        let mut m_block = Mat::zeros(0, 0); // M_c for the telescoping
        if me == 0 {
            let b_r = Mat::from_col_major(sr, sl, red.expect("half root reduction"));
            // B_l arrives from {q/2}.
            let b_l_data = parent_comm.recv_f64(q / 2, tag::B_BLOCK);
            let b_l = Mat::from_col_major(sl, sr, b_l_data);
            let zdim = sl + sr;
            let mut z = Mat::identity(zdim);
            for j in 0..sr {
                for i in 0..sl {
                    z[(i, sl + j)] = b_l[(i, j)];
                }
            }
            for j in 0..sl {
                for i in 0..sr {
                    z[(sl + i, j)] = b_r[(i, j)];
                }
            }
            let lu = Lu::factor(z).map_err(|e| SolverError::Factorization { node, source: e })?;
            // Telescoping data M_l, M_r (eq. 10), root level skips it.
            if let Some(sk) = node_sk {
                let pt = Mat::from_fn(zdim, s_node, |i, j| sk.proj[(j, i)]);
                let pt_top = pt.submatrix(0..sl, 0..s_node).to_mat();
                let pt_bot = pt.submatrix(sl..zdim, 0..s_node).to_mat();
                let mut cmat = Mat::zeros(zdim, s_node);
                gemm(
                    1.0,
                    b_l.rb(),
                    Trans::No,
                    pt_bot.rb(),
                    Trans::No,
                    0.0,
                    cmat.rb_mut().submatrix_mut(0..sl, 0..s_node),
                );
                gemm(
                    1.0,
                    b_r.rb(),
                    Trans::No,
                    pt_top.rb(),
                    Trans::No,
                    0.0,
                    cmat.rb_mut().submatrix_mut(sl..zdim, 0..s_node),
                );
                lu.solve_mat_inplace(&mut cmat);
                let mut m_l = pt_top;
                let mut m_r = pt_bot;
                for j in 0..s_node {
                    for i in 0..sl {
                        m_l[(i, j)] -= cmat[(i, j)];
                    }
                    for i in 0..sr {
                        m_r[(i, j)] -= cmat[(sl + i, j)];
                    }
                }
                parent_comm.send_f64(q / 2, tag::M_BLOCK, m_r.as_slice());
                m_block = m_l;
            }
            z_lu = Some(lu);
        } else if me == q / 2 {
            let b_l_partial = red.expect("half root reduction");
            parent_comm.send_f64(0, tag::B_BLOCK, &b_l_partial);
            if node_sk.is_some() {
                let m_r_data = parent_comm.recv_f64(0, tag::M_BLOCK);
                m_block = Mat::from_col_major(sr, s_node, m_r_data);
            }
        }
        // Broadcast M_c within each half and telescope the P̂ slice.
        if node_sk.is_some() {
            let mut m_data = m_block.as_slice().to_vec();
            half_comm.bcast_f64(0, &mut m_data);
            let s_c = if lower { sl } else { sr };
            let m_c = Mat::from_col_major(s_c, s_node, m_data);
            let mut phat_node = Mat::zeros(phat_child.nrows(), s_node);
            gemm(1.0, phat_child.rb(), Trans::No, m_c.rb(), Trans::No, 0.0, phat_node.rb_mut());
            levels.push(DistLevel {
                lower,
                parent_comm,
                half_comm,
                skel_l,
                skel_r,
                phat_child: std::mem::replace(&mut phat_child, phat_node),
                z_lu,
            });
        } else {
            // Root: no skeleton, no telescoping; the carried slice ends here.
            levels.push(DistLevel {
                lower,
                parent_comm,
                half_comm,
                skel_l,
                skel_r,
                phat_child: phat_child.clone(),
                z_lu,
            });
        }
    }

    Ok(RankState { subtree_root: my_node, range: my_range, local, levels })
}

impl<K: Kernel> DistSolver<'_, K> {
    /// Number of simulated ranks.
    pub fn ranks(&self) -> usize {
        self.p
    }

    /// Wall-clock seconds of the distributed factorization.
    pub fn factor_seconds(&self) -> f64 {
        self.factor_seconds
    }

    /// Solves `(λI + K̃) x = b` (`b` in the tree's permuted ordering) with
    /// the distributed solver (Algorithm II.5), all ranks in parallel.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.st.tree().points().len();
        assert_eq!(b.len(), n, "dist solve: rhs length mismatch");
        let slices: Vec<Vec<f64>> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(self.p);
            for rs in &self.ranks {
                let mut u = b[rs.range.clone()].to_vec();
                handles.push(scope.spawn(move || {
                    dist_solve_rank(rs, &mut u);
                    u
                }));
            }
            handles.into_iter().map(|h| h.join().expect("rank panicked")).collect()
        });
        let mut x = Vec::with_capacity(n);
        for s in slices {
            x.extend(s);
        }
        x
    }
}

/// Algorithm II.5 for one rank: local solve, then corrections through the
/// distributed levels (deepest first).
fn dist_solve_rank<K: Kernel>(rs: &RankState<'_, K>, u: &mut [f64]) {
    let st = rs.local.skeleton_tree();
    let tree = st.tree();
    let pts = tree.points();
    let kernel = rs.local.kernel();
    // Local D^{-1} on the owned subtree.
    rs.local.ctx().solve_node(rs.subtree_root, u);

    let own_cols: Vec<usize> = rs.range.clone().collect();
    for lvl in &rs.levels {
        let q = lvl.parent_comm.size();
        let me = lvl.parent_comm.rank();
        let (sl, sr) = (lvl.skel_l.len(), lvl.skel_r.len());
        if sl + sr == 0 {
            continue;
        }
        // Partial V apply over owned points: lower ranks contribute to
        // y_bot = K_{r̃ l} u_l, upper ranks to y_top = K_{l̃ r} u_r.
        let rows = if lvl.lower { &lvl.skel_r } else { &lvl.skel_l };
        let mut partial = vec![0.0; rows.len()];
        if !rows.is_empty() {
            sum_fused(kernel, pts, rows, &own_cols, u, &mut partial);
        }
        let red = lvl.half_comm.reduce_sum(0, &partial);

        // Assemble on {0}, solve Z, and scatter the correction weights.
        let mut z_c: Vec<f64>; // this rank's child block of Z^{-1} y
        if me == 0 {
            let y_bot = red.expect("half root");
            let y_top = lvl.parent_comm.recv_f64(q / 2, tag::Y_TOP);
            let mut y = y_top;
            y.extend(y_bot);
            lvl.z_lu.as_ref().expect("Z on rank 0").solve_inplace(&mut y);
            let (z_top, z_bot) = y.split_at(sl);
            lvl.parent_comm.send_f64(q / 2, tag::Z_BOT, z_bot);
            z_c = z_top.to_vec();
        } else if me == q / 2 {
            let y_top = red.expect("half root");
            lvl.parent_comm.send_f64(0, tag::Y_TOP, &y_top);
            z_c = lvl.parent_comm.recv_f64(0, tag::Z_BOT);
        } else {
            z_c = Vec::new();
        }
        lvl.half_comm.bcast_f64(0, &mut z_c);
        // u -= P̂_{x c̃} z_c (rows of W owned by this rank).
        if !z_c.is_empty() {
            kfds_la::blas2::gemv(-1.0, lvl.phat_child.rb(), &z_c, 1.0, u);
        }
    }
}
