//! The level-batched factorization engine (`KFDS_BATCH`).
//!
//! [`crate::factor`]'s reference path runs every node of a tree level as
//! an independent task inside one `par_iter`, each making its own small
//! kernel-evaluation / GEMM / LU / solve calls with per-call dispatch and
//! pool checkouts. This module executes the same level as a **planned
//! sequence of shape-grouped launches** (the Boukaram–Keyes H² execution
//! model):
//!
//! 1. one batched kernel-block launch per shape group materializes every
//!    leaf `K_αα` (or internal coupling block) of the level;
//! 2. dense factorizations are grouped by dimension and launched once per
//!    group;
//! 3. every GEMM and multi-RHS solve of the level is collected into a
//!    [`BatchPlan`] and executed group-by-group;
//! 4. the telescope scratch (`M_l`, `M_r`, `C`) for the whole level lives
//!    in two packed [`Arena`]s — one pool checkout per arena per level
//!    instead of three per node.
//!
//! **Bitwise contract:** batching changes scheduling, never arithmetic.
//! Every op runs the identical kernel on identical operands in the same
//! within-op accumulation order as the per-node path (the GEMM never
//! splits its accumulation dimension; solves are applied column-by-column
//! either way), and per-node cost accounting reuses the same expressions
//! in the same sequence — so factors *and* stats are bit-for-bit equal to
//! `KFDS_BATCH=off`. Property tests in `tests/batch_equiv.rs` enforce
//! this.

use crate::assemble::AssembledBlocks;
use crate::config::{SolverConfig, StorageMode, WStorage};
use crate::error::SolverError;
use crate::factor::{self, LeafFactor, NodeCost, NodeFactors, NodeResult};
use kfds_askit::SkeletonTree;
use kfds_kernels::{eval_blocks, flops, BlockSpec, Kernel};
use kfds_la::batch::{Arena, BatchPlan, FactorRef};
use kfds_la::{group_by_shape, workspace, Lu, Mat, MatRef, Trans};
use rayon::prelude::*;

/// Executes one level of the factorization with planned, shape-grouped
/// launches. Returns per-node results in `level_nodes` order plus the
/// number of grouped launches.
pub(crate) fn factor_level_batched<K: Kernel>(
    st: &SkeletonTree,
    kernel: &K,
    config: &SolverConfig,
    blocks: Option<&AssembledBlocks>,
    factors: &[NodeFactors],
    level_nodes: &[usize],
) -> (Vec<NodeResult>, usize) {
    let tree = st.tree();
    let mut out: Vec<Option<NodeResult>> = Vec::with_capacity(level_nodes.len());
    out.resize_with(level_nodes.len(), || None);
    let mut op_groups = 0usize;

    let leaf_pos: Vec<usize> =
        (0..level_nodes.len()).filter(|&p| tree.node(level_nodes[p]).children.is_none()).collect();
    let int_pos: Vec<usize> =
        (0..level_nodes.len()).filter(|&p| tree.node(level_nodes[p]).children.is_some()).collect();

    if !leaf_pos.is_empty() {
        op_groups += run_leaves(st, kernel, config, blocks, level_nodes, &leaf_pos, &mut out);
    }
    if !int_pos.is_empty() {
        op_groups +=
            run_internals(st, kernel, config, blocks, factors, level_nodes, &int_pos, &mut out);
    }
    (out.into_iter().map(|r| r.expect("every level node resolved")).collect(), op_groups)
}

fn leaf_ref(leaf: &LeafFactor) -> FactorRef<'_> {
    match leaf {
        LeafFactor::Lu(f) => FactorRef::Lu(f),
        LeafFactor::Cholesky(f) => FactorRef::Cholesky(f),
    }
}

struct LeafState {
    pos: usize,
    node: usize,
    m: usize,
    s: usize,
    leaf: Option<LeafFactor>,
    p: Option<Mat>,
    cost: NodeCost,
    err: Option<SolverError>,
}

/// Leaves of the level: batched `K_αα` materialization, grouped-by-size
/// factorization launches, and one [`BatchPlan`] for every `P̂` solve.
fn run_leaves<K: Kernel>(
    st: &SkeletonTree,
    kernel: &K,
    config: &SolverConfig,
    blocks: Option<&AssembledBlocks>,
    level_nodes: &[usize],
    leaf_pos: &[usize],
    out: &mut [Option<NodeResult>],
) -> usize {
    let tree = st.tree();
    let pts = tree.points();
    let d = pts.dim();
    let mut groups = 0usize;

    // Stage 1 — materialize every leaf's λ-independent K_αα: cached
    // pooled copies on the refactor path, one batched kernel launch per
    // shape group for the rest. Identical bits to per-node `leaf_kaa`.
    let mut kaas: Vec<Option<(Mat, f64)>> = Vec::with_capacity(leaf_pos.len());
    kaas.resize_with(leaf_pos.len(), || None);
    let mut fresh: Vec<usize> = Vec::with_capacity(leaf_pos.len());
    for (k, &pos) in leaf_pos.iter().enumerate() {
        let node = level_nodes[pos];
        match blocks.and_then(|b| b.node(node).kaa.as_ref()) {
            Some(cached) => kaas[k] = Some((workspace::mat_from_view(cached.rb()), 0.0)),
            None => fresh.push(k),
        }
    }
    if !fresh.is_empty() {
        let specs: Vec<BlockSpec<'_>> = fresh
            .iter()
            .map(|&k| BlockSpec::Symmetric { range: tree.node(level_nodes[leaf_pos[k]]).range() })
            .collect();
        let (mats, g) = eval_blocks(kernel, pts, &specs);
        groups += g;
        for (mat, &k) in mats.into_iter().zip(&fresh) {
            let m = mat.nrows();
            kaas[k] = Some((mat, flops::summation_flops(m, m, d, kernel.flops_per_eval())));
        }
    }

    // Stage 2 — λ shift + factorization + P̂ pack, one launch per
    // leaf-size group.
    let ms: Vec<usize> = leaf_pos.iter().map(|&pos| tree.node(level_nodes[pos]).len()).collect();
    let mut staged: Vec<Option<LeafState>> = Vec::with_capacity(leaf_pos.len());
    staged.resize_with(leaf_pos.len(), || None);
    for (_, idxs) in group_by_shape(&ms, |&m| m) {
        groups += 1;
        let items: Vec<(usize, Mat, f64)> = idxs
            .iter()
            .map(|&k| {
                let (kaa, ef) = kaas[k].take().expect("kaa materialized");
                (k, kaa, ef)
            })
            .collect();
        let done: Vec<(usize, LeafState)> = items
            .into_par_iter()
            .map(|(k, kaa, ef)| {
                let pos = leaf_pos[k];
                let node = level_nodes[pos];
                let m = kaa.nrows();
                let state = match factor::leaf_shift_factor(config, node, kaa, ef) {
                    Ok((leaf, cost)) => {
                        let (p, s) = match st.skeleton(node) {
                            Some(sk) => {
                                (Some(factor::pack_proj(&sk.proj, m, sk.rank())), sk.rank())
                            }
                            None => (None, 0),
                        };
                        LeafState { pos, node, m, s, leaf: Some(leaf), p, cost, err: None }
                    }
                    Err(e) => LeafState {
                        pos,
                        node,
                        m,
                        s: 0,
                        leaf: None,
                        p: None,
                        cost: NodeCost::default(),
                        err: Some(e),
                    },
                };
                (k, state)
            })
            .collect();
        for (k, state) in done {
            staged[k] = Some(state);
        }
    }
    let mut states: Vec<LeafState> = staged.into_iter().map(|s| s.expect("leaf staged")).collect();

    // Stage 3 — every P̂ solve of the level in one plan, grouped by
    // (size, rank, factor kind). Accounting mirrors the per-node order:
    // solve flops and P̂ bytes land after the factor cost.
    let mut plan = BatchPlan::new();
    for ls in states.iter_mut() {
        if let (Some(leaf), Some(p)) = (&ls.leaf, &mut ls.p) {
            plan.solve(leaf_ref(leaf), p.rb_mut());
        }
    }
    if !plan.is_empty() {
        groups += plan.execute();
    }
    for ls in &mut states {
        if ls.p.is_some() {
            ls.cost.flops += flops::lu_solve_flops(ls.m, ls.s);
            ls.cost.bytes += ls.m * ls.s * 8;
        }
    }

    for ls in states {
        let res = match ls.err {
            Some(e) => Err(e),
            None => {
                Ok((NodeFactors { leaf_lu: ls.leaf, p_hat: ls.p, ..Default::default() }, ls.cost))
            }
        };
        out[ls.pos] = Some((ls.node, res));
    }
    groups
}

#[allow(clippy::too_many_arguments)]
fn run_internals<K: Kernel>(
    st: &SkeletonTree,
    kernel: &K,
    config: &SolverConfig,
    blocks: Option<&AssembledBlocks>,
    factors: &[NodeFactors],
    level_nodes: &[usize],
    int_pos: &[usize],
    out: &mut [Option<NodeResult>],
) -> usize {
    if config.storage == StorageMode::StoredGemv {
        run_internals_stored(st, kernel, config, blocks, factors, level_nodes, int_pos, out)
    } else {
        run_internals_grouped(st, kernel, config, blocks, factors, level_nodes, int_pos, out)
    }
}

/// Matrix-free storage modes (RecomputeGemm / GSKS): the coupling blocks
/// are never materialized, so there is nothing to split into batched
/// stages — but the nodes still launch once per shape group instead of
/// one task each, keeping the summation kernels' dispatch shape-uniform.
#[allow(clippy::too_many_arguments)]
fn run_internals_grouped<K: Kernel>(
    st: &SkeletonTree,
    kernel: &K,
    config: &SolverConfig,
    blocks: Option<&AssembledBlocks>,
    factors: &[NodeFactors],
    level_nodes: &[usize],
    int_pos: &[usize],
    out: &mut [Option<NodeResult>],
) -> usize {
    let tree = st.tree();
    let mut groups = 0usize;
    struct Info {
        pos: usize,
        node: usize,
        l: usize,
        r: usize,
        key: (usize, usize, usize, usize, usize),
    }
    let infos: Vec<Info> = int_pos
        .iter()
        .map(|&pos| {
            let node = level_nodes[pos];
            let (l, r) = tree.node(node).children.expect("internal node");
            let sl = st.skeleton(l).expect("factorable node needs skeletonized children").rank();
            let sr = st.skeleton(r).expect("factorable node needs skeletonized children").rank();
            let (nl, nr) = (tree.node(l).len(), tree.node(r).len());
            // usize::MAX marks "no parent skeleton" (root reduced system),
            // distinct from a rank-0 skeleton.
            let s = st.skeleton(node).map_or(usize::MAX, |sk| sk.rank());
            Info { pos, node, l, r, key: (sl, sr, nl, nr, s) }
        })
        .collect();
    for (_, idxs) in group_by_shape(&infos, |i| i.key) {
        groups += 1;
        let done: Vec<NodeResult> = idxs
            .par_iter()
            .map(|&k| {
                let i = &infos[k];
                let p_hat_l = factors[i.l].p_hat.as_ref().expect("child P-hat missing");
                let p_hat_r = factors[i.r].p_hat.as_ref().expect("child P-hat missing");
                (
                    i.pos,
                    factor::factor_internal(
                        st, kernel, config, blocks, p_hat_l, p_hat_r, i.node, i.l, i.r,
                    ),
                )
            })
            .collect();
        for (pos, res) in done {
            let node = level_nodes[pos];
            out[pos] = Some((node, res));
        }
    }
    groups
}

struct IntState {
    pos: usize,
    node: usize,
    l: usize,
    r: usize,
    sl: usize,
    sr: usize,
    nl: usize,
    nr: usize,
    zdim: usize,
    s: usize,
    has_sk: bool,
    klr: Option<Mat>,
    krl: Option<Mat>,
    b_l: Option<Mat>,
    b_r: Option<Mat>,
    z_lu: Option<Lu>,
    p: Option<Mat>,
    cost: NodeCost,
    err: Option<SolverError>,
}

/// Stored-GEMV internals: the full staged pipeline — batched coupling
/// materialization, planned `B` GEMMs, grouped `Z` factorizations,
/// arena-packed telescope with planned `C`/solve/`P̂` launches.
#[allow(clippy::too_many_arguments)]
fn run_internals_stored<K: Kernel>(
    st: &SkeletonTree,
    kernel: &K,
    config: &SolverConfig,
    blocks: Option<&AssembledBlocks>,
    factors: &[NodeFactors],
    level_nodes: &[usize],
    int_pos: &[usize],
    out: &mut [Option<NodeResult>],
) -> usize {
    let tree = st.tree();
    let mut groups = 0usize;

    let mut states: Vec<IntState> = int_pos
        .iter()
        .map(|&pos| {
            let node = level_nodes[pos];
            let (l, r) = tree.node(node).children.expect("internal node");
            let sl = st.skeleton(l).expect("factorable node needs skeletonized children").rank();
            let sr = st.skeleton(r).expect("factorable node needs skeletonized children").rank();
            let (nl, nr) = (tree.node(l).len(), tree.node(r).len());
            let (s, has_sk) = match st.skeleton(node) {
                Some(sk) => (sk.rank(), true),
                None => (0, false),
            };
            IntState {
                pos,
                node,
                l,
                r,
                sl,
                sr,
                nl,
                nr,
                zdim: sl + sr,
                s,
                has_sk,
                klr: None,
                krl: None,
                b_l: None,
                b_r: None,
                z_lu: None,
                p: None,
                cost: NodeCost { min_pivot: f64::INFINITY, ..Default::default() },
                err: None,
            }
        })
        .collect();

    // Stage 1 — coupling blocks K_{l̃r} / K_{r̃l}: cached pooled copies
    // on the refactor path, one batched kernel launch per shape group for
    // the rest. Identical bits to per-node `stored_coupling`.
    let mut fresh: Vec<usize> = Vec::with_capacity(states.len());
    for (k, is) in states.iter_mut().enumerate() {
        match blocks.map(|b| b.node(is.node)) {
            Some(nb) if nb.k_lr.is_some() && nb.k_rl.is_some() => {
                is.klr = Some(workspace::mat_from_view(nb.k_lr.as_ref().expect("checked").rb()));
                is.krl = Some(workspace::mat_from_view(nb.k_rl.as_ref().expect("checked").rb()));
            }
            _ => fresh.push(k),
        }
    }
    if !fresh.is_empty() {
        let mut specs: Vec<BlockSpec<'_>> = Vec::with_capacity(fresh.len() * 2);
        for &k in &fresh {
            let is = &states[k];
            let skl = st.skeleton(is.l).expect("factorable node needs skeletonized children");
            let skr = st.skeleton(is.r).expect("factorable node needs skeletonized children");
            specs.push(BlockSpec::RowsByRange {
                rows: &skl.skeleton,
                range: tree.node(is.r).range(),
            });
            specs.push(BlockSpec::RowsByRange {
                rows: &skr.skeleton,
                range: tree.node(is.l).range(),
            });
        }
        let (mats, g) = eval_blocks(kernel, tree.points(), &specs);
        groups += g;
        let mut it = mats.into_iter();
        for &k in &fresh {
            states[k].klr = Some(it.next().expect("klr block"));
            states[k].krl = Some(it.next().expect("krl block"));
        }
    }

    // Stage 2 — B_l = K_{l̃r} P̂_r, B_r = K_{r̃l} P̂_l: every GEMM of the
    // level in one plan. Pooled destinations: fully overwritten (beta=0).
    for is in states.iter_mut() {
        is.b_l = Some(workspace::take_mat_detached(is.sl, is.sr));
        is.b_r = Some(workspace::take_mat_detached(is.sr, is.sl));
    }
    {
        let mut plan = BatchPlan::new();
        for is in states.iter_mut() {
            let IntState { l, r, klr, krl, b_l, b_r, .. } = is;
            let p_hat_l = factors[*l].p_hat.as_ref().expect("child P-hat missing");
            let p_hat_r = factors[*r].p_hat.as_ref().expect("child P-hat missing");
            plan.gemm(
                1.0,
                klr.as_ref().expect("coupling").rb(),
                Trans::No,
                p_hat_r.rb(),
                Trans::No,
                0.0,
                b_l.as_mut().expect("b_l").rb_mut(),
            );
            plan.gemm(
                1.0,
                krl.as_ref().expect("coupling").rb(),
                Trans::No,
                p_hat_l.rb(),
                Trans::No,
                0.0,
                b_r.as_mut().expect("b_r").rb_mut(),
            );
        }
        groups += plan.execute();
    }
    for is in states.iter_mut() {
        is.cost.bytes += (is.sl * is.nr + is.sr * is.nl) * 8;
        is.cost.flops +=
            flops::gemm_flops(is.sl, is.sr, is.nr) + flops::gemm_flops(is.sr, is.sl, is.nl);
    }

    // Stage 3 — reduced systems Z = I + VW, one launch per zdim group.
    let zdims: Vec<usize> = states.iter().map(|is| is.zdim).collect();
    for (_, idxs) in group_by_shape(&zdims, |&z| z) {
        groups += 1;
        let done: Vec<(usize, Result<Lu, SolverError>, NodeCost)> = idxs
            .par_iter()
            .map(|&k| {
                let is = &states[k];
                let mut cost = is.cost;
                let res = factor::factor_z(
                    is.b_l.as_ref().expect("b_l"),
                    is.b_r.as_ref().expect("b_r"),
                    is.sl,
                    is.sr,
                    is.node,
                    config,
                    &mut cost,
                );
                (k, res, cost)
            })
            .collect();
        for (k, res, cost) in done {
            states[k].cost = cost;
            match res {
                Ok(z) => states[k].z_lu = Some(z),
                Err(e) => states[k].err = Some(e),
            }
        }
    }
    let keep_b = config.w_storage == WStorage::Recompute;
    for is in states.iter_mut() {
        if is.err.is_none() && keep_b {
            is.cost.bytes += (is.sl * is.sr * 2) * 8;
        }
    }

    // Stage 4 — telescope P̂ (eq. 10) for skeletonized nodes. The level's
    // M_l/M_r and C scratch lives in two packed arenas (one checkout
    // each); two arenas so the read-side M views and the write-side C
    // slots can coexist. Slot layout per telescope node t: arena_m holds
    // [M_l at 2t, M_r at 2t+1], arena_c holds [C at t].
    let tele: Vec<usize> =
        (0..states.len()).filter(|&k| states[k].has_sk && states[k].err.is_none()).collect();
    if !tele.is_empty() {
        let mut arena_m = Arena::new();
        let mut arena_c = Arena::new();
        for &k in &tele {
            let is = &states[k];
            arena_m.plan(is.sl, is.s);
            arena_m.plan(is.sr, is.s);
            arena_c.plan(is.zdim, is.s);
        }
        arena_m.commit();
        arena_c.commit();

        // Pack the transposed projection halves (Pt) into the M arena.
        {
            let mut carved = arena_m.carve();
            carved.par_chunks_mut(2).zip(tele.par_iter()).for_each(|(mm, &k)| {
                let is = &states[k];
                let sk = st.skeleton(is.node).expect("telescope node has skeleton");
                let (ml, mr) = mm.split_at_mut(1);
                let (ml, mr) = (&mut ml[0], &mut mr[0]);
                for j in 0..is.s {
                    for i in 0..is.sl {
                        ml.set(i, j, sk.proj[(j, i)]);
                    }
                    for i in 0..is.sr {
                        mr.set(i, j, sk.proj[(j, is.sl + i)]);
                    }
                }
            });
        }

        // C = (Z − I) Pt via the already-formed off-diagonal blocks: two
        // planned GEMMs per node into the C halves.
        {
            let mut plan = BatchPlan::new();
            for (t, (c, &k)) in arena_c.carve().into_iter().zip(&tele).enumerate() {
                let is = &states[k];
                let (top, bot) = c.split_at_row(is.sl);
                plan.gemm(
                    1.0,
                    is.b_l.as_ref().expect("b_l").rb(),
                    Trans::No,
                    arena_m.view(2 * t + 1),
                    Trans::No,
                    0.0,
                    top,
                );
                plan.gemm(
                    1.0,
                    is.b_r.as_ref().expect("b_r").rb(),
                    Trans::No,
                    arena_m.view(2 * t),
                    Trans::No,
                    0.0,
                    bot,
                );
            }
            groups += plan.execute();
        }

        // Y = Z^{-1} C: every reduced-system solve of the level in one
        // plan (grouped by zdim x s x kind).
        {
            let mut plan = BatchPlan::new();
            for (c, &k) in arena_c.carve().into_iter().zip(&tele) {
                plan.solve(FactorRef::Lu(states[k].z_lu.as_ref().expect("z_lu")), c);
            }
            groups += plan.execute();
        }
        for &k in &tele {
            let is = &mut states[k];
            is.cost.flops += flops::gemm_flops(is.sl, is.s, is.sr)
                + flops::gemm_flops(is.sr, is.s, is.sl)
                + flops::lu_solve_flops(is.zdim, is.s);
        }

        // M = Pt − Y.
        {
            let c_views: Vec<MatRef<'_>> = (0..tele.len()).map(|t| arena_c.view(t)).collect();
            let mut carved = arena_m.carve();
            carved.par_chunks_mut(2).zip(c_views.par_iter().zip(tele.par_iter())).for_each(
                |(mm, (c, &k))| {
                    let is = &states[k];
                    let (ml, mr) = mm.split_at_mut(1);
                    let (ml, mr) = (&mut ml[0], &mut mr[0]);
                    for j in 0..is.s {
                        for i in 0..is.sl {
                            ml.set(i, j, ml.get(i, j) - c.get(i, j));
                        }
                        for i in 0..is.sr {
                            mr.set(i, j, mr.get(i, j) - c.get(is.sl + i, j));
                        }
                    }
                },
            );
        }

        // P̂_α = [P̂_l M_l ; P̂_r M_r]: two planned GEMMs per node into
        // the row halves of the (pooled) output.
        let mut ps: Vec<Mat> = tele
            .iter()
            .map(|&k| {
                let is = &states[k];
                workspace::take_mat_detached(is.nl + is.nr, is.s)
            })
            .collect();
        {
            let mut plan = BatchPlan::new();
            for (t, (p, &k)) in ps.iter_mut().zip(&tele).enumerate() {
                let is = &states[k];
                let p_hat_l = factors[is.l].p_hat.as_ref().expect("child P-hat missing");
                let p_hat_r = factors[is.r].p_hat.as_ref().expect("child P-hat missing");
                let (top, bot) = p.rb_mut().split_at_row(is.nl);
                plan.gemm(1.0, p_hat_l.rb(), Trans::No, arena_m.view(2 * t), Trans::No, 0.0, top);
                plan.gemm(
                    1.0,
                    p_hat_r.rb(),
                    Trans::No,
                    arena_m.view(2 * t + 1),
                    Trans::No,
                    0.0,
                    bot,
                );
            }
            groups += plan.execute();
        }
        for (p, &k) in ps.into_iter().zip(&tele) {
            let is = &mut states[k];
            is.cost.flops +=
                flops::gemm_flops(is.nl, is.s, is.sl) + flops::gemm_flops(is.nr, is.s, is.sr);
            is.cost.bytes += (is.nl + is.nr) * is.s * 8;
            is.p = Some(p);
        }
    }

    // Finalize in level order; a failed Z drops the node's blocks exactly
    // like the per-node early return.
    for is in states {
        let res = match is.err {
            Some(e) => Err(e),
            None => {
                let (b_l, b_r) = (is.b_l.expect("b_l"), is.b_r.expect("b_r"));
                let (b_l_keep, b_r_keep) = if keep_b {
                    (Some(b_l), Some(b_r))
                } else {
                    workspace::recycle_mat(b_l);
                    workspace::recycle_mat(b_r);
                    (None, None)
                };
                Ok((
                    NodeFactors {
                        z_lu: is.z_lu,
                        p_hat: is.p,
                        v_lr: is.klr,
                        v_rl: is.krl,
                        b_l: b_l_keep,
                        b_r: b_r_keep,
                        ..Default::default()
                    },
                    is.cost,
                ))
            }
        };
        out[is.pos] = Some((is.node, res));
    }
    groups
}
