//! The λ-independent assembly stage of the factorization.
//!
//! λ enters the entire pipeline at exactly one line — the diagonal shift
//! `kaa[(i, i)] += λ` in [`crate::factor`] — yet a naive λ-sweep
//! re-evaluates every kernel block per λ. This module splits `factorize`
//! the way Minden–Ho–Damle–Ying separate compression from factorization:
//! [`assemble_blocks`] evaluates, once per (dataset, h, seed), every
//! kernel block the factorization will ever read —
//!
//! * leaf diagonal blocks `K_αα` (no λ shift applied), and
//! * internal coupling blocks `K_{l̃r}` / `K_{r̃l}` between a node's
//!   sibling skeletons,
//!
//! and [`crate::factorize_with_blocks`] /
//! [`crate::FactorTree::refactor`] then redo only the linear algebra
//! (diagonal shift, LU/Cholesky, `P̂` solves, reduced systems) per λ.
//! The skeleton projections `P_{αα̃}` are *not* duplicated here — they
//! already live λ-independently in the [`SkeletonTree`].
//!
//! The blocked path is bitwise-identical to a fresh `factorize` under
//! [`StorageMode::StoredGemv`](crate::StorageMode::StoredGemv): kernel
//! block evaluation is deterministic, so a cached block equals a freshly
//! evaluated one bit-for-bit, and every downstream operation is the same
//! code. (The GSKS fused path accumulates in a different order than GEMM
//! over a materialized block, so `factorize_with_blocks` pins the storage
//! mode to `StoredGemv`.) The `KFDS_REFACTOR` kill-switch routes
//! [`crate::lambda_sweep`] and friends back to the legacy
//! factorize-from-scratch path.

use crate::config::LevelStats;
use kfds_askit::SkeletonTree;
use kfds_kernels::{eval_block_range, eval_blocks, eval_symmetric, flops, BlockSpec, Kernel};
use kfds_la::Mat;
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Once;
use std::time::Instant;

/// Runtime kill-switch for λ-sweep refactorization. Defaults to on;
/// `KFDS_REFACTOR=off` (or `=0`) routes `lambda_sweep`, the GP noise
/// grid, and the serve factor stage back to factorize-from-scratch.
static REFACTOR_ENABLED: AtomicBool = AtomicBool::new(true);
static ENV_INIT: Once = Once::new();

/// `true` when λ-sweep refactorization over cached [`AssembledBlocks`]
/// is active (the default). Controlled by the registered `KFDS_REFACTOR`
/// switch, sampled once per process; [`set_refactor_enabled`] overrides.
#[inline]
pub fn refactor_enabled() -> bool {
    ENV_INIT.call_once(|| {
        if kfds_switches::KFDS_REFACTOR.is_off() {
            REFACTOR_ENABLED.store(false, Ordering::Relaxed);
        }
    });
    REFACTOR_ENABLED.load(Ordering::Relaxed)
}

/// Enables or disables λ-sweep refactorization at runtime (overrides
/// `KFDS_REFACTOR`). With the switch off, every sweep consumer rebuilds
/// its factorization from scratch per λ — the legacy path, reproduced
/// bitwise. Used by the perf-trajectory harness and the A/B gates.
pub fn set_refactor_enabled(on: bool) {
    let _ = refactor_enabled(); // apply the env default first so it cannot clobber us
    REFACTOR_ENABLED.store(on, Ordering::Relaxed);
}

/// The λ-independent kernel blocks cached for one tree node.
#[derive(Debug, Default)]
pub struct NodeBlocks {
    /// Leaf diagonal block `K_αα` (**without** the `λI` shift), for
    /// leaves in the factored region.
    pub kaa: Option<Mat>,
    /// `K_{l̃ r}` (`s_l x |r|`) for internal nodes in the factored region.
    pub k_lr: Option<Mat>,
    /// `K_{r̃ l}` (`s_r x |l|`) for internal nodes in the factored region.
    pub k_rl: Option<Mat>,
}

/// Assembly diagnostics, the λ-independent half of what
/// [`crate::FactorStats`] used to account per factorize call.
#[derive(Debug, Default, Clone)]
pub struct AssembleStats {
    /// Wall-clock seconds spent evaluating kernel blocks.
    pub seconds: f64,
    /// Kernel-evaluation flops (the GSKS epilogue cost a refactor skips).
    pub kernel_flops: f64,
    /// Bytes retained by the cached blocks.
    pub bytes: usize,
    /// Per-level breakdown of the batched level walk (root-last,
    /// bottom-up like [`crate::FactorStats::levels`]). Empty on the
    /// per-node path (`KFDS_BATCH=off`), which is node-, not
    /// level-parallel.
    pub levels: Vec<LevelStats>,
}

/// Every kernel block the factorization of `λI + K̃` reads, evaluated
/// once and reusable across arbitrarily many λ values. Indexed like the
/// skeleton tree's nodes.
#[derive(Debug)]
pub struct AssembledBlocks {
    nodes: Vec<NodeBlocks>,
    stats: AssembleStats,
    /// Point count of the tree these blocks were assembled over, so a
    /// mismatched (tree, blocks) pairing fails fast.
    n_points: usize,
}

impl AssembledBlocks {
    /// Blocks for node `i` (indexed like the tree's nodes).
    pub fn node(&self, i: usize) -> &NodeBlocks {
        &self.nodes[i]
    }

    /// Assembly diagnostics.
    pub fn stats(&self) -> &AssembleStats {
        &self.stats
    }

    /// Number of node slots (equals the tree's node count).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` for a zero-node store (never produced by
    /// [`assemble_blocks`] on a real tree).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Asserts this store was assembled over `st`'s tree shape.
    pub(crate) fn check_compatible(&self, st: &SkeletonTree) {
        assert_eq!(
            self.nodes.len(),
            st.tree().nodes().len(),
            "AssembledBlocks node count does not match the skeleton tree"
        );
        assert_eq!(
            self.n_points,
            st.tree().points().len(),
            "AssembledBlocks point count does not match the skeleton tree"
        );
    }
}

/// Evaluates every λ-independent kernel block of the factorization over
/// `st`: leaf `K_αα` diagonal blocks and internal `K_{l̃r}` / `K_{r̃l}`
/// coupling blocks, for all nodes in the factored region. Embarrassingly
/// parallel across nodes (no cross-node dependencies, unlike the
/// factorization itself which sweeps level by level).
pub fn assemble_blocks<K: Kernel>(st: &SkeletonTree, kernel: &K) -> AssembledBlocks {
    let t0 = Instant::now();
    let tree = st.tree();
    let pts = tree.points();
    let d = pts.dim();
    let per_eval = kernel.flops_per_eval();
    let mut levels: Vec<LevelStats> = Vec::new();
    let nodes: Vec<NodeBlocks> = if kfds_la::batch_active() {
        assemble_level_batched(st, kernel, &mut levels)
    } else {
        (0..tree.nodes().len())
            .into_par_iter()
            .map(|i| {
                if !crate::factor::in_factored_region(st, i) {
                    return NodeBlocks::default();
                }
                let nd = tree.node(i);
                match nd.children {
                    None => {
                        let kaa = eval_symmetric(kernel, pts, nd.range());
                        NodeBlocks { kaa: Some(kaa), ..Default::default() }
                    }
                    Some((l, r)) => {
                        let skl =
                            st.skeleton(l).expect("factorable node needs skeletonized children");
                        let skr =
                            st.skeleton(r).expect("factorable node needs skeletonized children");
                        let k_lr =
                            eval_block_range(kernel, pts, &skl.skeleton, tree.node(r).range());
                        let k_rl =
                            eval_block_range(kernel, pts, &skr.skeleton, tree.node(l).range());
                        NodeBlocks { kaa: None, k_lr: Some(k_lr), k_rl: Some(k_rl) }
                    }
                }
            })
            .collect()
    };

    let mut kernel_flops = 0.0;
    let mut bytes = 0usize;
    for nb in &nodes {
        for blk in [&nb.kaa, &nb.k_lr, &nb.k_rl].into_iter().flatten() {
            kernel_flops += flops::summation_flops(blk.nrows(), blk.ncols(), d, per_eval)
                - 2.0 * (blk.nrows() * blk.ncols()) as f64; // evaluation only, no reduction
            bytes += blk.nrows() * blk.ncols() * 8;
        }
    }
    let stats = AssembleStats { seconds: t0.elapsed().as_secs_f64(), kernel_flops, bytes, levels };
    AssembledBlocks { nodes, stats, n_points: pts.len() }
}

/// The batched assembly walk (`KFDS_BATCH`): instead of one task per
/// node, every kernel block of a tree level is requested through one
/// [`eval_blocks`] call — one gather + Gram GEMM + epilogue launch per
/// block *shape* group. Identical bits: each block is evaluated by the
/// same deterministic pipeline as the per-node calls, only the launch
/// structure differs. Assembly has no cross-level dependencies; levels
/// are walked bottom-up purely so the recorded [`LevelStats`] align with
/// the factorization sweep's.
fn assemble_level_batched<K: Kernel>(
    st: &SkeletonTree,
    kernel: &K,
    levels: &mut Vec<LevelStats>,
) -> Vec<NodeBlocks> {
    let tree = st.tree();
    let pts = tree.points();
    let mut nodes: Vec<NodeBlocks> =
        (0..tree.nodes().len()).map(|_| NodeBlocks::default()).collect();
    for level in (0..=tree.depth()).rev() {
        let lt0 = Instant::now();
        let level_nodes: Vec<usize> = tree
            .nodes_at_level(level)
            .iter()
            .copied()
            .filter(|&i| crate::factor::in_factored_region(st, i))
            .collect();
        if level_nodes.is_empty() {
            continue;
        }
        // Spec layout per node: leaf → [K_αα]; internal → [K_l̃r, K_r̃l].
        let mut specs: Vec<BlockSpec<'_>> = Vec::with_capacity(level_nodes.len() * 2);
        for &i in &level_nodes {
            let nd = tree.node(i);
            match nd.children {
                None => specs.push(BlockSpec::Symmetric { range: nd.range() }),
                Some((l, r)) => {
                    let skl = st.skeleton(l).expect("factorable node needs skeletonized children");
                    let skr = st.skeleton(r).expect("factorable node needs skeletonized children");
                    specs.push(BlockSpec::RowsByRange {
                        rows: &skl.skeleton,
                        range: tree.node(r).range(),
                    });
                    specs.push(BlockSpec::RowsByRange {
                        rows: &skr.skeleton,
                        range: tree.node(l).range(),
                    });
                }
            }
        }
        let (mats, op_groups) = eval_blocks(kernel, pts, &specs);
        let mut it = mats.into_iter();
        for &i in &level_nodes {
            match tree.node(i).children {
                None => nodes[i].kaa = Some(it.next().expect("kaa block")),
                Some(_) => {
                    nodes[i].k_lr = Some(it.next().expect("k_lr block"));
                    nodes[i].k_rl = Some(it.next().expect("k_rl block"));
                }
            }
        }
        levels.push(LevelStats {
            level,
            nodes: level_nodes.len(),
            op_groups,
            seconds: lt0.elapsed().as_secs_f64(),
        });
    }
    nodes
}
