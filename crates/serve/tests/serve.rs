//! End-to-end service tests: batched answers must match direct solves,
//! backpressure must reject cleanly while accepted work completes,
//! broken keys must quarantine without harming other keys, and queued
//! requests must honor their deadlines.

use kfds_askit::{skeletonize, SkelConfig};
use kfds_core::{LeafFactorization, SharedFactor, SharedSetup, SolverConfig, StorageMode};
use kfds_kernels::Gaussian;
use kfds_serve::{FactorKey, ServeConfig, ServeError, SetupKey, SolveService};
use kfds_tree::datasets::normal_embedded;
use kfds_tree::BallTree;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn build_factor(key: &FactorKey) -> Result<SharedFactor<Gaussian>, ServeError> {
    let pts = normal_embedded(key.n, 3, 8, 0.05, key.seed);
    let kernel = Gaussian::new(key.h());
    let tree = BallTree::build(&pts, 64);
    let st = skeletonize(
        tree,
        &kernel,
        SkelConfig::default().with_tol(1e-5).with_max_rank(48).with_neighbors(8).with_max_level(1),
    );
    let cfg =
        SolverConfig::default().with_lambda(key.lambda()).with_storage(StorageMode::StoredGemv);
    SharedFactor::factorize(Arc::new(st), Arc::new(kernel), cfg)
        .map_err(|e| ServeError::FactorizationFailed(e.to_string()))
}

fn rhs(n: usize, seed: usize) -> Vec<f64> {
    (0..n).map(|i| 0.5 + ((i * 13 + seed * 7) % 17) as f64 / 17.0).collect()
}

#[test]
fn batched_answers_match_direct_solves() {
    let n = 512;
    let key = FactorKey::new("t-batch", n, 1.0, 0.5, 3);
    let svc =
        SolveService::start(ServeConfig::default().with_workers(2).with_max_batch(8), build_factor);

    // Reference: solve directly against the same factorization.
    let sf = build_factor(&key).expect("reference factor");
    let tree_perm = sf.skeleton_tree().tree();

    let nreq = 24;
    let tickets: Vec<_> =
        (0..nreq).map(|r| svc.submit(key.clone(), rhs(n, r)).expect("submit")).collect();
    for (r, t) in tickets.into_iter().enumerate() {
        let got = t.wait().expect("batched solve");
        let mut want = tree_perm.permute_vec(&rhs(n, r));
        sf.solve_in_place(&mut want).expect("direct solve");
        let want = tree_perm.unpermute_vec(&want);
        let err: f64 = got.iter().zip(&want).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt()
            / want.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(err < 1e-12, "request {r}: service answer differs from direct solve ({err:.3e})");
    }

    let stats = svc.shutdown();
    assert_eq!(stats.completed, nreq as u64);
    assert_eq!(stats.errors, 0);
    assert!(stats.cache_hit_rate() > 0.0, "repeated same-key requests must hit the cache");
    assert_eq!(svc_builds_sanity(&stats), 1, "one key must mean one factorization build");
}

fn svc_builds_sanity(stats: &kfds_serve::ServeStats) -> u64 {
    stats.cache_misses
}

#[test]
fn flooding_yields_overloaded_while_accepted_requests_complete() {
    let n = 256;
    let key = FactorKey::new("t-flood", n, 1.0, 0.5, 5);
    let svc = SolveService::start(
        ServeConfig::default()
            .with_workers(1)
            .with_max_batch(4)
            .with_high_water(4)
            .with_linger(Duration::ZERO),
        |key: &FactorKey| {
            // A slow build keeps the single worker busy so the flood below
            // races only the bounded queue, not the solve throughput.
            std::thread::sleep(Duration::from_millis(150));
            build_factor(key)
        },
    );

    let mut accepted = Vec::new();
    let mut rejected = 0usize;
    for r in 0..64 {
        match svc.submit(key.clone(), rhs(n, r)) {
            Ok(t) => accepted.push(t),
            Err(ServeError::Overloaded { depth }) => {
                assert!(depth >= 4, "rejection must report the high-water depth");
                rejected += 1;
            }
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    assert!(rejected > 0, "flooding a high-water of 4 with 64 requests must reject some");
    assert!(!accepted.is_empty(), "backpressure must not reject everything");

    for (i, t) in accepted.into_iter().enumerate() {
        let x = t.wait().unwrap_or_else(|e| panic!("accepted request {i} failed: {e}"));
        assert_eq!(x.len(), n);
        assert!(x.iter().all(|v| v.is_finite()));
    }
    let stats = svc.shutdown();
    assert_eq!(stats.rejected_overload, rejected as u64);
    assert_eq!(stats.errors, 0);
}

#[test]
fn failing_key_is_quarantined_and_other_keys_still_serve() {
    let n = 256;
    let bad = FactorKey::new("t-bad", n, 1.0, 0.5, 7);
    let good = FactorKey::new("t-good", n, 1.0, 0.5, 9);
    let bad_builds = Arc::new(AtomicUsize::new(0));
    let bb = Arc::clone(&bad_builds);
    let svc =
        SolveService::start(ServeConfig::default().with_workers(2), move |key: &FactorKey| {
            if key.dataset == "t-bad" {
                bb.fetch_add(1, Ordering::SeqCst);
                Err(ServeError::FactorizationFailed("synthetic build failure".into()))
            } else {
                build_factor(key)
            }
        });

    // First request on the bad key races the failing build.
    let t = svc.submit(bad.clone(), rhs(n, 0)).expect("submit bad");
    match t.wait() {
        Err(ServeError::FactorizationFailed(m) | ServeError::Quarantined(m)) => {
            assert!(m.contains("synthetic build failure"), "cause must propagate: {m}");
        }
        other => panic!("bad key must fail, got {other:?}"),
    }
    // Later requests fast-fail on the quarantine without re-building.
    let t = svc.submit(bad.clone(), rhs(n, 1)).expect("submit bad again");
    assert!(matches!(t.wait(), Err(ServeError::Quarantined(_))), "quarantined key must fast-fail");
    assert_eq!(bad_builds.load(Ordering::SeqCst), 1, "failing builder must not be re-run");

    // Unrelated keys keep being served.
    let t = svc.submit(good.clone(), rhs(n, 2)).expect("submit good");
    let x = t.wait().expect("good key must still solve");
    assert!(x.iter().all(|v| v.is_finite()));

    let stats = svc.shutdown();
    assert_eq!(stats.cache_poisoned, 1);
    assert_eq!(stats.completed, 1);
}

#[test]
fn queued_request_past_deadline_is_expired_not_solved() {
    let n = 256;
    let slow = FactorKey::new("t-slow", n, 1.0, 0.5, 11);
    let quick = FactorKey::new("t-quick", n, 1.0, 0.5, 13);
    let svc = SolveService::start(
        ServeConfig::default().with_workers(1).with_linger(Duration::ZERO),
        |key: &FactorKey| {
            if key.dataset == "t-slow" {
                std::thread::sleep(Duration::from_millis(300));
            }
            build_factor(key)
        },
    );

    // Occupy the only worker with the slow build, then queue a request
    // whose deadline will lapse before the worker gets back to it.
    let t_slow = svc.submit(slow, rhs(n, 0)).expect("submit slow");
    std::thread::sleep(Duration::from_millis(20));
    let t_late = svc
        .submit_with_timeout(quick, rhs(n, 1), Duration::from_millis(1))
        .expect("submit short-deadline");

    assert!(
        matches!(t_late.wait(), Err(ServeError::DeadlineExceeded)),
        "request queued past its deadline must expire"
    );
    t_slow.wait().expect("slow-key request must still complete");
    let stats = svc.shutdown();
    assert_eq!(stats.rejected_deadline, 1);
    assert_eq!(stats.completed, 1);
}

fn build_setup(key: &SetupKey) -> Result<SharedSetup<Gaussian>, ServeError> {
    let pts = normal_embedded(key.n, 3, 8, 0.05, key.seed);
    let kernel = Gaussian::new(key.h());
    let tree = BallTree::build(&pts, 64);
    let st = skeletonize(
        tree,
        &kernel,
        SkelConfig::default().with_tol(1e-5).with_max_rank(48).with_neighbors(8).with_max_level(1),
    );
    Ok(SharedSetup::build(Arc::new(st), Arc::new(kernel)))
}

#[test]
fn lambda_sweep_through_two_level_cache_builds_setup_once() {
    let n = 512;
    let setup_builds = Arc::new(AtomicUsize::new(0));
    let sb = Arc::clone(&setup_builds);
    let svc = SolveService::start_two_level(
        ServeConfig::default().with_workers(2).with_cache_capacity(8),
        SolverConfig::default().with_storage(StorageMode::StoredGemv),
        move |key: &SetupKey| {
            sb.fetch_add(1, Ordering::SeqCst);
            build_setup(key)
        },
    );

    // An 8-λ sweep over one (dataset, n, h, seed): every key after the
    // first must reuse the cached setup and pay only refactorization.
    let lambdas = [1e-3, 1e-2, 0.1, 0.25, 0.5, 1.0, 2.0, 10.0];
    let keys: Vec<FactorKey> =
        lambdas.iter().map(|&l| FactorKey::new("t-sweep", n, 1.0, l, 21)).collect();
    for (r, key) in keys.iter().enumerate() {
        let got = svc.submit(key.clone(), rhs(n, r)).expect("submit").wait().expect("solve");
        // Bitwise against the legacy single-level build for this key,
        // through the same blocked solve path the service dispatches: the
        // two-level service must not change a single answered byte.
        let sf = build_factor(key).expect("reference factor");
        let tree_perm = sf.skeleton_tree().tree();
        let mut b = kfds_la::Mat::zeros(n, 1);
        b.col_mut(0).copy_from_slice(&tree_perm.permute_vec(&rhs(n, r)));
        sf.solve_block_in_place(&mut b, &kfds_krylov::GmresOptions::default())
            .expect("direct solve");
        let want = tree_perm.unpermute_vec(b.col(0));
        assert_eq!(got, want, "λ={} must match the single-level answer bitwise", key.lambda());
    }

    let stats = svc.shutdown();
    assert_eq!(setup_builds.load(Ordering::SeqCst), 1, "one setup build for the whole λ sweep");
    assert_eq!(stats.setup_builds, 1);
    assert_eq!(stats.full_misses, 1, "only the first λ pays the full build");
    assert_eq!(stats.setup_hits, lambdas.len() as u64 - 1);
    assert_eq!(stats.setup_hits + stats.full_misses, stats.cache_misses);
    assert_eq!(stats.errors, 0);
}

#[test]
fn factor_quarantine_does_not_poison_setup() {
    let n = 256;
    let setup_builds = Arc::new(AtomicUsize::new(0));
    let sb = Arc::clone(&setup_builds);
    // Cholesky leaves reject the indefinite λ = -1e3 shift, so that one λ
    // fails to refactorize while its siblings succeed.
    let svc = SolveService::start_two_level(
        ServeConfig::default().with_workers(2),
        SolverConfig::default()
            .with_storage(StorageMode::StoredGemv)
            .with_leaf(LeafFactorization::Cholesky),
        move |key: &SetupKey| {
            sb.fetch_add(1, Ordering::SeqCst);
            build_setup(key)
        },
    );

    let good = FactorKey::new("t-poison", n, 1.0, 0.5, 23);
    let bad = FactorKey::new("t-poison", n, 1.0, -1e3, 23);

    let x = svc.submit(good.clone(), rhs(n, 0)).expect("submit").wait().expect("good λ solves");
    assert!(x.iter().all(|v| v.is_finite()));

    let t = svc.submit(bad.clone(), rhs(n, 1)).expect("submit bad λ");
    assert!(
        matches!(t.wait(), Err(ServeError::FactorizationFailed(_))),
        "indefinite λ must fail its refactorization"
    );
    // The λ key is quarantined; a retry fast-fails without a rebuild.
    let t = svc.submit(bad, rhs(n, 2)).expect("resubmit bad λ");
    assert!(matches!(t.wait(), Err(ServeError::Quarantined(_))));

    // The setup entry survived the factor-level failure: a *third* λ on
    // the same setup still serves without a new setup build.
    let another = FactorKey::new("t-poison", n, 1.0, 1.5, 23);
    let x = svc.submit(another, rhs(n, 3)).expect("submit").wait().expect("sibling λ still serves");
    assert!(x.iter().all(|v| v.is_finite()));

    let stats = svc.shutdown();
    assert_eq!(setup_builds.load(Ordering::SeqCst), 1, "setup must never rebuild");
    assert_eq!(stats.cache_poisoned, 1, "only the failing λ key is quarantined");
    assert_eq!(stats.setup_entries, 1, "the setup entry must survive");
    assert_eq!(stats.completed, 2);
}

#[test]
fn shutdown_answers_pending_requests() {
    let n = 256;
    let key = FactorKey::new("t-shutdown", n, 1.0, 0.5, 17);
    let svc = SolveService::start(ServeConfig::default().with_workers(1), |key: &FactorKey| {
        std::thread::sleep(Duration::from_millis(100));
        build_factor(key)
    });
    let t1 = svc.submit(key.clone(), rhs(n, 0)).expect("submit");
    let stats = svc.shutdown();
    // The in-flight request either completed before the workers exited or
    // was drained with ShuttingDown — it must not hang.
    match t1.wait() {
        Ok(x) => assert_eq!(x.len(), n),
        Err(ServeError::ShuttingDown) => {}
        Err(e) => panic!("unexpected shutdown answer: {e}"),
    }
    assert_eq!(stats.errors, 0);
}
