//! Loom model tests for the concurrent core of `kfds-serve`: the
//! single-flight [`FactorCache`] (build / quarantine / evict
//! interleavings) and the worker-queue shutdown path of
//! [`SolveService`].
//!
//! The tests are written against loom's portable API (`loom::model`,
//! `loom::thread`, `loom::sync`). Under the offline `shims/loom`
//! stand-in, `model` runs each body `LOOM_ITERS` times (default 64) with
//! deterministically staggered thread startup — a bounded stress search.
//! Pointing the workspace `loom` dependency at the real crate upgrades
//! them to exhaustive interleaving enumeration without edits.

use kfds_kernels::Gaussian;
use kfds_serve::{CacheError, FactorCache, FactorKey, ServeConfig, ServeError, SolveService};
use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::Arc;
use loom::thread;

fn key(name: &str) -> FactorKey {
    FactorKey::new(name, 64, 1.0, 0.5, 7)
}

#[test]
fn single_flight_builds_exactly_once_under_races() {
    loom::model(|| {
        let cache: Arc<FactorCache<u64>> = Arc::new(FactorCache::new(2));
        let calls = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let calls = Arc::clone(&calls);
                thread::spawn(move || {
                    let (v, _hit) = cache
                        .get_or_build(&key("sf"), || {
                            calls.fetch_add(1, Ordering::SeqCst);
                            Ok::<_, String>(42)
                        })
                        .expect("build succeeds");
                    assert_eq!(v, 42, "every requester sees the built value");
                })
            })
            .collect();
        for h in handles {
            h.join().expect("requester");
        }
        assert_eq!(calls.load(Ordering::SeqCst), 1, "builder ran more than once");
        assert_eq!(cache.builds(), 1);
        assert_eq!(cache.ready_len(), 1);
    });
}

#[test]
fn panicking_build_quarantines_exactly_once() {
    // The builder panics. Whatever the interleaving of the concurrent
    // requesters:
    //   * the builder runs exactly once (single-flight holds across the
    //     unwind);
    //   * exactly one requester observes `BuildFailed` (the one that ran
    //     the builder), every other one `Poisoned`;
    //   * the key ends quarantined, not absent and not `Building` (a
    //     `Building` residue would deadlock all future requesters).
    loom::model(|| {
        let cache: Arc<FactorCache<u64>> = Arc::new(FactorCache::new(2));
        let build_failed = Arc::new(AtomicUsize::new(0));
        let poisoned = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let build_failed = Arc::clone(&build_failed);
                let poisoned = Arc::clone(&poisoned);
                thread::spawn(move || {
                    match cache
                        .get_or_build(&key("boom"), || -> Result<u64, String> { panic!("model") })
                    {
                        Err(CacheError::BuildFailed(_)) => {
                            build_failed.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(CacheError::Poisoned(_)) => {
                            poisoned.fetch_add(1, Ordering::SeqCst);
                        }
                        Ok(_) => panic!("a panicking builder cannot produce a value"),
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("requester");
        }
        assert_eq!(cache.builds(), 1, "single-flight must hold across the unwind");
        assert_eq!(build_failed.load(Ordering::SeqCst), 1, "exactly one builder failure");
        assert_eq!(poisoned.load(Ordering::SeqCst), 2, "waiters must fast-fail");
        assert_eq!(cache.poisoned_len(), 1, "the key is quarantined exactly once");
        assert_eq!(cache.ready_len(), 0);
        // A late requester fast-fails without re-running the builder.
        assert!(matches!(
            cache.get_or_build(&key("boom"), || Ok::<_, String>(1)),
            Err(CacheError::Poisoned(_))
        ));
        assert_eq!(cache.builds(), 1);
    });
}

#[test]
fn lru_capacity_invariant_under_concurrent_inserts() {
    loom::model(|| {
        let cache: Arc<FactorCache<u64>> = Arc::new(FactorCache::new(2));
        let handles: Vec<_> = (0..3u64)
            .map(|i| {
                let cache = Arc::clone(&cache);
                thread::spawn(move || {
                    let name = format!("k{i}");
                    cache.get_or_build(&key(&name), || Ok::<_, String>(i)).expect("insert");
                })
            })
            .collect();
        for h in handles {
            h.join().expect("inserter");
        }
        assert_eq!(cache.builds(), 3, "distinct keys never coalesce");
        assert!(
            cache.ready_len() <= 2,
            "eviction must keep residency at capacity, found {}",
            cache.ready_len()
        );
    });
}

#[test]
fn shutdown_never_loses_a_ticket() {
    // Submitted tickets race service shutdown: the workers may answer
    // them (here: with the builder's failure), or the shutdown drain may
    // answer them `ShuttingDown` — but every ticket MUST resolve. A lost
    // ticket hangs `wait()` forever, so the model run itself is the
    // assertion; the match documents the only legal outcomes.
    loom::model(|| {
        let svc = SolveService::<Gaussian>::start(
            ServeConfig::default().with_workers(2).with_cache_capacity(2),
            |_key| Err(ServeError::FactorizationFailed("model builder always fails".into())),
        );
        let tickets: Vec<_> = (0..4)
            .map(|i| {
                let k = if i % 2 == 0 { key("a") } else { key("b") };
                svc.submit(k, vec![1.0; 4]).expect("queue is far below high water")
            })
            .collect();
        let shutter = thread::spawn(move || svc.shutdown());
        for t in tickets {
            match t.wait() {
                Err(ServeError::FactorizationFailed(_))
                | Err(ServeError::Quarantined(_))
                | Err(ServeError::ShuttingDown) => {}
                other => panic!("ticket resolved to an impossible outcome: {other:?}"),
            }
        }
        let stats = shutter.join().expect("shutdown");
        assert_eq!(stats.queue_depth, 0, "shutdown must drain the queue");
    });
}
