//! Loom model tests for the concurrent core of `kfds-serve`: the
//! single-flight [`FactorCache`] (build / quarantine / evict
//! interleavings) and the worker-queue shutdown path of
//! [`SolveService`].
//!
//! The tests are written against loom's portable API (`loom::model`,
//! `loom::thread`, `loom::sync`). Under the offline `shims/loom`
//! stand-in, `model` runs each body `LOOM_ITERS` times (default 64) with
//! deterministically staggered thread startup — a bounded stress search.
//! Pointing the workspace `loom` dependency at the real crate upgrades
//! them to exhaustive interleaving enumeration without edits.

use kfds_kernels::Gaussian;
use kfds_serve::{
    CacheError, FactorCache, FactorKey, LockRank, ServeConfig, ServeError, SetupCache, SetupKey,
    SolveService,
};
use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::Arc;
use loom::thread;

fn key(name: &str) -> FactorKey {
    FactorKey::new(name, 64, 1.0, 0.5, 7)
}

#[test]
fn single_flight_builds_exactly_once_under_races() {
    loom::model(|| {
        let cache: Arc<FactorCache<u64>> = Arc::new(FactorCache::new(2, LockRank::FactorCache));
        let calls = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let calls = Arc::clone(&calls);
                thread::spawn(move || {
                    let (v, _hit) = cache
                        .get_or_build(&key("sf"), || {
                            calls.fetch_add(1, Ordering::SeqCst);
                            Ok::<_, String>(42)
                        })
                        .expect("build succeeds");
                    assert_eq!(v, 42, "every requester sees the built value");
                })
            })
            .collect();
        for h in handles {
            h.join().expect("requester");
        }
        assert_eq!(calls.load(Ordering::SeqCst), 1, "builder ran more than once");
        assert_eq!(cache.builds(), 1);
        assert_eq!(cache.ready_len(), 1);
    });
}

#[test]
fn panicking_build_quarantines_exactly_once() {
    // The builder panics. Whatever the interleaving of the concurrent
    // requesters:
    //   * the builder runs exactly once (single-flight holds across the
    //     unwind);
    //   * exactly one requester observes `BuildFailed` (the one that ran
    //     the builder), every other one `Poisoned`;
    //   * the key ends quarantined, not absent and not `Building` (a
    //     `Building` residue would deadlock all future requesters).
    loom::model(|| {
        let cache: Arc<FactorCache<u64>> = Arc::new(FactorCache::new(2, LockRank::FactorCache));
        let build_failed = Arc::new(AtomicUsize::new(0));
        let poisoned = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let build_failed = Arc::clone(&build_failed);
                let poisoned = Arc::clone(&poisoned);
                thread::spawn(move || {
                    match cache
                        .get_or_build(&key("boom"), || -> Result<u64, String> { panic!("model") })
                    {
                        Err(CacheError::BuildFailed(_)) => {
                            build_failed.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(CacheError::Poisoned(_)) => {
                            poisoned.fetch_add(1, Ordering::SeqCst);
                        }
                        Ok(_) => panic!("a panicking builder cannot produce a value"),
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("requester");
        }
        assert_eq!(cache.builds(), 1, "single-flight must hold across the unwind");
        assert_eq!(build_failed.load(Ordering::SeqCst), 1, "exactly one builder failure");
        assert_eq!(poisoned.load(Ordering::SeqCst), 2, "waiters must fast-fail");
        assert_eq!(cache.poisoned_len(), 1, "the key is quarantined exactly once");
        assert_eq!(cache.ready_len(), 0);
        // A late requester fast-fails without re-running the builder.
        assert!(matches!(
            cache.get_or_build(&key("boom"), || Ok::<_, String>(1)),
            Err(CacheError::Poisoned(_))
        ));
        assert_eq!(cache.builds(), 1);
    });
}

#[test]
fn lru_capacity_invariant_under_concurrent_inserts() {
    loom::model(|| {
        let cache: Arc<FactorCache<u64>> = Arc::new(FactorCache::new(2, LockRank::FactorCache));
        let handles: Vec<_> = (0..3u64)
            .map(|i| {
                let cache = Arc::clone(&cache);
                thread::spawn(move || {
                    let name = format!("k{i}");
                    cache.get_or_build(&key(&name), || Ok::<_, String>(i)).expect("insert");
                })
            })
            .collect();
        for h in handles {
            h.join().expect("inserter");
        }
        assert_eq!(cache.builds(), 3, "distinct keys never coalesce");
        assert!(
            cache.ready_len() <= 2,
            "eviction must keep residency at capacity, found {}",
            cache.ready_len()
        );
    });
}

#[test]
fn two_level_lambda_miss_storm_builds_setup_once() {
    // The two-level nesting the service dispatches: a factor-cache miss
    // resolves the λ-free setup through an inner SetupCache before
    // "refactorizing". Three threads miss simultaneously on *distinct* λ
    // keys that share one setup key — whatever the interleaving, the
    // setup builder runs exactly once (neither cache holds its lock while
    // a builder runs, so the nesting cannot deadlock, and the inner
    // single-flight coalesces the storm).
    loom::model(|| {
        let setups: Arc<SetupCache<u64>> = Arc::new(SetupCache::new(2, LockRank::SetupCache));
        let factors: Arc<FactorCache<u64>> = Arc::new(FactorCache::new(4, LockRank::FactorCache));
        let setup_builds = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..3)
            .map(|i| {
                let setups = Arc::clone(&setups);
                let factors = Arc::clone(&factors);
                let setup_builds = Arc::clone(&setup_builds);
                thread::spawn(move || {
                    let fk = FactorKey::new("storm", 64, 1.0, 0.1 * (i + 1) as f64, 7);
                    let (v, _hit) = factors
                        .get_or_build(&fk, || -> Result<u64, String> {
                            let sk = SetupKey::from(&fk);
                            let (setup, _) = setups
                                .get_or_build(&sk, || {
                                    setup_builds.fetch_add(1, Ordering::SeqCst);
                                    Ok::<_, String>(1000)
                                })
                                .map_err(|e| e.to_string())?;
                            Ok(setup + i)
                        })
                        .expect("two-level build succeeds");
                    assert_eq!(v, 1000 + i, "each λ gets its own factorization");
                })
            })
            .collect();
        for h in handles {
            h.join().expect("requester");
        }
        assert_eq!(setup_builds.load(Ordering::SeqCst), 1, "one setup build under the storm");
        assert_eq!(setups.builds(), 1);
        assert_eq!(factors.builds(), 3, "distinct λ keys never coalesce at the factor level");
        assert_eq!(setups.ready_len(), 1);
    });
}

#[test]
fn two_level_factor_failure_poisons_only_the_lambda_key() {
    // One λ's refactorization fails while a sibling λ succeeds, in either
    // order: the factor-level quarantine must never leak into the setup
    // cache — the setup entry stays ready and keeps serving new λ keys.
    loom::model(|| {
        let setups: Arc<SetupCache<u64>> = Arc::new(SetupCache::new(2, LockRank::SetupCache));
        let factors: Arc<FactorCache<u64>> = Arc::new(FactorCache::new(4, LockRank::FactorCache));
        let refactor = |factors: &FactorCache<u64>,
                        setups: &SetupCache<u64>,
                        lambda: f64,
                        fail: bool|
         -> Result<(u64, bool), CacheError> {
            let fk = FactorKey::new("quarantine", 64, 1.0, lambda, 7);
            factors.get_or_build(&fk, || -> Result<u64, String> {
                let sk = SetupKey::from(&fk);
                let (setup, _) = setups
                    .get_or_build(&sk, || Ok::<_, String>(1000))
                    .map_err(|e| e.to_string())?;
                if fail {
                    return Err("indefinite shift".into());
                }
                Ok(setup)
            })
        };
        let bad = {
            let setups = Arc::clone(&setups);
            let factors = Arc::clone(&factors);
            thread::spawn(move || {
                assert!(
                    matches!(
                        refactor(&factors, &setups, -1e3, true),
                        Err(CacheError::BuildFailed(_))
                    ),
                    "the failing λ must report its build failure"
                );
            })
        };
        let good = {
            let setups = Arc::clone(&setups);
            let factors = Arc::clone(&factors);
            thread::spawn(move || {
                let (v, _) = refactor(&factors, &setups, 0.5, false).expect("sibling λ serves");
                assert_eq!(v, 1000);
            })
        };
        bad.join().expect("bad λ");
        good.join().expect("good λ");
        assert_eq!(factors.poisoned_len(), 1, "only the failing λ key is quarantined");
        assert_eq!(setups.poisoned_len(), 0, "the setup cache must stay clean");
        assert_eq!(setups.ready_len(), 1, "the setup entry must survive");
        // A third λ on the same setup still serves, with no setup rebuild.
        let (v, _) = refactor(&factors, &setups, 2.0, false).expect("late λ serves");
        assert_eq!(v, 1000);
        assert_eq!(setups.builds(), 1, "the setup must never rebuild");
    });
}

#[test]
fn shutdown_never_loses_a_ticket() {
    // Submitted tickets race service shutdown: the workers may answer
    // them (here: with the builder's failure), or the shutdown drain may
    // answer them `ShuttingDown` — but every ticket MUST resolve. A lost
    // ticket hangs `wait()` forever, so the model run itself is the
    // assertion; the match documents the only legal outcomes.
    loom::model(|| {
        let svc = SolveService::<Gaussian>::start(
            ServeConfig::default().with_workers(2).with_cache_capacity(2),
            |_key| Err(ServeError::FactorizationFailed("model builder always fails".into())),
        );
        let tickets: Vec<_> = (0..4)
            .map(|i| {
                let k = if i % 2 == 0 { key("a") } else { key("b") };
                svc.submit(k, vec![1.0; 4]).expect("queue is far below high water")
            })
            .collect();
        let shutter = thread::spawn(move || svc.shutdown());
        for t in tickets {
            match t.wait() {
                Err(ServeError::FactorizationFailed(_))
                | Err(ServeError::Quarantined(_))
                | Err(ServeError::ShuttingDown) => {}
                other => panic!("ticket resolved to an impossible outcome: {other:?}"),
            }
        }
        let stats = shutter.join().expect("shutdown");
        assert_eq!(stats.queue_depth, 0, "shutdown must drain the queue");
    });
}
