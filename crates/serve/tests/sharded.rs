//! Sharded-service acceptance: a `sharded(p)` service must answer
//! **bitwise-identically** to the single-node service (the shard tier
//! only repartitions the same arithmetic), per-shard lanes must account
//! for every routed batch, and `set_shard_enabled(false)` (the
//! `KFDS_SHARD=off` path) must restore the exact unsharded service.
//!
//! This suite lives in its own test binary because it toggles the
//! process-global shard switch.

use kfds_askit::{skeletonize, SkelConfig};
use kfds_core::{SharedFactor, SolverConfig, StorageMode};
use kfds_kernels::Gaussian;
use kfds_serve::{set_shard_enabled, FactorKey, ServeConfig, ServeError, SolveService};
use kfds_tree::datasets::normal_embedded;
use kfds_tree::BallTree;
use std::sync::Arc;
use std::time::Duration;

fn build_factor(key: &FactorKey) -> Result<SharedFactor<Gaussian>, ServeError> {
    let pts = normal_embedded(key.n, 3, 8, 0.05, key.seed);
    let kernel = Gaussian::new(key.h());
    let tree = BallTree::build(&pts, 64);
    let st = skeletonize(
        tree,
        &kernel,
        SkelConfig::default().with_tol(1e-5).with_max_rank(48).with_neighbors(8).with_max_level(1),
    );
    let cfg =
        SolverConfig::default().with_lambda(key.lambda()).with_storage(StorageMode::StoredGemv);
    SharedFactor::factorize(Arc::new(st), Arc::new(kernel), cfg)
        .map_err(|e| ServeError::FactorizationFailed(e.to_string()))
}

fn rhs(n: usize, seed: usize) -> Vec<f64> {
    (0..n).map(|i| 0.5 + ((i * 13 + seed * 7) % 17) as f64 / 17.0).collect()
}

fn cfg(shards: usize) -> ServeConfig {
    // One worker and zero linger so sequential submit→wait cycles
    // dispatch deterministically as batches of 1.
    ServeConfig::default().with_workers(1).with_shards(shards).with_linger(Duration::ZERO)
}

/// One test body (not several `#[test]`s) so the global switch toggles
/// are strictly ordered.
#[test]
fn sharded_service_answers_bitwise_and_the_switch_restores_single_node() {
    let n = 512;
    let nreq = 6;
    let key = FactorKey::new("t-shard", n, 1.0, 0.5, 3);

    // Reference: the exact pre-shard single-node service — `shards: 2`
    // requested but the kill-switch off, which must leave no router.
    set_shard_enabled(false);
    let svc = SolveService::start(cfg(2), build_factor);
    let reference: Vec<Vec<f64>> = (0..nreq)
        .map(|r| svc.submit(key.clone(), rhs(n, r)).expect("submit").wait().expect("solve"))
        .collect();
    let stats = svc.shutdown();
    assert!(stats.shards.is_empty(), "KFDS_SHARD off must leave the service unsharded");
    assert_eq!(stats.shard_fallbacks, 0);
    assert_eq!(stats.completed, nreq as u64);

    // Sharded services at p = 2 and p = 4 must reproduce every byte.
    for p in [2usize, 4] {
        set_shard_enabled(true);
        let svc = SolveService::start(cfg(p), build_factor);
        for (r, want) in reference.iter().enumerate() {
            let got =
                svc.submit(key.clone(), rhs(n, r)).expect("submit").wait().expect("routed solve");
            assert_eq!(&got, want, "p={p} request {r}: sharded answer must be bitwise identical");
        }
        let stats = svc.shutdown();
        assert_eq!(stats.completed, nreq as u64);
        assert_eq!(stats.errors, 0);
        assert_eq!(stats.shard_fallbacks, 0, "complete factors must never fall back");
        assert_eq!(stats.shards.len(), p, "one counter lane per shard");
        for lane in &stats.shards {
            assert_eq!(lane.requests, stats.batches, "every batch reaches every shard");
            assert_eq!(lane.local_misses, 1, "one local partition-cache fill per shard");
            assert_eq!(lane.local_hits, stats.batches - 1);
            assert_eq!(lane.errors, 0);
            assert_eq!(lane.rows_solved, stats.batches * (n / p) as u64);
        }
    }

    // Flip back off: the next service is single-node again (runtime
    // override round-trips).
    set_shard_enabled(false);
    let svc = SolveService::start(cfg(2), build_factor);
    let got = svc.submit(key, rhs(n, 0)).expect("submit").wait().expect("solve");
    assert_eq!(got, reference[0]);
    assert!(svc.shutdown().shards.is_empty());
    set_shard_enabled(true);
}
