//! Lightweight service observability: lock-free counters and log₂-bucketed
//! latency histograms, snapshotted into a [`ServeStats`] that renders as
//! JSON.
//!
//! The recording side is all relaxed atomics — a counter bump and (for
//! latencies) one bucket increment — so instrumentation does not perturb
//! the solve hot path. Percentiles are estimated from the power-of-two
//! bucket boundaries (geometric midpoint), which is accurate to ~±41% per
//! bucket — plenty for p50/p99 dashboards, and the exact max is tracked
//! alongside.

use kfds_core::LevelStats;
use kfds_rt::sync::{LockRank, RankedMutex};
use kfds_shard::ShardLane;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log₂ latency buckets: bucket `i` covers `[2^i, 2^{i+1})` µs,
/// so 40 buckets reach ~12.7 days.
const LAT_BUCKETS: usize = 40;

/// Largest exactly-tracked batch size; bigger batches land in the last
/// bucket.
pub const MAX_TRACKED_BATCH: usize = 128;

/// A log₂-bucketed latency histogram (microsecond resolution).
pub(crate) struct LatencyHist {
    buckets: [AtomicU64; LAT_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for LatencyHist {
    fn default() -> Self {
        LatencyHist {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }
}

impl LatencyHist {
    pub(crate) fn record(&self, d: Duration) {
        let us = d.as_micros().min(u128::from(u64::MAX)) as u64;
        let idx = (us.max(1).ilog2() as usize).min(LAT_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Approximate quantile in microseconds (geometric bucket midpoint,
    /// clamped by the exact maximum).
    fn quantile(&self, q: f64) -> f64 {
        let total = self.count.load(Ordering::Relaxed);
        if total == 0 {
            return 0.0;
        }
        let rank = (q * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                let lo = (1u64 << i) as f64;
                let mid = lo * std::f64::consts::SQRT_2;
                return mid.min(self.max_us.load(Ordering::Relaxed) as f64);
            }
        }
        self.max_us.load(Ordering::Relaxed) as f64
    }

    pub(crate) fn snapshot(&self) -> Quantiles {
        let count = self.count.load(Ordering::Relaxed);
        Quantiles {
            count,
            mean_us: if count == 0 {
                0.0
            } else {
                self.sum_us.load(Ordering::Relaxed) as f64 / count as f64
            },
            p50_us: self.quantile(0.50),
            p90_us: self.quantile(0.90),
            p99_us: self.quantile(0.99),
            max_us: self.max_us.load(Ordering::Relaxed),
        }
    }
}

/// Snapshot of one latency histogram.
#[derive(Clone, Debug, Default)]
pub struct Quantiles {
    /// Samples recorded.
    pub count: u64,
    /// Arithmetic mean (µs).
    pub mean_us: f64,
    /// Approximate median (µs).
    pub p50_us: f64,
    /// Approximate 90th percentile (µs).
    pub p90_us: f64,
    /// Approximate 99th percentile (µs).
    pub p99_us: f64,
    /// Exact maximum (µs).
    pub max_us: u64,
}

impl Quantiles {
    fn to_json(&self) -> String {
        format!(
            "{{\"count\": {}, \"mean_us\": {:.1}, \"p50_us\": {:.1}, \"p90_us\": {:.1}, \"p99_us\": {:.1}, \"max_us\": {}}}",
            self.count, self.mean_us, self.p50_us, self.p90_us, self.p99_us, self.max_us
        )
    }
}

/// Exact batch-size distribution up to [`MAX_TRACKED_BATCH`].
pub(crate) struct BatchHist {
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for BatchHist {
    fn default() -> Self {
        BatchHist {
            buckets: (0..=MAX_TRACKED_BATCH).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

impl BatchHist {
    pub(crate) fn record(&self, batch: usize) {
        self.buckets[batch.min(MAX_TRACKED_BATCH)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(batch as u64, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> (Vec<(usize, u64)>, f64) {
        let hist: Vec<(usize, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(sz, c)| {
                let c = c.load(Ordering::Relaxed);
                (c > 0).then_some((sz, c))
            })
            .collect();
        let count = self.count.load(Ordering::Relaxed);
        let mean =
            if count == 0 { 0.0 } else { self.sum.load(Ordering::Relaxed) as f64 / count as f64 };
        (hist, mean)
    }
}

/// All service metrics, recorded in place by the submit path and workers.
pub(crate) struct Metrics {
    pub submitted: AtomicU64,
    pub completed: AtomicU64,
    pub rejected_overload: AtomicU64,
    pub rejected_deadline: AtomicU64,
    pub errors: AtomicU64,
    pub cache_hits: AtomicU64,
    pub cache_misses: AtomicU64,
    /// Factor-level misses that found the λ-free setup cached (paid only
    /// the refactorization).
    pub setup_hits: AtomicU64,
    /// Misses at both levels (paid tree + skeletonization + assembly +
    /// factorization).
    pub full_misses: AtomicU64,
    pub batches: AtomicU64,
    /// Batches a sharded service served on the single-node path anyway
    /// (hybrid factor, unpartitionable cut, or a racing router shutdown).
    /// Always 0 for an unsharded service.
    pub shard_fallbacks: AtomicU64,
    pub max_queue_depth: AtomicU64,
    pub batch_hist: BatchHist,
    /// Per-level breakdown of the most recently *built* factorization
    /// (recorded on factor-cache misses; hits never touch it). Not on the
    /// hot path — one mutex store per factor build.
    pub factor_levels: RankedMutex<Vec<LevelStats>>,
    /// Submit → dispatch.
    pub queue_us: LatencyHist,
    /// One blocked solve call (per batch).
    pub solve_us: LatencyHist,
    /// Submit → response.
    pub total_us: LatencyHist,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected_overload: AtomicU64::new(0),
            rejected_deadline: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            setup_hits: AtomicU64::new(0),
            full_misses: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            shard_fallbacks: AtomicU64::new(0),
            max_queue_depth: AtomicU64::new(0),
            batch_hist: BatchHist::default(),
            factor_levels: RankedMutex::new(LockRank::ServeMetrics, Vec::new()),
            queue_us: LatencyHist::default(),
            solve_us: LatencyHist::default(),
            total_us: LatencyHist::default(),
        }
    }
}

impl Metrics {
    pub(crate) fn snapshot(
        &self,
        queue_depth: usize,
        cache_entries: usize,
        cache_poisoned: usize,
        setup_entries: usize,
        setup_builds: u64,
        shards: Vec<ShardLane>,
    ) -> ServeStats {
        let (batch_hist, mean_batch) = self.batch_hist.snapshot();
        ServeStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            rejected_overload: self.rejected_overload.load(Ordering::Relaxed),
            rejected_deadline: self.rejected_deadline.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            setup_hits: self.setup_hits.load(Ordering::Relaxed),
            full_misses: self.full_misses.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            shard_fallbacks: self.shard_fallbacks.load(Ordering::Relaxed),
            shards,
            queue_depth,
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            cache_entries,
            cache_poisoned,
            setup_entries,
            setup_builds,
            batch_hist,
            mean_batch,
            factor_levels: self.factor_levels.lock().clone(),
            queue: self.queue_us.snapshot(),
            solve: self.solve_us.snapshot(),
            total: self.total_us.snapshot(),
        }
    }
}

/// A point-in-time snapshot of the service's counters and histograms.
#[derive(Clone, Debug, Default)]
pub struct ServeStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests answered with a solution.
    pub completed: u64,
    /// Requests rejected at submit time (queue past the high-water mark).
    pub rejected_overload: u64,
    /// Requests dropped at dispatch because their deadline had passed.
    pub rejected_deadline: u64,
    /// Requests answered with an error (factorization/solve failures).
    pub errors: u64,
    /// Batch dispatches served from a cached factorization (factor-level
    /// hits: the λ-specific factors were resident).
    pub cache_hits: u64,
    /// Batch dispatches that had to build (or wait for) a factorization —
    /// the sum of [`ServeStats::setup_hits`] and
    /// [`ServeStats::full_misses`] under the two-level cache.
    pub cache_misses: u64,
    /// Factor-level misses whose λ-free setup (tree + skeletonization +
    /// assembled blocks) was cached: only the refactorization ran.
    pub setup_hits: u64,
    /// Dispatches that missed both cache levels and paid the full build.
    pub full_misses: u64,
    /// Solve batches dispatched.
    pub batches: u64,
    /// Batches a sharded service served single-node anyway (hybrid
    /// factor, unpartitionable shard cut, or a racing router shutdown) —
    /// bitwise the same answers, just without the shard fan-out. Always 0
    /// for an unsharded service.
    pub shard_fallbacks: u64,
    /// One lane of counters per shard worker (empty for an unsharded
    /// service): requests seen, local partition-cache hits/misses, rows
    /// solved, and errors.
    pub shards: Vec<ShardLane>,
    /// Queue depth at snapshot time.
    pub queue_depth: usize,
    /// Deepest queue observed at any submit.
    pub max_queue_depth: u64,
    /// Ready factorizations resident in the cache.
    pub cache_entries: usize,
    /// Quarantined (poisoned) factorization keys.
    pub cache_poisoned: usize,
    /// Ready λ-free setups resident in the setup cache (0 for a
    /// single-level service).
    pub setup_entries: usize,
    /// Setup builders run over the service lifetime (a λ sweep through
    /// the two-level cache keeps this at 1 per distinct setup).
    pub setup_builds: u64,
    /// `(batch_size, count)` pairs with nonzero counts.
    pub batch_hist: Vec<(usize, u64)>,
    /// Mean dispatched batch size.
    pub mean_batch: f64,
    /// Per-level breakdown (nodes, grouped launches, seconds) of the most
    /// recently built factorization — empty until the first factor-cache
    /// miss, or when the builder is not level-synchronous.
    pub factor_levels: Vec<LevelStats>,
    /// Time-in-queue distribution.
    pub queue: Quantiles,
    /// Per-batch solve-call distribution.
    pub solve: Quantiles,
    /// End-to-end request latency distribution.
    pub total: Quantiles,
}

impl ServeStats {
    /// Fraction of batch dispatches that found a ready factorization.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Renders the snapshot as a JSON object (stable field order, no
    /// dependencies — same hand-rolled style as the bench harnesses).
    pub fn to_json(&self) -> String {
        let hist: Vec<String> =
            self.batch_hist.iter().map(|(sz, c)| format!("[{sz}, {c}]")).collect();
        let shards: Vec<String> = self.shards.iter().map(ShardLane::to_json).collect();
        let levels: Vec<String> = self
            .factor_levels
            .iter()
            .map(|l| {
                format!(
                    "{{\"level\": {}, \"nodes\": {}, \"op_groups\": {}, \"seconds\": {:.6}}}",
                    l.level, l.nodes, l.op_groups, l.seconds
                )
            })
            .collect();
        format!(
            "{{\n  \"submitted\": {},\n  \"completed\": {},\n  \"rejected_overload\": {},\n  \"rejected_deadline\": {},\n  \"errors\": {},\n  \"factor_hits\": {},\n  \"setup_hits\": {},\n  \"full_misses\": {},\n  \"cache_hit_rate\": {:.4},\n  \"cache_entries\": {},\n  \"cache_poisoned\": {},\n  \"setup_entries\": {},\n  \"setup_builds\": {},\n  \"batches\": {},\n  \"shard_fallbacks\": {},\n  \"shards\": [{}],\n  \"mean_batch\": {:.3},\n  \"batch_hist\": [{}],\n  \"factor_levels\": [{}],\n  \"queue_depth\": {},\n  \"max_queue_depth\": {},\n  \"queue_us\": {},\n  \"solve_us\": {},\n  \"total_us\": {}\n}}",
            self.submitted,
            self.completed,
            self.rejected_overload,
            self.rejected_deadline,
            self.errors,
            self.cache_hits,
            self.setup_hits,
            self.full_misses,
            self.cache_hit_rate(),
            self.cache_entries,
            self.cache_poisoned,
            self.setup_entries,
            self.setup_builds,
            self.batches,
            self.shard_fallbacks,
            shards.join(", "),
            self.mean_batch,
            hist.join(", "),
            levels.join(", "),
            self.queue_depth,
            self.max_queue_depth,
            self.queue.to_json(),
            self.solve.to_json(),
            self.total.to_json(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_hist_percentiles_are_monotone() {
        let h = LatencyHist::default();
        for us in [10u64, 20, 40, 80, 160, 320, 640, 1280, 2560, 100_000] {
            h.record(Duration::from_micros(us));
        }
        let q = h.snapshot();
        assert_eq!(q.count, 10);
        assert!(q.p50_us <= q.p90_us && q.p90_us <= q.p99_us);
        assert!(q.p99_us <= q.max_us as f64);
        assert_eq!(q.max_us, 100_000);
        assert!(q.mean_us > 0.0);
    }

    #[test]
    fn batch_hist_counts_and_mean() {
        let b = BatchHist::default();
        b.record(1);
        b.record(1);
        b.record(16);
        let (hist, mean) = b.snapshot();
        assert_eq!(hist, vec![(1, 2), (16, 1)]);
        assert!((mean - 6.0).abs() < 1e-12);
    }

    #[test]
    fn stats_json_renders() {
        let m = Metrics::default();
        m.submitted.fetch_add(3, Ordering::Relaxed);
        m.batch_hist.record(2);
        m.queue_us.record(Duration::from_micros(42));
        m.shard_fallbacks.fetch_add(2, Ordering::Relaxed);
        *m.factor_levels.lock() =
            vec![LevelStats { level: 1, nodes: 4, op_groups: 2, seconds: 0.25 }];
        let s = m.snapshot(1, 2, 0, 1, 1, Vec::new());
        assert_eq!(s.factor_levels.len(), 1);
        let j = s.to_json();
        assert!(j.contains("\"submitted\": 3"));
        assert!(j.contains("\"factor_levels\": [{\"level\": 1, \"nodes\": 4, \"op_groups\": 2"));
        assert!(j.contains("\"batch_hist\": [[2, 1]]"));
        assert!(j.contains("\"cache_entries\": 2"));
        assert!(j.contains("\"setup_entries\": 1"));
        assert!(j.contains("\"setup_builds\": 1"));
        assert!(j.contains("\"shard_fallbacks\": 2"));
        assert!(j.contains("\"shards\": []"), "unsharded snapshot renders an empty lane list");
    }

    #[test]
    fn split_cache_counters_render_and_sum() {
        let m = Metrics::default();
        m.cache_hits.fetch_add(5, Ordering::Relaxed);
        m.setup_hits.fetch_add(3, Ordering::Relaxed);
        m.full_misses.fetch_add(1, Ordering::Relaxed);
        m.cache_misses.fetch_add(4, Ordering::Relaxed);
        let s = m.snapshot(0, 4, 0, 1, 1, Vec::new());
        assert_eq!(s.setup_hits + s.full_misses, s.cache_misses);
        assert!((s.cache_hit_rate() - 5.0 / 9.0).abs() < 1e-12);
        let j = s.to_json();
        assert!(j.contains("\"factor_hits\": 5"));
        assert!(j.contains("\"setup_hits\": 3"));
        assert!(j.contains("\"full_misses\": 1"));
    }
}
