//! Cache keys and instantiations for the serve tier.
//!
//! The generic LRU + single-flight + quarantine machinery lives in
//! [`kfds_shard::cache`] (it is shared with the shard workers' local
//! partition caches); this module keeps the serve-side key types and the
//! named instantiations.
//!
//! Keys identify a factorization completely: dataset id + problem size,
//! kernel bandwidth, regularizer λ, and the tree seed. Values are cheap
//! clone handles (e.g. [`kfds_core::SharedFactor`]), so a cache hit is a
//! map lookup plus a reference-count bump.

pub use kfds_shard::cache::{CacheError, SingleFlightCache};
pub use kfds_shard::LockRank;

/// Identity of one factorization: `(dataset id, n, kernel bandwidth, λ,
/// tree seed)`. Float fields are stored as IEEE bit patterns so the key
/// is `Eq + Hash`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct FactorKey {
    /// Dataset identifier (the service's builder maps it to points).
    pub dataset: String,
    /// Problem size `N`.
    pub n: usize,
    h_bits: u64,
    lambda_bits: u64,
    /// Seed of the tree / dataset construction.
    pub seed: u64,
}

impl FactorKey {
    /// Builds a key from the plain configuration values.
    pub fn new(dataset: impl Into<String>, n: usize, h: f64, lambda: f64, seed: u64) -> Self {
        FactorKey {
            dataset: dataset.into(),
            n,
            h_bits: h.to_bits(),
            lambda_bits: lambda.to_bits(),
            seed,
        }
    }

    /// Kernel bandwidth.
    pub fn h(&self) -> f64 {
        f64::from_bits(self.h_bits)
    }

    /// Regularizer λ.
    pub fn lambda(&self) -> f64 {
        f64::from_bits(self.lambda_bits)
    }
}

impl std::fmt::Display for FactorKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}[n={}, h={}, lambda={}, seed={}]",
            self.dataset,
            self.n,
            self.h(),
            self.lambda(),
            self.seed
        )
    }
}

/// The λ-free prefix of a [`FactorKey`]: everything that identifies the
/// expensive, λ-independent setup (tree + kNN + skeletonization + kernel
/// block assembly). A λ-sweep maps many `FactorKey`s onto one `SetupKey`,
/// which is exactly what the two-level cache exploits.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SetupKey {
    /// Dataset identifier (the service's builder maps it to points).
    pub dataset: String,
    /// Problem size `N`.
    pub n: usize,
    h_bits: u64,
    /// Seed of the tree / dataset construction.
    pub seed: u64,
}

impl SetupKey {
    /// Builds a key from the plain configuration values.
    pub fn new(dataset: impl Into<String>, n: usize, h: f64, seed: u64) -> Self {
        SetupKey { dataset: dataset.into(), n, h_bits: h.to_bits(), seed }
    }

    /// Kernel bandwidth.
    pub fn h(&self) -> f64 {
        f64::from_bits(self.h_bits)
    }
}

impl From<&FactorKey> for SetupKey {
    /// Drops the λ component: factor keys that differ only in λ share a
    /// setup entry.
    fn from(k: &FactorKey) -> Self {
        SetupKey { dataset: k.dataset.clone(), n: k.n, h_bits: k.h_bits, seed: k.seed }
    }
}

impl std::fmt::Display for SetupKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}[n={}, h={}, seed={}]", self.dataset, self.n, self.h(), self.seed)
    }
}

/// The λ-level factorization cache (the historical name).
pub type FactorCache<V> = SingleFlightCache<FactorKey, V>;

/// The λ-free setup cache (skeleton tree + assembled blocks).
pub type SetupCache<V> = SingleFlightCache<SetupKey, V>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn key(name: &str) -> FactorKey {
        FactorKey::new(name, 128, 1.0, 0.5, 7)
    }

    #[test]
    fn hit_after_build_and_float_key_roundtrip() {
        let c: FactorCache<u64> = FactorCache::new(2, LockRank::FactorCache);
        let (v, hit) = c.get_or_build(&key("a"), || Ok::<_, String>(41)).expect("build");
        assert_eq!((v, hit), (41, false));
        let (v, hit) = c.get_or_build(&key("a"), || Ok::<_, String>(99)).expect("hit");
        assert_eq!((v, hit), (41, true));
        assert_eq!(c.builds(), 1);
        assert_eq!(key("a").h(), 1.0);
        assert_eq!(key("a").lambda(), 0.5);
    }

    #[test]
    fn single_flight_builds_once_under_contention() {
        let c: Arc<FactorCache<u64>> = Arc::new(FactorCache::new(2, LockRank::FactorCache));
        let calls = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                let calls = Arc::clone(&calls);
                s.spawn(move || {
                    let (v, _) = c
                        .get_or_build(&key("contended"), || {
                            calls.fetch_add(1, Ordering::SeqCst);
                            std::thread::sleep(std::time::Duration::from_millis(30));
                            Ok::<_, String>(7)
                        })
                        .expect("get");
                    assert_eq!(v, 7);
                });
            }
        });
        assert_eq!(calls.load(Ordering::SeqCst), 1, "builder must run exactly once");
    }

    #[test]
    fn failed_build_quarantines_without_rerun() {
        let c: FactorCache<u64> = FactorCache::new(2, LockRank::FactorCache);
        let err = c.get_or_build(&key("bad"), || Err::<u64, _>("boom")).unwrap_err();
        assert!(matches!(err, CacheError::BuildFailed(_)));
        let err = c.get_or_build(&key("bad"), || Ok::<_, String>(1)).unwrap_err();
        assert!(matches!(err, CacheError::Poisoned(_)), "second call must fast-fail");
        assert_eq!(c.builds(), 1, "builder must not re-run for a poisoned key");
        assert_eq!(c.poisoned_len(), 1);
        // Unrelated keys are unaffected.
        let (v, _) = c.get_or_build(&key("good"), || Ok::<_, String>(5)).expect("good key");
        assert_eq!(v, 5);
    }

    #[test]
    fn panicking_build_quarantines() {
        let c: FactorCache<u64> = FactorCache::new(2, LockRank::FactorCache);
        let err = c.get_or_build(&key("p"), || -> Result<u64, String> { panic!("kaboom") });
        assert!(matches!(err, Err(CacheError::BuildFailed(m)) if m.contains("kaboom")));
        assert!(matches!(
            c.get_or_build(&key("p"), || Ok::<_, String>(1)),
            Err(CacheError::Poisoned(_))
        ));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let c: FactorCache<u64> = FactorCache::new(2, LockRank::FactorCache);
        for (i, name) in ["a", "b"].iter().enumerate() {
            c.get_or_build(&key(name), || Ok::<_, String>(i as u64)).expect("seed");
        }
        // Touch "a" so "b" is the LRU victim.
        c.get_or_build(&key("a"), || Ok::<_, String>(99)).expect("touch");
        c.get_or_build(&key("c"), || Ok::<_, String>(2)).expect("insert c");
        assert_eq!(c.ready_len(), 2);
        assert_eq!(c.builds(), 3);
        // "a" must still be resident (hit), "b" must rebuild.
        let (_, hit_a) = c.get_or_build(&key("a"), || Ok::<_, String>(0)).expect("a");
        assert!(hit_a, "recently used entry must survive eviction");
        let (_, hit_b) = c.get_or_build(&key("b"), || Ok::<_, String>(1)).expect("b");
        assert!(!hit_b, "LRU entry must have been evicted");
    }
}
