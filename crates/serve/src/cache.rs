//! The factorization cache: LRU over ready factorizations, single-flight
//! construction, and quarantine of keys whose factorization failed.
//!
//! Keys identify a factorization completely: dataset id + problem size,
//! kernel bandwidth, regularizer λ, and the tree seed. Values are cheap
//! clone handles (e.g. [`kfds_core::SharedFactor`]), so a cache hit is a
//! map lookup plus a reference-count bump.
//!
//! **Single-flight:** concurrent `get_or_build` calls for the same key
//! block on one builder invocation instead of racing N factorizations;
//! waiters receive the built handle (counted as hits — they did not pay
//! for the build).
//!
//! **Quarantine:** a builder error (or panic) poisons the key. Subsequent
//! requests fail fast with [`CacheError::Poisoned`] without re-running the
//! builder, so one broken key cannot occupy the workers, and unrelated
//! keys are untouched.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Condvar;
use std::sync::PoisonError;

/// Identity of one factorization: `(dataset id, n, kernel bandwidth, λ,
/// tree seed)`. Float fields are stored as IEEE bit patterns so the key
/// is `Eq + Hash`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct FactorKey {
    /// Dataset identifier (the service's builder maps it to points).
    pub dataset: String,
    /// Problem size `N`.
    pub n: usize,
    h_bits: u64,
    lambda_bits: u64,
    /// Seed of the tree / dataset construction.
    pub seed: u64,
}

impl FactorKey {
    /// Builds a key from the plain configuration values.
    pub fn new(dataset: impl Into<String>, n: usize, h: f64, lambda: f64, seed: u64) -> Self {
        FactorKey {
            dataset: dataset.into(),
            n,
            h_bits: h.to_bits(),
            lambda_bits: lambda.to_bits(),
            seed,
        }
    }

    /// Kernel bandwidth.
    pub fn h(&self) -> f64 {
        f64::from_bits(self.h_bits)
    }

    /// Regularizer λ.
    pub fn lambda(&self) -> f64 {
        f64::from_bits(self.lambda_bits)
    }
}

impl std::fmt::Display for FactorKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}[n={}, h={}, lambda={}, seed={}]",
            self.dataset,
            self.n,
            self.h(),
            self.lambda(),
            self.seed
        )
    }
}

/// The λ-free prefix of a [`FactorKey`]: everything that identifies the
/// expensive, λ-independent setup (tree + kNN + skeletonization + kernel
/// block assembly). A λ-sweep maps many `FactorKey`s onto one `SetupKey`,
/// which is exactly what the two-level cache exploits.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SetupKey {
    /// Dataset identifier (the service's builder maps it to points).
    pub dataset: String,
    /// Problem size `N`.
    pub n: usize,
    h_bits: u64,
    /// Seed of the tree / dataset construction.
    pub seed: u64,
}

impl SetupKey {
    /// Builds a key from the plain configuration values.
    pub fn new(dataset: impl Into<String>, n: usize, h: f64, seed: u64) -> Self {
        SetupKey { dataset: dataset.into(), n, h_bits: h.to_bits(), seed }
    }

    /// Kernel bandwidth.
    pub fn h(&self) -> f64 {
        f64::from_bits(self.h_bits)
    }
}

impl From<&FactorKey> for SetupKey {
    /// Drops the λ component: factor keys that differ only in λ share a
    /// setup entry.
    fn from(k: &FactorKey) -> Self {
        SetupKey { dataset: k.dataset.clone(), n: k.n, h_bits: k.h_bits, seed: k.seed }
    }
}

impl std::fmt::Display for SetupKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}[n={}, h={}, seed={}]", self.dataset, self.n, self.h(), self.seed)
    }
}

/// Why a cache lookup failed.
#[derive(Clone, Debug)]
pub enum CacheError {
    /// This call ran the builder and it failed.
    BuildFailed(String),
    /// The key is quarantined from an earlier failure; the builder was
    /// not re-run.
    Poisoned(String),
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::BuildFailed(e) => write!(f, "factorization build failed: {e}"),
            CacheError::Poisoned(e) => write!(f, "factorization key quarantined: {e}"),
        }
    }
}

impl std::error::Error for CacheError {}

enum Slot<V> {
    /// A builder is running on some thread; waiters sleep on the condvar.
    Building,
    Ready {
        value: V,
        last_used: u64,
    },
    Poisoned(String),
}

struct CacheState<Key, V> {
    map: HashMap<Key, Slot<V>>,
    /// Monotonic recency clock for LRU.
    tick: u64,
}

/// LRU + single-flight + quarantine cache, generic over the key: the
/// factor stage keys on [`FactorKey`] (λ included), the setup stage on
/// [`SetupKey`] (λ-free). Both levels share this one implementation, so
/// the single-flight and quarantine semantics are identical.
pub struct SingleFlightCache<Key: Clone + Eq + std::hash::Hash, V: Clone> {
    capacity: usize,
    state: Mutex<CacheState<Key, V>>,
    cv: Condvar,
    builds: AtomicU64,
}

/// The λ-level factorization cache (the historical name).
pub type FactorCache<V> = SingleFlightCache<FactorKey, V>;

/// The λ-free setup cache (skeleton tree + assembled blocks).
pub type SetupCache<V> = SingleFlightCache<SetupKey, V>;

impl<Key: Clone + Eq + std::hash::Hash, V: Clone> SingleFlightCache<Key, V> {
    /// Creates a cache retaining at most `capacity` ready factorizations
    /// (`capacity` is clamped to ≥ 1). Poisoned keys are quarantine
    /// records, not cached values, and do not count against the capacity.
    pub fn new(capacity: usize) -> Self {
        SingleFlightCache {
            capacity: capacity.max(1),
            state: Mutex::new(CacheState { map: HashMap::new(), tick: 0 }),
            cv: Condvar::new(),
            builds: AtomicU64::new(0),
        }
    }

    /// Looks up `key`, running `build` exactly once across all concurrent
    /// callers if absent. Returns the handle plus `true` when it was
    /// served without running the builder in this call (a hit — including
    /// single-flight waiters).
    ///
    /// # Errors
    /// [`CacheError::Poisoned`] for quarantined keys (fast-fail, builder
    /// not re-run); [`CacheError::BuildFailed`] when this call's build
    /// errored or panicked (the key becomes quarantined).
    pub fn get_or_build<E: std::fmt::Display>(
        &self,
        key: &Key,
        build: impl FnOnce() -> Result<V, E>,
    ) -> Result<(V, bool), CacheError> {
        let mut st = self.state.lock();
        loop {
            match st.map.get(key) {
                Some(Slot::Ready { .. }) => {
                    st.tick += 1;
                    let t = st.tick;
                    let Some(Slot::Ready { value, last_used }) = st.map.get_mut(key) else {
                        unreachable!("slot was Ready under the same lock");
                    };
                    *last_used = t;
                    return Ok((value.clone(), true));
                }
                Some(Slot::Poisoned(e)) => return Err(CacheError::Poisoned(e.clone())),
                Some(Slot::Building) => {
                    st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
                }
                None => break,
            }
        }
        // We are the builder for this key.
        st.map.insert(key.clone(), Slot::Building);
        drop(st);
        self.builds.fetch_add(1, Ordering::Relaxed);
        let built = catch_unwind(AssertUnwindSafe(build));
        let mut st = self.state.lock();
        let outcome = match built {
            Ok(Ok(v)) => {
                st.tick += 1;
                let t = st.tick;
                st.map.insert(key.clone(), Slot::Ready { value: v.clone(), last_used: t });
                self.evict_lru(&mut st);
                Ok((v, false))
            }
            Ok(Err(e)) => {
                let msg = e.to_string();
                st.map.insert(key.clone(), Slot::Poisoned(msg.clone()));
                Err(CacheError::BuildFailed(msg))
            }
            Err(panic) => {
                let msg = panic_message(panic.as_ref());
                st.map.insert(key.clone(), Slot::Poisoned(msg.clone()));
                Err(CacheError::BuildFailed(msg))
            }
        };
        drop(st);
        self.cv.notify_all();
        outcome
    }

    fn evict_lru(&self, st: &mut CacheState<Key, V>) {
        loop {
            let ready: Vec<(&Key, u64)> = st
                .map
                .iter()
                .filter_map(|(k, s)| match s {
                    Slot::Ready { last_used, .. } => Some((k, *last_used)),
                    _ => None,
                })
                .collect();
            if ready.len() <= self.capacity {
                return;
            }
            let victim =
                ready.iter().min_by_key(|(_, t)| *t).map(|(k, _)| (*k).clone()).expect("nonempty");
            st.map.remove(&victim);
        }
    }

    /// Quarantines `key` explicitly (e.g. after a solve panic), so later
    /// requests fail fast instead of re-dispatching onto a bad
    /// factorization.
    pub fn poison(&self, key: &Key, reason: impl Into<String>) {
        let mut st = self.state.lock();
        st.map.insert(key.clone(), Slot::Poisoned(reason.into()));
        drop(st);
        self.cv.notify_all();
    }

    /// Ready factorizations resident.
    pub fn ready_len(&self) -> usize {
        self.state.lock().map.values().filter(|s| matches!(s, Slot::Ready { .. })).count()
    }

    /// Quarantined keys.
    pub fn poisoned_len(&self) -> usize {
        self.state.lock().map.values().filter(|s| matches!(s, Slot::Poisoned(_))).count()
    }

    /// How many times a builder was invoked over the cache's lifetime.
    pub fn builds(&self) -> u64 {
        self.builds.load(Ordering::Relaxed)
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        format!("factorization panicked: {s}")
    } else if let Some(s) = panic.downcast_ref::<String>() {
        format!("factorization panicked: {s}")
    } else {
        "factorization panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    fn key(name: &str) -> FactorKey {
        FactorKey::new(name, 128, 1.0, 0.5, 7)
    }

    #[test]
    fn hit_after_build_and_float_key_roundtrip() {
        let c: FactorCache<u64> = FactorCache::new(2);
        let (v, hit) = c.get_or_build(&key("a"), || Ok::<_, String>(41)).expect("build");
        assert_eq!((v, hit), (41, false));
        let (v, hit) = c.get_or_build(&key("a"), || Ok::<_, String>(99)).expect("hit");
        assert_eq!((v, hit), (41, true));
        assert_eq!(c.builds(), 1);
        assert_eq!(key("a").h(), 1.0);
        assert_eq!(key("a").lambda(), 0.5);
    }

    #[test]
    fn single_flight_builds_once_under_contention() {
        let c: Arc<FactorCache<u64>> = Arc::new(FactorCache::new(2));
        let calls = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                let calls = Arc::clone(&calls);
                s.spawn(move || {
                    let (v, _) = c
                        .get_or_build(&key("contended"), || {
                            calls.fetch_add(1, Ordering::SeqCst);
                            std::thread::sleep(std::time::Duration::from_millis(30));
                            Ok::<_, String>(7)
                        })
                        .expect("get");
                    assert_eq!(v, 7);
                });
            }
        });
        assert_eq!(calls.load(Ordering::SeqCst), 1, "builder must run exactly once");
    }

    #[test]
    fn failed_build_quarantines_without_rerun() {
        let c: FactorCache<u64> = FactorCache::new(2);
        let err = c.get_or_build(&key("bad"), || Err::<u64, _>("boom")).unwrap_err();
        assert!(matches!(err, CacheError::BuildFailed(_)));
        let err = c.get_or_build(&key("bad"), || Ok::<_, String>(1)).unwrap_err();
        assert!(matches!(err, CacheError::Poisoned(_)), "second call must fast-fail");
        assert_eq!(c.builds(), 1, "builder must not re-run for a poisoned key");
        assert_eq!(c.poisoned_len(), 1);
        // Unrelated keys are unaffected.
        let (v, _) = c.get_or_build(&key("good"), || Ok::<_, String>(5)).expect("good key");
        assert_eq!(v, 5);
    }

    #[test]
    fn panicking_build_quarantines() {
        let c: FactorCache<u64> = FactorCache::new(2);
        let err = c.get_or_build(&key("p"), || -> Result<u64, String> { panic!("kaboom") });
        assert!(matches!(err, Err(CacheError::BuildFailed(m)) if m.contains("kaboom")));
        assert!(matches!(
            c.get_or_build(&key("p"), || Ok::<_, String>(1)),
            Err(CacheError::Poisoned(_))
        ));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let c: FactorCache<u64> = FactorCache::new(2);
        for (i, name) in ["a", "b"].iter().enumerate() {
            c.get_or_build(&key(name), || Ok::<_, String>(i as u64)).expect("seed");
        }
        // Touch "a" so "b" is the LRU victim.
        c.get_or_build(&key("a"), || Ok::<_, String>(99)).expect("touch");
        c.get_or_build(&key("c"), || Ok::<_, String>(2)).expect("insert c");
        assert_eq!(c.ready_len(), 2);
        assert_eq!(c.builds(), 3);
        // "a" must still be resident (hit), "b" must rebuild.
        let (_, hit_a) = c.get_or_build(&key("a"), || Ok::<_, String>(0)).expect("a");
        assert!(hit_a, "recently used entry must survive eviction");
        let (_, hit_b) = c.get_or_build(&key("b"), || Ok::<_, String>(1)).expect("b");
        assert!(!hit_b, "LRU entry must have been evicted");
    }
}
