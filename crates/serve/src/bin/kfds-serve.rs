//! `kfds-serve`: stand up the batched solve service over synthetic
//! NORMAL-embedded datasets and drive it with a closed-loop load
//! generator, printing the [`ServeStats`] snapshot as JSON.
//!
//! ```text
//! kfds-serve [--n N] [--keys K] [--clients C] [--requests R]
//!            [--max-batch B] [--workers W] [--high-water H]
//!            [--timeout-ms T] [--shards P] [--smoke]
//! ```
//!
//! The `K` factorization keys share one dataset/bandwidth/seed and vary
//! **only in λ** — the cross-validation sweep shape — so the run drives
//! the two-level cache: exactly one λ-free setup build (tree + kNN +
//! skeletonization + kernel-block assembly), with every λ paying only the
//! refactorization, plus the batcher (C concurrent clients submitting
//! against few keys coalesce into blocked solves). `--shards P` serves
//! through the shard tier: every complete-factorization batch is
//! partitioned across `P` rank-owned subtree shards and scatter/gathered
//! over the in-process transport — bitwise-identical answers, with one
//! counter lane per shard in the stats JSON. `--smoke` shrinks the
//! problem and asserts a clean run — zero errors, every request answered,
//! cache hit rate above zero, **setup built exactly once**, and (sharded)
//! a bitwise match against the unsharded solve plus per-shard cache
//! accounting — exiting nonzero otherwise, which is what `ci.sh` runs.

use kfds_askit::{skeletonize, SkelConfig};
use kfds_core::{SharedSetup, SolverConfig, StorageMode};
use kfds_kernels::Gaussian;
use kfds_serve::{FactorKey, ServeConfig, ServeError, SetupKey, SolveService};
use kfds_tree::datasets::normal_embedded;
use kfds_tree::BallTree;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    n: usize,
    keys: usize,
    clients: usize,
    requests: usize,
    max_batch: usize,
    workers: usize,
    high_water: usize,
    timeout_ms: u64,
    shards: usize,
    smoke: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            n: 4096,
            keys: 2,
            clients: 16,
            requests: 512,
            max_batch: 16,
            workers: 2,
            high_water: 1024,
            timeout_ms: 30_000,
            shards: 1,
            smoke: false,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut grab = |name: &str| -> Result<usize, String> {
            it.next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| format!("{name} expects an integer argument"))
        };
        match flag.as_str() {
            "--n" => args.n = grab("--n")?,
            "--keys" => args.keys = grab("--keys")?.max(1),
            "--clients" => args.clients = grab("--clients")?.max(1),
            "--requests" => args.requests = grab("--requests")?,
            "--max-batch" => args.max_batch = grab("--max-batch")?.max(1),
            "--workers" => args.workers = grab("--workers")?.max(1),
            "--high-water" => args.high_water = grab("--high-water")?.max(1),
            "--timeout-ms" => args.timeout_ms = grab("--timeout-ms")? as u64,
            "--shards" => args.shards = grab("--shards")?.max(1),
            "--smoke" => args.smoke = true,
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    if args.smoke {
        args.n = args.n.min(1024);
        args.requests = args.requests.min(128);
    }
    Ok(args)
}

/// Builds the λ-free setup for a key: the key's seed picks the dataset,
/// its `h` the kernel. All the λ keys derived from this setup then pay
/// only the refactorization (StoredGemv — the fastest-solve storage mode,
/// the right trade for serve-style workloads: factor once, solve many).
fn build_setup(key: &SetupKey) -> Result<SharedSetup<Gaussian>, ServeError> {
    let pts = normal_embedded(key.n, 3, 8, 0.05, key.seed);
    let kernel = Gaussian::new(key.h());
    let tree = BallTree::build(&pts, 256);
    let st = skeletonize(
        tree,
        &kernel,
        SkelConfig::default().with_tol(1e-5).with_max_rank(64).with_neighbors(8).with_max_level(1),
    );
    Ok(SharedSetup::build(Arc::new(st), Arc::new(kernel)))
}

fn main() {
    // Usage errors exit 2, runtime failures exit 1 — never a panic
    // backtrace: this binary is a CI gate and its stderr is the report.
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("kfds-serve: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = run(args) {
        eprintln!("kfds-serve: {e}");
        std::process::exit(1);
    }
}

fn run(args: Args) -> Result<(), String> {
    // λ-only key spread over one (dataset, n, h, seed): the shape of a
    // regularization sweep, and the best case for the two-level cache.
    let keys: Vec<FactorKey> = (0..args.keys)
        .map(|i| FactorKey::new("normal3d8", args.n, 1.0, 0.5 + 0.25 * i as f64, 42))
        .collect();

    let cfg = ServeConfig::default()
        .with_workers(args.workers)
        .with_max_batch(args.max_batch)
        .with_high_water(args.high_water)
        .with_default_timeout(Duration::from_millis(args.timeout_ms))
        .with_cache_capacity(args.keys.max(2))
        .with_shards(args.shards);
    // A `--shards P` request still yields a single-node service when the
    // `KFDS_SHARD` kill-switch is off; the smoke lane accounting below
    // follows the tier that actually ran.
    let sharding_active = args.shards > 1 && !kfds_switches::KFDS_SHARD.is_off();
    let base = SolverConfig::default().with_storage(StorageMode::StoredGemv);
    let svc = Arc::new(SolveService::start_two_level(cfg, base, build_setup));

    // Warm the cache up front so the measured phase is pure serving.
    for key in &keys {
        let t = svc
            .submit(key.clone(), vec![1.0; args.n])
            .map_err(|e| format!("warmup submit failed: {e}"))?;
        t.wait().map_err(|e| format!("warmup solve failed: {e}"))?;
    }

    // Sharded smoke pre-check: a sequential single-request round trip
    // dispatches as a batch of one, so the service answer and an
    // out-of-band unsharded blocked solve of the same 1-column matrix
    // must agree **bitwise** (the shard tier only repartitions the same
    // arithmetic).
    if args.smoke && args.shards > 1 {
        let skey = SetupKey::from(&keys[0]);
        let setup = build_setup(&skey).map_err(|e| format!("reference setup failed: {e}"))?;
        let sf = kfds_core::SharedFactor::refactorize(&setup, base.with_lambda(keys[0].lambda()))
            .map_err(|e| format!("reference factorization failed: {e}"))?;
        let rhs: Vec<f64> = (0..args.n).map(|i| 0.25 + ((i * 11) % 13) as f64 / 13.0).collect();
        let tree = sf.skeleton_tree().tree();
        let mut b = kfds_la::Mat::zeros(args.n, 1);
        b.col_mut(0).copy_from_slice(&tree.permute_vec(&rhs));
        sf.solve_block_in_place(&mut b, &kfds_krylov::GmresOptions::default())
            .map_err(|e| format!("reference solve failed: {e}"))?;
        let want = tree.unpermute_vec(b.col(0));
        let got = svc
            .submit(keys[0].clone(), rhs)
            .map_err(|e| format!("pre-check submit failed: {e}"))?
            .wait()
            .map_err(|e| format!("pre-check routed solve failed: {e}"))?;
        if got != want {
            return Err("SMOKE FAIL: sharded answer differs from the unsharded solve".into());
        }
        eprintln!("sharded bitwise pre-check OK (p = {})", args.shards);
    }

    let t0 = Instant::now();
    let answered = Arc::new(AtomicU64::new(0));
    let failed = Arc::new(AtomicU64::new(0));
    let per_client = args.requests.div_ceil(args.clients);
    let handles: Vec<_> = (0..args.clients)
        .map(|c| {
            let svc = Arc::clone(&svc);
            let keys = keys.clone();
            let answered = Arc::clone(&answered);
            let failed = Arc::clone(&failed);
            std::thread::spawn(move || {
                for r in 0..per_client {
                    let key = keys[(c + r) % keys.len()].clone();
                    let rhs: Vec<f64> =
                        (0..key.n).map(|i| 1.0 + ((c + r + i) % 7) as f64 * 0.1).collect();
                    // Closed loop: submit, wait, repeat. Retry briefly on
                    // backpressure so every request eventually lands.
                    loop {
                        match svc.submit(key.clone(), rhs.clone()) {
                            Ok(ticket) => {
                                match ticket.wait() {
                                    Ok(x) => {
                                        assert!(x.iter().all(|v| v.is_finite()));
                                        answered.fetch_add(1, Ordering::Relaxed);
                                    }
                                    Err(_) => {
                                        failed.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                                break;
                            }
                            Err(ServeError::Overloaded { .. }) => {
                                std::thread::sleep(Duration::from_micros(200));
                            }
                            Err(e) => {
                                // A hard submit refusal (e.g. shutdown) is
                                // a failed request, not a process abort;
                                // the smoke gate fails on the counter.
                                eprintln!("client {c}: submit failed: {e}");
                                failed.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().map_err(|_| "a client thread panicked".to_string())?;
    }
    let elapsed = t0.elapsed();

    let stats = svc.stats();
    let total = args.clients * per_client;
    let rps = answered.load(Ordering::Relaxed) as f64 / elapsed.as_secs_f64();
    println!("{}", stats.to_json());
    eprintln!(
        "served {} requests in {:.2}s ({rps:.1} rps, mean batch {:.2}, cache hit rate {:.3}, \
         setup builds {}, shards {}, shard fallbacks {})",
        answered.load(Ordering::Relaxed),
        elapsed.as_secs_f64(),
        stats.mean_batch,
        stats.cache_hit_rate(),
        stats.setup_builds,
        stats.shards.len(),
        stats.shard_fallbacks,
    );

    if args.smoke {
        // The keys differ only in λ, so the whole run must perform exactly
        // one setup build (tree + skeletonization + assembly) — that is
        // the amortization the two-level cache exists for.
        let ok = stats.errors == 0
            && failed.load(Ordering::Relaxed) == 0
            && answered.load(Ordering::Relaxed) as usize == total
            && stats.cache_hit_rate() > 0.0
            && stats.cache_poisoned == 0
            && stats.setup_builds == 1
            && stats.full_misses == 1
            && stats.setup_hits == args.keys as u64 - 1;
        // Per-shard accounting: with every factor complete, every batch
        // routes (no fallbacks) and reaches every shard exactly once, and
        // each shard fills its local partition cache once per key.
        let lanes_ok = if sharding_active {
            stats.shards.len() == args.shards
                && stats.shard_fallbacks == 0
                && stats.shards.iter().all(|l| {
                    l.errors == 0
                        && l.requests == stats.batches
                        && l.local_misses == args.keys as u64
                        && l.local_hits == stats.batches - args.keys as u64
                })
        } else {
            stats.shards.is_empty() && stats.shard_fallbacks == 0
        };
        if !ok || !lanes_ok {
            return Err(format!(
                "SMOKE FAIL: errors={} failed={} answered={}/{} hit_rate={:.3} poisoned={} \
                 setup_builds={} setup_hits={} full_misses={} shard_lanes={:?} \
                 shard_fallbacks={}",
                stats.errors,
                failed.load(Ordering::Relaxed),
                answered.load(Ordering::Relaxed),
                total,
                stats.cache_hit_rate(),
                stats.cache_poisoned,
                stats.setup_builds,
                stats.setup_hits,
                stats.full_misses,
                stats.shards,
                stats.shard_fallbacks,
            ));
        }
        eprintln!("SMOKE OK");
    }
    Ok(())
}
