//! `kfds-serve`: stand up the batched solve service over synthetic
//! NORMAL-embedded datasets and drive it with a closed-loop load
//! generator, printing the [`ServeStats`] snapshot as JSON.
//!
//! ```text
//! kfds-serve [--n N] [--keys K] [--clients C] [--requests R]
//!            [--max-batch B] [--workers W] [--high-water H]
//!            [--timeout-ms T] [--smoke]
//! ```
//!
//! Each of the `K` factorization keys maps to its own dataset seed and
//! regularization, so the run exercises the cache (K misses, everything
//! else hits) as well as the batcher (C concurrent clients submitting
//! against few keys coalesce into blocked solves). `--smoke` shrinks the
//! problem and asserts a clean run — zero errors, every request answered,
//! cache hit rate above zero — exiting nonzero otherwise, which is what
//! `ci.sh` runs.

use kfds_askit::{skeletonize, SkelConfig};
use kfds_core::{SharedFactor, SolverConfig, StorageMode};
use kfds_kernels::Gaussian;
use kfds_serve::{FactorKey, ServeConfig, ServeError, SolveService};
use kfds_tree::datasets::normal_embedded;
use kfds_tree::BallTree;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    n: usize,
    keys: usize,
    clients: usize,
    requests: usize,
    max_batch: usize,
    workers: usize,
    high_water: usize,
    timeout_ms: u64,
    smoke: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            n: 4096,
            keys: 2,
            clients: 16,
            requests: 512,
            max_batch: 16,
            workers: 2,
            high_water: 1024,
            timeout_ms: 30_000,
            smoke: false,
        }
    }
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut grab = |name: &str| -> usize {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} expects an integer argument"))
        };
        match flag.as_str() {
            "--n" => args.n = grab("--n"),
            "--keys" => args.keys = grab("--keys").max(1),
            "--clients" => args.clients = grab("--clients").max(1),
            "--requests" => args.requests = grab("--requests"),
            "--max-batch" => args.max_batch = grab("--max-batch").max(1),
            "--workers" => args.workers = grab("--workers").max(1),
            "--high-water" => args.high_water = grab("--high-water").max(1),
            "--timeout-ms" => args.timeout_ms = grab("--timeout-ms") as u64,
            "--smoke" => args.smoke = true,
            other => {
                eprintln!("unknown flag: {other}");
                std::process::exit(2);
            }
        }
    }
    if args.smoke {
        args.n = args.n.min(1024);
        args.requests = args.requests.min(128);
    }
    args
}

/// Builds a factorization for a key: the key's seed picks the dataset,
/// its `h`/`λ` the kernel and regularization. StoredGemv is the
/// fastest-solve storage mode, the right trade for serve-style workloads
/// (factor once, solve many).
fn build_factor(key: &FactorKey) -> Result<SharedFactor<Gaussian>, ServeError> {
    let pts = normal_embedded(key.n, 3, 8, 0.05, key.seed);
    let kernel = Gaussian::new(key.h());
    let tree = BallTree::build(&pts, 256);
    let st = skeletonize(
        tree,
        &kernel,
        SkelConfig::default().with_tol(1e-5).with_max_rank(64).with_neighbors(8).with_max_level(1),
    );
    let cfg =
        SolverConfig::default().with_lambda(key.lambda()).with_storage(StorageMode::StoredGemv);
    SharedFactor::factorize(Arc::new(st), Arc::new(kernel), cfg)
        .map_err(|e| ServeError::FactorizationFailed(e.to_string()))
}

fn main() {
    let args = parse_args();
    let keys: Vec<FactorKey> = (0..args.keys)
        .map(|i| FactorKey::new("normal3d8", args.n, 1.0, 0.5 + 0.25 * i as f64, 42 + i as u64))
        .collect();

    let cfg = ServeConfig::default()
        .with_workers(args.workers)
        .with_max_batch(args.max_batch)
        .with_high_water(args.high_water)
        .with_default_timeout(Duration::from_millis(args.timeout_ms))
        .with_cache_capacity(args.keys.max(2));
    let svc = Arc::new(SolveService::start(cfg, build_factor));

    // Warm the cache up front so the measured phase is pure serving.
    for key in &keys {
        let t = svc.submit(key.clone(), vec![1.0; args.n]).expect("warmup submit");
        t.wait().expect("warmup solve");
    }

    let t0 = Instant::now();
    let answered = Arc::new(AtomicU64::new(0));
    let failed = Arc::new(AtomicU64::new(0));
    let per_client = args.requests.div_ceil(args.clients);
    let handles: Vec<_> = (0..args.clients)
        .map(|c| {
            let svc = Arc::clone(&svc);
            let keys = keys.clone();
            let answered = Arc::clone(&answered);
            let failed = Arc::clone(&failed);
            std::thread::spawn(move || {
                for r in 0..per_client {
                    let key = keys[(c + r) % keys.len()].clone();
                    let rhs: Vec<f64> =
                        (0..key.n).map(|i| 1.0 + ((c + r + i) % 7) as f64 * 0.1).collect();
                    // Closed loop: submit, wait, repeat. Retry briefly on
                    // backpressure so every request eventually lands.
                    loop {
                        match svc.submit(key.clone(), rhs.clone()) {
                            Ok(ticket) => {
                                match ticket.wait() {
                                    Ok(x) => {
                                        assert!(x.iter().all(|v| v.is_finite()));
                                        answered.fetch_add(1, Ordering::Relaxed);
                                    }
                                    Err(_) => {
                                        failed.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                                break;
                            }
                            Err(ServeError::Overloaded { .. }) => {
                                std::thread::sleep(Duration::from_micros(200));
                            }
                            Err(e) => panic!("submit failed: {e}"),
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    let elapsed = t0.elapsed();

    let stats = svc.stats();
    let total = args.clients * per_client;
    let rps = answered.load(Ordering::Relaxed) as f64 / elapsed.as_secs_f64();
    println!("{}", stats.to_json());
    eprintln!(
        "served {} requests in {:.2}s ({rps:.1} rps, mean batch {:.2}, cache hit rate {:.3})",
        answered.load(Ordering::Relaxed),
        elapsed.as_secs_f64(),
        stats.mean_batch,
        stats.cache_hit_rate(),
    );

    if args.smoke {
        let ok = stats.errors == 0
            && failed.load(Ordering::Relaxed) == 0
            && answered.load(Ordering::Relaxed) as usize == total
            && stats.cache_hit_rate() > 0.0
            && stats.cache_poisoned == 0;
        if !ok {
            eprintln!(
                "SMOKE FAIL: errors={} failed={} answered={}/{} hit_rate={:.3} poisoned={}",
                stats.errors,
                failed.load(Ordering::Relaxed),
                answered.load(Ordering::Relaxed),
                total,
                stats.cache_hit_rate(),
                stats.cache_poisoned,
            );
            std::process::exit(1);
        }
        eprintln!("SMOKE OK");
    }
}
