//! # kfds-serve — batched solve service over the fast direct solver
//!
//! A factorization of `λI + K̃` costs `O(s²N log N)` to build but only
//! `O(sN log N)` per solve — and a *blocked* solve amortizes the factor
//! traversal across right-hand sides, turning GEMV-shaped work into GEMM.
//! That asymmetry is exactly the shape of a serving workload: build (or
//! cache) once, answer many small solve requests. This crate turns the
//! solver into such a service:
//!
//! * [`FactorCache`] — single-flight, LRU-evicting cache of owned
//!   factorization handles ([`kfds_core::SharedFactor`]) keyed by
//!   [`FactorKey`] `(dataset, n, kernel bandwidth, λ, tree seed)`; failed
//!   or panicking builds quarantine their key. The two-level service
//!   ([`SolveService::start_two_level`]) adds a [`SetupCache`] keyed by
//!   the λ-free [`SetupKey`], so factor keys differing only in λ share
//!   one tree + skeletonization + kernel-block assembly
//!   ([`kfds_core::SharedSetup`]) and pay only the refactorization.
//! * [`SolveService`] — bounded request queue + worker threads with
//!   adaptive micro-batching: same-key requests are coalesced (up to
//!   `max_batch`) into one blocked multi-RHS solve, with a short linger
//!   window only while under load. Explicit backpressure
//!   ([`ServeError::Overloaded`]) past the high-water mark, and
//!   per-request deadlines.
//! * [`ServeStats`] — relaxed-atomic counters plus queue/solve/total
//!   latency histograms and the batch-size distribution, rendered as
//!   JSON.
//!
//! * Sharded serving — `ServeConfig::with_shards(p)` routes every
//!   complete-factorization batch through a [`kfds_shard::ShardRouter`]:
//!   the factor is partitioned into `p` rank-owned subtree shards
//!   ([`kfds_core::PartitionedFactor`]), RHS blocks scatter/gather over
//!   the `kfds-rt` transport, and the answers are **bitwise-identical**
//!   to the single-node blocked solve. Per-shard counters surface as
//!   [`ShardLane`]s in [`ServeStats`]; `KFDS_SHARD=off` restores the
//!   single-node path exactly.
//!
//! Runtime: plain OS threads and condvars — no async executor. The
//! `kfds-serve` binary wraps the service with a closed-loop load
//! generator; `KFDS_SERVE_BATCH=off` disables coalescing for A/B runs.

#![forbid(unsafe_code)]

pub mod cache;
pub mod service;
pub mod stats;

pub use cache::{CacheError, FactorCache, FactorKey, SetupCache, SetupKey, SingleFlightCache};
pub use kfds_rt::sync::LockRank;
pub use kfds_shard::ShardLane;
pub use service::{set_batching_enabled, set_shard_enabled, ServeConfig, SolveService, Ticket};
pub use stats::{Quantiles, ServeStats};

/// Errors a request (or the service) can answer with.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// Rejected at submit time: queue depth reached the high-water mark.
    Overloaded {
        /// Queue depth observed at rejection.
        depth: usize,
    },
    /// The request's deadline passed before it was dispatched.
    DeadlineExceeded,
    /// The factorization build for this key failed (this request raced
    /// the failing build).
    FactorizationFailed(String),
    /// The key was already quarantined by an earlier failed build.
    Quarantined(String),
    /// The request itself was malformed (e.g. wrong RHS length).
    BadRequest(String),
    /// The service is shutting down.
    ShuttingDown,
    /// The blocked solve failed or panicked.
    SolveFailed(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { depth } => {
                write!(f, "service overloaded (queue depth {depth})")
            }
            ServeError::DeadlineExceeded => write!(f, "request deadline exceeded in queue"),
            ServeError::FactorizationFailed(e) => write!(f, "factorization failed: {e}"),
            ServeError::Quarantined(e) => {
                write!(f, "factorization quarantined by earlier failure: {e}")
            }
            ServeError::BadRequest(e) => write!(f, "bad request: {e}"),
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
            ServeError::SolveFailed(e) => write!(f, "solve failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}
