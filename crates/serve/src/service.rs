//! The solve service: a bounded request queue in front of worker threads
//! that coalesce same-key requests into blocked multi-RHS solves.
//!
//! ## Batching policy (adaptive micro-batching)
//!
//! A worker pops the oldest request, then drains every queued request for
//! the *same factorization key* up to `max_batch`. If the batch is not
//! full and the queue still holds work (i.e. the service is under load),
//! the worker lingers for a short window (`linger`) to let concurrent
//! producers top the batch up; when the queue is idle the batch dispatches
//! immediately, so an unloaded service adds no artificial latency. The
//! whole batch is assembled into one `N x batch` matrix and solved with a
//! single blocked application of the factors
//! ([`SharedFactor::solve_block_in_place`]), which is GEMM-shaped work —
//! the amortization the paper's multi-RHS solve exposes.
//!
//! ## Robustness
//!
//! * The queue is bounded: submissions beyond the high-water mark are
//!   rejected with [`ServeError::Overloaded`] at submit time
//!   (backpressure), never silently dropped later.
//! * Every request carries a deadline; requests whose deadline passed
//!   while queued are answered [`ServeError::DeadlineExceeded`] at
//!   dispatch instead of wasting solve work.
//! * A factorization that fails to build — or panics — quarantines its
//!   key in the [`FactorCache`]; subsequent requests for that key fail
//!   fast and every other key keeps being served.
//!
//! The runtime is plain OS threads + mutex/condvar (like `kfds-rt`): no
//! async executor dependency, and solves still use the rayon pool
//! internally.

use crate::cache::{CacheError, FactorCache, FactorKey, SetupCache, SetupKey};
use crate::stats::{Metrics, ServeStats};
use crate::ServeError;
use kfds_core::{SharedFactor, SharedSetup, SolverConfig};
use kfds_kernels::Kernel;
use kfds_krylov::GmresOptions;
use kfds_la::Mat;
use kfds_rt::sync::{LockRank, RankedCondvar, RankedMutex};
use kfds_shard::{ShardError, ShardRouter};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Once};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Runtime kill-switch for request coalescing: `KFDS_SERVE_BATCH=off`
/// (or `0`) forces batch size 1, so batched vs unbatched serving can be
/// A/B-compared without a rebuild (same pattern as `KFDS_WS_POOL` /
/// `KFDS_SIMD`).
static BATCH_ENABLED: AtomicBool = AtomicBool::new(true);
static ENV_INIT: Once = Once::new();

fn batching_enabled() -> bool {
    ENV_INIT.call_once(|| {
        if kfds_switches::KFDS_SERVE_BATCH.is_off() {
            BATCH_ENABLED.store(false, Ordering::Relaxed);
        }
    });
    BATCH_ENABLED.load(Ordering::Relaxed)
}

/// Enables or disables batching at runtime (overrides `KFDS_SERVE_BATCH`).
pub fn set_batching_enabled(on: bool) {
    let _ = batching_enabled(); // apply the env default first
    BATCH_ENABLED.store(on, Ordering::Relaxed);
}

/// Runtime kill-switch for the sharded serve tier: `KFDS_SHARD=off` (or
/// `0`) makes a `sharded(p)` service skip the shard router and run every
/// batch on the single-node blocked path — bitwise-identical answers (the
/// router only repartitions the same arithmetic), so the tiers can be
/// A/B-compared without a rebuild.
static SHARD_ENABLED: AtomicBool = AtomicBool::new(true);
static SHARD_ENV_INIT: Once = Once::new();

fn shard_enabled() -> bool {
    SHARD_ENV_INIT.call_once(|| {
        if kfds_switches::KFDS_SHARD.is_off() {
            SHARD_ENABLED.store(false, Ordering::Relaxed);
        }
    });
    SHARD_ENABLED.load(Ordering::Relaxed)
}

/// Enables or disables the shard tier at runtime (overrides `KFDS_SHARD`).
/// Only consulted at [`SolveService`] construction: a running service
/// keeps (or keeps lacking) its router.
pub fn set_shard_enabled(on: bool) {
    let _ = shard_enabled(); // apply the env default first
    SHARD_ENABLED.store(on, Ordering::Relaxed);
}

/// Service configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Batcher worker threads draining the queue.
    pub workers: usize,
    /// Maximum right-hand sides coalesced into one blocked solve.
    pub max_batch: usize,
    /// Queue depth beyond which submissions are rejected with
    /// [`ServeError::Overloaded`].
    pub high_water: usize,
    /// Default per-request deadline (submit → response).
    pub default_timeout: Duration,
    /// How long a worker lingers for batch top-up while under load.
    /// Ignored when the queue is idle (immediate dispatch).
    pub linger: Duration,
    /// Ready factorizations retained by the LRU cache.
    pub cache_capacity: usize,
    /// GMRES options for the hybrid (partially factorized) solve path.
    pub gmres: GmresOptions,
    /// Shard-group size: `1` (default) serves every batch on the
    /// single-node blocked path; `p > 1` starts a [`ShardRouter`] that
    /// partitions each complete factorization across `p` rank-owned
    /// subtree shards and scatter/gathers the RHS blocks
    /// (bitwise-identical answers). Subject to the `KFDS_SHARD`
    /// kill-switch at service start.
    pub shards: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            max_batch: 16,
            high_water: 256,
            default_timeout: Duration::from_secs(10),
            linger: Duration::from_micros(500),
            cache_capacity: 4,
            gmres: GmresOptions::default(),
            shards: 1,
        }
    }
}

impl ServeConfig {
    /// Builder-style setter for the worker count.
    pub fn with_workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Builder-style setter for the maximum batch size.
    pub fn with_max_batch(mut self, b: usize) -> Self {
        self.max_batch = b.max(1);
        self
    }

    /// Builder-style setter for the queue high-water mark.
    pub fn with_high_water(mut self, hw: usize) -> Self {
        self.high_water = hw.max(1);
        self
    }

    /// Builder-style setter for the default request timeout.
    pub fn with_default_timeout(mut self, t: Duration) -> Self {
        self.default_timeout = t;
        self
    }

    /// Builder-style setter for the batch top-up linger window.
    pub fn with_linger(mut self, l: Duration) -> Self {
        self.linger = l;
        self
    }

    /// Builder-style setter for the factorization-cache capacity.
    pub fn with_cache_capacity(mut self, c: usize) -> Self {
        self.cache_capacity = c;
        self
    }

    /// Builder-style setter for the shard-group size (`1` disables the
    /// shard tier).
    pub fn with_shards(mut self, p: usize) -> Self {
        self.shards = p.max(1);
        self
    }
}

/// One-shot response slot shared between a worker and a [`Ticket`].
struct ResponseCell {
    slot: RankedMutex<Option<Result<Vec<f64>, ServeError>>>,
    cv: RankedCondvar,
}

impl ResponseCell {
    fn new() -> Arc<Self> {
        Arc::new(ResponseCell {
            slot: RankedMutex::new(LockRank::ServeSlot, None),
            cv: RankedCondvar::new(),
        })
    }

    fn fulfill(&self, r: Result<Vec<f64>, ServeError>) {
        let mut slot = self.slot.lock();
        if slot.is_none() {
            *slot = Some(r);
        }
        drop(slot);
        self.cv.notify_all();
    }
}

/// Handle to one in-flight solve request; redeem with [`Ticket::wait`].
pub struct Ticket {
    cell: Arc<ResponseCell>,
}

impl Ticket {
    /// Blocks until the service answers.
    ///
    /// # Errors
    /// Whatever the service answered with — see [`ServeError`].
    pub fn wait(self) -> Result<Vec<f64>, ServeError> {
        let mut slot = self.cell.slot.lock();
        loop {
            if let Some(r) = slot.take() {
                return r;
            }
            slot = self.cell.cv.wait(slot);
        }
    }

    /// Non-blocking probe; `Some` once the response is in.
    pub fn try_take(&self) -> Option<Result<Vec<f64>, ServeError>> {
        self.cell.slot.lock().take()
    }
}

struct Request {
    key: FactorKey,
    rhs: Vec<f64>,
    enqueued: Instant,
    deadline: Instant,
    cell: Arc<ResponseCell>,
}

struct QueueState {
    deque: VecDeque<Request>,
    open: bool,
}

/// How factor-cache misses are filled.
enum BuildMode<K: Kernel + 'static> {
    /// Legacy single-level service: one builder maps a [`FactorKey`]
    /// straight to a factorization (tree + skeletonization + assembly +
    /// factors, all per λ).
    Single(
        #[allow(clippy::type_complexity)]
        Box<dyn Fn(&FactorKey) -> Result<SharedFactor<K>, ServeError> + Send + Sync>,
    ),
    /// Two-level service: a λ-free [`SetupKey`] resolves the expensive
    /// setup ([`SharedSetup`]: tree + skeletonization + assembled kernel
    /// blocks) through its own single-flight cache, and each λ pays only
    /// [`SharedFactor::refactorize`]. A factor-level failure quarantines
    /// the λ key alone; the setup entry keeps serving other λ.
    TwoLevel {
        setups: SetupCache<SharedSetup<K>>,
        #[allow(clippy::type_complexity)]
        builder: Box<dyn Fn(&SetupKey) -> Result<SharedSetup<K>, ServeError> + Send + Sync>,
        /// λ-agnostic solver configuration; each key's λ is stamped in.
        base: SolverConfig,
    },
}

struct Shared<K: Kernel + 'static> {
    cfg: ServeConfig,
    queue: RankedMutex<QueueState>,
    cv: RankedCondvar,
    cache: FactorCache<SharedFactor<K>>,
    mode: BuildMode<K>,
    metrics: Metrics,
    /// Shard router for `sharded(p)` services (`cfg.shards > 1` with
    /// `KFDS_SHARD` on at start); `None` serves single-node.
    shard: Option<ShardRouter<FactorKey, K>>,
}

impl<K: Kernel + 'static> Shared<K> {
    /// `(ready setups, setup builds)` — zeros for a single-level service.
    fn setup_cache_stats(&self) -> (usize, u64) {
        match &self.mode {
            BuildMode::Single(_) => (0, 0),
            BuildMode::TwoLevel { setups, .. } => (setups.ready_len(), setups.builds()),
        }
    }
}

/// The batched solve service. Construct with [`SolveService::start`],
/// submit right-hand sides with [`SolveService::submit`], stop with
/// [`SolveService::shutdown`].
pub struct SolveService<K: Kernel + 'static> {
    shared: Arc<Shared<K>>,
    workers: Vec<JoinHandle<()>>,
}

impl<K: Kernel + 'static> SolveService<K> {
    /// Starts the worker threads. `builder` maps a [`FactorKey`] to an
    /// owned factorization — it runs at most once per key (single-flight)
    /// and its failures quarantine the key.
    pub fn start(
        cfg: ServeConfig,
        builder: impl Fn(&FactorKey) -> Result<SharedFactor<K>, ServeError> + Send + Sync + 'static,
    ) -> Self {
        Self::start_with_mode(cfg, BuildMode::Single(Box::new(builder)))
    }

    /// Starts a two-level service: `setup_builder` maps a λ-free
    /// [`SetupKey`] to an owned [`SharedSetup`] (tree + skeletonization +
    /// assembled kernel blocks — built at most once per setup,
    /// single-flight), and every [`FactorKey`] miss then pays only
    /// [`SharedFactor::refactorize`] at `base.with_lambda(key.lambda())`.
    /// A λ sweep therefore runs the setup builder exactly once.
    pub fn start_two_level(
        cfg: ServeConfig,
        base: SolverConfig,
        setup_builder: impl Fn(&SetupKey) -> Result<SharedSetup<K>, ServeError> + Send + Sync + 'static,
    ) -> Self {
        let setups = SetupCache::new(cfg.cache_capacity, LockRank::SetupCache);
        Self::start_with_mode(
            cfg,
            BuildMode::TwoLevel { setups, builder: Box::new(setup_builder), base },
        )
    }

    fn start_with_mode(cfg: ServeConfig, mode: BuildMode<K>) -> Self {
        let shard = (cfg.shards > 1 && shard_enabled())
            .then(|| ShardRouter::start(cfg.shards, cfg.cache_capacity));
        let shared = Arc::new(Shared {
            cache: FactorCache::new(cfg.cache_capacity, LockRank::FactorCache),
            cfg,
            queue: RankedMutex::new(
                LockRank::ServeQueue,
                QueueState { deque: VecDeque::new(), open: true },
            ),
            cv: RankedCondvar::new(),
            mode,
            metrics: Metrics::default(),
            shard,
        });
        let workers = (0..shared.cfg.workers.max(1))
            .map(|i| {
                let sh = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("kfds-serve-{i}"))
                    .spawn(move || worker_loop(&sh))
                    // PANIC-OK: thread-spawn failure at service startup is
                    // a resource-exhaustion fault on the control plane,
                    // not a per-request condition to degrade from.
                    .expect("spawn serve worker")
            })
            .collect();
        SolveService { shared, workers }
    }

    /// Submits a solve request (`rhs` in original point order) with the
    /// configured default timeout.
    ///
    /// # Errors
    /// [`ServeError::Overloaded`] when the queue is past the high-water
    /// mark; [`ServeError::ShuttingDown`] after [`SolveService::shutdown`].
    pub fn submit(&self, key: FactorKey, rhs: Vec<f64>) -> Result<Ticket, ServeError> {
        self.submit_with_timeout(key, rhs, self.shared.cfg.default_timeout)
    }

    /// [`SolveService::submit`] with an explicit deadline.
    ///
    /// # Errors
    /// See [`SolveService::submit`].
    pub fn submit_with_timeout(
        &self,
        key: FactorKey,
        rhs: Vec<f64>,
        timeout: Duration,
    ) -> Result<Ticket, ServeError> {
        let m = &self.shared.metrics;
        let mut q = self.shared.queue.lock();
        if !q.open {
            return Err(ServeError::ShuttingDown);
        }
        let depth = q.deque.len();
        if depth >= self.shared.cfg.high_water {
            m.rejected_overload.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Overloaded { depth });
        }
        let now = Instant::now();
        let cell = ResponseCell::new();
        q.deque.push_back(Request {
            key,
            rhs,
            enqueued: now,
            deadline: now + timeout,
            cell: Arc::clone(&cell),
        });
        m.submitted.fetch_add(1, Ordering::Relaxed);
        m.max_queue_depth.fetch_max(depth as u64 + 1, Ordering::Relaxed);
        drop(q);
        self.shared.cv.notify_one();
        Ok(Ticket { cell })
    }

    /// Snapshot of all counters and histograms (including one
    /// [`crate::stats::ShardLane`] per shard when the service is sharded).
    pub fn stats(&self) -> ServeStats {
        let depth = self.shared.queue.lock().deque.len();
        let (setup_entries, setup_builds) = self.shared.setup_cache_stats();
        self.shared.metrics.snapshot(
            depth,
            self.shared.cache.ready_len(),
            self.shared.cache.poisoned_len(),
            setup_entries,
            setup_builds,
            self.shared.shard.as_ref().map(ShardRouter::stats).unwrap_or_default(),
        )
    }

    /// How many factorization builders have run (cache diagnostics).
    pub fn factor_builds(&self) -> u64 {
        self.shared.cache.builds()
    }

    /// How many λ-free setup builders have run (always 0 for a
    /// single-level service). A λ sweep over one dataset/h/seed must
    /// leave this at 1.
    pub fn setup_builds(&self) -> u64 {
        self.shared.setup_cache_stats().1
    }

    /// Closes the queue, drains it (pending requests are answered
    /// [`ServeError::ShuttingDown`]), joins the workers, and stops the
    /// shard router (if any).
    pub fn shutdown(mut self) -> ServeStats {
        {
            let mut q = self.shared.queue.lock();
            q.open = false;
        }
        self.shared.cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Workers are gone, so no solve is in flight on the router.
        if let Some(router) = &self.shared.shard {
            router.shutdown();
        }
        let mut q = self.shared.queue.lock();
        while let Some(req) = q.deque.pop_front() {
            req.cell.fulfill(Err(ServeError::ShuttingDown));
        }
        drop(q);
        let (setup_entries, setup_builds) = self.shared.setup_cache_stats();
        self.shared.metrics.snapshot(
            0,
            self.shared.cache.ready_len(),
            self.shared.cache.poisoned_len(),
            setup_entries,
            setup_builds,
            self.shared.shard.as_ref().map(ShardRouter::stats).unwrap_or_default(),
        )
    }
}

/// Drains same-key requests from the queue into `batch` (up to `max`).
fn drain_same_key(q: &mut QueueState, batch: &mut Vec<Request>, max: usize) {
    let key = batch[0].key.clone();
    let mut i = 0;
    while batch.len() < max && i < q.deque.len() {
        if q.deque[i].key == key {
            match q.deque.remove(i) {
                Some(req) => batch.push(req),
                // `i` is bounds-checked by the loop condition; an absent
                // element would mean the deque shrank under our exclusive
                // borrow — stop draining rather than panic.
                None => break,
            }
        } else {
            i += 1;
        }
    }
}

fn worker_loop<K: Kernel + 'static>(sh: &Shared<K>) {
    loop {
        let mut q = sh.queue.lock();
        let head = loop {
            if let Some(r) = q.deque.pop_front() {
                break r;
            }
            if !q.open {
                return;
            }
            let (guard, _) = sh.cv.wait_timeout(q, Duration::from_millis(50));
            q = guard;
        };
        let max_batch = if batching_enabled() { sh.cfg.max_batch.max(1) } else { 1 };
        let mut batch = vec![head];
        drain_same_key(&mut q, &mut batch, max_batch);
        // Adaptive window: under load (other work still queued — the
        // producers are outrunning us), linger briefly so concurrent
        // same-key submissions coalesce; when idle, dispatch immediately.
        if batch.len() < max_batch && !q.deque.is_empty() && !sh.cfg.linger.is_zero() {
            let until = Instant::now() + sh.cfg.linger;
            loop {
                let now = Instant::now();
                if now >= until || batch.len() >= max_batch {
                    break;
                }
                let (guard, _) = sh.cv.wait_timeout(q, until - now);
                q = guard;
                drain_same_key(&mut q, &mut batch, max_batch);
            }
        }
        drop(q);
        dispatch(sh, batch);
    }
}

/// How one blocked batch solve failed, and whether the failure implicates
/// the cached factors.
enum BatchFailure {
    /// The solve returned an error; the factors themselves are fine.
    Solve(String),
    /// A shard worker panicked or returned a malformed gather leg
    /// mid-protocol: the partitioned factors are suspect, so the key is
    /// quarantined — the same policy a panicking local solve gets.
    Shard(String),
}

/// Runs one blocked batch: through the shard router when this service is
/// sharded and the factorization is complete (the only shape the
/// partition covers — and where the routed answer is bitwise-identical to
/// [`SharedFactor::solve_block_in_place`]), single-node otherwise. Router
/// refusals (unpartitionable factor, racing shutdown) fall back to the
/// single-node path — same bits — and count in `shard_fallbacks`.
fn solve_batch<K: Kernel + 'static>(
    sh: &Shared<K>,
    key: &FactorKey,
    sf: &SharedFactor<K>,
    b: &mut Mat,
) -> Result<(), BatchFailure> {
    let single = |b: &mut Mat| {
        sf.solve_block_in_place(b, &sh.cfg.gmres).map_err(|e| BatchFailure::Solve(e.to_string()))
    };
    let Some(router) = sh.shard.as_ref().filter(|_| sf.is_complete()) else {
        if sh.shard.is_some() {
            // Hybrid (partially factorized) solves have a GMRES outer
            // iteration the shard tier does not partition.
            sh.metrics.shard_fallbacks.fetch_add(1, Ordering::Relaxed);
        }
        return single(b);
    };
    match router.solve(key, sf, b) {
        Ok(()) => Ok(()),
        Err(e @ ShardError::ShardFailed { .. }) => Err(BatchFailure::Shard(e.to_string())),
        Err(ShardError::Unpartitionable(_) | ShardError::ShuttingDown) => {
            // Both refusals happen before any RHS block is scattered, so
            // `b` is untouched and the single-node path sees clean input.
            sh.metrics.shard_fallbacks.fetch_add(1, Ordering::Relaxed);
            single(b)
        }
    }
}

/// Solves one coalesced batch and scatters the per-request responses.
fn dispatch<K: Kernel + 'static>(sh: &Shared<K>, batch: Vec<Request>) {
    let m = &sh.metrics;
    let now = Instant::now();
    // Expire requests whose deadline passed while queued.
    let mut live: Vec<Request> = Vec::with_capacity(batch.len());
    for req in batch {
        m.queue_us.record(now - req.enqueued);
        if now > req.deadline {
            m.rejected_deadline.fetch_add(1, Ordering::Relaxed);
            req.cell.fulfill(Err(ServeError::DeadlineExceeded));
        } else {
            live.push(req);
        }
    }
    if live.is_empty() {
        return;
    }
    let key = live[0].key.clone();
    // Resolve the factorization (single-flight; failures quarantine the λ
    // key). In two-level mode the λ-free setup resolves through its own
    // cache *inside* the factor build closure, so a refactorization
    // failure poisons only this λ — the setup entry keeps serving.
    // `setup_hit` stays `None` unless this call ran the factor builder.
    let mut setup_hit: Option<bool> = None;
    let built = sh.cache.get_or_build(&key, || match &sh.mode {
        BuildMode::Single(builder) => builder(&key),
        BuildMode::TwoLevel { setups, builder, base } => {
            let skey = SetupKey::from(&key);
            let (setup, s_hit) =
                setups.get_or_build(&skey, || builder(&skey)).map_err(|e| match e {
                    CacheError::BuildFailed(msg) => ServeError::FactorizationFailed(msg),
                    CacheError::Poisoned(msg) => ServeError::Quarantined(msg),
                })?;
            setup_hit = Some(s_hit);
            SharedFactor::refactorize(&setup, base.with_lambda(key.lambda()))
                .map_err(|e| ServeError::FactorizationFailed(e.to_string()))
        }
    });
    let sf = match built {
        Ok((sf, hit)) => {
            if hit {
                m.cache_hits.fetch_add(1, Ordering::Relaxed);
            } else {
                m.cache_misses.fetch_add(1, Ordering::Relaxed);
                match setup_hit {
                    Some(true) => m.setup_hits.fetch_add(1, Ordering::Relaxed),
                    // Single-level misses count as full builds too.
                    Some(false) | None => m.full_misses.fetch_add(1, Ordering::Relaxed),
                };
                // A miss just ran the factorization: keep its per-level
                // breakdown for the stats snapshot.
                *m.factor_levels.lock() = sf.factor_tree().stats().levels.clone();
            }
            sf
        }
        Err(e) => {
            let err = match e {
                CacheError::BuildFailed(msg) => ServeError::FactorizationFailed(msg),
                CacheError::Poisoned(msg) => ServeError::Quarantined(msg),
            };
            m.errors.fetch_add(live.len() as u64, Ordering::Relaxed);
            for req in live {
                req.cell.fulfill(Err(err.clone()));
            }
            return;
        }
    };
    let n = sf.n();
    // Validate right-hand-side shapes against the resolved problem size.
    let mut valid: Vec<Request> = Vec::with_capacity(live.len());
    for req in live {
        if req.rhs.len() == n {
            valid.push(req);
        } else {
            m.errors.fetch_add(1, Ordering::Relaxed);
            req.cell.fulfill(Err(ServeError::BadRequest(format!(
                "rhs has {} entries, problem size is {n}",
                req.rhs.len()
            ))));
        }
    }
    if valid.is_empty() {
        return;
    }
    let nrhs = valid.len();
    m.batches.fetch_add(1, Ordering::Relaxed);
    m.batch_hist.record(nrhs);
    // Assemble the blocked right-hand side in tree order.
    let tree = sf.skeleton_tree().tree();
    let mut b = Mat::zeros(n, nrhs);
    for (j, req) in valid.iter().enumerate() {
        b.col_mut(j).copy_from_slice(&tree.permute_vec(&req.rhs));
    }
    let t0 = Instant::now();
    let solved = catch_unwind(AssertUnwindSafe(|| {
        let mut b = b;
        solve_batch(sh, &key, &sf, &mut b).map(|()| b)
    }));
    m.solve_us.record(t0.elapsed());
    match solved {
        Ok(Ok(x)) => {
            let done = Instant::now();
            for (j, req) in valid.into_iter().enumerate() {
                let xj = tree.unpermute_vec(x.col(j));
                m.completed.fetch_add(1, Ordering::Relaxed);
                m.total_us.record(done - req.enqueued);
                req.cell.fulfill(Ok(xj));
            }
        }
        Ok(Err(BatchFailure::Solve(e))) => {
            m.errors.fetch_add(valid.len() as u64, Ordering::Relaxed);
            let err = ServeError::SolveFailed(e);
            for req in valid {
                req.cell.fulfill(Err(err.clone()));
            }
        }
        Ok(Err(BatchFailure::Shard(e))) => {
            // A shard-side failure mid-protocol means the partitioned
            // factors are suspect: quarantine the key, same as a local
            // panic.
            sh.cache.poison(&key, &e);
            m.errors.fetch_add(valid.len() as u64, Ordering::Relaxed);
            let err = ServeError::SolveFailed(e);
            for req in valid {
                req.cell.fulfill(Err(err.clone()));
            }
        }
        Err(_) => {
            // A panicking solve means the cached factors are suspect:
            // quarantine the key so the failure cannot recur, and answer
            // the batch.
            sh.cache.poison(&key, "solve panicked on this factorization");
            m.errors.fetch_add(valid.len() as u64, Ordering::Relaxed);
            let err = ServeError::SolveFailed("solve panicked".to_string());
            for req in valid {
                req.cell.fulfill(Err(err.clone()));
            }
        }
    }
}
