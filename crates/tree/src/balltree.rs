//! Ball tree construction (Omohundro \[26\]): the geometric partitioner that
//! orders the kernel matrix so off-diagonal blocks are low rank.
//!
//! Starting at the root, each node is split into two children with an equal
//! number of points by a hyperplane: we project the node's points onto the
//! direction spanned by two (approximately) farthest points and split at the
//! median projection. Splitting stops when a node holds at most `m` points
//! (the user-specified leaf size). The tree permutes the points so every
//! node owns a contiguous index range — diagonal blocks of the permuted
//! kernel matrix correspond to tree nodes.

use crate::points::{sq_dist, PointSet};
use rayon::join;

/// The hyperplane direction used to split a node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SplitRule {
    /// Project onto the direction between two (approximately) farthest
    /// points — the ball-tree rule of the paper (Omohundro \[26\]).
    #[default]
    FarthestPair,
    /// Split along the coordinate axis of maximum spread (KD-tree style).
    /// Cheaper per level; typically yields slightly larger skeleton ranks
    /// for anisotropic data (see the `ablations` bench).
    MaxSpreadAxis,
}

/// A node of the ball tree.
#[derive(Clone, Debug)]
pub struct Node {
    /// First owned position (in permuted order).
    pub begin: usize,
    /// One past the last owned position.
    pub end: usize,
    /// Depth (root = 0).
    pub level: usize,
    /// Indices of the children in [`BallTree::nodes`], if internal.
    pub children: Option<(usize, usize)>,
    /// Index of the parent node (`None` for the root).
    pub parent: Option<usize>,
    /// Index of the sibling node (`None` for the root).
    pub sibling: Option<usize>,
    /// Ball center (centroid of owned points).
    pub center: Vec<f64>,
    /// Ball radius: max distance from the center to an owned point.
    pub radius: f64,
}

impl Node {
    /// Number of points owned by this node.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.begin
    }

    /// `true` if the node owns no points (never happens for `n > 0`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.begin == self.end
    }

    /// `true` if the node has no children.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.children.is_none()
    }

    /// The owned range of (permuted) point positions.
    #[inline]
    pub fn range(&self) -> std::ops::Range<usize> {
        self.begin..self.end
    }
}

/// A ball tree over a point set, with the induced permutation.
#[derive(Clone, Debug)]
pub struct BallTree {
    /// Flat node storage; index 0 is the root.
    nodes: Vec<Node>,
    /// `perm[k]` = original index of the point at permuted position `k`.
    perm: Vec<usize>,
    /// `inv_perm[orig]` = permuted position of original point `orig`.
    inv_perm: Vec<usize>,
    /// The points in permuted order.
    points: PointSet,
    /// Node indices grouped by level (`levels[l]` = nodes at depth `l`).
    levels: Vec<Vec<usize>>,
    leaf_size: usize,
}

impl BallTree {
    /// Builds a ball tree with leaf size `m` over `points`.
    ///
    /// The input point set is not modified; the tree stores a permuted copy
    /// (see [`BallTree::points`], [`BallTree::perm`]).
    ///
    /// # Panics
    /// Panics if `points` is empty or `m == 0`.
    pub fn build(points: &PointSet, m: usize) -> Self {
        Self::build_with_rule(points, m, SplitRule::FarthestPair)
    }

    /// Builds a tree with an explicit [`SplitRule`].
    ///
    /// # Panics
    /// Panics if `points` is empty or `m == 0`.
    pub fn build_with_rule(points: &PointSet, m: usize, rule: SplitRule) -> Self {
        assert!(m > 0, "leaf size must be positive");
        let n = points.len();
        assert!(n > 0, "cannot build a tree over zero points");

        let mut idx: Vec<usize> = (0..n).collect();
        // Recursively split, collecting nodes in a preorder list.
        let builder = Builder { points, leaf_size: m, rule };
        let tree_box = builder.split(&mut idx);
        let mut nodes = Vec::new();
        flatten(*tree_box, 0, None, &mut nodes);

        // Fix up sibling links now that all indices are known.
        for i in 0..nodes.len() {
            if let Some((l, r)) = nodes[i].children {
                nodes[l].sibling = Some(r);
                nodes[r].sibling = Some(l);
            }
        }

        let mut inv_perm = vec![0usize; n];
        for (k, &orig) in idx.iter().enumerate() {
            inv_perm[orig] = k;
        }
        let permuted = points.permute(&idx);

        let max_level = nodes.iter().map(|nd| nd.level).max().unwrap_or(0);
        let mut levels = vec![Vec::new(); max_level + 1];
        for (i, nd) in nodes.iter().enumerate() {
            levels[nd.level].push(i);
        }

        BallTree { nodes, perm: idx, inv_perm, points: permuted, levels, leaf_size: m }
    }

    /// All nodes (index 0 = root).
    #[inline]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Node by index.
    #[inline]
    pub fn node(&self, i: usize) -> &Node {
        &self.nodes[i]
    }

    /// The root node index (always 0).
    #[inline]
    pub fn root(&self) -> usize {
        0
    }

    /// The permuted point set the tree owns.
    #[inline]
    pub fn points(&self) -> &PointSet {
        &self.points
    }

    /// `perm()[k]` is the original index of permuted position `k`.
    #[inline]
    pub fn perm(&self) -> &[usize] {
        &self.perm
    }

    /// `inv_perm()[orig]` is the permuted position of original index `orig`.
    #[inline]
    pub fn inv_perm(&self) -> &[usize] {
        &self.inv_perm
    }

    /// Leaf size parameter `m`.
    #[inline]
    pub fn leaf_size(&self) -> usize {
        self.leaf_size
    }

    /// Tree depth (level of the deepest node).
    #[inline]
    pub fn depth(&self) -> usize {
        self.levels.len() - 1
    }

    /// Node indices at depth `l` (empty slice if `l` exceeds the depth).
    pub fn nodes_at_level(&self, l: usize) -> &[usize] {
        self.levels.get(l).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Indices of all leaves.
    pub fn leaves(&self) -> Vec<usize> {
        (0..self.nodes.len()).filter(|&i| self.nodes[i].is_leaf()).collect()
    }

    /// Applies `x` (indexed by original ids) into permuted order.
    pub fn permute_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.perm.len());
        self.perm.iter().map(|&o| x[o]).collect()
    }

    /// Scatters a permuted-order vector back to original ids.
    pub fn unpermute_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.perm.len());
        let mut out = vec![0.0; x.len()];
        for (k, &o) in self.perm.iter().enumerate() {
            out[o] = x[k];
        }
        out
    }
}

struct Builder<'a> {
    points: &'a PointSet,
    leaf_size: usize,
    rule: SplitRule,
}

/// Intermediate boxed tree used during recursive construction.
struct BoxNode {
    count: usize,
    center: Vec<f64>,
    radius: f64,
    children: Option<(Box<BoxNode>, Box<BoxNode>)>,
}

impl Builder<'_> {
    /// Splits `idx` (reordered in place) and returns the subtree.
    fn split(&self, idx: &mut [usize]) -> Box<BoxNode> {
        let count = idx.len();
        let (center, radius) = self.ball_of(idx);
        if count <= self.leaf_size {
            return Box::new(BoxNode { count, center, radius, children: None });
        }
        if self.rule == SplitRule::MaxSpreadAxis {
            return self.split_axis(idx, count, center, radius);
        }
        // Splitting direction: approximate diameter by a double sweep —
        // farthest point p1 from the centroid, then farthest point p2 from
        // p1. Project onto p2 - p1 and split at the median.
        let p1 = idx
            .iter()
            .copied()
            .max_by(|&a, &b| {
                let da = sq_dist(self.points.point(a), &center);
                let db = sq_dist(self.points.point(b), &center);
                da.partial_cmp(&db).expect("NaN coordinate")
            })
            .expect("non-empty node");
        let p2 = idx
            .iter()
            .copied()
            .max_by(|&a, &b| {
                let da = self.points.sq_dist(a, p1);
                let db = self.points.sq_dist(b, p1);
                da.partial_cmp(&db).expect("NaN coordinate")
            })
            .expect("non-empty node");
        let x1 = self.points.point(p1);
        let x2 = self.points.point(p2);
        let dir: Vec<f64> = x1.iter().zip(x2).map(|(a, b)| b - a).collect();

        let proj =
            |i: usize| -> f64 { self.points.point(i).iter().zip(&dir).map(|(x, d)| x * d).sum() };
        let half = count / 2;
        // Equal split at the median projection (paper: children hold an
        // equal number of points). Degenerate direction (all points equal)
        // still splits by position, keeping the tree balanced.
        idx.select_nth_unstable_by(half, |&a, &b| {
            proj(a).partial_cmp(&proj(b)).expect("NaN projection")
        });

        let (left_idx, right_idx) = idx.split_at_mut(half);
        let parallel = count > 4096;
        let (l, r) = if parallel {
            // Children own disjoint slices; rayon::join keeps construction
            // O(N log N) span-efficient.
            join(|| self.split(left_idx), || self.split(right_idx))
        } else {
            (self.split(left_idx), self.split(right_idx))
        };
        Box::new(BoxNode { count, center, radius, children: Some((l, r)) })
    }

    /// KD-style split: median along the coordinate of maximum spread.
    fn split_axis(
        &self,
        idx: &mut [usize],
        count: usize,
        center: Vec<f64>,
        radius: f64,
    ) -> Box<BoxNode> {
        let d = self.points.dim();
        let mut best_axis = 0;
        let mut best_spread = -1.0;
        for axis in 0..d {
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for &i in idx.iter() {
                let v = self.points.point(i)[axis];
                lo = lo.min(v);
                hi = hi.max(v);
            }
            if hi - lo > best_spread {
                best_spread = hi - lo;
                best_axis = axis;
            }
        }
        let half = count / 2;
        idx.select_nth_unstable_by(half, |&a, &b| {
            self.points.point(a)[best_axis]
                .partial_cmp(&self.points.point(b)[best_axis])
                .expect("NaN coordinate")
        });
        let (left_idx, right_idx) = idx.split_at_mut(half);
        let (l, r) = if count > 4096 {
            join(|| self.split(left_idx), || self.split(right_idx))
        } else {
            (self.split(left_idx), self.split(right_idx))
        };
        Box::new(BoxNode { count, center, radius, children: Some((l, r)) })
    }

    fn ball_of(&self, idx: &[usize]) -> (Vec<f64>, f64) {
        let d = self.points.dim();
        let mut center = vec![0.0; d];
        for &i in idx {
            for (c, &v) in center.iter_mut().zip(self.points.point(i)) {
                *c += v;
            }
        }
        let inv = 1.0 / idx.len() as f64;
        for c in &mut center {
            *c *= inv;
        }
        let radius = idx
            .iter()
            .map(|&i| sq_dist(self.points.point(i), &center))
            .fold(0.0f64, f64::max)
            .sqrt();
        (center, radius)
    }
}

/// Flattens the boxed tree into preorder `Vec<Node>` storage, assigning
/// contiguous point ranges.
fn flatten(boxed: BoxNode, begin: usize, parent: Option<usize>, out: &mut Vec<Node>) -> usize {
    let my_index = out.len();
    let level = parent.map(|p| out[p].level + 1).unwrap_or(0);
    out.push(Node {
        begin,
        end: begin + boxed.count,
        level,
        children: None,
        parent,
        sibling: None,
        center: boxed.center,
        radius: boxed.radius,
    });
    if let Some((l, r)) = boxed.children {
        let lcount = l.count;
        let li = flatten(*l, begin, Some(my_index), out);
        let ri = flatten(*r, begin + lcount, Some(my_index), out);
        out[my_index].children = Some((li, ri));
    }
    my_index
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points(n: usize, d: usize) -> PointSet {
        let mut data = Vec::with_capacity(n * d);
        let mut state = 0x9e3779b97f4a7c15u64;
        for _ in 0..n * d {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            data.push(((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0);
        }
        PointSet::from_col_major(d, data)
    }

    #[test]
    fn ranges_are_contiguous_and_partition() {
        let p = grid_points(257, 3);
        let t = BallTree::build(&p, 16);
        let root = t.node(t.root());
        assert_eq!(root.range(), 0..257);
        for (i, nd) in t.nodes().iter().enumerate() {
            if let Some((l, r)) = nd.children {
                assert_eq!(t.node(l).begin, nd.begin, "node {i}");
                assert_eq!(t.node(l).end, t.node(r).begin);
                assert_eq!(t.node(r).end, nd.end);
                // Equal split up to one point.
                assert!((t.node(l).len() as isize - t.node(r).len() as isize).abs() <= 1);
            } else {
                assert!(nd.len() <= 16, "leaf too big: {}", nd.len());
            }
        }
    }

    #[test]
    fn perm_is_bijective_and_points_match() {
        let p = grid_points(100, 4);
        let t = BallTree::build(&p, 8);
        let mut seen = [false; 100];
        for &o in t.perm() {
            assert!(!seen[o]);
            seen[o] = true;
        }
        for k in 0..100 {
            assert_eq!(t.points().point(k), p.point(t.perm()[k]));
            assert_eq!(t.inv_perm()[t.perm()[k]], k);
        }
    }

    #[test]
    fn balls_contain_their_points() {
        let p = grid_points(300, 2);
        let t = BallTree::build(&p, 10);
        for nd in t.nodes() {
            for k in nd.range() {
                let dist = sq_dist(t.points().point(k), &nd.center).sqrt();
                assert!(dist <= nd.radius * (1.0 + 1e-12) + 1e-12);
            }
        }
    }

    #[test]
    fn levels_group_nodes() {
        let p = grid_points(128, 2);
        let t = BallTree::build(&p, 16);
        assert_eq!(t.nodes_at_level(0), &[0]);
        let total: usize = (0..=t.depth()).map(|l| t.nodes_at_level(l).len()).sum();
        assert_eq!(total, t.nodes().len());
        // 128 points, leaf 16 => balanced depth log2(128/16) = 3.
        assert_eq!(t.depth(), 3);
        assert_eq!(t.leaves().len(), 8);
    }

    #[test]
    fn single_leaf_tree() {
        let p = grid_points(5, 3);
        let t = BallTree::build(&p, 10);
        assert_eq!(t.nodes().len(), 1);
        assert!(t.node(0).is_leaf());
        assert_eq!(t.depth(), 0);
    }

    #[test]
    fn identical_points_still_split() {
        let data: Vec<f64> = (0..64).flat_map(|_| [1.0, 2.0]).collect();
        let p = PointSet::from_col_major(2, data);
        let t = BallTree::build(&p, 4);
        for nd in t.nodes() {
            if nd.is_leaf() {
                assert!(nd.len() <= 4);
            }
        }
    }

    #[test]
    fn axis_split_rule_invariants() {
        let p = grid_points(300, 4);
        let t = BallTree::build_with_rule(&p, 16, SplitRule::MaxSpreadAxis);
        let mut seen = vec![false; 300];
        for &o in t.perm() {
            assert!(!seen[o]);
            seen[o] = true;
        }
        for nd in t.nodes() {
            if let Some((l, r)) = nd.children {
                assert_eq!(t.node(l).end, t.node(r).begin);
                assert!((t.node(l).len() as isize - t.node(r).len() as isize).abs() <= 1);
            } else {
                assert!(nd.len() <= 16);
            }
            for k in nd.range() {
                let d = sq_dist(t.points().point(k), &nd.center).sqrt();
                assert!(d <= nd.radius + 1e-9);
            }
        }
    }

    #[test]
    fn axis_split_separates_dominant_axis() {
        // Points spread along x only: the first split must separate x.
        let data: Vec<f64> = (0..100).flat_map(|i| [i as f64, 0.0]).collect();
        let p = PointSet::from_col_major(2, data);
        let t = BallTree::build_with_rule(&p, 10, SplitRule::MaxSpreadAxis);
        let (l, r) = t.node(0).children.expect("root split");
        let max_left = t.node(l).range().map(|k| t.points().point(k)[0]).fold(f64::MIN, f64::max);
        let min_right = t.node(r).range().map(|k| t.points().point(k)[0]).fold(f64::MAX, f64::min);
        assert!(max_left <= min_right);
    }

    #[test]
    fn permute_unpermute_roundtrip() {
        let p = grid_points(64, 3);
        let t = BallTree::build(&p, 8);
        let x: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let y = t.permute_vec(&x);
        let z = t.unpermute_vec(&y);
        assert_eq!(x, z);
    }

    #[test]
    fn sibling_links() {
        let p = grid_points(64, 2);
        let t = BallTree::build(&p, 8);
        for (i, nd) in t.nodes().iter().enumerate() {
            if let Some(s) = nd.sibling {
                assert_eq!(t.node(s).sibling, Some(i));
                assert_eq!(t.node(s).parent, nd.parent);
            } else {
                assert_eq!(i, t.root());
            }
        }
    }
}
