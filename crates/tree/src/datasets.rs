//! Synthetic dataset generators standing in for the paper's real-world sets.
//!
//! The repository has no network access to UCI/LIBSVM, so each dataset in
//! the paper's Table II is replaced by a seeded synthetic generator that
//! mimics its `(N, d, intrinsic dimension)` regime — the quantities that
//! govern hierarchical compressibility (paper §I "Limitations"). The
//! paper's own synthetic set, NORMAL (6-D Gaussian embedded in 64-D plus
//! noise), is generated exactly as described.
//!
//! All generators normalize coordinates to zero mean and unit variance, as
//! in the paper ("All coordinates are normalized to have zero mean and unit
//! variance", Table II).

use crate::points::PointSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws one standard normal sample (Box–Muller; avoids a `rand_distr`
/// dependency for a three-line transform).
#[inline]
pub fn normal(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

/// `n` points uniform in `[-1, 1]^d`.
pub fn uniform_cube(n: usize, d: usize, seed: u64) -> PointSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<f64> = (0..n * d).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect();
    PointSet::from_col_major(d, data)
}

/// The paper's NORMAL set: `intrinsic_d`-dimensional standard normal
/// samples embedded into `ambient_d` dimensions by a random linear map,
/// plus i.i.d. noise of standard deviation `noise` in every ambient
/// coordinate ("drawn from a 6D Normal distribution and embedded in 64D
/// with additional noise").
pub fn normal_embedded(
    n: usize,
    intrinsic_d: usize,
    ambient_d: usize,
    noise: f64,
    seed: u64,
) -> PointSet {
    assert!(intrinsic_d <= ambient_d);
    let mut rng = StdRng::seed_from_u64(seed);
    // Random embedding matrix E (ambient x intrinsic) with normal entries.
    let embed: Vec<f64> = (0..ambient_d * intrinsic_d).map(|_| normal(&mut rng)).collect();
    let mut data = Vec::with_capacity(n * ambient_d);
    let mut z = vec![0.0; intrinsic_d];
    for _ in 0..n {
        for zk in &mut z {
            *zk = normal(&mut rng);
        }
        for a in 0..ambient_d {
            let mut v = 0.0;
            for (k, &zk) in z.iter().enumerate() {
                v += embed[a * intrinsic_d + k] * zk;
            }
            v += noise * normal(&mut rng);
            data.push(v);
        }
    }
    let mut p = PointSet::from_col_major(ambient_d, data);
    p.normalize();
    p
}

/// A mixture of `n_clusters` Gaussian blobs in `d` dimensions with centers
/// uniform in `[-spread, spread]^d` and unit within-cluster variance.
/// Clustered data with moderate intrinsic dimension — the regime of
/// COVTYPE/HIGGS-style tabular sets.
pub fn gaussian_mixture(n: usize, d: usize, n_clusters: usize, spread: f64, seed: u64) -> PointSet {
    assert!(n_clusters > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<f64> =
        (0..n_clusters * d).map(|_| (rng.gen::<f64>() * 2.0 - 1.0) * spread).collect();
    let mut data = Vec::with_capacity(n * d);
    for _ in 0..n {
        let c = rng.gen_range(0..n_clusters);
        for k in 0..d {
            data.push(centers[c * d + k] + normal(&mut rng));
        }
    }
    let mut p = PointSet::from_col_major(d, data);
    p.normalize();
    p
}

/// A binary classification problem: two Gaussian blobs separated by
/// `separation` standard deviations along a random direction. Returns the
/// points and ±1 labels.
pub fn two_class_gaussians(n: usize, d: usize, separation: f64, seed: u64) -> (PointSet, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    // Random unit separation direction.
    let mut dir: Vec<f64> = (0..d).map(|_| normal(&mut rng)).collect();
    let norm = dir.iter().map(|v| v * v).sum::<f64>().sqrt();
    for v in &mut dir {
        *v /= norm;
    }
    let mut data = Vec::with_capacity(n * d);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let y: f64 = if rng.gen::<bool>() { 1.0 } else { -1.0 };
        for &dk in dir.iter() {
            data.push(normal(&mut rng) + y * 0.5 * separation * dk);
        }
        labels.push(y);
    }
    let mut p = PointSet::from_col_major(d, data);
    p.normalize();
    (p, labels)
}

/// A harder two-class problem: class +1 inside a ball, class −1 on a
/// surrounding annulus (not linearly separable — kernels required).
pub fn two_class_annulus(n: usize, d: usize, seed: u64) -> (PointSet, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(n * d);
    let mut labels = Vec::with_capacity(n);
    let mut x = vec![0.0; d];
    for _ in 0..n {
        let y: f64 = if rng.gen::<bool>() { 1.0 } else { -1.0 };
        // Direction uniform on the sphere, radius by class.
        let mut norm = 0.0;
        for xk in &mut x {
            *xk = normal(&mut rng);
            norm += *xk * *xk;
        }
        let norm = norm.sqrt().max(1e-12);
        let radius = if y > 0.0 {
            rng.gen::<f64>().powf(1.0 / d as f64) // inside unit ball
        } else {
            1.5 + 0.5 * rng.gen::<f64>() // annulus [1.5, 2.0]
        };
        for xk in x.iter() {
            data.push(xk / norm * radius);
        }
        labels.push(y);
    }
    let mut p = PointSet::from_col_major(d, data);
    p.normalize();
    (p, labels)
}

/// Descriptor of a Table-II dataset stand-in.
#[derive(Clone, Copy, Debug)]
pub struct DatasetSpec {
    /// Paper name (COVTYPE, SUSY, ...).
    pub name: &'static str,
    /// Ambient dimensionality of the paper's dataset.
    pub d: usize,
    /// Gaussian bandwidth used in the paper.
    pub h: f64,
    /// Regularizer used in the paper.
    pub lambda: f64,
    /// Intrinsic dimensionality of the synthetic stand-in.
    pub intrinsic_d: usize,
}

/// The paper's Table II datasets (stand-in parameters).
pub const TABLE2_SPECS: [DatasetSpec; 6] = [
    DatasetSpec { name: "COVTYPE", d: 54, h: 0.07, lambda: 0.3, intrinsic_d: 8 },
    DatasetSpec { name: "SUSY", d: 8, h: 0.07, lambda: 10.0, intrinsic_d: 5 },
    DatasetSpec { name: "MNIST2M", d: 784, h: 0.30, lambda: 1e-3, intrinsic_d: 12 },
    DatasetSpec { name: "HIGGS", d: 28, h: 0.90, lambda: 0.01, intrinsic_d: 10 },
    DatasetSpec { name: "MRI", d: 128, h: 3.5, lambda: 10.0, intrinsic_d: 9 },
    DatasetSpec { name: "NORMAL", d: 64, h: 0.19, lambda: 1.0, intrinsic_d: 6 },
];

/// Generates the stand-in for a named Table-II dataset: a low intrinsic
/// dimension embedding matching the spec (the property that governs
/// hierarchical compressibility), normalized like the paper's data.
pub fn table2_standin(spec: &DatasetSpec, n: usize, seed: u64) -> PointSet {
    normal_embedded(n, spec.intrinsic_d, spec.d, 0.1, seed)
}

/// Looks up a Table-II spec by name (case-insensitive).
pub fn spec_by_name(name: &str) -> Option<&'static DatasetSpec> {
    TABLE2_SPECS.iter().find(|s| s.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_have_right_shape() {
        assert_eq!(uniform_cube(10, 3, 1).len(), 10);
        assert_eq!(uniform_cube(10, 3, 1).dim(), 3);
        let p = normal_embedded(50, 2, 8, 0.1, 2);
        assert_eq!((p.len(), p.dim()), (50, 8));
        let g = gaussian_mixture(40, 5, 3, 4.0, 3);
        assert_eq!((g.len(), g.dim()), (40, 5));
    }

    #[test]
    fn generators_are_deterministic() {
        let a = normal_embedded(20, 3, 6, 0.05, 99);
        let b = normal_embedded(20, 3, 6, 0.05, 99);
        assert_eq!(a, b);
        let c = normal_embedded(20, 3, 6, 0.05, 100);
        assert_ne!(a, c);
    }

    #[test]
    fn normalized_statistics() {
        let p = gaussian_mixture(2000, 4, 5, 3.0, 7);
        for k in 0..4 {
            let mean: f64 = (0..2000).map(|i| p.point(i)[k]).sum::<f64>() / 2000.0;
            let var: f64 = (0..2000).map(|i| p.point(i)[k].powi(2)).sum::<f64>() / 2000.0;
            assert!(mean.abs() < 1e-10);
            assert!((var - 1.0).abs() < 1e-8);
        }
    }

    #[test]
    fn two_class_labels_are_pm_one() {
        let (p, y) = two_class_gaussians(100, 6, 3.0, 11);
        assert_eq!(p.len(), 100);
        assert!(y.iter().all(|&v| v == 1.0 || v == -1.0));
        assert!(y.iter().any(|&v| v > 0.0) && y.iter().any(|&v| v < 0.0));
    }

    #[test]
    fn annulus_classes_radially_separated() {
        // Before normalization the classes are separated by radius; after
        // normalization they should still not collapse onto each other:
        // check the mean radius differs between classes.
        let (p, y) = two_class_annulus(500, 3, 13);
        let (mut rp, mut np_, mut rm, mut nm) = (0.0, 0, 0.0, 0);
        for (i, yi) in y.iter().enumerate() {
            let r = p.point(i).iter().map(|v| v * v).sum::<f64>().sqrt();
            if *yi > 0.0 {
                rp += r;
                np_ += 1;
            } else {
                rm += r;
                nm += 1;
            }
        }
        assert!(rm / nm as f64 > rp / np_ as f64 * 1.2);
    }

    #[test]
    fn table2_lookup() {
        assert_eq!(spec_by_name("susy").unwrap().d, 8);
        assert!(spec_by_name("nope").is_none());
        let p = table2_standin(spec_by_name("SUSY").unwrap(), 64, 5);
        assert_eq!(p.dim(), 8);
    }

    #[test]
    fn normal_sample_moments() {
        let mut rng = StdRng::seed_from_u64(123);
        let n = 20000;
        let xs: Vec<f64> = (0..n).map(|_| normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }
}
