//! k-nearest-neighbor search: blocked (BLAS-3) by default, scalar fallback.
//!
//! ASKIT uses per-point nearest-neighbor lists to choose the sampled rows
//! `S'` of the skeletonization targets (§II-A: "κ is the number of nearest
//! neighbors used for skeletonization sampling"). Two paths exist for both
//! the exact and the approximate search, selected by `KFDS_KNN` (see
//! [`crate::dist_tiles`]):
//!
//! * **blocked** (default): the exact search is a dual-tree / leaf-blocked
//!   all-nearest-neighbors traversal — node-vs-node ball bounds prune
//!   against the *max* of a query leaf's current k-th-best radii, and each
//!   surviving leaf×leaf pair resolves as one GEMM distance tile
//!   ([`crate::dist_tiles::dist_tile_ranges`]) feeding per-query [`KBest`]
//!   heaps. The approximate path batches the projection-tree split keys
//!   (one SIMD dot per point per split, cached outside the
//!   `select_nth_unstable_by` comparator), scores every bucket as one
//!   symmetric GEMM tile, and merges each query's tile rows through a
//!   duplicate-rejecting heap.
//! * **scalar** (`KFDS_KNN=scalar`): the original per-query ball-tree
//!   descent and per-pair `sq_dist` scoring, kept for A/B comparison.
//!
//! Both paths order every neighbor list by `(distance, index)` and the
//! blocked path recomputes the reported distances with the scalar
//! [`sq_dist`], so blocked and scalar output is bitwise identical whenever
//! the selected neighbor sets agree (see the tolerance model in
//! [`crate::dist_tiles`]).

use crate::balltree::BallTree;
use crate::dist_tiles;
use crate::points::{sq_dist, PointSet};
use kfds_la::{workspace, MatMut};
use rayon::prelude::*;
use std::cmp::Ordering;
use std::ops::Range;

/// k-nearest-neighbor lists for every point of a tree's point set.
///
/// Indices are **permuted positions** (the tree's ordering), which is what
/// the skeletonization consumes directly.
#[derive(Clone, Debug)]
pub struct NeighborLists {
    k: usize,
    /// Row-major `n x k`: `idx[i*k + j]` = j-th nearest neighbor of point i.
    idx: Vec<u32>,
    /// Matching squared distances.
    dist: Vec<f64>,
}

impl NeighborLists {
    /// Number of neighbors per point.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Neighbors of point `i` (permuted positions), nearest first.
    pub fn neighbors(&self, i: usize) -> &[u32] {
        &self.idx[i * self.k..(i + 1) * self.k]
    }

    /// Squared distances to the neighbors of `i`, nearest first.
    pub fn distances(&self, i: usize) -> &[f64] {
        &self.dist[i * self.k..(i + 1) * self.k]
    }
}

/// `(dist, idx)` lexicographic "less than" — the total order used for all
/// heap comparisons and output sorting. Breaking exact distance ties by
/// index makes the selected set (and its order) independent of insertion
/// order, which is what lets the blocked and scalar paths return
/// bitwise-identical lists.
#[inline]
fn cand_lt(a: (f64, u32), b: (f64, u32)) -> bool {
    a.0 < b.0 || (a.0 == b.0 && a.1 < b.1)
}

/// Comparator form of [`cand_lt`] for sorts.
fn cand_cmp(a: &(f64, u32), b: &(f64, u32)) -> Ordering {
    a.0.partial_cmp(&b.0).expect("NaN distance").then(a.1.cmp(&b.1))
}

/// A bounded max-heap of `(distance, index)` candidates under the
/// lexicographic order of [`cand_lt`].
struct KBest {
    k: usize,
    heap: Vec<(f64, u32)>,
}

impl KBest {
    fn new(k: usize) -> Self {
        KBest { k, heap: Vec::with_capacity(k + 1) }
    }

    /// Current k-th-best squared distance (∞ while the heap is short) —
    /// the pruning radius τ.
    #[inline]
    fn worst(&self) -> f64 {
        if self.heap.len() < self.k {
            f64::INFINITY
        } else {
            self.heap[0].0
        }
    }

    fn push(&mut self, d: f64, i: u32) {
        let e = (d, i);
        if self.heap.len() < self.k {
            self.heap.push(e);
            // Sift up.
            let mut c = self.heap.len() - 1;
            while c > 0 {
                let p = (c - 1) / 2;
                if cand_lt(self.heap[p], self.heap[c]) {
                    self.heap.swap(p, c);
                    c = p;
                } else {
                    break;
                }
            }
        } else if cand_lt(e, self.heap[0]) {
            self.heap[0] = e;
            // Sift down.
            let mut p = 0;
            loop {
                let (l, r) = (2 * p + 1, 2 * p + 2);
                let mut m = p;
                if l < self.heap.len() && cand_lt(self.heap[m], self.heap[l]) {
                    m = l;
                }
                if r < self.heap.len() && cand_lt(self.heap[m], self.heap[r]) {
                    m = r;
                }
                if m == p {
                    break;
                }
                self.heap.swap(p, m);
                p = m;
            }
        }
    }

    /// [`Self::push`] that rejects an index already in the heap — used when
    /// the candidate stream carries cross-tree duplicates. The `O(k)` scan
    /// only runs on candidates that pass the `worst()` gate (a duplicate
    /// with a bitwise-equal distance whose first copy was evicted compares
    /// `>=` the current worst under the lexicographic order, so it is
    /// gated out before the scan).
    #[inline]
    fn push_distinct(&mut self, d: f64, i: u32) {
        if self.heap.len() == self.k && !cand_lt((d, i), self.heap[0]) {
            return;
        }
        if self.heap.iter().any(|&(_, j)| j == i) {
            return;
        }
        self.push(d, i);
    }

    /// The kept candidates, unordered.
    fn into_entries(self) -> Vec<(f64, u32)> {
        self.heap
    }

    /// The kept candidates, `(dist, idx)`-sorted nearest first.
    fn into_sorted(self) -> Vec<(f64, u32)> {
        let mut h = self.heap;
        h.sort_by(cand_cmp);
        h
    }
}

/// Computes exact k-nearest neighbors (excluding the point itself) for all
/// points in `tree`, in parallel.
///
/// Dispatches on the `KFDS_KNN` switch: the blocked dual-tree traversal by
/// default, the scalar per-query descent under `KFDS_KNN=scalar` (or
/// [`crate::dist_tiles::set_knn_blocked`]`(false)`).
///
/// # Panics
/// Panics if `k >= n` or `k == 0`.
pub fn knn_all(tree: &BallTree, k: usize) -> NeighborLists {
    let n = tree.points().len();
    assert!(k > 0 && k < n, "need 0 < k < n (k={k}, n={n})");
    if dist_tiles::knn_blocked_active() {
        knn_all_blocked(tree, k)
    } else {
        knn_all_scalar(tree, k)
    }
}

/// Scalar exact path: one ball-tree descent per query point.
fn knn_all_scalar(tree: &BallTree, k: usize) -> NeighborLists {
    let n = tree.points().len();
    let mut idx = vec![0u32; n * k];
    let mut dist = vec![0.0f64; n * k];

    idx.par_chunks_mut(k).zip(dist.par_chunks_mut(k)).enumerate().for_each(|(q, (irow, drow))| {
        let mut best = KBest::new(k);
        search(tree, tree.root(), q, &mut best);
        for (j, (d, i)) in best.into_sorted().into_iter().enumerate() {
            irow[j] = i;
            drow[j] = d;
        }
    });

    NeighborLists { k, idx, dist }
}

/// Blocked exact path: dual-tree all-nearest-neighbors, parallel over
/// query leaves, one GEMM distance tile per surviving leaf×leaf pair.
fn knn_all_blocked(tree: &BallTree, k: usize) -> NeighborLists {
    let pts = tree.points();
    let n = pts.len();
    let mut norms = workspace::take(n);
    pts.sq_norms_into(&mut norms);
    let norms: &[f64] = &norms;

    let mut idx = vec![0u32; n * k];
    let mut dist = vec![0.0f64; n * k];

    // Leaves are preorder, so their (contiguous) ranges ascend and tile the
    // output rows exactly: carve one output chunk per query leaf.
    let leaves = tree.leaves();
    let mut jobs: Vec<(usize, &mut [u32], &mut [f64])> = Vec::with_capacity(leaves.len());
    let mut idx_rest: &mut [u32] = &mut idx;
    let mut dist_rest: &mut [f64] = &mut dist;
    for &lf in &leaves {
        let m = tree.node(lf).len();
        let (ichunk, irest) = idx_rest.split_at_mut(m * k);
        let (dchunk, drest) = dist_rest.split_at_mut(m * k);
        idx_rest = irest;
        dist_rest = drest;
        jobs.push((lf, ichunk, dchunk));
    }

    jobs.into_par_iter().for_each(|(lf, irow, drow)| {
        leaf_all_nn(tree, norms, lf, k, irow, drow);
    });

    NeighborLists { k, idx, dist }
}

/// All-nearest-neighbors for the queries of one leaf: self tile first (to
/// tighten τ), then a closer-child-first DFS over candidate nodes, pruning
/// node `C` when even the best-placed query cannot improve —
/// `max(0, ‖c_Q − c_C‖ − r_Q − r_C)² ≥ τ` with `τ = max_i worst_i`.
fn leaf_all_nn(
    tree: &BallTree,
    norms: &[f64],
    lf: usize,
    k: usize,
    irow: &mut [u32],
    drow: &mut [f64],
) {
    let pts = tree.points();
    let nd = tree.node(lf);
    let qr = nd.range();
    let m = nd.len();

    let mut tile = workspace::take(m * tree.leaf_size());
    let mut best: Vec<KBest> = (0..m).map(|_| KBest::new(k)).collect();

    score_leaf_pair(pts, norms, qr.clone(), qr.clone(), &mut tile, &mut best, true);
    let mut tau = best.iter().map(KBest::worst).fold(0.0f64, f64::max);

    let (qc, qrad) = (&nd.center, nd.radius);
    let mut stack: Vec<usize> = Vec::with_capacity(2 * tree.depth() + 2);
    stack.push(tree.root());
    while let Some(c) = stack.pop() {
        if c == lf {
            continue;
        }
        let cn = tree.node(c);
        let gap = (sq_dist(qc, &cn.center).sqrt() - qrad - cn.radius).max(0.0);
        if gap * gap >= tau {
            continue;
        }
        if cn.is_leaf() {
            score_leaf_pair(pts, norms, qr.clone(), cn.range(), &mut tile, &mut best, false);
            tau = best.iter().map(KBest::worst).fold(0.0f64, f64::max);
        } else {
            let (l, r) = cn.children.expect("internal node");
            let dl = sq_dist(qc, &tree.node(l).center);
            let dr = sq_dist(qc, &tree.node(r).center);
            // Push the farther child first so the closer one pops first.
            if dl <= dr {
                stack.push(r);
                stack.push(l);
            } else {
                stack.push(l);
                stack.push(r);
            }
        }
    }

    // Finalize: recompute the selected distances with the scalar sq_dist
    // (tile distances carry the Gram-identity residual) and sort by
    // (dist, idx) — bitwise equal to the scalar path when the selected
    // sets agree.
    for (i, b) in best.into_iter().enumerate() {
        let qp = pts.point(qr.start + i);
        let mut sel = b.into_entries();
        for e in &mut sel {
            e.0 = sq_dist(qp, pts.point(e.1 as usize));
        }
        sel.sort_by(cand_cmp);
        for (j, &(d, id)) in sel.iter().enumerate() {
            irow[i * k + j] = id;
            drow[i * k + j] = d;
        }
    }
}

/// Scores one leaf×leaf pair through a GEMM distance tile and feeds the
/// query heaps. `self_block` skips the diagonal (a query is not its own
/// neighbor).
fn score_leaf_pair(
    pts: &PointSet,
    norms: &[f64],
    q: Range<usize>,
    c: Range<usize>,
    tile: &mut [f64],
    best: &mut [KBest],
    self_block: bool,
) {
    let (m, nc) = (q.len(), c.len());
    let out = MatMut::from_parts(&mut tile[..m * nc], m, nc, m);
    dist_tiles::dist_tile_ranges(pts, norms, q, c.clone(), out);
    for j in 0..nc {
        let col = &tile[j * m..(j + 1) * m];
        let cid = (c.start + j) as u32;
        for (i, b) in best.iter_mut().enumerate() {
            if self_block && i == j {
                continue;
            }
            b.push(col[i], cid);
        }
    }
}

/// Scalar recursive descent for one query (the legacy exact path).
fn search(tree: &BallTree, node: usize, q: usize, best: &mut KBest) {
    let nd = tree.node(node);
    let pts = tree.points();
    let qp = pts.point(q);
    if nd.is_leaf() {
        for i in nd.range() {
            if i != q {
                let d = sq_dist(qp, pts.point(i));
                best.push(d, i as u32);
            }
        }
        return;
    }
    let (l, r) = nd.children.expect("internal node");
    // Visit the closer child first for tighter pruning bounds.
    let dl = sq_dist(qp, &tree.node(l).center);
    let dr = sq_dist(qp, &tree.node(r).center);
    let order = if dl <= dr { [l, r] } else { [r, l] };
    for &c in &order {
        let cn = tree.node(c);
        let center_dist = sq_dist(qp, &cn.center).sqrt();
        let lower = (center_dist - cn.radius).max(0.0);
        if lower * lower < best.worst() {
            search(tree, c, q, best);
        }
    }
}

/// Approximate kNN via randomized projection trees — the scheme ASKIT
/// uses in high ambient dimensions, where ball-pruned exact search
/// degenerates to `O(N²d)`.
///
/// `n_trees` random trees are built by recursively splitting on random
/// directions at the median; each point's candidate set is the union of
/// its leaf buckets across trees, and distances are computed only among
/// candidates: `O(T·N·bucket·d)` total. Recall improves with `n_trees`;
/// indices refer to the *permuted* positions of `tree`, like [`knn_all`].
///
/// The blocked path (default) builds the same trees from batched, cached
/// projection keys (one SIMD dot per point per split instead of two dots
/// per comparator call), scores every bucket as one symmetric GEMM tile
/// ([`crate::dist_tiles::dist_tile_sym`]), and merges each query's tile
/// rows through a duplicate-rejecting heap; `KFDS_KNN=scalar` keeps
/// per-pair `sq_dist` scoring over sort-deduped merged bucket lists and
/// in-comparator projections. Bucket structure is identical on both paths
/// (the cached keys are the same dots).
///
/// # Panics
/// Panics if `k >= n`, `k == 0`, or `n_trees == 0`.
pub fn knn_approximate(tree: &BallTree, k: usize, n_trees: usize, seed: u64) -> NeighborLists {
    let pts = tree.points();
    let n = pts.len();
    assert!(k > 0 && k < n, "need 0 < k < n (k={k}, n={n})");
    assert!(n_trees > 0, "need at least one projection tree");
    let bucket = (4 * k).max(32).min(n);
    let blocked = dist_tiles::knn_blocked_active();

    // For each projection tree, bucket ids per point. Trees are independent
    // and seeded per index, so the blocked path builds them in parallel.
    let build_one = |t: usize| projection_tree_buckets(pts, t, seed, bucket, blocked);
    let buckets: Vec<Vec<u32>> = if blocked {
        (0..n_trees).into_par_iter().map(build_one).collect()
    } else {
        (0..n_trees).map(build_one).collect()
    };

    // Invert: members per (tree, bucket) (ascending within each bucket),
    // plus each point's row rank inside its bucket — the tile row it owns.
    let mut members: Vec<Vec<Vec<u32>>> = Vec::with_capacity(n_trees);
    let mut ranks: Vec<Vec<u32>> = Vec::with_capacity(n_trees);
    for assignment in &buckets {
        let nb = assignment.iter().copied().max().unwrap_or(0) as usize + 1;
        let mut m = vec![Vec::new(); nb];
        let mut r = vec![0u32; n];
        for (i, &b) in assignment.iter().enumerate() {
            r[i] = m[b as usize].len() as u32;
            m[b as usize].push(i as u32);
        }
        members.push(m);
        ranks.push(r);
    }

    let mut idx_out = vec![0u32; n * k];
    let mut dist_out = vec![0.0f64; n * k];

    if blocked {
        let mut norms = workspace::take(n);
        pts.sq_norms_into(&mut norms);
        // Every bucket scores all its members against each other as one
        // symmetric GEMM tile (O(T · N · bucket · d) flops, all BLAS-3);
        // per-query merging then just reads precomputed tile rows. The flat
        // tile buffer costs O(T · N · bucket) pooled memory — the same
        // order as the candidate lists themselves.
        let mut offsets: Vec<Vec<usize>> = Vec::with_capacity(n_trees);
        let mut total = 0usize;
        for m in &members {
            let mut offs = Vec::with_capacity(m.len());
            for mem in m {
                offs.push(total);
                total += mem.len() * mem.len();
            }
            offsets.push(offs);
        }
        let mut tiles = workspace::take(total);
        let mut jobs: Vec<(usize, usize, &mut [f64])> = Vec::new();
        let mut rest: &mut [f64] = &mut tiles;
        for (t, m) in members.iter().enumerate() {
            for (b, mem) in m.iter().enumerate() {
                let (tile, tail) = rest.split_at_mut(mem.len() * mem.len());
                rest = tail;
                jobs.push((t, b, tile));
            }
        }
        jobs.into_par_iter().for_each(|(t, b, tile)| {
            let mem = &members[t][b];
            let len = mem.len();
            dist_tiles::dist_tile_sym(pts, &norms, mem, MatMut::from_parts(tile, len, len, len));
        });

        idx_out.par_chunks_mut(k).zip(dist_out.par_chunks_mut(k)).enumerate().for_each(
            |(q, (irow, drow))| {
                // The query's row of each tree's bucket tile already holds
                // the distances to that tree's candidates; merge the rows
                // through a duplicate-rejecting heap (cross-tree duplicates
                // carry bitwise-equal tile distances).
                let mut best = KBest::new(k);
                for t in 0..n_trees {
                    let b = buckets[t][q] as usize;
                    let mem = &members[t][b];
                    let len = mem.len();
                    let row = ranks[t][q] as usize;
                    let tile = &tiles[offsets[t][b]..offsets[t][b] + len * len];
                    for (jj, &c) in mem.iter().enumerate() {
                        if c as usize != q {
                            best.push_distinct(tile[jj * len + row], c);
                        }
                    }
                }
                finalize_approx_row(pts, q, best, true, k, irow, drow);
            },
        );
    } else {
        idx_out.par_chunks_mut(k).zip(dist_out.par_chunks_mut(k)).enumerate().for_each(
            |(q, (irow, drow))| {
                // Merge the query's bucket lists and sort-dedup them (the
                // lists are short and sorted, so one sort of the
                // concatenation beats a per-push linear scan by orders of
                // magnitude).
                let mut cand = Vec::<u32>::with_capacity(n_trees * bucket);
                for t in 0..n_trees {
                    cand.extend_from_slice(&members[t][buckets[t][q] as usize]);
                }
                cand.sort_unstable();
                cand.dedup();
                if let Ok(p) = cand.binary_search(&(q as u32)) {
                    cand.remove(p);
                }
                let mut best = KBest::new(k);
                for &c in cand.iter() {
                    best.push(pts.sq_dist(q, c as usize), c);
                }
                finalize_approx_row(pts, q, best, false, k, irow, drow);
            },
        );
    }

    NeighborLists { k, idx: idx_out, dist: dist_out }
}

/// Shared tail of both approximate paths: optional exact-distance
/// recompute (the blocked path selected on tile distances), `(dist, idx)`
/// sort, row write-out, and the candidates-short-of-`k` padding with the
/// smallest indices not already present (sorted among themselves, so the
/// row stays duplicate-free).
fn finalize_approx_row(
    pts: &PointSet,
    q: usize,
    best: KBest,
    recompute: bool,
    k: usize,
    irow: &mut [u32],
    drow: &mut [f64],
) {
    let mut sel = best.into_entries();
    if recompute {
        // Same exact-recompute finalization as the dual-tree path.
        let qp = pts.point(q);
        for e in &mut sel {
            e.0 = sq_dist(qp, pts.point(e.1 as usize));
        }
    }
    sel.sort_by(cand_cmp);
    for (j, &(d, i)) in sel.iter().enumerate() {
        irow[j] = i;
        drow[j] = d;
    }
    if sel.len() < k {
        let mut pad: Vec<(f64, u32)> = Vec::with_capacity(k - sel.len());
        let mut c = 0u32;
        while sel.len() + pad.len() < k {
            if c as usize != q && !sel.iter().any(|&(_, i)| i == c) {
                pad.push((pts.sq_dist(q, c as usize), c));
            }
            c += 1;
        }
        pad.sort_by(cand_cmp);
        for (j, &(d, i)) in pad.iter().enumerate() {
            irow[sel.len() + j] = i;
            drow[sel.len() + j] = d;
        }
    }
}

/// Builds one randomized projection tree and returns the bucket id per
/// point. Splits are identical on both paths — the blocked path computes
/// each point's projection once per split into a cached key buffer (the
/// same `blas1::dot`), the scalar path recomputes dots inside the
/// comparator like the original implementation.
fn projection_tree_buckets(
    pts: &PointSet,
    t: usize,
    seed: u64,
    bucket: usize,
    blocked: bool,
) -> Vec<u32> {
    let n = pts.len();
    let d = pts.dim();
    let mut assignment = vec![0u32; n];
    let mut idx: Vec<usize> = (0..n).collect();
    let mut next_bucket = 0u32;
    // Deterministic per-tree RNG (splitmix-style stream).
    let mut state = seed ^ (t as u64).wrapping_mul(0x9e3779b97f4a7c15) | 1;
    let mut rnd = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    };
    // Iterative median splits on random directions.
    let mut stack: Vec<(usize, usize)> = vec![(0, n)];
    let mut dir = vec![0.0f64; d];
    let mut keys = workspace::take(n);
    while let Some((lo, hi)) = stack.pop() {
        if hi - lo <= bucket {
            for &i in &idx[lo..hi] {
                assignment[i] = next_bucket;
            }
            next_bucket += 1;
            continue;
        }
        for v in &mut dir {
            *v = rnd();
        }
        let mid = lo + (hi - lo) / 2;
        if blocked {
            for &i in &idx[lo..hi] {
                keys[i] = kfds_la::blas1::dot(pts.point(i), &dir);
            }
            idx[lo..hi].select_nth_unstable_by(mid - lo, |&a, &b| {
                keys[a].partial_cmp(&keys[b]).expect("NaN projection")
            });
        } else {
            idx[lo..hi].select_nth_unstable_by(mid - lo, |&a, &b| {
                let pa = kfds_la::blas1::dot(pts.point(a), &dir);
                let pb = kfds_la::blas1::dot(pts.point(b), &dir);
                pa.partial_cmp(&pb).expect("NaN projection")
            });
        }
        stack.push((lo, mid));
        stack.push((mid, hi));
    }
    assignment
}

/// Fraction of exact k-nearest neighbors recovered by `approx` (averaged
/// over points) — the recall metric for [`knn_approximate`].
pub fn knn_recall(exact: &NeighborLists, approx: &NeighborLists) -> f64 {
    assert_eq!(exact.k(), approx.k());
    let k = exact.k();
    let n = exact.idx.len() / k;
    let mut hits = 0usize;
    for i in 0..n {
        let e = exact.neighbors(i);
        for c in approx.neighbors(i) {
            if e.contains(c) {
                hits += 1;
            }
        }
    }
    hits as f64 / (n * k) as f64
}

/// Brute-force kNN reference (O(n² d)); used for testing and tiny inputs.
/// Rows are `(dist, idx)`-sorted like both production paths.
pub fn knn_brute_force(tree: &BallTree, k: usize) -> NeighborLists {
    let pts = tree.points();
    let n = pts.len();
    assert!(k > 0 && k < n);
    let mut idx = vec![0u32; n * k];
    let mut dist = vec![0.0f64; n * k];
    for q in 0..n {
        let mut cands: Vec<(f64, u32)> =
            (0..n).filter(|&i| i != q).map(|i| (pts.sq_dist(q, i), i as u32)).collect();
        cands.sort_by(cand_cmp);
        for j in 0..k {
            idx[q * k + j] = cands[j].1;
            dist[q * k + j] = cands[j].0;
        }
    }
    NeighborLists { k, idx, dist }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::points::PointSet;
    use std::sync::Mutex;

    /// Serializes tests that flip the process-global `KFDS_KNN` override.
    static SWITCH_LOCK: Mutex<()> = Mutex::new(());

    fn rand_points(n: usize, d: usize, seed: u64) -> PointSet {
        let mut state = seed | 1;
        let mut data = Vec::with_capacity(n * d);
        for _ in 0..n * d {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            data.push(((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0);
        }
        PointSet::from_col_major(d, data)
    }

    fn assert_lists_bitwise_eq(a: &NeighborLists, b: &NeighborLists, n: usize, what: &str) {
        assert_eq!(a.k(), b.k());
        for i in 0..n {
            assert_eq!(a.neighbors(i), b.neighbors(i), "{what}: indices of point {i}");
            for (x, y) in a.distances(i).iter().zip(b.distances(i)) {
                assert!(x.to_bits() == y.to_bits(), "{what}: distances of point {i}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn knn_matches_brute_force() {
        let p = rand_points(200, 3, 42);
        let t = BallTree::build(&p, 16);
        let fast = knn_all(&t, 5);
        let slow = knn_brute_force(&t, 5);
        for i in 0..200 {
            // Compare distances (indices can differ on near-ties from the
            // blocked path's Gram-identity selection).
            for j in 0..5 {
                let df = fast.distances(i)[j];
                let ds = slow.distances(i)[j];
                assert!((df - ds).abs() < 1e-12, "point {i} neighbor {j}: {df} vs {ds}");
            }
        }
    }

    #[test]
    fn dual_tree_matches_brute_force_on_clustered_points() {
        // Clustered data exercises the ball-pruning bound hard: most
        // leaf×leaf pairs must prune, the survivors must still be exact.
        let p = crate::datasets::gaussian_mixture(500, 6, 8, 0.05, 11);
        let t = BallTree::build(&p, 16);
        let _g = SWITCH_LOCK.lock().unwrap();
        crate::dist_tiles::set_knn_blocked(true);
        let fast = knn_all(&t, 8);
        let slow = knn_brute_force(&t, 8);
        for i in 0..500 {
            for j in 0..8 {
                let (df, ds) = (fast.distances(i)[j], slow.distances(i)[j]);
                assert!((df - ds).abs() < 1e-12, "point {i} neighbor {j}: {df} vs {ds}");
            }
        }
    }

    #[test]
    fn dual_tree_handles_coincident_points() {
        // 40 distinct sites, each duplicated 4 times: every point has 3
        // exact-zero neighbors, ties broken by index identically to the
        // brute-force reference.
        let sites = rand_points(40, 5, 77);
        let mut p = PointSet::with_capacity(5, 160);
        for _copy in 0..4 {
            for i in 0..40 {
                p.push(sites.point(i));
            }
        }
        let t = BallTree::build(&p, 8);
        let _g = SWITCH_LOCK.lock().unwrap();
        crate::dist_tiles::set_knn_blocked(true);
        let fast = knn_all(&t, 5);
        let slow = knn_brute_force(&t, 5);
        assert_lists_bitwise_eq(&fast, &slow, 160, "coincident");
        for i in 0..160 {
            assert_eq!(fast.distances(i)[..3], [0.0, 0.0, 0.0], "point {i}");
        }
    }

    #[test]
    fn blocked_and_scalar_exact_paths_agree_bitwise() {
        let p = rand_points(300, 8, 4);
        let t = BallTree::build(&p, 16);
        let _g = SWITCH_LOCK.lock().unwrap();
        crate::dist_tiles::set_knn_blocked(true);
        let blocked = knn_all(&t, 7);
        crate::dist_tiles::set_knn_blocked(false);
        let scalar = knn_all(&t, 7);
        crate::dist_tiles::set_knn_blocked(true);
        assert_lists_bitwise_eq(&blocked, &scalar, 300, "exact A/B");
    }

    #[test]
    fn blocked_and_scalar_approx_paths_agree_bitwise() {
        let p = rand_points(250, 12, 21);
        let t = BallTree::build(&p, 16);
        let _g = SWITCH_LOCK.lock().unwrap();
        crate::dist_tiles::set_knn_blocked(true);
        let blocked = knn_approximate(&t, 6, 4, 9);
        crate::dist_tiles::set_knn_blocked(false);
        let scalar = knn_approximate(&t, 6, 4, 9);
        crate::dist_tiles::set_knn_blocked(true);
        assert_lists_bitwise_eq(&blocked, &scalar, 250, "approx A/B");
    }

    #[test]
    fn scalar_exact_path_matches_brute_force_bitwise() {
        // The scalar path is the reference: distances AND indices must
        // reproduce the brute-force (dist, idx) order exactly.
        let p = rand_points(180, 4, 15);
        let t = BallTree::build(&p, 8);
        let _g = SWITCH_LOCK.lock().unwrap();
        crate::dist_tiles::set_knn_blocked(false);
        let fast = knn_all(&t, 6);
        crate::dist_tiles::set_knn_blocked(true);
        let slow = knn_brute_force(&t, 6);
        assert_lists_bitwise_eq(&fast, &slow, 180, "scalar vs brute");
    }

    #[test]
    fn knn_excludes_self_and_sorted() {
        let p = rand_points(100, 4, 7);
        let t = BallTree::build(&p, 8);
        let nn = knn_all(&t, 6);
        for i in 0..100 {
            let ds = nn.distances(i);
            for w in ds.windows(2) {
                assert!(w[0] <= w[1]);
            }
            for &j in nn.neighbors(i) {
                assert_ne!(j as usize, i);
            }
        }
    }

    #[test]
    fn knn_on_line_finds_adjacent() {
        // Points on a line at integer positions: nearest neighbor of i is
        // i-1 or i+1 (in permuted coordinates we check distances instead).
        let data: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let p = PointSet::from_col_major(1, data);
        let t = BallTree::build(&p, 4);
        let nn = knn_all(&t, 2);
        for i in 0..50 {
            assert!(nn.distances(i)[0] <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn approximate_knn_recall() {
        // Low intrinsic dimension: projection trees should recover most
        // true neighbors with a handful of trees.
        let p = crate::datasets::normal_embedded(400, 3, 24, 0.05, 5);
        let t = BallTree::build(&p, 16);
        let exact = knn_all(&t, 8);
        let approx = knn_approximate(&t, 8, 6, 42);
        let recall = knn_recall(&exact, &approx);
        assert!(recall > 0.7, "recall {recall}");
        // More trees => recall does not get (much) worse.
        let approx1 = knn_approximate(&t, 8, 1, 42);
        let r1 = knn_recall(&exact, &approx1);
        assert!(recall >= r1 - 0.05, "6 trees {recall} vs 1 tree {r1}");
    }

    #[test]
    fn approximate_knn_well_formed() {
        let p = rand_points(150, 8, 3);
        let t = BallTree::build(&p, 16);
        let nn = knn_approximate(&t, 5, 3, 7);
        for i in 0..150 {
            let ds = nn.distances(i);
            for w in ds.windows(2) {
                assert!(w[0] <= w[1] + 1e-12);
            }
            for &j in nn.neighbors(i) {
                assert_ne!(j as usize, i, "self-neighbor at {i}");
                assert!((j as usize) < 150);
            }
        }
    }

    #[test]
    fn approximate_padding_is_distinct_and_tail_sorted() {
        // k close to n with a single tree forces candidates < k for some
        // queries; padded rows must still be duplicate-free and self-free.
        let p = rand_points(40, 3, 31);
        let t = BallTree::build(&p, 8);
        for &blocked in &[true, false] {
            let _g = SWITCH_LOCK.lock().unwrap();
            crate::dist_tiles::set_knn_blocked(blocked);
            let nn = knn_approximate(&t, 36, 1, 3);
            crate::dist_tiles::set_knn_blocked(true);
            for i in 0..40 {
                let mut ids: Vec<u32> = nn.neighbors(i).to_vec();
                assert!(!ids.contains(&(i as u32)), "self-neighbor at {i} (blocked={blocked})");
                ids.sort_unstable();
                let len = ids.len();
                ids.dedup();
                assert_eq!(ids.len(), len, "duplicate neighbors at {i} (blocked={blocked})");
            }
        }
    }

    #[test]
    fn high_dim_small_n() {
        let p = rand_points(30, 64, 9);
        let t = BallTree::build(&p, 8);
        let fast = knn_all(&t, 3);
        let slow = knn_brute_force(&t, 3);
        for i in 0..30 {
            for j in 0..3 {
                assert!((fast.distances(i)[j] - slow.distances(i)[j]).abs() < 1e-12);
            }
        }
    }
}
