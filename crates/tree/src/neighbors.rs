//! Exact k-nearest-neighbor search with ball tree pruning.
//!
//! ASKIT uses per-point nearest-neighbor lists to choose the sampled rows
//! `S'` of the skeletonization targets (§II-A: "κ is the number of nearest
//! neighbors used for skeletonization sampling"). We compute exact kNN with
//! the ball tree built for the partitioning itself, pruning subtrees whose
//! ball cannot contain a closer point than the current k-th best.

use crate::balltree::BallTree;
use crate::points::sq_dist;
use rayon::prelude::*;

/// k-nearest-neighbor lists for every point of a tree's point set.
///
/// Indices are **permuted positions** (the tree's ordering), which is what
/// the skeletonization consumes directly.
#[derive(Clone, Debug)]
pub struct NeighborLists {
    k: usize,
    /// Row-major `n x k`: `idx[i*k + j]` = j-th nearest neighbor of point i.
    idx: Vec<u32>,
    /// Matching squared distances.
    dist: Vec<f64>,
}

impl NeighborLists {
    /// Number of neighbors per point.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Neighbors of point `i` (permuted positions), nearest first.
    pub fn neighbors(&self, i: usize) -> &[u32] {
        &self.idx[i * self.k..(i + 1) * self.k]
    }

    /// Squared distances to the neighbors of `i`, nearest first.
    pub fn distances(&self, i: usize) -> &[f64] {
        &self.dist[i * self.k..(i + 1) * self.k]
    }
}

/// A bounded max-heap of (distance, index) candidates.
struct KBest {
    k: usize,
    // (sq_dist, idx) max-heap by distance.
    heap: Vec<(f64, u32)>,
}

impl KBest {
    fn new(k: usize) -> Self {
        KBest { k, heap: Vec::with_capacity(k + 1) }
    }

    #[inline]
    fn worst(&self) -> f64 {
        if self.heap.len() < self.k {
            f64::INFINITY
        } else {
            self.heap[0].0
        }
    }

    fn push(&mut self, d: f64, i: u32) {
        if self.heap.len() < self.k {
            self.heap.push((d, i));
            // Sift up.
            let mut c = self.heap.len() - 1;
            while c > 0 {
                let p = (c - 1) / 2;
                if self.heap[p].0 < self.heap[c].0 {
                    self.heap.swap(p, c);
                    c = p;
                } else {
                    break;
                }
            }
        } else if d < self.heap[0].0 {
            self.heap[0] = (d, i);
            // Sift down.
            let mut p = 0;
            loop {
                let (l, r) = (2 * p + 1, 2 * p + 2);
                let mut m = p;
                if l < self.heap.len() && self.heap[l].0 > self.heap[m].0 {
                    m = l;
                }
                if r < self.heap.len() && self.heap[r].0 > self.heap[m].0 {
                    m = r;
                }
                if m == p {
                    break;
                }
                self.heap.swap(p, m);
                p = m;
            }
        }
    }

    fn into_sorted(mut self) -> Vec<(f64, u32)> {
        self.heap.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN distance"));
        self.heap
    }
}

/// Computes exact k-nearest neighbors (excluding the point itself) for all
/// points in `tree`, in parallel over query points.
///
/// # Panics
/// Panics if `k >= n` or `k == 0`.
pub fn knn_all(tree: &BallTree, k: usize) -> NeighborLists {
    let n = tree.points().len();
    assert!(k > 0 && k < n, "need 0 < k < n (k={k}, n={n})");
    let mut idx = vec![0u32; n * k];
    let mut dist = vec![0.0f64; n * k];

    idx.par_chunks_mut(k).zip(dist.par_chunks_mut(k)).enumerate().for_each(|(q, (irow, drow))| {
        let mut best = KBest::new(k);
        search(tree, tree.root(), q, &mut best);
        for (j, (d, i)) in best.into_sorted().into_iter().enumerate() {
            irow[j] = i;
            drow[j] = d;
        }
    });

    NeighborLists { k, idx, dist }
}

fn search(tree: &BallTree, node: usize, q: usize, best: &mut KBest) {
    let nd = tree.node(node);
    let pts = tree.points();
    let qp = pts.point(q);
    if nd.is_leaf() {
        for i in nd.range() {
            if i != q {
                let d = sq_dist(qp, pts.point(i));
                best.push(d, i as u32);
            }
        }
        return;
    }
    let (l, r) = nd.children.expect("internal node");
    // Visit the closer child first for tighter pruning bounds.
    let dl = sq_dist(qp, &tree.node(l).center);
    let dr = sq_dist(qp, &tree.node(r).center);
    let order = if dl <= dr { [l, r] } else { [r, l] };
    for &c in &order {
        let cn = tree.node(c);
        let center_dist = sq_dist(qp, &cn.center).sqrt();
        let lower = (center_dist - cn.radius).max(0.0);
        if lower * lower < best.worst() {
            search(tree, c, q, best);
        }
    }
}

/// Approximate kNN via randomized projection trees — the scheme ASKIT
/// uses in high ambient dimensions, where ball-pruned exact search
/// degenerates to `O(N²d)`.
///
/// `n_trees` random trees are built by recursively splitting on random
/// directions at the median; each point's candidate set is the union of
/// its leaf buckets across trees (plus the bucket's exactness), and exact
/// distances are computed only among candidates: `O(T·N·bucket·d)` total.
/// Recall improves with `n_trees`; indices refer to the *permuted*
/// positions of `tree`, like [`knn_all`].
///
/// # Panics
/// Panics if `k >= n`, `k == 0`, or `n_trees == 0`.
pub fn knn_approximate(tree: &BallTree, k: usize, n_trees: usize, seed: u64) -> NeighborLists {
    let pts = tree.points();
    let n = pts.len();
    let d = pts.dim();
    assert!(k > 0 && k < n, "need 0 < k < n (k={k}, n={n})");
    assert!(n_trees > 0, "need at least one projection tree");
    let bucket = (4 * k).max(32).min(n);

    // For each projection tree, bucket ids per point.
    let mut buckets: Vec<Vec<u32>> = Vec::with_capacity(n_trees);
    for t in 0..n_trees {
        let mut assignment = vec![0u32; n];
        let mut idx: Vec<usize> = (0..n).collect();
        let mut next_bucket = 0u32;
        // Deterministic per-tree RNG (splitmix-style stream).
        let mut state = seed ^ (t as u64).wrapping_mul(0x9e3779b97f4a7c15) | 1;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        // Iterative median splits on random directions.
        let mut stack: Vec<(usize, usize)> = vec![(0, n)];
        let mut dir = vec![0.0f64; d];
        while let Some((lo, hi)) = stack.pop() {
            if hi - lo <= bucket {
                for &i in &idx[lo..hi] {
                    assignment[i] = next_bucket;
                }
                next_bucket += 1;
                continue;
            }
            for v in &mut dir {
                *v = rnd();
            }
            let mid = lo + (hi - lo) / 2;
            idx[lo..hi].select_nth_unstable_by(mid - lo, |&a, &b| {
                let pa = kfds_la::blas1::dot(pts.point(a), &dir);
                let pb = kfds_la::blas1::dot(pts.point(b), &dir);
                pa.partial_cmp(&pb).expect("NaN projection")
            });
            stack.push((lo, mid));
            stack.push((mid, hi));
        }
        buckets.push(assignment);
    }

    // Invert: members per (tree, bucket).
    let mut members: Vec<Vec<Vec<u32>>> = Vec::with_capacity(n_trees);
    for assignment in &buckets {
        let nb = assignment.iter().copied().max().unwrap_or(0) as usize + 1;
        let mut m = vec![Vec::new(); nb];
        for (i, &b) in assignment.iter().enumerate() {
            m[b as usize].push(i as u32);
        }
        members.push(m);
    }

    let mut idx_out = vec![0u32; n * k];
    let mut dist_out = vec![0.0f64; n * k];
    idx_out.par_chunks_mut(k).zip(dist_out.par_chunks_mut(k)).enumerate().for_each(
        |(q, (irow, drow))| {
            let mut best = KBest::new(k);
            let mut seen: Vec<u32> = Vec::with_capacity(n_trees * bucket);
            for t in 0..n_trees {
                let b = buckets[t][q] as usize;
                for &c in &members[t][b] {
                    if c as usize != q && !seen.contains(&c) {
                        seen.push(c);
                        best.push(pts.sq_dist(q, c as usize), c);
                    }
                }
            }
            let sorted = best.into_sorted();
            for (j, (dd, i)) in sorted.iter().enumerate() {
                irow[j] = *i;
                drow[j] = *dd;
            }
            // Pathological case (k > candidates): pad with sequential ids.
            for j in sorted.len()..k {
                let fallback = if q == 0 { 1 } else { 0 } as u32;
                irow[j] = fallback;
                drow[j] = pts.sq_dist(q, fallback as usize);
            }
        },
    );

    NeighborLists { k, idx: idx_out, dist: dist_out }
}

/// Fraction of exact k-nearest neighbors recovered by `approx` (averaged
/// over points) — the recall metric for [`knn_approximate`].
pub fn knn_recall(exact: &NeighborLists, approx: &NeighborLists) -> f64 {
    assert_eq!(exact.k(), approx.k());
    let k = exact.k();
    let n = exact.idx.len() / k;
    let mut hits = 0usize;
    for i in 0..n {
        let e = exact.neighbors(i);
        for c in approx.neighbors(i) {
            if e.contains(c) {
                hits += 1;
            }
        }
    }
    hits as f64 / (n * k) as f64
}

/// Brute-force kNN reference (O(n² d)); used for testing and tiny inputs.
pub fn knn_brute_force(tree: &BallTree, k: usize) -> NeighborLists {
    let pts = tree.points();
    let n = pts.len();
    assert!(k > 0 && k < n);
    let mut idx = vec![0u32; n * k];
    let mut dist = vec![0.0f64; n * k];
    for q in 0..n {
        let mut cands: Vec<(f64, u32)> =
            (0..n).filter(|&i| i != q).map(|i| (pts.sq_dist(q, i), i as u32)).collect();
        cands.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN distance"));
        for j in 0..k {
            idx[q * k + j] = cands[j].1;
            dist[q * k + j] = cands[j].0;
        }
    }
    NeighborLists { k, idx, dist }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::points::PointSet;

    fn rand_points(n: usize, d: usize, seed: u64) -> PointSet {
        let mut state = seed | 1;
        let mut data = Vec::with_capacity(n * d);
        for _ in 0..n * d {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            data.push(((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0);
        }
        PointSet::from_col_major(d, data)
    }

    #[test]
    fn knn_matches_brute_force() {
        let p = rand_points(200, 3, 42);
        let t = BallTree::build(&p, 16);
        let fast = knn_all(&t, 5);
        let slow = knn_brute_force(&t, 5);
        for i in 0..200 {
            // Compare distances (indices can differ on exact ties).
            for j in 0..5 {
                let df = fast.distances(i)[j];
                let ds = slow.distances(i)[j];
                assert!((df - ds).abs() < 1e-12, "point {i} neighbor {j}: {df} vs {ds}");
            }
        }
    }

    #[test]
    fn knn_excludes_self_and_sorted() {
        let p = rand_points(100, 4, 7);
        let t = BallTree::build(&p, 8);
        let nn = knn_all(&t, 6);
        for i in 0..100 {
            let ds = nn.distances(i);
            for w in ds.windows(2) {
                assert!(w[0] <= w[1]);
            }
            for &j in nn.neighbors(i) {
                assert_ne!(j as usize, i);
            }
        }
    }

    #[test]
    fn knn_on_line_finds_adjacent() {
        // Points on a line at integer positions: nearest neighbor of i is
        // i-1 or i+1 (in permuted coordinates we check distances instead).
        let data: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let p = PointSet::from_col_major(1, data);
        let t = BallTree::build(&p, 4);
        let nn = knn_all(&t, 2);
        for i in 0..50 {
            assert!(nn.distances(i)[0] <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn approximate_knn_recall() {
        // Low intrinsic dimension: projection trees should recover most
        // true neighbors with a handful of trees.
        let p = crate::datasets::normal_embedded(400, 3, 24, 0.05, 5);
        let t = BallTree::build(&p, 16);
        let exact = knn_all(&t, 8);
        let approx = knn_approximate(&t, 8, 6, 42);
        let recall = knn_recall(&exact, &approx);
        assert!(recall > 0.7, "recall {recall}");
        // More trees => recall does not get (much) worse.
        let approx1 = knn_approximate(&t, 8, 1, 42);
        let r1 = knn_recall(&exact, &approx1);
        assert!(recall >= r1 - 0.05, "6 trees {recall} vs 1 tree {r1}");
    }

    #[test]
    fn approximate_knn_well_formed() {
        let p = rand_points(150, 8, 3);
        let t = BallTree::build(&p, 16);
        let nn = knn_approximate(&t, 5, 3, 7);
        for i in 0..150 {
            let ds = nn.distances(i);
            for w in ds.windows(2) {
                assert!(w[0] <= w[1] + 1e-12);
            }
            for &j in nn.neighbors(i) {
                assert_ne!(j as usize, i, "self-neighbor at {i}");
                assert!((j as usize) < 150);
            }
        }
    }

    #[test]
    fn high_dim_small_n() {
        let p = rand_points(30, 64, 9);
        let t = BallTree::build(&p, 8);
        let fast = knn_all(&t, 3);
        let slow = knn_brute_force(&t, 3);
        for i in 0..30 {
            for j in 0..3 {
                assert!((fast.distances(i)[j] - slow.distances(i)[j]).abs() < 1e-12);
            }
        }
    }
}
